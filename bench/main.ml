(* Reproduction harness: regenerates every figure of the paper (the paper
   has no numbered tables; Figures 1, 3-8 carry all quantitative content)
   plus extension experiments, each with machine-checked PASS/FAIL
   assertions, followed by Bechamel microbenchmarks of the analysis
   pipeline.

   Run with: dune exec bench/main.exe *)

module Q = Tpan_mathkit.Q
module B = Tpan_mathkit.Bigint
module FM = Tpan_mathkit.Fourier_motzkin
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module SW = Tpan_protocols.Stopwait
module Abp = Tpan_protocols.Abp
module Sc = Tpan_protocols.Shared_channel
module O = Tpan_symbolic.Oracle

let failures = ref 0
let passes = ref 0

(* CI sizing: [--quick] (or TPAN_BENCH_SCALE < 1) shrinks the expensive
   extension experiments — fewer Erlang stages, shorter simulation
   horizons — without renaming any section or changing the JSON schema,
   so BENCH_history.ndjson rows stay comparable within a scale. *)
let quick = Array.exists (( = ) "--quick") Sys.argv

let bench_scale =
  match Sys.getenv_opt "TPAN_BENCH_SCALE" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0. && f <= 1. -> f
    | _ -> 1.0)
  | None -> if quick then 0.25 else 1.0

(* scaled simulation horizon (and similar integer budgets) *)
let scaled n = max 1 (int_of_float ((float_of_int n *. bench_scale) +. 0.5))

let check name cond =
  if cond then begin
    incr passes;
    Format.printf "  [PASS] %s@." name
  end
  else begin
    incr failures;
    Format.printf "  [FAIL] %s@." name
  end

(* per-section wall times, GC deltas, oracle statistics and microbenchmark
   rows are collected as the harness runs and dumped to BENCH_tpan.json at
   the end *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  major_collections : int;
  compactions : int;
}

let figure_times : (string * float * gc_delta) list ref = ref []

let timed name f =
  let g0 = Gc.quick_stat () in
  (* quick_stat's allocation fields only refresh at collection slices on
     OCaml 5; Gc.minor_words reads the allocation pointer directly *)
  let mw0 = Gc.minor_words () in
  let t0 = Sys.time () in
  f ();
  let dt = Sys.time () -. t0 in
  let g1 = Gc.quick_stat () in
  figure_times :=
    ( name,
      dt,
      {
        minor_words = Gc.minor_words () -. mw0;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        compactions = g1.Gc.compactions - g0.Gc.compactions;
      } )
    :: !figure_times

let oracle_records : (string * O.stats) list ref = ref []

(* (workload, jobs, wall seconds at -j1/-jN, minor words at -j1/-jN);
   dumped as the "parallel" array of BENCH_tpan.json. Minor words per run
   are the calling domain's allocation delta plus whatever the pool's
   worker domains reported through the par.pool.worker_minor_words
   histogram during the run, so the figure covers all domains. *)
let parallel_records : (string * int * float * float * float * float) list ref = ref []

(* running total of worker-domain minor words, from the pool's histogram *)
let pool_minor_sum () =
  match Tpan_obs.Metrics.find "par.pool.worker_minor_words" with
  | Some (Tpan_obs.Metrics.Histogram_v h) -> h.sum
  | _ -> 0.

(* (stages, minor words) for each Erlang-stage Markov solve of EXT-EXP *)
let exp_records : (int * float) list ref = ref []

let section id title = Format.printf "@.==================== %s: %s ====================@." id title

let qd = Q.of_decimal_string
let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let paper_time_bindings =
  [
    ("E(t3)", Q.of_int 1000);
    ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
    ("F(t4)", qd "106.7"); ("F(t5)", qd "106.7");
    ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
    ("F(t8)", qd "106.7"); ("F(t9)", qd "106.7");
  ]

let paper_freq_bindings =
  [
    ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
    ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
  ]

(* shared artefacts *)
let ctpn = SW.concrete SW.paper_params
let cgraph = CG.build ctpn
let cres = M.Concrete.analyze cgraph
let stpn = SW.symbolic ()
let sgraph = SG.build stpn
let sres = M.Symbolic.analyze sgraph

(* ---------------- FIG1 ---------------- *)

let fig1 () =
  section "FIG1" "the stop-and-wait protocol net and its timing table";
  print_string (Tpan_dsl.Printer.to_string ctpn);
  let sizes =
    Array.to_list (Tpn.conflict_sets ctpn) |> List.map List.length |> List.sort compare
  in
  check "three non-trivial conflict sets of size 2" (sizes = [ 1; 1; 1; 2; 2; 2 ]);
  let net = Tpn.net ctpn in
  check "9 transitions, 8 places" (Net.num_transitions net = 9 && Net.num_places net = 8);
  check "timeout enabling time is 1000 ms"
    (Q.equal (Tpn.enabling_q ctpn (Net.trans_of_name net "t3")) (Q.of_int 1000))

(* ---------------- FIG4 ---------------- *)

let fig4 () =
  section "FIG4" "concrete timed reachability graph (18 states)";
  Format.printf "%-4s %s@." "id" "marking + RET/RFT";
  Array.iteri
    (fun i st -> Format.printf "%-4d %a@." (i + 1) (CG.Graph.pp_state ctpn) st)
    cgraph.Sem.states;
  Format.printf "--- edges ---@.";
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : CG.Graph.edge) ->
          Format.printf "  %2d -> %-2d  delay=%-8s p=%s@." (e.Sem.src + 1) (e.Sem.dst + 1)
            (qf e.Sem.delay) (qf e.Sem.prob))
        edges)
    cgraph.Sem.out;
  check "exactly 18 states (paper Figure 4)" (CG.Graph.num_states cgraph = 18);
  check "exactly 20 edges" (CG.Graph.num_edges cgraph = 20);
  check "two decision nodes (paper: states 3 and 11)"
    (List.length (Sem.branching_states cgraph) = 2);
  let t3 = Net.trans_of_name (Tpn.net ctpn) "t3" in
  let rets =
    Array.to_list cgraph.Sem.states
    |> List.filter_map (fun st ->
           if Q.is_zero st.Sem.ret.(t3) then None else Some st.Sem.ret.(t3))
    |> List.sort_uniq Q.compare
  in
  check "timeout residues {773.1, 879.8, 893.3, 1000}"
    (List.length rets = 4
    && List.for_all2 Q.equal rets (List.map qd [ "773.1"; "879.8"; "893.3"; "1000" ]))

(* ---------------- FIG5 ---------------- *)

let fig5 () =
  section "FIG5" "decision graph (probabilities and accumulated delays)";
  Format.printf "%a@."
    (DG.pp ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6))
    cres.Rates.dg;
  let has p d =
    List.exists
      (fun (e : _ DG.dedge) -> Q.equal e.DG.prob (qd p) && Q.equal e.DG.delay (qd d))
      cres.Rates.dg.DG.edges
  in
  check "edge 1: packet lost,    p=0.05, d=1002   (paper a1=1002)" (has "0.05" "1002");
  check "edge 3: packet through, p=0.95, d=120.2  (paper a3=120.2)" (has "0.95" "120.2");
  check "edge 2: ack through,    p=0.95, d=122.2  (paper a2=122.2)" (has "0.95" "122.2");
  check "edge 4: ack lost,       p=0.05, d=881.8" (has "0.05" "881.8");
  check "exactly 4 edges over 2 nodes"
    (List.length cres.Rates.dg.DG.edges = 4 && List.length cres.Rates.dg.DG.nodes = 2);
  let rates =
    List.sort Q.compare
      (List.map (fun (re : _ Rates.rated_edge) -> re.Rates.rate) cres.Rates.edge_rate)
  in
  check "relative rates {0.05, 0.0475, 0.9025, 0.95} (v(3) = 1 normalization)"
    (List.for_all2 Q.equal rates
       (List.sort Q.compare [ qd "0.05"; qd "0.0475"; qd "0.9025"; qd "0.95" ]));
  Format.printf "  total relative time per cycle = %s ms@." (qf cres.Rates.total_weight);
  check "sum of w_i = 316.461" (Q.equal cres.Rates.total_weight (qd "316.461"))

(* ---------------- FIG6 ---------------- *)

let fig6 () =
  section "FIG6" "symbolic timed reachability graph";
  Array.iteri
    (fun i st -> Format.printf "%-4d %a@." (i + 1) (SG.Graph.pp_state stpn) st)
    sgraph.Sem.states;
  check "18 symbolic states, isomorphic to Figure 4" (SG.Graph.num_states sgraph = 18);
  let t3 = Net.trans_of_name (Tpn.net stpn) "t3" in
  let e3 = Lin.var (Var.enabling "t3") in
  let f n = Lin.var (Var.firing n) in
  let rets =
    Array.to_list sgraph.Sem.states
    |> List.filter_map (fun st ->
           if Lin.equal st.Sem.ret.(t3) Lin.zero then None else Some st.Sem.ret.(t3))
    |> List.sort_uniq Lin.compare
  in
  let expect =
    [
      e3;
      Lin.sub e3 (f "t4");
      Lin.sub e3 (f "t5");
      Lin.sub e3 (Lin.add (f "t5") (f "t6"));
      Lin.sub e3 (Lin.add (f "t5") (Lin.add (f "t6") (f "t8")));
      Lin.sub e3 (Lin.add (f "t5") (Lin.add (f "t6") (f "t9")));
    ]
  in
  check "six symbolic timeout residues, as in Figure 6b"
    (List.length rets = 6 && List.for_all (fun w -> List.exists (Lin.equal w) rets) expect);
  (* delays at the paper point match the concrete graph edge for edge *)
  let env v = List.assoc (Var.name v) paper_time_bindings in
  let agree = ref true in
  Array.iteri
    (fun i sedges ->
      List.iter2
        (fun (se : SG.Graph.edge) (ce : CG.Graph.edge) ->
          if not (Q.equal ce.Sem.delay (Lin.eval env se.Sem.delay)) then agree := false)
        sedges cgraph.Sem.out.(i))
    sgraph.Sem.out;
  check "substituting Figure 1b times reproduces Figure 4 exactly" !agree

(* ---------------- FIG7 ---------------- *)

let fig7 () =
  section "FIG7" "timing constraints used in the reachability graph";
  let audit = SG.constraint_audit sgraph in
  List.iter
    (fun (s, d, labels) ->
      Format.printf "  transition %2d -> %-2d justified by constraint(s) %s@." (s + 1) (d + 1)
        (String.concat ", " labels))
    audit;
  let sets = List.map (fun (_, _, l) -> List.sort compare l) audit in
  let count l = List.length (List.filter (( = ) l) sets) in
  check "five constrained resolutions (paper Figure 7 rows)" (List.length audit = 5);
  check "constraint (1) alone used three times" (count [ "(1)" ] = 3);
  check "constraints (1)+(3) used once (loss-of-packet branch)" (count [ "(1)"; "(3)" ] = 1);
  check "constraints (1)+(4) used once (loss-of-ack branch)" (count [ "(1)"; "(4)" ] = 1)

(* ---------------- FIG8 ---------------- *)

let fig8 () =
  section "FIG8" "symbolic decision graph, traversal rates, relative times";
  Format.printf "%a@." (DG.pp ~pp_delay:Lin.pp ~pp_prob:Rf.pp) sres.Rates.dg;
  List.iteri
    (fun i (re : _ Rates.rated_edge) ->
      Format.printf "  r%d = %a@." (i + 1) Rf.pp re.Rates.rate)
    sres.Rates.edge_rate;
  let fr n = Poly.var (Var.frequency n) in
  let r1 = Rf.make (fr "t4") (Poly.add (fr "t4") (fr "t5")) in
  let r3 = Rf.make (fr "t5") (Poly.add (fr "t4") (fr "t5")) in
  let r2 =
    Rf.make
      (Poly.mul (fr "t5") (fr "t8"))
      (Poly.mul (Poly.add (fr "t4") (fr "t5")) (Poly.add (fr "t8") (fr "t9")))
  in
  let rates = List.map (fun (re : _ Rates.rated_edge) -> re.Rates.rate) sres.Rates.edge_rate in
  check "r(loss) = f4/(f4+f5)            (paper: r1)" (List.exists (Rf.equal r1) rates);
  check "r(to ack decision) = f5/(f4+f5) (paper: r3, renormalized)"
    (List.exists (Rf.equal r3) rates);
  check "r(success) = f5 f8 / ((f4+f5)(f8+f9)) (paper: r2)" (List.exists (Rf.equal r2) rates);
  (* delays of Figure 8 *)
  let d (re : _ Rates.rated_edge) = re.Rates.edge.DG.delay in
  let f n = Lin.var (Var.firing n) and e3 = Lin.var (Var.enabling "t3") in
  let sum = List.fold_left Lin.add Lin.zero in
  let d1 = sum [ e3; f "t3"; f "t2" ] in
  let d2 = sum [ f "t8"; f "t7"; f "t1"; f "t2" ] in
  let d3 = sum [ f "t5"; f "t6" ] in
  let d4 = Lin.add (Lin.sub e3 (Lin.add (f "t5") (f "t6"))) (Lin.add (f "t3") (f "t2")) in
  let delays = List.map d sres.Rates.edge_rate in
  check "d1 = E(t3)+F(t3)+F(t2)" (List.exists (Lin.equal d1) delays);
  check "d2 = F(t8)+F(t7)+F(t1)+F(t2)" (List.exists (Lin.equal d2) delays);
  check "d3 = F(t5)+F(t6)" (List.exists (Lin.equal d3) delays);
  check "d4 = E(t3)-F(t5)-F(t6)+F(t3)+F(t2)" (List.exists (Lin.equal d4) delays)

(* ---------------- THRPT ---------------- *)

let thrpt () =
  section "THRPT" "the throughput expression (paper section 4, final result)";
  let thr = M.Symbolic.throughput sres sgraph SW.t_process_ack in
  Format.printf "  throughput (general, canonical) = %a@." Rf.pp thr;
  check "canonical numerator is f(t8)*f(t5)"
    (Poly.equal (Rf.num thr) (Poly.mul (Poly.var (Var.frequency "t8")) (Poly.var (Var.frequency "t5"))));
  let spec = M.Symbolic.subst_frequencies thr paper_freq_bindings in
  Format.printf "  throughput|5%% loss = %a@." Rf.pp spec;
  let paper_expr =
    let c s = Poly.const (qd s) in
    let fv n = Poly.var (Var.firing n) in
    let e3 = Poly.var (Var.enabling "t3") in
    Rf.make (c "18.05")
      (Poly.add
         (Poly.mul (c "1.95") (Poly.add e3 (fv "t3")))
         (Poly.add
            (Poly.mul (c "20") (fv "t2"))
            (Poly.mul (c "18.05")
               (List.fold_left Poly.add Poly.zero [ fv "t1"; fv "t5"; fv "t6"; fv "t7"; fv "t8" ]))))
  in
  check
    "specialization equals the paper's closed form 18.05/(1.95(E(t3)+F(t3)) + 20 F(t2) + 18.05(F(t1)+F(t5)+F(t6)+F(t7)+F(t8)))"
    (Rf.equal spec paper_expr);
  let v = M.Symbolic.eval_at thr (paper_time_bindings @ paper_freq_bindings) in
  Format.printf "  at Figure 1b delays: %s msg/ms  (%.4f msg/s, mean %s ms/msg)@." (qf v)
    (Q.to_float v *. 1000.) (qf (Q.inv v));
  check "equals the exact concrete analysis"
    (Q.equal v (M.Concrete.throughput cres cgraph SW.t_process_ack));
  check "evaluates to 18.05/6329.22 msg/ms = 2.8519 msg/s"
    (Q.equal v (Q.div (qd "18.05") (qd "6329.22")));
  (* Monte-Carlo cross-check *)
  let t7 = Net.trans_of_name (Tpn.net ctpn) "t7" in
  let stats = Sim.run ~seed:42 ~horizon:(Q.of_int 3_000_000) ctpn in
  let sim = Sim.throughput stats t7 in
  Format.printf "  simulated (3e6 ms): %.6f msg/ms@." sim;
  check "simulation within 3% of the expression"
    (Float.abs (sim -. Q.to_float v) /. Q.to_float v < 0.03)

(* ---------------- EXT-SWEEP ---------------- *)

(* one loss-rate point: symbolic eval + simulation + full ABP analysis.
   Pure in the loss percentage, so the points fan out on the worker pool;
   each replication seeds from its own pct, keeping rows -j independent *)
let sweep_point thr pct =
  let loss = Q.of_ints pct 100 in
  let keep = Q.sub Q.one loss in
  let a =
    M.Symbolic.eval_at thr
      (paper_time_bindings
      @ [ ("f(t4)", loss); ("f(t5)", keep); ("f(t8)", keep); ("f(t9)", loss) ])
  in
  let p = { SW.paper_params with SW.packet_loss = loss; ack_loss = loss } in
  let tpn = SW.concrete p in
  let stats = Sim.run ~seed:(1000 + pct) ~horizon:(Q.of_int 600_000) tpn in
  let sim = Sim.throughput stats (Net.trans_of_name (Tpn.net tpn) "t7") in
  let abp_tpn =
    Abp.concrete { Abp.default_params with Abp.packet_loss = loss; ack_loss = loss }
  in
  let abp_g = CG.build abp_tpn in
  let abp_res = M.Concrete.analyze abp_g in
  let abp =
    List.fold_left
      (fun acc t -> Q.add acc (M.Concrete.throughput abp_res abp_g t))
      Q.zero Abp.deliveries
  in
  (pct, Q.to_float a *. 1000., sim *. 1000., Q.to_float abp *. 1000.)

let sweep_pcts = [ 1; 2; 5; 10; 20; 30 ]

let ext_sweep () =
  section "EXT-SWEEP" "throughput vs loss rate (analytic, simulated, ABP)";
  let thr = M.Symbolic.throughput sres sgraph SW.t_process_ack in
  (* the points run on the pool; rows come back in input order, so the
     table and the monotonicity check are identical at any jobs count *)
  let rows = Tpan_par.Pool.map (sweep_point thr) sweep_pcts in
  Format.printf "  %6s  %12s  %12s  %12s@." "loss" "analytic/s" "simulated/s" "ABP/s";
  List.iter
    (fun (pct, af, sim, abp) ->
      Format.printf "  %5d%%  %12.4f  %12.4f  %12.4f@." pct af sim abp)
    rows;
  let monotone =
    let rec go last = function
      | [] -> true
      | (_, af, _, _) :: rest -> af <= last && go af rest
    in
    go infinity rows
  in
  check "throughput decreases monotonically with loss" monotone

(* ---------------- EXT-TIMEOUT ---------------- *)

let ext_timeout () =
  section "EXT-TIMEOUT" "throughput vs timeout period (symbolic sweep)";
  let thr = M.Symbolic.throughput sres sgraph SW.t_process_ack in
  Format.printf "  %10s  %12s@." "E(t3) ms" "msg/s";
  let values =
    List.map
      (fun t ->
        let v =
          M.Symbolic.eval_at thr
            ((("E(t3)", Q.of_int t) :: List.remove_assoc "E(t3)" paper_time_bindings)
            @ paper_freq_bindings)
        in
        Format.printf "  %10d  %12.4f@." t (Q.to_float v *. 1000.);
        Q.to_float v)
      [ 230; 250; 300; 500; 1000; 2000; 4000 ]
  in
  let rec decreasing = function a :: (b :: _ as rest) -> a > b && decreasing rest | _ -> true in
  check "longer timeouts only hurt (monotone decreasing above the RTT bound)" (decreasing values);
  check "tight timeout (230 ms) beats the paper's 1000 ms by > 25%"
    (List.nth values 0 /. List.nth values 4 > 1.25)

(* ---------------- EXT-ABP ---------------- *)

let ext_abp () =
  section "EXT-ABP" "alternating-bit protocol (the paper's suggested extension)";
  let g = CG.build (Abp.concrete Abp.default_params) in
  Format.printf "  concrete TRG: %d states, %d edges, %d decision nodes@."
    (CG.Graph.num_states g) (CG.Graph.num_edges g)
    (List.length (Sem.branching_states g));
  check "52 states, 6 decision nodes"
    (CG.Graph.num_states g = 52 && List.length (Sem.branching_states g) = 6);
  let sg = SG.build (Abp.symbolic ()) in
  check "symbolic graph isomorphic (52 states)" (SG.Graph.num_states sg = 52);
  let res = M.Concrete.analyze g in
  let thr =
    List.fold_left (fun acc t -> Q.add acc (M.Concrete.throughput res g t)) Q.zero Abp.deliveries
  in
  Format.printf "  ABP delivery rate at Figure 1b timings: %.4f msg/s@."
    (Q.to_float thr *. 1000.);
  let sw = M.Concrete.throughput cres cgraph SW.t_process_ack in
  check "ABP within 5% of stop-and-wait (same loss cost, no prepare step)"
    (Float.abs ((Q.to_float thr /. Q.to_float sw) -. 1.0) < 0.05)

(* ---------------- EXT-SCHED ---------------- *)

let ext_sched () =
  section "EXT-SCHED" "weighted channel arbitration (closed-form share)";
  let tpn = Sc.symbolic () in
  let g = SG.build tpn in
  let res = M.Symbolic.analyze g in
  let share_a =
    M.edge_time_share res (fun e ->
        List.exists (fun t -> Net.trans_name (Tpn.net tpn) t = Sc.t_grab_a) e.DG.fired)
  in
  Format.printf "  station A channel share = %a@." Rf.pp share_a;
  let fa = Poly.var (Var.frequency "a") and fb = Poly.var (Var.frequency "b") in
  let txa = Poly.var (Var.firing "txa") and txb = Poly.var (Var.firing "txb") in
  check "share(A) = f(a)F(txa) / (f(a)F(txa) + f(b)F(txb))"
    (Rf.equal share_a (Rf.make (Poly.mul fa txa) (Poly.add (Poly.mul fa txa) (Poly.mul fb txb))))

(* ---------------- EXT-LATENCY ---------------- *)

let ext_latency () =
  section "EXT-LATENCY" "first-passage times (closed-form latency)";
  let module P = Tpan_perf.Passage in
  let deliver =
    Option.get (P.concrete_latency cgraph ~event:(P.completion_event ctpn SW.t_receive) ())
  in
  let acked =
    Option.get (P.concrete_latency cgraph ~event:(P.completion_event ctpn SW.t_process_ack) ())
  in
  Format.printf "  mean time to first delivery: %s ms@." (qf deliver);
  Format.printf "  mean time to first acked round trip: %s ms@." (qf acked);
  (* hand computation: 1 + x with x = .95(120.2) + .05(1002 + x) *)
  check "delivery latency = 16524/95 ms (hand-derived)"
    (Q.equal deliver (Q.div (qd "165.24") (qd "0.95")));
  check "ack latency exceeds delivery latency by >= one ack leg"
    (Q.compare (Q.sub acked deliver) (qd "120.2") >= 0);
  let sdeliver =
    Option.get
      (Tpan_perf.Passage.symbolic_latency sgraph
         ~event:(Tpan_perf.Passage.completion_event stpn SW.t_receive)
         ())
  in
  Format.printf "  symbolic delivery latency = %a@." Rf.pp sdeliver;
  let v = M.Symbolic.eval_at sdeliver (paper_time_bindings @ paper_freq_bindings) in
  check "symbolic latency evaluates to the concrete value" (Q.equal v deliver)

(* ---------------- EXT-INTERVAL ---------------- *)

let ext_interval () =
  section "EXT-INTERVAL" "delay ranges (the paper's future work, on the evaluation side)";
  let module Iv = Tpan_symbolic.Interval in
  let thr = M.Symbolic.throughput sres sgraph SW.t_process_ack in
  let env v =
    match Var.name v with
    | "E(t3)" -> Iv.point (Q.of_int 1000)
    | "F(t1)" | "F(t2)" | "F(t3)" -> Iv.point Q.one
    | "F(t4)" | "F(t5)" | "F(t8)" | "F(t9)" -> Iv.make (Q.of_int 95) (Q.of_int 115)
    | "F(t6)" | "F(t7)" -> Iv.point (qd "13.5")
    | "f(t4)" | "f(t9)" -> Iv.point (Q.of_ints 1 20)
    | "f(t5)" | "f(t8)" -> Iv.point (Q.of_ints 19 20)
    | other -> failwith other
  in
  let bounds = Iv.eval_ratfun env thr in
  Format.printf "  transit time in [95, 115] ms -> throughput in %a msg/ms@." Iv.pp bounds;
  Format.printf "  (i.e. [%.4f, %.4f] msg/s)@."
    (Q.to_float bounds.Iv.lo *. 1000.)
    (Q.to_float bounds.Iv.hi *. 1000.);
  let exact_at transit =
    M.Symbolic.eval_at thr
      ([
         ("E(t3)", Q.of_int 1000);
         ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
         ("F(t4)", Q.of_int transit); ("F(t5)", Q.of_int transit);
         ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
         ("F(t8)", Q.of_int transit); ("F(t9)", Q.of_int transit);
       ]
      @ paper_freq_bindings)
  in
  check "bounds bracket the exact values across the range"
    (List.for_all (fun t -> Iv.contains bounds (exact_at t)) [ 95; 100; 106; 110; 115 ]);
  check "bounds are finite and positive" (Q.sign bounds.Iv.lo > 0)

(* ---------------- EXT-RING ---------------- *)

let ext_ring () =
  section "EXT-RING" "token ring: closed-form cycle time and state-space scaling";
  let module TR = Tpan_protocols.Token_ring in
  let p = TR.default_params in
  let g = CG.build (TR.concrete p) in
  let res = M.Concrete.analyze g in
  let n0 = List.hd res.Rates.dg.DG.nodes in
  let cycle = M.mean_time_between_visits res n0 in
  Format.printf "  4 stations, p=1/3, tx=40, pass=5: token rotation = %s ms@." (qf cycle);
  check "rotation time = N(pass + p*tx) = 220/3" (Q.equal cycle (Q.of_ints 220 3));
  Format.printf "  scaling: %8s %8s %8s@." "stations" "states" "decisions";
  let ok = ref true in
  List.iter
    (fun n ->
      let g = CG.build (TR.concrete { p with TR.stations = n }) in
      let states = CG.Graph.num_states g in
      Format.printf "          %8d %8d %8d@." n states (List.length (Sem.branching_states g));
      if states <> 3 * n then ok := false)
    [ 2; 4; 8; 16; 32; 64 ];
  check "state space grows linearly (3 per station)" !ok;
  let sg = SG.build (TR.symbolic ~stations:3) in
  let sres = M.Symbolic.analyze sg in
  let scycle = M.mean_time_between_visits sres (List.hd sres.Rates.dg.DG.nodes) in
  Format.printf "  symbolic 3-station rotation = %a@." Rf.pp scycle

(* ---------------- EXT-PIPE ---------------- *)

let ext_pipe () =
  section "EXT-PIPE" "store-and-forward pipeline: concurrency and pacing";
  let module PL = Tpan_protocols.Pipeline in
  let p = PL.default_params in
  let tpn = PL.concrete p in
  let g = CG.build tpn in
  let max_active =
    Array.fold_left
      (fun acc st ->
        let k = Array.fold_left (fun k r -> if Q.is_zero r then k else k + 1) 0 st.Sem.rft in
        Stdlib.max acc k)
      0 g.Sem.states
  in
  Format.printf "  TRG: %d states; up to %d hops firing concurrently@."
    (CG.Graph.num_states g) max_active;
  check "true concurrency (>= 3 simultaneous firings)" (max_active >= 3);
  (match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
   | Some (period, states) ->
     let t = Net.trans_of_name (Tpn.net tpn) PL.t_deliver in
     let deliveries =
       List.fold_left
         (fun acc s ->
           match g.Sem.out.(s) with
           | [ e ] -> acc + List.length (List.filter (( = ) t) e.Sem.completed)
           | _ -> acc)
         0 states
     in
     let per_packet = Q.div period (Q.of_int deliveries) in
     Format.printf "  steady cycle: %s ms per packet (bottleneck bound %s)@." (qf per_packet)
       (qf (PL.bottleneck p));
     check "pacing = worst adjacent-hop sum (marked-graph bound)"
       (Q.equal per_packet (PL.bottleneck p))
   | None -> check "pipeline reaches a steady cycle" false);
  let stats = Sim.run ~seed:3 ~horizon:(Q.of_int 200_000) tpn in
  let sim = Sim.throughput stats (Net.trans_of_name (Tpn.net tpn) PL.t_deliver) in
  Format.printf "  simulated: %.6f pkt/ms@." sim;
  check "simulation within 1% of 1/bottleneck"
    (Float.abs ((sim *. Q.to_float (PL.bottleneck p)) -. 1.) < 0.01)

(* ---------------- EXT-WINDOW ---------------- *)

let ext_window () =
  section "EXT-WINDOW" "parallel channels (a per-flow window): exact additivity";
  let small =
    {
      SW.timeout = Q.of_int 7; send_time = Q.one; transit_time = Q.of_int 2;
      process_time = Q.one; packet_loss = Q.of_ints 1 10; ack_loss = Q.of_ints 1 10;
    }
  in
  let sg1 = CG.build (SW.concrete small) in
  let r1 = M.Concrete.analyze sg1 in
  let single = M.Concrete.throughput r1 sg1 SW.t_process_ack in
  Format.printf "  %9s %9s %14s@." "channels" "states" "aggregate thr";
  Format.printf "  %9d %9d %14s@." 1 (CG.Graph.num_states sg1) (qf single);
  let ok = ref true in
  List.iter
    (fun n ->
      let g = CG.build ~max_states:200_000 (SW.parallel ~channels:n small) in
      let res = M.Concrete.analyze g in
      let total =
        List.fold_left
          (fun acc c -> Q.add acc (M.Concrete.throughput res g (Printf.sprintf "t7_c%d" c)))
          Q.zero
          (List.init n Fun.id)
      in
      Format.printf "  %9d %9d %14s@." n (CG.Graph.num_states g) (qf total);
      if not (Q.equal total (Q.mul (Q.of_int n) single)) then ok := false)
    [ 2 ];
  check "aggregate throughput = channels x single (exact, through the interleaved graph)" !ok;
  Format.printf
    "  (the paper-grain delays make the joint phase lattice astronomically large;@.\
    \   coarse delays keep it at hundreds of states — see Stopwait.parallel docs)@."

(* ---------------- EXT-SENS ---------------- *)

let ext_sens () =
  section "EXT-SENS" "sensitivity of throughput to every parameter (exact gradients)";
  let thr = M.Symbolic.throughput sres sgraph SW.t_process_ack in
  let at = paper_time_bindings @ paper_freq_bindings in
  let sens = M.Symbolic.sensitivities thr ~at in
  Format.printf "  %-8s %14s %12s@." "param" "d(thr)/d(v)" "elasticity";
  List.iter
    (fun (s : M.Symbolic.sensitivity) ->
      Format.printf "  %-8s %14.3e %12.4f@."
        (Var.name s.M.Symbolic.var)
        (Q.to_float s.M.Symbolic.gradient)
        (Q.to_float s.M.Symbolic.elasticity))
    sens;
  check "all time-parameter gradients are negative (delays only hurt)"
    (List.for_all
       (fun (s : M.Symbolic.sensitivity) ->
         (not (Var.is_time s.M.Symbolic.var)) || Q.sign s.M.Symbolic.gradient < 0)
       sens);
  let find name = List.find (fun s -> Var.name s.M.Symbolic.var = name) sens in
  check "packet-loss weight hurts, delivery weight helps"
    (Q.sign (find "f(t4)").M.Symbolic.gradient < 0
    && Q.sign (find "f(t5)").M.Symbolic.gradient > 0);
  (* at the paper point the timeout and the two transit legs dominate *)
  let top3 =
    match sens with
    | a :: b :: c :: _ -> List.map (fun s -> Var.name s.M.Symbolic.var) [ a; b; c ]
    | _ -> []
  in
  check "timeout and transit legs are the three dominant parameters"
    (List.sort compare top3 = [ "E(t3)"; "F(t5)"; "F(t8)" ])

(* ---------------- EXT-BATCH ---------------- *)

let ext_batch () =
  section "EXT-BATCH" "blast transfer: batching gain vs loss rate (who wins where)";
  let module B = Tpan_protocols.Batch in
  let thr w pct =
    let loss = Q.of_ints pct 100 in
    let p = { B.default_params with B.window = w; packet_loss = loss; ack_loss = loss } in
    let tpn = B.concrete p in
    let g = CG.build ~max_states:200_000 tpn in
    let res = M.Concrete.analyze g in
    Q.to_float (Q.mul (Q.of_int w) (M.Concrete.throughput res g B.t_done)) *. 1000.
  in
  Format.printf "  %6s %10s %10s %10s %12s@." "loss" "w=1" "w=2" "w=3" "gain w3/w1";
  let ratios =
    List.map
      (fun pct ->
        let a = thr 1 pct and b = thr 2 pct and c = thr 3 pct in
        Format.printf "  %5d%% %10.4f %10.4f %10.4f %12.2f@." pct a b c (c /. a);
        (a, b, c))
      [ 1; 5; 10; 20; 30; 40 ]
  in
  check "batching always helps at equal loss"
    (List.for_all (fun (a, b, c) -> b > a && c > b) ratios);
  let first = match ratios with (a, _, c) :: _ -> c /. a | [] -> 0. in
  let last = match List.rev ratios with (a, _, c) :: _ -> c /. a | [] -> 0. in
  check
    (Printf.sprintf "the batching gain shrinks with loss (%.2fx at 1%% -> %.2fx at 40%%)" first last)
    (first > last +. 0.5);
  check "w=1 blast is exactly the paper's stop-and-wait"
    (let p1 = { B.default_params with B.window = 1 } in
     let g = CG.build (B.concrete p1) in
     let res = M.Concrete.analyze g in
     Q.equal (M.Concrete.throughput res g B.t_done)
       (M.Concrete.throughput cres cgraph SW.t_process_ack))

(* ---------------- EXT-RANGE ---------------- *)

let ext_range () =
  section "EXT-RANGE" "ranges of firing times (the paper's proposed model extension)";
  let module R = Tpan_core.Ranged in
  let widen lo hi =
    [ ("t4", (Q.of_int lo, Q.of_int hi)); ("t5", (Q.of_int lo, Q.of_int hi));
      ("t8", (Q.of_int lo, Q.of_int hi)); ("t9", (Q.of_int lo, Q.of_int hi)) ]
  in
  (* transit anywhere in [100, 115] ms, timeout 1000: worst-case round trip
     is 243.5 ms, comfortably inside the timeout *)
  let generous = R.of_tpn ~widen:(widen 100 115) ctpn in
  let markings = R.reachable_markings generous in
  Format.printf "  transit in [100,115], timeout 1000: %d reachable markings, safe@."
    (List.length markings);
  check "ranged behaviour adds no markings (9, as in the fixed-delay model)"
    (List.length markings = 9 && R.safe generous);
  (* a timeout inside the worst-case round trip violates constraint (1)
     for part of the range: premature retransmission breaks safeness *)
  let tight =
    R.of_tpn ~widen:(widen 100 115)
      (SW.concrete { SW.paper_params with SW.timeout = Q.of_int 230 })
  in
  Format.printf "  transit in [100,115], timeout 230 (< max RTT 243.5): %s@."
    (if R.safe tight then "safe (unexpected)" else "safeness assumption violated");
  check "a timeout inside the round-trip range breaks the safeness assumption"
    (not (R.safe tight));
  check "the fixed-delay boundary case stays safe (timeout 244 > 243.5)"
    (R.safe
       (R.of_tpn ~widen:(widen 100 115)
          (SW.concrete { SW.paper_params with SW.timeout = Q.of_int 244 })))

(* ---------------- EXT-EXP ---------------- *)

let ext_exp () =
  section "EXT-EXP" "deterministic delays vs the exponential (Markov) assumption";
  let module Exp = Tpan_perf.Exponential in
  let module PL = Tpan_protocols.Pipeline in
  let module TR = Tpan_protocols.Token_ring in
  (* pipeline: variability costs throughput *)
  let p = PL.default_params in
  let tpn = PL.concrete p in
  let det = Q.inv (PL.bottleneck p) in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  let expo = Exp.throughput c ~steady:pi (Net.trans_of_name (Tpn.net tpn) PL.t_deliver) in
  Format.printf "  pipeline: deterministic %.6f pkt/ms  vs  exponential %.6f pkt/ms (%.1f%%)@."
    (Q.to_float det) (Q.to_float expo)
    (100. *. Q.to_float expo /. Q.to_float det);
  check "exponential assumption under-predicts pipeline throughput"
    (Q.compare expo det < 0);
  (* sequential ring with equal conflict means: the readings coincide *)
  let rp = { TR.default_params with TR.tx_time = Q.zero } in
  let rtpn = TR.concrete rp in
  let rg = CG.build rtpn in
  let rres = M.Concrete.analyze rg in
  let rdet = M.Concrete.throughput rres rg (TR.use 0) in
  let rc = Exp.build rtpn in
  let rpi = Exp.steady_state rc in
  let rexp = Exp.throughput rc ~steady:rpi (Net.trans_of_name (Tpn.net rtpn) (TR.use 0)) in
  Format.printf "  sequential ring (equal means): det %s = exp %s@." (qf rdet) (qf rexp);
  check "sequential systems are insensitive to the distribution assumption"
    (Q.equal rdet rexp);
  (* Erlang-k stages: shrinking the service variance closes the gap. The
     three expansions are independent solves, so they fan out on the pool
     (inside a worker the rate solver's own row-parallelism steps aside
     via the nested guard); printing happens after the join, in order *)
  let thr k =
    (* per-run allocation: deltas stay per-domain correct even when the
       stages fan out on the pool, because each task runs start-to-finish
       on one domain *)
    let mw0 = Gc.minor_words () in
    let tpn = Exp.erlang_expand ~stages:k (PL.concrete p) in
    let c = Exp.build ~max_states:200_000 tpn in
    let pi = Exp.steady_state c in
    let name = PL.t_deliver ^ (if k = 1 then "" else "__" ^ string_of_int (k - 1)) in
    let v = Exp.throughput c ~steady:pi (Net.trans_of_name (Tpn.net tpn) name) in
    exp_records := (k, Gc.minor_words () -. mw0) :: !exp_records;
    v
  in
  (* the Erlang-3 expansion dominates the full harness's wall time; quick
     mode stops at 2 stages, which still exhibits the convergence *)
  let stages = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let values = Tpan_par.Pool.map thr stages in
  List.iter
    (fun (k, mw) ->
      Format.printf "  Erlang-%d solve allocated %.3e minor words@." k mw)
    (List.sort compare !exp_records);
  let fractions =
    List.map2
      (fun k v ->
        let frac = Q.to_float v /. Q.to_float det in
        Format.printf "  pipeline under Erlang-%d service: %.1f%% of deterministic@." k
          (100. *. frac);
        frac)
      stages values
  in
  check "Erlang stages converge monotonically toward the deterministic bound"
    (match fractions with
     | [ a; b; c ] -> a < b && b < c && c < 1.0
     | [ a; b ] -> a < b && b < 1.0
     | _ -> false)

(* ---------------- EXT-PAR ---------------- *)

(* Speedup of the worker pool on the three workloads the CLI parallelises:
   the parameter-grid sweep, the exponential (Markov) solve whose
   elimination loop runs through [parallel_for], and Monte-Carlo
   replication. Each workload runs at -j1 and at the recommended jobs
   count; the results must be identical (the pool's headline guarantee)
   and both wall times are recorded in BENCH_tpan.json. The >= 2x speedup
   check only applies on multicore hosts — on a single-core container the
   pool degrades to the sequential path and the ratio is ~1. *)
let ext_par () =
  section "EXT-PAR" "worker-pool speedup and -j determinism";
  let module Pool = Tpan_par.Pool in
  let module Sweep = Tpan_perf.Sweep in
  let module Exp = Tpan_perf.Exponential in
  let module PL = Tpan_protocols.Pipeline in
  let jn = Pool.recommended_jobs () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let mw0 = Gc.minor_words () +. pool_minor_sum () in
    let r = f () in
    let mw = Gc.minor_words () +. pool_minor_sum () -. mw0 in
    (r, Unix.gettimeofday () -. t0, mw)
  in
  let record name run_at =
    let r1, t1, mw1 = wall (fun () -> run_at 1) in
    let rn, tn, mwn = wall (fun () -> run_at jn) in
    parallel_records := (name, jn, t1, tn, mw1, mwn) :: !parallel_records;
    Format.printf
      "  %-18s  j1 %8.3f s (%.2e mw)   j%d %8.3f s (%.2e mw)   speedup %.2fx@." name t1
      mw1 jn tn mwn (t1 /. tn);
    (r1, rn)
  in
  (* 1. concrete parameter-grid sweep: per-point rebuild + full analysis *)
  let axes =
    [ { Sweep.name = "timeout"; lo = Q.of_int 250; hi = Q.of_int 1000; steps = 8 } ]
  in
  let make pt =
    SW.concrete { SW.paper_params with SW.timeout = List.assoc "timeout" pt }
  in
  let s1, sn =
    record "sweep-grid" (fun jobs ->
        Sweep.over_tpn ~jobs ~make ~throughputs:[ SW.t_process_ack ] axes)
  in
  check "sweep grid is byte-identical at -j1 and -jN"
    (Tpan_obs.Jsonv.to_string (Sweep.to_json s1)
    = Tpan_obs.Jsonv.to_string (Sweep.to_json sn));
  (* 2. Markov solve of the Erlang-k pipeline: the dominant EXT-EXP cost;
     the parallelism lives inside the exact Gauss-Jordan elimination.
     Quick mode solves the 2-stage expansion instead of the 3-stage one *)
  let estages = if quick then 2 else 3 in
  let ename = Printf.sprintf "erlang-%d-solve" estages in
  let e1, en =
    record ename (fun jobs ->
        Pool.set_default_jobs jobs;
        let tpn = Exp.erlang_expand ~stages:estages (PL.concrete PL.default_params) in
        let c = Exp.build ~max_states:200_000 tpn in
        let pi = Exp.steady_state c in
        let name = PL.t_deliver ^ "__" ^ string_of_int (estages - 1) in
        Exp.throughput c ~steady:pi (Net.trans_of_name (Tpn.net tpn) name))
  in
  Pool.set_default_jobs jn;
  check "Markov solve is exact and identical at -j1 and -jN" (Q.equal e1 en);
  (* 3. Monte-Carlo replication with split seeds *)
  let t7 = Net.trans_of_name (Tpn.net ctpn) "t7" in
  let m1, mn =
    record "monte-carlo-x8" (fun jobs ->
        Sim.run_many ~seed:11 ~jobs ~runs:8 ~horizon:(Q.of_int (scaled 150_000)) ctpn
          (fun stats -> Sim.throughput stats t7))
  in
  check "Monte-Carlo estimate is bit-identical at -j1 and -jN" (m1 = mn);
  (* scaled-down workloads are too small to amortize domain spawning, so
     the >= 2x assertions only run at full size on multicore hosts *)
  if jn > 1 && not quick && bench_scale >= 1.0 then begin
    let speedup name =
      match List.find_opt (fun (n, _, _, _, _, _) -> n = name) !parallel_records with
      | Some (_, _, t1, tn, _, _) -> t1 /. tn
      | None -> 0.
    in
    check "Markov solve speeds up >= 2x on the pool" (speedup ename >= 2.0);
    check "Monte-Carlo replication speeds up >= 2x on the pool"
      (speedup "monte-carlo-x8" >= 2.0)
  end
  else if jn <= 1 then
    Format.printf
      "  single-core host (recommended jobs = 1): speedup checks not applicable@."
  else
    Format.printf "  quick/scaled run: speedup checks skipped (workloads too small)@."

(* ---------------- CHECK ---------------- *)

module CK = Tpan_check.Check

let check_diff () =
  section "CHECK" "three-way differential checker (exact = numeric = simulated)";
  let cfg = { CK.default with CK.samples = scaled 5; runs = max 4 (scaled 6); seed = 7 } in
  let run_one name delivery tpn =
    match CK.check_tpn ~config:cfg ~name ~delivery tpn with
    | Ok o ->
      Format.printf "  %a@." CK.pp_outcome o;
      check (name ^ ": all points three-way agree") (CK.ok o && o.CK.agreed = o.CK.points)
    | Error e ->
      Format.printf "  %s: ERROR %s@." name (Tpan_core.Error.to_string e);
      check (name ^ ": all points three-way agree") false
  in
  run_one "stopwait-sym" "t7" stpn;
  run_one "abp" (List.hd Abp.deliveries) (Abp.concrete Abp.default_params);
  let cases = scaled 12 in
  let fuzz_cfg = { cfg with CK.samples = 2; seed = 70 } in
  let results = CK.fuzz ~config:fuzz_cfg ~cases () in
  let bad =
    List.filter
      (fun (_, r) -> match r with Ok o -> not (CK.ok o) | Error _ -> true)
      results
  in
  Format.printf "  fuzz: %d generated nets, %d disagreeing or errored@." cases
    (List.length bad);
  check "fuzz: every generated stop-and-wait-family net three-way agrees" (bad = []);
  (* Sensitivity: an off-by-one injected into the closed form must be
     flagged — otherwise the agreement checks above prove nothing. *)
  let thr = M.Symbolic.throughput sres sgraph "t7" in
  let buggy =
    Rf.subst
      (fun v ->
        if Var.equal v (Var.enabling "t3") then
          Some (Poly.add (Poly.var v) (Poly.const Q.one))
        else None)
      thr
  in
  match
    CK.check_tpn ~config:cfg ~expr:buggy ~name:"stopwait-sym(buggy)" ~delivery:"t7" stpn
  with
  | Ok o ->
    Format.printf "  injected bug: %d/%d points disagree@."
      (List.length o.CK.failures) o.CK.points;
    check "an injected off-by-one in E(t3) is caught" (not (CK.ok o))
  | Error e ->
    Format.printf "  injected bug: ERROR %s@." (Tpan_core.Error.to_string e);
    check "an injected off-by-one in E(t3) is caught" false

(* ---------------- ORACLE ---------------- *)

let oracle_model name make_tpn =
  (* a fresh net so the counters cover exactly one build + analysis *)
  let tpn = make_tpn () in
  let g = SG.build tpn in
  let _ = M.Symbolic.analyze g in
  let st = O.stats (Tpn.oracle tpn) in
  Format.printf "  %s: %a@." name O.pp_stats st;
  oracle_records := (name, st) :: !oracle_records;
  st

let oracle () =
  section "ORACLE" "memoized constraint oracle vs direct Fourier-Motzkin";
  let sw = oracle_model "stopwait" SW.symbolic in
  let abp = oracle_model "abp" Abp.symbolic in
  check "every query is answered without error (no unaccounted misses)"
    (let total st = st.O.trivial + st.O.hits + st.O.misses in
     total sw = sw.O.queries && total abp = abp.O.queries);
  check "stop-and-wait: >= 5x fewer eliminations than the uncached procedure"
    (sw.O.baseline_fm_runs >= 5 * sw.O.fm_runs);
  check "ABP: >= 5x fewer eliminations than the uncached procedure"
    (abp.O.baseline_fm_runs >= 5 * abp.O.fm_runs);
  check "witness filter fires (refutations without elimination)"
    (sw.O.witness_refutations > 0)

(* ---------------- CHECKPOINT ---------------- *)

(* What arming the flight recorder costs: the ABP TRG build (the
   checkpoint sits in the per-interned-state loop) repeated under an
   ambient deadline token that never fires — every checkpoint then pays
   the full poll (DLS load, heartbeat bump, deadline compare) — vs the
   bare run, where it short-circuits on the [None] match. The armed
   wall time is recorded as the CHECKPOINT figure so bench-diff gates
   it like any other; the ratio is asserted here, so a checkpoint that
   grows a syscall or an allocation fails the harness outright. *)
let checkpoint_overhead () =
  section "CHECKPOINT" "cancellation-checkpoint overhead on the TRG build";
  let reps = scaled 2000 in
  let tpn = Abp.concrete Abp.default_params in
  let build () = ignore (CG.build tpn) in
  let time f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    Sys.time () -. t0
  in
  build ();
  (* warm *)
  let bare = time build in
  let ctx = Tpan_obs.Context.make ~deadline:3600. () in
  let armed = Tpan_obs.Context.with_ctx ctx (fun () -> time build) in
  let ratio = armed /. bare in
  Format.printf "ABP TRG build x%d: bare %.4fs, armed %.4fs (ratio %.3f)@." reps bare
    armed ratio;
  check "armed checkpoints cost <= 1.25x bare (plus 10ms timer slack)"
    (armed <= (bare *. 1.25) +. 0.01)

(* ---------------- SERVE ---------------- *)

(* What the artifact cache buys a served deployment: the same POST /eval
   request on the symbolic ABP net, answered through [Serve.handle] (the
   exact code path behind the socket listener), first with the caches
   wiped before every request — each one pays the symbolic TRG build,
   the rate solve and the closed-form derivation — then against the warm
   cache, where only canonicalization, key lookup and ℚ evaluation
   remain. The wall time recorded as the SERVE figure is the cached
   batch, so bench-diff gates the hot serving path. *)
let serve_cache () =
  section "SERVE" "artifact cache on the /eval serving path (symbolic ABP)";
  let body =
    {|{"model":"abp-sym","transition":"recv_new0","point":{
        "E(to)":"1000","F(send)":"1","F(pkt)":"106.7","F(proc)":"13.5",
        "F(ack)":"106.7","f(lp)":"0.05","f(dp)":"0.95","f(la)":"0.05",
        "f(da)":"0.95"}}|}
  in
  let eval () =
    let r =
      Tpan_serve.Serve.handle Tpan_serve.Serve.default_config ~meth:"POST"
        ~target:"/eval" ~body
    in
    if r.Tpan_serve.Serve.status <> 200 then
      failwith (Printf.sprintf "SERVE: /eval answered %d: %s" r.Tpan_serve.Serve.status
           r.Tpan_serve.Serve.body)
  in
  let time reps f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let cold_reps = 5 and warm_reps = scaled 2000 in
  let cold =
    time cold_reps (fun () ->
        Tpan.Artifact.reset_caches ();
        eval ())
  in
  Tpan.Artifact.reset_caches ();
  eval ();
  (* warm the cache *)
  let warm = time warm_reps eval in
  let ratio = cold /. warm in
  Format.printf
    "  uncached /eval (full symbolic build) %.1fms/req, cached %.4fms/req — %.0fx@."
    (cold *. 1e3) (warm *. 1e3) ratio;
  check "cached /eval is >= 50x faster than the uncached analysis" (ratio >= 50.)

(* ---------------- SERVE-OBS ---------------- *)

(* What the telemetry plane costs the hot serving path: the same warm
   POST /eval request through [Serve.handle], once with [telemetry]
   off (bare: context, dispatch, cache hit, envelope) and once with the
   default instrumented plane (per-endpoint RED metrics with exemplars,
   in-flight tracking, tracez recording). The access log and ledger are
   opt-in file I/O, not part of the always-on plane, so they are not in
   this figure. The acceptance bound is 1.10x. *)
let serve_obs_bare_ms = ref Float.nan
let serve_obs_instr_ms = ref Float.nan
let serve_obs_ratio = ref Float.nan

let serve_obs () =
  section "SERVE-OBS" "telemetry-plane overhead on the warm /eval serving path";
  let body =
    {|{"model":"abp-sym","transition":"recv_new0","point":{
        "E(to)":"1000","F(send)":"1","F(pkt)":"106.7","F(proc)":"13.5",
        "F(ack)":"106.7","f(lp)":"0.05","f(dp)":"0.95","f(la)":"0.05",
        "f(da)":"0.95"}}|}
  in
  let bare_config =
    { Tpan_serve.Serve.default_config with Tpan_serve.Serve.telemetry = false }
  in
  let instr_config = Tpan_serve.Serve.default_config in
  let eval config () =
    let r = Tpan_serve.Serve.handle config ~meth:"POST" ~target:"/eval" ~body in
    if r.Tpan_serve.Serve.status <> 200 then
      failwith
        (Printf.sprintf "SERVE-OBS: /eval answered %d: %s" r.Tpan_serve.Serve.status
           r.Tpan_serve.Serve.body)
  in
  eval instr_config () (* warm the artifact cache for both variants *);
  let time reps f =
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    (Sys.time () -. t0) /. float_of_int reps
  in
  let reps = scaled 3000 in
  (* interleave the two variants so drift (GC pressure, frequency
     scaling) lands on both sides of the ratio evenly *)
  let rounds = 3 in
  let bare = ref 0. and instr = ref 0. in
  for _ = 1 to rounds do
    bare := !bare +. time reps (eval bare_config);
    instr := !instr +. time reps (eval instr_config)
  done;
  let bare = !bare /. float_of_int rounds
  and instr = !instr /. float_of_int rounds in
  let ratio = instr /. bare in
  serve_obs_bare_ms := bare *. 1e3;
  serve_obs_instr_ms := instr *. 1e3;
  serve_obs_ratio := ratio;
  Format.printf
    "  bare /eval %.4fms/req, instrumented %.4fms/req — overhead %.3fx@."
    (bare *. 1e3) (instr *. 1e3) ratio;
  check "instrumented /eval <= 1.10x bare request handling" (ratio <= 1.10)

(* ---------------- SERVE-KEEPALIVE ---------------- *)

(* What connection reuse buys the socket plane: the same GET /healthz
   request against a live in-process listener (telemetry off), once
   over a fresh TCP connection per request — connect, one request,
   [Connection: close], EOF — and once down a single keep-alive
   connection in pipelined batches of 20. The endpoint is deliberately
   near-free so the figure isolates the connection plane (accept,
   handshake, framing, teardown); what the artifact cache buys /eval
   is the SERVE figure's story. Wall-clock, not CPU time: the server
   runs in its own domain of this process. *)
let serve_keepalive_close_rps = ref Float.nan
let serve_keepalive_reuse_rps = ref Float.nan
let serve_keepalive_ratio = ref Float.nan

let serve_keepalive () =
  section "SERVE-KEEPALIVE" "keep-alive + pipelining vs connection-per-request";
  let config =
    {
      Tpan_serve.Serve.default_config with
      Tpan_serve.Serve.port = Some 0;
      telemetry = false;
      max_requests_per_conn = 0 (* unlimited: the reuse side is the point *);
    }
  in
  let port_cell = Atomic.make None in
  let srv =
    Domain.spawn (fun () ->
        Tpan_serve.Serve.run ~ready:(fun p -> Atomic.set port_cell p) config)
  in
  let rec wait_port tries =
    match Atomic.get port_cell with
    | Some p -> p
    | None ->
      if tries > 5000 then failwith "SERVE-KEEPALIVE: server never became ready";
      Unix.sleepf 0.002;
      wait_port (tries + 1)
  in
  Fun.protect
    ~finally:(fun () ->
      Tpan_serve.Serve.shutdown ();
      Domain.join srv)
    (fun () ->
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, wait_port 0) in
      let request ~close =
        Printf.sprintf "GET /healthz HTTP/1.1\r\nHost: bench\r\n%s\r\n"
          (if close then "Connection: close\r\n" else "")
      in
      let send_all fd s =
        let b = Bytes.unsafe_of_string s in
        let len = Bytes.length b in
        let rec go off =
          if off < len then
            match Unix.write fd b off (len - off) with
            | n -> go (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        in
        go 0
      in
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let refill fd =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "SERVE-KEEPALIVE: unexpected EOF"
        | n -> Buffer.add_subbytes buf chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      in
      let find_crlf2 s =
        let n = String.length s in
        let rec go i =
          if i + 3 >= n then None
          else if
            s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
          then Some i
          else go (i + 1)
        in
        go 0
      in
      let content_length head =
        let prefix = "content-length:" in
        match
          List.find_map
            (fun line ->
              let l = String.lowercase_ascii line in
              if String.length l >= String.length prefix
                 && String.sub l 0 (String.length prefix) = prefix
              then
                int_of_string_opt
                  (String.trim
                     (String.sub l (String.length prefix)
                        (String.length l - String.length prefix)))
              else None)
            (String.split_on_char '\n' head)
        with
        | Some n -> n
        | None -> failwith "SERVE-KEEPALIVE: response lacks Content-Length"
      in
      (* consume exactly one response off [fd]'s buffered stream *)
      let rec read_one fd =
        let s = Buffer.contents buf in
        match find_crlf2 s with
        | None ->
          refill fd;
          read_one fd
        | Some i ->
          let total = i + 4 + content_length (String.sub s 0 i) in
          if String.length s < total then begin
            refill fd;
            read_one fd
          end
          else begin
            Buffer.clear buf;
            Buffer.add_substring buf s total (String.length s - total)
          end
      in
      let close_n = max 50 (scaled 400) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to close_n do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        send_all fd (request ~close:true);
        Buffer.clear buf;
        read_one fd;
        try Unix.close fd with Unix.Unix_error _ -> ()
      done;
      let close_s = Unix.gettimeofday () -. t0 in
      let batch = 20 in
      let batches = max 10 (scaled 200) in
      let batch_req =
        String.concat "" (List.init batch (fun _ -> request ~close:false))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd addr;
      Buffer.clear buf;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batches do
        send_all fd batch_req;
        for _ = 1 to batch do
          read_one fd
        done
      done;
      let reuse_s = Unix.gettimeofday () -. t0 in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let close_rps = float_of_int close_n /. close_s in
      let reuse_rps = float_of_int (batch * batches) /. reuse_s in
      let ratio = reuse_rps /. close_rps in
      serve_keepalive_close_rps := close_rps;
      serve_keepalive_reuse_rps := reuse_rps;
      serve_keepalive_ratio := ratio;
      Format.printf
        "  connection-per-request %.0f req/s, pipelined keep-alive (batches of \
         %d) %.0f req/s — %.1fx@."
        close_rps batch reuse_rps ratio;
      check "keep-alive + pipelining >= 3x connection-per-request" (ratio >= 3.))

(* ---------------- PERF (bechamel) ---------------- *)

let perf () =
  section "PERF" "microbenchmarks of the analysis pipeline (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    Test.make_grouped ~name:"tpan"
      [
        Test.make ~name:"trg/stopwait-concrete" (Staged.stage (fun () -> CG.build ctpn));
        Test.make ~name:"trg/stopwait-symbolic" (Staged.stage (fun () -> SG.build stpn));
        Test.make ~name:"trg/abp-concrete"
          (Staged.stage
             (let tpn = Abp.concrete Abp.default_params in
              fun () -> CG.build tpn));
        Test.make ~name:"rates/stopwait-concrete"
          (Staged.stage (fun () -> M.Concrete.analyze cgraph));
        Test.make ~name:"rates/stopwait-symbolic"
          (Staged.stage (fun () -> M.Symbolic.analyze sgraph));
        Test.make ~name:"fm/entailment"
          (Staged.stage
             (let cs = Tpn.constraints stpn in
              let e3 = Lin.var (Var.enabling "t3") in
              let rt =
                List.fold_left Lin.add Lin.zero
                  [ Lin.var (Var.firing "t5"); Lin.var (Var.firing "t6"); Lin.var (Var.firing "t8") ]
              in
              fun () -> Tpan_symbolic.Constraints.compare_exprs cs rt e3));
        Test.make ~name:"oracle/entailment-cached"
          (Staged.stage
             (* the same query as fm/entailment, answered from the memo *)
             (let o = Tpn.oracle stpn in
              let e3 = Lin.var (Var.enabling "t3") in
              let rt =
                List.fold_left Lin.add Lin.zero
                  [ Lin.var (Var.firing "t5"); Lin.var (Var.firing "t6"); Lin.var (Var.firing "t8") ]
              in
              ignore (O.compare_exprs o rt e3);
              fun () -> O.compare_exprs o rt e3));
        Test.make ~name:"oracle/preprocess"
          (Staged.stage
             (let cs = Tpn.constraints stpn in
              fun () -> O.make cs));
        Test.make ~name:"sim/stopwait-10k-ms"
          (Staged.stage (fun () -> Sim.run ~seed:1 ~horizon:(Q.of_int 10_000) ctpn));
        Test.make ~name:"par/map-fanout-64"
          (Staged.stage
             (* fork-join overhead of one pool dispatch over 64 tasks *)
             (let xs = List.init 64 Fun.id in
              fun () -> Tpan_par.Pool.map (fun x -> x * x) xs));
        Test.make ~name:"bigint/mul-256-digit"
          (Staged.stage
             (let a = B.pow (B.of_int 10) 255 in
              let b = B.sub (B.pow (B.of_int 10) 255) B.one in
              fun () -> B.mul a b));
        Test.make ~name:"poly/expand-(x+y)^8"
          (Staged.stage
             (let x = Poly.var (Var.param "bx") and y = Poly.var (Var.param "by") in
              let s = Poly.add x y in
              fun () -> Poly.pow s 8));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Format.printf "  %-38s %14s %8s@." "benchmark" "time/run" "r^2";
  let measured =
    List.map
      (fun (name, ols) ->
        let est = match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan in
        let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
        let human t =
          if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
          else Printf.sprintf "%.0f ns" t
        in
        Format.printf "  %-38s %14s %8.4f@." name (human est) r2;
        (name, est, r2))
      rows
  in
  check "all benchmarks produced estimates"
    (List.for_all (fun (_, est, _) -> est > 0.) measured);
  measured

(* ---------------- BENCH_tpan.json ---------------- *)

let emit_json ~micro path =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let escape s =
    String.concat ""
      (List.map
         (function
           | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  in
  let num x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null" in
  let sep xs f = List.iteri (fun i x -> if i > 0 then pr ",\n"; f x) xs in
  pr "{\n  \"figures\": [\n";
  sep (List.rev !figure_times) (fun (name, s, gc) ->
      pr
        "    {\"name\": \"%s\", \"seconds\": %s, \"gc\": {\"minor_words\": %s, \
         \"major_words\": %s, \"promoted_words\": %s, \"major_collections\": %d, \
         \"compactions\": %d}}"
        (escape name) (num s) (num gc.minor_words) (num gc.major_words)
        (num gc.promoted_words) gc.major_collections gc.compactions);
  pr "\n  ],\n  \"metrics\": [\n";
  sep
    (Tpan_obs.Metrics.snapshot ())
    (fun (name, v) ->
      match v with
      | Tpan_obs.Metrics.Counter_v n ->
        pr "    {\"name\": \"%s\", \"kind\": \"counter\", \"value\": %d}" (escape name) n
      | Tpan_obs.Metrics.Gauge_v x ->
        pr "    {\"name\": \"%s\", \"kind\": \"gauge\", \"value\": %s}" (escape name) (num x)
      | Tpan_obs.Metrics.Histogram_v h ->
        pr
          "    {\"name\": \"%s\", \"kind\": \"histogram\", \"count\": %d, \"sum\": %s, \
           \"p50\": %s, \"p90\": %s, \"p99\": %s, \"max\": %s}"
          (escape name) h.count (num h.sum) (num h.p50) (num h.p90) (num h.p99)
          (num h.max));
  pr "\n  ],\n  \"oracle\": [\n";
  sep (List.rev !oracle_records) (fun (model, (st : O.stats)) ->
      let reduction =
        if st.O.fm_runs = 0 then float_of_int st.O.baseline_fm_runs
        else float_of_int st.O.baseline_fm_runs /. float_of_int st.O.fm_runs
      in
      pr
        "    {\"model\": \"%s\", \"queries\": %d, \"trivial\": %d, \"hits\": %d, \
         \"misses\": %d, \"witness_refutations\": %d, \"fm_runs\": %d, \
         \"baseline_fm_runs\": %d, \"reduction_factor\": %s}"
        (escape model) st.O.queries st.O.trivial st.O.hits st.O.misses
        st.O.witness_refutations st.O.fm_runs st.O.baseline_fm_runs (num reduction));
  pr "\n  ],\n  \"parallel\": [\n";
  sep (List.rev !parallel_records) (fun (name, jobs, t1, tn, mw1, mwn) ->
      pr
        "    {\"workload\": \"%s\", \"jobs\": %d, \"seconds_j1\": %s, \"seconds_jn\": %s, \
         \"speedup\": %s, \"minor_words_j1\": %s, \"minor_words_jn\": %s}"
        (escape name) jobs (num t1) (num tn)
        (num (if tn > 0. then t1 /. tn else Float.nan))
        (num mw1) (num mwn));
  pr "\n  ],\n  \"ext_exp\": [\n";
  sep
    (List.sort compare !exp_records)
    (fun (k, mw) -> pr "    {\"stages\": %d, \"minor_words\": %s}" k (num mw));
  pr "\n  ],\n  \"microbench\": [\n";
  sep micro (fun (name, ns, r2) ->
      pr "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}" (escape name)
        (num ns) (num r2));
  pr "\n  ],\n";
  pr
    "  \"serve_obs\": {\"bare_ms_per_req\": %s, \"instrumented_ms_per_req\": %s, \
     \"overhead_ratio\": %s},\n"
    (num !serve_obs_bare_ms) (num !serve_obs_instr_ms) (num !serve_obs_ratio);
  pr
    "  \"serve_keepalive\": {\"close_rps\": %s, \"reuse_rps\": %s, \
     \"speedup_ratio\": %s},\n"
    (num !serve_keepalive_close_rps) (num !serve_keepalive_reuse_rps)
    (num !serve_keepalive_ratio);
  pr "  \"checks\": {\"passed\": %d, \"failed\": %d}\n}\n" !passes !failures;
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." path

(* ---------------- BENCH_history.ndjson ----------------

   One NDJSON line per harness run: the regression time series that
   [tpan bench-diff] gates. Append-only, so the file accumulates across
   runs; the [scale] field keeps quick CI rows distinguishable from full
   local rows. *)

let append_history path =
  let module J = Tpan_obs.Jsonv in
  let line =
    J.Obj
      [
        ("schema", J.Int 1);
        ("timestamp", J.Float (Unix.time ()));
        ("version", J.Str Tpan.Version.string);
        ("scale", J.Float bench_scale);
        ("quick", J.Bool quick);
        ( "figures",
          J.List
            (List.rev_map
               (fun (name, s, gc) ->
                 J.Obj
                   [
                     ("name", J.Str name);
                     ("seconds", J.Float s);
                     ("major_words", J.Float gc.major_words);
                     ("minor_words", J.Float gc.minor_words);
                   ])
               !figure_times) );
        ("checks", J.Obj [ ("passed", J.Int !passes); ("failed", J.Int !failures) ]);
      ]
  in
  try
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc (J.to_string line ^ "\n");
    close_out oc;
    Format.printf "appended %s@." path
  with Sys_error msg -> Format.printf "warning: cannot append %s: %s@." path msg

let () =
  Format.printf "tpan reproduction harness — Razouk, Timed Petri Net performance expressions@.";
  if quick || bench_scale < 1.0 then
    Format.printf "(scaled run: quick=%b scale=%g — extension experiments shrunk)@." quick
      bench_scale;
  timed "FIG1" fig1;
  timed "FIG4" fig4;
  timed "FIG5" fig5;
  timed "FIG6" fig6;
  timed "FIG7" fig7;
  timed "FIG8" fig8;
  timed "THRPT" thrpt;
  timed "EXT-SWEEP" ext_sweep;
  timed "EXT-TIMEOUT" ext_timeout;
  timed "EXT-ABP" ext_abp;
  timed "EXT-SCHED" ext_sched;
  timed "EXT-LATENCY" ext_latency;
  timed "EXT-INTERVAL" ext_interval;
  timed "EXT-RING" ext_ring;
  timed "EXT-PIPE" ext_pipe;
  timed "EXT-WINDOW" ext_window;
  timed "EXT-SENS" ext_sens;
  timed "EXT-BATCH" ext_batch;
  timed "EXT-RANGE" ext_range;
  timed "EXT-EXP" ext_exp;
  timed "EXT-PAR" ext_par;
  timed "CHECK" check_diff;
  timed "ORACLE" oracle;
  timed "CHECKPOINT" checkpoint_overhead;
  timed "SERVE" serve_cache;
  timed "SERVE-OBS" serve_obs;
  timed "SERVE-KEEPALIVE" serve_keepalive;
  let micro = ref [] in
  timed "PERF" (fun () -> micro := perf ());
  emit_json ~micro:!micro "BENCH_tpan.json";
  append_history "BENCH_history.ndjson";
  Format.printf "@.====================@.";
  if !failures = 0 then Format.printf "ALL CHECKS PASSED@."
  else begin
    Format.printf "%d CHECK(S) FAILED@." !failures;
    exit 1
  end
