(* The pool's contract is determinism: for any jobs count, [map] is
   [List.map], metric totals match the sequential run, and everything
   built on the pool (sweeps, replicated simulation) renders to identical
   bytes. These tests run the same work at -j1 and -j4 and require exact
   agreement; on a single-core host the domains merely time-slice, which
   still exercises every code path. *)

module Pool = Tpan_par.Pool
module Metrics = Tpan_obs.Metrics
module Q = Tpan_mathkit.Q
module Sim = Tpan_sim.Simulator
module Sweep = Tpan_perf.Sweep
module Models = Tpan.Models

let test_map_matches_sequential () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x * 7919) mod 1009 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map -j%d" jobs)
        expected
        (Pool.map ~jobs f xs))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single" [ 9 ] (Pool.map ~jobs:4 (fun x -> x * 3) [ 3 ])

let test_map_reraises_first_error () =
  let f x = if x mod 3 = 0 then failwith (Printf.sprintf "boom %d" x) else x in
  let got =
    try
      ignore (Pool.map ~jobs:4 f [ 1; 2; 3; 4; 5; 6 ]);
      "no exception"
    with Failure msg -> msg
  in
  (* 3 is the first failing input in order, even if task 6 fails earlier
     in wall-clock time *)
  Alcotest.(check string) "first failure by input order" "boom 3" got

let test_try_map_captures_errors () =
  let f x = if x mod 2 = 0 then raise Exit else x * 10 in
  let results = Pool.try_map ~jobs:4 f [ 1; 2; 3; 4; 5 ] in
  let describe = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error (e : Pool.error) -> Printf.sprintf "err:%d" e.index
  in
  Alcotest.(check (list string))
    "errors land in their slots"
    [ "ok:10"; "err:1"; "ok:30"; "err:3"; "ok:50" ]
    (List.map describe results);
  List.iter
    (fun r ->
      match r with
      | Error (e : Pool.error) -> Alcotest.(check bool) "exn kept" true (e.exn = Exit)
      | Ok _ -> ())
    results

let test_parallel_for_covers_range () =
  let n = 1000 in
  List.iter
    (fun jobs ->
      let hits = Array.make n 0 in
      Pool.parallel_for ~jobs ~min_chunk:16 n (fun lo hi ->
          for i = lo to hi do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool)
        (Printf.sprintf "every index exactly once at -j%d" jobs)
        true
        (Array.for_all (fun k -> k = 1) hits))
    [ 1; 2; 4 ]

let test_nested_map_runs_sequentially () =
  let xs = List.init 8 (fun i -> i) in
  let result =
    Pool.map ~jobs:4
      (fun x ->
        (* nested call must not spawn further domains — and must still
           be correct *)
        let inner = Pool.map ~jobs:4 (fun y -> x + y) xs in
        Alcotest.(check bool) "inner call is in-worker" true (Pool.in_worker ());
        List.fold_left ( + ) 0 inner)
      xs
  in
  let expected = List.map (fun x -> List.fold_left (fun a y -> a + x + y) 0 xs) xs in
  Alcotest.(check (list int)) "nested results" expected result

let test_metrics_aggregation () =
  let c = Metrics.counter "test.par.increments" in
  let h = Metrics.histogram "test.par.obs" in
  Metrics.Counter.reset c;
  Metrics.Histogram.reset h;
  let work x =
    for _ = 1 to x do
      Metrics.Counter.incr c
    done;
    Metrics.Histogram.observe h (float_of_int x);
    x
  in
  let xs = List.init 50 (fun i -> i + 1) in
  ignore (Pool.map ~jobs:4 work xs);
  let expected_total = List.fold_left ( + ) 0 xs in
  Alcotest.(check int) "counter deltas sum at join" expected_total (Metrics.Counter.value c);
  Alcotest.(check int) "histogram observations all merged" 50 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9))
    "histogram sum merged"
    (float_of_int expected_total)
    (Metrics.Histogram.sum h)

let stopwait () =
  Tpan_protocols.Stopwait.concrete Tpan_protocols.Stopwait.paper_params

let test_run_many_matches_replicate () =
  let tpn = stopwait () in
  let horizon = Q.of_int 50_000 in
  let t7 = Tpan_petri.Net.trans_of_name (Tpan_core.Tpn.net tpn) "t7" in
  let output s = Sim.throughput s t7 in
  let seq = Sim.replicate ~seed:7 ~runs:6 ~horizon tpn output in
  List.iter
    (fun jobs ->
      let par = Sim.run_many ~seed:7 ~jobs ~runs:6 ~horizon tpn output in
      (* bit-identical: same seeds, same in-order Welford fold *)
      Alcotest.(check bool)
        (Printf.sprintf "mean identical at -j%d" jobs)
        true
        (Float.equal seq.Sim.mean par.Sim.mean);
      Alcotest.(check bool)
        (Printf.sprintf "std_error identical at -j%d" jobs)
        true
        (Float.equal seq.Sim.std_error par.Sim.std_error))
    [ 1; 2; 4 ]

(* Property: the replication mean converges to a long single run — both
   estimate the same steady-state throughput. *)
let test_run_many_converges () =
  let tpn = stopwait () in
  let t7 = Tpan_petri.Net.trans_of_name (Tpan_core.Tpn.net tpn) "t7" in
  let long = Sim.run ~seed:11 ~horizon:(Q.of_int 400_000) tpn in
  let est =
    Sim.run_many ~seed:11 ~jobs:4 ~runs:8 ~horizon:(Q.of_int 100_000) tpn (fun s ->
        Sim.throughput s t7)
  in
  let reference = Sim.throughput long t7 in
  Alcotest.(check bool)
    (Printf.sprintf "replication mean %.6g within 10%% of long-run %.6g" est.Sim.mean
       reference)
    true
    (Float.abs (est.Sim.mean -. reference) /. reference < 0.1)

let test_sweep_json_deterministic () =
  let m = Option.get (Models.find "stopwait") in
  let axes =
    match Sweep.parse_axis "timeout=250..1000:6" with
    | Ok a -> [ a ]
    | Error msg -> Alcotest.fail msg
  in
  let render jobs =
    Tpan_obs.Jsonv.to_string
      (Sweep.to_json
         (Sweep.over_tpn ~jobs ~make:m.Models.make ~throughputs:m.Models.deliveries axes))
  in
  let j1 = render 1 in
  Alcotest.(check bool) "non-trivial table" true (String.length j1 > 100);
  Alcotest.(check string) "sweep JSON byte-identical -j1 vs -j4" j1 (render 4)

let test_sweep_captures_bad_points () =
  let m = Option.get (Models.find "stopwait") in
  (* timeouts below the round trip make the model unsupported: those rows
     must carry errors while the valid rows keep their values *)
  let axes =
    match Sweep.parse_axis "timeout=100..1000:2" with
    | Ok a -> [ a ]
    | Error msg -> Alcotest.fail msg
  in
  let t = Sweep.over_tpn ~jobs:4 ~make:m.Models.make ~throughputs:m.Models.deliveries axes in
  match t.Sweep.rows with
  | [ bad; good ] ->
    Alcotest.(check bool) "low timeout errors" true (bad.Sweep.error <> None);
    Alcotest.(check bool) "high timeout succeeds" true (good.Sweep.error = None);
    Alcotest.(check bool) "good row has values" true (good.Sweep.values <> [])
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows))

let test_parse_axis () =
  (match Sweep.parse_axis "timeout=80..200:8" with
   | Ok a ->
     Alcotest.(check string) "name" "timeout" a.Sweep.name;
     Alcotest.(check int) "steps" 8 a.Sweep.steps;
     Alcotest.(check bool) "lo" true (Q.equal a.Sweep.lo (Q.of_int 80));
     Alcotest.(check bool) "hi" true (Q.equal a.Sweep.hi (Q.of_int 200))
   | Error msg -> Alcotest.fail msg);
  (match Sweep.parse_axis "E(t3)=0.5..1.5:3" with
   | Ok a -> Alcotest.(check string) "symbol axis name" "E(t3)" a.Sweep.name
   | Error msg -> Alcotest.fail msg);
  List.iter
    (fun bad ->
      match Sweep.parse_axis bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" bad)
      | Error _ -> ())
    [ "timeout"; "timeout=80..200"; "timeout=200..80:5"; "=80..200:3"; "timeout=80..200:0" ]

let test_grid_row_major () =
  let axis name lo hi steps =
    { Sweep.name; lo = Q.of_int lo; hi = Q.of_int hi; steps }
  in
  let pts = Sweep.points [ axis "a" 0 1 2; axis "b" 0 2 3 ] in
  let render pt =
    String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (Q.to_string v)) pt)
  in
  Alcotest.(check (list string))
    "last axis varies fastest"
    [ "a=0,b=0"; "a=0,b=1"; "a=0,b=2"; "a=1,b=0"; "a=1,b=1"; "a=1,b=2" ]
    (List.map render pts)

let test_facade_analysis () =
  (match Tpan.Analysis.load (Tpan.Analysis.Builtin "stopwait") with
   | Error e -> Alcotest.fail (Tpan.Error.to_string e)
   | Ok tpn -> (
     match Tpan.Analysis.analyze ~throughputs:[ "t7" ] tpn with
     | Error e -> Alcotest.fail (Tpan.Error.to_string e)
     | Ok r ->
       Alcotest.(check int) "states" 18 r.Tpan.Analysis.states;
       let thr = List.assoc "t7" r.Tpan.Analysis.throughputs in
       (* the paper's headline number: ~0.002851 messages/ms *)
       Alcotest.(check bool) "throughput value" true
         (Float.abs (Q.to_float thr -. 0.002851) < 1e-5)));
  (match Tpan.Analysis.load (Tpan.Analysis.Builtin "nonsense") with
   | Error (Tpan.Error.Invalid_input _) -> ()
   | Error e -> Alcotest.fail ("wrong error: " ^ Tpan.Error.to_string e)
   | Ok _ -> Alcotest.fail "loaded a nonexistent model");
  match Tpan.Analysis.load ~params:[ ("no_such_param", Q.one) ] (Tpan.Analysis.Builtin "stopwait") with
  | Error (Tpan.Error.Invalid_input _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Tpan.Error.to_string e)
  | Ok _ -> Alcotest.fail "accepted an unknown parameter"

let test_error_exit_codes () =
  let open Tpan.Error in
  Alcotest.(check int) "unsupported" 2 (exit_code (Unsupported "x"));
  Alcotest.(check int) "parse" 2 (exit_code (Parse_error { line = 1; col = 1; msg = "x" }));
  Alcotest.(check int) "insufficient" 3
    (exit_code (Insufficient { lhs = "a"; rhs = "b"; hint = "h" }));
  Alcotest.(check int) "unsolvable" 4 (exit_code (Unsolvable "x"));
  Alcotest.(check int) "det cycle" 4 (exit_code (Deterministic_cycle [ 1 ]));
  Alcotest.(check int) "state limit" 5 (exit_code (State_limit 7));
  (* classification *)
  (match of_exn (Tpan_core.Tpn.Unsupported "nope") with
   | Some (Unsupported "nope") -> ()
   | _ -> Alcotest.fail "Tpn.Unsupported not classified");
  (match of_exn (Tpan_petri.Reachability.State_limit 9) with
   | Some (State_limit 9) -> ()
   | _ -> Alcotest.fail "State_limit not classified");
  match of_exn Exit with
  | None -> ()
  | Some e -> Alcotest.fail ("classified a foreign exception as " ^ to_string e)

let suite =
  ( "par",
    [
      Alcotest.test_case "map matches List.map at any -j" `Quick test_map_matches_sequential;
      Alcotest.test_case "map edge cases" `Quick test_map_empty_and_single;
      Alcotest.test_case "map re-raises first error by input order" `Quick
        test_map_reraises_first_error;
      Alcotest.test_case "try_map captures per-task errors" `Quick test_try_map_captures_errors;
      Alcotest.test_case "parallel_for covers the range once" `Quick
        test_parallel_for_covers_range;
      Alcotest.test_case "nested map runs sequentially" `Quick test_nested_map_runs_sequentially;
      Alcotest.test_case "metrics aggregate deterministically" `Quick test_metrics_aggregation;
      Alcotest.test_case "run_many is bit-identical to replicate" `Quick
        test_run_many_matches_replicate;
      Alcotest.test_case "run_many converges to a long run" `Quick test_run_many_converges;
      Alcotest.test_case "sweep JSON identical across -j" `Quick test_sweep_json_deterministic;
      Alcotest.test_case "sweep captures bad points per row" `Quick test_sweep_captures_bad_points;
      Alcotest.test_case "parse_axis" `Quick test_parse_axis;
      Alcotest.test_case "grid is row-major" `Quick test_grid_row_major;
      Alcotest.test_case "facade analysis" `Quick test_facade_analysis;
      Alcotest.test_case "error values and exit codes" `Quick test_error_exit_codes;
    ] )
