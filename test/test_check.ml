(* The three-way differential checker: sampling, generation, agreement on
   the paper's protocols, and — the point of the exercise — detection of a
   deliberately injected off-by-one, with a reproducer that round-trips
   through the DSL parser. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Net = Tpan_petri.Net
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Rng = Tpan_sim.Rng
module SW = Tpan_protocols.Stopwait
module Abp = Tpan_protocols.Abp
module Parser = Tpan_dsl.Parser
module CK = Tpan_check.Check
module Gen = Tpan_check.Gen
module Sampler = Tpan_check.Sampler
module Shrink = Tpan_check.Shrink

(* Small but real: enough points/runs to exercise every leg while keeping
   the suite fast. *)
let cfg = CK.quick { CK.default with CK.samples = 2; runs = 4; seed = 1 }

(* ---------------- sampler ---------------- *)

let test_sampler_base_point () =
  let tpn = SW.symbolic () in
  match Sampler.base_point tpn with
  | None -> Alcotest.fail "stopwait constraints must have a model"
  | Some pt ->
    Alcotest.(check bool) "base point satisfies" true (Sampler.satisfies tpn pt);
    (* every symbolic variable is covered *)
    List.iter
      (fun v ->
        let name = Format.asprintf "%a" Var.pp v in
        Alcotest.(check bool) (name ^ " bound") true (List.mem_assoc name pt))
      (Sampler.vars tpn)

let test_sampler_draws_satisfy () =
  let tpn = SW.symbolic () in
  let rng = Rng.create ~seed:11 in
  for i = 1 to 20 do
    match Sampler.sample ~rng tpn with
    | None -> Alcotest.fail "sample must succeed when a base point exists"
    | Some pt ->
      if not (Sampler.satisfies tpn pt) then
        Alcotest.failf "draw %d violates the constraint system" i
  done

let test_sampler_infeasible () =
  (* a net whose constraint system is inconsistent has no points at all *)
  let b = Net.builder "infeasible" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let e_t = Tpan_symbolic.Linexpr.var (Var.enabling "t") in
  let tpn =
    Tpn.make
      ~constraints:
        (Tpan_symbolic.Constraints.of_list
           [ ("lo", `Gt, e_t, Tpan_symbolic.Linexpr.of_int 5);
             ("hi", `Gt, Tpan_symbolic.Linexpr.of_int 3, e_t) ])
      (Net.build b)
      [ ("t", Tpn.spec ~enabling:(Tpn.Sym (Var.enabling "t")) ()) ]
  in
  Alcotest.(check bool) "no base point" true (Sampler.base_point tpn = None)

(* ---------------- generator ---------------- *)

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let c1 = Gen.case ~seed and c2 = Gen.case ~seed in
      Alcotest.(check string) "description stable" c1.Gen.description c2.Gen.description;
      Alcotest.(check string) "delivery stable" c1.Gen.delivery c2.Gen.delivery;
      Alcotest.(check string) "net stable"
        (Tpan_dsl.Printer.to_string c1.Gen.tpn)
        (Tpan_dsl.Printer.to_string c2.Gen.tpn))
    [ 0; 1; 5; 42 ];
  (* the knobs actually vary across seeds *)
  let shapes =
    List.sort_uniq compare
      (List.init 12 (fun seed -> (Gen.case ~seed).Gen.description))
  in
  Alcotest.(check bool) "seeds explore distinct shapes" true (List.length shapes > 1)

let test_gen_cases_analyzable () =
  (* every generated net must make it through symbolic TRG construction —
     the generator's whole contract *)
  List.iter
    (fun seed ->
      let c = Gen.case ~seed in
      let g = SG.build c.Gen.tpn in
      let res = M.Symbolic.analyze g in
      let thr = M.Symbolic.throughput res g c.Gen.delivery in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d [%s] has nonzero throughput" seed c.Gen.description)
        false (Rf.is_zero thr))
    [ 0; 1; 2; 3; 4; 5 ]

(* ---------------- three-way agreement ---------------- *)

let agree name delivery tpn =
  match CK.check_tpn ~config:cfg ~name ~delivery tpn with
  | Error e -> Alcotest.fail (Tpan_core.Error.to_string e)
  | Ok o ->
    Alcotest.(check bool) (name ^ " ok") true (CK.ok o);
    Alcotest.(check int) (name ^ " all points agreed") o.CK.points o.CK.agreed;
    Alcotest.(check bool) (name ^ " evaluated something") true (o.CK.points > 0)

let test_agree_stopwait () = agree "stopwait" "t7" (SW.concrete SW.paper_params)
let test_agree_stopwait_sym () = agree "stopwait-sym" "t7" (SW.symbolic ())
let test_agree_abp () =
  agree "abp" (List.hd Abp.deliveries) (Abp.concrete Abp.default_params)

let test_fuzz_deterministic () =
  let fuzz_cfg = { cfg with CK.samples = 1; runs = 2 } in
  let run jobs = CK.fuzz ~config:fuzz_cfg ~jobs ~cases:3 () in
  let digest results =
    List.map
      (fun (c, r) ->
        ( c.Gen.description,
          match r with
          | Ok o -> Printf.sprintf "ok=%b points=%d" (CK.ok o) o.CK.points
          | Error e -> "error: " ^ Tpan_core.Error.to_string e ))
      results
  in
  let d1 = digest (run 1) in
  Alcotest.(check (list (pair string string))) "independent of jobs" d1 (digest (run 4));
  Alcotest.(check (list (pair string string))) "rerun identical" d1 (digest (run 1));
  List.iter
    (fun (desc, s) ->
      if not (String.length s >= 7 && String.sub s 0 7 = "ok=true") then
        Alcotest.failf "generated net [%s] did not agree: %s" desc s)
    d1

(* ---------------- injected bug + reproducer ---------------- *)

let test_injected_bug_caught () =
  let tpn = SW.symbolic () in
  let g = SG.build tpn in
  let res = M.Symbolic.analyze g in
  let thr = M.Symbolic.throughput res g "t7" in
  (* the acceptance scenario: an off-by-one in the E(t3) delay constant *)
  let buggy =
    Rf.subst
      (fun v ->
        if Var.equal v (Var.enabling "t3") then
          Some (Poly.add (Poly.var v) (Poly.const Q.one))
        else None)
      thr
  in
  match CK.check_tpn ~config:cfg ~expr:buggy ~name:"buggy" ~delivery:"t7" tpn with
  | Error e -> Alcotest.fail (Tpan_core.Error.to_string e)
  | Ok o ->
    Alcotest.(check bool) "off-by-one detected" false (CK.ok o);
    let f = List.hd o.CK.failures in
    (* the shrinker's reproducer parses back through the DSL front end
       into a fully concrete net that the real pipeline agrees on — the
       witness blames the injected expression, not the pipeline *)
    let parsed = Parser.parse_string f.CK.reproducer in
    Alcotest.(check bool) "reproducer is concrete" true (Tpn.is_concrete parsed);
    Alcotest.(check bool) "delivery transition survives" true
      (List.exists
         (fun t -> Net.trans_name (Tpn.net parsed) t = "t7")
         (Net.transitions (Tpn.net parsed)));
    (match CK.check_tpn ~config:cfg ~name:"reproducer" ~delivery:"t7" parsed with
     | Ok o' -> Alcotest.(check bool) "pipeline agrees on the reproducer" true (CK.ok o')
     | Error e -> Alcotest.fail (Tpan_core.Error.to_string e))

let test_facade_check_source () =
  match Tpan.Checker.check_source ~config:cfg (Tpan.Analysis.Builtin "stopwait") with
  | Ok o ->
    Alcotest.(check bool) "builtin stopwait ok" true (CK.ok o);
    Alcotest.(check bool) "named after the model" true (o.CK.name = "stopwait")
  | Error e -> Alcotest.fail (Tpan_core.Error.to_string e)

let suite =
  ( "check",
    [
      Alcotest.test_case "sampler: base point" `Quick test_sampler_base_point;
      Alcotest.test_case "sampler: draws satisfy constraints" `Quick test_sampler_draws_satisfy;
      Alcotest.test_case "sampler: infeasible system" `Quick test_sampler_infeasible;
      Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
      Alcotest.test_case "generated nets analyzable" `Quick test_gen_cases_analyzable;
      Alcotest.test_case "agreement: stopwait (concrete)" `Slow test_agree_stopwait;
      Alcotest.test_case "agreement: stopwait (symbolic)" `Slow test_agree_stopwait_sym;
      Alcotest.test_case "agreement: abp" `Slow test_agree_abp;
      Alcotest.test_case "fuzz determinism across jobs" `Slow test_fuzz_deterministic;
      Alcotest.test_case "injected off-by-one caught, reproducer parses" `Slow
        test_injected_bug_caught;
      Alcotest.test_case "facade check_source" `Slow test_facade_check_source;
    ] )
