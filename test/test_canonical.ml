(* Canonicalization: a net's content hash must depend on what the net
   says, not on the order its .tpn file says it in. *)

module Canonical = Tpan.Canonical

let parse = Tpan_dsl.Parser.parse_string

(* A symbolic net exercising every serialized row kind: places with and
   without initial marking, transitions with symbolic/fixed times and
   frequencies, and constraints over the symbols. *)
let header = "net demo"

let places =
  [ "place p1 init 1"; "place p2"; "place p3"; "place p4 init 2" ]

let transitions =
  [
    "trans a { in p1; out p2; fire sym }";
    "trans b { in p2; out p1; fire sym; freq f(b) }";
    "trans c { in p2; out p3; fire sym; freq f(c) }";
    "trans d { in p3, p4; out p1, p4; fire 5 }";
    "trans e { in p1; out p3; enable E(e); fire 1; freq 0 }";
  ]

let constraints =
  [
    "constraint k1: E(e) > F(b) + 5";
    "constraint k2: F(a) >= F(c)";
    "constraint k3: F(d) > 0";
  ]

let source ~places:ps ~transitions:ts ~constraints:cs =
  String.concat "\n" ((header :: ps) @ ts @ cs) ^ "\n"

let base_hash =
  lazy (Canonical.hash (Canonical.of_tpn (parse (source ~places ~transitions ~constraints))))

(* Deterministic Fisher–Yates from an LCG, so every QCheck seed names one
   permutation reproducibly. *)
let shuffle seed xs =
  let st = ref (seed land 0x3FFFFFFF) in
  let rand n =
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    !st mod n
  in
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = rand (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let prop_order_insensitive =
  QCheck.Test.make ~count:50 ~name:"shuffled declarations hash identically"
    QCheck.small_nat (fun seed ->
      let src =
        source ~places:(shuffle seed places)
          ~transitions:(shuffle (seed + 1) transitions)
          ~constraints:(shuffle (seed + 2) constraints)
      in
      String.equal (Lazy.force base_hash) (Canonical.hash (Canonical.of_tpn (parse src))))

let builtin name =
  match Tpan.Analysis.load (Tpan.Analysis.Builtin name) with
  | Ok tpn -> Canonical.of_tpn tpn
  | Error e -> Alcotest.failf "load %s: %s" name (Tpan.Error.to_string e)

let test_stable_and_distinct () =
  let a1 = builtin "stopwait" and a2 = builtin "stopwait" in
  Alcotest.(check bool) "same net, same hash" true (Canonical.equal a1 a2);
  Alcotest.(check string) "hash is deterministic" (Canonical.hash a1) (Canonical.hash a2);
  let m = builtin "abp" in
  Alcotest.(check bool) "different nets differ" false (Canonical.equal a1 m);
  let sym = builtin "stopwait-sym" in
  Alcotest.(check bool) "symbolic variant differs" false (Canonical.equal a1 sym)

let test_serialization_shape () =
  let c = builtin "stopwait" in
  let s = Canonical.serialization c in
  Alcotest.(check bool) "versioned header" true
    (String.length s > 17 && String.sub s 0 17 = "tpan-canonical 1\n");
  Alcotest.(check string) "hash is the digest of the serialization"
    (Digest.to_hex (Digest.string s))
    (Canonical.hash c);
  (* the net's display name is not content *)
  let renamed = parse (source ~places ~transitions ~constraints) in
  let renamed2 =
    parse
      (String.concat "\n" (("net other" :: places) @ transitions @ constraints) ^ "\n")
  in
  Alcotest.(check string) "net name does not reach the hash"
    (Canonical.hash (Canonical.of_tpn renamed))
    (Canonical.hash (Canonical.of_tpn renamed2))

let suite =
  ( "canonical",
    [
      QCheck_alcotest.to_alcotest prop_order_insensitive;
      Alcotest.test_case "stable and distinct across nets" `Quick test_stable_and_distinct;
      Alcotest.test_case "serialization header and digest" `Quick test_serialization_shape;
    ] )
