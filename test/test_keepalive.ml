(* The socket plane of [tpan serve]: keep-alive and pipelining framing,
   idle timeouts, torn and malformed heads, per-connection request
   budgets, the multi-worker accept loop, admission control and /sweep
   single-flight. The server runs in a domain of this process (so the
   tests can read its metric counters directly); clients are plain
   [Unix] sockets speaking hand-rolled HTTP/1.1. *)

module Serve = Tpan_serve.Serve
module J = Tpan_obs.Jsonv

let base_config = { Serve.default_config with Serve.port = Some 0 }

(* ----- server lifecycle ----- *)

let with_server config f =
  let port : int option Atomic.t = Atomic.make None in
  let srv =
    Domain.spawn (fun () -> Serve.run ~ready:(fun p -> Atomic.set port p) config)
  in
  let finally () =
    Serve.shutdown ();
    Domain.join srv
  in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Atomic.get port with
    | Some p -> p
    | None ->
      if Unix.gettimeofday () > deadline then begin
        finally ();
        Alcotest.fail "server did not become ready"
      end
      else begin
        Unix.sleepf 0.002;
        wait ()
      end
  in
  let p = wait () in
  Fun.protect ~finally (fun () -> f p)

(* ----- a minimal HTTP/1.1 client ----- *)

type client = { fd : Unix.file_descr; cbuf : Buffer.t }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; cbuf = Buffer.create 4096 }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write c.fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let request ?(version = "HTTP/1.1") ?(headers = []) meth target body =
  let extra =
    String.concat "" (List.map (fun (k, v) -> k ^ ": " ^ v ^ "\r\n") headers)
  in
  let clen =
    if body = "" && meth = "GET" then ""
    else Printf.sprintf "Content-Length: %d\r\n" (String.length body)
  in
  Printf.sprintf "%s %s %s\r\nHost: test\r\n%s%s\r\n%s" meth target version extra
    clen body

let fill ?(timeout = 10.) c =
  match Unix.select [ c.fd ] [] [] timeout with
  | [], _, _ -> `Timeout
  | _ -> (
    let chunk = Bytes.create 65536 in
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes c.cbuf chunk 0 n;
      `Filled
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again

let find_crlf2 s from =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go (max 0 from)

type resp = { status : int; headers : (string * string) list; body : string }

let header r name = List.assoc_opt (String.lowercase_ascii name) r.headers

(* One response off the client's buffered stream. [None] means the
   server closed cleanly before sending any byte of a next response —
   exactly what keep-alive expiry and [Connection: close] look like
   from this side. *)
let recv ?timeout c =
  let rec head () =
    let s = Buffer.contents c.cbuf in
    match find_crlf2 s 0 with
    | Some i -> Some (s, i)
    | None -> (
      match fill ?timeout c with
      | `Filled | `Again -> head ()
      | `Timeout -> Alcotest.fail "timed out waiting for a response head"
      | `Eof ->
        if Buffer.length c.cbuf = 0 then None
        else Alcotest.fail "connection closed inside a response head")
  in
  match head () with
  | None -> None
  | Some (s, i) ->
    let raw_head = String.sub s 0 i in
    let lines = String.split_on_char '\n' raw_head in
    let status_line, header_lines =
      match lines with [] -> Alcotest.fail "empty head" | l :: hs -> (l, hs)
    in
    let status =
      match String.split_on_char ' ' (String.trim status_line) with
      | _ :: code :: _ -> int_of_string code
      | _ -> Alcotest.failf "bad status line %S" status_line
    in
    let headers =
      List.filter_map
        (fun line ->
          match String.index_opt line ':' with
          | Some j ->
            Some
              ( String.lowercase_ascii (String.trim (String.sub line 0 j)),
                String.trim
                  (String.sub line (j + 1) (String.length line - j - 1)) )
          | None -> None)
        header_lines
    in
    let length =
      match List.assoc_opt "content-length" headers with
      | Some v -> int_of_string v
      | None -> Alcotest.fail "response lacks Content-Length"
    in
    let total = i + 4 + length in
    let rec body () =
      if Buffer.length c.cbuf >= total then begin
        let all = Buffer.contents c.cbuf in
        let b = String.sub all (i + 4) length in
        Buffer.clear c.cbuf;
        Buffer.add_substring c.cbuf all total (String.length all - total);
        b
      end
      else
        match fill ?timeout c with
        | `Filled | `Again -> body ()
        | `Timeout -> Alcotest.fail "timed out waiting for a response body"
        | `Eof -> Alcotest.fail "connection closed inside a response body"
    in
    Some { status; headers; body = body () }

let recv_exn ?timeout c what =
  match recv ?timeout c with
  | Some r -> r
  | None -> Alcotest.failf "%s: connection closed before a response" what

let body_member r k =
  match J.of_string r.body with
  | Ok doc -> J.member k doc
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e r.body

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let eval_body =
  {|{"model":"stopwait-sym","transition":"t7","point":{
      "E(t3)":"250","F(t1)":"1","F(t2)":"1","F(t3)":"1",
      "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
      "F(t8)":"106.7","F(t9)":"106.7",
      "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}

let sweep_body steps =
  Printf.sprintf
    {|{"model":"stopwait-sym","transitions":["t7"],
       "axes":["E(t3)=250..1000:%d"],
       "bindings":{"F(t1)":"1","F(t2)":"1","F(t3)":"1",
         "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
         "F(t8)":"106.7","F(t9)":"106.7",
         "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}
    steps

(* ----- keep-alive framing ----- *)

let test_sequential_reuse () =
  with_server base_config (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          (* three different endpoints down one socket *)
          send c (request "GET" "/healthz" "");
          let r1 = recv_exn c "healthz" in
          Alcotest.(check int) "healthz 200" 200 r1.status;
          Alcotest.(check (option string))
            "healthz keeps the connection" (Some "keep-alive")
            (header r1 "connection");
          send c (request "POST" "/eval" eval_body);
          let r2 = recv_exn c "eval" in
          Alcotest.(check int) "eval 200" 200 r2.status;
          Alcotest.(check bool) "the paper's exact value" true
            (contains r2.body "1805/486672");
          send c (request "GET" "/statusz" "");
          let r3 = recv_exn c "statusz" in
          Alcotest.(check int) "statusz 200" 200 r3.status;
          (* garbage mid-stream: answered with 400, then the server
             refuses to resynchronize and closes *)
          send c "GARBAGE\r\n\r\n";
          let r4 = recv_exn c "malformed" in
          Alcotest.(check int) "malformed head answers 400" 400 r4.status;
          Alcotest.(check (option string))
            "a framing error closes the connection" (Some "close")
            (header r4 "connection");
          Alcotest.(check bool) "and the socket reaches EOF" true
            (recv c = None)))

let test_http10_defaults_to_close () =
  with_server base_config (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          send c (request ~version:"HTTP/1.0" "GET" "/healthz" "");
          let r = recv_exn c "http/1.0" in
          Alcotest.(check int) "1.0 still answered" 200 r.status;
          Alcotest.(check (option string))
            "1.0 without Connection defaults to close" (Some "close")
            (header r "connection");
          Alcotest.(check bool) "EOF follows" true (recv c = None)))

let test_pipelined_in_order () =
  with_server base_config (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          (* all three requests in a single write; bytes of request N+1
             sit in the connection buffer while N is served *)
          send c
            (request "GET" "/healthz" ""
            ^ request "POST" "/eval" eval_body
            ^ request "GET" "/healthz" "");
          let r1 = recv_exn c "pipelined #1" in
          let r2 = recv_exn c "pipelined #2" in
          let r3 = recv_exn c "pipelined #3" in
          Alcotest.(check bool) "first answer is the healthz" true
            (r1.status = 200 && body_member r1 "status" = Some (J.Str "ok"));
          Alcotest.(check bool) "second answer is the eval" true
            (r2.status = 200 && body_member r2 "throughput" <> None);
          Alcotest.(check bool) "third answer is the healthz again" true
            (r3.status = 200 && body_member r3 "status" = Some (J.Str "ok"))))

let test_idle_timeout_closes () =
  with_server { base_config with Serve.idle_timeout = 0.3 } (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          send c (request "GET" "/healthz" "");
          let r = recv_exn c "healthz" in
          Alcotest.(check int) "first request fine" 200 r.status;
          (* then sit idle: the server must close without writing
             anything more (no 408 — between requests the client owes
             nothing) *)
          Alcotest.(check bool) "idle connection closed quietly" true
            (recv ~timeout:5. c = None)))

let test_torn_header_and_midstream_hangup () =
  with_server base_config (fun port ->
      (* a request trickling in byte by byte parses exactly like one
         arriving whole *)
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          String.iter
            (fun ch ->
              send c (String.make 1 ch);
              Unix.sleepf 0.001)
            (request "GET" "/healthz" "");
          let r = recv_exn c "torn" in
          Alcotest.(check int) "torn request answered" 200 r.status);
      (* a peer vanishing mid-head is a counted, non-fatal abort *)
      let before = Tpan_obs.Metrics.counter_value "serve.client_aborts" in
      let c2 = connect port in
      send c2 "GET /hea";
      close_client c2;
      let deadline = Unix.gettimeofday () +. 5. in
      let rec await () =
        if Tpan_obs.Metrics.counter_value "serve.client_aborts" > before then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "client abort never counted"
        else begin
          Unix.sleepf 0.01;
          await ()
        end
      in
      await ();
      (* and the worker is back accepting *)
      let c3 = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c3)
        (fun () ->
          send c3 (request "GET" "/healthz" "");
          Alcotest.(check int) "server survives the hangup" 200
            (recv_exn c3 "after hangup").status))

let test_max_requests_per_conn () =
  with_server { base_config with Serve.max_requests_per_conn = 3 } (fun port ->
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          let one = request "GET" "/healthz" "" in
          send c (one ^ one ^ one ^ one);
          let r1 = recv_exn c "#1" in
          let r2 = recv_exn c "#2" in
          let r3 = recv_exn c "#3" in
          Alcotest.(check (option string)) "#1 keeps" (Some "keep-alive")
            (header r1 "connection");
          Alcotest.(check (option string)) "#2 keeps" (Some "keep-alive")
            (header r2 "connection");
          Alcotest.(check (option string)) "#3 announces the close"
            (Some "close") (header r3 "connection");
          Alcotest.(check bool) "#4 is never answered" true (recv c = None)))

(* ----- the connection plane: no head-of-line blocking ----- *)

(* The seed served one connection at a time per worker, so with the
   default single worker a parked keep-alive client (any poller with an
   interval below the 30s idle timeout) starved every other client.
   Connections now run on their own domains. *)
let test_parked_connection_does_not_starve () =
  with_server base_config (fun port ->
      let a = connect port in
      let b = connect port in
      Fun.protect
        ~finally:(fun () ->
          close_client a;
          close_client b)
        (fun () ->
          send a (request "GET" "/healthz" "");
          Alcotest.(check int) "A served" 200 (recv_exn a "A").status;
          (* A now sits parked on its keep-alive connection, well inside
             the idle budget; B must still be answered promptly *)
          send b (request "GET" "/healthz" "");
          let r = recv_exn ~timeout:5. b "B while A is parked" in
          Alcotest.(check int) "B served while A is parked" 200 r.status;
          (* and A's connection is still usable afterwards *)
          send a (request "GET" "/healthz" "");
          Alcotest.(check int) "A again" 200 (recv_exn a "A#2").status))

(* Past the [max_conns] budget a connection is still answered — inline
   by the accept worker, one request, forced close — so the worker is
   pinned for at most one request, never a keep-alive session. *)
let test_conn_capacity_falls_back_to_close () =
  with_server { base_config with Serve.max_conns = 1 } (fun port ->
      let a = connect port in
      let b = connect port in
      Fun.protect
        ~finally:(fun () ->
          close_client a;
          close_client b)
        (fun () ->
          send a (request "GET" "/healthz" "");
          Alcotest.(check (option string))
            "A keeps (below the budget)" (Some "keep-alive")
            (header (recv_exn a "A") "connection");
          send b (request "GET" "/healthz" "");
          let r = recv_exn ~timeout:5. b "B at capacity" in
          Alcotest.(check int) "B answered" 200 r.status;
          Alcotest.(check (option string))
            "B forced to close" (Some "close") (header r "connection");
          Alcotest.(check bool) "B reaches EOF" true (recv b = None)))

(* ----- the multi-worker accept plane ----- *)

let test_two_workers () =
  with_server { base_config with Serve.workers = 2 } (fun port ->
      (* a few short-lived connections, then ask /statusz who served *)
      for _ = 1 to 4 do
        let c = connect port in
        Fun.protect
          ~finally:(fun () -> close_client c)
          (fun () ->
            send c (request ~headers:[ ("Connection", "close") ] "GET" "/healthz" "");
            Alcotest.(check int) "healthz 200" 200 (recv_exn c "healthz").status)
      done;
      let c = connect port in
      Fun.protect
        ~finally:(fun () -> close_client c)
        (fun () ->
          send c (request "GET" "/statusz" "");
          let r = recv_exn c "statusz" in
          Alcotest.(check int) "statusz 200" 200 r.status;
          let doc =
            match J.of_string r.body with
            | Ok d -> d
            | Error e -> Alcotest.failf "statusz not JSON: %s" e
          in
          match J.member "workers" doc with
          | Some (J.List ws) ->
            Alcotest.(check int) "both workers registered" 2 (List.length ws);
            List.iter
              (fun w ->
                Alcotest.(check bool) "worker row carries a heartbeat" true
                  (match Option.bind (J.member "idle_s" w) J.to_float_opt with
                  | Some s -> s >= 0.
                  | None -> false))
              ws
          | _ -> Alcotest.fail "statusz lacks a workers list"))

(* ----- admission control and /sweep single-flight -----

   Driven through [Serve.handle] on concurrent pool lanes: the gate and
   the flight table sit on the request path itself, so the socket layer
   adds nothing but noise here. *)

let test_overload_503_with_retry_after () =
  Tpan.Artifact.reset_caches ();
  (* derive the closed form once so every concurrent sweep below spends
     its time in grid evaluation, maximizing overlap at the gate *)
  let first = Serve.handle base_config ~meth:"POST" ~target:"/sweep"
      ~body:(sweep_body 10)
  in
  Alcotest.(check int) "priming sweep 200" 200 first.Serve.status;
  let config = { base_config with Serve.max_inflight = Some 1 } in
  let bodies = List.init 6 (fun i -> sweep_body (1500 + i)) in
  let responses =
    Tpan_par.Pool.map ~jobs:6
      (fun body -> Serve.handle config ~meth:"POST" ~target:"/sweep" ~body)
      bodies
  in
  let ok = List.filter (fun r -> r.Serve.status = 200) responses in
  let shed = List.filter (fun r -> r.Serve.status = 503) responses in
  Alcotest.(check int) "every request answered" 6
    (List.length ok + List.length shed);
  Alcotest.(check bool) "some sweeps computed" true (ok <> []);
  Alcotest.(check bool) "at least one was shed" true (shed <> []);
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "503 carries Retry-After" (Some "1")
        (List.assoc_opt "Retry-After" r.Serve.headers);
      Alcotest.(check bool) "overload envelope has exit code 1" true
        (match J.of_string r.Serve.body with
        | Ok doc -> J.member "exit_code" doc = Some (J.Int 1)
        | Error _ -> false))
    shed

let test_sweep_single_flight () =
  Tpan.Artifact.reset_caches ();
  let prime =
    Serve.handle base_config ~meth:"POST" ~target:"/sweep" ~body:(sweep_body 10)
  in
  Alcotest.(check int) "priming sweep 200" 200 prime.Serve.status;
  let before = Tpan_obs.Metrics.counter_value "serve.sweep.coalesced" in
  let body = sweep_body 4000 in
  let responses =
    Tpan_par.Pool.map ~jobs:4
      (fun () -> Serve.handle base_config ~meth:"POST" ~target:"/sweep" ~body)
      [ (); (); (); () ]
  in
  List.iter
    (fun r -> Alcotest.(check int) "coalesced sweep 200" 200 r.Serve.status)
    responses;
  let coalesced =
    Tpan_obs.Metrics.counter_value "serve.sweep.coalesced" - before
  in
  Alcotest.(check bool) "identical concurrent sweeps coalesced" true
    (coalesced >= 1);
  (* followers answered with the leader's bytes: at most
     [4 - coalesced] distinct response bodies (trace ids differ across
     flights, never within one) *)
  let distinct =
    List.sort_uniq compare (List.map (fun r -> r.Serve.body) responses)
  in
  Alcotest.(check bool) "followers share the leader's response" true
    (List.length distinct <= 4 - coalesced)

(* The coalescing key serializes its components as JSON, so binding
   names carrying the seed key's separators ('=', ',', '|') can no
   longer collide two semantically different requests onto one flight
   (one client would have received the other's response bytes). *)
let test_sweep_key_unambiguous () =
  let q = Tpan_mathkit.Q.of_int in
  let axis = { Tpan_perf.Sweep.name = "a"; lo = q 0; hi = q 1; steps = 2 } in
  let key bindings transitions =
    Serve.sweep_key ~net_hash:"h" ~max_states:None ~jobs:None ~transitions
      ~bindings ~axes:[ axis ]
  in
  Alcotest.(check bool) "binding names cannot forge separators" true
    (key [ ("x=1,y", q 2) ] [ "t" ] <> key [ ("x", q 1); ("y", q 2) ] [ "t" ]);
  Alcotest.(check bool) "transition lists cannot collide" true
    (key [] [ "t1,t2" ] <> key [] [ "t1"; "t2" ]);
  Alcotest.(check bool) "binding order is canonicalized" true
    (key [ ("x", q 1); ("y", q 2) ] [ "t" ]
    = key [ ("y", q 2); ("x", q 1) ] [ "t" ])

(* A single-flight follower must honor its own deadline while the
   leader computes, not inherit the leader's (possibly much later)
   outcome. *)
let test_singleflight_follower_deadline () =
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let resp body =
    { Serve.status = 200; content_type = "text/plain"; body; headers = [] }
  in
  let leader =
    Domain.spawn (fun () ->
        Serve.Singleflight.run "sf-deadline-test" (fun () ->
            Atomic.set entered true;
            while not (Atomic.get release) do
              Unix.sleepf 0.005
            done;
            resp "leader"))
  in
  while not (Atomic.get entered) do
    Unix.sleepf 0.001
  done;
  let tok = Tpan_obs.Cancel.create ~deadline_in:0.05 () in
  let t0 = Unix.gettimeofday () in
  (match
     Tpan_obs.Cancel.with_token tok (fun () ->
         Serve.Singleflight.run "sf-deadline-test" (fun () -> resp "follower"))
   with
  | _ -> Alcotest.fail "follower ignored its expired deadline"
  | exception Tpan_obs.Cancel.Cancelled _ -> ());
  Alcotest.(check bool) "follower unblocked near its own deadline" true
    (Unix.gettimeofday () -. t0 < 2.);
  Atomic.set release true;
  let r = Domain.join leader in
  Alcotest.(check string) "leader unaffected" "leader" r.Serve.body

let suite =
  ( "keepalive",
    [
      Alcotest.test_case "sequential reuse, then malformed closes" `Quick
        test_sequential_reuse;
      Alcotest.test_case "HTTP/1.0 defaults to close" `Quick
        test_http10_defaults_to_close;
      Alcotest.test_case "pipelined requests answered in order" `Quick
        test_pipelined_in_order;
      Alcotest.test_case "idle timeout closes quietly" `Quick
        test_idle_timeout_closes;
      Alcotest.test_case "torn header; mid-head hangup is non-fatal" `Quick
        test_torn_header_and_midstream_hangup;
      Alcotest.test_case "max-requests-per-conn budget" `Quick
        test_max_requests_per_conn;
      Alcotest.test_case "parked connection starves nobody" `Quick
        test_parked_connection_does_not_starve;
      Alcotest.test_case "connection budget falls back to close" `Quick
        test_conn_capacity_falls_back_to_close;
      Alcotest.test_case "two workers accept and report heartbeats" `Quick
        test_two_workers;
      Alcotest.test_case "overload answers 503 + Retry-After" `Quick
        test_overload_503_with_retry_after;
      Alcotest.test_case "identical sweeps fly once" `Quick
        test_sweep_single_flight;
      Alcotest.test_case "sweep key is injection-proof" `Quick
        test_sweep_key_unambiguous;
      Alcotest.test_case "single-flight follower honors its deadline" `Quick
        test_singleflight_follower_deadline;
    ] )
