(* Sparse-vs-dense differential tests for the exact ℚ solver.

   The contract under test is Sparse's headline guarantee: for any system,
   the sparse elimination returns the same outcome constructor as the dense
   Gauss–Jordan, and a [Unique] solution is bit-identical (same ℚ values,
   not just numerically close). The differential below drives both solvers
   from one seeded stream of random systems, including the shapes that
   distinguish the classifications: all-zero rows (rank deficiency and
   inconsistency) and duplicate column entries in the row-list input
   (which [solve_rows] must sum, exactly). *)

module Q = Tpan_mathkit.Q

module F = struct
  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let is_zero = Q.is_zero
  let add = Q.add
  let sub = Q.sub
  let mul = Q.mul
  let div = Q.div
  let pp = Q.pp
end

module S = Tpan_mathkit.Sparse.Make (F)

let qi = Q.of_int

let outcome_label = function
  | S.Unique _ -> "unique"
  | S.Underdetermined -> "underdetermined"
  | S.Inconsistent -> "inconsistent"

(* dense matrix -> row lists, optionally splitting entries into duplicate
   (col, v1), (col, v2) pairs with v1 + v2 = v to exercise the summing *)
let rows_of_dense ~split rng a =
  Array.map
    (fun row ->
      let entries = ref [] in
      Array.iteri
        (fun j v ->
          if not (Q.is_zero v) then
            if split && Random.State.bool rng then begin
              let d = qi (1 + Random.State.int rng 5) in
              entries := (j, Q.sub v d) :: (j, d) :: !entries
            end
            else entries := (j, v) :: !entries)
        row;
      (* a few explicit zeros that norm_row must drop *)
      if Random.State.bool rng && Array.length row > 0 then
        entries := (Random.State.int rng (Array.length row), Q.zero) :: !entries;
      !entries)
    a

let agree name dense_outcome sparse_outcome =
  match (dense_outcome, sparse_outcome) with
  | S.Dense.Unique x, S.Unique y ->
    Alcotest.(check bool)
      (name ^ ": unique solutions bit-identical")
      true
      (Array.length x = Array.length y && Array.for_all2 Q.equal x y)
  | S.Dense.Underdetermined, S.Underdetermined | S.Dense.Inconsistent, S.Inconsistent -> ()
  | d, s ->
    Alcotest.failf "%s: dense %s but sparse %s" name
      (outcome_label
         (match d with
         | S.Dense.Unique x -> S.Unique x
         | S.Dense.Underdetermined -> S.Underdetermined
         | S.Dense.Inconsistent -> S.Inconsistent))
      (outcome_label s)

(* one random system: size 1..8, ~40% fill, entries in [-5, 5], rhs either
   planted (consistent) or random (any outcome) *)
let random_case rng i =
  let n = 1 + Random.State.int rng 8 in
  let a =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            if Random.State.int rng 10 < 4 then qi (Random.State.int rng 11 - 5) else Q.zero))
  in
  (* sometimes blank out a full row: rank deficiency on purpose *)
  if Random.State.int rng 4 = 0 then a.(Random.State.int rng n) <- Array.make n Q.zero;
  let b =
    if Random.State.bool rng then begin
      let x = Array.init n (fun _ -> qi (Random.State.int rng 7 - 3)) in
      Array.init n (fun r ->
          let acc = ref Q.zero in
          for j = 0 to n - 1 do
            acc := Q.add !acc (Q.mul a.(r).(j) x.(j))
          done;
          !acc)
    end
    else Array.init n (fun _ -> qi (Random.State.int rng 7 - 3))
  in
  let name = Printf.sprintf "case %d (n=%d)" i n in
  agree name (S.Dense.solve a b) (S.solve_rows ~ncols:n (rows_of_dense ~split:true rng a) b)

let test_differential () =
  (* seeded: the same 300 systems every run *)
  let rng = Random.State.make [| 0x5eed; 42 |] in
  for i = 1 to 300 do
    random_case rng i
  done

let test_all_zero_rows () =
  (* all-zero row with zero rhs: underdetermined, both solvers *)
  let rows = [| [ (0, Q.one) ]; [] |] in
  (match S.solve_rows ~ncols:2 rows [| qi 3; Q.zero |] with
  | S.Underdetermined -> ()
  | o -> Alcotest.failf "zero row, zero rhs: expected underdetermined, got %s" (outcome_label o));
  (* all-zero row with nonzero rhs: inconsistent even when another column
     is rank-deficient too — inconsistency must win, as in Dense *)
  match S.solve_rows ~ncols:2 [| []; [] |] [| Q.zero; qi 1 |] with
  | S.Inconsistent -> ()
  | o -> Alcotest.failf "zero row, nonzero rhs: expected inconsistent, got %s" (outcome_label o)

let test_duplicate_columns_cancel () =
  (* duplicate entries that cancel to zero leave an all-zero row *)
  let rows = [| [ (0, qi 2); (0, qi (-2)) ]; [ (1, Q.one) ] |] in
  match S.solve_rows ~ncols:2 rows [| Q.zero; qi 5 |] with
  | S.Underdetermined -> ()
  | o -> Alcotest.failf "cancelling duplicates: expected underdetermined, got %s" (outcome_label o)

let test_large_sparse_path () =
  (* a system big and sparse enough that [S.solve] takes the sparse path
     (>= sparse_min_rows, fill < max_fill): bidiagonal, planted solution *)
  let n = Tpan_mathkit.Sparse.sparse_min_rows + 8 in
  let a = Array.make_matrix n n Q.zero in
  for i = 0 to n - 1 do
    a.(i).(i) <- qi 2;
    if i > 0 then a.(i).(i - 1) <- qi (-1)
  done;
  let x = Array.init n (fun i -> Q.of_ints (i - 7) 3) in
  let b =
    Array.init n (fun i ->
        let acc = ref (Q.mul (qi 2) x.(i)) in
        if i > 0 then acc := Q.add !acc (Q.mul (qi (-1)) x.(i - 1));
        !acc)
  in
  agree "large bidiagonal" (S.Dense.solve a b) (S.solve a b)

let test_column_out_of_range () =
  Alcotest.check_raises "column out of range"
    (Invalid_argument "Sparse.solve_rows: column index out of range")
    (fun () -> ignore (S.solve_rows ~ncols:2 [| [ (2, Q.one) ] |] [| Q.zero |]))

let prop_matches_dense =
  (* an unseeded second opinion on top of the seeded sweep *)
  QCheck2.Test.make ~name:"sparse outcome matches dense" ~count:150
    QCheck2.Gen.(
      let elt = int_range (-4) 4 in
      let* n = int_range 1 6 in
      let* rows = list_size (return n) (list_size (return n) elt) in
      let* rhs = list_size (return n) elt in
      return (n, rows, rhs))
    (fun (n, rows, rhs) ->
      let a = Array.of_list (List.map (fun r -> Array.of_list (List.map qi r)) rows) in
      let b = Array.of_list (List.map qi rhs) in
      let sparse_rows =
        Array.map
          (fun row ->
            let acc = ref [] in
            Array.iteri (fun j v -> if not (Q.is_zero v) then acc := (j, v) :: !acc) row;
            !acc)
          a
      in
      match (S.Dense.solve a b, S.solve_rows ~ncols:n sparse_rows b) with
      | S.Dense.Unique x, S.Unique y -> Array.for_all2 Q.equal x y
      | S.Dense.Underdetermined, S.Underdetermined -> true
      | S.Dense.Inconsistent, S.Inconsistent -> true
      | _ -> false)

let suite =
  ( "sparse",
    [
      Alcotest.test_case "seeded dense differential (300 systems)" `Quick test_differential;
      Alcotest.test_case "all-zero rows" `Quick test_all_zero_rows;
      Alcotest.test_case "duplicate columns cancel" `Quick test_duplicate_columns_cancel;
      Alcotest.test_case "large system takes the sparse path" `Quick test_large_sparse_path;
      Alcotest.test_case "column out of range" `Quick test_column_out_of_range;
      QCheck_alcotest.to_alcotest prop_matches_dense;
    ] )
