(* Hash-consing invariants for Poly and Ratfun, and the lock-free Var
   intern table.

   Two properties carry the whole design: structurally equal values built
   through any constructor sequence are physically equal (so equality is
   a pointer comparison on the hot path), and the weak intern tables do
   not leak — dropping every reference to an interned value lets the GC
   collect it, mirroring the heap's released-element test in
   [Test_sim]. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun

let x () = Poly.var (Var.param "hc_x")
let y () = Poly.var (Var.param "hc_y")

let test_poly_physical_equality () =
  (* same polynomial, three different construction orders *)
  let a = Poly.add (x ()) (y ()) in
  let b = Poly.add (y ()) (x ()) in
  let c = Poly.sub (Poly.add (x ()) (Poly.add (y ()) (y ()))) (y ()) in
  Alcotest.(check bool) "x+y == y+x physically" true (a == b);
  Alcotest.(check bool) "x+2y-y == x+y physically" true (a == c);
  let p = Poly.mul (Poly.add (x ()) (y ())) (Poly.add (x ()) (y ())) in
  let q = Poly.pow (Poly.add (x ()) (y ())) 2 in
  Alcotest.(check bool) "(x+y)(x+y) == (x+y)^2 physically" true (p == q);
  (* constants and scaling *)
  Alcotest.(check bool) "0 interned" true (Poly.add a (Poly.neg a) == Poly.zero);
  Alcotest.(check bool) "scale 1 is identity node" true (Poly.scale Q.one a == a)

let test_ratfun_physical_equality () =
  let a = Rf.div (Rf.of_poly (x ())) (Rf.of_poly (Poly.add (x ()) (y ()))) in
  let b = Rf.div (Rf.of_poly (x ())) (Rf.of_poly (Poly.add (y ()) (x ()))) in
  Alcotest.(check bool) "same quotient physically equal" true (a == b);
  Alcotest.(check bool) "equal is true on the pointer path" true (Rf.equal a b)

let test_poly_hash_is_structural () =
  (* the cached hash must match across independently built equal values,
     and [hash] must be usable as a Hashtbl key function *)
  let a = Poly.mul (Poly.add (x ()) (y ())) (x ()) in
  let b = Poly.add (Poly.mul (x ()) (x ())) (Poly.mul (x ()) (y ())) in
  Alcotest.(check bool) "expanded products equal" true (Poly.equal a b);
  Alcotest.(check int) "equal values, equal hashes" (Poly.hash a) (Poly.hash b)

let test_weak_tables_collect () =
  (* transient values must be collectable: build a pile of polynomials
     reachable from nowhere, then force a full major — the intern count
     has to fall back toward where it started. Collect first so the
     baseline isn't inflated by other suites' dead entries (a GC during
     [build] would deflate the peak below the baseline). *)
  Gc.full_major ();
  Gc.full_major ();
  let before = Poly.interned () in
  let build () =
    for i = 0 to 999 do
      ignore (Sys.opaque_identity (Poly.scale (Q.of_int (i + 2)) (Poly.add (x ()) (y ()))))
    done
  in
  build ();
  let peak = Poly.interned () in
  Alcotest.(check bool)
    (Printf.sprintf "interning grew (before %d, peak %d)" before peak)
    true (peak >= before + 900);
  Gc.full_major ();
  Gc.full_major ();
  let after = Poly.interned () in
  Alcotest.(check bool)
    (Printf.sprintf "weak entries collected (peak %d, after %d)" peak after)
    true
    (after < before + 100)

let test_ratfun_weak_collect () =
  Gc.full_major ();
  Gc.full_major ();
  let before = Rf.interned () in
  for i = 0 to 499 do
    ignore
      (Sys.opaque_identity
         (Rf.div (Rf.of_int (i + 2)) (Rf.of_poly (Poly.add (x ()) (y ())))))
  done;
  let peak = Rf.interned () in
  Gc.full_major ();
  Gc.full_major ();
  let after = Rf.interned () in
  Alcotest.(check bool)
    (Printf.sprintf "ratfun weak entries collected (before %d, peak %d, after %d)" before
       peak after)
    true
    (peak >= before + 400 && after < before + 100)

let test_var_parallel_interning () =
  (* the lock-free read path: many domains hammering the same labels must
     agree on the ids, and of_id must invert them all *)
  let labels = List.init 32 (fun i -> Printf.sprintf "par_var_%d" i) in
  let ids () = List.map (fun l -> Var.id (Var.param l)) labels in
  let domains = Array.init 4 (fun _ -> Domain.spawn ids) in
  let mine = ids () in
  let theirs = Array.to_list (Array.map Domain.join domains) in
  List.iter
    (fun other -> Alcotest.(check (list int)) "all domains agree on ids" mine other)
    theirs;
  List.iter2
    (fun l id ->
      Alcotest.(check string) "of_id inverts" l (Var.label (Var.of_id id)))
    labels mine

let suite =
  ( "hashcons",
    [
      Alcotest.test_case "poly: structural => physical" `Quick test_poly_physical_equality;
      Alcotest.test_case "ratfun: structural => physical" `Quick test_ratfun_physical_equality;
      Alcotest.test_case "poly: hash is structural" `Quick test_poly_hash_is_structural;
      Alcotest.test_case "poly: weak table collects" `Quick test_weak_tables_collect;
      Alcotest.test_case "ratfun: weak table collects" `Quick test_ratfun_weak_collect;
      Alcotest.test_case "var: parallel interning" `Quick test_var_parallel_interning;
    ] )
