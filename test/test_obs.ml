(* Unit tests for the Tpan_obs observability layer: metrics registry,
   histogram percentiles, span nesting, disabled-mode no-ops and the
   NDJSON export/parse round-trip. *)

module Metrics = Tpan_obs.Metrics
module Trace = Tpan_obs.Trace
module Progress = Tpan_obs.Progress
module Log = Tpan_obs.Log
module J = Tpan_obs.Jsonv

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_counter_gauge () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "counter resets" 0 (Metrics.Counter.value c);
  let g = Metrics.Gauge.create () in
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.set_max g 2.0;
  Alcotest.(check bool) "set_max keeps max" true (feq (Metrics.Gauge.value g) 3.5);
  Metrics.Gauge.set_max g 7.0;
  Alcotest.(check bool) "set_max raises" true (feq (Metrics.Gauge.value g) 7.0)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.create () in
  (* 1..100 in scrambled order: percentile must sort, not trust arrival *)
  for i = 0 to 99 do
    Metrics.Histogram.observe h (float_of_int (((i * 37) mod 100) + 1))
  done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "sum" true (feq (Metrics.Histogram.sum h) 5050.0);
  Alcotest.(check bool) "max" true (feq (Metrics.Histogram.max_value h) 100.0);
  Alcotest.(check bool) "p50" true (feq (Metrics.Histogram.percentile h 0.5) 50.0);
  Alcotest.(check bool) "p90" true (feq (Metrics.Histogram.percentile h 0.9) 90.0);
  Alcotest.(check bool) "p99" true (feq (Metrics.Histogram.percentile h 0.99) 99.0);
  Alcotest.(check bool) "p100" true (feq (Metrics.Histogram.percentile h 1.0) 100.0);
  let empty = Metrics.Histogram.create () in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Metrics.Histogram.percentile empty 0.5))

let test_histogram_window_cap () =
  let h = Metrics.Histogram.create ~cap:8 () in
  for i = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  (* count/sum/max are exact over the stream even though only 8 samples
     are retained for percentiles *)
  Alcotest.(check int) "count exact past cap" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "sum exact past cap" true (feq (Metrics.Histogram.sum h) 5050.0);
  Alcotest.(check bool) "max exact past cap" true
    (feq (Metrics.Histogram.max_value h) 100.0);
  (* the retained window is the last 8 observations: 93..100 *)
  Alcotest.(check bool) "windowed p0 is recent" true
    (Metrics.Histogram.percentile h 0.0 >= 93.0)

let test_registry () =
  let c = Metrics.counter "test_obs.registry.c" in
  let c' = Metrics.counter "test_obs.registry.c" in
  Metrics.Counter.incr c;
  Alcotest.(check int) "find-or-create shares the store" 1 (Metrics.Counter.value c');
  Alcotest.(check int) "counter_value reads registry" 1
    (Metrics.counter_value "test_obs.registry.c");
  Alcotest.(check int) "counter_value absent -> 0" 0
    (Metrics.counter_value "test_obs.registry.nope");
  (match Metrics.find "test_obs.registry.c" with
  | Some (Metrics.Counter_v 1) -> ()
  | _ -> Alcotest.fail "find should see Counter_v 1");
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge "test_obs.registry.c");
       false
     with Invalid_argument _ -> true);
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true
    (List.sort compare names = names)

let test_disabled_mode () =
  Trace.set_enabled false;
  Trace.clear ();
  let r =
    Trace.with_span "off.outer" (fun sp ->
        Trace.add_attr sp "k" "v";
        Trace.with_span "off.inner" (fun _ -> 17))
  in
  Alcotest.(check int) "thunk result passes through" 17 r;
  Alcotest.(check int) "no events buffered" 0 (List.length (Trace.events ()));
  (* timing switch off: Metrics.time must still run the thunk *)
  Metrics.set_timing false;
  let h = Metrics.Histogram.create () in
  Alcotest.(check int) "time runs thunk when off" 5 (Metrics.time h (fun () -> 5));
  Alcotest.(check int) "no observation when off" 0 (Metrics.Histogram.count h)

let test_span_nesting () =
  Trace.set_enabled true;
  Trace.clear ();
  let r =
    Trace.with_span "outer" (fun sp ->
        Trace.add_attr sp "stage" "test";
        Trace.with_span "inner" (fun sp' ->
            Trace.add_attr_int sp' "n" 3;
            2) + 1)
  in
  Trace.set_enabled false;
  Alcotest.(check int) "result threads through" 3 r;
  let evs = Trace.events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let inner = List.find (fun (e : Trace.event) -> e.name = "inner") evs in
  let outer = List.find (fun (e : Trace.event) -> e.name = "outer") evs in
  Alcotest.(check int) "outer is root" 0 outer.depth;
  Alcotest.(check int) "inner is nested" 1 inner.depth;
  Alcotest.(check bool) "child within parent" true
    (inner.start >= outer.start
    && inner.start +. inner.dur <= outer.start +. outer.dur +. 1e-6);
  Alcotest.(check (list (pair string string))) "attrs kept" [ ("n", "3") ] inner.attrs;
  Alcotest.(check bool) "total_duration sums" true
    (feq ~eps:1e-12 (Trace.total_duration "outer") outer.dur);
  Trace.clear ()

let test_ndjson_roundtrip () =
  Trace.set_enabled true;
  Trace.clear ();
  ignore
    (Trace.with_span "root \"quoted\"\nname" (fun sp ->
         Trace.add_attr sp "file" "a\\b.tpn";
         Trace.with_span "child" (fun sp' ->
             Trace.add_attr_int sp' "states" 18;
             ())));
  Trace.set_enabled false;
  let path = Filename.temp_file "tpan_obs" ".ndjson" in
  let oc = open_out path in
  Trace.write_ndjson oc;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let parsed = List.filter_map Trace.parse_line lines in
  Alcotest.(check int) "every line parses" 2 (List.length parsed);
  let originals = Trace.events () in
  List.iter
    (fun (e : Trace.event) ->
      let o =
        List.find (fun (o : Trace.event) -> o.name = e.name) originals
      in
      Alcotest.(check int) (e.name ^ ": depth survives") o.depth e.depth;
      Alcotest.(check (list (pair string string)))
        (e.name ^ ": attrs survive") o.attrs e.attrs;
      (* timestamps go through microsecond formatting: 1e-6 s precision *)
      Alcotest.(check bool) (e.name ^ ": start survives") true
        (feq ~eps:1e-5 o.start e.start);
      Alcotest.(check bool) (e.name ^ ": dur survives") true
        (feq ~eps:1e-5 o.dur e.dur))
    parsed;
  Alcotest.(check (option reject)) "garbage does not parse" None
    (Option.map ignore (Trace.parse_line "not json at all"));
  Trace.clear ()

let test_jsonv_escape () =
  (* every control character, the JSON specials and 8-bit bytes must
     escape into valid JSON and parse back to the original string *)
  let nasty = "a\"b\\c\nd\te\rf\x01g\x1fh\x7fi" in
  (match J.of_string (J.to_string (J.Str nasty)) with
   | Ok (J.Str s) -> Alcotest.(check string) "control chars round-trip" nasty s
   | _ -> Alcotest.fail "escaped string did not parse back");
  (* UTF-8 passes through untouched *)
  let utf8 = "caf\xc3\xa9 \xe2\x86\x92 ok" in
  (match J.of_string (J.to_string (J.Str utf8)) with
   | Ok (J.Str s) -> Alcotest.(check string) "utf-8 round-trips" utf8 s
   | _ -> Alcotest.fail "utf-8 string did not parse back");
  (* \u escapes decode to UTF-8, surrogate pairs included *)
  (match J.of_string "\"\\u00e9 \\u2192 \\ud83d\\ude00\"" with
   | Ok (J.Str s) ->
     Alcotest.(check string) "\\u and surrogate pair decode"
       "\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "\\u escapes did not parse")

let test_jsonv_parser () =
  (match J.of_string "{\"a\": [1, 2.5, true, null], \"b\": {\"c\": \"d\"}}" with
   | Ok doc ->
     (match Option.bind (J.member "a" doc) J.to_list_opt with
      | Some [ x; y; J.Bool true; J.Null ] ->
        Alcotest.(check (option int)) "int element" (Some 1) (J.to_int_opt x);
        Alcotest.(check (option (float 1e-9))) "float element" (Some 2.5) (J.to_float_opt y)
      | _ -> Alcotest.fail "array shape wrong");
     Alcotest.(check (option string)) "nested member" (Some "d")
       (Option.bind (Option.bind (J.member "b" doc) (J.member "c")) J.to_string_opt)
   | Error e -> Alcotest.fail e);
  (* numbers: integer syntax yields Int, fraction/exponent yield Float *)
  (match J.of_string "-42" with
   | Ok (J.Int (-42)) -> ()
   | _ -> Alcotest.fail "integer literal should parse as Int");
  (match J.of_string "1e3" with
   | Ok (J.Float f) -> Alcotest.(check (float 1e-9)) "exponent" 1000.0 f
   | _ -> Alcotest.fail "exponent literal should parse as Float");
  (* malformed inputs are errors, not crashes *)
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "\"unterminated"; "1 2"; "nul"; "{\"a\" 1}" ]

let test_jsonv_huge_floats () =
  (* Floats beyond the int range must stay floats: converting them with
     [int_of_float] is undefined behaviour, so [to_int_opt] must refuse. *)
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok (J.Float f as v) ->
        Alcotest.(check bool) (s ^ " finite") true (Float.is_finite f);
        Alcotest.(check (option int)) (s ^ " not an int") None (J.to_int_opt v);
        (* serialization round-trips through the parser *)
        (match J.of_string (J.to_string v) with
         | Ok (J.Float f') -> Alcotest.(check (float 0.)) (s ^ " round-trip") f f'
         | Ok _ | Error _ -> Alcotest.fail (s ^ " should round-trip as Float"))
      | Ok _ -> Alcotest.fail (s ^ " should parse as Float")
      | Error e -> Alcotest.fail e)
    [ "1e308"; "-1e308"; "9.3e18"; "-9.3e18" ];
  (* boundary behaviour: min_int is exactly representable and convertible,
     the first power of two past max_int is not *)
  Alcotest.(check (option int))
    "min_int representable" (Some min_int)
    (J.to_int_opt (J.Float (float_of_int min_int)));
  Alcotest.(check (option int))
    "2^62 rejected" None
    (J.to_int_opt (J.Float (-.float_of_int min_int)));
  Alcotest.(check (option int)) "2.5 rejected" None (J.to_int_opt (J.Float 2.5))

let om_name_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       s

(* a sample line's "series value" part: an (optionally labelled)
   series name followed by one float *)
let om_sample_ok s =
  match String.index_opt s ' ' with
  | None -> false
  | Some i ->
    let series = String.sub s 0 i in
    let value = String.sub s (i + 1) (String.length s - i - 1) in
    let name =
      match String.index_opt series '{' with
      | Some j -> if series.[String.length series - 1] = '}' then String.sub series 0 j else ""
      | None -> series
    in
    om_name_ok name && Option.is_some (float_of_string_opt value)

(* an exemplar: "{trace_id=\"...\"} value [timestamp]" *)
let om_exemplar_ok s =
  String.length s > 1
  && s.[0] = '{'
  && (match String.index_opt s '}' with
     | None -> false
     | Some j ->
       let rest = String.sub s (j + 1) (String.length s - j - 1) in
       let parts =
         String.split_on_char ' ' rest |> List.filter (fun x -> x <> "")
       in
       List.length parts >= 1 && List.length parts <= 2
       && List.for_all (fun v -> Option.is_some (float_of_string_opt v)) parts)

(* one line of OpenMetrics text exposition: a comment directive, a
   sample (optionally labelled, optionally with an exemplar after
   " # "), or the terminator *)
let om_line_ok line =
  line = "# EOF"
  || (match String.split_on_char ' ' line with
     | [ "#"; "TYPE"; name; kind ] ->
       om_name_ok name && List.mem kind [ "counter"; "gauge"; "histogram" ]
     | _ -> (
       let sample, exemplar =
         let rec find i =
           if i + 2 >= String.length line then None
           else if line.[i] = ' ' && line.[i + 1] = '#' && line.[i + 2] = ' ' then Some i
           else find (i + 1)
         in
         match find 0 with
         | Some i ->
           ( String.sub line 0 i,
             Some (String.sub line (i + 3) (String.length line - i - 3)) )
         | None -> (line, None)
       in
       om_sample_ok sample
       && match exemplar with None -> true | Some e -> om_exemplar_ok e))

let test_openmetrics () =
  let c = Metrics.counter "test_obs.om.requests" in
  Metrics.Counter.add c 7;
  let g = Metrics.gauge "test_obs.om.depth" in
  Metrics.Gauge.set g 3.5;
  let h = Metrics.histogram "test_obs.om.latency" in
  Metrics.Histogram.observe h 0.25;
  Metrics.Histogram.observe h 0.75;
  let text = Metrics.to_openmetrics () in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "grammar: %S" l) true (om_line_ok l))
    lines;
  Alcotest.(check bool) "ends with # EOF" true (List.nth lines (List.length lines - 1) = "# EOF");
  (* every counter family exposes exactly a _total sample *)
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | [ "#"; "TYPE"; name; "counter" ] ->
        Alcotest.(check bool)
          (name ^ " has a _total sample")
          true
          (List.exists
             (fun l' ->
               String.length l' > String.length name + 7
               && String.sub l' 0 (String.length name + 7) = name ^ "_total ")
             lines)
      | _ -> ())
    lines;
  Alcotest.(check bool) "counter series present" true
    (List.exists (fun l -> l = "tpan_test_obs_om_requests_total 7") lines);
  (* histograms expose explicit cumulative buckets, not summary
     quantiles: _bucket{le=...} samples, a +Inf bucket, _count, _sum *)
  let starts_with p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  let bucket_lines =
    List.filter (fun l -> starts_with "tpan_test_obs_om_latency_bucket{le=" l) lines
  in
  Alcotest.(check bool) "bucket samples present" true (List.length bucket_lines >= 2);
  Alcotest.(check bool) "+Inf bucket present" true
    (List.exists (fun l -> starts_with "tpan_test_obs_om_latency_bucket{le=\"+Inf\"}" l)
       bucket_lines);
  let bucket_counts =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | _series :: v :: _ -> int_of_string_opt v
        | _ -> None)
      bucket_lines
  in
  Alcotest.(check bool) "bucket counts cumulative (monotone)" true
    (fst
       (List.fold_left
          (fun (ok, prev) c -> (ok && c >= prev, c))
          (true, 0) bucket_counts));
  Alcotest.(check bool) "last bucket equals _count" true
    (match (List.rev bucket_counts, ()) with
    | last :: _, () ->
      List.exists
        (fun l -> l = Printf.sprintf "tpan_test_obs_om_latency_count %d" last)
        lines
    | [], () -> false);
  Alcotest.(check bool) "_sum present" true
    (List.exists (fun l -> starts_with "tpan_test_obs_om_latency_sum " l) lines)

(* Labelled families: distinct label sets are distinct series sharing
   one # TYPE line; exemplar trace ids ride on histogram buckets. *)
let test_openmetrics_labels () =
  let c1 = Metrics.counter_with "test_obs.om.lreq" [ ("endpoint", "/eval") ] in
  let c2 = Metrics.counter_with "test_obs.om.lreq" [ ("endpoint", "/sweep") ] in
  Metrics.Counter.add c1 3;
  Metrics.Counter.incr c2;
  Alcotest.(check bool) "re-registration returns the same series" true
    (Metrics.counter_with "test_obs.om.lreq" [ ("endpoint", "/eval") ] == c1);
  let h = Metrics.histogram_with "test_obs.om.llat" [ ("endpoint", "/eval") ] in
  Metrics.Histogram.observe ~trace_id:"tid-exemplar-1" h 0.003;
  let text = Metrics.to_openmetrics () in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  List.iter
    (fun l ->
      Alcotest.(check bool) (Printf.sprintf "grammar: %S" l) true (om_line_ok l))
    lines;
  Alcotest.(check bool) "labelled counter series /eval" true
    (List.mem "tpan_test_obs_om_lreq_total{endpoint=\"/eval\"} 3" lines);
  Alcotest.(check bool) "labelled counter series /sweep" true
    (List.mem "tpan_test_obs_om_lreq_total{endpoint=\"/sweep\"} 1" lines);
  Alcotest.(check int) "one TYPE line for the family" 1
    (List.length (List.filter (fun l -> l = "# TYPE tpan_test_obs_om_lreq counter") lines));
  Alcotest.(check bool) "bucket exemplar carries the trace id" true
    (List.exists
       (fun l ->
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
           in
           go 0
         in
         has "tpan_test_obs_om_llat_bucket{" && has "# {trace_id=\"tid-exemplar-1\"}")
       lines)

let test_snapshot_filtering () =
  let _untouched = Metrics.histogram "test_obs.filter.h" in
  let c = Metrics.counter "test_obs.filter.c" in
  Metrics.Counter.incr c;
  let names ~all = List.map fst (Metrics.snapshot ~all ()) in
  Alcotest.(check bool) "untouched histogram omitted by default" false
    (List.mem "test_obs.filter.h" (names ~all:false));
  Alcotest.(check bool) "zero counter kept" true
    (List.mem "test_obs.filter.c" (names ~all:false));
  Alcotest.(check bool) "--all keeps untouched histograms" true
    (List.mem "test_obs.filter.h" (names ~all:true));
  Metrics.Histogram.observe (Metrics.histogram "test_obs.filter.h") 1.0;
  Alcotest.(check bool) "observed histogram appears" true
    (List.mem "test_obs.filter.h" (names ~all:false))

let test_log_sinks () =
  let seen = ref [] in
  Log.set_sinks [ (Log.Info, fun r -> seen := r :: !seen) ];
  Alcotest.(check bool) "debug disabled" false (Log.enabled Log.Debug);
  Alcotest.(check bool) "info enabled" true (Log.enabled Log.Info);
  Log.debug "dropped";
  Log.info "kept" ~fields:[ ("n", J.Int 3) ];
  Log.warn "also kept";
  Log.set_sinks [];
  Alcotest.(check bool) "nothing enabled once silenced" false (Log.enabled Log.Error);
  Log.error "after teardown: dropped";
  let records = List.rev !seen in
  Alcotest.(check int) "two records passed the level filter" 2 (List.length records);
  let r = List.hd records in
  Alcotest.(check string) "message kept" "kept" r.Log.msg;
  Alcotest.(check bool) "level kept" true (r.Log.level = Log.Info);
  Alcotest.(check bool) "field kept" true (r.Log.fields = [ ("n", J.Int 3) ]);
  Alcotest.(check bool) "timestamp is sane" true (r.Log.ts > 1e9)

let test_log_ndjson_sink () =
  let path = Filename.temp_file "tpan_log" ".ndjson" in
  let oc = open_out path in
  Log.set_sinks [ (Log.Debug, Log.ndjson_sink oc) ];
  Log.warn "ctrl \x01 and \"quotes\"" ~fields:[ ("file", J.Str "a\\b\nc") ];
  Log.set_sinks [];
  close_out oc;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match J.of_string line with
  | Ok doc ->
    Alcotest.(check (option string)) "level round-trips" (Some "warn")
      (Option.bind (J.member "level" doc) J.to_string_opt);
    Alcotest.(check (option string)) "control chars in msg round-trip"
      (Some "ctrl \x01 and \"quotes\"")
      (Option.bind (J.member "msg" doc) J.to_string_opt);
    Alcotest.(check (option string)) "field round-trips" (Some "a\\b\nc")
      (Option.bind (Option.bind (J.member "fields" doc) (J.member "file")) J.to_string_opt)
  | Error e -> Alcotest.fail ("ndjson line does not parse: " ^ e)

let test_log_local_buffer () =
  let seen = ref [] in
  Log.set_sinks [ (Log.Debug, fun r -> seen := r :: !seen) ];
  Log.Local.install ();
  Log.info "buffered";
  Alcotest.(check int) "buffered records bypass the sinks" 0 (List.length !seen);
  let records = Log.Local.collect () in
  Alcotest.(check int) "collect returns the buffer" 1 (List.length records);
  Log.flush_records records;
  Log.set_sinks [];
  Alcotest.(check int) "flush replays through the sinks" 1 (List.length !seen);
  Alcotest.(check string) "record intact" "buffered" (List.hd !seen).Log.msg

let test_trace_lanes () =
  Trace.set_enabled true;
  Trace.clear ();
  Trace.set_lane 3;
  ignore (Trace.with_span "laned" (fun sp -> Trace.add_attr sp "k" "v"));
  Trace.set_lane 0;
  ignore (Trace.with_span "mainline" (fun _ -> ()));
  Trace.set_enabled false;
  let evs = Trace.events () in
  let lane name = (List.find (fun (e : Trace.event) -> e.name = name) evs).lane in
  Alcotest.(check int) "set_lane stamps events" 3 (lane "laned");
  Alcotest.(check int) "lane 0 by default" 0 (lane "mainline");
  (* lanes survive the NDJSON round-trip as Chrome-trace tids *)
  let path = Filename.temp_file "tpan_obs" ".ndjson" in
  let oc = open_out path in
  Trace.write_ndjson oc;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let parsed = List.filter_map Trace.parse_line !lines in
  let plane name = (List.find (fun (e : Trace.event) -> e.name = name) parsed).Trace.lane in
  Alcotest.(check int) "lane survives parse_line" 3 (plane "laned");
  Alcotest.(check int) "lane 0 survives parse_line" 0 (plane "mainline");
  Trace.clear ()

let test_progress () =
  let hits = ref [] in
  let hook = Progress.every 10 (fun n -> hits := n :: !hits) in
  for i = 1 to 35 do
    hook i
  done;
  Alcotest.(check (list int)) "fires every interval" [ 30; 20; 10 ] !hits;
  let silent = Progress.every 0 (fun _ -> Alcotest.fail "interval 0 must not fire") in
  silent 5

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter & gauge" `Quick test_counter_gauge;
      Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
      Alcotest.test_case "histogram window cap" `Quick test_histogram_window_cap;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_mode;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "ndjson round-trip" `Quick test_ndjson_roundtrip;
      Alcotest.test_case "progress hooks" `Quick test_progress;
      Alcotest.test_case "jsonv escaping" `Quick test_jsonv_escape;
      Alcotest.test_case "jsonv parser" `Quick test_jsonv_parser;
      Alcotest.test_case "jsonv huge floats stay floats" `Quick test_jsonv_huge_floats;
      Alcotest.test_case "openmetrics exposition" `Quick test_openmetrics;
      Alcotest.test_case "openmetrics labels and exemplars" `Quick
        test_openmetrics_labels;
      Alcotest.test_case "snapshot filtering" `Quick test_snapshot_filtering;
      Alcotest.test_case "log sinks & levels" `Quick test_log_sinks;
      Alcotest.test_case "log ndjson sink" `Quick test_log_ndjson_sink;
      Alcotest.test_case "log local buffers" `Quick test_log_local_buffer;
      Alcotest.test_case "trace lanes" `Quick test_trace_lanes;
    ] )
