(* Unit tests for the Tpan_obs observability layer: metrics registry,
   histogram percentiles, span nesting, disabled-mode no-ops and the
   NDJSON export/parse round-trip. *)

module Metrics = Tpan_obs.Metrics
module Trace = Tpan_obs.Trace
module Progress = Tpan_obs.Progress

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_counter_gauge () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 41;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.Counter.value c);
  Metrics.Counter.reset c;
  Alcotest.(check int) "counter resets" 0 (Metrics.Counter.value c);
  let g = Metrics.Gauge.create () in
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.set_max g 2.0;
  Alcotest.(check bool) "set_max keeps max" true (feq (Metrics.Gauge.value g) 3.5);
  Metrics.Gauge.set_max g 7.0;
  Alcotest.(check bool) "set_max raises" true (feq (Metrics.Gauge.value g) 7.0)

let test_histogram_percentiles () =
  let h = Metrics.Histogram.create () in
  (* 1..100 in scrambled order: percentile must sort, not trust arrival *)
  for i = 0 to 99 do
    Metrics.Histogram.observe h (float_of_int (((i * 37) mod 100) + 1))
  done;
  Alcotest.(check int) "count" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "sum" true (feq (Metrics.Histogram.sum h) 5050.0);
  Alcotest.(check bool) "max" true (feq (Metrics.Histogram.max_value h) 100.0);
  Alcotest.(check bool) "p50" true (feq (Metrics.Histogram.percentile h 0.5) 50.0);
  Alcotest.(check bool) "p90" true (feq (Metrics.Histogram.percentile h 0.9) 90.0);
  Alcotest.(check bool) "p99" true (feq (Metrics.Histogram.percentile h 0.99) 99.0);
  Alcotest.(check bool) "p100" true (feq (Metrics.Histogram.percentile h 1.0) 100.0);
  let empty = Metrics.Histogram.create () in
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Metrics.Histogram.percentile empty 0.5))

let test_histogram_window_cap () =
  let h = Metrics.Histogram.create ~cap:8 () in
  for i = 1 to 100 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  (* count/sum/max are exact over the stream even though only 8 samples
     are retained for percentiles *)
  Alcotest.(check int) "count exact past cap" 100 (Metrics.Histogram.count h);
  Alcotest.(check bool) "sum exact past cap" true (feq (Metrics.Histogram.sum h) 5050.0);
  Alcotest.(check bool) "max exact past cap" true
    (feq (Metrics.Histogram.max_value h) 100.0);
  (* the retained window is the last 8 observations: 93..100 *)
  Alcotest.(check bool) "windowed p0 is recent" true
    (Metrics.Histogram.percentile h 0.0 >= 93.0)

let test_registry () =
  let c = Metrics.counter "test_obs.registry.c" in
  let c' = Metrics.counter "test_obs.registry.c" in
  Metrics.Counter.incr c;
  Alcotest.(check int) "find-or-create shares the store" 1 (Metrics.Counter.value c');
  Alcotest.(check int) "counter_value reads registry" 1
    (Metrics.counter_value "test_obs.registry.c");
  Alcotest.(check int) "counter_value absent -> 0" 0
    (Metrics.counter_value "test_obs.registry.nope");
  (match Metrics.find "test_obs.registry.c" with
  | Some (Metrics.Counter_v 1) -> ()
  | _ -> Alcotest.fail "find should see Counter_v 1");
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge "test_obs.registry.c");
       false
     with Invalid_argument _ -> true);
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true
    (List.sort compare names = names)

let test_disabled_mode () =
  Trace.set_enabled false;
  Trace.clear ();
  let r =
    Trace.with_span "off.outer" (fun sp ->
        Trace.add_attr sp "k" "v";
        Trace.with_span "off.inner" (fun _ -> 17))
  in
  Alcotest.(check int) "thunk result passes through" 17 r;
  Alcotest.(check int) "no events buffered" 0 (List.length (Trace.events ()));
  (* timing switch off: Metrics.time must still run the thunk *)
  Metrics.set_timing false;
  let h = Metrics.Histogram.create () in
  Alcotest.(check int) "time runs thunk when off" 5 (Metrics.time h (fun () -> 5));
  Alcotest.(check int) "no observation when off" 0 (Metrics.Histogram.count h)

let test_span_nesting () =
  Trace.set_enabled true;
  Trace.clear ();
  let r =
    Trace.with_span "outer" (fun sp ->
        Trace.add_attr sp "stage" "test";
        Trace.with_span "inner" (fun sp' ->
            Trace.add_attr_int sp' "n" 3;
            2) + 1)
  in
  Trace.set_enabled false;
  Alcotest.(check int) "result threads through" 3 r;
  let evs = Trace.events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let inner = List.find (fun (e : Trace.event) -> e.name = "inner") evs in
  let outer = List.find (fun (e : Trace.event) -> e.name = "outer") evs in
  Alcotest.(check int) "outer is root" 0 outer.depth;
  Alcotest.(check int) "inner is nested" 1 inner.depth;
  Alcotest.(check bool) "child within parent" true
    (inner.start >= outer.start
    && inner.start +. inner.dur <= outer.start +. outer.dur +. 1e-6);
  Alcotest.(check (list (pair string string))) "attrs kept" [ ("n", "3") ] inner.attrs;
  Alcotest.(check bool) "total_duration sums" true
    (feq ~eps:1e-12 (Trace.total_duration "outer") outer.dur);
  Trace.clear ()

let test_ndjson_roundtrip () =
  Trace.set_enabled true;
  Trace.clear ();
  ignore
    (Trace.with_span "root \"quoted\"\nname" (fun sp ->
         Trace.add_attr sp "file" "a\\b.tpn";
         Trace.with_span "child" (fun sp' ->
             Trace.add_attr_int sp' "states" 18;
             ())));
  Trace.set_enabled false;
  let path = Filename.temp_file "tpan_obs" ".ndjson" in
  let oc = open_out path in
  Trace.write_ndjson oc;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 2 (List.length lines);
  let parsed = List.filter_map Trace.parse_line lines in
  Alcotest.(check int) "every line parses" 2 (List.length parsed);
  let originals = Trace.events () in
  List.iter
    (fun (e : Trace.event) ->
      let o =
        List.find (fun (o : Trace.event) -> o.name = e.name) originals
      in
      Alcotest.(check int) (e.name ^ ": depth survives") o.depth e.depth;
      Alcotest.(check (list (pair string string)))
        (e.name ^ ": attrs survive") o.attrs e.attrs;
      (* timestamps go through microsecond formatting: 1e-6 s precision *)
      Alcotest.(check bool) (e.name ^ ": start survives") true
        (feq ~eps:1e-5 o.start e.start);
      Alcotest.(check bool) (e.name ^ ": dur survives") true
        (feq ~eps:1e-5 o.dur e.dur))
    parsed;
  Alcotest.(check (option reject)) "garbage does not parse" None
    (Option.map ignore (Trace.parse_line "not json at all"));
  Trace.clear ()

let test_progress () =
  let hits = ref [] in
  let hook = Progress.every 10 (fun n -> hits := n :: !hits) in
  for i = 1 to 35 do
    hook i
  done;
  Alcotest.(check (list int)) "fires every interval" [ 30; 20; 10 ] !hits;
  let silent = Progress.every 0 (fun _ -> Alcotest.fail "interval 0 must not fire") in
  silent 5

let suite =
  ( "obs",
    [
      Alcotest.test_case "counter & gauge" `Quick test_counter_gauge;
      Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
      Alcotest.test_case "histogram window cap" `Quick test_histogram_window_cap;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_mode;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "ndjson round-trip" `Quick test_ndjson_roundtrip;
      Alcotest.test_case "progress hooks" `Quick test_progress;
    ] )
