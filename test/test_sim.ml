(* Tests for the simulation substrate and the analytic/Monte-Carlo
   agreement on the paper's protocol. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module M = Tpan_perf.Measures
module Heap = Tpan_sim.Heap
module Rng = Tpan_sim.Rng
module Stats = Tpan_sim.Stats
module Sim = Tpan_sim.Simulator
module SW = Tpan_protocols.Stopwait

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:Stdlib.compare () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length h);
  let drained = List.init 7 (fun _ -> Heap.pop_exn h) in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_releases_popped () =
  (* Popped elements must become garbage: the backing store may not keep
     them reachable in its spare capacity. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  let n = 8 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let boxed = (i, ref i) in
    Weak.set weak i (Some boxed);
    Heap.push h boxed
  done;
  for _ = 1 to n do
    ignore (Heap.pop_exn h)
  done;
  Gc.full_major ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  Alcotest.(check int) "no popped element retained" 0 !live;
  (* the heap itself must stay usable afterwards *)
  Heap.push h (42, ref 42);
  Alcotest.(check int) "reusable" 42 (fst (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap drains sorted" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~cmp:Stdlib.compare () in
      List.iter (Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Heap.pop_exn h) in
      drained = List.sort Stdlib.compare xs)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let xs = List.init 10 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "same stream" true (xs = ys);
  let c = Rng.create ~seed:8 in
  let zs = List.init 10 (fun _ -> Rng.next_int64 c) in
  Alcotest.(check bool) "different seed differs" false (xs = zs)

let test_rng_uniform () =
  let r = Rng.create ~seed:1 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Rng.float r in
    Alcotest.(check bool) "in range" true (x >= 0. && x < 1.);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_weighted () =
  let r = Rng.create ~seed:3 in
  let n = 20_000 in
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.choose_weighted r [ ("a", 0.05); ("b", 0.95) ] = "a" then incr count
  done;
  let frac = float_of_int !count /. float_of_int n in
  Alcotest.(check bool) "5% branch frequency" true (Float.abs (frac -. 0.05) < 0.01);
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Rng.choose_weighted: all-zero weights") (fun () ->
      ignore (Rng.choose_weighted r [ ("a", 0.) ]))

let test_rng_weighted_zero_entries () =
  (* Zero-weight alternatives must never be chosen — in particular a
     trailing zero entry must not be reachable through the round-off
     fallback. *)
  let weights = [ ("z0", 0.); ("a", 1e-12); ("b", 0.7); ("z1", 0.); ("c", 0.3); ("z2", 0.) ] in
  List.iter
    (fun seed ->
      let r = Rng.create ~seed in
      for _ = 1 to 5_000 do
        let v = Rng.choose_weighted r weights in
        if v.[0] = 'z' then Alcotest.failf "zero-weight entry %s chosen" v
      done)
    [ 0; 1; 2; 3; 17; 123456 ];
  (* all-zero tail after the only positive entry *)
  let r = Rng.create ~seed:9 in
  for _ = 1 to 1_000 do
    Alcotest.(check string)
      "only positive entry wins" "a"
      (Rng.choose_weighted r [ ("a", 0.25); ("z0", 0.); ("z1", 0.) ])
  done

(* --- Stats --- *)

let test_running_stats () =
  let s = Stats.Running.create () in
  List.iter (Stats.Running.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Running.mean s);
  Alcotest.(check (float 1e-9)) "sample variance" (32. /. 7.) (Stats.Running.variance s);
  let lo, hi = Stats.Running.ci95 s in
  Alcotest.(check bool) "ci brackets mean" true (lo < 5.0 && 5.0 < hi)

let test_time_weighted () =
  let tw = Stats.Time_weighted.create () in
  Stats.Time_weighted.observe tw ~at:0. 1.;
  Stats.Time_weighted.observe tw ~at:10. 3.;
  Stats.Time_weighted.close tw ~at:20.;
  (* 1 for 10 time units, 3 for 10: average 2 *)
  Alcotest.(check (float 1e-9)) "average" 2.0 (Stats.Time_weighted.average tw)

let test_time_weighted_close_first () =
  (* Closing an accumulator that never observed anything (a simulation that
     ends before its first sample) must be well defined: zero span, zero
     average, no exception. *)
  let tw = Stats.Time_weighted.create () in
  Stats.Time_weighted.close tw ~at:7.;
  Alcotest.(check (float 1e-9)) "empty average" 0. (Stats.Time_weighted.average tw);
  (* and the accumulator stays usable *)
  Stats.Time_weighted.observe tw ~at:10. 4.;
  Stats.Time_weighted.close tw ~at:20.;
  Alcotest.(check (float 1e-9)) "later average" 4. (Stats.Time_weighted.average tw)

(* --- Simulator vs analysis --- *)

let test_sim_matches_analysis () =
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let exact = Q.to_float (M.Concrete.throughput res g "t7") in
  let net = Tpn.net tpn in
  let t7 = Net.trans_of_name net "t7" in
  let stats = Sim.run ~seed:11 ~horizon:(Q.of_int 3_000_000) tpn in
  Alcotest.(check bool) "no deadlock" false stats.Sim.deadlocked;
  let simulated = Sim.throughput stats t7 in
  let rel = Float.abs (simulated -. exact) /. exact in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.6f vs exact %.6f within 3%%" simulated exact)
    true (rel < 0.03)

let test_sim_utilization_matches () =
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let net = Tpn.net tpn in
  let p4 = Net.place_of_name net "p4" in
  let exact =
    Q.to_float
      (M.Concrete.utilization res ~graph:g (fun st ->
           Tpan_petri.Marking.tokens st.Tpan_core.Semantics.marking p4 > 0))
  in
  let stats = Sim.run ~seed:5 ~horizon:(Q.of_int 2_000_000) tpn in
  let simulated = Sim.utilization stats p4 in
  Alcotest.(check bool)
    (Printf.sprintf "p4 utilization sim %.4f vs exact %.4f" simulated exact)
    true
    (Float.abs (simulated -. exact) < 0.02)

let test_sim_deadlock () =
  let b = Net.builder "once" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[] in
  let tpn = Tpn.make (Net.build b) [ ("t", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 2)) ()) ] in
  let stats = Sim.run ~horizon:(Q.of_int 100) tpn in
  Alcotest.(check bool) "deadlocked" true stats.Sim.deadlocked;
  Alcotest.(check int) "one completion" 1 stats.Sim.completed.(0);
  Alcotest.(check bool) "stops at the deadlock instant" true (Q.equal (Q.of_int 2) stats.Sim.sim_time)

let test_sim_timeout_priority () =
  (* ack arriving exactly at timeout expiry: t7 must always win (zero
     frequency of t3) — lossless medium, tight timeout *)
  let p =
    { SW.paper_params with
      SW.timeout = Q.of_decimal_string "226.9" (* = 106.7+13.5+106.7 *);
      packet_loss = Q.zero; ack_loss = Q.zero }
  in
  let tpn = SW.concrete p in
  let net = Tpn.net tpn in
  let stats = Sim.run ~seed:1 ~horizon:(Q.of_int 500_000) tpn in
  Alcotest.(check int) "no timeouts ever fire" 0
    stats.Sim.completed.(Net.trans_of_name net "t3");
  Alcotest.(check bool) "progress" true (stats.Sim.completed.(Net.trans_of_name net "t7") > 100)

let test_replications () =
  let tpn = SW.concrete SW.paper_params in
  let net = Tpn.net tpn in
  let t7 = Net.trans_of_name net "t7" in
  let est =
    Sim.replicate ~seed:9 ~runs:5 ~horizon:(Q.of_int 400_000) tpn (fun s -> Sim.throughput s t7)
  in
  Alcotest.(check int) "runs" 5 est.Sim.runs;
  let lo, hi = est.Sim.ci95 in
  Alcotest.(check bool) "interval is proper" true (lo <= est.Sim.mean && est.Sim.mean <= hi);
  Alcotest.(check bool) "non-degenerate spread" true (est.Sim.std_error > 0.)

let prop_sim_conserves_safeness =
  (* the stop-and-wait net is safe: simulation must keep p4 at <= 1 token;
     mean_tokens of any place stays within [0, 1] *)
  QCheck2.Test.make ~name:"simulation respects safeness" ~count:10
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let tpn = SW.concrete SW.paper_params in
      let stats = Sim.run ~seed ~horizon:(Q.of_int 50_000) tpn in
      Array.for_all (fun qt -> Q.to_float qt <= Q.to_float stats.Sim.sim_time +. 1e-9) stats.Sim.place_time)

let test_warmup_removes_transient () =
  (* a 100 ms one-shot prologue feeding a 10 ms cycle: without warmup the
     estimated rate is biased low by the prologue; with warmup = 100 the
     estimate is exactly the steady rate 0.1 *)
  let b = Net.builder "transient" in
  let p = Net.add_place b ~init:1 "p" in
  let q_ = Net.add_place b "q" in
  let _ = Net.add_transition b ~name:"prologue" ~inputs:[ (p, 1) ] ~outputs:[ (q_, 1) ] in
  let _ = Net.add_transition b ~name:"cycle" ~inputs:[ (q_, 1) ] ~outputs:[ (q_, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("prologue", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 100)) ());
        ("cycle", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 10)) ());
      ]
  in
  let net = Tpn.net tpn in
  let cycle = Net.trans_of_name net "cycle" in
  let cold = Sim.run ~horizon:(Q.of_int 1000) tpn in
  let warm = Sim.run ~warmup:(Q.of_int 100) ~horizon:(Q.of_int 1000) tpn in
  Alcotest.(check (float 1e-9)) "cold estimate biased" 0.09 (Sim.throughput cold cycle);
  Alcotest.(check (float 1e-9)) "warm estimate exact" 0.1 (Sim.throughput warm cycle);
  (* boundary semantics: an event at exactly the warmup instant counts
     (the prologue completes at t = 100 = warmup) *)
  Alcotest.(check int) "boundary event counted once" 1
    warm.Sim.completed.(Net.trans_of_name net "prologue");
  (* place-time integrals follow the same window: q is marked the whole
     post-warmup span except while cycle is firing... cycle absorbs q, so
     q's marked share after warmup is 0 (token always inside the firing) *)
  Alcotest.(check bool) "sim_time measures post-warmup span" true
    (Q.equal warm.Sim.sim_time (Q.of_int 1000))

let suite =
  ( "sim",
    [
      Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
      Alcotest.test_case "heap releases popped elements" `Quick test_heap_releases_popped;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng uniformity" `Quick test_rng_uniform;
      Alcotest.test_case "rng weighted choice" `Quick test_rng_weighted;
      Alcotest.test_case "rng weighted: zero entries unreachable" `Quick
        test_rng_weighted_zero_entries;
      Alcotest.test_case "running stats" `Quick test_running_stats;
      Alcotest.test_case "time-weighted average" `Quick test_time_weighted;
      Alcotest.test_case "time-weighted close before observe" `Quick
        test_time_weighted_close_first;
      Alcotest.test_case "simulation matches analysis" `Slow test_sim_matches_analysis;
      Alcotest.test_case "utilization matches" `Slow test_sim_utilization_matches;
      Alcotest.test_case "deadlock handling" `Quick test_sim_deadlock;
      Alcotest.test_case "timeout priority in simulation" `Slow test_sim_timeout_priority;
      Alcotest.test_case "replications" `Slow test_replications;
      Alcotest.test_case "warmup removes transient" `Quick test_warmup_removes_transient;
      QCheck_alcotest.to_alcotest prop_heap_sorts;
      QCheck_alcotest.to_alcotest prop_sim_conserves_safeness;
    ] )
