(* Flight-recorder tests: cancellation tokens and deadline unwinding,
   request-context propagation across pool workers, frame JSON
   round-trips, the SIGUSR1 / stall watchdog, and throttled progress. *)

module Cancel = Tpan_obs.Cancel
module Context = Tpan_obs.Context
module Dump = Tpan_obs.Dump
module Progress = Tpan_obs.Progress
module J = Tpan_obs.Jsonv
module Pool = Tpan_par.Pool
module Error = Tpan_core.Error

let temp_flight () =
  let f = Filename.temp_file "tpan_flight" ".ndjson" in
  Sys.remove f;
  f

(* Busy-wait that reaches checkpoints until cancelled (or a wall-clock
   backstop trips, failing the test rather than hanging the suite). *)
let spin_until_cancelled ?(backstop = 10.) () =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < backstop do
    Cancel.checkpoint ()
  done;
  Alcotest.fail "checkpoint never observed the cancellation"

let test_token_basics () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh token not cancelled" true (Cancel.cancelled t = None);
  Alcotest.(check bool) "no deadline unless asked" true (Cancel.deadline t = None);
  Cancel.cancel t (Cancel.Interrupted "first");
  Cancel.cancel t (Cancel.Deadline 1.0);
  (match Cancel.cancelled t with
  | Some (Cancel.Interrupted "first") -> ()
  | _ -> Alcotest.fail "first cancellation reason must win");
  let d = Cancel.create ~deadline_in:30. () in
  Alcotest.(check bool) "deadline resolved to an instant" true
    (Cancel.deadline d <> None);
  Alcotest.(check bool) "budget preserved" true (Cancel.budget d = Some 30.);
  (* checkpoint with no ambient token is a no-op that still heartbeats *)
  let before = Cancel.heartbeat_total () in
  Cancel.checkpoint ();
  Alcotest.(check bool) "checkpoint bumps the heartbeat" true
    (Cancel.heartbeat_total () > before)

let test_deadline_unwinds () =
  let ctx = Context.make ~deadline:0.05 () in
  match Context.with_ctx ctx (fun () -> spin_until_cancelled ()) with
  | exception Cancel.Cancelled (Cancel.Deadline b) ->
    Alcotest.(check bool) "reason carries the budget" true (b = 0.05);
    (* the classifier maps it to the stable error with exit code 6 *)
    (match Error.of_exn (Cancel.Cancelled (Cancel.Deadline b)) with
    | Some (Error.Deadline_exceeded _ as e) ->
      Alcotest.(check int) "exit code 6" 6 (Error.exit_code e)
    | _ -> Alcotest.fail "Cancelled must classify as Deadline_exceeded");
    Alcotest.(check bool) "ambient token restored" true (Cancel.current () = None)
  | _ -> Alcotest.fail "deadline never fired"

let test_on_cancel_hook_runs_once () =
  let fired = ref 0 in
  Cancel.set_on_cancel (Some (fun _ -> incr fired));
  Fun.protect
    ~finally:(fun () -> Cancel.set_on_cancel None)
    (fun () ->
      let t = Cancel.create () in
      Cancel.cancel t (Cancel.Interrupted "x");
      Cancel.cancel t (Cancel.Interrupted "y");
      Alcotest.(check int) "hook fires once per token" 1 !fired;
      (* a hook that raises must not poison the cancellation *)
      Cancel.set_on_cancel (Some (fun _ -> failwith "hook bug"));
      let t2 = Cancel.create () in
      Cancel.cancel t2 (Cancel.Interrupted "z");
      Alcotest.(check bool) "hook exceptions are swallowed" true
        (Cancel.cancelled t2 <> None))

let test_pool_propagates_context () =
  let ctx = Context.make ~labels:[ ("req", "42") ] () in
  let ids =
    Context.with_ctx ctx (fun () ->
        Pool.map ~jobs:4
          (fun _ ->
            ( Option.map (fun (c : Context.t) -> c.Context.trace_id) (Context.current ()),
              Cancel.current () <> None ))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  List.iter
    (fun (id, has_token) ->
      Alcotest.(check (option string)) "worker sees the request trace id"
        (Some ctx.Context.trace_id) id;
      Alcotest.(check bool) "worker sees the request token" true has_token)
    ids

let test_pool_deadline_aborts_all_lanes () =
  let ctx = Context.make ~deadline:0.05 () in
  match
    Context.with_ctx ctx (fun () ->
        Pool.map ~jobs:4 (fun _ -> spin_until_cancelled ()) [ 1; 2; 3; 4 ])
  with
  | exception Cancel.Cancelled _ -> ()
  | _ -> Alcotest.fail "parallel map must unwind on the shared deadline"

let test_context_ids () =
  let a = Context.make () and b = Context.make () in
  Alcotest.(check bool) "trace ids unique" true (a.Context.trace_id <> b.Context.trace_id);
  let c = Context.child a in
  Alcotest.(check string) "child keeps the trace id" a.Context.trace_id c.Context.trace_id;
  Alcotest.(check bool) "child gets a fresh span id" true
    (a.Context.span_id <> c.Context.span_id)

let test_frame_roundtrip () =
  let ctx = Context.make () in
  let f =
    Context.with_ctx ctx (fun () ->
        Tpan_obs.Trace.with_span "flight.test" (fun _ ->
            Dump.snapshot ~kind:"dump" ~reason:"unit test" ()))
  in
  Alcotest.(check bool) "snapshot sees the open span" true
    (List.exists (fun (_, stack) -> List.mem "flight.test" stack) f.Dump.spans);
  Alcotest.(check (option string)) "snapshot carries the trace id"
    (Some ctx.Context.trace_id) f.Dump.trace_id;
  match Dump.of_json (Dump.to_json f) with
  | None -> Alcotest.fail "frame did not round-trip"
  | Some g ->
    Alcotest.(check string) "kind survives" f.Dump.kind g.Dump.kind;
    Alcotest.(check (option string)) "reason survives" f.Dump.reason g.Dump.reason;
    Alcotest.(check (option string)) "trace id survives" f.Dump.trace_id g.Dump.trace_id;
    Alcotest.(check bool) "spans survive" true (f.Dump.spans = g.Dump.spans);
    Alcotest.(check bool) "progress survives" true (f.Dump.progress = g.Dump.progress);
    (* and through the NDJSON file layer *)
    let path = temp_flight () in
    (match (Dump.append path f, Dump.append path g) with
    | Ok (), Ok () -> ()
    | _ -> Alcotest.fail "append failed");
    (match Dump.load path with
    | Ok [ x; y ] ->
      Alcotest.(check string) "file order preserved" x.Dump.kind y.Dump.kind
    | Ok fs -> Alcotest.failf "expected 2 frames, loaded %d" (List.length fs)
    | Error msg -> Alcotest.fail msg);
    Sys.remove path

let test_progress_summary () =
  let metrics name v =
    J.List [ J.Obj [ ("name", J.Str name); ("kind", J.Str "counter"); ("value", J.Int v) ] ]
  in
  let base = Dump.snapshot () in
  let f = { base with Dump.metrics = metrics "sim.simulator.steps" 1234 } in
  Alcotest.(check bool) "advanced counters are reported" true
    (List.mem ("sim steps", 1234) (Dump.progress_summary f));
  let z = { base with Dump.metrics = metrics "sim.simulator.steps" 0 } in
  Alcotest.(check bool) "zero counters are suppressed" true
    (Dump.progress_summary z = [])

let rec wait_for ?(tries = 100) pred =
  if tries = 0 then false
  else if pred () then true
  else begin
    Unix.sleepf 0.05;
    wait_for ~tries:(tries - 1) pred
  end

let dump_with_reason path want =
  match Dump.load path with
  | Ok frames ->
    List.exists
      (fun f ->
        f.Dump.kind = "dump"
        && match f.Dump.reason with Some r -> r = want | None -> false)
      frames
  | Error _ -> false

let test_sigusr1_dump () =
  let path = temp_flight () in
  Dump.install_sigusr1 ();
  let wd = Dump.start_watchdog ~interval:0.02 ~path () in
  Unix.kill (Unix.getpid ()) Sys.sigusr1;
  let seen = wait_for (fun () -> dump_with_reason path "SIGUSR1") in
  Dump.stop_watchdog wd;
  Alcotest.(check bool) "SIGUSR1 produces a dump frame" true seen;
  (match Dump.load path with
  | Ok frames ->
    List.iter
      (fun f -> Alcotest.(check bool) "dump has heartbeat data" true (f.Dump.progress <> []))
      frames
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_stall_watchdog () =
  let path = temp_flight () in
  (* one beat so the watchdog has a baseline, then go quiet: the
     heartbeat sum stops advancing and the stall trips after 0.15s *)
  Cancel.checkpoint ();
  let wd = Dump.start_watchdog ~interval:0.02 ~stall:0.15 ~path () in
  let seen =
    wait_for (fun () ->
        match Dump.load path with
        | Ok frames ->
          List.exists
            (fun f ->
              f.Dump.kind = "dump"
              &&
              match f.Dump.reason with
              | Some r ->
                (* e.g. "no checkpoint progress for 0.2s" *)
                String.length r >= 5 && String.sub r 0 5 = "no ch"
              | None -> false)
            frames
        | Error _ -> false)
  in
  Dump.stop_watchdog wd;
  Alcotest.(check bool) "stalled analysis produces a dump" true seen;
  Sys.remove path

let test_watchdog_cancels_wedged_deadline () =
  (* a loop wedged between checkpoints: nobody polls, but the watchdog
     notices the deadline and cancels the token, so the next checkpoint
     (whenever it comes) unwinds *)
  let t = Cancel.create ~deadline_in:0.05 () in
  let wd = Dump.start_watchdog ~interval:0.02 ~token:t () in
  let cancelled = wait_for (fun () -> Cancel.cancelled t <> None) in
  Dump.stop_watchdog wd;
  Alcotest.(check bool) "watchdog cancelled the overdue token" true cancelled;
  match Cancel.cancelled t with
  | Some (Cancel.Deadline _) -> ()
  | _ -> Alcotest.fail "reason must be the deadline"

let test_throttle () =
  (* zero interval: the counter mask alone gates — one call in mask+1 *)
  let fired = ref 0 in
  let cb = Progress.throttle ~interval:0.0 ~mask:3 (fun _ -> incr fired) in
  for i = 1 to 1000 do
    cb i
  done;
  Alcotest.(check int) "mask passes one call in four" 250 !fired;
  (* long interval: nothing fires inside it, however many calls arrive *)
  let fired2 = ref 0 in
  let cb2 = Progress.throttle ~interval:60.0 ~mask:0 (fun _ -> incr fired2) in
  for i = 1 to 1000 do
    cb2 i
  done;
  Alcotest.(check int) "interval suppresses every call" 0 !fired2

let suite =
  ( "flight",
    [
      Alcotest.test_case "cancellation token basics" `Quick test_token_basics;
      Alcotest.test_case "deadline unwinds via checkpoint" `Quick test_deadline_unwinds;
      Alcotest.test_case "on-cancel hook fires once" `Quick test_on_cancel_hook_runs_once;
      Alcotest.test_case "pool propagates request context" `Quick
        test_pool_propagates_context;
      Alcotest.test_case "pool deadline aborts all lanes" `Quick
        test_pool_deadline_aborts_all_lanes;
      Alcotest.test_case "context id generation" `Quick test_context_ids;
      Alcotest.test_case "frame JSON round-trip" `Quick test_frame_roundtrip;
      Alcotest.test_case "progress summary extraction" `Quick test_progress_summary;
      Alcotest.test_case "SIGUSR1 dump" `Quick test_sigusr1_dump;
      Alcotest.test_case "stall watchdog" `Quick test_stall_watchdog;
      Alcotest.test_case "watchdog cancels wedged deadline" `Quick
        test_watchdog_cancels_wedged_deadline;
      Alcotest.test_case "throttled progress" `Quick test_throttle;
    ] )
