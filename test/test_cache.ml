(* The artifact cache: hit/miss accounting, LRU eviction under a byte
   budget, exactly-once builds, persistence round-trips through the
   expression codec, and physical sharing across worker domains. *)

module Cache = Tpan_cache.Cache
module Codec = Tpan_cache.Codec
module Q = Tpan_mathkit.Q
module Rf = Tpan_symbolic.Ratfun
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module J = Tpan_obs.Jsonv

(* Metrics counters are find-or-create by name and process-global, so
   every test uses a cache name of its own for clean counts. *)

let test_hit_miss () =
  let c = Cache.create ~name:"test.hitmiss" () in
  Alcotest.(check bool) "empty miss" true (Cache.find c "k" = None);
  Cache.put c "k" 42;
  Alcotest.(check bool) "present hit" true (Cache.find c "k" = Some 42);
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Cache.hits;
  Alcotest.(check int) "one entry" 1 s.Cache.entries;
  Alcotest.(check bool) "bytes accounted" true (s.Cache.bytes > 0);
  Cache.remove c "k";
  Alcotest.(check int) "removed" 0 (Cache.stats c).Cache.entries

let test_eviction_under_budget () =
  (* each value weighs ~8KiB; a budget of ~1.5 values keeps exactly one *)
  let value tag = (tag, String.make 8192 'x') in
  let budget = 12 * 1024 in
  let c = Cache.create ~name:"test.evict" ~budget_bytes:budget () in
  Cache.put c "one" (value 1);
  Cache.put c "two" (value 2);
  let s = Cache.stats c in
  Alcotest.(check int) "evicted down to one entry" 1 s.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check bool) "within budget" true (s.Cache.bytes <= budget);
  Alcotest.(check bool) "LRU victim was the older key" true (Cache.mem c "two");
  Alcotest.(check bool) "older key gone" false (Cache.mem c "one");
  (* a find refreshes recency: after touching "two", inserting "three"
     still evicts the stalest entry *)
  ignore (Cache.find c "two");
  Cache.put c "three" (value 3);
  Alcotest.(check bool) "newest present" true (Cache.mem c "three")

let test_find_or_build_exactly_once () =
  let c = Cache.create ~name:"test.once" () in
  let builds = ref 0 in
  let build () =
    incr builds;
    ref 7
  in
  let a = Cache.find_or_build c "k" build in
  let b = Cache.find_or_build c "k" build in
  Alcotest.(check int) "built once" 1 !builds;
  Alcotest.(check bool) "second call returns the same physical value" true (a == b)

let test_errors_not_cached () =
  let c = Cache.create ~name:"test.raise" () in
  let attempts = ref 0 in
  let failing () =
    incr attempts;
    if !attempts = 1 then failwith "transient" else 99
  in
  (match Cache.find_or_build c "k" failing with
   | (_ : int) -> Alcotest.fail "first build should raise"
   | exception Failure _ -> ());
  Alcotest.(check int) "nothing cached after a raise" 0 (Cache.stats c).Cache.entries;
  Alcotest.(check int) "retry rebuilds and caches" 99 (Cache.find_or_build c "k" failing);
  Alcotest.(check int) "two attempts" 2 !attempts

(* ----- persistence via the expression codec ----- *)

let temp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpan_cache_test_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let stopwait_sym () =
  match Tpan.Analysis.load (Tpan.Analysis.Builtin "stopwait-sym") with
  | Ok tpn -> tpn
  | Error e -> Alcotest.failf "load stopwait-sym: %s" (Tpan.Error.to_string e)

let closed_form_fresh tpn =
  let g = SG.build tpn in
  let res = M.Symbolic.analyze g in
  M.Symbolic.throughput res g "t7"

let point =
  [
    ("E(t3)", Q.of_int 250);
    ("F(t1)", Q.one);
    ("F(t2)", Q.one);
    ("F(t3)", Q.one);
    ("F(t4)", Q.of_decimal_string "106.7");
    ("F(t5)", Q.of_decimal_string "106.7");
    ("F(t6)", Q.of_decimal_string "13.5");
    ("F(t7)", Q.of_decimal_string "13.5");
    ("F(t8)", Q.of_decimal_string "106.7");
    ("F(t9)", Q.of_decimal_string "106.7");
    ("f(t4)", Q.of_decimal_string "0.05");
    ("f(t5)", Q.of_decimal_string "0.95");
    ("f(t8)", Q.of_decimal_string "0.95");
    ("f(t9)", Q.of_decimal_string "0.05");
  ]

let test_codec_round_trip () =
  let thr = closed_form_fresh (stopwait_sym ()) in
  match Codec.ratfun_of_json (Codec.ratfun_to_json thr) with
  | None -> Alcotest.fail "closed form does not decode"
  | Some back ->
    Alcotest.(check bool) "decoded expression is equal" true (Rf.equal thr back);
    Alcotest.(check string) "evaluates identically at the paper's point"
      (Q.to_string (M.Symbolic.eval_at thr point))
      (Q.to_string (M.Symbolic.eval_at back point))

let test_persistence_round_trip () =
  let dir = temp_dir () in
  let mk () =
    Cache.create ~name:"test.persist" ~persist:dir ~encode:Codec.ratfun_to_json
      ~decode:Codec.ratfun_of_json ()
  in
  let thr = closed_form_fresh (stopwait_sym ()) in
  let c1 = mk () in
  Cache.put c1 "thr" thr;
  (* a second process (modelled by a second cache instance) replays the
     NDJSON and serves the decoded expression *)
  let c2 = mk () in
  (match Cache.find c2 "thr" with
   | None -> Alcotest.fail "persisted entry not reloaded"
   | Some back ->
     Alcotest.(check string) "reloaded closed form evaluates identically"
       (Q.to_string (M.Symbolic.eval_at thr point))
       (Q.to_string (M.Symbolic.eval_at back point)));
  (* last write wins across replays *)
  Cache.put c2 "thr" (Rf.of_int 3);
  let c3 = mk () in
  Alcotest.(check bool) "later write shadows the first" true
    (match Cache.find c3 "thr" with Some v -> Rf.equal v (Rf.of_int 3) | None -> false)

(* ----- the artifact layer on top ----- *)

let canonical name =
  match Tpan.Analysis.load (Tpan.Analysis.Builtin name) with
  | Ok tpn -> Tpan.Canonical.of_tpn tpn
  | Error e -> Alcotest.failf "load %s: %s" name (Tpan.Error.to_string e)

(* ----- the concrete-TRG codec ----- *)

let test_trg_codec_round_trip () =
  Tpan.Artifact.reset_caches ();
  let g =
    match Tpan.Artifact.concrete_trg (canonical "stopwait") with
    | Ok g -> g
    | Error e -> Alcotest.failf "concrete_trg: %s" (Tpan.Error.to_string e)
  in
  let doc = Codec.trg_to_json g in
  match Codec.trg_of_json doc with
  | None -> Alcotest.fail "concrete TRG does not decode"
  | Some back ->
    Alcotest.(check int) "same state count"
      (Array.length g.Tpan_core.Semantics.states)
      (Array.length back.Tpan_core.Semantics.states);
    (* the decoded graph re-encodes byte-identically: states, edges,
       markings, delays, probabilities and firing sets all survived *)
    Alcotest.(check string) "re-encoding is a fixed point" (J.to_string doc)
      (J.to_string (Codec.trg_to_json back))

let test_trg_codec_rejects_stale_lines () =
  Tpan.Artifact.reset_caches ();
  let doc =
    match Tpan.Artifact.concrete_trg (canonical "stopwait") with
    | Ok g -> Codec.trg_to_json g
    | Error e -> Alcotest.failf "concrete_trg: %s" (Tpan.Error.to_string e)
  in
  let fields = match doc with J.Obj fs -> fs | _ -> Alcotest.fail "not an object" in
  let replace k v = J.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields) in
  let drop k = J.Obj (List.filter (fun (k', _) -> k' <> k) fields) in
  (* a cache line written against a different net must not decode into
     a graph whose indices silently point at the wrong transitions *)
  let foreign_src =
    match Tpan.Analysis.load (Tpan.Analysis.Builtin "handshake") with
    | Ok tpn -> Tpan_dsl.Printer.to_string tpn
    | Error e -> Alcotest.failf "load handshake: %s" (Tpan.Error.to_string e)
  in
  Alcotest.(check bool) "foreign net source rejected" true
    (Codec.trg_of_json (replace "net" (J.Str foreign_src)) = None);
  Alcotest.(check bool) "missing states rejected" true
    (Codec.trg_of_json (drop "states") = None);
  Alcotest.(check bool) "empty states rejected" true
    (Codec.trg_of_json (replace "states" (J.List [])) = None);
  Alcotest.(check bool) "garbage rejected" true
    (Codec.trg_of_json (J.Str "nonsense") = None);
  (* per-state array shapes are validated against the reparsed net: a
     marking or clock vector of the wrong length must fail the decode
     (and force a rebuild), not surface as out-of-bounds later *)
  let truncate_in_first_state field = function
    | J.List (J.Obj st :: rest) ->
      J.List
        (J.Obj
           (List.map
              (fun (k, v) ->
                match (k = field, v) with
                | true, J.List (_ :: tl) -> (k, J.List tl)
                | _ -> (k, v))
              st)
        :: rest)
    | v -> v
  in
  let states = List.assoc "states" fields in
  Alcotest.(check bool) "truncated marking rejected" true
    (Codec.trg_of_json (replace "states" (truncate_in_first_state "m" states))
    = None);
  Alcotest.(check bool) "truncated clock vector rejected" true
    (Codec.trg_of_json (replace "states" (truncate_in_first_state "rft" states))
    = None)

(* ----- warm-start: persist everything, replay everything ----- *)

let test_warm_start_replays_all_kinds () =
  let dir = temp_dir () in
  Tpan.Artifact.configure ~persist_dir:dir ();
  let deliveries name =
    match Tpan.Models.find name with
    | Some m -> m.Tpan.Models.deliveries
    | None -> Alcotest.failf "no builtin %s" name
  in
  let warmed = Tpan.Artifact.warm [ "stopwait"; "stopwait-sym"; "no-such-net" ] in
  List.iter
    (fun (name, r) ->
      match (name, r) with
      | "no-such-net", Error Tpan.Error.(Invalid_input _) -> ()
      | "no-such-net", _ -> Alcotest.fail "unknown model must warm as an error"
      | _, Ok () -> ()
      | _, Error e -> Alcotest.failf "warm %s: %s" name (Tpan.Error.to_string e))
    warmed;
  (* an eval too, so every persistable kind has a line on disk *)
  let sym = canonical "stopwait-sym" in
  (match Tpan.Artifact.eval sym ~transition:"t7" ~point with
  | Ok v -> Alcotest.(check string) "warm eval value" "1805/486672" (Q.to_string v)
  | Error e -> Alcotest.failf "eval: %s" (Tpan.Error.to_string e));
  let kinds = [ "trg"; "report"; "closed_form"; "eval" ] in
  List.iter
    (fun k ->
      let f = Filename.concat dir (k ^ ".ndjson") in
      Alcotest.(check bool) (k ^ " cache file written") true
        (Sys.file_exists f && (Unix.stat f).Unix.st_size > 0))
    kinds;
  let misses k = Tpan_obs.Metrics.counter_value (Printf.sprintf "cache.%s.misses" k) in
  let before = List.map (fun k -> (k, misses k)) kinds in
  (* "restart": configure drops every cache, the next artifact call
     replays the NDJSON — and every kind must answer without a rebuild *)
  Tpan.Artifact.configure ~persist_dir:dir ();
  (match Tpan.Artifact.concrete_trg (canonical "stopwait") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replayed trg: %s" (Tpan.Error.to_string e));
  (match
     Tpan.Artifact.analysis ~throughputs:(deliveries "stopwait") (canonical "stopwait")
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replayed report: %s" (Tpan.Error.to_string e));
  List.iter
    (fun transition ->
      match Tpan.Artifact.closed_form sym ~transition with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "replayed closed form %s: %s" transition
          (Tpan.Error.to_string e))
    (deliveries "stopwait-sym");
  (match Tpan.Artifact.eval sym ~transition:"t7" ~point with
  | Ok v ->
    Alcotest.(check string) "replayed eval value" "1805/486672" (Q.to_string v)
  | Error e -> Alcotest.failf "replayed eval: %s" (Tpan.Error.to_string e));
  List.iter
    (fun (k, b) ->
      Alcotest.(check int)
        (Printf.sprintf "no %s rebuild after restart" k)
        b (misses k))
    before;
  (* back to memory-only caches for the suites that follow *)
  Tpan.Artifact.configure ();
  Tpan.Artifact.reset_caches ()

let test_artifact_parallel_sharing () =
  Tpan.Artifact.reset_caches ();
  let c = canonical "stopwait-sym" in
  let results =
    Tpan_par.Pool.map ~jobs:4
      (fun _ ->
        match Tpan.Artifact.symbolic c with
        | Ok v -> v
        | Error e -> Alcotest.failf "symbolic: %s" (Tpan.Error.to_string e))
      [ 1; 2; 3; 4 ]
  in
  match results with
  | first :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check bool)
          (Printf.sprintf "worker %d shares the cached artifact physically" (i + 1))
          true (r == first))
      rest
  | [] -> Alcotest.fail "no results"

let test_artifact_cached_vs_fresh () =
  Tpan.Artifact.reset_caches ();
  let tpn = stopwait_sym () in
  let c = Tpan.Canonical.of_tpn tpn in
  let fresh = closed_form_fresh tpn in
  (match Tpan.Artifact.closed_form c ~transition:"t7" with
   | Error e -> Alcotest.failf "closed_form: %s" (Tpan.Error.to_string e)
   | Ok cached ->
     Alcotest.(check bool) "cached = fresh derivation" true (Rf.equal fresh cached));
  match Tpan.Artifact.eval c ~transition:"t7" ~point with
  | Error e -> Alcotest.failf "eval: %s" (Tpan.Error.to_string e)
  | Ok v ->
    Alcotest.(check string) "exact value at the paper's point" "1805/486672"
      (Q.to_string v)

let test_artifact_eval_errors () =
  Tpan.Artifact.reset_caches ();
  let c = canonical "stopwait-sym" in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  (match Tpan.Artifact.eval c ~transition:"t7" ~point:[ ("E(t3)", Q.of_int 250) ] with
   | Error (Tpan.Error.Invalid_input msg) ->
     Alcotest.(check bool) "names a missing binding" true (contains msg "F(")
   | Error e -> Alcotest.failf "unexpected error: %s" (Tpan.Error.to_string e)
   | Ok _ -> Alcotest.fail "incomplete point must not evaluate");
  match Tpan.Artifact.closed_form c ~transition:"nope" with
  | Error (Tpan.Error.Invalid_input _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Tpan.Error.to_string e)
  | Ok _ -> Alcotest.fail "unknown transition must not derive"

let suite =
  ( "cache",
    [
      Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss;
      Alcotest.test_case "LRU eviction under byte budget" `Quick test_eviction_under_budget;
      Alcotest.test_case "find_or_build builds exactly once" `Quick
        test_find_or_build_exactly_once;
      Alcotest.test_case "errors are never cached" `Quick test_errors_not_cached;
      Alcotest.test_case "expression codec round-trip" `Quick test_codec_round_trip;
      Alcotest.test_case "persistence round-trip" `Quick test_persistence_round_trip;
      Alcotest.test_case "concrete-TRG codec round-trip" `Quick
        test_trg_codec_round_trip;
      Alcotest.test_case "TRG codec rejects stale lines" `Quick
        test_trg_codec_rejects_stale_lines;
      Alcotest.test_case "warm-start replays every artifact kind" `Quick
        test_warm_start_replays_all_kinds;
      Alcotest.test_case "-j4 workers share one artifact" `Quick
        test_artifact_parallel_sharing;
      Alcotest.test_case "cached = fresh closed form" `Quick test_artifact_cached_vs_fresh;
      Alcotest.test_case "eval error mapping" `Quick test_artifact_eval_errors;
    ] )
