(* The memoizing constraint oracle must agree, query for query, with the
   direct (uncached) Fourier-Motzkin procedures in Constraints — including
   on systems with equalities (exercising the substitution pass), on
   inconsistent systems (everything vacuously entailed) and on queries
   mentioning variables the system never constrains. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module O = Tpan_symbolic.Oracle

let qi = Q.of_int

let cmp =
  Alcotest.of_pp (fun fmt (c : C.comparison) ->
      Format.pp_print_string fmt
        (match c with C.Lt -> "Lt" | C.Eq -> "Eq" | C.Gt -> "Gt" | C.Unknown -> "Unknown"))

let e3 = Lin.var (Var.enabling "t3")
let f4 = Lin.var (Var.firing "t4")
let f5 = Lin.var (Var.firing "t5")
let f6 = Lin.var (Var.firing "t6")
let f7 = Lin.var (Var.firing "t7")
let f8 = Lin.var (Var.firing "t8")
let f9 = Lin.var (Var.firing "t9")

let sum = List.fold_left Lin.add Lin.zero

let paper =
  C.of_list
    [
      ("(1)", `Gt, e3, sum [ f5; f6; f8 ]);
      ("(3)", `Eq, f4, f5);
      ("(4)", `Eq, f9, f8);
    ]

let all_rels : C.relation list = [ `Ge; `Gt; `Eq; `Le; `Lt ]

(* Oracle and direct procedure must give identical verdicts on (a, b). *)
let agree ?(msg = "") cs o a b =
  let label s = if msg = "" then s else s ^ " (" ^ msg ^ ")" in
  Alcotest.check cmp
    (label (Format.asprintf "compare %a vs %a" Lin.pp a Lin.pp b))
    (C.compare_exprs cs a b) (O.compare_exprs o a b);
  List.iter
    (fun rel ->
      Alcotest.(check bool)
        (label (Format.asprintf "entails %a ? %a" Lin.pp a Lin.pp b))
        (C.entails cs rel a b) (O.entails o rel a b))
    all_rels

let test_paper_agreement () =
  let o = O.make paper in
  let exprs =
    [ e3; f4; f5; f6; f7; f8; f9; Lin.sub e3 f5; Lin.sub e3 (Lin.add f5 f6);
      Lin.const (qi 3); Lin.zero; Lin.add f4 f7; Lin.add f5 f7 ]
  in
  List.iter (fun a -> List.iter (fun b -> agree paper o a b) exprs) exprs;
  Alcotest.(check bool) "consistent" true (O.is_consistent o)

let test_equality_chain () =
  (* a = b, b = c: the substitution must compose transitively. *)
  let a = Lin.var (Var.firing "qa") in
  let b = Lin.var (Var.firing "qb") in
  let c = Lin.var (Var.firing "qc") in
  let cs = C.of_list [ ("e1", `Eq, a, b); ("e2", `Eq, b, c) ] in
  let o = O.make cs in
  Alcotest.check cmp "a = c through the chain" C.Eq (O.compare_exprs o a c);
  agree cs o a c;
  agree cs o (Lin.add a (Lin.const (qi 1))) c;
  (* the eliminated symbols still compare correctly against fresh ones *)
  agree ~msg:"fresh var" cs o (Lin.add a f7) (Lin.add c f7)

let test_equality_to_constant () =
  let x = Lin.var (Var.firing "qx") in
  let cs = C.of_list [ ("k", `Eq, x, Lin.const (qi 5)) ] in
  let o = O.make cs in
  Alcotest.check cmp "x = 5" C.Eq (O.compare_exprs o x (Lin.const (qi 5)));
  Alcotest.check cmp "x > 4" C.Gt (O.compare_exprs o x (Lin.const (qi 4)));
  agree cs o x (Lin.const (qi 5));
  agree cs o (Lin.scale (qi 2) x) (Lin.const (qi 10))

let test_scaled_equality () =
  (* 2x = 3y: no unit coefficient; substitution must still be exact. *)
  let x = Lin.var (Var.firing "qsx") in
  let y = Lin.var (Var.firing "qsy") in
  let cs = C.of_list [ ("s", `Eq, Lin.scale (qi 2) x, Lin.scale (qi 3) y) ] in
  let o = O.make cs in
  agree cs o (Lin.scale (qi 2) x) (Lin.scale (qi 3) y);
  agree cs o (Lin.scale (qi 4) x) (Lin.scale (qi 6) y);
  agree cs o x y

let test_inconsistent () =
  let x = Lin.var (Var.firing "qix") in
  let cs = C.of_list [ ("a", `Eq, x, Lin.const (qi 5)); ("b", `Eq, x, Lin.const (qi 6)) ] in
  let o = O.make cs in
  Alcotest.(check bool) "inconsistent detected" false (O.is_consistent o);
  Alcotest.(check bool) "direct agrees" false (C.is_consistent cs);
  (* everything is vacuously entailed, by both procedures *)
  agree cs o x (Lin.const (qi 7));
  agree cs o f5 f6;
  (* a forced-negative time symbol is also inconsistent (implicit >= 0) *)
  let neg = C.of_list [ ("n", `Eq, Lin.add x (Lin.const (qi 5)), Lin.zero) ] in
  let on = O.make neg in
  Alcotest.(check bool) "x = -5 inconsistent" false (O.is_consistent on);
  Alcotest.(check bool) "direct x = -5" false (C.is_consistent neg)

let test_witness_is_model () =
  let o = O.make paper in
  match O.witness o with
  | None -> Alcotest.fail "paper system should have a witness"
  | Some w ->
    let env v = match List.assoc_opt v w with Some q -> q | None -> Q.one in
    Alcotest.(check bool) "witness satisfies the system (equalities included)" true
      (C.satisfies env paper)

let test_memo_behaviour () =
  let o = O.make paper in
  let v1 = O.compare_exprs o f5 e3 in
  let s1 = (O.stats o).O.hits in
  let v2 = O.compare_exprs o f5 e3 in
  let s2 = (O.stats o).O.hits in
  Alcotest.check cmp "stable verdict" v1 v2;
  Alcotest.(check bool) "second query hits the memo" true (s2 > s1);
  let st = O.stats o in
  Alcotest.(check bool) "no more eliminations than the direct procedure" true
    (st.O.fm_runs <= st.O.baseline_fm_runs);
  O.reset_stats o;
  Alcotest.(check int) "reset" 0 (O.stats o).O.queries

let test_disabled_layers () =
  (* memo and witness off: still exact, just slower. *)
  let o = O.make ~memo:false ~witness:false paper in
  List.iter
    (fun (a, b) -> agree ~msg:"no memo/witness" paper o a b)
    [ (f5, e3); (f4, f5); (f6, Lin.sub e3 f5); (f7, f6) ];
  Alcotest.(check int) "nothing cached" 0 (O.stats o).O.hits

(* ---------------- randomized agreement ---------------- *)

let pool = [| Var.firing "q0"; Var.firing "q1"; Var.firing "q2"; Var.firing "q3" |]

let gen_expr =
  QCheck2.Gen.(
    let* cs = array_size (return 4) (int_range (-2) 2) in
    let* k = int_range (-4) 8 in
    return
      (Array.to_list (Array.mapi (fun i c -> (i, c)) cs)
      |> List.fold_left
           (fun acc (i, c) -> Lin.add acc (Lin.scale (qi c) (Lin.var pool.(i))))
           (Lin.const (qi k))))

let gen_rel = QCheck2.Gen.oneofl all_rels

let gen_system =
  QCheck2.Gen.(list_size (int_range 0 4) (triple gen_rel gen_expr gen_expr))

let build_system entries =
  List.fold_left (fun cs (rel, lhs, rhs) -> C.add rel lhs rhs cs) C.empty entries

let prop_agreement =
  QCheck2.Test.make ~name:"oracle = direct FM on random systems and queries" ~count:150
    QCheck2.Gen.(triple gen_system gen_expr gen_expr)
    (fun (entries, a, b) ->
      let cs = build_system entries in
      let o = O.make cs in
      C.compare_exprs cs a b = O.compare_exprs o a b
      && List.for_all (fun rel -> C.entails cs rel a b = O.entails o rel a b) all_rels
      (* the symmetric query exercises the sign-flipped memo path *)
      && C.compare_exprs cs b a = O.compare_exprs o b a)

let prop_equality_systems =
  (* All-equality systems stress the substitution pass hardest. *)
  QCheck2.Test.make ~name:"oracle = direct FM on equality-only systems" ~count:100
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 3) (pair gen_expr gen_expr))
        gen_expr gen_expr)
    (fun (eqs, a, b) ->
      let cs = build_system (List.map (fun (l, r) -> (`Eq, l, r)) eqs) in
      let o = O.make cs in
      C.is_consistent cs = O.is_consistent o
      && C.compare_exprs cs a b = O.compare_exprs o a b
      && List.for_all (fun rel -> C.entails cs rel a b = O.entails o rel a b) all_rels)

let prop_witness_models =
  QCheck2.Test.make ~name:"witness points are models of their system" ~count:100
    gen_system
    (fun entries ->
      let cs = build_system entries in
      let o = O.make cs in
      match O.witness o with
      | None -> not (C.is_consistent cs)
      | Some w ->
        let env v = match List.assoc_opt v w with Some q -> q | None -> Q.one in
        C.satisfies env cs)

let suite =
  ( "oracle",
    [
      Alcotest.test_case "paper system agreement" `Quick test_paper_agreement;
      Alcotest.test_case "equality chains" `Quick test_equality_chain;
      Alcotest.test_case "equality to a constant" `Quick test_equality_to_constant;
      Alcotest.test_case "scaled equality" `Quick test_scaled_equality;
      Alcotest.test_case "inconsistent systems" `Quick test_inconsistent;
      Alcotest.test_case "witness is a model" `Quick test_witness_is_model;
      Alcotest.test_case "memoization" `Quick test_memo_behaviour;
      Alcotest.test_case "layers can be disabled" `Quick test_disabled_layers;
      QCheck_alcotest.to_alcotest prop_agreement;
      QCheck_alcotest.to_alcotest prop_equality_systems;
      QCheck_alcotest.to_alcotest prop_witness_models;
    ] )
