(* Unit tests for the run ledger (append/load NDJSON round-trip, torn-line
   tolerance) and the bench-diff regression comparator (thresholds, noise
   floors, missing figures). *)

module Ledger = Tpan_obs.Ledger
module BD = Tpan_obs.Bench_diff
module J = Tpan_obs.Jsonv

let fresh_dir () =
  let d = Filename.temp_file "tpan_ledger" "" in
  Sys.remove d;
  (* Ledger.append creates it *)
  d

let mk ?(subcommand = "analyze") ?(exit_code = 0) () =
  Ledger.make ~version:"1.1.0-test" ~timestamp:1754000000.25 ~subcommand
    ~argv:[ "tpan"; subcommand; "-m"; "stopwait" ]
    ~model:"stopwait"
    ~stages:[ { Ledger.stage = "concrete.build"; seconds = 0.125; count = 2 } ]
    ~metrics:(J.List [ J.Obj [ ("name", J.Str "x"); ("kind", J.Str "counter"); ("value", J.Int 7) ] ])
    ~report:(J.Obj [ ("states", J.Int 18) ])
    ~exit_code ~duration:0.5 ()

let test_roundtrip () =
  let dir = fresh_dir () in
  (match Ledger.append ~dir (mk ()) with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("append: " ^ m));
  (match Ledger.append ~dir (mk ~subcommand:"sweep" ~exit_code:3 ()) with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("second append: " ^ m));
  match Ledger.load ~dir () with
  | Error m -> Alcotest.fail ("load: " ^ m)
  | Ok [ a; b ] ->
    Alcotest.(check int) "schema stamped" Ledger.schema_version a.Ledger.schema;
    Alcotest.(check string) "version survives" "1.1.0-test" a.Ledger.version;
    Alcotest.(check string) "subcommand order preserved" "analyze" a.Ledger.subcommand;
    Alcotest.(check string) "second record" "sweep" b.Ledger.subcommand;
    Alcotest.(check int) "exit code survives" 3 b.Ledger.exit_code;
    Alcotest.(check (list string)) "argv survives"
      [ "tpan"; "analyze"; "-m"; "stopwait" ]
      a.Ledger.argv;
    Alcotest.(check (option string)) "model survives" (Some "stopwait") a.Ledger.model;
    (match a.Ledger.stages with
     | [ s ] ->
       Alcotest.(check string) "stage name" "concrete.build" s.Ledger.stage;
       Alcotest.(check int) "stage count" 2 s.Ledger.count;
       Alcotest.(check (float 1e-9)) "stage seconds" 0.125 s.Ledger.seconds
     | _ -> Alcotest.fail "expected one stage");
    Alcotest.(check (option int)) "report survives" (Some 18)
      (Option.bind
         (Option.bind a.Ledger.report (J.member "states"))
         J.to_int_opt)
  | Ok l -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length l))

let test_bad_lines_skipped () =
  let dir = fresh_dir () in
  (match Ledger.append ~dir (mk ()) with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let oc = open_out_gen [ Open_append ] 0o644 (Ledger.runs_file dir) in
  output_string oc "this is not json\n{\"schema\": \"wrong types\"}\n";
  close_out oc;
  (match Ledger.append ~dir (mk ~subcommand:"check" ()) with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (* a torn final line (no newline, interrupted write) must not poison the
     earlier history *)
  let oc = open_out_gen [ Open_append ] 0o644 (Ledger.runs_file dir) in
  output_string oc "{\"truncat";
  close_out oc;
  match Ledger.load ~dir () with
  | Ok records ->
    Alcotest.(check int) "torn and foreign lines are skipped" 2 (List.length records);
    Alcotest.(check (list string)) "good records in order" [ "analyze"; "check" ]
      (List.map (fun (r : Ledger.record) -> r.Ledger.subcommand) records)
  | Error m -> Alcotest.fail m

let test_load_absent () =
  match Ledger.load ~dir:"/nonexistent/tpan-ledger-dir" () with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "absent dir should load zero records"
  | Error m -> Alcotest.fail ("absent dir should be Ok []: " ^ m)

(* ---------------- bench-diff ---------------- *)

let fig ?(minor_words = 0.) name seconds major_words =
  { BD.name; seconds; major_words; minor_words }

let test_diff_detects_regression () =
  (* the acceptance scenario: a synthetic 2x slowdown must FAIL *)
  let baseline = [ fig "FIG4" 1.0 1e6; fig "THRPT" 0.5 5e5 ] in
  let current = [ fig "FIG4" 2.1 1.05e6; fig "THRPT" 0.51 5.1e5 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check bool) "worst is Fail" true (r.BD.worst = BD.Fail_v);
  let row = List.find (fun (x : BD.row) -> x.BD.name = "FIG4") r.BD.rows in
  Alcotest.(check bool) "slow figure flagged" true (row.BD.verdict = BD.Fail_v);
  Alcotest.(check (float 0.01)) "ratio computed" 2.1 row.BD.time_ratio;
  let ok = List.find (fun (x : BD.row) -> x.BD.name = "THRPT") r.BD.rows in
  Alcotest.(check bool) "steady figure passes" true (ok.BD.verdict = BD.Ok_v)

let test_diff_warn_band () =
  let baseline = [ fig "A" 1.0 1e6 ] in
  let current = [ fig "A" 1.5 1e6 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check bool) "1.5x lands in the warn band" true (r.BD.worst = BD.Warn_v);
  let r' = BD.compare_figures ~warn:1.6 ~baseline ~current () in
  Alcotest.(check bool) "custom warn threshold respected" true (r'.BD.worst = BD.Ok_v)

let test_diff_noise_floor () =
  (* microsecond figures can jitter 10x without meaning anything *)
  let baseline = [ fig "TINY" 0.0002 100.0 ] in
  let current = [ fig "TINY" 0.002 900.0 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check bool) "sub-floor figures never flag" true (r.BD.worst = BD.Ok_v)

let test_diff_gc_regression () =
  (* wall time steady but the major heap doubled: still a failure *)
  let baseline = [ fig "A" 1.0 1e6 ] in
  let current = [ fig "A" 1.0 2.5e6 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check bool) "major-words regression fails" true (r.BD.worst = BD.Fail_v)

let test_diff_minor_words_regression () =
  (* wall time and major heap steady but minor-heap churn tripled: the
     allocation gate must catch it (a hot path that lost its
     allocation-lean rewrite never promotes, so major words stay flat) *)
  let baseline = [ fig ~minor_words:1e8 "A" 1.0 1e6 ] in
  let current = [ fig ~minor_words:3e8 "A" 1.0 1e6 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check bool) "minor-words regression fails" true (r.BD.worst = BD.Fail_v);
  (* both below the minor noise floor: never flags *)
  let r' =
    BD.compare_figures
      ~baseline:[ fig ~minor_words:1e4 "A" 1.0 1e6 ]
      ~current:[ fig ~minor_words:9e5 "A" 1.0 1e6 ]
      ()
  in
  Alcotest.(check bool) "sub-floor minor words never flag" true (r'.BD.worst = BD.Ok_v)

let test_diff_missing_and_added () =
  let baseline = [ fig "A" 1.0 1e6; fig "GONE" 1.0 1e6 ] in
  let current = [ fig "A" 1.0 1e6; fig "NEW" 1.0 1e6 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check (list string)) "missing figure reported" [ "GONE" ] r.BD.missing;
  Alcotest.(check (list string)) "added figure reported" [ "NEW" ] r.BD.added;
  Alcotest.(check bool) "missing promotes to at least Warn" true (r.BD.worst <> BD.Ok_v)

let test_diff_disjoint_documents () =
  (* A baseline from a different figure set entirely (e.g. a renamed bench
     section) shares no rows; with nothing comparable there is no
     regression evidence, so the verdict must be Ok, with the divergence
     still fully reported via [missing]/[added]. *)
  let baseline = [ fig "OLD1" 1.0 1e6; fig "OLD2" 0.5 5e5 ] in
  let current = [ fig "NEW1" 9.0 9e6 ] in
  let r = BD.compare_figures ~baseline ~current () in
  Alcotest.(check (list string)) "rows empty" []
    (List.map (fun (x : BD.row) -> x.BD.name) r.BD.rows);
  Alcotest.(check (list string)) "missing lists baseline" [ "OLD1"; "OLD2" ] r.BD.missing;
  Alcotest.(check (list string)) "added lists current" [ "NEW1" ] r.BD.added;
  Alcotest.(check bool) "disjoint documents are Ok, not Warn" true (r.BD.worst = BD.Ok_v)

let test_figures_of_json () =
  let doc =
    "{\"figures\": [{\"name\": \"FIG1\", \"seconds\": 0.25, \"gc\": {\"major_words\": \
     12345.0, \"minor_words\": 1.0}}], \"checks\": {\"passed\": 1, \"failed\": 0}}"
  in
  match J.of_string doc with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match BD.figures_of_json j with
    | Error e -> Alcotest.fail e
    | Ok [ f ] ->
      Alcotest.(check string) "name" "FIG1" f.BD.name;
      Alcotest.(check (float 1e-9)) "seconds" 0.25 f.BD.seconds;
      Alcotest.(check (float 1e-9)) "major words from gc object" 12345.0 f.BD.major_words;
      Alcotest.(check (float 1e-9)) "minor words from gc object" 1.0 f.BD.minor_words
    | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 figure, got %d" (List.length l)))

let suite =
  ( "ledger",
    [
      Alcotest.test_case "append/load round-trip" `Quick test_roundtrip;
      Alcotest.test_case "bad lines skipped" `Quick test_bad_lines_skipped;
      Alcotest.test_case "absent ledger loads empty" `Quick test_load_absent;
      Alcotest.test_case "bench-diff flags 2x slowdown" `Quick test_diff_detects_regression;
      Alcotest.test_case "bench-diff warn band" `Quick test_diff_warn_band;
      Alcotest.test_case "bench-diff noise floor" `Quick test_diff_noise_floor;
      Alcotest.test_case "bench-diff GC regression" `Quick test_diff_gc_regression;
      Alcotest.test_case "bench-diff minor-words regression" `Quick
        test_diff_minor_words_regression;
      Alcotest.test_case "bench-diff missing/added figures" `Quick test_diff_missing_and_added;
      Alcotest.test_case "bench-diff disjoint documents" `Quick test_diff_disjoint_documents;
      Alcotest.test_case "figures_of_json" `Quick test_figures_of_json;
    ] )
