(* The analysis service, driven through [Serve.handle] — the exact
   request path the socket listener dispatches to (context minting,
   artifact cache, schema-2 envelopes, status mapping) without the
   socket. The end-to-end socket path is CI's tier-2 smoke test. *)

module Serve = Tpan_serve.Serve
module J = Tpan_obs.Jsonv

let handle ?(config = Serve.default_config) meth target body =
  Serve.handle config ~meth ~target ~body

let parse_body (r : Serve.response) =
  match J.of_string r.Serve.body with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e r.Serve.body

let field doc k =
  match J.member k doc with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" k

let eval_body =
  {|{"model":"stopwait-sym","transition":"t7","point":{
      "E(t3)":"250","F(t1)":"1","F(t2)":"1","F(t3)":"1",
      "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
      "F(t8)":"106.7","F(t9)":"106.7",
      "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}

let test_healthz_and_routing () =
  let r = handle "GET" "/healthz" "" in
  Alcotest.(check int) "healthz 200" 200 r.Serve.status;
  Alcotest.(check int) "unknown path 404" 404 (handle "GET" "/nope" "").Serve.status;
  Alcotest.(check int) "wrong method 405" 405 (handle "GET" "/eval" "").Serve.status;
  Alcotest.(check int) "bad JSON 400" 400 (handle "POST" "/eval" "not json").Serve.status;
  Alcotest.(check int) "missing net 400" 400 (handle "POST" "/eval" "{}").Serve.status;
  let r = handle "GET" "/metrics" "" in
  Alcotest.(check int) "metrics 200" 200 r.Serve.status

let test_analyze_envelope () =
  let r = handle "POST" "/analyze" {|{"model":"stopwait","throughputs":["t7"]}|} in
  Alcotest.(check int) "analyze 200" 200 r.Serve.status;
  let doc = parse_body r in
  Alcotest.(check bool) "schema 2" true (field doc "schema" = J.Int 2);
  Alcotest.(check bool) "kind analysis" true (field doc "kind" = J.Str "analysis");
  Alcotest.(check bool) "exit_code 0" true (field doc "exit_code" = J.Int 0);
  (match field doc "trace_id" with
   | J.Str id -> Alcotest.(check bool) "trace id non-empty" true (String.length id > 0)
   | _ -> Alcotest.fail "trace_id must be a string");
  (match field doc "net_hash" with
   | J.Str h -> Alcotest.(check int) "net hash is an MD5 hex digest" 32 (String.length h)
   | _ -> Alcotest.fail "net_hash must be a string");
  Alcotest.(check bool) "states" true (field doc "states" = J.Int 18);
  (* the rendered envelope round-trips through the Jsonv parser *)
  Alcotest.(check bool) "envelope round-trips" true
    (J.of_string (J.to_string doc) = Ok doc)

let test_eval_exactly_once () =
  Tpan.Artifact.reset_caches ();
  let before = Tpan_obs.Metrics.counter_value "cache.symbolic.misses" in
  let value = ref "" in
  for i = 1 to 1000 do
    let r = handle "POST" "/eval" eval_body in
    if r.Serve.status <> 200 then
      Alcotest.failf "request %d: status %d: %s" i r.Serve.status r.Serve.body;
    match field (parse_body r) "throughput" with
    | J.Str v ->
      if i = 1 then value := v
      else if v <> !value then Alcotest.failf "request %d: drifting value %s" i v
    | _ -> Alcotest.fail "throughput must be a rational string"
  done;
  Alcotest.(check string) "the paper's exact closed-form value" "1805/486672" !value;
  let after = Tpan_obs.Metrics.counter_value "cache.symbolic.misses" in
  Alcotest.(check int) "1000 /eval requests, exactly one symbolic build" 1
    (after - before)

let test_inline_net_shares_cache () =
  (* posting the builtin's source inline lands on the same canonical
     hash, so the two spellings share cache entries *)
  let r1 = handle "POST" "/analyze" {|{"model":"stopwait"}|} in
  let src =
    match Tpan.Analysis.load (Tpan.Analysis.Builtin "stopwait") with
    | Ok tpn -> Tpan_dsl.Printer.to_string tpn
    | Error e -> Alcotest.failf "load: %s" (Tpan.Error.to_string e)
  in
  let body = J.to_string (J.Obj [ ("net", J.Str src) ]) in
  let r2 = handle "POST" "/analyze" body in
  Alcotest.(check int) "inline net accepted" 200 r2.Serve.status;
  Alcotest.(check bool) "same net hash for model and inline source" true
    (field (parse_body r1) "net_hash" = field (parse_body r2) "net_hash")

let test_deadline_504 () =
  Tpan.Artifact.reset_caches ();
  let config = { Serve.default_config with Serve.deadline = Some 1e-9 } in
  let r =
    Serve.handle config ~meth:"POST" ~target:"/analyze" ~body:{|{"model":"stopwait"}|}
  in
  Alcotest.(check int) "expired budget answers 504" 504 r.Serve.status;
  let doc = parse_body r in
  Alcotest.(check bool) "exit-code 6 semantics in the envelope" true
    (field doc "exit_code" = J.Int 6);
  (* the aborted build poisoned nothing: a sane config succeeds *)
  Tpan.Artifact.reset_caches ();
  let r2 = handle "POST" "/analyze" {|{"model":"stopwait"}|} in
  Alcotest.(check int) "same net analyzes fine afterwards" 200 r2.Serve.status

let test_sweep_endpoint () =
  let body =
    {|{"model":"stopwait-sym","transitions":["t7"],
       "axes":["E(t3)=250..1000:4"],
       "bindings":{"F(t1)":"1","F(t2)":"1","F(t3)":"1",
         "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
         "F(t8)":"106.7","F(t9)":"106.7",
         "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}
  in
  let r = handle "POST" "/sweep" body in
  Alcotest.(check int) "sweep 200" 200 r.Serve.status;
  let doc = parse_body r in
  (match field doc "rows" with
   | J.List rows -> Alcotest.(check int) "4 grid rows" 4 (List.length rows)
   | _ -> Alcotest.fail "rows must be a list");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "first grid point carries the exact value" true
    (contains r.Serve.body "1805/486672")

let suite =
  ( "serve",
    [
      Alcotest.test_case "routing and status codes" `Quick test_healthz_and_routing;
      Alcotest.test_case "schema-2 envelope" `Quick test_analyze_envelope;
      Alcotest.test_case "1000 evals, one symbolic build" `Quick test_eval_exactly_once;
      Alcotest.test_case "inline net shares the cache" `Quick test_inline_net_shares_cache;
      Alcotest.test_case "deadline answers 504 / exit 6" `Quick test_deadline_504;
      Alcotest.test_case "sweep endpoint" `Quick test_sweep_endpoint;
    ] )
