(* The analysis service, driven through [Serve.handle] — the exact
   request path the socket listener dispatches to (context minting,
   artifact cache, schema-2 envelopes, status mapping) without the
   socket. The end-to-end socket path is CI's tier-2 smoke test. *)

module Serve = Tpan_serve.Serve
module J = Tpan_obs.Jsonv

let handle ?(config = Serve.default_config) meth target body =
  Serve.handle config ~meth ~target ~body

let parse_body (r : Serve.response) =
  match J.of_string r.Serve.body with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "response is not JSON (%s): %s" e r.Serve.body

let field doc k =
  match J.member k doc with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" k

let eval_body =
  {|{"model":"stopwait-sym","transition":"t7","point":{
      "E(t3)":"250","F(t1)":"1","F(t2)":"1","F(t3)":"1",
      "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
      "F(t8)":"106.7","F(t9)":"106.7",
      "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}

let test_healthz_and_routing () =
  let r = handle "GET" "/healthz" "" in
  Alcotest.(check int) "healthz 200" 200 r.Serve.status;
  Alcotest.(check int) "unknown path 404" 404 (handle "GET" "/nope" "").Serve.status;
  Alcotest.(check int) "wrong method 405" 405 (handle "GET" "/eval" "").Serve.status;
  Alcotest.(check int) "bad JSON 400" 400 (handle "POST" "/eval" "not json").Serve.status;
  Alcotest.(check int) "missing net 400" 400 (handle "POST" "/eval" "{}").Serve.status;
  let r = handle "GET" "/metrics" "" in
  Alcotest.(check int) "metrics 200" 200 r.Serve.status

let test_analyze_envelope () =
  let r = handle "POST" "/analyze" {|{"model":"stopwait","throughputs":["t7"]}|} in
  Alcotest.(check int) "analyze 200" 200 r.Serve.status;
  let doc = parse_body r in
  Alcotest.(check bool) "schema 2" true (field doc "schema" = J.Int 2);
  Alcotest.(check bool) "kind analysis" true (field doc "kind" = J.Str "analysis");
  Alcotest.(check bool) "exit_code 0" true (field doc "exit_code" = J.Int 0);
  (match field doc "trace_id" with
   | J.Str id -> Alcotest.(check bool) "trace id non-empty" true (String.length id > 0)
   | _ -> Alcotest.fail "trace_id must be a string");
  (match field doc "net_hash" with
   | J.Str h -> Alcotest.(check int) "net hash is an MD5 hex digest" 32 (String.length h)
   | _ -> Alcotest.fail "net_hash must be a string");
  Alcotest.(check bool) "states" true (field doc "states" = J.Int 18);
  (* the rendered envelope round-trips through the Jsonv parser *)
  Alcotest.(check bool) "envelope round-trips" true
    (J.of_string (J.to_string doc) = Ok doc)

let test_eval_exactly_once () =
  Tpan.Artifact.reset_caches ();
  let before = Tpan_obs.Metrics.counter_value "cache.symbolic.misses" in
  let value = ref "" in
  for i = 1 to 1000 do
    let r = handle "POST" "/eval" eval_body in
    if r.Serve.status <> 200 then
      Alcotest.failf "request %d: status %d: %s" i r.Serve.status r.Serve.body;
    match field (parse_body r) "throughput" with
    | J.Str v ->
      if i = 1 then value := v
      else if v <> !value then Alcotest.failf "request %d: drifting value %s" i v
    | _ -> Alcotest.fail "throughput must be a rational string"
  done;
  Alcotest.(check string) "the paper's exact closed-form value" "1805/486672" !value;
  let after = Tpan_obs.Metrics.counter_value "cache.symbolic.misses" in
  Alcotest.(check int) "1000 /eval requests, exactly one symbolic build" 1
    (after - before)

let test_inline_net_shares_cache () =
  (* posting the builtin's source inline lands on the same canonical
     hash, so the two spellings share cache entries *)
  let r1 = handle "POST" "/analyze" {|{"model":"stopwait"}|} in
  let src =
    match Tpan.Analysis.load (Tpan.Analysis.Builtin "stopwait") with
    | Ok tpn -> Tpan_dsl.Printer.to_string tpn
    | Error e -> Alcotest.failf "load: %s" (Tpan.Error.to_string e)
  in
  let body = J.to_string (J.Obj [ ("net", J.Str src) ]) in
  let r2 = handle "POST" "/analyze" body in
  Alcotest.(check int) "inline net accepted" 200 r2.Serve.status;
  Alcotest.(check bool) "same net hash for model and inline source" true
    (field (parse_body r1) "net_hash" = field (parse_body r2) "net_hash")

let test_deadline_504 () =
  Tpan.Artifact.reset_caches ();
  let config = { Serve.default_config with Serve.deadline = Some 1e-9 } in
  let r =
    Serve.handle config ~meth:"POST" ~target:"/analyze" ~body:{|{"model":"stopwait"}|}
  in
  Alcotest.(check int) "expired budget answers 504" 504 r.Serve.status;
  let doc = parse_body r in
  Alcotest.(check bool) "exit-code 6 semantics in the envelope" true
    (field doc "exit_code" = J.Int 6);
  (* the aborted build poisoned nothing: a sane config succeeds *)
  Tpan.Artifact.reset_caches ();
  let r2 = handle "POST" "/analyze" {|{"model":"stopwait"}|} in
  Alcotest.(check int) "same net analyzes fine afterwards" 200 r2.Serve.status

let test_sweep_endpoint () =
  let body =
    {|{"model":"stopwait-sym","transitions":["t7"],
       "axes":["E(t3)=250..1000:4"],
       "bindings":{"F(t1)":"1","F(t2)":"1","F(t3)":"1",
         "F(t4)":"106.7","F(t5)":"106.7","F(t6)":"13.5","F(t7)":"13.5",
         "F(t8)":"106.7","F(t9)":"106.7",
         "f(t4)":"0.05","f(t5)":"0.95","f(t8)":"0.95","f(t9)":"0.05"}}|}
  in
  let r = handle "POST" "/sweep" body in
  Alcotest.(check int) "sweep 200" 200 r.Serve.status;
  let doc = parse_body r in
  (match field doc "rows" with
   | J.List rows -> Alcotest.(check int) "4 grid rows" 4 (List.length rows)
   | _ -> Alcotest.fail "rows must be a list");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "first grid point carries the exact value" true
    (contains r.Serve.body "1805/486672")

(* ----- telemetry plane ----- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tmp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpan_serve_test_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let test_statusz () =
  let r = handle "GET" "/statusz" "" in
  Alcotest.(check int) "statusz 200" 200 r.Serve.status;
  let doc = parse_body r in
  Alcotest.(check bool) "schema 1" true (field doc "schema" = J.Int 1);
  Alcotest.(check bool) "service name" true (field doc "service" = J.Str "tpan-serve");
  (match field doc "version" with
  | J.Str v -> Alcotest.(check bool) "version non-empty" true (String.length v > 0)
  | _ -> Alcotest.fail "version must be a string");
  (match J.to_float_opt (field doc "uptime_s") with
  | Some u -> Alcotest.(check bool) "uptime non-negative" true (u >= 0.)
  | None -> Alcotest.fail "uptime_s must be a number");
  (match field doc "requests" with
  | J.Obj _ as reqs ->
    (match J.to_int_opt (field reqs "total") with
    | Some n -> Alcotest.(check bool) "total counts this request" true (n >= 1)
    | None -> Alcotest.fail "requests.total must be an int");
    (* the statusz request observes itself in flight *)
    Alcotest.(check bool) "statusz sees itself in flight" true
      (field reqs "inflight" = J.Int 1)
  | _ -> Alcotest.fail "requests must be an object");
  (match field doc "inflight" with
  | J.List [ self ] ->
    Alcotest.(check bool) "in-flight entry names the request" true
      (J.member "request" self = Some (J.Str "GET /statusz"));
    Alcotest.(check bool) "in-flight entry has a trace id" true
      (match J.member "trace_id" self with Some (J.Str t) -> t <> "" | _ -> false);
    Alcotest.(check bool) "in-flight entry has an age" true
      (match Option.bind (J.member "age_s" self) J.to_float_opt with
      | Some a -> a >= 0.
      | None -> false)
  | _ -> Alcotest.fail "exactly the statusz request should be in flight");
  (* /eval ran in earlier tests, so the artifact caches are live *)
  (match field doc "caches" with
  | J.List caches ->
    Alcotest.(check bool) "cache stats per artifact kind" true
      (List.exists (fun c -> J.member "kind" c = Some (J.Str "symbolic")) caches)
  | _ -> Alcotest.fail "caches must be a list");
  (match field doc "gc" with
  | J.Obj _ as gc ->
    Alcotest.(check bool) "gc heap words" true
      (match J.to_int_opt (field gc "heap_words") with Some n -> n > 0 | None -> false)
  | _ -> Alcotest.fail "gc must be an object");
  let r_html = handle "GET" "/statusz?format=html" "" in
  Alcotest.(check int) "statusz html 200" 200 r_html.Serve.status;
  Alcotest.(check bool) "html content type" true
    (contains r_html.Serve.content_type "text/html");
  Alcotest.(check bool) "html body" true (contains r_html.Serve.body "<table>")

let test_tracez_and_red_metrics () =
  let r = handle "POST" "/eval" eval_body in
  Alcotest.(check int) "eval 200" 200 r.Serve.status;
  let doc = parse_body (handle "GET" "/tracez" "") in
  (match field doc "methods" with
  | J.List methods ->
    let eval_m =
      List.find_opt (fun m -> J.member "name" m = Some (J.Str "POST /eval")) methods
    in
    (match eval_m with
    | None -> Alcotest.fail "tracez lacks POST /eval"
    | Some m -> (
      match field m "buckets" with
      | J.List buckets ->
        let seen =
          List.fold_left
            (fun acc b ->
              acc + match J.to_int_opt (field b "seen") with Some n -> n | None -> 0)
            0 buckets
        in
        Alcotest.(check bool) "tracez saw the eval requests" true (seen >= 1);
        (* retained entries carry resolvable trace ids *)
        let entries =
          List.concat_map
            (fun b ->
              match J.member "entries" b with Some (J.List es) -> es | _ -> [])
            buckets
        in
        Alcotest.(check bool) "entries retained" true (entries <> []);
        List.iter
          (fun e ->
            match J.member "trace_id" e with
            | Some (J.Str id) ->
              Alcotest.(check bool) "trace id non-empty" true (String.length id > 0)
            | _ -> Alcotest.fail "tracez entry lacks trace_id")
          entries
      | _ -> Alcotest.fail "buckets must be a list"))
  | _ -> Alcotest.fail "methods must be a list");
  (* the RED families carry the endpoint label *)
  let om = (handle "GET" "/metrics" "").Serve.body in
  Alcotest.(check bool) "labelled request counter" true
    (contains om "tpan_serve_endpoint_requests_total{endpoint=\"/eval\"}");
  Alcotest.(check bool) "duration histogram buckets" true
    (contains om "tpan_serve_request_duration_s_bucket{endpoint=\"/eval\",le=");
  (* unlabelled process-wide totals are still exported for old scrapes *)
  Alcotest.(check bool) "legacy total kept" true
    (contains om "tpan_serve_requests_total ");
  let r404 = handle "GET" "/definitely-not-a-route" "" in
  Alcotest.(check int) "404 for the error family" 404 r404.Serve.status;
  let om = (handle "GET" "/metrics" "").Serve.body in
  Alcotest.(check bool) "typed error counter, bounded endpoint label" true
    (contains om "tpan_serve_endpoint_errors_total{endpoint=\"other\",type=\"http\"}")

let test_access_log_slow_dump_ledger () =
  let dir = tmp_dir () in
  let access = Filename.concat dir "access.ndjson" in
  let flight = Filename.concat dir "flight.ndjson" in
  let config =
    {
      Serve.default_config with
      Serve.access_log = Some access;
      slow_ms = Some 0.0 (* every request is "slow": deterministic capture *);
      flight_path = Some flight;
      ledger_dir = Some dir;
    }
  in
  let r = Serve.handle config ~meth:"POST" ~target:"/eval" ~body:eval_body in
  Alcotest.(check int) "eval 200" 200 r.Serve.status;
  let doc = parse_body r in
  let tid = match field doc "trace_id" with J.Str t -> t | _ -> Alcotest.fail "trace_id" in
  let net_hash =
    match field doc "net_hash" with J.Str h -> h | _ -> Alcotest.fail "net_hash"
  in
  (* access log: one NDJSON record, correlating trace id, endpoint,
     status, exit code, net hash *)
  let ic = open_in access in
  let line = input_line ic in
  close_in ic;
  let rec_doc =
    match J.of_string line with Ok d -> d | Error e -> Alcotest.failf "access: %s" e
  in
  Alcotest.(check bool) "access trace_id" true (J.member "trace_id" rec_doc = Some (J.Str tid));
  let fields = field rec_doc "fields" in
  Alcotest.(check bool) "access method" true (field fields "method" = J.Str "POST");
  Alcotest.(check bool) "access endpoint" true (field fields "endpoint" = J.Str "/eval");
  Alcotest.(check bool) "access status" true (field fields "status" = J.Int 200);
  Alcotest.(check bool) "access exit_code" true (field fields "exit_code" = J.Int 0);
  Alcotest.(check bool) "access net_hash" true (field fields "net_hash" = J.Str net_hash);
  Alcotest.(check bool) "access latency" true
    (match J.to_float_opt (field fields "latency_s") with Some l -> l >= 0. | None -> false);
  (* the slow request left a flight-recorder frame scoped to its trace *)
  (match Tpan_obs.Dump.load flight with
  | Ok (_ :: _ as frames) ->
    Alcotest.(check bool) "dump frame carries the trace id" true
      (List.exists (fun f -> f.Tpan_obs.Dump.trace_id = Some tid) frames)
  | Ok [] -> Alcotest.fail "no flight frames captured"
  | Error e -> Alcotest.failf "flight load: %s" e);
  (* one ledger row per request, grouped under serve:<endpoint> *)
  (match Tpan_obs.Ledger.load ~dir () with
  | Ok rows ->
    let serve_rows =
      List.filter (fun r -> r.Tpan_obs.Ledger.subcommand = "serve:/eval") rows
    in
    Alcotest.(check int) "one serve row" 1 (List.length serve_rows);
    let row = List.hd serve_rows in
    Alcotest.(check bool) "ledger trace id" true
      (row.Tpan_obs.Ledger.trace_id = Some tid);
    Alcotest.(check bool) "ledger exit code" true (row.Tpan_obs.Ledger.exit_code = 0);
    (* runs --stats groups these by endpoint *)
    let stats = Tpan_obs.Ledger.stats rows in
    Alcotest.(check bool) "stats has serve:/eval" true
      (List.exists (fun (s : Tpan_obs.Ledger.stats_row) -> s.key = "serve:/eval")
         stats.Tpan_obs.Ledger.commands)
  | Error e -> Alcotest.failf "ledger load: %s" e)

(* 4 worker lanes hammer /eval while another lane scrapes /metrics and
   /statusz: scrapes stay parseable (no torn lines), labels stable, and
   after the run every exemplar on the /eval duration buckets resolves
   to a trace id recorded in the access log. *)
let test_concurrent_scrapes () =
  let dir = tmp_dir () in
  let access = Filename.concat dir "access.ndjson" in
  let config = { Serve.default_config with Serve.access_log = Some access } in
  Tpan_obs.Metrics.Histogram.reset
    (Tpan_obs.Metrics.histogram_with "serve.request_duration_s"
       [ ("endpoint", "/eval") ]);
  let scrape_ok = ref true in
  let work = function
    | `Eval ->
      for _ = 1 to 25 do
        let r = Serve.handle config ~meth:"POST" ~target:"/eval" ~body:eval_body in
        if r.Serve.status <> 200 then failwith ("eval status " ^ string_of_int r.Serve.status)
      done
    | `Scrape ->
      for _ = 1 to 25 do
        let m = Serve.handle config ~meth:"GET" ~target:"/metrics" ~body:"" in
        let lines = String.split_on_char '\n' m.Serve.body in
        if
          not
            (List.for_all
               (fun l ->
                 l = "" || l = "# EOF"
                 || String.length l > 2
                    && (contains l " " || String.sub l 0 2 = "# "))
               lines
            && List.mem "# EOF" lines)
        then scrape_ok := false;
        let s = Serve.handle config ~meth:"GET" ~target:"/statusz" ~body:"" in
        (match J.of_string s.Serve.body with
        | Ok _ -> ()
        | Error _ -> scrape_ok := false);
        let t = Serve.handle config ~meth:"GET" ~target:"/tracez" ~body:"" in
        (match J.of_string t.Serve.body with
        | Ok _ -> ()
        | Error _ -> scrape_ok := false)
      done
  in
  let results =
    Tpan_par.Pool.try_map ~jobs:5 work [ `Eval; `Eval; `Eval; `Eval; `Scrape ]
  in
  List.iter
    (function
      | Ok () -> ()
      | Error (e : Tpan_par.Pool.error) -> Alcotest.failf "lane failed: %s" e.message)
    results;
  Alcotest.(check bool) "all scrapes parsed cleanly" true !scrape_ok;
  (* exemplars resolve to real requests in the access log *)
  let log =
    let ic = open_in access in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let om = (Serve.handle config ~meth:"GET" ~target:"/metrics" ~body:"").Serve.body in
  let exemplar_tids =
    List.filter_map
      (fun l ->
        if
          contains l "tpan_serve_request_duration_s_bucket{endpoint=\"/eval\""
          && contains l "# {trace_id=\""
        then begin
          let marker = "# {trace_id=\"" in
          let rec find i =
            if i + String.length marker > String.length l then None
            else if String.sub l i (String.length marker) = marker then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> None
          | Some i -> (
            let start = i + String.length marker in
            match String.index_from_opt l start '"' with
            | Some j -> Some (String.sub l start (j - start))
            | None -> None)
        end
        else None)
      (String.split_on_char '\n' om)
  in
  Alcotest.(check bool) "at least one exemplar on the /eval buckets" true
    (exemplar_tids <> []);
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "exemplar %s resolves to an access-log request" tid)
        true
        (contains log (Printf.sprintf "\"trace_id\":\"%s\"" tid)))
    exemplar_tids

let suite =
  ( "serve",
    [
      Alcotest.test_case "routing and status codes" `Quick test_healthz_and_routing;
      Alcotest.test_case "schema-2 envelope" `Quick test_analyze_envelope;
      Alcotest.test_case "1000 evals, one symbolic build" `Quick test_eval_exactly_once;
      Alcotest.test_case "inline net shares the cache" `Quick test_inline_net_shares_cache;
      Alcotest.test_case "deadline answers 504 / exit 6" `Quick test_deadline_504;
      Alcotest.test_case "sweep endpoint" `Quick test_sweep_endpoint;
      Alcotest.test_case "statusz introspection" `Quick test_statusz;
      Alcotest.test_case "tracez and RED metrics" `Quick test_tracez_and_red_metrics;
      Alcotest.test_case "access log, slow dump, ledger rows" `Quick
        test_access_log_slow_dump_ledger;
      Alcotest.test_case "concurrent scrapes under load" `Quick test_concurrent_scrapes;
    ] )
