(* End-to-end tests of the tpan binary: run real subcommands on real .tpn
   files and check the headline numbers appear. The test executable runs
   from _build/default/test, with the binary and example nets declared as
   dune deps. *)

let tpan = "../bin/tpan.exe"
let stopwait_tpn = "../examples/nets/stopwait.tpn"
let symbolic_tpn = "../examples/nets/stopwait_symbolic.tpn"

let run_capture args =
  let tmp = Filename.temp_file "tpan_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" tpan args tmp in
  let rc = Sys.command cmd in
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (rc, out)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_run name args needles =
  let rc, out = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") 0 rc;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "%s: output mentions %S" name needle) true
        (contains out needle))
    needles

let test_analyze_file () =
  check_run "analyze" (Printf.sprintf "analyze %s -t t7" stopwait_tpn)
    [ "18 states"; "decision nodes: 3, 11"; "0.002851"; "350.649307" ]

let test_symbolic_file () =
  check_run "symbolic" (Printf.sprintf "symbolic %s -t t7" symbolic_tpn)
    [ "18 states"; "constraints used to order minima"; "throughput(t7)"; "f(t8)" ]

let test_builtin_models () =
  check_run "show" "show -m abp" [ "net abp"; "conflict set" ];
  check_run "latency" "latency -m stopwait -e t6" [ "173.936842" ];
  check_run "check" "check -m stopwait" [ "consistent"; "safe (1-bounded)" ];
  check_run "report" "report -m channel" [ "structure"; "steady state" ]

let test_simulate () =
  check_run "simulate" "simulate -m stopwait -t t7 --horizon 100000 --seed 4"
    [ "throughput(t7)" ]

let test_dot () =
  check_run "dot net" (Printf.sprintf "dot %s -g net" stopwait_tpn) [ "digraph" ];
  check_run "dot dg" "dot -m stopwait -g dg" [ "diamond"; "0.05 / 1002" ]

let test_sweep () =
  (* symbolic path: closed form derived once, evaluated on the grid *)
  check_run "sweep symbolic"
    ("sweep -m stopwait-sym -t t7 --vary 'E(t3)=250..1000:4' "
    ^ "-p 'F(t1)=1' -p 'F(t2)=1' -p 'F(t3)=1' -p 'F(t4)=106.7' -p 'F(t5)=106.7' "
    ^ "-p 'F(t6)=13.5' -p 'F(t7)=13.5' -p 'F(t8)=106.7' -p 'F(t9)=106.7' "
    ^ "-p 'f(t4)=0.05' -p 'f(t5)=0.95' -p 'f(t8)=0.95' -p 'f(t9)=0.05'")
    [ "E(t3)"; "0.003708"; "0.002851" ];
  (* concrete path: per-point rebuild + full analysis on the pool; the
     symbolic closed form above must agree point for point *)
  check_run "sweep concrete"
    "sweep -m stopwait --vary timeout=250..1000:4 -j 2 --json"
    [ "\"schema\": 2"; "\"exit_code\": 0"; "0.003708"; "0.002851" ]

let test_json_schema () =
  (* schema 2 (default): one envelope around every machine document *)
  let rc, out = run_capture "analyze -m stopwait -t t7 --json" in
  Alcotest.(check int) "analyze --json exits 0" 0 rc;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "schema-2 doc has %S" needle) true
        (contains out needle))
    [ "\"schema\": 2"; "\"trace_id\""; "\"net_hash\""; "\"exit_code\": 0"; "0.002851" ];
  (match Tpan_obs.Jsonv.of_string out with
   | Ok doc ->
     Alcotest.(check bool) "net_hash is a string" true
       (match Tpan_obs.Jsonv.member "net_hash" doc with
        | Some (Tpan_obs.Jsonv.Str h) -> String.length h = 32
        | _ -> false)
   | Error e -> Alcotest.failf "schema-2 output does not parse: %s" e);
  (* --json-schema 1 reproduces the historical document *)
  let rc1, out1 = run_capture "analyze -m stopwait -t t7 --json --json-schema 1" in
  Alcotest.(check int) "--json-schema 1 exits 0" 0 rc1;
  Alcotest.(check bool) "legacy schema stamp" true (contains out1 "\"schema\": 1");
  Alcotest.(check bool) "legacy doc has no envelope" false (contains out1 "net_hash");
  (* same envelope over simulation summaries *)
  let rc2, out2 =
    run_capture "simulate -m stopwait -t t7 --horizon 10000 --seed 4 --json"
  in
  Alcotest.(check int) "simulate --json exits 0" 0 rc2;
  Alcotest.(check bool) "simulation envelope" true
    (contains out2 "\"kind\": \"simulation\"" && contains out2 "\"schema\": 2")

let test_sweep_determinism () =
  let args j =
    Printf.sprintf "sweep -m stopwait --vary timeout=80..200:8 -j %d --json" j
  in
  let rc1, out1 = run_capture (args 1) in
  let rc4, out4 = run_capture (args 4) in
  Alcotest.(check int) "sweep -j1 exits 0" 0 rc1;
  Alcotest.(check int) "sweep -j4 exits 0" 0 rc4;
  (* each process mints its own trace id; everything else is deterministic *)
  let strip_trace out =
    String.split_on_char '\n' out
    |> List.filter (fun line -> not (contains line "\"trace_id\""))
    |> String.concat "\n"
  in
  Alcotest.(check string) "sweep --json is byte-identical for -j1 and -j4"
    (strip_trace out1) (strip_trace out4)

let test_profile () =
  check_run "profile" (Printf.sprintf "profile %s" stopwait_tpn)
    [
      "profile";
      "TRG build";
      "oracle queries";
      "FM eliminations";
      "decision-graph collapse";
      "rate solve";
      "span tree";
    ];
  check_run "profile symbolic" (Printf.sprintf "profile %s" symbolic_tpn)
    [ "symbolic pipeline"; "TRG build"; "oracle queries" ]

let test_trace_flag () =
  let trace = Filename.temp_file "tpan_cli" ".ndjson" in
  let rc, _ = run_capture (Printf.sprintf "analyze %s -t t7 --trace %s" stopwait_tpn trace) in
  Alcotest.(check int) "analyze --trace exits 0" 0 rc;
  let ic = open_in trace in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove trace;
  Alcotest.(check bool) "trace file has events" true (List.length !lines > 0);
  List.iter
    (fun line ->
      match Tpan_obs.Trace.parse_line line with
      | Some e -> Alcotest.(check bool) "event has a name" true (String.length e.name > 0)
      | None -> Alcotest.fail (Printf.sprintf "unparseable trace line: %s" line))
    !lines;
  let names =
    List.filter_map
      (fun l -> Option.map (fun (e : Tpan_obs.Trace.event) -> e.name) (Tpan_obs.Trace.parse_line l))
      !lines
  in
  Alcotest.(check bool) "trace covers the TRG build" true (List.mem "concrete.build" names)

let test_metrics_flag () =
  check_run "metrics" (Printf.sprintf "analyze %s -t t7 --metrics" stopwait_tpn)
    [ "metric"; "core.semantics.states_interned"; "perf.rates.solves" ]

let test_version_cmd () =
  let rc, out = run_capture "version" in
  Alcotest.(check int) "version exits 0" 0 rc;
  Alcotest.(check string) "prints the facade version" Tpan.Version.string (String.trim out)

let test_metrics_cmd () =
  let rc, out = run_capture "metrics -m stopwait --metrics-format=openmetrics" in
  Alcotest.(check int) "metrics exits 0" 0 rc;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "openmetrics mentions %S" needle) true
        (contains out needle))
    [
      "# TYPE tpan_core_semantics_states_interned counter";
      "tpan_core_semantics_states_interned_total 18";
      "# EOF";
    ];
  (* counters must carry the _total suffix; the raw dotted names must not
     leak into the exposition *)
  Alcotest.(check bool) "names are sanitized" false (contains out "core.semantics");
  let rc_j, out_j = run_capture "metrics -m stopwait --metrics-format=json" in
  Alcotest.(check int) "metrics --metrics-format=json exits 0" 0 rc_j;
  Alcotest.(check bool) "json format has kind fields" true
    (contains out_j "\"kind\": \"counter\"")

let test_ledger_and_runs () =
  let dir = Filename.temp_file "tpan_cli_ledger" "" in
  Sys.remove dir;
  let rc, _ =
    run_capture (Printf.sprintf "analyze -m stopwait -t t7 --ledger-dir %s" dir)
  in
  Alcotest.(check int) "analyze --ledger-dir exits 0" 0 rc;
  let rc2, _ = run_capture (Printf.sprintf "sweep -m stopwait --vary timeout=250..500:2 --ledger-dir %s" dir) in
  Alcotest.(check int) "sweep --ledger-dir exits 0" 0 rc2;
  let rc3, out = run_capture (Printf.sprintf "runs --dir %s" dir) in
  Alcotest.(check int) "runs exits 0" 0 rc3;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "runs table mentions %S" needle) true
        (contains out needle))
    [ "subcommand"; "analyze"; "sweep"; "stopwait"; "2 of 2 run(s)" ];
  let rc4, out4 = run_capture (Printf.sprintf "runs --dir %s --last 1 --json" dir) in
  Alcotest.(check int) "runs --json exits 0" 0 rc4;
  Alcotest.(check bool) "--last 1 keeps the newest record" true
    (contains out4 "\"subcommand\": \"sweep\"" && not (contains out4 "\"analyze\""));
  Alcotest.(check bool) "records carry stage timings" true
    (contains out4 "\"stage\": \"concrete.build\"");
  Alcotest.(check bool) "records carry the build version" true
    (contains out4 (Printf.sprintf "\"version\": \"%s\"" Tpan.Version.string))

let write_bench_json path figures =
  let oc = open_out path in
  output_string oc "{\"figures\": [";
  List.iteri
    (fun i (name, seconds, words) ->
      if i > 0 then output_string oc ", ";
      Printf.fprintf oc
        "{\"name\": \"%s\", \"seconds\": %f, \"gc\": {\"major_words\": %f}}" name seconds
        words)
    figures;
  output_string oc "]}";
  close_out oc

let test_bench_diff_cmd () =
  let base = Filename.temp_file "tpan_bench_base" ".json" in
  let cur = Filename.temp_file "tpan_bench_cur" ".json" in
  write_bench_json base [ ("FIG4", 1.0, 1e6); ("THRPT", 0.5, 5e5) ];
  (* identical numbers: clean exit *)
  write_bench_json cur [ ("FIG4", 1.0, 1e6); ("THRPT", 0.5, 5e5) ];
  let rc, out = run_capture (Printf.sprintf "bench-diff %s %s" base cur) in
  Alcotest.(check int) "no regression exits 0" 0 rc;
  Alcotest.(check bool) "reports ok" true (contains out "ok");
  (* synthetic 2x slowdown: non-zero exit, FAIL in the report *)
  write_bench_json cur [ ("FIG4", 2.2, 1e6); ("THRPT", 0.5, 5e5) ];
  let rc2, out2 = run_capture (Printf.sprintf "bench-diff %s %s" base cur) in
  Alcotest.(check bool) "2x slowdown exits non-zero" true (rc2 <> 0);
  Alcotest.(check bool) "report says FAIL" true (contains out2 "FAIL");
  (* --warn-only reports but never gates *)
  let rc3, _ = run_capture (Printf.sprintf "bench-diff --warn-only %s %s" base cur) in
  Alcotest.(check int) "--warn-only exits 0 despite the failure" 0 rc3;
  let rc4, out4 = run_capture (Printf.sprintf "bench-diff --json %s %s" base cur) in
  Alcotest.(check bool) "--json also gates" true (rc4 <> 0);
  Alcotest.(check bool) "--json carries verdicts" true (contains out4 "\"verdict\"");
  Sys.remove base;
  Sys.remove cur

let test_multilane_trace () =
  (* the acceptance scenario: a parallel sweep's merged trace must carry
     spans from more than one domain lane *)
  let trace = Filename.temp_file "tpan_cli" ".ndjson" in
  let rc, _ =
    run_capture
      (Printf.sprintf "sweep -m stopwait --vary timeout=80..200:8 -j 4 --trace %s" trace)
  in
  Alcotest.(check int) "sweep -j4 --trace exits 0" 0 rc;
  let ic = open_in trace in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove trace;
  let events = List.filter_map Tpan_obs.Trace.parse_line !lines in
  Alcotest.(check bool) "every line parses" true
    (List.length events = List.length !lines);
  let lanes =
    List.sort_uniq compare (List.map (fun (e : Tpan_obs.Trace.event) -> e.lane) events)
  in
  Alcotest.(check bool)
    (Printf.sprintf "spans from more than one lane (got %d)" (List.length lanes))
    true
    (List.length lanes > 1);
  Alcotest.(check bool) "worker spans mark the lanes" true
    (List.exists
       (fun (e : Tpan_obs.Trace.event) -> e.name = "pool.worker" && e.lane > 0)
       events);
  Alcotest.(check bool) "sweep points are traced" true
    (List.exists (fun (e : Tpan_obs.Trace.event) -> e.name = "sweep.point") events)

let test_deadline_flag () =
  let dir = Filename.temp_file "tpan_cli_flight" "" in
  Sys.remove dir;
  let dump = Filename.temp_file "tpan_cli_flight" ".ndjson" in
  Sys.remove dump;
  (* an analysis that would run for minutes: 1e8 time units of simulated
     protocol, replicated — the 200ms deadline must abort it with the
     dedicated exit code, a partial-progress report, and a dump *)
  let rc, out =
    run_capture
      (Printf.sprintf
         "simulate -m stopwait -t t7 --horizon 100000000 --runs 8 --deadline 200ms \
          --dump %s --ledger-dir %s"
         dump dir)
  in
  Alcotest.(check int) "deadline abort exits 6" 6 rc;
  Alcotest.(check bool) "reports the abort" true (contains out "analysis aborted");
  Alcotest.(check bool) "reports partial progress" true (contains out "partial progress");
  Alcotest.(check bool) "counts simulator steps" true (contains out "sim steps");
  (* the dump written at cancellation time must parse and carry the
     cancelling domain's live span stack *)
  (match Tpan_obs.Dump.load dump with
  | Ok frames ->
    let dumps = List.filter (fun f -> f.Tpan_obs.Dump.kind = "dump") frames in
    Alcotest.(check bool) "dump frame recorded" true (dumps <> []);
    List.iter
      (fun f ->
        Alcotest.(check bool) "dump names the deadline" true
          (match f.Tpan_obs.Dump.reason with
          | Some r -> r = "deadline of 0.2s exceeded"
          | None -> false);
        Alcotest.(check bool) "dump has a span stack" true
          (List.exists (fun (_, stack) -> List.mem "sim.run" stack) f.Tpan_obs.Dump.spans);
        Alcotest.(check bool) "dump has a trace id" true (f.Tpan_obs.Dump.trace_id <> None))
      dumps
  | Error msg -> Alcotest.fail msg);
  (* the ledger row for the aborted run records exit code 6 and the
     request's trace id *)
  let rc2, out2 = run_capture (Printf.sprintf "runs --dir %s --json" dir) in
  Alcotest.(check int) "runs --json exits 0" 0 rc2;
  Alcotest.(check bool) "ledger records exit code 6" true
    (contains out2 "\"exit_code\": 6");
  Alcotest.(check bool) "ledger records the trace id" true
    (contains out2 "\"trace_id\"");
  (* [tpan top] renders the dump *)
  let rc3, out3 = run_capture (Printf.sprintf "top %s" dump) in
  Alcotest.(check int) "top exits 0" 0 rc3;
  Alcotest.(check bool) "top shows the trigger" true (contains out3 "deadline");
  Alcotest.(check bool) "top shows the lane" true (contains out3 "lane 0");
  Sys.remove dump

let test_runs_stats () =
  let dir = Filename.temp_file "tpan_cli_stats" "" in
  Sys.remove dir;
  let rc, _ =
    run_capture (Printf.sprintf "analyze -m stopwait -t t7 --ledger-dir %s" dir)
  in
  Alcotest.(check int) "analyze exits 0" 0 rc;
  let rc2, _ =
    run_capture (Printf.sprintf "analyze -m stopwait -t t7 --ledger-dir %s" dir)
  in
  Alcotest.(check int) "second analyze exits 0" 0 rc2;
  let rc3, out = run_capture (Printf.sprintf "runs --stats --dir %s" dir) in
  Alcotest.(check int) "runs --stats exits 0" 0 rc3;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "stats mention %S" needle) true
        (contains out needle))
    [
      "per-subcommand wall time";
      "per-stage wall time";
      "analyze";
      "concrete.build";
      "exit codes";
      "0: 2 run(s)";
    ];
  let rc4, out4 = run_capture (Printf.sprintf "runs --stats --json --dir %s" dir) in
  Alcotest.(check int) "runs --stats --json exits 0" 0 rc4;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "stats json mentions %S" needle) true
        (contains out4 needle))
    [ "\"commands\""; "\"stages\""; "\"exit_codes\""; "\"p95_seconds\"" ]

let test_fuzz_deadline () =
  (* a per-case budget far below what any case needs: every case must be
     recorded as timed out and skipped, and the fuzz loop itself must
     survive to report them (exit 0 — timeouts are not disagreements) *)
  let rc, out = run_capture "check --random 2 --quick --deadline 1ms" in
  Alcotest.(check int) "fuzz with timeouts exits 0" 0 rc;
  Alcotest.(check bool) "cases recorded as timed out" true (contains out "2 timed out");
  let rc2, out2 = run_capture "check --random 2 --quick --deadline 1ms --json" in
  Alcotest.(check int) "json fuzz exits 0" 0 rc2;
  Alcotest.(check bool) "json counts timeouts" true (contains out2 "\"timed_out\": 2")

let test_error_paths () =
  let rc, out = run_capture "analyze -m nonsense" in
  Alcotest.(check bool) "unknown model fails" true (rc <> 0);
  Alcotest.(check bool) "lists available models" true (contains out "stopwait");
  let rc2, out2 = run_capture "analyze /nonexistent.tpn" in
  Alcotest.(check bool) "missing file fails" true (rc2 <> 0);
  ignore out2

let suite =
  ( "cli",
    [
      Alcotest.test_case "analyze .tpn file" `Quick test_analyze_file;
      Alcotest.test_case "symbolic .tpn file" `Quick test_symbolic_file;
      Alcotest.test_case "builtin models" `Quick test_builtin_models;
      Alcotest.test_case "simulate" `Quick test_simulate;
      Alcotest.test_case "dot outputs" `Quick test_dot;
      Alcotest.test_case "sweep" `Quick test_sweep;
      Alcotest.test_case "sweep determinism across -j" `Quick test_sweep_determinism;
      Alcotest.test_case "--json schema 2 and --json-schema 1" `Quick test_json_schema;
      Alcotest.test_case "profile" `Quick test_profile;
      Alcotest.test_case "--trace writes NDJSON" `Quick test_trace_flag;
      Alcotest.test_case "--metrics prints table" `Quick test_metrics_flag;
      Alcotest.test_case "error paths" `Quick test_error_paths;
      Alcotest.test_case "version subcommand" `Quick test_version_cmd;
      Alcotest.test_case "metrics subcommand" `Quick test_metrics_cmd;
      Alcotest.test_case "run ledger & runs query" `Quick test_ledger_and_runs;
      Alcotest.test_case "--deadline aborts with dump & ledger row" `Quick
        test_deadline_flag;
      Alcotest.test_case "runs --stats" `Quick test_runs_stats;
      Alcotest.test_case "fuzz per-case deadline" `Quick test_fuzz_deadline;
      Alcotest.test_case "bench-diff gating" `Quick test_bench_diff_cmd;
      Alcotest.test_case "multi-lane trace at -j4" `Quick test_multilane_trace;
    ] )
