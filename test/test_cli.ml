(* End-to-end tests of the tpan binary: run real subcommands on real .tpn
   files and check the headline numbers appear. The test executable runs
   from _build/default/test, with the binary and example nets declared as
   dune deps. *)

let tpan = "../bin/tpan.exe"
let stopwait_tpn = "../examples/nets/stopwait.tpn"
let symbolic_tpn = "../examples/nets/stopwait_symbolic.tpn"

let run_capture args =
  let tmp = Filename.temp_file "tpan_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" tpan args tmp in
  let rc = Sys.command cmd in
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  (rc, out)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_run name args needles =
  let rc, out = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") 0 rc;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "%s: output mentions %S" name needle) true
        (contains out needle))
    needles

let test_analyze_file () =
  check_run "analyze" (Printf.sprintf "analyze %s -t t7" stopwait_tpn)
    [ "18 states"; "decision nodes: 3, 11"; "0.002851"; "350.649307" ]

let test_symbolic_file () =
  check_run "symbolic" (Printf.sprintf "symbolic %s -t t7" symbolic_tpn)
    [ "18 states"; "constraints used to order minima"; "throughput(t7)"; "f(t8)" ]

let test_builtin_models () =
  check_run "show" "show -m abp" [ "net abp"; "conflict set" ];
  check_run "latency" "latency -m stopwait -e t6" [ "173.936842" ];
  check_run "check" "check -m stopwait" [ "consistent"; "safe (1-bounded)" ];
  check_run "report" "report -m channel" [ "structure"; "steady state" ]

let test_simulate () =
  check_run "simulate" "simulate -m stopwait -t t7 --horizon 100000 --seed 4"
    [ "throughput(t7)" ]

let test_dot () =
  check_run "dot net" (Printf.sprintf "dot %s -g net" stopwait_tpn) [ "digraph" ];
  check_run "dot dg" "dot -m stopwait -g dg" [ "diamond"; "0.05 / 1002" ]

let test_sweep () =
  (* symbolic path: closed form derived once, evaluated on the grid *)
  check_run "sweep symbolic"
    ("sweep -m stopwait-sym -t t7 --vary 'E(t3)=250..1000:4' "
    ^ "-p 'F(t1)=1' -p 'F(t2)=1' -p 'F(t3)=1' -p 'F(t4)=106.7' -p 'F(t5)=106.7' "
    ^ "-p 'F(t6)=13.5' -p 'F(t7)=13.5' -p 'F(t8)=106.7' -p 'F(t9)=106.7' "
    ^ "-p 'f(t4)=0.05' -p 'f(t5)=0.95' -p 'f(t8)=0.95' -p 'f(t9)=0.05'")
    [ "E(t3)"; "0.003708"; "0.002851" ];
  (* concrete path: per-point rebuild + full analysis on the pool; the
     symbolic closed form above must agree point for point *)
  check_run "sweep concrete"
    "sweep -m stopwait --vary timeout=250..1000:4 -j 2 --json"
    [ "\"schema\": 1"; "0.003708"; "0.002851" ]

let test_sweep_determinism () =
  let args j =
    Printf.sprintf "sweep -m stopwait --vary timeout=80..200:8 -j %d --json" j
  in
  let rc1, out1 = run_capture (args 1) in
  let rc4, out4 = run_capture (args 4) in
  Alcotest.(check int) "sweep -j1 exits 0" 0 rc1;
  Alcotest.(check int) "sweep -j4 exits 0" 0 rc4;
  Alcotest.(check string) "sweep --json is byte-identical for -j1 and -j4" out1 out4

let test_profile () =
  check_run "profile" (Printf.sprintf "profile %s" stopwait_tpn)
    [
      "profile";
      "TRG build";
      "oracle queries";
      "FM eliminations";
      "decision-graph collapse";
      "rate solve";
      "span tree";
    ];
  check_run "profile symbolic" (Printf.sprintf "profile %s" symbolic_tpn)
    [ "symbolic pipeline"; "TRG build"; "oracle queries" ]

let test_trace_flag () =
  let trace = Filename.temp_file "tpan_cli" ".ndjson" in
  let rc, _ = run_capture (Printf.sprintf "analyze %s -t t7 --trace %s" stopwait_tpn trace) in
  Alcotest.(check int) "analyze --trace exits 0" 0 rc;
  let ic = open_in trace in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove trace;
  Alcotest.(check bool) "trace file has events" true (List.length !lines > 0);
  List.iter
    (fun line ->
      match Tpan_obs.Trace.parse_line line with
      | Some e -> Alcotest.(check bool) "event has a name" true (String.length e.name > 0)
      | None -> Alcotest.fail (Printf.sprintf "unparseable trace line: %s" line))
    !lines;
  let names =
    List.filter_map
      (fun l -> Option.map (fun (e : Tpan_obs.Trace.event) -> e.name) (Tpan_obs.Trace.parse_line l))
      !lines
  in
  Alcotest.(check bool) "trace covers the TRG build" true (List.mem "concrete.build" names)

let test_metrics_flag () =
  check_run "metrics" (Printf.sprintf "analyze %s -t t7 --metrics" stopwait_tpn)
    [ "metric"; "core.semantics.states_interned"; "perf.rates.solves" ]

let test_error_paths () =
  let rc, out = run_capture "analyze -m nonsense" in
  Alcotest.(check bool) "unknown model fails" true (rc <> 0);
  Alcotest.(check bool) "lists available models" true (contains out "stopwait");
  let rc2, out2 = run_capture "analyze /nonexistent.tpn" in
  Alcotest.(check bool) "missing file fails" true (rc2 <> 0);
  ignore out2

let suite =
  ( "cli",
    [
      Alcotest.test_case "analyze .tpn file" `Quick test_analyze_file;
      Alcotest.test_case "symbolic .tpn file" `Quick test_symbolic_file;
      Alcotest.test_case "builtin models" `Quick test_builtin_models;
      Alcotest.test_case "simulate" `Quick test_simulate;
      Alcotest.test_case "dot outputs" `Quick test_dot;
      Alcotest.test_case "sweep" `Quick test_sweep;
      Alcotest.test_case "sweep determinism across -j" `Quick test_sweep_determinism;
      Alcotest.test_case "profile" `Quick test_profile;
      Alcotest.test_case "--trace writes NDJSON" `Quick test_trace_flag;
      Alcotest.test_case "--metrics prints table" `Quick test_metrics_flag;
      Alcotest.test_case "error paths" `Quick test_error_paths;
    ] )
