(* Validation of decision graphs, rate equations, and measures against the
   paper's Figure 5 (numeric), Figure 8 (symbolic) and the final throughput
   expression of section 4. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module Markov = Tpan_perf.Markov
module SW = Tpan_protocols.Stopwait

let qd = Q.of_decimal_string
let qeq = Alcotest.(check bool)

let cgraph = lazy (CG.build (SW.concrete SW.paper_params))
let cres = lazy (M.Concrete.analyze (Lazy.force cgraph))
let sgraph = lazy (SG.build (SW.symbolic ()))
let sres = lazy (M.Symbolic.analyze (Lazy.force sgraph))

let paper_time_bindings =
  [
    ("E(t3)", Q.of_int 1000);
    ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
    ("F(t4)", qd "106.7"); ("F(t5)", qd "106.7");
    ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
    ("F(t8)", qd "106.7"); ("F(t9)", qd "106.7");
  ]

let paper_freq_bindings =
  [
    ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
    ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
  ]

(* --- Figure 5: concrete decision graph --- *)

let test_figure5_edges () =
  let res = Lazy.force cres in
  let dg = res.Rates.dg in
  Alcotest.(check int) "two decision nodes" 2 (List.length dg.DG.nodes);
  Alcotest.(check int) "four edges" 4 (List.length dg.DG.edges);
  (* the paper's (probability, delay) pairs *)
  let expect = [ (qd "0.05", qd "1002"); (qd "0.95", qd "120.2"); (qd "0.95", qd "122.2"); (qd "0.05", qd "881.8") ] in
  List.iter
    (fun (p, d) ->
      qeq
        (Format.asprintf "edge p=%a d=%a present" Q.pp p Q.pp d)
        true
        (List.exists
           (fun (e : _ DG.dedge) -> Q.equal e.DG.prob p && Q.equal e.DG.delay d)
           dg.DG.edges))
    expect;
  Alcotest.(check bool) "not absorbing" false (DG.is_absorbing dg)

let test_figure5_rates () =
  (* with v(packet decision) = 1: r1 = 0.05, r3 = 0.95,
     r2 = 0.95*0.95 = 0.9025, r4 = 0.95*0.05 = 0.0475 *)
  let res = Lazy.force cres in
  let rates = List.sort Q.compare (List.map (fun (re : _ Rates.rated_edge) -> re.Rates.rate) res.Rates.edge_rate) in
  let expected = List.sort Q.compare [ qd "0.05"; qd "0.95"; qd "0.9025"; qd "0.0475" ] in
  List.iter2 (fun a b -> qeq "rate" true (Q.equal a b)) expected rates;
  (* Σ w = 0.05·1002 + 0.95·120.2 + 0.9025·122.2 + 0.0475·881.8 = 316.461 *)
  qeq "total weight" true (Q.equal (qd "316.461") res.Rates.total_weight)

let test_throughput_concrete () =
  let res = Lazy.force cres in
  let g = Lazy.force cgraph in
  let thr = M.Concrete.throughput res g "t7" in
  (* mean time per message = Σw / r2 = 316.461 / 0.9025 = 350.649... *)
  let mean = Q.inv thr in
  qeq "mean time per message" true (Q.equal (Q.div (qd "316.461") (qd "0.9025")) mean);
  Alcotest.(check (float 1e-9)) "throughput msg/ms" 0.0028518518 (Q.to_float thr);
  (* success = completion of the ack-delivery leg: same as t7 firing *)
  let t7 = Net.trans_of_name (Tpn.net g.Sem.tpn) "t7" in
  let thr_fired = M.throughput_of_transition res ~by:`Fired t7 in
  qeq "fired = completed for t7" true (Q.equal thr thr_fired)

let test_edge_measures () =
  let res = Lazy.force cres in
  (* time share of the timeout-recovery edges (d = 1002 and 881.8) *)
  let share =
    M.edge_time_share res (fun e -> Q.equal e.DG.delay (qd "1002") || Q.equal e.DG.delay (qd "881.8"))
  in
  (* w1 + w4 = 50.1 + 41.8855 = 91.9855; / 316.461 *)
  qeq "recovery share" true (Q.equal (Q.div (qd "91.9855") (qd "316.461")) share);
  (* mean time between visits of the packet-decision node = Σw / 1 *)
  let dg = res.Rates.dg in
  let n0 = List.hd dg.DG.nodes in
  qeq "cycle time at n0" true (Q.equal res.Rates.total_weight (M.mean_time_between_visits res n0));
  qeq "mean_cycle_time" true (Q.equal res.Rates.total_weight (M.mean_cycle_time res))

let test_utilization () =
  let res = Lazy.force cres in
  let g = Lazy.force cgraph in
  let net = Tpn.net g.Sem.tpn in
  let p4 = Net.place_of_name net "p4" in
  let busy = M.Concrete.utilization res ~graph:g (fun st -> Tpan_petri.Marking.tokens st.Sem.marking p4 > 0) in
  (* p4 (awaiting ack) is marked during every non-send interval; sanity:
     0 < u < 1 and u is large (most of the cycle waits for acks/timeouts) *)
  qeq "utilization positive" true (Q.sign busy > 0);
  qeq "utilization < 1" true (Q.compare busy Q.one < 0);
  qeq "mostly waiting" true (Q.compare busy (qd "0.9") > 0);
  (* complement: time with a message being prepared/sent *)
  let all = M.Concrete.utilization res ~graph:g (fun _ -> true) in
  qeq "total time share is 1" true (Q.equal Q.one all)

(* --- Figure 8: symbolic rates and throughput --- *)

let test_figure8_symbolic_rates () =
  let res = Lazy.force sres in
  let fr n = Poly.var (Var.frequency n) in
  let sum = Poly.add in
  (* with v(3) = 1: r(3->3 loss) = f4/(f4+f5), r(3->11) = f5/(f4+f5) *)
  let expect_r1 = Rf.make (fr "t4") (sum (fr "t4") (fr "t5")) in
  let expect_r3 = Rf.make (fr "t5") (sum (fr "t4") (fr "t5")) in
  (* r(11->3 success) = f5·f8 / ((f4+f5)(f8+f9)) *)
  let expect_r2 =
    Rf.make (Poly.mul (fr "t5") (fr "t8")) (Poly.mul (sum (fr "t4") (fr "t5")) (sum (fr "t8") (fr "t9")))
  in
  let rates = List.map (fun (re : _ Rates.rated_edge) -> re.Rates.rate) res.Rates.edge_rate in
  List.iter
    (fun want ->
      qeq "symbolic rate present" true (List.exists (Rf.equal want) rates))
    [ expect_r1; expect_r3; expect_r2 ]

let test_symbolic_throughput_specializes_to_paper () =
  (* The paper's 5%-loss specialization:
     18.05 / (1.95(E(t3)+F(t3)) + 20 F(t2) + 18.05(F(t1)+F(t5)+F(t6)+F(t7)+F(t8))) *)
  let res = Lazy.force sres in
  let g = Lazy.force sgraph in
  let thr = M.Symbolic.throughput res g "t7" in
  let spec = M.Symbolic.subst_frequencies thr paper_freq_bindings in
  let paper_expr =
    let c s = Poly.const (qd s) in
    let fv n = Poly.var (Var.firing n) in
    let e3 = Poly.var (Var.enabling "t3") in
    let num = c "18.05" in
    let den =
      Poly.add
        (Poly.mul (c "1.95") (Poly.add e3 (fv "t3")))
        (Poly.add
           (Poly.mul (c "20") (fv "t2"))
           (Poly.mul (c "18.05")
              (List.fold_left Poly.add Poly.zero [ fv "t1"; fv "t5"; fv "t6"; fv "t7"; fv "t8" ])))
    in
    Rf.make num den
  in
  qeq "matches the paper's closed form" true (Rf.equal spec paper_expr)

let test_symbolic_throughput_evaluates () =
  let res = Lazy.force sres in
  let g = Lazy.force sgraph in
  let thr = M.Symbolic.throughput res g "t7" in
  let v = M.Symbolic.eval_at thr (paper_time_bindings @ paper_freq_bindings) in
  let cres = Lazy.force cres in
  let cthr = M.Concrete.throughput cres (Lazy.force cgraph) "t7" in
  qeq "symbolic = concrete at paper point" true (Q.equal v cthr)

let test_markov_cross_check () =
  let res = Lazy.force cres in
  let g = Lazy.force cgraph in
  let dg = res.Rates.dg in
  let t7 = Net.trans_of_name (Tpn.net g.Sem.tpn) "t7" in
  let thr_markov =
    Markov.throughput
      ~probs:(fun e -> Q.to_float e.DG.prob)
      ~delays:(fun e -> Q.to_float e.DG.delay)
      dg
      ~count:(fun e -> List.length (List.filter (( = ) t7) e.DG.completed))
  in
  let thr_exact = Q.to_float (M.Concrete.throughput res g "t7") in
  Alcotest.(check (float 1e-9)) "power iteration agrees" thr_exact thr_markov

(* Property: symbolic throughput specializes correctly across random
   parameter points satisfying the paper's constraints. *)
let prop_symbolic_specializes =
  QCheck2.Test.make ~name:"symbolic throughput = concrete throughput (random params)" ~count:25
    QCheck2.Gen.(
      let* transit = int_range 1 200 in
      let* proc = int_range 1 50 in
      let* send = int_range 1 20 in
      let* slack = int_range 1 500 in
      let* loss_pkt = int_range 1 50 in
      let* loss_ack = int_range 1 50 in
      return (transit, proc, send, slack, loss_pkt, loss_ack))
    (fun (transit, proc, send, slack, loss_pkt, loss_ack) ->
      let p =
        {
          SW.timeout = Q.of_int ((2 * transit) + proc + slack);
          send_time = Q.of_int send;
          transit_time = Q.of_int transit;
          process_time = Q.of_int proc;
          packet_loss = Q.of_ints loss_pkt 100;
          ack_loss = Q.of_ints loss_ack 100;
        }
      in
      let cg = CG.build (SW.concrete p) in
      let cres = M.Concrete.analyze cg in
      let cthr = M.Concrete.throughput cres cg "t7" in
      let sres = Lazy.force sres in
      let sthr = M.Symbolic.throughput sres (Lazy.force sgraph) "t7" in
      let v =
        M.Symbolic.eval_at sthr
          [
            ("E(t3)", p.SW.timeout);
            ("F(t1)", p.SW.send_time); ("F(t2)", p.SW.send_time); ("F(t3)", p.SW.send_time);
            ("F(t4)", p.SW.transit_time); ("F(t5)", p.SW.transit_time);
            ("F(t6)", p.SW.process_time); ("F(t7)", p.SW.process_time);
            ("F(t8)", p.SW.transit_time); ("F(t9)", p.SW.transit_time);
            ("f(t4)", p.SW.packet_loss); ("f(t5)", Q.sub Q.one p.SW.packet_loss);
            ("f(t8)", Q.sub Q.one p.SW.ack_loss); ("f(t9)", p.SW.ack_loss);
          ]
      in
      Q.equal v cthr)

let test_deterministic_cycle () =
  (* lossless two-place ping-pong: no decisions; cycle time = sum of F *)
  let b = Net.builder "pingpong" in
  let a = Net.add_place b ~init:1 "a" in
  let c = Net.add_place b "c" in
  let _ = Net.add_transition b ~name:"go" ~inputs:[ (a, 1) ] ~outputs:[ (c, 1) ] in
  let _ = Net.add_transition b ~name:"back" ~inputs:[ (c, 1) ] ~outputs:[ (a, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("go", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 3)) ());
        ("back", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 5)) ());
      ]
  in
  let g = CG.build tpn in
  (match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
   | Some (cycle_time, _) -> qeq "cycle time 8" true (Q.equal (Q.of_int 8) cycle_time)
   | None -> Alcotest.fail "expected a cycle");
  (* and the rate solver must refuse *)
  match M.Concrete.analyze g with
  | _ -> Alcotest.fail "expected Unsolvable"
  | exception Rates.Unsolvable _ -> ()

let test_disconnected_rejected () =
  (* a one-way initial choice into two separate recurrent lossy loops: the
     decision graph is reducible (the initial node is transient, the two
     loops never communicate) -> the solver must refuse with a connectivity
     message rather than a singular matrix *)
  let b = Net.builder "reducible" in
  let start = Net.add_place b ~init:1 "start" in
  let pa = Net.add_place b "pa" in
  let pb = Net.add_place b "pb" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t "go_a" [ (start, 1) ] [ (pa, 1) ];
  t "go_b" [ (start, 1) ] [ (pb, 1) ];
  t "a1" [ (pa, 1) ] [ (pa, 1) ];
  t "a2" [ (pa, 1) ] [ (pa, 1) ];
  t "b1" [ (pb, 1) ] [ (pb, 1) ];
  t "b2" [ (pb, 1) ] [ (pb, 1) ];
  let net = Net.build b in
  let half = Q.of_ints 1 2 in
  let tpn =
    Tpn.make net
      (List.map
         (fun n -> (n, Tpn.spec ~firing:(Tpn.Fixed Q.one) ~frequency:(Tpn.Freq half) ()))
         [ "go_a"; "go_b"; "a1"; "a2"; "b1"; "b2" ])
  in
  let g = CG.build tpn in
  (match M.Concrete.analyze g with
   | _ -> Alcotest.fail "expected Unsolvable (disconnected)"
   | exception Rates.Unsolvable msg ->
     Alcotest.(check bool) "message mentions connectivity" true
       (let sub = "strongly connected" in
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0))

let test_markov_periodic_chain () =
  (* A bipartite (period-2) decision graph: plain power iteration oscillates
     between two distributions forever; the damped iteration must converge
     to the true stationary vector pi = (1/2, 1/4, 1/4). *)
  let edge src dst prob delay =
    { DG.src; dst = DG.To dst; delay; prob; path = []; fired = []; completed = [] }
  in
  let dg =
    {
      DG.nodes = [ 0; 1; 2 ];
      edges = [ edge 0 1 0.5 1.0; edge 0 2 0.5 2.0; edge 1 0 1.0 1.0; edge 2 0 1.0 1.0 ];
    }
  in
  let pi = Markov.stationary ~probs:(fun e -> e.DG.prob) dg in
  Alcotest.(check (float 1e-9)) "pi(0)" 0.5 (List.assoc 0 pi);
  Alcotest.(check (float 1e-9)) "pi(1)" 0.25 (List.assoc 1 pi);
  Alcotest.(check (float 1e-9)) "pi(2)" 0.25 (List.assoc 2 pi);
  let thr =
    Markov.throughput
      ~probs:(fun e -> e.DG.prob)
      ~delays:(fun e -> e.DG.delay)
      dg
      ~count:(fun e -> match e.DG.dst with DG.To 0 -> 1 | _ -> 0)
  in
  (* rate of return to node 0: pi(1)+pi(2) arrivals per mean edge delay
     sum(pi.p.d) = .5*.5*1 + .5*.5*2 + .25*1 + .25*1 = 1.25 *)
  Alcotest.(check (float 1e-9)) "throughput" (0.5 /. 1.25) thr

let test_absorbing_rejected () =
  (* a net that can halt: one-shot choice between finishing and retrying
     once, with the terminal branch reachable *)
  let b = Net.builder "absorb" in
  let p = Net.add_place b ~init:1 "p" in
  let q_ = Net.add_place b "q" in
  let _ = Net.add_transition b ~name:"halt" ~inputs:[ (p, 1) ] ~outputs:[] in
  let _ = Net.add_transition b ~name:"loop" ~inputs:[ (p, 1) ] ~outputs:[ (q_, 1) ] in
  let _ = Net.add_transition b ~name:"again" ~inputs:[ (q_, 1) ] ~outputs:[ (p, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("halt", Tpn.spec ~firing:(Tpn.Fixed Q.one) ~frequency:(Tpn.Freq (Q.of_ints 1 2)) ());
        ("loop", Tpn.spec ~firing:(Tpn.Fixed Q.one) ~frequency:(Tpn.Freq (Q.of_ints 1 2)) ());
        ("again", Tpn.spec ~firing:(Tpn.Fixed Q.one) ());
      ]
  in
  let g = CG.build tpn in
  match M.Concrete.analyze g with
  | _ -> Alcotest.fail "expected Unsolvable (absorbing)"
  | exception Rates.Unsolvable _ -> ()

let suite =
  ( "perf",
    [
      Alcotest.test_case "figure 5: decision graph" `Quick test_figure5_edges;
      Alcotest.test_case "figure 5: traversal rates" `Quick test_figure5_rates;
      Alcotest.test_case "throughput (concrete)" `Quick test_throughput_concrete;
      Alcotest.test_case "edge measures" `Quick test_edge_measures;
      Alcotest.test_case "utilization" `Quick test_utilization;
      Alcotest.test_case "figure 8: symbolic rates" `Quick test_figure8_symbolic_rates;
      Alcotest.test_case "paper's closed-form throughput" `Quick test_symbolic_throughput_specializes_to_paper;
      Alcotest.test_case "symbolic evaluates to concrete" `Quick test_symbolic_throughput_evaluates;
      Alcotest.test_case "markov cross-check" `Quick test_markov_cross_check;
      Alcotest.test_case "markov periodic chain converges" `Quick test_markov_periodic_chain;
      Alcotest.test_case "deterministic cycle analysis" `Quick test_deterministic_cycle;
      Alcotest.test_case "absorbing graphs rejected" `Quick test_absorbing_rejected;
      Alcotest.test_case "disconnected graphs diagnosed" `Quick test_disconnected_rejected;
      QCheck_alcotest.to_alcotest prop_symbolic_specializes;
    ] )
