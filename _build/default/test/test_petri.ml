(* Tests for the untimed Petri net substrate: structure, firing,
   reachability, coverability, invariants, DOT export. *)

module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Reach = Tpan_petri.Reachability
module Cover = Tpan_petri.Coverability
module Inv = Tpan_petri.Invariants
module Dot = Tpan_petri.Dot

(* A tiny producer/consumer net: producer puts tokens into a buffer of
   capacity 2 (modelled with a complementary place), consumer drains it. *)
let producer_consumer () =
  let b = Net.builder "prodcons" in
  let idle_p = Net.add_place b ~init:1 "producer_idle" in
  let buffer = Net.add_place b "buffer" in
  let slots = Net.add_place b ~init:2 "free_slots" in
  let idle_c = Net.add_place b ~init:1 "consumer_idle" in
  let produce =
    Net.add_transition b ~name:"produce" ~inputs:[ (idle_p, 1); (slots, 1) ]
      ~outputs:[ (idle_p, 1); (buffer, 1) ]
  in
  let consume =
    Net.add_transition b ~name:"consume" ~inputs:[ (idle_c, 1); (buffer, 1) ]
      ~outputs:[ (idle_c, 1); (slots, 1) ]
  in
  (Net.build b, buffer, slots, produce, consume)

(* Unbounded: a source transition with no inputs. *)
let source_net () =
  let b = Net.builder "source" in
  let p = Net.add_place b "sink" in
  let _ = Net.add_transition b ~name:"emit" ~inputs:[] ~outputs:[ (p, 1) ] in
  Net.build b

(* A net that deadlocks after two firings. *)
let dead_net () =
  let b = Net.builder "dead" in
  let a = Net.add_place b ~init:1 "a" in
  let c = Net.add_place b "c" in
  let _ = Net.add_transition b ~name:"t1" ~inputs:[ (a, 1) ] ~outputs:[ (c, 1) ] in
  let _ = Net.add_transition b ~name:"t2" ~inputs:[ (c, 1) ] ~outputs:[] in
  Net.build b

let test_builder_validation () =
  let b = Net.builder "bad" in
  let p = Net.add_place b ~init:1 "p" in
  Alcotest.check_raises "duplicate place" (Invalid_argument "Net.add_place: duplicate place \"p\"")
    (fun () -> ignore (Net.add_place b "p"));
  Alcotest.check_raises "negative init" (Invalid_argument "Net.add_place: negative initial marking")
    (fun () -> ignore (Net.add_place b ~init:(-1) "q"));
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[] in
  Alcotest.check_raises "duplicate transition"
    (Invalid_argument "Net.add_transition: duplicate transition \"t\"") (fun () ->
      ignore (Net.add_transition b ~name:"t" ~inputs:[] ~outputs:[]));
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Net.add_transition: non-positive multiplicity in inputs") (fun () ->
      ignore (Net.add_transition b ~name:"t2" ~inputs:[ (p, 0) ] ~outputs:[]))

let test_structure () =
  let net, buffer, slots, produce, consume = producer_consumer () in
  Alcotest.(check int) "places" 4 (Net.num_places net);
  Alcotest.(check int) "transitions" 2 (Net.num_transitions net);
  Alcotest.(check string) "trans name" "produce" (Net.trans_name net produce);
  Alcotest.(check int) "lookup" buffer (Net.place_of_name net "buffer");
  Alcotest.(check (list int)) "consumers of buffer" [ consume ] (Net.consumers net buffer);
  Alcotest.(check (list int)) "producers of buffer" [ produce ] (Net.producers net buffer);
  Alcotest.(check int) "input weight" 1 (Net.input_weight net produce slots);
  Alcotest.(check int) "absent weight" 0 (Net.input_weight net produce buffer);
  let c = Net.incidence net in
  Alcotest.(check int) "incidence produce/buffer" 1 c.(buffer).(produce);
  Alcotest.(check int) "incidence produce/slots" (-1) c.(slots).(produce);
  Alcotest.(check bool) "self conflict" true (Net.structurally_conflicting net produce produce);
  Alcotest.(check bool) "no shared input" false (Net.structurally_conflicting net produce consume)

let test_bag_merge () =
  let b = Net.builder "merge" in
  let p = Net.add_place b ~init:3 "p" in
  let t = Net.add_transition b ~name:"t" ~inputs:[ (p, 1); (p, 1) ] ~outputs:[ (p, 3) ] in
  let net = Net.build b in
  Alcotest.(check int) "merged weight" 2 (Net.input_weight net t p)

let test_firing () =
  let net, buffer, slots, produce, consume = producer_consumer () in
  let m0 = Marking.of_net net in
  Alcotest.(check bool) "produce enabled" true (Marking.enabled net m0 produce);
  Alcotest.(check bool) "consume disabled" false (Marking.enabled net m0 consume);
  let m1 = Marking.fire net m0 produce in
  Alcotest.(check int) "buffer filled" 1 (Marking.tokens m1 buffer);
  Alcotest.(check int) "slot used" 1 (Marking.tokens m1 slots);
  let m2 = Marking.fire net m1 produce in
  Alcotest.(check bool) "produce now disabled" false (Marking.enabled net m2 produce);
  Alcotest.check_raises "consume guard"
    (Invalid_argument "Marking.consume: consume not enabled") (fun () ->
      ignore (Marking.consume net m0 consume));
  (* consume/produce split used by timed semantics *)
  let m1' = Marking.consume net m0 produce in
  Alcotest.(check int) "tokens absorbed" 2 (Marking.total m0 - Marking.total m1');
  let m1'' = Marking.produce net m1' produce in
  Alcotest.(check bool) "consume+produce = fire" true (Marking.equal m1 m1'')

let test_reachability () =
  let net, buffer, _, _, _ = producer_consumer () in
  let g = Reach.explore net in
  (* buffer can hold 0,1,2 tokens: exactly 3 states *)
  Alcotest.(check int) "states" 3 (Reach.num_states g);
  Alcotest.(check int) "edges" 4 (Reach.num_edges g);
  Alcotest.(check bool) "deadlock free" true (Reach.is_deadlock_free g);
  Alcotest.(check int) "buffer bound" 2 (Reach.place_bound g buffer);
  Alcotest.(check bool) "not safe (buffer holds 2)" false (Reach.is_safe g);
  Alcotest.(check int) "all transitions live" 2 (List.length (Reach.live_transitions g))

let test_reachability_deadlock () =
  let net = dead_net () in
  let g = Reach.explore net in
  Alcotest.(check int) "states" 3 (Reach.num_states g);
  Alcotest.(check bool) "has deadlock" false (Reach.is_deadlock_free g);
  Alcotest.(check (list int)) "dead state is the empty one" [ 2 ] (Reach.deadlocks g)

let test_state_limit () =
  let net = source_net () in
  Alcotest.check_raises "limit" (Reach.State_limit 50) (fun () ->
      ignore (Reach.explore ~max_states:50 net))

let test_path_to () =
  let net, buffer, _, _, _ = producer_consumer () in
  let g = Reach.explore net in
  (match Reach.path_to g (fun m -> Marking.tokens m buffer = 2) with
   | Some path -> Alcotest.(check int) "two produces" 2 (List.length path)
   | None -> Alcotest.fail "expected a path");
  Alcotest.(check bool) "unreachable predicate" true
    (Reach.path_to g (fun m -> Marking.tokens m buffer = 5) = None)

let test_coverability_bounded () =
  let net, buffer, _, _, _ = producer_consumer () in
  let tree = Cover.build net in
  Alcotest.(check bool) "bounded" true (Cover.is_bounded tree);
  Alcotest.(check (option int)) "buffer bound" (Some 2) (Cover.place_bound tree buffer);
  Alcotest.(check (list int)) "no unbounded places" [] (Cover.unbounded_places tree)

let test_coverability_unbounded () =
  let net = source_net () in
  let tree = Cover.build net in
  Alcotest.(check bool) "unbounded" false (Cover.is_bounded tree);
  Alcotest.(check (option int)) "sink unbounded" None (Cover.place_bound tree 0);
  Alcotest.(check bool) "coverable 100" true (Cover.coverable tree [| 100 |])

let test_p_invariants () =
  let net, buffer, slots, _, _ = producer_consumer () in
  let invs = Inv.p_invariants net in
  Alcotest.(check bool) "found some" true (invs <> []);
  List.iter
    (fun y -> Alcotest.(check bool) "verifies" true (Inv.is_p_invariant net y))
    invs;
  (* buffer + free_slots is conserved (= 2) *)
  let v = Array.make (Net.num_places net) 0 in
  v.(buffer) <- 1;
  v.(slots) <- 1;
  Alcotest.(check bool) "buffer+slots invariant" true (Inv.is_p_invariant net v);
  Alcotest.(check int) "conserved value" 2 (Inv.invariant_value v (Net.initial_marking net));
  Alcotest.(check bool) "conservative" true (Inv.is_conservative net)

let test_t_invariants () =
  let net, _, _, produce, consume = producer_consumer () in
  let invs = Inv.t_invariants net in
  List.iter (fun x -> Alcotest.(check bool) "verifies" true (Inv.is_t_invariant net x)) invs;
  (* one produce + one consume returns to the initial marking *)
  let x = Array.make 2 0 in
  x.(produce) <- 1;
  x.(consume) <- 1;
  Alcotest.(check bool) "produce+consume cycle" true (Inv.is_t_invariant net x);
  Alcotest.(check bool) "source net not conservative" false (Inv.is_conservative (source_net ()))

let test_dot () =
  let net, _, _, _, _ = producer_consumer () in
  let dot = Dot.net_to_dot net in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "mentions produce" true (contains dot "produce");
  let g = Reach.explore net in
  let rdot = Dot.reachability_to_dot g in
  Alcotest.(check bool) "reach dot has states" true (contains rdot "s0")

(* Properties *)

let gen_chain_net =
  (* Random "pipeline" nets: k places in a row, transitions moving a token
     forward; always bounded, token count conserved. *)
  QCheck2.Gen.(
    let* k = int_range 2 6 in
    let* init = int_range 1 3 in
    return (k, init))

let build_chain (k, init) =
  let b = Net.builder "chain" in
  let places = List.init k (fun i -> Net.add_place b ~init:(if i = 0 then init else 0) (Printf.sprintf "p%d" i)) in
  let arr = Array.of_list places in
  for i = 0 to k - 2 do
    ignore (Net.add_transition b ~name:(Printf.sprintf "t%d" i) ~inputs:[ (arr.(i), 1) ] ~outputs:[ (arr.(i + 1), 1) ])
  done;
  Net.build b

let prop_chain_conserves_tokens =
  QCheck2.Test.make ~name:"chain nets conserve total tokens" ~count:50 gen_chain_net
    (fun spec ->
      let net = build_chain spec in
      let g = Reach.explore net in
      let total0 = Marking.total g.Reach.states.(0) in
      Array.for_all (fun m -> Marking.total m = total0) g.Reach.states)

let prop_chain_invariant_conserved =
  QCheck2.Test.make ~name:"p-invariants constant across reachable markings" ~count:50
    gen_chain_net
    (fun spec ->
      let net = build_chain spec in
      let g = Reach.explore net in
      let invs = Inv.p_invariants net in
      List.for_all
        (fun y ->
          let v0 = Inv.invariant_value y g.Reach.states.(0) in
          Array.for_all (fun m -> Inv.invariant_value y m = v0) g.Reach.states)
        invs)

let prop_coverability_agrees_when_bounded =
  QCheck2.Test.make ~name:"coverability bound = reachability bound on bounded nets" ~count:50
    gen_chain_net
    (fun spec ->
      let net = build_chain spec in
      let g = Reach.explore net in
      let tree = Cover.build net in
      Cover.is_bounded tree
      && List.for_all
           (fun p -> Cover.place_bound tree p = Some (Reach.place_bound g p))
           (Net.places net))

let suite =
  ( "petri",
    [
      Alcotest.test_case "builder validation" `Quick test_builder_validation;
      Alcotest.test_case "structure accessors" `Quick test_structure;
      Alcotest.test_case "bag merging" `Quick test_bag_merge;
      Alcotest.test_case "firing rules" `Quick test_firing;
      Alcotest.test_case "reachability" `Quick test_reachability;
      Alcotest.test_case "deadlock detection" `Quick test_reachability_deadlock;
      Alcotest.test_case "state limit" `Quick test_state_limit;
      Alcotest.test_case "shortest path" `Quick test_path_to;
      Alcotest.test_case "coverability (bounded)" `Quick test_coverability_bounded;
      Alcotest.test_case "coverability (unbounded)" `Quick test_coverability_unbounded;
      Alcotest.test_case "P-invariants" `Quick test_p_invariants;
      Alcotest.test_case "T-invariants" `Quick test_t_invariants;
      Alcotest.test_case "DOT export" `Quick test_dot;
      QCheck_alcotest.to_alcotest prop_chain_conserves_tokens;
      QCheck_alcotest.to_alcotest prop_chain_invariant_conserved;
      QCheck_alcotest.to_alcotest prop_coverability_agrees_when_bounded;
    ] )
