test/test_constraints.ml: Alcotest Format List Option String Tpan_mathkit Tpan_symbolic
