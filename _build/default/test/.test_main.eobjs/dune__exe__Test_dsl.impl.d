test/test_dsl.ml: Alcotest Buffer List Printf QCheck2 QCheck_alcotest String Tpan_core Tpan_dsl Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_symbolic
