test/test_linsolve.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Tpan_mathkit
