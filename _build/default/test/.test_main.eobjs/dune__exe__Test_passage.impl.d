test/test_passage.ml: Alcotest Array Format List Option Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_sim Tpan_symbolic
