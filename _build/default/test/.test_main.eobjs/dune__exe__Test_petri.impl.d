test/test_petri.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest String Tpan_petri
