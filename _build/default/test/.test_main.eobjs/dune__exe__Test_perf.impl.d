test/test_perf.ml: Alcotest Format Lazy List QCheck2 QCheck_alcotest String Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_symbolic
