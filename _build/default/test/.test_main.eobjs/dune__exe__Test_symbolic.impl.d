test/test_symbolic.ml: Alcotest Format Option QCheck2 QCheck_alcotest Tpan_core Tpan_mathkit Tpan_perf Tpan_protocols Tpan_symbolic
