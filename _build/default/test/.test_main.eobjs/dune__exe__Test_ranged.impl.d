test/test_ranged.ml: Alcotest Array List Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols
