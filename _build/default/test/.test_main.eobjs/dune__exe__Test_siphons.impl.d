test/test_siphons.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Tpan_petri Tpan_protocols
