test/test_more_protocols.ml: Alcotest Array Float Format List Printf QCheck2 QCheck_alcotest Stdlib Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_sim Tpan_symbolic
