test/test_symbolic_trg.ml: Alcotest Array Format Fun Lazy List String Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols Tpan_symbolic
