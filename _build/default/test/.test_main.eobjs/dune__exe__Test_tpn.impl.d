test/test_tpn.ml: Alcotest Array Format List Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols Tpan_symbolic
