test/test_q.ml: Alcotest Format QCheck2 QCheck_alcotest Tpan_mathkit
