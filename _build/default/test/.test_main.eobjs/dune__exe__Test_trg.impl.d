test/test_trg.ml: Alcotest Array Fun Lazy List String Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols
