test/test_exponential.ml: Alcotest Array Format List Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols
