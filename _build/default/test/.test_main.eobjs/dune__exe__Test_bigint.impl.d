test/test_bigint.ml: Alcotest Float List QCheck2 QCheck_alcotest String Tpan_mathkit
