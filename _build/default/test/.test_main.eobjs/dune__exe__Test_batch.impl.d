test/test_batch.ml: Alcotest Array Float Printf Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_sim
