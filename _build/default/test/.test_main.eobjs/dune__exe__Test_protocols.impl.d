test/test_protocols.ml: Alcotest Array Float List Printf Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_sim Tpan_symbolic
