test/test_classify.ml: Alcotest Format String Tpan_petri Tpan_protocols
