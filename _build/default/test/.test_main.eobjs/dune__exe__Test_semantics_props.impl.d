test/test_semantics_props.ml: Array List Printf QCheck2 QCheck_alcotest Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols Tpan_sim Tpan_symbolic
