test/test_time_pn.ml: Alcotest Array List Printf Tpan_core Tpan_mathkit Tpan_petri Tpan_protocols
