test/test_fourier_motzkin.ml: Alcotest Array Format List QCheck2 QCheck_alcotest Tpan_mathkit
