test/test_sensitivity.ml: Alcotest List Tpan_core Tpan_mathkit Tpan_perf Tpan_protocols Tpan_symbolic
