test/test_report.ml: Alcotest Format List String Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols
