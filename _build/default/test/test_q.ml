(* Unit and property tests for Tpan_mathkit.Q. *)

module B = Tpan_mathkit.Bigint
module Q = Tpan_mathkit.Q

let q = Alcotest.testable Q.pp Q.equal
let check_q = Alcotest.check q

let test_normalization () =
  check_q "6/4 = 3/2" (Q.of_ints 3 2) (Q.of_ints 6 4);
  check_q "neg den" (Q.of_ints (-1) 2) (Q.of_ints 1 (-2));
  check_q "zero" Q.zero (Q.of_ints 0 17);
  Alcotest.(check string) "canonical print" "3/2" (Q.to_string (Q.of_ints 6 4));
  Alcotest.(check string) "integer print" "5" (Q.to_string (Q.of_ints 10 2))

let test_arith () =
  check_q "1/2 + 1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "1/2 - 1/3" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "2/3 * 3/4" (Q.of_ints 1 2) (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 4));
  check_q "div" (Q.of_ints 8 9) (Q.div (Q.of_ints 2 3) (Q.of_ints 3 4));
  check_q "inv" (Q.of_ints (-3) 2) (Q.inv (Q.of_ints (-2) 3));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Q.div Q.one Q.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  check_q "min" (Q.of_ints 1 3) (Q.min (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "max" (Q.of_ints 1 2) (Q.max (Q.of_ints 1 2) (Q.of_ints 1 3))

let test_decimal_parse () =
  check_q "106.7" (Q.of_ints 1067 10) (Q.of_decimal_string "106.7");
  check_q "-0.05" (Q.of_ints (-1) 20) (Q.of_decimal_string "-0.05");
  check_q "plain int" (Q.of_int 42) (Q.of_decimal_string "42");
  check_q "fraction" (Q.of_ints 1067 10) (Q.of_decimal_string "1067/10");
  check_q ".5 style" (Q.of_ints 1 2) (Q.of_decimal_string "0.50");
  Alcotest.check_raises "empty" (Invalid_argument "Q.of_decimal_string: empty") (fun () ->
      ignore (Q.of_decimal_string "  "))

let test_pp_decimal () =
  let s q' = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q' in
  Alcotest.(check string) "106.7" "106.7" (s (Q.of_decimal_string "106.7"));
  Alcotest.(check string) "exact int" "1000" (s (Q.of_int 1000));
  Alcotest.(check string) "negative" "-0.05" (s (Q.of_decimal_string "-0.05"));
  Alcotest.(check string) "rounded" "0.333333" (s (Q.of_ints 1 3));
  Alcotest.(check string) "trim zeros" "2.5" (s (Q.of_ints 5 2))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "106.7" 106.7 (Q.to_float (Q.of_decimal_string "106.7"))

(* Properties *)

let gen_q =
  QCheck2.Gen.(
    let* n = int_range (-10000) 10000 in
    let* d = int_range 1 10000 in
    return (Q.of_ints n d))

let prop_add_assoc =
  QCheck2.Test.make ~name:"add associative" ~count:300
    QCheck2.Gen.(triple gen_q gen_q gen_q)
    (fun (a, b, c) -> Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"mul distributes over add" ~count:300
    QCheck2.Gen.(triple gen_q gen_q gen_q)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_inv_involutive =
  QCheck2.Test.make ~name:"double inverse" ~count:300 gen_q (fun a ->
      Q.is_zero a || Q.equal a (Q.inv (Q.inv a)))

let prop_compare_antisym =
  QCheck2.Test.make ~name:"compare antisymmetric" ~count:300
    QCheck2.Gen.(pair gen_q gen_q)
    (fun (a, b) -> Q.compare a b = -Q.compare b a)

let prop_sub_add_cancel =
  QCheck2.Test.make ~name:"a - b + b = a" ~count:300
    QCheck2.Gen.(pair gen_q gen_q)
    (fun (a, b) -> Q.equal a (Q.add (Q.sub a b) b))

let suite =
  ( "rationals",
    [
      Alcotest.test_case "normalization" `Quick test_normalization;
      Alcotest.test_case "arithmetic" `Quick test_arith;
      Alcotest.test_case "compare/min/max" `Quick test_compare;
      Alcotest.test_case "decimal parsing" `Quick test_decimal_parse;
      Alcotest.test_case "decimal printing" `Quick test_pp_decimal;
      Alcotest.test_case "to_float" `Quick test_to_float;
      QCheck_alcotest.to_alcotest prop_add_assoc;
      QCheck_alcotest.to_alcotest prop_mul_distributes;
      QCheck_alcotest.to_alcotest prop_inv_involutive;
      QCheck_alcotest.to_alcotest prop_compare_antisym;
      QCheck_alcotest.to_alcotest prop_sub_add_cancel;
    ] )
