(* Tests for the blast/batch transfer protocol. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module B = Tpan_protocols.Batch
module SW = Tpan_protocols.Stopwait

let throughput ?(loss = None) w =
  let p = { B.default_params with B.window = w } in
  let p =
    match loss with
    | None -> p
    | Some l -> { p with B.packet_loss = l; ack_loss = l }
  in
  let tpn = B.concrete p in
  let g = CG.build ~max_states:200_000 tpn in
  let res = M.Concrete.analyze g in
  (Q.mul (Q.of_int w) (M.Concrete.throughput res g B.t_done), g)

let test_window_one_equals_stopwait () =
  (* a batch of one degenerates to the paper's protocol: identical
     state-space size and identical throughput, exactly *)
  let thr1, g1 = throughput 1 in
  Alcotest.(check int) "18 states" 18 (CG.Graph.num_states g1);
  let sw = CG.build (SW.concrete SW.paper_params) in
  let swres = M.Concrete.analyze sw in
  let swthr = M.Concrete.throughput swres sw SW.t_process_ack in
  Alcotest.(check bool) "throughput equals stop-and-wait" true (Q.equal thr1 swthr)

let test_batching_pays () =
  let thr1, _ = throughput 1 in
  let thr2, _ = throughput 2 in
  let thr3, g3 = throughput 3 in
  Alcotest.(check bool) "w=2 beats w=1" true (Q.compare thr2 thr1 > 0);
  Alcotest.(check bool) "w=3 beats w=2" true (Q.compare thr3 thr2 > 0);
  (* sub-linear: the round-trip amortization cannot exceed w-fold *)
  Alcotest.(check bool) "gain below 3x" true (Q.compare thr3 (Q.mul (Q.of_int 3) thr1) < 0);
  Alcotest.(check int) "w=3 state space" 474 (CG.Graph.num_states g3)

let test_batching_gain_shrinks_with_loss () =
  let ratio loss =
    let t1, _ = throughput ~loss:(Some loss) 1 in
    let t3, _ = throughput ~loss:(Some loss) 3 in
    Q.to_float t3 /. Q.to_float t1
  in
  let low = ratio (Q.of_ints 1 100) in
  let high = ratio (Q.of_ints 30 100) in
  Alcotest.(check bool)
    (Printf.sprintf "gain %.2f at 1%% > %.2f at 30%%" low high)
    true (low > high);
  Alcotest.(check bool) "still a gain at 30%" true (high > 1.0)

let test_timed_safety () =
  let tpn = B.concrete { B.default_params with B.window = 3 } in
  let g = CG.build ~max_states:200_000 tpn in
  Alcotest.(check bool) "all reachable markings 1-bounded" true
    (Array.for_all (fun st -> Array.for_all (fun k -> k <= 1) st.Sem.marking) g.Sem.states);
  Alcotest.(check (list int)) "no deadlock" [] (CG.Graph.terminal_states g)

let test_timeout_validation () =
  (* timeout below the worst-case round trip is rejected up front *)
  try
    ignore (B.concrete { B.default_params with B.timeout = Q.of_int 100 });
    Alcotest.fail "short timeout accepted"
  with Tpn.Unsupported _ -> ()

let test_sim_agreement () =
  let p = { B.default_params with B.window = 2 } in
  let tpn = B.concrete p in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let exact = Q.to_float (M.Concrete.throughput res g B.t_done) in
  let stats = Sim.run ~seed:13 ~horizon:(Q.of_int 2_000_000) tpn in
  let sim = Sim.throughput stats (Net.trans_of_name (Tpn.net tpn) B.t_done) in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.6f vs exact %.6f" sim exact)
    true
    (Float.abs (sim -. exact) /. exact < 0.03)

let test_selective_reassembly_latency () =
  (* a partially received batch keeps its progress across a timeout: the
     claim slots persist, so the resent batch only needs the missing
     packets. Structural check: got_i places survive the resend
     transition. *)
  let net = B.net ~window:2 in
  let resend = Net.trans_of_name net "resend" in
  let got1 = Net.place_of_name net "got1" in
  Alcotest.(check int) "resend does not clear got slots" 0 (Net.input_weight net resend got1)

let suite =
  ( "batch",
    [
      Alcotest.test_case "window 1 = stop-and-wait" `Quick test_window_one_equals_stopwait;
      Alcotest.test_case "batching pays (sub-linearly)" `Quick test_batching_pays;
      Alcotest.test_case "gain shrinks with loss" `Slow test_batching_gain_shrinks_with_loss;
      Alcotest.test_case "timed safety" `Quick test_timed_safety;
      Alcotest.test_case "timeout validation" `Quick test_timeout_validation;
      Alcotest.test_case "simulation agreement" `Slow test_sim_agreement;
      Alcotest.test_case "selective reassembly" `Quick test_selective_reassembly_latency;
    ] )
