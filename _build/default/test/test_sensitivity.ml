(* Tests for symbolic differentiation and the sensitivity (elasticity)
   analysis of performance expressions. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module M = Tpan_perf.Measures
module SG = Tpan_core.Symbolic
module SW = Tpan_protocols.Stopwait

let qi = Q.of_int
let qd = Q.of_decimal_string
let poly = Alcotest.testable Poly.pp Poly.equal
let rf = Alcotest.testable Rf.pp Rf.equal

let x = Var.param "dx"
let y = Var.param "dy"
let px = Poly.var x
let py = Poly.var y

let test_poly_derivative () =
  (* d/dx (x^3 + 2x y + y^2 + 5) = 3x^2 + 2y *)
  let p =
    List.fold_left Poly.add Poly.zero
      [ Poly.pow px 3; Poly.scale (qi 2) (Poly.mul px py); Poly.pow py 2; Poly.of_int 5 ]
  in
  Alcotest.check poly "d/dx" (Poly.add (Poly.scale (qi 3) (Poly.pow px 2)) (Poly.scale (qi 2) py))
    (Poly.derivative x p);
  Alcotest.check poly "d/dy" (Poly.add (Poly.scale (qi 2) px) (Poly.scale (qi 2) py))
    (Poly.derivative y p);
  Alcotest.check poly "constant" Poly.zero (Poly.derivative x (Poly.of_int 42))

let test_poly_derivative_product_rule () =
  (* (pq)' = p'q + pq' on random-ish fixed polynomials *)
  let p = Poly.add (Poly.pow px 2) py in
  let q = Poly.add px (Poly.of_int 3) in
  let lhs = Poly.derivative x (Poly.mul p q) in
  let rhs = Poly.add (Poly.mul (Poly.derivative x p) q) (Poly.mul p (Poly.derivative x q)) in
  Alcotest.check poly "product rule" rhs lhs

let test_ratfun_derivative () =
  (* d/dx (1/x) = -1/x^2 *)
  let r = Rf.make Poly.one px in
  Alcotest.check rf "1/x" (Rf.make (Poly.of_int (-1)) (Poly.pow px 2)) (Rf.derivative x r);
  (* d/dx (x/(x+y)) = y/(x+y)^2 *)
  let r2 = Rf.make px (Poly.add px py) in
  Alcotest.check rf "quotient rule" (Rf.make py (Poly.pow (Poly.add px py) 2))
    (Rf.derivative x r2);
  (* derivative w.r.t. an absent variable is zero *)
  Alcotest.check rf "absent var" Rf.zero (Rf.derivative (Var.param "dz") r2)

let test_derivative_matches_finite_difference () =
  (* numeric spot check on the throughput expression *)
  let stpn = SW.symbolic () in
  let sg = SG.build stpn in
  let sres = M.Symbolic.analyze sg in
  let thr = M.Symbolic.throughput sres sg SW.t_process_ack in
  let point v =
    [
      ("E(t3)", v);
      ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
      ("F(t4)", qd "106.7"); ("F(t5)", qd "106.7");
      ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
      ("F(t8)", qd "106.7"); ("F(t9)", qd "106.7");
      ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
      ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
    ]
  in
  let d = Rf.derivative (Var.enabling "t3") thr in
  let grad = M.Symbolic.eval_at d (point (qi 1000)) in
  (* central difference with h = 1/1000 (exact rational arithmetic) *)
  let h = Q.of_ints 1 1000 in
  let f v = M.Symbolic.eval_at thr (point v) in
  let approx =
    Q.div (Q.sub (f (Q.add (qi 1000) h)) (f (Q.sub (qi 1000) h))) (Q.mul (qi 2) h)
  in
  Alcotest.(check bool) "finite difference agrees to 1e-9" true
    (Q.compare (Q.abs (Q.sub grad approx)) (Q.of_decimal_string "0.000000001") < 0)

let test_throughput_sensitivities () =
  let stpn = SW.symbolic () in
  let sg = SG.build stpn in
  let sres = M.Symbolic.analyze sg in
  let thr = M.Symbolic.throughput sres sg SW.t_process_ack in
  let at =
    [
      ("E(t3)", qi 1000);
      ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
      ("F(t4)", qd "106.7"); ("F(t5)", qd "106.7");
      ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
      ("F(t8)", qd "106.7"); ("F(t9)", qd "106.7");
      ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
      ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
    ]
  in
  let sens = M.Symbolic.sensitivities thr ~at in
  (* F(t4) and F(t9) do not appear: the loss legs' durations are absorbed
     into the timeout residue E(t3) - ... along the recovery paths *)
  Alcotest.(check int) "12 of the 14 parameters appear" 12 (List.length sens);
  (* every time parameter hurts throughput (negative gradient) *)
  List.iter
    (fun (s : M.Symbolic.sensitivity) ->
      if Var.is_time s.M.Symbolic.var then
        Alcotest.(check bool)
          (Var.name s.M.Symbolic.var ^ " gradient negative")
          true
          (Q.sign s.M.Symbolic.gradient < 0))
    sens;
  (* loss frequencies: f(t4)/f(t9) hurt, f(t5)/f(t8) help *)
  let find name = List.find (fun s -> Var.name s.M.Symbolic.var = name) sens in
  Alcotest.(check bool) "more packet loss hurts" true (Q.sign (find "f(t4)").M.Symbolic.gradient < 0);
  Alcotest.(check bool) "more delivery helps" true (Q.sign (find "f(t5)").M.Symbolic.gradient > 0);
  (* the dominant parameters: medium transit legs carry the biggest
     elasticity (they appear in every successful round trip) *)
  let top = List.hd sens in
  Alcotest.(check bool)
    ("dominant parameter is a transit leg or the timeout, got " ^ Var.name top.M.Symbolic.var)
    true
    (List.mem (Var.name top.M.Symbolic.var) [ "F(t5)"; "F(t8)"; "E(t3)"; "f(t5)"; "f(t8)" ])

let test_elasticity_scale_free () =
  (* elasticity of m = c·x^k w.r.t. x is k, independent of c and the point *)
  let r = Rf.of_poly (Poly.scale (qi 7) (Poly.pow px 3)) in
  let sens = M.Symbolic.sensitivities r ~at:[ ("dx", qi 5) ] in
  match sens with
  | [ s ] -> Alcotest.(check bool) "elasticity = 3" true (Q.equal s.M.Symbolic.elasticity (qi 3))
  | _ -> Alcotest.fail "expected exactly one variable"

let suite =
  ( "sensitivity",
    [
      Alcotest.test_case "polynomial derivative" `Quick test_poly_derivative;
      Alcotest.test_case "product rule" `Quick test_poly_derivative_product_rule;
      Alcotest.test_case "rational-function derivative" `Quick test_ratfun_derivative;
      Alcotest.test_case "matches finite differences" `Quick test_derivative_matches_finite_difference;
      Alcotest.test_case "throughput sensitivities" `Quick test_throughput_sensitivities;
      Alcotest.test_case "elasticity is scale-free" `Quick test_elasticity_scale_free;
    ] )
