(* Tests for the Merlin-Farber Time Petri Net semantics (state classes) and
   the paper's Figure-2 translation from Timed Petri Nets. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Tpn = Tpan_core.Tpn
module Dbm = Tpan_core.Dbm
module TP = Tpan_core.Time_pn
module CG = Tpan_core.Concrete
module Sem = Tpan_core.Semantics
module SW = Tpan_protocols.Stopwait

let qi = Q.of_int

(* --- DBM --- *)

let test_dbm_basics () =
  let d = Dbm.create 2 in
  (* 1 <= x1 <= 3, 2 <= x2 <= 5 *)
  Dbm.constrain d 1 0 (Dbm.Fin (qi 3));
  Dbm.constrain d 0 1 (Dbm.Fin (qi (-1)));
  Dbm.constrain d 2 0 (Dbm.Fin (qi 5));
  Dbm.constrain d 0 2 (Dbm.Fin (qi (-2)));
  Alcotest.(check bool) "consistent" true (Dbm.canonicalize d);
  (* derived: x1 - x2 <= 3 - 2 = 1 *)
  Alcotest.(check int) "tightened difference" 0
    (Dbm.bound_compare (Dbm.get d 1 2) (Dbm.Fin (qi 1)));
  (* adding x2 - x1 <= -4 (x2 + 4 <= x1 <= 3) is contradictory *)
  Dbm.constrain d 2 1 (Dbm.Fin (qi 4));
  Alcotest.(check bool) "still consistent with slack" true (Dbm.canonicalize d);
  let d2 = Dbm.copy d in
  (* x1 - x2 <= -5 forces x2 >= x1 + 5 >= 6, but x2 <= 5 *)
  Dbm.constrain d2 1 2 (Dbm.Fin (qi (-5)));
  Alcotest.(check bool) "inconsistency detected" false (Dbm.canonicalize d2)

let test_dbm_equal_hash () =
  let mk () =
    let d = Dbm.create 1 in
    Dbm.constrain d 1 0 (Dbm.Fin (qi 7));
    Dbm.constrain d 0 1 (Dbm.Fin (qi (-3)));
    ignore (Dbm.canonicalize d);
    d
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "equal" true (Dbm.equal a b);
  Alcotest.(check bool) "same hash" true (Dbm.hash a = Dbm.hash b);
  Dbm.constrain b 1 0 (Dbm.Fin (qi 5));
  ignore (Dbm.canonicalize b);
  Alcotest.(check bool) "different after tightening" false (Dbm.equal a b)

let test_bound_arith () =
  Alcotest.(check bool) "inf absorbs" true (Dbm.bound_add Dbm.Inf (Dbm.Fin (qi 3)) = Dbm.Inf);
  Alcotest.(check bool) "fin add" true
    (Dbm.bound_compare (Dbm.bound_add (Dbm.Fin (qi 2)) (Dbm.Fin (qi 3))) (Dbm.Fin (qi 5)) = 0);
  Alcotest.(check bool) "min" true (Dbm.bound_min Dbm.Inf (Dbm.Fin (qi 1)) = Dbm.Fin (qi 1))

(* --- Time PN semantics --- *)

(* Two transitions racing for one token: t_fast [1,2], t_slow [3,4].
   t_slow can never fire first (its earliest time exceeds t_fast's
   latest). *)
let race_net () =
  let b = Net.builder "race" in
  let p = Net.add_place b ~init:1 "p" in
  let a = Net.add_place b "a" in
  let c = Net.add_place b "c" in
  let _ = Net.add_transition b ~name:"fast" ~inputs:[ (p, 1) ] ~outputs:[ (a, 1) ] in
  let _ = Net.add_transition b ~name:"slow" ~inputs:[ (p, 1) ] ~outputs:[ (c, 1) ] in
  Net.build b

let test_urgency () =
  let net = race_net () in
  let timed =
    TP.make net
      [ ("fast", TP.interval ~max:(qi 2) (qi 1)); ("slow", TP.interval ~max:(qi 4) (qi 3)) ]
  in
  let g = TP.build timed in
  (* only the fast branch is reachable *)
  let markings = TP.reachable_markings g in
  let c = Net.place_of_name net "c" in
  Alcotest.(check bool) "slow branch unreachable" true
    (List.for_all (fun m -> Marking.tokens m c = 0) markings);
  Alcotest.(check int) "two classes (init + fired)" 2 (TP.num_classes g)

let test_overlap_race () =
  (* overlapping intervals: both branches reachable — the nondeterminism
     Min/Max ranges buy, which fixed firing times cannot express *)
  let net = race_net () in
  let timed =
    TP.make net
      [ ("fast", TP.interval ~max:(qi 3) (qi 1)); ("slow", TP.interval ~max:(qi 4) (qi 2)) ]
  in
  let g = TP.build timed in
  let a = Net.place_of_name net "a" and c = Net.place_of_name net "c" in
  let markings = TP.reachable_markings g in
  Alcotest.(check bool) "fast branch reachable" true
    (List.exists (fun m -> Marking.tokens m a = 1) markings);
  Alcotest.(check bool) "slow branch reachable" true
    (List.exists (fun m -> Marking.tokens m c = 1) markings)

let test_persistence_shifts_clocks () =
  (* t1 [2,2] and t2 [3,3] on disjoint tokens: after t1 fires, t2's
     residual interval is [1,1]; it must fire exactly 1 later. *)
  let b = Net.builder "shift" in
  let p1 = Net.add_place b ~init:1 "p1" in
  let p2 = Net.add_place b ~init:1 "p2" in
  let q1 = Net.add_place b "q1" in
  let q2 = Net.add_place b "q2" in
  let _ = Net.add_transition b ~name:"t1" ~inputs:[ (p1, 1) ] ~outputs:[ (q1, 1) ] in
  let _ = Net.add_transition b ~name:"t2" ~inputs:[ (p2, 1) ] ~outputs:[ (q2, 1) ] in
  let net = Net.build b in
  let timed =
    TP.make net
      [ ("t1", TP.interval ~max:(qi 2) (qi 2)); ("t2", TP.interval ~max:(qi 3) (qi 3)) ]
  in
  let g = TP.build timed in
  (* classes: {p1,p2}, {q1,p2} with theta(t2) in [1,1], {q1,q2} *)
  Alcotest.(check int) "three classes" 3 (TP.num_classes g);
  let t2 = Net.trans_of_name net "t2" in
  let mid =
    Array.to_list g.TP.classes
    |> List.find (fun c -> c.TP.enabled = [ t2 ])
  in
  let d = mid.TP.domain in
  Alcotest.(check int) "upper residual = 1" 0 (Dbm.bound_compare (Dbm.get d 1 0) (Dbm.Fin (qi 1)));
  Alcotest.(check int) "lower residual = 1" 0
    (Dbm.bound_compare (Dbm.get d 0 1) (Dbm.Fin (qi (-1))))

let test_make_validation () =
  let net = race_net () in
  Alcotest.check_raises "missing interval"
    (Invalid_argument "Time_pn.make: missing interval for \"slow\"") (fun () ->
      ignore (TP.make net [ ("fast", TP.interval (qi 1)) ]));
  Alcotest.check_raises "bad interval" (Invalid_argument "Time_pn.interval: max < min")
    (fun () -> ignore (TP.interval ~max:(qi 1) (qi 2)))

(* --- Figure 2 translation --- *)

let test_fig2_translation_structure () =
  let ctpn = SW.concrete SW.paper_params in
  let timed, emit_name = TP.of_tpn ctpn in
  let tnet = TP.net timed in
  let src = Tpn.net ctpn in
  Alcotest.(check int) "places = originals + one buffer per transition"
    (Net.num_places src + Net.num_transitions src)
    (Net.num_places tnet);
  Alcotest.(check int) "transitions doubled" (2 * Net.num_transitions src)
    (Net.num_transitions tnet);
  (* absorb of the timeout carries [E,E] = [1000,1000] *)
  let absorb3 = Net.trans_of_name tnet "t3__absorb" in
  let iv = TP.interval_of timed absorb3 in
  Alcotest.(check bool) "absorb interval = [1000,1000]" true
    (Q.equal iv.TP.min (qi 1000) && iv.TP.max = Some (qi 1000));
  let emit5 = Net.trans_of_name tnet (emit_name (Net.trans_of_name src "t5")) in
  let iv5 = TP.interval_of timed emit5 in
  Alcotest.(check bool) "emit interval = [106.7,106.7]" true
    (Q.equal iv5.TP.min (Q.of_decimal_string "106.7"))

let test_fig2_marking_equivalence () =
  (* The translated Time PN reaches exactly the TPN's markings (projected
     onto the original places): the equivalence Figure 2 claims. *)
  let ctpn = SW.concrete SW.paper_params in
  let timed, _ = TP.of_tpn ctpn in
  let g = TP.build timed in
  let np = Net.num_places (Tpn.net ctpn) in
  let projected =
    TP.reachable_markings g
    |> List.map (fun m -> TP.project_marking timed m ~original_places:np)
    |> List.sort_uniq compare
  in
  let cg = CG.build ctpn in
  let tpn_markings =
    Array.to_list cg.Sem.states |> List.map (fun st -> st.Sem.marking) |> List.sort_uniq compare
  in
  Alcotest.(check int) "same marking count" (List.length tpn_markings) (List.length projected);
  Alcotest.(check bool) "same marking sets" true
    (List.for_all (fun m -> List.mem m projected) tpn_markings)

let test_fig2_busy_places_track_rft () =
  (* a buffer place t__busy is markable iff some TPN state fires t
     (RFT(t) > 0 at some state) *)
  let ctpn = SW.concrete SW.paper_params in
  let timed, _ = TP.of_tpn ctpn in
  let g = TP.build timed in
  let cg = CG.build ctpn in
  let src = Tpn.net ctpn in
  let tnet = TP.net timed in
  List.iter
    (fun t ->
      let busy = Net.place_of_name tnet (Net.trans_name src t ^ "__busy") in
      let ever_busy_timepn =
        List.exists (fun m -> Marking.tokens m busy > 0) (TP.reachable_markings g)
      in
      let ever_firing_tpn =
        Array.exists (fun st -> not (Q.is_zero st.Sem.rft.(t))) cg.Sem.states
      in
      Alcotest.(check bool)
        (Printf.sprintf "busy(%s) iff ever firing" (Net.trans_name src t))
        ever_firing_tpn ever_busy_timepn)
    (Net.transitions src)

let test_of_tpn_rejects_symbolic () =
  try
    ignore (TP.of_tpn (SW.symbolic ()));
    Alcotest.fail "symbolic net accepted"
  with Tpn.Unsupported _ -> ()

let suite =
  ( "time_pn",
    [
      Alcotest.test_case "dbm basics" `Quick test_dbm_basics;
      Alcotest.test_case "dbm equality/hash" `Quick test_dbm_equal_hash;
      Alcotest.test_case "bound arithmetic" `Quick test_bound_arith;
      Alcotest.test_case "urgency (max enforced)" `Quick test_urgency;
      Alcotest.test_case "overlapping race" `Quick test_overlap_race;
      Alcotest.test_case "clock shifting (persistence)" `Quick test_persistence_shifts_clocks;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "figure 2: structure" `Quick test_fig2_translation_structure;
      Alcotest.test_case "figure 2: marking equivalence" `Quick test_fig2_marking_equivalence;
      Alcotest.test_case "figure 2: busy places track RFT" `Quick test_fig2_busy_places_track_rft;
      Alcotest.test_case "of_tpn rejects symbolic" `Quick test_of_tpn_rejects_symbolic;
    ] )
