(* Tests for the parametric models: token ring (closed-form cycle time,
   scaling) and pipeline (true concurrency, marked-graph pacing), plus the
   interval evaluation of symbolic expressions. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module Iv = Tpan_symbolic.Interval
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module DG = Tpan_perf.Decision_graph
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module TR = Tpan_protocols.Token_ring
module PL = Tpan_protocols.Pipeline
module SW = Tpan_protocols.Stopwait

(* --- token ring --- *)

let test_token_ring_cycle_closed_form () =
  (* N stations, p = frame/(frame+idle): cycle = N(pass + p*tx) where use's
     firing time is tx+pass *)
  let p = TR.default_params in
  let tpn = TR.concrete p in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let n0 = List.hd res.Tpan_perf.Rates.dg.DG.nodes in
  let cycle = M.mean_time_between_visits res n0 in
  (* 4 stations, p = 1/3: 4*(5 + (1/3)*40) = 4*55/3 = 220/3 *)
  Alcotest.(check bool)
    (Format.asprintf "cycle %a = 220/3" Q.pp cycle)
    true
    (Q.equal cycle (Q.of_ints 220 3))

let test_token_ring_scaling () =
  List.iter
    (fun n ->
      let tpn = TR.concrete { TR.default_params with TR.stations = n } in
      let g = CG.build tpn in
      (* states: 1 decision + 2 firing states per station *)
      Alcotest.(check int) (Printf.sprintf "%d stations -> %d states" n (3 * n)) (3 * n)
        (CG.Graph.num_states g);
      Alcotest.(check int) "decision nodes = stations" n
        (List.length (Sem.branching_states g)))
    [ 1; 2; 4; 8; 16 ]

let test_token_ring_symbolic_closed_form () =
  let tpn = TR.symbolic ~stations:3 in
  let g = SG.build tpn in
  let res = M.Symbolic.analyze g in
  let n0 = List.hd res.Tpan_perf.Rates.dg.DG.nodes in
  let cycle = M.mean_time_between_visits res n0 in
  (* 3 * (f*tx + i*pass) / (f+i) *)
  let f = Poly.var (Var.frequency "frame") and i = Poly.var (Var.frequency "idle") in
  let tx = Poly.var (Var.firing "tx") and pass = Poly.var (Var.firing "pass") in
  let expected =
    Rf.make
      (Poly.scale (Q.of_int 3) (Poly.add (Poly.mul f tx) (Poly.mul i pass)))
      (Poly.add f i)
  in
  Alcotest.(check bool) "symbolic ring cycle" true (Rf.equal cycle expected)

let test_token_ring_fairness () =
  (* each station transmits at the same rate *)
  let tpn = TR.concrete TR.default_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let r0 = M.Concrete.throughput res g (TR.use 0) in
  for i = 1 to TR.default_params.TR.stations - 1 do
    Alcotest.(check bool) "equal shares" true
      (Q.equal r0 (M.Concrete.throughput res g (TR.use i)))
  done

let test_token_ring_sim_agreement () =
  let tpn = TR.concrete TR.default_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let exact = Q.to_float (M.Concrete.throughput res g (TR.use 2)) in
  let stats = Sim.run ~seed:5 ~horizon:(Q.of_int 500_000) tpn in
  let sim = Sim.throughput stats (Net.trans_of_name (Tpn.net tpn) (TR.use 2)) in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.6f vs exact %.6f" sim exact)
    true
    (Float.abs (sim -. exact) /. exact < 0.05)

(* --- pipeline --- *)

let test_pipeline_concurrency () =
  (* the TRG must contain states with several simultaneously positive RFTs *)
  let tpn = PL.concrete PL.default_params in
  let g = CG.build tpn in
  let max_active =
    Array.fold_left
      (fun acc st ->
        let active = Array.fold_left (fun k r -> if Q.is_zero r then k else k + 1) 0 st.Sem.rft in
        Stdlib.max acc active)
      0 g.Sem.states
  in
  Alcotest.(check bool)
    (Printf.sprintf "max concurrent firings = %d >= 3" max_active)
    true (max_active >= 3)

let test_pipeline_pacing () =
  let p = PL.default_params in
  let tpn = PL.concrete p in
  let g = CG.build tpn in
  match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
  | None -> Alcotest.fail "pipeline must reach a steady cycle"
  | Some (period, cycle_states) ->
    (* count deliveries around the cycle *)
    let t = Net.trans_of_name (Tpn.net tpn) PL.t_deliver in
    let deliveries =
      List.fold_left
        (fun acc s ->
          match g.Sem.out.(s) with
          | [ e ] -> acc + List.length (List.filter (( = ) t) e.Sem.completed)
          | _ -> acc)
        0 cycle_states
    in
    Alcotest.(check bool) "delivers at least once per cycle" true (deliveries >= 1);
    let per_packet = Q.div period (Q.of_int deliveries) in
    Alcotest.(check bool)
      (Format.asprintf "per-packet %a = bottleneck %a" Q.pp per_packet Q.pp (PL.bottleneck p))
      true
      (Q.equal per_packet (PL.bottleneck p))

let test_pipeline_sim () =
  let p = PL.default_params in
  let tpn = PL.concrete p in
  let net = Tpn.net tpn in
  let stats = Sim.run ~seed:8 ~horizon:(Q.of_int 100_000) tpn in
  let thr = Sim.throughput stats (Net.trans_of_name net PL.t_deliver) in
  let expected = 1. /. Q.to_float (PL.bottleneck p) in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.6f vs 1/bottleneck %.6f" thr expected)
    true
    (Float.abs (thr -. expected) /. expected < 0.01)

let test_pipeline_uniform () =
  (* uniform delays d: adjacent sums are all 2d *)
  let p = { PL.hop_delays = List.map Q.of_int [ 10; 10; 10 ]; inject_delay = Q.of_int 10 } in
  Alcotest.(check bool) "uniform bottleneck = 2d" true (Q.equal (PL.bottleneck p) (Q.of_int 20));
  let tpn = PL.concrete p in
  let g = CG.build tpn in
  match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
  | Some (period, states) ->
    let t = Net.trans_of_name (Tpn.net tpn) PL.t_deliver in
    let deliveries =
      List.fold_left
        (fun acc s ->
          match g.Sem.out.(s) with
          | [ e ] -> acc + List.length (List.filter (( = ) t) e.Sem.completed)
          | _ -> acc)
        0 states
    in
    Alcotest.(check bool) "one packet per 20ms" true
      (Q.equal (Q.div period (Q.of_int deliveries)) (Q.of_int 20))
  | None -> Alcotest.fail "expected cycle"

(* --- interval evaluation --- *)

let test_interval_arith () =
  let a = Iv.of_ints 1 3 and b = Iv.of_ints (-2) 2 in
  Alcotest.(check bool) "add" true (Iv.equal (Iv.add a b) (Iv.of_ints (-1) 5));
  Alcotest.(check bool) "mul" true (Iv.equal (Iv.mul a b) (Iv.of_ints (-6) 6));
  Alcotest.(check bool) "sub" true (Iv.equal (Iv.sub a a) (Iv.of_ints (-2) 2));
  Alcotest.(check bool) "pow even spanning" true (Iv.equal (Iv.pow b 2) (Iv.of_ints 0 4));
  Alcotest.(check bool) "pow odd" true (Iv.equal (Iv.pow b 3) (Iv.of_ints (-8) 8));
  Alcotest.(check bool) "div" true (Iv.equal (Iv.div a (Iv.of_ints 2 4)) (Iv.make (Q.of_ints 1 4) (Q.of_ints 3 2)));
  Alcotest.check_raises "div by spanning zero" Division_by_zero (fun () ->
      ignore (Iv.div a b));
  Alcotest.check_raises "bad interval" (Invalid_argument "Interval.make: hi < lo") (fun () ->
      ignore (Iv.of_ints 3 1))

let test_interval_point_degenerates () =
  (* point intervals give exact evaluation *)
  let x = Poly.var (Var.param "ix") and y = Poly.var (Var.param "iy") in
  let r = Rf.make (Poly.add (Poly.mul x y) Poly.one) (Poly.add x y) in
  let env v = match Var.name v with "ix" -> Iv.point (Q.of_int 2) | _ -> Iv.point (Q.of_int 3) in
  let got = Iv.eval_ratfun env r in
  Alcotest.(check bool) "point eval" true
    (Iv.is_point got && Q.equal got.Iv.lo (Q.of_ints 7 5))

let test_interval_bounds_throughput () =
  (* throughput bounds when transit time ranges over [95, 115] ms: the
     bounds must bracket the exact values at sampled transit times *)
  let stpn = SW.symbolic () in
  let sg = SG.build stpn in
  let sres = M.Symbolic.analyze sg in
  let thr = M.Symbolic.throughput sres sg SW.t_process_ack in
  let qd = Q.of_decimal_string in
  let env v =
    match Var.name v with
    | "E(t3)" -> Iv.point (Q.of_int 1000)
    | "F(t1)" | "F(t2)" | "F(t3)" -> Iv.point Q.one
    | "F(t4)" | "F(t5)" | "F(t8)" | "F(t9)" -> Iv.make (Q.of_int 95) (Q.of_int 115)
    | "F(t6)" | "F(t7)" -> Iv.point (qd "13.5")
    | "f(t4)" | "f(t9)" -> Iv.point (Q.of_ints 1 20)
    | "f(t5)" | "f(t8)" -> Iv.point (Q.of_ints 19 20)
    | other -> Alcotest.fail ("unexpected var " ^ other)
  in
  let bounds = Iv.eval_ratfun env thr in
  Alcotest.(check bool) "bounds are proper" true (Q.compare bounds.Iv.lo bounds.Iv.hi < 0);
  List.iter
    (fun transit ->
      let v =
        M.Symbolic.eval_at thr
          [
            ("E(t3)", Q.of_int 1000);
            ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
            ("F(t4)", Q.of_int transit); ("F(t5)", Q.of_int transit);
            ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
            ("F(t8)", Q.of_int transit); ("F(t9)", Q.of_int transit);
            ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
            ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
          ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "exact value at transit=%d within bounds" transit)
        true (Iv.contains bounds v))
    [ 95; 100; 106; 115 ]

let prop_interval_mul_sound =
  QCheck2.Test.make ~name:"interval multiplication is sound" ~count:300
    QCheck2.Gen.(
      let e = int_range (-10) 10 in
      let* a = e and* b = e and* c = e and* d = e in
      let* x = e and* y = e in
      return (a, b, c, d, x, y))
    (fun (a, b, c, d, x, y) ->
      let lo1 = min a b and hi1 = max a b in
      let lo2 = min c d and hi2 = max c d in
      let i1 = Iv.of_ints lo1 hi1 and i2 = Iv.of_ints lo2 hi2 in
      let x = max lo1 (min hi1 x) and y = max lo2 (min hi2 y) in
      Iv.contains (Iv.mul i1 i2) (Q.of_int (x * y)))

let suite =
  ( "more_protocols",
    [
      Alcotest.test_case "token ring closed-form cycle" `Quick test_token_ring_cycle_closed_form;
      Alcotest.test_case "token ring scaling (states = 3N)" `Quick test_token_ring_scaling;
      Alcotest.test_case "token ring symbolic cycle" `Quick test_token_ring_symbolic_closed_form;
      Alcotest.test_case "token ring fairness" `Quick test_token_ring_fairness;
      Alcotest.test_case "token ring vs simulation" `Slow test_token_ring_sim_agreement;
      Alcotest.test_case "pipeline concurrency" `Quick test_pipeline_concurrency;
      Alcotest.test_case "pipeline pacing = adjacent-sum bottleneck" `Quick test_pipeline_pacing;
      Alcotest.test_case "pipeline vs simulation" `Slow test_pipeline_sim;
      Alcotest.test_case "pipeline uniform delays" `Quick test_pipeline_uniform;
      Alcotest.test_case "interval arithmetic" `Quick test_interval_arith;
      Alcotest.test_case "interval point evaluation" `Quick test_interval_point_degenerates;
      Alcotest.test_case "interval throughput bounds" `Quick test_interval_bounds_throughput;
      QCheck_alcotest.to_alcotest prop_interval_mul_sound;
    ] )
