(* Tests for ranged firing times (the paper's proposed extension):
   TPN + ranges analyzed through the Time-PN state-class engine. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module R = Tpan_core.Ranged
module TP = Tpan_core.Time_pn
module CG = Tpan_core.Concrete
module Sem = Tpan_core.Semantics
module SW = Tpan_protocols.Stopwait

let qi = Q.of_int

let widen_transit lo hi =
  [ ("t4", (qi lo, qi hi)); ("t5", (qi lo, qi hi)); ("t8", (qi lo, qi hi)); ("t9", (qi lo, qi hi)) ]

let test_point_ranges_match_base_model () =
  (* with degenerate ranges the reachable markings equal the base TPN's *)
  let base = SW.concrete SW.paper_params in
  let g = R.of_tpn base in
  let ranged = R.reachable_markings g in
  let cg = CG.build base in
  let tpn_markings =
    Array.to_list cg.Sem.states |> List.map (fun st -> st.Sem.marking) |> List.sort_uniq compare
  in
  Alcotest.(check int) "same count" (List.length tpn_markings) (List.length ranged);
  Alcotest.(check bool) "same sets" true (List.for_all (fun m -> List.mem m ranged) tpn_markings)

let test_safe_under_generous_timeout () =
  (* transit anywhere in [100,115]: worst-case round trip 115+13.5+115 =
     243.5 < 1000, so the ranged protocol stays safe with the same
     markings *)
  let base = SW.concrete SW.paper_params in
  let g = R.of_tpn ~widen:(widen_transit 100 115) base in
  Alcotest.(check bool) "safe" true (R.safe g);
  Alcotest.(check int) "still 9 markings" 9 (List.length (R.reachable_markings g))

let test_unsafe_under_tight_timeout () =
  (* timeout 220 < worst-case round trip 243.5: a slow packet can still be
     in flight when the retransmission happens -> second token in the
     medium -> the safeness assumption breaks (multiple enabledness) *)
  let base = SW.concrete { SW.paper_params with SW.timeout = qi 220 } in
  let g = R.of_tpn ~widen:(widen_transit 100 115) base in
  Alcotest.(check bool) "not safe" false (R.safe g)

let test_boundary_timeout () =
  (* fast path round trip with ranges [100,115] on transit and 13.5
     processing: min RTT = 213.5; a timeout of 230 sits inside
     [213.5, 243.5], so SOME durations race the timeout: must be unsafe;
     a timeout of 244 exceeds the max: safe *)
  let mk timeout = R.of_tpn ~widen:(widen_transit 100 115)
      (SW.concrete { SW.paper_params with SW.timeout = qi timeout })
  in
  Alcotest.(check bool) "244 safe" true (R.safe (mk 244));
  Alcotest.(check bool) "230 unsafe" false (R.safe (mk 230))

let test_spec_validation () =
  Alcotest.check_raises "max < min" (Invalid_argument "Ranged.spec: firing max < min")
    (fun () -> ignore (R.spec ~firing:(qi 5, qi 2) ()));
  Alcotest.check_raises "negative" (Invalid_argument "Ranged.spec: negative time") (fun () ->
      ignore (R.spec ~enabling:(qi (-1)) ()));
  let base = SW.concrete SW.paper_params in
  Alcotest.check_raises "bad widen" (Invalid_argument "Ranged.of_tpn: bad widening interval")
    (fun () -> ignore (R.of_tpn ~widen:[ ("t5", (qi 10, qi 5)) ] base))

let test_translation_structure () =
  let base = SW.concrete SW.paper_params in
  let g = R.of_tpn ~widen:[ ("t5", (qi 100, qi 115)) ] base in
  let timed = R.to_time_pn g in
  let tnet = TP.net timed in
  let iv = TP.interval_of timed (Net.trans_of_name tnet "t5__emit") in
  Alcotest.(check bool) "emit interval is the range" true
    (Q.equal iv.TP.min (qi 100) && iv.TP.max = Some (qi 115));
  let iv3 = TP.interval_of timed (Net.trans_of_name tnet "t3__absorb") in
  Alcotest.(check bool) "timeout absorb stays exact" true
    (Q.equal iv3.TP.min (qi 1000) && iv3.TP.max = Some (qi 1000))

let suite =
  ( "ranged",
    [
      Alcotest.test_case "point ranges = base model" `Quick test_point_ranges_match_base_model;
      Alcotest.test_case "safe under generous timeout" `Quick test_safe_under_generous_timeout;
      Alcotest.test_case "unsafe under tight timeout" `Quick test_unsafe_under_tight_timeout;
      Alcotest.test_case "boundary timeouts" `Quick test_boundary_timeout;
      Alcotest.test_case "spec validation" `Quick test_spec_validation;
      Alcotest.test_case "translation structure" `Quick test_translation_structure;
    ] )
