(* Tests for the symbolic expression engine: variables, affine expressions,
   polynomials, rational functions. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun

let qi = Q.of_int

(* --- Var --- *)

let test_var_interning () =
  let a = Var.firing "t5" and b = Var.firing "t5" in
  Alcotest.(check bool) "same id" true (Var.equal a b);
  Alcotest.(check bool) "distinct kinds distinct" false (Var.equal (Var.firing "t5") (Var.enabling "t5"));
  Alcotest.(check string) "E name" "E(t3)" (Var.name (Var.enabling "t3"));
  Alcotest.(check string) "F name" "F(t5)" (Var.name (Var.firing "t5"));
  Alcotest.(check string) "f name" "f(t4)" (Var.name (Var.frequency "t4"));
  Alcotest.(check string) "param name" "lambda" (Var.name (Var.param "lambda"));
  Alcotest.(check bool) "of_id roundtrip" true (Var.equal a (Var.of_id (Var.id a)));
  Alcotest.(check bool) "time kinds" true (Var.is_time (Var.enabling "x") && Var.is_time (Var.firing "x"));
  Alcotest.(check bool) "freq not time" false (Var.is_time (Var.frequency "x"))

(* --- Linexpr --- *)

let e3 = Lin.var (Var.enabling "t3")
let f5 = Lin.var (Var.firing "t5")
let f6 = Lin.var (Var.firing "t6")

let lin = Alcotest.testable Lin.pp Lin.equal

let test_linexpr_arith () =
  let a = Lin.add e3 (Lin.scale (qi 2) f5) in
  Alcotest.check lin "sub cancels" e3 (Lin.sub a (Lin.scale (qi 2) f5));
  Alcotest.check lin "neg/neg" a (Lin.neg (Lin.neg a));
  Alcotest.(check bool) "const detection" true (Lin.is_const (Lin.sub a a));
  Alcotest.(check bool) "to_q_opt" true (Q.equal (qi 0) (Option.get (Lin.to_q_opt (Lin.sub a a))));
  Alcotest.(check bool) "non-const" true (Lin.to_q_opt a = None)

let test_linexpr_eval_subst () =
  let env v =
    match Var.name v with "E(t3)" -> qi 1000 | "F(t5)" -> Q.of_decimal_string "106.7" | _ -> Q.zero
  in
  let rem = Lin.sub e3 f5 in
  Alcotest.(check bool) "eval 893.3" true (Q.equal (Q.of_decimal_string "893.3") (Lin.eval env rem));
  (* substitute E(t3) := F(t5) + F(t6) + 10 *)
  let s v = if Var.equal v (Var.enabling "t3") then Some (Lin.add (Lin.add f5 f6) (Lin.of_int 10)) else None in
  Alcotest.check lin "subst" (Lin.add f6 (Lin.of_int 10)) (Lin.subst s rem)

let test_linexpr_pp () =
  let s e = Format.asprintf "%a" Lin.pp e in
  Alcotest.(check string) "pretty" "E(t3) - F(t5)" (s (Lin.sub e3 f5));
  Alcotest.(check string) "const" "0" (s Lin.zero)

(* --- Poly --- *)

let poly = Alcotest.testable Poly.pp Poly.equal
let x = Poly.var (Var.param "x")
let y = Poly.var (Var.param "y")

let test_poly_arith () =
  let p = Poly.add (Poly.mul x y) (Poly.scale (qi 2) x) in
  Alcotest.check poly "distributes" (Poly.add (Poly.mul x x) (Poly.mul x y))
    (Poly.mul x (Poly.add x y));
  Alcotest.check poly "sub self" Poly.zero (Poly.sub p p);
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  Alcotest.(check int) "degree zero" (-1) (Poly.degree Poly.zero);
  Alcotest.check poly "pow" (Poly.mul x (Poly.mul x x)) (Poly.pow x 3);
  Alcotest.(check bool) "binomial" true
    (Poly.equal
       (Poly.pow (Poly.add x y) 2)
       (Poly.add (Poly.pow x 2) (Poly.add (Poly.scale (qi 2) (Poly.mul x y)) (Poly.pow y 2))))

let test_poly_divide_exact () =
  let p = Poly.mul (Poly.add x y) (Poly.sub x y) in
  (match Poly.divide_exact p (Poly.add x y) with
   | Some q -> Alcotest.check poly "x2-y2 / (x+y)" (Poly.sub x y) q
   | None -> Alcotest.fail "expected exact division");
  (match Poly.divide_exact (Poly.add (Poly.pow x 2) Poly.one) (Poly.add x y) with
   | Some _ -> Alcotest.fail "x^2+1 not divisible by x+y"
   | None -> ());
  Alcotest.check_raises "zero divisor" Division_by_zero (fun () ->
      ignore (Poly.divide_exact x Poly.zero))

let test_poly_eval () =
  let env v = match Var.name v with "x" -> qi 3 | "y" -> qi 4 | _ -> Q.zero in
  Alcotest.(check bool) "x^2+y = 13" true
    (Q.equal (qi 13) (Poly.eval env (Poly.add (Poly.pow x 2) y)))

let test_poly_subst () =
  (* substitute y := x+1 into x*y: expect x^2 + x *)
  let s v = if Var.equal v (Var.param "y") then Some (Poly.add x Poly.one) else None in
  Alcotest.check poly "subst" (Poly.add (Poly.pow x 2) x) (Poly.subst s (Poly.mul x y))

let test_poly_pp () =
  let s p = Format.asprintf "%a" Poly.pp p in
  Alcotest.(check string) "zero" "0" (s Poly.zero);
  Alcotest.(check string) "simple" "x^2 + 2*x*y" (s (Poly.add (Poly.pow x 2) (Poly.scale (qi 2) (Poly.mul x y))))

(* --- Ratfun --- *)

let rf = Alcotest.testable Rf.pp Rf.equal

let test_ratfun_basic () =
  let r = Rf.make (Poly.sub (Poly.pow x 2) (Poly.pow y 2)) (Poly.add x y) in
  Alcotest.check rf "auto-cancel" (Rf.of_poly (Poly.sub x y)) r;
  Alcotest.check rf "a/b * b/a = 1" Rf.one
    (Rf.mul (Rf.make x y) (Rf.make y x));
  Alcotest.check_raises "zero den" Division_by_zero (fun () -> ignore (Rf.make x Poly.zero))

let test_ratfun_field_laws () =
  let a = Rf.make x (Poly.add x y) in
  let b = Rf.make y (Poly.add x y) in
  (* the stop-and-wait branching probabilities sum to one *)
  Alcotest.check rf "p + q = 1" Rf.one (Rf.add a b);
  Alcotest.check rf "a - a = 0" Rf.zero (Rf.sub a a);
  Alcotest.check rf "a / a = 1" Rf.one (Rf.div a a);
  Alcotest.check rf "inv inv" a (Rf.inv (Rf.inv a));
  Alcotest.check rf "distributes" (Rf.add (Rf.mul a a) (Rf.mul a b)) (Rf.mul a (Rf.add a b))

let test_ratfun_eval () =
  let env v = match Var.name v with "x" -> qi 1 | "y" -> qi 19 | _ -> Q.zero in
  let p_loss = Rf.make x (Poly.add x y) in
  Alcotest.(check bool) "eval 0.05" true (Q.equal (Q.of_ints 1 20) (Rf.eval env p_loss));
  Alcotest.check_raises "den vanishes" Division_by_zero (fun () ->
      ignore (Rf.eval (fun _ -> Q.zero) p_loss))

let test_ratfun_subst () =
  let r = Rf.make x y in
  let s v = if Var.equal v (Var.param "y") then Some (Poly.scale (qi 2) x) else None in
  Alcotest.check rf "subst y:=2x" (Rf.of_q (Q.of_ints 1 2)) (Rf.subst s r)

(* Properties: field laws on random small rational functions. *)

let gen_poly =
  QCheck2.Gen.(
    let* c1 = int_range (-3) 3 in
    let* c2 = int_range (-3) 3 in
    let* c3 = int_range (-3) 3 in
    let* e1 = int_range 0 2 in
    let* e2 = int_range 0 2 in
    return
      (Poly.add
         (Poly.scale (qi c1) (Poly.mul (Poly.pow x e1) (Poly.pow y e2)))
         (Poly.add (Poly.scale (qi c2) x) (Poly.const (qi c3)))))

let gen_rf =
  QCheck2.Gen.(
    let* n = gen_poly in
    let* d = gen_poly in
    return (if Poly.is_zero d then Rf.of_poly n else Rf.make n d))

let prop_rf_add_comm =
  QCheck2.Test.make ~name:"ratfun add commutative" ~count:200
    QCheck2.Gen.(pair gen_rf gen_rf)
    (fun (a, b) -> Rf.equal (Rf.add a b) (Rf.add b a))

let prop_rf_mul_assoc =
  QCheck2.Test.make ~name:"ratfun mul associative" ~count:150
    QCheck2.Gen.(triple gen_rf gen_rf gen_rf)
    (fun (a, b, c) -> Rf.equal (Rf.mul a (Rf.mul b c)) (Rf.mul (Rf.mul a b) c))

let prop_rf_div_mul_cancel =
  QCheck2.Test.make ~name:"(a/b)*b = a" ~count:200
    QCheck2.Gen.(pair gen_rf gen_rf)
    (fun (a, b) -> Rf.is_zero b || Rf.equal a (Rf.mul (Rf.div a b) b))

let prop_poly_divide_exact_roundtrip =
  QCheck2.Test.make ~name:"p*d / d = p" ~count:200
    QCheck2.Gen.(pair gen_poly gen_poly)
    (fun (p, d) ->
      Poly.is_zero d
      ||
      match Poly.divide_exact (Poly.mul p d) d with
      | Some q -> Poly.equal p q
      | None -> false)

(* --- multivariate GCD and canonical reduction --- *)

let test_poly_gcd () =
  let q2 = Q.of_int 2 in
  let a = Poly.mul (Poly.pow (Poly.add x y) 2) (Poly.sub x y) in
  let b = Poly.mul (Poly.add x y) (Poly.pow x 2) in
  Alcotest.check poly "common factor" (Poly.add x y) (Poly.gcd a b);
  (* univariate *)
  let u = Poly.sub (Poly.pow x 2) Poly.one in
  let v = Poly.add (Poly.pow x 2) (Poly.add (Poly.scale q2 x) Poly.one) in
  Alcotest.check poly "x+1" (Poly.add x Poly.one) (Poly.gcd u v);
  (* coprime *)
  Alcotest.check poly "coprime" Poly.one (Poly.gcd (Poly.add x Poly.one) (Poly.add y Poly.one));
  (* monomials *)
  let z = Poly.var (Var.param "z") in
  Alcotest.check poly "monomial gcd" (Poly.mul x y)
    (Poly.gcd (Poly.mul x (Poly.mul y z)) (Poly.mul x (Poly.pow y 2)));
  (* zero cases *)
  Alcotest.check poly "gcd 0 p = monic p" x (Poly.gcd Poly.zero (Poly.scale (qi 3) x));
  Alcotest.check poly "gcd 0 0 = 0" Poly.zero (Poly.gcd Poly.zero Poly.zero);
  (* constants *)
  Alcotest.check poly "const gcd" Poly.one (Poly.gcd (Poly.of_int 6) (Poly.of_int 4))

let prop_gcd_divides_both =
  QCheck2.Test.make ~name:"gcd divides both arguments" ~count:150
    QCheck2.Gen.(pair gen_poly gen_poly)
    (fun (a, b) ->
      let g = Poly.gcd a b in
      if Poly.is_zero g then Poly.is_zero a && Poly.is_zero b
      else
        Poly.divide_exact a g <> None && Poly.divide_exact b g <> None)

let prop_gcd_of_products =
  (* gcd(c*a, c*b) is divisible by (monic) c *)
  QCheck2.Test.make ~name:"common factor is found" ~count:100
    QCheck2.Gen.(triple gen_poly gen_poly gen_poly)
    (fun (a, b, c) ->
      if Poly.is_zero c then true
      else begin
        let g = Poly.gcd (Poly.mul c a) (Poly.mul c b) in
        Poly.is_zero g || Poly.divide_exact g (snd (Poly.monic_factor c)) <> None
      end)

let test_ratfun_reduce () =
  (* build an unreduced fraction through raw polynomials *)
  let n = Poly.mul (Poly.add x y) x in
  let d = Poly.mul (Poly.add x y) y in
  let r = Rf.make n d in
  let reduced = Rf.reduce r in
  Alcotest.check rf "reduce cancels" (Rf.reduce (Rf.make x y)) reduced;
  Alcotest.(check bool) "same value" true (Rf.equal r reduced);
  (* num/den of the reduced form are coprime *)
  Alcotest.check poly "coprime after reduce" Poly.one
    (Poly.gcd (Rf.num reduced) (Rf.den reduced))

let test_throughput_is_canonical () =
  (* the flagship payoff: the general stop-and-wait throughput reduces to
     f(t8)f(t5) over a 15-term denominator *)
  let module SG = Tpan_core.Symbolic in
  let module M = Tpan_perf.Measures in
  let module SW = Tpan_protocols.Stopwait in
  let g = SG.build (SW.symbolic ()) in
  let res = M.Symbolic.analyze g in
  let thr = M.Symbolic.throughput res g SW.t_process_ack in
  let f n = Poly.var (Var.frequency n) in
  Alcotest.check poly "numerator = f(t8)f(t5)" (Poly.mul (f "t8") (f "t5")) (Rf.num thr);
  Alcotest.(check int) "denominator has 15 terms" 15 (Poly.size (Rf.den thr));
  Alcotest.check poly "fully reduced" Poly.one (Poly.gcd (Rf.num thr) (Rf.den thr))

let suite =
  ( "symbolic",
    [
      Alcotest.test_case "var interning" `Quick test_var_interning;
      Alcotest.test_case "linexpr arithmetic" `Quick test_linexpr_arith;
      Alcotest.test_case "linexpr eval/subst" `Quick test_linexpr_eval_subst;
      Alcotest.test_case "linexpr pp" `Quick test_linexpr_pp;
      Alcotest.test_case "poly arithmetic" `Quick test_poly_arith;
      Alcotest.test_case "poly exact division" `Quick test_poly_divide_exact;
      Alcotest.test_case "poly eval" `Quick test_poly_eval;
      Alcotest.test_case "poly subst" `Quick test_poly_subst;
      Alcotest.test_case "poly pp" `Quick test_poly_pp;
      Alcotest.test_case "ratfun basics" `Quick test_ratfun_basic;
      Alcotest.test_case "ratfun field laws" `Quick test_ratfun_field_laws;
      Alcotest.test_case "ratfun eval" `Quick test_ratfun_eval;
      Alcotest.test_case "ratfun subst" `Quick test_ratfun_subst;
      QCheck_alcotest.to_alcotest prop_rf_add_comm;
      QCheck_alcotest.to_alcotest prop_rf_mul_assoc;
      QCheck_alcotest.to_alcotest prop_rf_div_mul_cancel;
      QCheck_alcotest.to_alcotest prop_poly_divide_exact_roundtrip;
      Alcotest.test_case "poly gcd" `Quick test_poly_gcd;
      QCheck_alcotest.to_alcotest prop_gcd_divides_both;
      QCheck_alcotest.to_alcotest prop_gcd_of_products;
      Alcotest.test_case "ratfun reduce" `Quick test_ratfun_reduce;
      Alcotest.test_case "throughput expression is canonical" `Quick test_throughput_is_canonical;
    ] )
