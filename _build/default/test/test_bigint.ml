(* Unit and property tests for Tpan_mathkit.Bigint. *)

module B = Tpan_mathkit.Bigint

let b = Alcotest.testable B.pp B.equal

let check_b = Alcotest.check b

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int)) (string_of_int n) (Some n) (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1 lsl 40; -(1 lsl 40); max_int; min_int ]

let test_to_string () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "one" "1" (B.to_string B.one);
  Alcotest.(check string) "neg" "-12345" (B.to_string (B.of_int (-12345)));
  Alcotest.(check string) "big" "1000000000000000000000" (B.to_string (B.of_string "1000000000000000000000"));
  Alcotest.(check string) "padded chunks" "10000000" (B.to_string (B.of_string "10000000"))

let test_of_string_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [ "0"; "7"; "-7"; "123456789012345678901234567890"; "-999999999999999999999999" ]

let test_add_sub () =
  let a = B.of_string "123456789123456789123456789" in
  let c = B.of_string "987654321987654321" in
  check_b "a+c-c = a" a (B.sub (B.add a c) c);
  check_b "a-a = 0" B.zero (B.sub a a);
  check_b "a + (-a) = 0" B.zero (B.add a (B.neg a))

let test_mul () =
  let a = B.of_string "123456789" in
  let c = B.of_string "987654321" in
  check_b "known product" (B.of_string "121932631112635269") (B.mul a c);
  check_b "by zero" B.zero (B.mul a B.zero);
  check_b "sign" (B.neg (B.mul a c)) (B.mul (B.neg a) c)

let test_factorial () =
  let rec fact n = if n = 0 then B.one else B.mul (B.of_int n) (fact (n - 1)) in
  Alcotest.(check string) "50!"
    "30414093201713378043612608166064768844377641568960512000000000000"
    (B.to_string (fact 50))

let test_divmod () =
  let check_pair a bdiv =
    let q, r = B.divmod a bdiv in
    check_b "a = q*b + r" a (B.add (B.mul q bdiv) r);
    Alcotest.(check bool) "|r| < |b|" true (B.compare (B.abs r) (B.abs bdiv) < 0)
  in
  check_pair (B.of_string "123456789123456789") (B.of_string "987654321");
  check_pair (B.of_string "-123456789123456789") (B.of_string "987654321");
  check_pair (B.of_string "123456789123456789") (B.of_string "-987654321");
  check_pair (B.of_string "5") (B.of_string "7");
  check_pair (B.of_string "100000000000000000000000000000000") (B.of_string "3");
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero))

let test_divmod_knuth_addback () =
  (* Exercises the rare "add back" branch of algorithm D with a divisor whose
     top limb forces overestimated quotient digits. *)
  let a = B.sub (B.pow (B.of_int 2) 120) B.one in
  let d = B.add (B.pow (B.of_int 2) 60) B.one in
  let q, r = B.divmod a d in
  check_b "identity" a (B.add (B.mul q d) r)

let test_gcd () =
  check_b "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  check_b "gcd(0,5)" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  check_b "gcd(-12,18)" (B.of_int 6) (B.gcd (B.of_int (-12)) (B.of_int 18));
  check_b "gcd(0,0)" B.zero (B.gcd B.zero B.zero)

let test_pow () =
  check_b "2^62" (B.of_string "4611686018427387904") (B.pow (B.of_int 2) 62);
  check_b "x^0" B.one (B.pow (B.of_int 123) 0)

let test_compare () =
  Alcotest.(check bool) "neg < pos" true (B.compare (B.of_int (-5)) (B.of_int 3) < 0);
  Alcotest.(check bool) "longer wins" true
    (B.compare (B.of_string "100000000000000") (B.of_string "99999999999999") > 0);
  Alcotest.(check bool) "neg longer loses" true
    (B.compare (B.of_string "-100000000000000") (B.of_string "-99999999999999") < 0)

let test_to_float () =
  Alcotest.(check (float 1e-9)) "small" 42.0 (B.to_float (B.of_int 42));
  Alcotest.(check (float 1e6)) "2^70" (Float.pow 2. 70.) (B.to_float (B.pow (B.of_int 2) 70))

(* Property tests *)

let arb_small = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let prop_add_matches_int =
  QCheck2.Test.make ~name:"bigint add matches int add" ~count:500
    QCheck2.Gen.(pair arb_small arb_small)
    (fun (x, y) -> B.to_int_opt (B.add (B.of_int x) (B.of_int y)) = Some (x + y))

let prop_mul_matches_int =
  QCheck2.Test.make ~name:"bigint mul matches int mul" ~count:500
    QCheck2.Gen.(pair arb_small arb_small)
    (fun (x, y) -> B.to_int_opt (B.mul (B.of_int x) (B.of_int y)) = Some (x * y))

let gen_big =
  (* Random bignum from a random decimal string, occasionally negative. *)
  QCheck2.Gen.(
    let* digits = int_range 1 60 in
    let* sign = bool in
    let* ds = list_size (return digits) (int_range 0 9) in
    let s = String.concat "" (List.map string_of_int ds) in
    let s = if s = "" then "0" else s in
    return (if sign then B.neg (B.of_string s) else B.of_string s))

let prop_divmod_identity =
  QCheck2.Test.make ~name:"divmod identity on random bignums" ~count:300
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, d) ->
      if B.is_zero d then true
      else begin
        let q, r = B.divmod a d in
        B.equal a (B.add (B.mul q d) r)
        && B.compare (B.abs r) (B.abs d) < 0
        && (B.is_zero r || B.sign r = B.sign a)
      end)

let prop_mul_commutative =
  QCheck2.Test.make ~name:"mul commutative" ~count:300
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, c) -> B.equal (B.mul a c) (B.mul c a))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"to_string/of_string roundtrip" ~count:300 gen_big
    (fun a -> B.equal a (B.of_string (B.to_string a)))

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:300
    QCheck2.Gen.(pair gen_big gen_big)
    (fun (a, c) ->
      let g = B.gcd a c in
      if B.is_zero g then B.is_zero a && B.is_zero c
      else B.is_zero (B.rem a g) && B.is_zero (B.rem c g))

let suite =
  ( "bigint",
    [
      Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
      Alcotest.test_case "to_string" `Quick test_to_string;
      Alcotest.test_case "of_string roundtrip" `Quick test_of_string_roundtrip;
      Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "factorial 50" `Quick test_factorial;
      Alcotest.test_case "divmod" `Quick test_divmod;
      Alcotest.test_case "divmod add-back branch" `Quick test_divmod_knuth_addback;
      Alcotest.test_case "gcd" `Quick test_gcd;
      Alcotest.test_case "pow" `Quick test_pow;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "to_float" `Quick test_to_float;
      QCheck_alcotest.to_alcotest prop_add_matches_int;
      QCheck_alcotest.to_alcotest prop_mul_matches_int;
      QCheck_alcotest.to_alcotest prop_divmod_identity;
      QCheck_alcotest.to_alcotest prop_mul_commutative;
      QCheck_alcotest.to_alcotest prop_string_roundtrip;
      QCheck_alcotest.to_alcotest prop_gcd_divides;
    ] )
