(* Tests for the Markovian (exponential-delay) comparator. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module DG = Tpan_perf.Decision_graph
module Exp = Tpan_perf.Exponential
module M = Tpan_perf.Measures
module PL = Tpan_protocols.Pipeline
module TR = Tpan_protocols.Token_ring

let qi = Q.of_int

let test_single_loop () =
  (* one transition looping with mean 4: CTMC with a single state, rate 1/4;
     throughput = 1/4 *)
  let b = Net.builder "loop" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let tpn = Tpn.make (Net.build b) [ ("t", Tpn.spec ~firing:(Tpn.Fixed (qi 4)) ()) ] in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  Alcotest.(check int) "one state" 1 (Array.length pi);
  Alcotest.(check bool) "pi = 1" true (Q.equal pi.(0) Q.one);
  Alcotest.(check bool) "throughput 1/4" true
    (Q.equal (Exp.throughput c ~steady:pi 0) (Q.of_ints 1 4))

let test_two_state_chain () =
  (* ping-pong with means 2 and 6: pi proportional to sojourn times
     (pi_a = 2/8? careful: pi solves pi_a * (1/2) = pi_b * (1/6):
     pi_a/pi_b = (1/6)/(1/2) = 1/3 -> pi_a = 1/4, pi_b = 3/4.
     throughput(go) = pi_a * 1/2 = 1/8; same for back (cycle = 8). *)
  let b = Net.builder "pingpong" in
  let a = Net.add_place b ~init:1 "a" in
  let c_ = Net.add_place b "c" in
  let _ = Net.add_transition b ~name:"go" ~inputs:[ (a, 1) ] ~outputs:[ (c_, 1) ] in
  let _ = Net.add_transition b ~name:"back" ~inputs:[ (c_, 1) ] ~outputs:[ (a, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("go", Tpn.spec ~firing:(Tpn.Fixed (qi 2)) ());
        ("back", Tpn.spec ~firing:(Tpn.Fixed (qi 6)) ());
      ]
  in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  Alcotest.(check bool) "pi sums to 1" true
    (Q.equal Q.one (Array.fold_left Q.add Q.zero pi));
  let thr = Exp.throughput c ~steady:pi 0 in
  Alcotest.(check bool) "throughput = 1/8 (cycle of means)" true (Q.equal thr (Q.of_ints 1 8));
  (* for a sequential cycle, exponential and deterministic means agree *)
  ()

let test_race_probabilities () =
  (* lose (freq 1) vs deliver (freq 3), equal means: deliver wins 3/4 of
     races. Tokens re-injected to keep the chain recurrent. *)
  let b = Net.builder "race" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"lose" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let _ = Net.add_transition b ~name:"deliver" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("lose", Tpn.spec ~firing:(Tpn.Fixed (qi 10)) ~frequency:(Tpn.Freq Q.one) ());
        ("deliver", Tpn.spec ~firing:(Tpn.Fixed (qi 10)) ~frequency:(Tpn.Freq (qi 3)) ());
      ]
  in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  let tl = Exp.throughput c ~steady:pi 0 and td = Exp.throughput c ~steady:pi 1 in
  Alcotest.(check bool) "3:1 branch ratio" true (Q.equal td (Q.mul (qi 3) tl));
  (* normalized rates: combined race rate equals 1/mean *)
  Alcotest.(check bool) "combined rate = 1/10" true
    (Q.equal (Q.add tl td) (Q.of_ints 1 10))

let test_sequential_ring_matches_deterministic () =
  (* with tx = 0 the conflict pairs have equal means, so the Markovian
     reading preserves both sojourn and branching: throughputs coincide *)
  let p = { TR.default_params with TR.tx_time = Q.zero } in
  let tpn = TR.concrete p in
  let det_g = CG.build tpn in
  let det = M.Concrete.analyze det_g in
  let det_thr = M.Concrete.throughput det det_g (TR.use 0) in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  let exp_thr = Exp.throughput c ~steady:pi (Net.trans_of_name (Tpn.net tpn) (TR.use 0)) in
  Alcotest.(check bool)
    (Format.asprintf "det %a = exp %a" Q.pp det_thr Q.pp exp_thr)
    true (Q.equal det_thr exp_thr)

let test_pipeline_exponential_penalty () =
  (* in a pipeline, variability hurts: the Markovian reading must be
     strictly slower than the deterministic pacing *)
  let p = PL.default_params in
  let tpn = PL.concrete p in
  let det_thr = Q.inv (PL.bottleneck p) in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  let t = Net.trans_of_name (Tpn.net tpn) PL.t_deliver in
  let exp_thr = Exp.throughput c ~steady:pi t in
  Alcotest.(check bool)
    (Format.asprintf "exp %a < det %a" Q.pp exp_thr Q.pp det_thr)
    true
    (Q.compare exp_thr det_thr < 0);
  (* but within a small constant factor *)
  Alcotest.(check bool) "within 3x" true (Q.compare (Q.mul exp_thr (qi 3)) det_thr > 0)

let test_zero_mean_rejected () =
  let b = Net.builder "z" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let tpn = Tpn.make (Net.build b) [ ("t", Tpn.spec ()) ] in
  try
    ignore (Exp.build tpn);
    Alcotest.fail "zero mean accepted"
  with Tpn.Unsupported _ -> ()

let test_mean_tokens () =
  (* ping-pong means 2 and 6: token sits in place c 3/4 of the time *)
  let b = Net.builder "pp2" in
  let a = Net.add_place b ~init:1 "a" in
  let c_ = Net.add_place b "c" in
  let _ = Net.add_transition b ~name:"go" ~inputs:[ (a, 1) ] ~outputs:[ (c_, 1) ] in
  let _ = Net.add_transition b ~name:"back" ~inputs:[ (c_, 1) ] ~outputs:[ (a, 1) ] in
  let tpn =
    Tpn.make (Net.build b)
      [
        ("go", Tpn.spec ~firing:(Tpn.Fixed (qi 2)) ());
        ("back", Tpn.spec ~firing:(Tpn.Fixed (qi 6)) ());
      ]
  in
  let c = Exp.build tpn in
  let pi = Exp.steady_state c in
  Alcotest.(check bool) "mean tokens in c = 3/4" true
    (Q.equal (Exp.mean_tokens c ~steady:pi c_) (Q.of_ints 3 4))

let test_erlang_convergence () =
  (* Erlang-k stages shrink service variance: the Markovian pipeline
     estimate must increase monotonically toward the deterministic value *)
  (* a 3-hop line keeps the Erlang-3 chain small enough for the exact
     steady-state solve to stay fast *)
  let p = { PL.hop_delays = List.map qi [ 10; 25; 10 ]; inject_delay = qi 5 } in
  let base = PL.concrete p in
  let det = Q.inv (PL.bottleneck p) in
  let thr k =
    let tpn = Exp.erlang_expand ~stages:k base in
    let c = Exp.build ~max_states:200_000 tpn in
    let pi = Exp.steady_state c in
    let name = PL.t_deliver ^ (if k = 1 then "" else "__" ^ string_of_int (k - 1)) in
    Exp.throughput c ~steady:pi (Net.trans_of_name (Tpn.net tpn) name)
  in
  let t1 = thr 1 and t2 = thr 2 and t3 = thr 3 in
  Alcotest.(check bool) "monotone in stages" true
    (Q.compare t1 t2 < 0 && Q.compare t2 t3 < 0);
  Alcotest.(check bool) "still below deterministic" true (Q.compare t3 det < 0);
  Alcotest.(check bool) "closing most of the gap" true
    (Q.to_float t3 /. Q.to_float det > 0.8)

let test_erlang_expand_structure () =
  let base = PL.concrete PL.default_params in
  let e3 = Exp.erlang_expand ~stages:3 base in
  let n0 = Tpn.net base and n3 = Tpn.net e3 in
  (* every expandable transition becomes 3, with 2 buffer places *)
  Alcotest.(check int) "transitions tripled" (3 * Net.num_transitions n0) (Net.num_transitions n3);
  Alcotest.(check int) "buffers added" (Net.num_places n0 + (2 * Net.num_transitions n0))
    (Net.num_places n3);
  (* stage means sum to the original mean *)
  let t = Net.trans_of_name n3 PL.t_deliver in
  Alcotest.(check bool) "stage mean = total/3" true
    (Q.equal (Tpn.firing_q e3 t) (Q.div (Q.of_int 15) (Q.of_int 3)));
  (* stages=1 is the identity on delays *)
  let e1 = Exp.erlang_expand ~stages:1 base in
  Alcotest.(check int) "one stage keeps the structure" (Net.num_transitions n0)
    (Net.num_transitions (Tpn.net e1))

let suite =
  ( "exponential",
    [
      Alcotest.test_case "single loop" `Quick test_single_loop;
      Alcotest.test_case "two-state chain" `Quick test_two_state_chain;
      Alcotest.test_case "race probabilities follow frequencies" `Quick test_race_probabilities;
      Alcotest.test_case "sequential ring: exp = det" `Quick test_sequential_ring_matches_deterministic;
      Alcotest.test_case "pipeline: exponential penalty" `Quick test_pipeline_exponential_penalty;
      Alcotest.test_case "zero mean rejected" `Quick test_zero_mean_rejected;
      Alcotest.test_case "mean tokens" `Quick test_mean_tokens;
      Alcotest.test_case "erlang stages converge to deterministic" `Slow test_erlang_convergence;
      Alcotest.test_case "erlang expansion structure" `Quick test_erlang_expand_structure;
    ] )
