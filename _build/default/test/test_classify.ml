(* Tests for structural net classification. *)

module Net = Tpan_petri.Net
module C = Tpan_petri.Classify

let sm () =
  (* pure choice: one token, two loops *)
  let b = Net.builder "sm" in
  let p = Net.add_place b ~init:1 "p" in
  let q = Net.add_place b "q" in
  let t name i o = ignore (Net.add_transition b ~name ~inputs:[ (i, 1) ] ~outputs:[ (o, 1) ]) in
  t "a" p q;
  t "b" q p;
  t "c" p p;
  Net.build b

let mg () =
  (* pure synchronization: fork and join *)
  let b = Net.builder "mg" in
  let s = Net.add_place b ~init:1 "s" in
  let l = Net.add_place b "l" in
  let r = Net.add_place b "r" in
  let e = Net.add_place b "e" in
  let _ = Net.add_transition b ~name:"fork" ~inputs:[ (s, 1) ] ~outputs:[ (l, 1); (r, 1) ] in
  let _ = Net.add_transition b ~name:"join" ~inputs:[ (l, 1); (r, 1) ] ~outputs:[ (e, 1) ] in
  let _ = Net.add_transition b ~name:"loop" ~inputs:[ (e, 1) ] ~outputs:[ (s, 1) ] in
  Net.build b

let non_fc () =
  (* confusion: t1 needs {p}, t2 needs {p, q} -> shared input place with
     different bags: not free choice *)
  let b = Net.builder "nfc" in
  let p = Net.add_place b ~init:1 "p" in
  let q = Net.add_place b ~init:1 "q" in
  let _ = Net.add_transition b ~name:"t1" ~inputs:[ (p, 1) ] ~outputs:[] in
  let _ = Net.add_transition b ~name:"t2" ~inputs:[ (p, 1); (q, 1) ] ~outputs:[] in
  Net.build b

let test_state_machine () =
  let c = C.classify (sm ()) in
  Alcotest.(check bool) "sm" true c.C.state_machine;
  Alcotest.(check bool) "not mg (p has several consumers)" false c.C.marked_graph;
  Alcotest.(check bool) "free choice" true c.C.free_choice

let test_marked_graph () =
  let c = C.classify (mg ()) in
  Alcotest.(check bool) "mg" true c.C.marked_graph;
  Alcotest.(check bool) "not sm (fork has two outputs)" false c.C.state_machine;
  Alcotest.(check bool) "free choice (no conflicts at all)" true c.C.free_choice

let test_not_free_choice () =
  let c = C.classify (non_fc ()) in
  Alcotest.(check bool) "not free choice" false c.C.free_choice

let test_protocols_classes () =
  (* stop-and-wait: t6 synchronizes p3+p8 while p2 branches to t4/t5: a
     general net, but free choice holds (conflicting transitions have equal
     bags) *)
  let c = C.classify (Tpan_protocols.Stopwait.net ()) in
  Alcotest.(check bool) "stopwait not sm" false c.C.state_machine;
  Alcotest.(check bool) "stopwait not mg" false c.C.marked_graph;
  (* t3 and t7 share p4 with different bags: NOT free choice — exactly why
     the paper needs explicit conflict-set frequencies and priorities *)
  Alcotest.(check bool) "stopwait not free choice" false c.C.free_choice;
  (* the pipeline is a marked graph (that is what licenses its cycle-time
     bound) *)
  let pl = C.classify (Tpan_protocols.Pipeline.net ~hops:4) in
  Alcotest.(check bool) "pipeline is a marked graph" true pl.C.marked_graph;
  (* the token ring is a state machine *)
  let tr = C.classify (Tpan_protocols.Token_ring.net ~stations:4) in
  Alcotest.(check bool) "token ring is a state machine" true tr.C.state_machine;
  Alcotest.(check bool) "token ring is free choice" true tr.C.free_choice

let test_pp () =
  let s = Format.asprintf "%a" C.pp (C.classify (mg ())) in
  Alcotest.(check bool) "mentions marked graph" true
    (let n = String.length s in
     let rec go i = i + 12 <= n && (String.sub s i 12 = "marked graph" || go (i + 1)) in
     go 0)

let suite =
  ( "classify",
    [
      Alcotest.test_case "state machine" `Quick test_state_machine;
      Alcotest.test_case "marked graph" `Quick test_marked_graph;
      Alcotest.test_case "free choice violation" `Quick test_not_free_choice;
      Alcotest.test_case "protocol net classes" `Quick test_protocols_classes;
      Alcotest.test_case "pretty printing" `Quick test_pp;
    ] )
