(* Tests for the timing-constraint system, including the paper's constraint
   set (section 4) and the Figure-7 justification audit. *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints

let e3 = Lin.var (Var.enabling "t3")
let f1 = Lin.var (Var.firing "t1")
let f2 = Lin.var (Var.firing "t2")
let f4 = Lin.var (Var.firing "t4")
let f5 = Lin.var (Var.firing "t5")
let f6 = Lin.var (Var.firing "t6")
let f8 = Lin.var (Var.firing "t8")
let f9 = Lin.var (Var.firing "t9")

let sum = List.fold_left Lin.add Lin.zero

(* Paper constraints (1), (3), (4); constraint (2) (all other enabling times
   are zero) is represented structurally in the net, not here. *)
let paper =
  C.of_list
    [
      ("(1)", `Gt, e3, sum [ f5; f6; f8 ]);
      ("(3)", `Eq, f4, f5);
      ("(4)", `Eq, f9, f8);
    ]

let cmp =
  Alcotest.of_pp (fun fmt (c : C.comparison) ->
      Format.pp_print_string fmt
        (match c with C.Lt -> "Lt" | C.Eq -> "Eq" | C.Gt -> "Gt" | C.Unknown -> "Unknown"))

let test_compare_paper () =
  (* state 4: RFT(t5) vs RET(t3) *)
  Alcotest.check cmp "F5 < E3" C.Lt (C.compare_exprs paper f5 e3);
  (* state 5 (loss branch): RFT(t4) vs RET(t3), needs (1) and (3) *)
  Alcotest.check cmp "F4 < E3" C.Lt (C.compare_exprs paper f4 e3);
  (* state 10: RFT(t6) vs E3 - F5 *)
  Alcotest.check cmp "F6 < E3 - F5" C.Lt (C.compare_exprs paper f6 (Lin.sub e3 f5));
  (* state 12: RFT(t9) vs E3 - F5 - F6, needs (1) and (4) *)
  Alcotest.check cmp "F9 < E3-F5-F6" C.Lt
    (C.compare_exprs paper f9 (Lin.sub e3 (Lin.add f5 f6)));
  Alcotest.check cmp "equality" C.Eq (C.compare_exprs paper f4 f5);
  Alcotest.check cmp "gt" C.Gt (C.compare_exprs paper e3 f5);
  Alcotest.check cmp "unknown" C.Unknown (C.compare_exprs paper f1 f2)

let test_justify_fig7 () =
  (* Figure 7 of the paper: which constraints resolve which state. *)
  let j rel a b = Option.map (List.sort compare) (C.justify paper rel a b) in
  Alcotest.(check (option (list string))) "4->9 uses (1)" (Some [ "(1)" ]) (j `Lt f5 e3);
  Alcotest.(check (option (list string))) "5->6 uses (1),(3)" (Some [ "(1)"; "(3)" ]) (j `Lt f4 e3);
  Alcotest.(check (option (list string))) "10->11 uses (1)" (Some [ "(1)" ])
    (j `Lt f6 (Lin.sub e3 f5));
  Alcotest.(check (option (list string))) "12->14 uses (1),(4)" (Some [ "(1)"; "(4)" ])
    (j `Lt f9 (Lin.sub e3 (Lin.add f5 f6)));
  Alcotest.(check (option (list string))) "13->15 uses (1)" (Some [ "(1)" ])
    (j `Lt f8 (Lin.sub e3 (Lin.add f5 f6)));
  Alcotest.(check (option (list string))) "not entailed" None (j `Lt f1 f2)

let test_nonneg_implicit () =
  (* With no explicit constraints, time symbols are still >= 0. *)
  Alcotest.(check bool) "F5 >= 0" true (C.entails C.empty `Ge f5 Lin.zero);
  Alcotest.(check bool) "F5 > 0 not entailed" false (C.entails C.empty `Gt f5 Lin.zero);
  (* frequencies are NOT implicitly non-negative time symbols *)
  let fr = Lin.var (Var.frequency "t4") in
  Alcotest.(check bool) "freq unconstrained" false (C.entails C.empty `Ge fr Lin.zero)

let test_consistency () =
  Alcotest.(check bool) "paper consistent" true (C.is_consistent paper);
  let bad = C.add `Lt e3 f5 paper in
  (* (1) says E3 > F5+F6+F8 >= F5; adding E3 < F5 is contradictory *)
  Alcotest.(check bool) "contradiction detected" false (C.is_consistent bad)

let test_satisfies () =
  let env v =
    match Var.name v with
    | "E(t3)" -> Q.of_int 1000
    | "F(t4)" | "F(t5)" | "F(t8)" | "F(t9)" -> Q.of_decimal_string "106.7"
    | "F(t6)" -> Q.of_decimal_string "13.5"
    | _ -> Q.one
  in
  Alcotest.(check bool) "fig 1b times satisfy paper constraints" true (C.satisfies env paper);
  let env_bad v = if Var.name v = "E(t3)" then Q.of_int 100 else env v in
  Alcotest.(check bool) "short timeout violates (1)" false (C.satisfies env_bad paper)

(* substring check without extra deps *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_suggest_and_pp () =
  let s = C.suggest f1 f2 in
  Alcotest.(check bool) "mentions both exprs" true (contains s "F(t1)" && contains s "F(t2)");
  let printed = Format.asprintf "%a" C.pp paper in
  Alcotest.(check bool) "pp shows labels" true (contains printed "(1)" && contains printed "(3)")

let suite =
  ( "constraints",
    [
      Alcotest.test_case "paper comparisons" `Quick test_compare_paper;
      Alcotest.test_case "figure 7 justification" `Quick test_justify_fig7;
      Alcotest.test_case "implicit non-negativity" `Quick test_nonneg_implicit;
      Alcotest.test_case "consistency" `Quick test_consistency;
      Alcotest.test_case "concrete model check" `Quick test_satisfies;
      Alcotest.test_case "suggestion text" `Quick test_suggest_and_pp;
    ] )
