(* Property-based tests of the Figure-3 semantics itself.

   The centrepiece: random series-parallel (fork/join) workflows, where the
   timed reachability graph is deterministic and must terminate after
   exactly the critical-path time — exercising the minimum computation over
   many concurrently firing transitions, including exact ties. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module TR = Tpan_protocols.Token_ring

type block = Leaf of int | Seq of block * block | Par of block * block

let gen_block =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then map (fun d -> Leaf d) (int_range 0 20)
        else
          oneof
            [
              map (fun d -> Leaf d) (int_range 0 20);
              map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Par (a, b)) (self (n / 2)) (self (n / 2));
            ]))

(* smaller blocks for the expensive DBM-based property *)
let gen_small_block =
  QCheck2.Gen.(
    sized_size (int_bound 5)
    @@ fix (fun self n ->
           if n <= 1 then map (fun d -> Leaf d) (int_range 0 9)
           else
             oneof
               [
                 map (fun d -> Leaf d) (int_range 0 9);
                 map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Par (a, b)) (self (n / 2)) (self (n / 2));
               ]))

let rec critical_path = function
  | Leaf d -> d
  | Seq (a, b) -> critical_path a + critical_path b
  | Par (a, b) -> max (critical_path a) (critical_path b)

(* Compile a block to a net fragment between two places. [sync_delay]
   times the fork/join transitions (0 = instantaneous, the default). *)
let build_net ?(sync_delay = 0) block =
  let b = Net.builder "forkjoin" in
  let start = Net.add_place b ~init:1 "start" in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let specs = ref [] in
  let add_trans name inputs outputs delay =
    ignore (Net.add_transition b ~name ~inputs ~outputs);
    specs := (name, Tpn.spec ~firing:(Tpn.Fixed (Q.of_int delay)) ()) :: !specs
  in
  let rec compile blk inp out =
    match blk with
    | Leaf d -> add_trans (fresh "work") [ (inp, 1) ] [ (out, 1) ] d
    | Seq (x, y) ->
      let mid = Net.add_place b (fresh "mid") in
      compile x inp mid;
      compile y mid out
    | Par (x, y) ->
      let ix = Net.add_place b (fresh "ix") in
      let iy = Net.add_place b (fresh "iy") in
      let ox = Net.add_place b (fresh "ox") in
      let oy = Net.add_place b (fresh "oy") in
      add_trans (fresh "fork") [ (inp, 1) ] [ (ix, 1); (iy, 1) ] sync_delay;
      compile x ix ox;
      compile y iy oy;
      add_trans (fresh "join") [ (ox, 1); (oy, 1) ] [ (out, 1) ] sync_delay
  in
  let stop = Net.add_place b "stop" in
  compile block start stop;
  let net = Net.build b in
  (Tpn.make net !specs, Net.place_of_name net "stop")

(* Total elapsed time from the initial state to the terminal state of a
   deterministic graph. *)
let makespan (g : CG.Graph.graph) =
  let rec walk i acc =
    match g.Sem.out.(i) with
    | [] -> Some (i, acc)
    | [ e ] -> walk e.Sem.dst (Q.add acc e.Sem.delay)
    | _ -> None
  in
  walk 0 Q.zero

let prop_forkjoin_critical_path =
  QCheck2.Test.make ~name:"fork-join makespan = critical path" ~count:120
    QCheck2.Gen.(map (fun b -> b) gen_block)
    (fun block ->
      let tpn, stop = build_net block in
      let g = CG.build tpn in
      match makespan g with
      | None -> false (* deterministic net must have unique run *)
      | Some (terminal, elapsed) ->
        let st = g.Sem.states.(terminal) in
        Tpan_petri.Marking.tokens st.Sem.marking stop = 1
        && Q.equal elapsed (Q.of_int (critical_path block)))

let prop_forkjoin_symbolic_agrees =
  (* the symbolic builder on a fully concrete net must produce the same
     graph with constant expressions *)
  QCheck2.Test.make ~name:"symbolic builder on concrete fork-join nets" ~count:60 gen_block
    (fun block ->
      let tpn, _ = build_net block in
      let cg = CG.build tpn in
      let sg = SG.build tpn in
      CG.Graph.num_states cg = SG.Graph.num_states sg
      && begin
        let ok = ref true in
        Array.iteri
          (fun i sedges ->
            List.iter2
              (fun (se : SG.Graph.edge) (ce : CG.Graph.edge) ->
                match Tpan_symbolic.Linexpr.to_q_opt se.Sem.delay with
                | Some q -> if not (Q.equal q ce.Sem.delay) then ok := false
                | None -> ok := false)
              sedges cg.Sem.out.(i))
          sg.Sem.out;
        !ok
      end)

let prop_probabilities_sum_to_one =
  QCheck2.Test.make ~name:"outgoing probabilities sum to 1 (random rings)" ~count:50
    QCheck2.Gen.(
      let* stations = int_range 1 6 in
      let* fw = int_range 1 5 in
      let* iw = int_range 1 5 in
      return (stations, fw, iw))
    (fun (stations, fw, iw) ->
      let p =
        { TR.default_params with TR.stations; frame_weight = Q.of_int fw; idle_weight = Q.of_int iw }
      in
      let g = CG.build (TR.concrete p) in
      Array.for_all
        (fun edges ->
          edges = []
          || Q.equal Q.one
               (List.fold_left (fun acc (e : CG.Graph.edge) -> Q.add acc e.Sem.prob) Q.zero edges))
        g.Sem.out)

let prop_delays_nonnegative =
  QCheck2.Test.make ~name:"edge delays are non-negative" ~count:60 gen_block
    (fun block ->
      let tpn, _ = build_net block in
      let g = CG.build tpn in
      Array.for_all
        (fun edges -> List.for_all (fun (e : CG.Graph.edge) -> Q.sign e.Sem.delay >= 0) edges)
        g.Sem.out)

let prop_rebuild_deterministic =
  QCheck2.Test.make ~name:"graph construction is deterministic" ~count:40 gen_block
    (fun block ->
      let tpn, _ = build_net block in
      let g1 = CG.build tpn and g2 = CG.build tpn in
      CG.Graph.num_states g1 = CG.Graph.num_states g2
      && Array.for_all2
           (fun a b -> List.length a = List.length b)
           g1.Sem.out g2.Sem.out
      && Array.for_all2 CG.Graph.state_equal g1.Sem.states g2.Sem.states)

let prop_sim_matches_forkjoin =
  (* simulate the deterministic workflow once: the deadlock time must be
     the critical path *)
  QCheck2.Test.make ~name:"simulator reproduces fork-join makespan" ~count:60 gen_block
    (fun block ->
      let tpn, _ = build_net block in
      let stats = Tpan_sim.Simulator.run ~seed:1 ~horizon:(Q.of_int 1_000_000) tpn in
      stats.Tpan_sim.Simulator.deadlocked
      && Q.equal stats.Tpan_sim.Simulator.sim_time (Q.of_int (critical_path block)))

let prop_timepn_translation_equivalence =
  (* For random fork-join workflows, the Figure-2 translation onto the
     Merlin-Farber state-class engine reaches exactly the TPN graph's
     DWELLABLE markings — those observable for a positive duration. (The
     one-transition-at-a-time Merlin-Farber semantics also passes through
     zero-duration interleaving micro-states between simultaneous events,
     and the TPN's decision states are likewise instantaneous; both sides
     filter to where time can elapse, and the sets must coincide.) *)
  QCheck2.Test.make ~name:"Time PN translation preserves dwellable markings" ~count:25
    gen_small_block
    (fun block ->
      let rec positive = function
        | Leaf d -> Leaf (1 + d)
        | Seq (a, b) -> Seq (positive a, positive b)
        | Par (a, b) -> Par (positive a, positive b)
      in
      let tpn, _ = build_net ~sync_delay:1 (positive block) in
      let cg = CG.build tpn in
      let tpn_markings =
        Array.to_list cg.Sem.states
        |> List.mapi (fun i st -> (i, st))
        |> List.filter_map (fun (i, st) ->
            match cg.Sem.kinds.(i) with
            | Sem.Advance | Sem.Terminal -> Some st.Sem.marking
            | Sem.Decision -> None)
        |> List.sort_uniq compare
      in
      let timed, _ = Tpan_core.Time_pn.of_tpn tpn in
      let g = Tpan_core.Time_pn.build timed in
      let np = Tpan_petri.Net.num_places (Tpn.net tpn) in
      let projected =
        Array.to_list g.Tpan_core.Time_pn.classes
        |> List.filter (Tpan_core.Time_pn.can_dwell timed)
        |> List.map (fun c ->
            Tpan_core.Time_pn.project_marking timed c.Tpan_core.Time_pn.marking
              ~original_places:np)
        |> List.sort_uniq compare
      in
      projected = tpn_markings)

let suite =
  ( "semantics_props",
    [
      QCheck_alcotest.to_alcotest prop_forkjoin_critical_path;
      QCheck_alcotest.to_alcotest prop_forkjoin_symbolic_agrees;
      QCheck_alcotest.to_alcotest prop_probabilities_sum_to_one;
      QCheck_alcotest.to_alcotest prop_delays_nonnegative;
      QCheck_alcotest.to_alcotest prop_rebuild_deterministic;
      QCheck_alcotest.to_alcotest prop_sim_matches_forkjoin;
      QCheck_alcotest.to_alcotest prop_timepn_translation_equivalence;
    ] )
