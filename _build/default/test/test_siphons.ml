(* Tests for siphon/trap structural analysis. *)

module Net = Tpan_petri.Net
module S = Tpan_petri.Siphons
module Reach = Tpan_petri.Reachability

(* Classic two-process deadlock: each process grabs resource a then b (or b
   then a) — the circular-wait siphon can empty. *)
let deadlockable () =
  let b = Net.builder "deadlock" in
  let ra = Net.add_place b ~init:1 "res_a" in
  let rb = Net.add_place b ~init:1 "res_b" in
  let p1_idle = Net.add_place b ~init:1 "p1_idle" in
  let p1_has_a = Net.add_place b "p1_has_a" in
  let p1_work = Net.add_place b "p1_work" in
  let p2_idle = Net.add_place b ~init:1 "p2_idle" in
  let p2_has_b = Net.add_place b "p2_has_b" in
  let p2_work = Net.add_place b "p2_work" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t "p1_get_a" [ (p1_idle, 1); (ra, 1) ] [ (p1_has_a, 1) ];
  t "p1_get_b" [ (p1_has_a, 1); (rb, 1) ] [ (p1_work, 1) ];
  t "p1_done" [ (p1_work, 1) ] [ (p1_idle, 1); (ra, 1); (rb, 1) ];
  t "p2_get_b" [ (p2_idle, 1); (rb, 1) ] [ (p2_has_b, 1) ];
  t "p2_get_a" [ (p2_has_b, 1); (ra, 1) ] [ (p2_work, 1) ];
  t "p2_done" [ (p2_work, 1) ] [ (p2_idle, 1); (ra, 1); (rb, 1) ];
  Net.build b

(* A simple live cycle: one token round-trip. *)
let cycle_net () =
  let b = Net.builder "cycle" in
  let p = Net.add_place b ~init:1 "p" in
  let q = Net.add_place b "q" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t "go" [ (p, 1) ] [ (q, 1) ];
  t "back" [ (q, 1) ] [ (p, 1) ];
  Net.build b

let test_is_siphon_trap () =
  let net = cycle_net () in
  let p = Net.place_of_name net "p" and q = Net.place_of_name net "q" in
  Alcotest.(check bool) "whole cycle is a siphon" true (S.is_siphon net [ p; q ]);
  Alcotest.(check bool) "whole cycle is a trap" true (S.is_trap net [ p; q ]);
  Alcotest.(check bool) "half is not a siphon" false (S.is_siphon net [ p ]);
  Alcotest.(check bool) "empty set is not a siphon" false (S.is_siphon net [])

let test_minimal_siphons_cycle () =
  let net = cycle_net () in
  Alcotest.(check (list (list int))) "one minimal siphon (the cycle)" [ [ 0; 1 ] ]
    (S.minimal_siphons net);
  Alcotest.(check (list (list int))) "one minimal trap" [ [ 0; 1 ] ] (S.minimal_traps net)

let test_deadlock_siphon () =
  let net = deadlockable () in
  let siphons = S.minimal_siphons net in
  Alcotest.(check bool) "several minimal siphons" true (List.length siphons >= 2);
  List.iter
    (fun s -> Alcotest.(check bool) "each verifies" true (S.is_siphon net s))
    siphons;
  (* the circular-wait siphon {res_a, p1_has_a...}: Commoner must FAIL,
     matching the real deadlock found by reachability *)
  Alcotest.(check bool) "commoner violated" false (S.commoner_satisfied net);
  let g = Reach.explore net in
  Alcotest.(check bool) "the net really deadlocks" false (Reach.is_deadlock_free g);
  (* at the deadlocked marking, some minimal siphon is empty *)
  let dead = List.hd (Reach.deadlocks g) in
  let m = g.Reach.states.(dead) in
  Alcotest.(check bool) "an empty siphon certifies the deadlock" true
    (List.exists (fun s -> List.for_all (fun p -> m.(p) = 0) s) siphons)

let test_live_cycle_commoner () =
  Alcotest.(check bool) "live cycle satisfies commoner" true
    (S.commoner_satisfied (cycle_net ()))

let test_max_trap_within () =
  let net = cycle_net () in
  let all = [ 0; 1 ] in
  Alcotest.(check (list int)) "trap of whole = whole" all (S.max_trap_within net all);
  Alcotest.(check (list int)) "trap of half = empty" [] (S.max_trap_within net [ 0 ])

let test_stopwait_siphons () =
  (* receiver-ready place p8 cycles through t6 alone: {p8} is both a siphon
     and a trap; it is marked, so it never empties *)
  let net = Tpan_protocols.Stopwait.net () in
  let p8 = Net.place_of_name net "p8" in
  Alcotest.(check bool) "p8 is a siphon" true (S.is_siphon net [ p8 ]);
  Alcotest.(check bool) "p8 is a trap" true (S.is_trap net [ p8 ]);
  let siphons = S.minimal_siphons net in
  Alcotest.(check bool) "p8 appears as a minimal siphon" true (List.mem [ p8 ] siphons);
  Alcotest.(check (list (list int))) "no initially-empty minimal siphon" []
    (S.unmarked_siphons net)

let prop_minimal_siphons_verify =
  (* every enumerated siphon is a siphon, and no enumerated siphon strictly
     contains another *)
  QCheck2.Test.make ~name:"minimal siphons verify and are incomparable" ~count:40
    QCheck2.Gen.(
      let* np = int_range 2 5 in
      let* nt = int_range 1 5 in
      let* arcs =
        list_size (return nt)
          (pair (list_size (int_range 1 2) (int_range 0 (np - 1)))
             (list_size (int_range 0 2) (int_range 0 (np - 1))))
      in
      return (np, arcs))
    (fun (np, arcs) ->
      let b = Net.builder "rand" in
      let places = Array.init np (fun i -> Net.add_place b (Printf.sprintf "p%d" i)) in
      List.iteri
        (fun i (ins, outs) ->
          ignore
            (Net.add_transition b ~name:(Printf.sprintf "t%d" i)
               ~inputs:(List.map (fun p -> (places.(p), 1)) ins)
               ~outputs:(List.map (fun p -> (places.(p), 1)) outs)))
        arcs;
      let net = Net.build b in
      let siphons = S.minimal_siphons net in
      List.for_all (fun s -> S.is_siphon net s) siphons
      && List.for_all
           (fun s ->
             List.for_all
               (fun s' ->
                 s == s'
                 || not
                      (List.for_all (fun p -> List.mem p s') s && List.length s < List.length s'))
               siphons)
           siphons)

let suite =
  ( "siphons",
    [
      Alcotest.test_case "siphon/trap predicates" `Quick test_is_siphon_trap;
      Alcotest.test_case "minimal siphons of a cycle" `Quick test_minimal_siphons_cycle;
      Alcotest.test_case "deadlock certified by empty siphon" `Quick test_deadlock_siphon;
      Alcotest.test_case "commoner on live cycle" `Quick test_live_cycle_commoner;
      Alcotest.test_case "greatest trap within" `Quick test_max_trap_within;
      Alcotest.test_case "stopwait structure" `Quick test_stopwait_siphons;
      QCheck_alcotest.to_alcotest prop_minimal_siphons_verify;
    ] )
