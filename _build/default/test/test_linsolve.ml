(* Tests for exact Gaussian elimination over Q. *)

module Q = Tpan_mathkit.Q

module QS = Tpan_mathkit.Linsolve.Make (struct
  type t = Q.t

  let zero = Q.zero
  let one = Q.one
  let is_zero = Q.is_zero
  let add = Q.add
  let sub = Q.sub
  let mul = Q.mul
  let div = Q.div
  let pp = Q.pp
end)

let qi = Q.of_int
let qm rows = Array.map (Array.map qi) rows
let qv = Array.map qi

let check_solution msg expected got =
  match got with
  | QS.Unique x ->
    Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length x);
    Array.iteri
      (fun i e -> Alcotest.(check bool) (Printf.sprintf "%s[%d]" msg i) true (Q.equal e x.(i)))
      expected
  | QS.Underdetermined -> Alcotest.fail (msg ^ ": underdetermined")
  | QS.Inconsistent -> Alcotest.fail (msg ^ ": inconsistent")

let test_2x2 () =
  (* x + y = 3, x - y = 1 -> (2, 1) *)
  check_solution "2x2" (qv [| 2; 1 |])
    (QS.solve (qm [| [| 1; 1 |]; [| 1; -1 |] |]) (qv [| 3; 1 |]))

let test_3x3_fractions () =
  (* Hilbert-ish system with exact rational solution *)
  let a =
    [|
      [| Q.one; Q.of_ints 1 2; Q.of_ints 1 3 |];
      [| Q.of_ints 1 2; Q.of_ints 1 3; Q.of_ints 1 4 |];
      [| Q.of_ints 1 3; Q.of_ints 1 4; Q.of_ints 1 5 |];
    |]
  in
  let x = [| Q.of_int 1; Q.of_int (-2); Q.of_int 3 |] in
  let b =
    Array.init 3 (fun i ->
        let acc = ref Q.zero in
        for j = 0 to 2 do
          acc := Q.add !acc (Q.mul a.(i).(j) x.(j))
        done;
        !acc)
  in
  check_solution "hilbert" x (QS.solve a b)

let test_pivoting () =
  (* leading zero forces a row swap *)
  check_solution "pivot swap" (qv [| 1; 2 |])
    (QS.solve (qm [| [| 0; 1 |]; [| 1; 0 |] |]) (qv [| 2; 1 |]))

let test_underdetermined () =
  match QS.solve (qm [| [| 1; 1 |]; [| 2; 2 |] |]) (qv [| 3; 6 |]) with
  | QS.Underdetermined -> ()
  | _ -> Alcotest.fail "expected underdetermined"

let test_inconsistent () =
  match QS.solve (qm [| [| 1; 1 |]; [| 1; 1 |] |]) (qv [| 3; 4 |]) with
  | QS.Inconsistent -> ()
  | _ -> Alcotest.fail "expected inconsistent"

let test_dimension_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Linsolve.solve: dimension mismatch")
    (fun () -> ignore (QS.solve (qm [| [| 1 |] |]) (qv [| 1; 2 |])))

let prop_solves_random_system =
  (* Build a random system from a known solution; solver must recover it
     whenever the matrix is regular. *)
  QCheck2.Test.make ~name:"recovers planted solution" ~count:200
    QCheck2.Gen.(
      let elt = int_range (-5) 5 in
      let* n = int_range 1 4 in
      let* rows = list_size (return n) (list_size (return n) elt) in
      let* x = list_size (return n) elt in
      return (rows, x))
    (fun (rows, x) ->
      let n = List.length x in
      let a = Array.of_list (List.map (fun r -> Array.of_list (List.map qi r)) rows) in
      let x = Array.of_list (List.map qi x) in
      let b =
        Array.init n (fun i ->
            let acc = ref Q.zero in
            for j = 0 to n - 1 do
              acc := Q.add !acc (Q.mul a.(i).(j) x.(j))
            done;
            !acc)
      in
      match QS.solve a b with
      | QS.Unique y -> Array.for_all2 Q.equal x y
      | QS.Underdetermined -> true (* singular matrix: planted solution not unique *)
      | QS.Inconsistent -> false (* impossible: b was built from a model *))

let suite =
  ( "linsolve",
    [
      Alcotest.test_case "2x2" `Quick test_2x2;
      Alcotest.test_case "3x3 with fractions" `Quick test_3x3_fractions;
      Alcotest.test_case "pivoting" `Quick test_pivoting;
      Alcotest.test_case "underdetermined" `Quick test_underdetermined;
      Alcotest.test_case "inconsistent" `Quick test_inconsistent;
      Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
      QCheck_alcotest.to_alcotest prop_solves_random_system;
    ] )
