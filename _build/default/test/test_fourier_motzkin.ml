(* Tests for the Fourier-Motzkin decision procedure, including the paper's
   timing-constraint set for the stop-and-wait protocol (section 4). *)

module Q = Tpan_mathkit.Q
module FM = Tpan_mathkit.Fourier_motzkin
module L = FM.Linform

(* Variable ids used throughout: 0:E3 1:F1 2:F2 3:F3 4:F4 5:F5 6:F6 7:F7 8:F8 9:F9 *)
let e3 = L.var 0
let f4 = L.var 4
let f5 = L.var 5
let f6 = L.var 6
let f8 = L.var 8
let f9 = L.var 9

let qi = Q.of_int

let nonneg vars = List.map (fun v -> FM.ge (L.var v) L.zero) vars

(* The paper's constraints (1), (3), (4) over non-negative times:
   E(t3) > F(t5)+F(t6)+F(t8);  F(t4)=F(t5);  F(t9)=F(t8). *)
let paper_constraints =
  FM.gt e3 (L.add f5 (L.add f6 f8))
  :: FM.eq f4 f5
  :: FM.eq f9 f8
  :: nonneg [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_feasible_basic () =
  Alcotest.(check bool) "empty system" true (FM.feasible []);
  Alcotest.(check bool) "x >= 1 feasible" true (FM.feasible [ FM.ge (L.var 0) (L.const Q.one) ]);
  Alcotest.(check bool) "x >= 1 and x <= 0 infeasible" false
    (FM.feasible [ FM.ge (L.var 0) (L.const Q.one); FM.ge (L.const Q.zero) (L.var 0) ]);
  Alcotest.(check bool) "x > 0 and x <= 0 infeasible" false
    (FM.feasible [ FM.gt (L.var 0) L.zero; FM.ge L.zero (L.var 0) ]);
  Alcotest.(check bool) "x >= 0 and x <= 0 feasible (x = 0)" true
    (FM.feasible [ FM.ge (L.var 0) L.zero; FM.ge L.zero (L.var 0) ]);
  Alcotest.(check bool) "strict ring x > y > x infeasible" false
    (FM.feasible [ FM.gt (L.var 0) (L.var 1); FM.gt (L.var 1) (L.var 0) ])

let test_feasible_multivar () =
  (* x + y >= 4, x <= 1, y <= 2 : infeasible *)
  Alcotest.(check bool) "triangle infeasible" false
    (FM.feasible
       [
         FM.ge (L.add (L.var 0) (L.var 1)) (L.const (qi 4));
         FM.ge (L.const (qi 1)) (L.var 0);
         FM.ge (L.const (qi 2)) (L.var 1);
       ]);
  (* x + y >= 3, x <= 1, y <= 2 : tight but feasible *)
  Alcotest.(check bool) "triangle tight feasible" true
    (FM.feasible
       [
         FM.ge (L.add (L.var 0) (L.var 1)) (L.const (qi 3));
         FM.ge (L.const (qi 1)) (L.var 0);
         FM.ge (L.const (qi 2)) (L.var 1);
       ])

let test_equalities () =
  (* x = 2y, y = 3 => x = 6 entailed *)
  let cs = [ FM.eq (L.var 0) (L.scale (qi 2) (L.var 1)); FM.eq (L.var 1) (L.const (qi 3)) ] in
  Alcotest.(check bool) "x = 6 entailed" true (FM.entails cs (FM.eq (L.var 0) (L.const (qi 6))));
  Alcotest.(check bool) "x = 7 not entailed" false (FM.entails cs (FM.eq (L.var 0) (L.const (qi 7))))

let test_entails () =
  let cs = [ FM.gt (L.var 0) (L.var 1); FM.ge (L.var 1) (L.const (qi 5)) ] in
  Alcotest.(check bool) "x > 5 entailed" true (FM.entails cs (FM.gt (L.var 0) (L.const (qi 5))));
  Alcotest.(check bool) "x >= 5 entailed" true (FM.entails cs (FM.ge (L.var 0) (L.const (qi 5))));
  Alcotest.(check bool) "x > 6 not entailed" false (FM.entails cs (FM.gt (L.var 0) (L.const (qi 6))));
  Alcotest.(check bool) "vacuous: infeasible premises entail anything" true
    (FM.entails
       [ FM.gt (L.var 0) (L.var 0) ]
       (FM.eq (L.var 1) (L.const (qi 42))))

let cmp = Alcotest.of_pp (fun fmt (c : FM.comparison) ->
    Format.pp_print_string fmt
      (match c with
       | FM.Always_lt -> "Always_lt"
       | FM.Always_eq -> "Always_eq"
       | FM.Always_gt -> "Always_gt"
       | FM.Unknown -> "Unknown"))

let test_compare_forms () =
  let cs = paper_constraints in
  (* Constraint 1 resolves state 4: F(t5) < E(t3). *)
  Alcotest.check cmp "F5 vs E3" FM.Always_lt (FM.compare_forms cs f5 e3);
  (* State 10: E3 - F5 vs F6: from constraint 1, F6 < E3 - F5 - F8 <= E3 - F5. *)
  Alcotest.check cmp "F6 vs E3-F5" FM.Always_lt (FM.compare_forms cs f6 (L.sub e3 f5));
  (* State 12/13: F9 = F8 < E3 - F5 - F6. *)
  Alcotest.check cmp "F9 vs E3-F5-F6" FM.Always_lt
    (FM.compare_forms cs f9 (L.sub e3 (L.add f5 f6)));
  (* Constraint 3 as an equality. *)
  Alcotest.check cmp "F4 = F5" FM.Always_eq (FM.compare_forms cs f4 f5);
  (* With no constraint relating F1 and F2, order is unknown. *)
  Alcotest.check cmp "F1 vs F2 unknown" FM.Unknown (FM.compare_forms cs (L.var 1) (L.var 2));
  Alcotest.check cmp "gt direction" FM.Always_gt (FM.compare_forms cs e3 f5)

let test_linform_ops () =
  let a = L.of_list [ (0, qi 2); (1, qi (-1)) ] (qi 3) in
  let b = L.of_list [ (0, qi (-2)); (1, qi 1) ] (qi (-3)) in
  Alcotest.(check bool) "a + (-a) = 0" true (L.equal L.zero (L.add a b));
  Alcotest.(check bool) "is_const" true (L.is_const (L.sub a a));
  Alcotest.(check (list int)) "vars" [ 0; 1 ] (L.vars a);
  let env v = if v = 0 then qi 5 else qi 7 in
  Alcotest.(check bool) "eval" true (Q.equal (qi 6) (L.eval env a));
  (* zero coefficients are dropped *)
  Alcotest.(check (list int)) "cancelled var" [ 1 ]
    (L.vars (L.of_list [ (0, qi 1); (0, qi (-1)); (1, qi 2) ] Q.zero))

let test_pp () =
  let name v = [| "E3"; "F1"; "F2" |].(v) in
  let s l = Format.asprintf "%a" (L.pp ~name) l in
  Alcotest.(check string) "simple" "E3 - F1 + 3" (s (L.of_list [ (0, qi 1); (1, qi (-1)) ] (qi 3)));
  Alcotest.(check string) "coeff" "2*F2" (s (L.scale (qi 2) (L.var 2)));
  Alcotest.(check string) "const only" "5/2" (s (L.const (Q.of_ints 5 2)))

(* Property: entailment agrees with random-model evaluation (soundness
   check: if entailed, every sampled model of cs satisfies c). *)
let gen_small_form =
  QCheck2.Gen.(
    let* c0 = int_range (-3) 3 in
    let* c1 = int_range (-3) 3 in
    let* k = int_range (-5) 5 in
    return (L.of_list [ (0, qi c0); (1, qi c1) ] (qi k)))

let prop_entailment_sound =
  QCheck2.Test.make ~name:"entailment sound under sampled models" ~count:200
    QCheck2.Gen.(triple gen_small_form gen_small_form gen_small_form)
    (fun (a, b, c) ->
      let cs = [ FM.ge a L.zero; FM.ge b L.zero ] in
      let goal = FM.ge c L.zero in
      if not (FM.entails cs goal) then true
      else begin
        (* scan a small grid of models *)
        let ok = ref true in
        for x = -4 to 4 do
          for y = -4 to 4 do
            let env v = if v = 0 then qi x else qi y in
            if FM.satisfies env (List.nth cs 0) && FM.satisfies env (List.nth cs 1) then
              if not (FM.satisfies env goal) then ok := false
          done
        done;
        !ok
      end)

let prop_feasible_complete_on_models =
  QCheck2.Test.make ~name:"a system with a grid model is feasible" ~count:200
    QCheck2.Gen.(pair gen_small_form gen_small_form)
    (fun (a, b) ->
      let cs = [ FM.ge a L.zero; FM.gt b L.zero ] in
      let has_model = ref false in
      for x = -4 to 4 do
        for y = -4 to 4 do
          let env v = if v = 0 then qi x else qi y in
          if List.for_all (FM.satisfies env) cs then has_model := true
        done
      done;
      (not !has_model) || FM.feasible cs)

let suite =
  ( "fourier_motzkin",
    [
      Alcotest.test_case "feasibility basics" `Quick test_feasible_basic;
      Alcotest.test_case "multivariate feasibility" `Quick test_feasible_multivar;
      Alcotest.test_case "equalities" `Quick test_equalities;
      Alcotest.test_case "entailment" `Quick test_entails;
      Alcotest.test_case "compare_forms on paper constraints" `Quick test_compare_forms;
      Alcotest.test_case "linform operations" `Quick test_linform_ops;
      Alcotest.test_case "pretty printing" `Quick test_pp;
      QCheck_alcotest.to_alcotest prop_entailment_sound;
      QCheck_alcotest.to_alcotest prop_feasible_complete_on_models;
    ] )
