(* Validation of the Symbolic Timed Reachability Graph against the paper's
   Figure 6 (symbolic states), Figure 7 (constraints used), and the
   insufficient-constraint diagnosis of section 3. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module SG = Tpan_core.Symbolic
module CG = Tpan_core.Concrete
module SW = Tpan_protocols.Stopwait

let graph = lazy (SG.build (SW.symbolic ()))

let e3 = Lin.var (Var.enabling "t3")
let f name = Lin.var (Var.firing name)
let lin = Alcotest.testable Lin.pp Lin.equal

let test_figure6_shape () =
  let g = Lazy.force graph in
  Alcotest.(check int) "18 states (Figure 6)" 18 (SG.Graph.num_states g);
  Alcotest.(check int) "20 edges" 20 (SG.Graph.num_edges g);
  Alcotest.(check int) "2 branching nodes" 2 (List.length (Sem.branching_states g))

let test_figure6_symbolic_rets () =
  let g = Lazy.force graph in
  let t3 = Net.trans_of_name (Tpn.net g.Sem.tpn) "t3" in
  let rets =
    Array.to_list g.Sem.states
    |> List.filter_map (fun st ->
           let r = st.Sem.ret.(t3) in
           if Lin.equal r Lin.zero then None else Some r)
    |> List.sort_uniq Lin.compare
  in
  (* Figure 6b: E(t3), E(t3)-F(t4), E(t3)-F(t5), E(t3)-F(t5)-F(t6),
     E(t3)-F(t5)-F(t6)-F(t8), E(t3)-F(t5)-F(t6)-F(t9) *)
  let expected =
    [
      e3;
      Lin.sub e3 (f "t4");
      Lin.sub e3 (f "t5");
      Lin.sub e3 (Lin.add (f "t5") (f "t6"));
      Lin.sub e3 (Lin.add (f "t5") (Lin.add (f "t6") (f "t8")));
      Lin.sub e3 (Lin.add (f "t5") (Lin.add (f "t6") (f "t9")));
    ]
  in
  Alcotest.(check int) "six distinct symbolic residues" 6 (List.length rets);
  List.iter
    (fun want ->
      Alcotest.(check bool)
        (Format.asprintf "residue %a present" Lin.pp want)
        true
        (List.exists (Lin.equal want) rets))
    expected

let test_figure6_probabilities () =
  let g = Lazy.force graph in
  let fr name = Tpan_symbolic.Poly.var (Var.frequency name) in
  let expect_pkt = Rf.make (fr "t4") (Tpan_symbolic.Poly.add (fr "t4") (fr "t5")) in
  let found = ref false in
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : SG.Graph.edge) -> if Rf.equal e.Sem.prob expect_pkt then found := true)
        edges)
    g.Sem.out;
  Alcotest.(check bool) "f(t4)/(f(t4)+f(t5)) appears" true !found;
  (* probabilities at each decision node sum to 1 symbolically *)
  List.iter
    (fun i ->
      let total =
        List.fold_left (fun acc (e : SG.Graph.edge) -> Rf.add acc e.Sem.prob) Rf.zero g.Sem.out.(i)
      in
      Alcotest.(check bool) "sums to one" true (Rf.equal Rf.one total))
    (Sem.branching_states g)

let test_figure7_constraint_audit () =
  let g = Lazy.force graph in
  let audit = SG.constraint_audit g in
  (* Figure 7 lists five resolutions; collect the multiset of label sets *)
  let label_sets = List.map (fun (_, _, ls) -> List.sort compare ls) audit in
  let count ls = List.length (List.filter (( = ) ls) label_sets) in
  Alcotest.(check int) "five constrained minima (Figure 7)" 5 (List.length audit);
  Alcotest.(check int) "three uses of (1) alone" 3 (count [ "(1)" ]);
  Alcotest.(check int) "one use of (1)+(3)" 1 (count [ "(1)"; "(3)" ]);
  Alcotest.(check int) "one use of (1)+(4)" 1 (count [ "(1)"; "(4)" ])

let test_insufficient_constraints_diagnosis () =
  (* Dropping constraint (1) makes state 4 unresolvable: F(t5) vs E(t3). *)
  let weak =
    C.of_list
      [ ("(3)", `Eq, f "t4", f "t5"); ("(4)", `Eq, f "t9", f "t8") ]
  in
  let tpn =
    Tpn.make ~constraints:weak (SW.net ())
      (let s = Tpn.spec in
       [
         ("t1", s ~firing:(Tpn.sym_firing "t1") ());
         ("t2", s ~firing:(Tpn.sym_firing "t2") ());
         ("t3", s ~enabling:(Tpn.sym_enabling "t3") ~firing:(Tpn.sym_firing "t3")
              ~frequency:(Tpn.Freq Q.zero) ());
         ("t4", s ~firing:(Tpn.sym_firing "t4") ());
         ("t5", s ~firing:(Tpn.sym_firing "t5") ());
         ("t6", s ~firing:(Tpn.sym_firing "t6") ());
         ("t7", s ~firing:(Tpn.sym_firing "t7") ());
         ("t8", s ~firing:(Tpn.sym_firing "t8") ());
         ("t9", s ~firing:(Tpn.sym_firing "t9") ());
       ])
  in
  match SG.build tpn with
  | _ -> Alcotest.fail "expected Insufficient"
  | exception SG.Insufficient { lhs; rhs; hint } ->
    (* the first unresolvable comparison involves E(t3) against a firing time *)
    let mentions e v = List.exists (Var.equal v) (Lin.vars e) in
    Alcotest.(check bool) "E(t3) involved" true
      (mentions lhs (Var.enabling "t3") || mentions rhs (Var.enabling "t3"));
    Alcotest.(check bool) "hint not empty" true (String.length hint > 0)

let test_symbolic_matches_concrete_at_paper_point () =
  (* Substituting the paper's times into every symbolic edge delay must
     reproduce the concrete graph's delays (state spaces are isomorphic;
     both are BFS-ordered, so indices align). *)
  let sg = Lazy.force graph in
  let cg = CG.build (SW.concrete SW.paper_params) in
  Alcotest.(check int) "same state count" (CG.Graph.num_states cg) (SG.Graph.num_states sg);
  let p = SW.paper_params in
  let env v =
    match Var.name v with
    | "E(t3)" -> p.SW.timeout
    | "F(t1)" | "F(t2)" | "F(t3)" -> p.SW.send_time
    | "F(t4)" | "F(t5)" | "F(t8)" | "F(t9)" -> p.SW.transit_time
    | "F(t6)" | "F(t7)" -> p.SW.process_time
    | _ -> Alcotest.fail ("unexpected var " ^ Var.name v)
  in
  Array.iteri
    (fun i sedges ->
      let cedges = cg.Sem.out.(i) in
      Alcotest.(check int) "same out-degree" (List.length cedges) (List.length sedges);
      List.iter2
        (fun (se : SG.Graph.edge) (ce : CG.Graph.edge) ->
          Alcotest.(check int) "same destination" ce.Sem.dst se.Sem.dst;
          Alcotest.(check bool) "delay matches" true
            (Q.equal ce.Sem.delay (Lin.eval env se.Sem.delay)))
        sedges cedges)
    sg.Sem.out

let test_normalize_collapses_entailed_zero () =
  (* if constraints force a symbolic time to equal zero, states normalize *)
  let cs = C.of_list [ ("z", `Eq, f "u", Lin.zero) ] in
  let b = Net.builder "norm" in
  let p = Net.add_place b ~init:1 "p" in
  let q_ = Net.add_place b "q" in
  let _ = Net.add_transition b ~name:"u" ~inputs:[ (p, 1) ] ~outputs:[ (q_, 1) ] in
  let tpn = Tpn.make ~constraints:cs (Net.build b) [ ("u", Tpn.spec ~firing:(Tpn.sym_firing "u") ()) ] in
  let g = SG.build tpn in
  (* F(u) = 0 entailed: the firing completes in the decision step itself *)
  Alcotest.(check int) "two states only" 2 (SG.Graph.num_states g);
  Alcotest.check lin "delay is zero" Lin.zero
    (List.fold_left (fun acc (e : SG.Graph.edge) -> Lin.add acc e.Sem.delay) Lin.zero
       (List.concat_map Fun.id (Array.to_list g.Sem.out)))

let suite =
  ( "trg_symbolic",
    [
      Alcotest.test_case "figure 6: shape" `Quick test_figure6_shape;
      Alcotest.test_case "figure 6: symbolic RET residues" `Quick test_figure6_symbolic_rets;
      Alcotest.test_case "figure 6: symbolic probabilities" `Quick test_figure6_probabilities;
      Alcotest.test_case "figure 7: constraint audit" `Quick test_figure7_constraint_audit;
      Alcotest.test_case "insufficient constraints diagnosed" `Quick test_insufficient_constraints_diagnosis;
      Alcotest.test_case "symbolic = concrete at paper point" `Quick test_symbolic_matches_concrete_at_paper_point;
      Alcotest.test_case "entailed-zero normalization" `Quick test_normalize_collapses_entailed_zero;
    ] )
