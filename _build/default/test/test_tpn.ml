(* Tests for timed-net construction: specs, conflict sets, validation. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Tpn = Tpan_core.Tpn
module SW = Tpan_protocols.Stopwait

let test_conflict_sets_stopwait () =
  let tpn = SW.concrete SW.paper_params in
  let net = Tpn.net tpn in
  let cs name = Tpn.conflict_set_of tpn (Net.trans_of_name net name) in
  (* the paper's three non-trivial conflict sets *)
  Alcotest.(check bool) "t4/t5 share a set" true (cs "t4" = cs "t5");
  Alcotest.(check bool) "t8/t9 share a set" true (cs "t8" = cs "t9");
  Alcotest.(check bool) "t3/t7 share a set (timeout vs ack)" true (cs "t3" = cs "t7");
  Alcotest.(check bool) "packet and ack sets distinct" true (cs "t4" <> cs "t8");
  Alcotest.(check bool) "t2 alone" true (cs "t2" <> cs "t4" && cs "t2" <> cs "t3");
  let sets = Tpn.conflict_sets tpn in
  let sizes = List.sort compare (Array.to_list (Array.map List.length sets)) in
  Alcotest.(check (list int)) "partition sizes" [ 1; 1; 1; 2; 2; 2 ] sizes

let test_spec_defaults () =
  let b = Net.builder "n" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let tpn = Tpn.make (Net.build b) [ ("t", Tpn.spec ()) ] in
  Alcotest.(check bool) "default enabling 0" true (Q.is_zero (Tpn.enabling_q tpn 0));
  Alcotest.(check bool) "default firing 0" true (Q.is_zero (Tpn.firing_q tpn 0));
  Alcotest.(check bool) "default freq 1" true (Q.equal Q.one (Tpn.frequency_q tpn 0));
  Alcotest.(check bool) "concrete" true (Tpn.is_concrete tpn)

let test_make_validation () =
  let b = Net.builder "n" in
  let p = Net.add_place b ~init:1 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[] in
  let _ = Net.add_transition b ~name:"u" ~inputs:[ (p, 1) ] ~outputs:[] in
  let net = Net.build b in
  Alcotest.check_raises "missing spec"
    (Invalid_argument "Tpn.make: missing spec for transition \"u\"") (fun () ->
      ignore (Tpn.make net [ ("t", Tpn.spec ()) ]));
  Alcotest.check_raises "unknown transition"
    (Invalid_argument "Tpn.make: unknown transition \"zz\"") (fun () ->
      ignore (Tpn.make net [ ("zz", Tpn.spec ()) ]));
  (try
     ignore (Tpn.make net [ ("t", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int (-1))) ()); ("u", Tpn.spec ()) ]);
     Alcotest.fail "negative firing time accepted"
   with Tpn.Unsupported _ -> ());
  (* conflict-set override must match the structural partition *)
  (try
     let b2 = Net.builder "n2" in
     let p1 = Net.add_place b2 ~init:1 "p1" in
     let p2 = Net.add_place b2 ~init:1 "p2" in
     let _ = Net.add_transition b2 ~name:"a" ~inputs:[ (p1, 1) ] ~outputs:[] in
     let _ = Net.add_transition b2 ~name:"b" ~inputs:[ (p2, 1) ] ~outputs:[] in
     ignore
       (Tpn.make
          ~conflict_sets:[ ([ "a"; "b" ], [ Q.one; Q.one ]) ]
          (Net.build b2)
          [ ("a", Tpn.spec ()); ("b", Tpn.spec ()) ]);
     Alcotest.fail "non-structural conflict set accepted"
   with Tpn.Unsupported _ -> ())

let test_conflict_set_frequency_override () =
  let tpn =
    Tpn.make
      ~conflict_sets:[ ([ "t4"; "t5" ], [ Q.of_ints 1 10; Q.of_ints 9 10 ]) ]
      (SW.net ())
      (List.map
         (fun t -> (t, Tpn.spec ()))
         [ "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "t8"; "t9" ])
  in
  let net = Tpn.net tpn in
  Alcotest.(check bool) "override applied" true
    (Q.equal (Q.of_ints 1 10) (Tpn.frequency_q tpn (Net.trans_of_name net "t4")))

let test_symbolic_accessors () =
  let tpn = SW.symbolic () in
  let net = Tpn.net tpn in
  let t5 = Net.trans_of_name net "t5" in
  Alcotest.(check bool) "not concrete" false (Tpn.is_concrete tpn);
  (try
     ignore (Tpn.firing_q tpn t5);
     Alcotest.fail "firing_q should reject symbolic"
   with Tpn.Unsupported _ -> ());
  let e = Tpn.firing_expr tpn t5 in
  Alcotest.(check string) "expr name" "F(t5)" (Format.asprintf "%a" Tpan_symbolic.Linexpr.pp e);
  Alcotest.(check bool) "zero-frequency timeout" true
    (Tpn.is_zero_frequency tpn (Net.trans_of_name net "t3"));
  Alcotest.(check bool) "symbolic freq assumed positive" false
    (Tpn.is_zero_frequency tpn (Net.trans_of_name net "t4"));
  let vars = Tpn.time_vars tpn in
  Alcotest.(check int) "ten time symbols (E(t3) + nine F)" 10 (List.length vars)

let test_bind_times () =
  let tpn = SW.symbolic () in
  let p = SW.paper_params in
  let bindings =
    [
      ("E(t3)", p.SW.timeout);
      ("F(t1)", p.SW.send_time); ("F(t2)", p.SW.send_time); ("F(t3)", p.SW.send_time);
      ("F(t4)", p.SW.transit_time); ("F(t5)", p.SW.transit_time);
      ("F(t6)", p.SW.process_time); ("F(t7)", p.SW.process_time);
      ("F(t8)", p.SW.transit_time); ("F(t9)", p.SW.transit_time);
      ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
      ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
    ]
  in
  let bound = Tpn.bind_times tpn bindings in
  Alcotest.(check bool) "fully concrete after binding" true (Tpn.is_concrete bound);
  let net = Tpn.net bound in
  Alcotest.(check bool) "bound value" true
    (Q.equal p.SW.transit_time (Tpn.firing_q bound (Net.trans_of_name net "t5")));
  (* a binding violating constraint (1) must be rejected *)
  let bad = ("E(t3)", Q.of_int 10) :: List.remove_assoc "E(t3)" bindings in
  (try
     ignore (Tpn.bind_times tpn bad);
     Alcotest.fail "constraint-violating binding accepted"
   with Tpn.Unsupported _ -> ())

let test_paper_point_satisfies_constraints () =
  (* Constraint (1): 1000 > 106.7 + 13.5 + 106.7 = 226.9 *)
  let env v =
    match Var.name v with
    | "E(t3)" -> Q.of_int 1000
    | "F(t5)" | "F(t4)" | "F(t8)" | "F(t9)" -> Q.of_decimal_string "106.7"
    | "F(t6)" | "F(t7)" -> Q.of_decimal_string "13.5"
    | _ -> Q.one
  in
  Alcotest.(check bool) "paper point is a model" true
    (Tpan_symbolic.Constraints.satisfies env SW.symbolic_constraints)

let suite =
  ( "tpn",
    [
      Alcotest.test_case "stopwait conflict sets" `Quick test_conflict_sets_stopwait;
      Alcotest.test_case "spec defaults" `Quick test_spec_defaults;
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "frequency override" `Quick test_conflict_set_frequency_override;
      Alcotest.test_case "symbolic accessors" `Quick test_symbolic_accessors;
      Alcotest.test_case "bind_times" `Quick test_bind_times;
      Alcotest.test_case "paper point satisfies constraints" `Quick test_paper_point_satisfies_constraints;
    ] )
