(* Smoke tests for the report generator: the right sections appear with the
   right headline numbers, for concrete, symbolic, and degenerate nets. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module Report = Tpan_perf.Report
module SW = Tpan_protocols.Stopwait
module PL = Tpan_protocols.Pipeline

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let render f tpn = Format.asprintf "%a" (fun fmt tpn -> f fmt tpn) tpn

let test_concrete_report () =
  let tpn = SW.concrete SW.paper_params in
  let out = render (Report.concrete ~events:[ "t6"; "t7" ]) tpn in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
    [
      "8 places, 9 transitions";
      "P-invariant: p1 + p4 + p7 = 1";
      "minimal siphons";
      "18 states";
      "mean cycle time: 316.461";
      "completion rate t7";
      "350.649307";
      "time to first t6 completion: 173.936842";
    ]

let test_symbolic_report () =
  let tpn = SW.symbolic () in
  let out = render (Report.symbolic ~events:[ "t6" ]) tpn in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
    [
      "timing constraints";
      "E(t3) > F(t8) + F(t5) + F(t6)";
      "18 states";
      "justified by";
      "completion rate t7";
      "f(t4)";
      "time to first t6 completion =";
    ]

let test_deterministic_report () =
  let tpn = PL.concrete PL.default_params in
  let out = render (Report.concrete ?events:None) tpn in
  Alcotest.(check bool) "reports the deterministic cycle" true
    (contains out "deterministic cycle: period 35")

let suite =
  ( "report",
    [
      Alcotest.test_case "concrete report" `Quick test_concrete_report;
      Alcotest.test_case "symbolic report" `Quick test_symbolic_report;
      Alcotest.test_case "deterministic report" `Quick test_deterministic_report;
    ] )
