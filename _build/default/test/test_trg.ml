(* Validation of the concrete Timed Reachability Graph against the paper's
   Figure 4: 18 states, two branching decision nodes, exact delays. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SW = Tpan_protocols.Stopwait

let qd = Q.of_decimal_string

let graph = lazy (CG.build (SW.concrete SW.paper_params))

let find_state g pred =
  let n = Array.length g.Sem.states in
  let rec go i = if i >= n then None else if pred g.Sem.states.(i) then Some i else go (i + 1) in
  go 0

let marking_is g names st =
  let net = Tpn.net g.Sem.tpn in
  let expected = Array.make (Net.num_places net) 0 in
  List.iter (fun n -> expected.(Net.place_of_name net n) <- expected.(Net.place_of_name net n) + 1) names;
  Marking.equal st.Sem.marking expected

let test_figure4_shape () =
  let g = Lazy.force graph in
  Alcotest.(check int) "18 states (Figure 4)" 18 (CG.Graph.num_states g);
  Alcotest.(check int) "20 edges" 20 (CG.Graph.num_edges g);
  Alcotest.(check int) "2 branching decision nodes" 2 (List.length (Sem.branching_states g));
  Alcotest.(check (list int)) "no terminal states" [] (CG.Graph.terminal_states g)

let test_figure4_decision_nodes () =
  let g = Lazy.force graph in
  (* the packet decision: {p2,p4,p8} with timeout armed at 1000 *)
  let d1 =
    find_state g (fun st ->
        marking_is g [ "p2"; "p4"; "p8" ] st
        && Q.equal st.Sem.ret.(Net.trans_of_name (Tpn.net g.Sem.tpn) "t3") (Q.of_int 1000))
  in
  (* the ack decision: {p4,p5,p8} with RET(t3) = 879.8 *)
  let d2 =
    find_state g (fun st ->
        marking_is g [ "p4"; "p5"; "p8" ] st
        && Q.equal st.Sem.ret.(Net.trans_of_name (Tpn.net g.Sem.tpn) "t3") (qd "879.8"))
  in
  let branching = Sem.branching_states g in
  (match d1 with
   | Some i -> Alcotest.(check bool) "packet decision branches" true (List.mem i branching)
   | None -> Alcotest.fail "packet decision state not found");
  match d2 with
  | Some i -> Alcotest.(check bool) "ack decision branches" true (List.mem i branching)
  | None -> Alcotest.fail "ack decision state (RET 879.8) not found"

let test_figure4_ret_values () =
  let g = Lazy.force graph in
  let t3 = Net.trans_of_name (Tpn.net g.Sem.tpn) "t3" in
  let rets =
    Array.to_list g.Sem.states
    |> List.filter_map (fun st ->
           let r = st.Sem.ret.(t3) in
           if Q.is_zero r then None else Some r)
    |> List.sort_uniq Q.compare
  in
  let expected = List.map qd [ "773.1"; "879.8"; "893.3"; "1000" ] in
  Alcotest.(check int) "four distinct timeout residues" 4 (List.length rets);
  List.iter2
    (fun a b -> Alcotest.(check bool) "ret value" true (Q.equal a b))
    expected rets

let test_figure4_rft_values () =
  let g = Lazy.force graph in
  let rfts =
    Array.to_list g.Sem.states
    |> List.concat_map (fun st ->
           Array.to_list st.Sem.rft |> List.filter (fun x -> not (Q.is_zero x)))
    |> List.sort_uniq Q.compare
  in
  let expected = List.map qd [ "1"; "13.5"; "106.7" ] in
  Alcotest.(check int) "three distinct firing residues" 3 (List.length rfts);
  List.iter2 (fun a b -> Alcotest.(check bool) "rft value" true (Q.equal a b)) expected rfts

let test_figure4_edge_delays () =
  let g = Lazy.force graph in
  let delays = ref [] in
  Array.iter
    (fun edges ->
      List.iter
        (fun (e : CG.Graph.edge) -> if not (Q.is_zero e.Sem.delay) then delays := e.Sem.delay :: !delays)
        edges)
    g.Sem.out;
  let distinct = List.sort_uniq Q.compare !delays in
  let expected = List.map qd [ "1"; "13.5"; "106.7"; "773.1"; "893.3" ] in
  Alcotest.(check int) "five distinct positive delays" 5 (List.length distinct);
  List.iter2 (fun a b -> Alcotest.(check bool) "delay" true (Q.equal a b)) expected distinct

let test_probabilities () =
  let g = Lazy.force graph in
  (* every decision state's outgoing probabilities sum to 1 *)
  List.iter
    (fun i ->
      let total =
        List.fold_left (fun acc (e : CG.Graph.edge) -> Q.add acc e.Sem.prob) Q.zero g.Sem.out.(i)
      in
      Alcotest.(check bool) "sums to one" true (Q.equal Q.one total))
    (Sem.branching_states g);
  (* the loss branches carry probability 0.05 *)
  let five_percent =
    Array.to_list g.Sem.out
    |> List.concat_map Fun.id
    |> List.filter (fun (e : CG.Graph.edge) -> Q.equal e.Sem.prob (qd "0.05"))
  in
  Alcotest.(check int) "two 5% branches" 2 (List.length five_percent)

let test_timeout_priority () =
  (* With zero transit times and E(t3) binding arrival and timeout to the
     same instant, the zero-frequency timeout must lose against t7: the
     protocol never times out when the ack arrives simultaneously. *)
  let p = { SW.paper_params with SW.timeout = Q.add (qd "106.7") (Q.add (qd "13.5") (qd "106.7")) } in
  (* timeout = exactly the one-way trip: E(t3) = F(t5)+F(t6)+F(t8); the ack
     arrives exactly when the timer expires. *)
  let tpn = SW.concrete p in
  let g = CG.build tpn in
  let net = Tpn.net tpn in
  let t7 = Net.trans_of_name net "t7" and t3 = Net.trans_of_name net "t3" in
  (* find the state where both t7 and t3 are firable: outgoing selector must
     fire t7 (probability 1), never t3 *)
  let found = ref false in
  Array.iteri
    (fun i st ->
      let firable_t7 =
        Marking.enabled net st.Sem.marking t7 && Q.is_zero st.Sem.ret.(t7)
        && Marking.enabled net st.Sem.marking t3 && Q.is_zero st.Sem.ret.(t3)
      in
      if firable_t7 then begin
        found := true;
        List.iter
          (fun (e : CG.Graph.edge) ->
            Alcotest.(check bool) "t7 wins" true (List.mem t7 e.Sem.fired);
            Alcotest.(check bool) "t3 suppressed" false (List.mem t3 e.Sem.fired))
          g.Sem.out.(i)
      end)
    g.Sem.states;
  Alcotest.(check bool) "simultaneous state exists" true !found

let test_initial_state () =
  let tpn = SW.concrete SW.paper_params in
  let s0 = CG.Graph.initial_state tpn in
  let net = Tpn.net tpn in
  Alcotest.(check int) "p1 marked" 1 (Marking.tokens s0.Sem.marking (Net.place_of_name net "p1"));
  Alcotest.(check int) "p8 marked" 1 (Marking.tokens s0.Sem.marking (Net.place_of_name net "p8"));
  Alcotest.(check bool) "all RFT zero" true (Array.for_all Q.is_zero s0.Sem.rft);
  Alcotest.(check bool) "all RET zero (t2 has E=0)" true (Array.for_all Q.is_zero s0.Sem.ret)

let test_zero_firing_time () =
  (* A transition with F = 0 completes instantaneously: its outputs appear
     in the same step and downstream work proceeds. *)
  let b = Net.builder "instant" in
  let a = Net.add_place b ~init:1 "a" in
  let c = Net.add_place b "c" in
  let d = Net.add_place b "d" in
  let _ = Net.add_transition b ~name:"zero" ~inputs:[ (a, 1) ] ~outputs:[ (c, 1) ] in
  let _ = Net.add_transition b ~name:"slow" ~inputs:[ (c, 1) ] ~outputs:[ (d, 1) ] in
  let net = Net.build b in
  let tpn =
    Tpn.make net
      [ ("zero", Tpn.spec ()); ("slow", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 5)) ()) ]
  in
  let g = CG.build tpn in
  let terminal = CG.Graph.terminal_states g in
  Alcotest.(check int) "one terminal" 1 (List.length terminal);
  let tstate = g.Sem.states.(List.hd terminal) in
  Alcotest.(check int) "token reached d" 1
    (Marking.tokens tstate.Sem.marking (Net.place_of_name net "d"))

let test_multiple_firing_rejected () =
  (* two tokens in the input of a single transition: firing must disable it,
     so this net violates the modelling assumption *)
  let b = Net.builder "double" in
  let p = Net.add_place b ~init:2 "p" in
  let _ = Net.add_transition b ~name:"t" ~inputs:[ (p, 1) ] ~outputs:[] in
  let tpn = Tpn.make (Net.build b) [ ("t", Tpn.spec ~firing:(Tpn.Fixed Q.one) ()) ] in
  (try
     ignore (CG.build tpn);
     Alcotest.fail "multiply-enabled transition accepted"
   with Tpn.Unsupported _ -> ())

let test_symbolic_net_rejected_by_concrete () =
  try
    ignore (CG.build (SW.symbolic ()));
    Alcotest.fail "symbolic net accepted by concrete builder"
  with Tpn.Unsupported _ -> ()

let test_simultaneous_decisions () =
  (* Two independent lossy channels whose packets arrive at the SAME
     instant: the decision state has two firable conflict sets, so the
     selectors are their cross product and the probabilities multiply
     (Figure 3's "cross product of firable conflict sets"). *)
  let b = Net.builder "twochan" in
  let m1 = Net.add_place b ~init:1 "m1" in
  let m2 = Net.add_place b ~init:1 "m2" in
  let d1 = Net.add_place b "d1" in
  let d2 = Net.add_place b "d2" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t "lose1" [ (m1, 1) ] [];
  t "ok1" [ (m1, 1) ] [ (d1, 1) ];
  t "lose2" [ (m2, 1) ] [];
  t "ok2" [ (m2, 1) ] [ (d2, 1) ];
  let net = Net.build b in
  let q fr = Tpn.Freq (Q.of_ints fr 10) in
  let tpn =
    Tpn.make net
      [
        ("lose1", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 5)) ~frequency:(q 3) ());
        ("ok1", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 5)) ~frequency:(q 7) ());
        ("lose2", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 9)) ~frequency:(q 4) ());
        ("ok2", Tpn.spec ~firing:(Tpn.Fixed (Q.of_int 9)) ~frequency:(q 6) ());
      ]
  in
  let g = CG.build tpn in
  (* initial state: both conflict sets firable simultaneously -> 4 edges *)
  let first = g.Sem.out.(0) in
  Alcotest.(check int) "four selectors" 4 (List.length first);
  let prob fired_names =
    let names e = List.sort compare (List.map (Net.trans_name net) e.Sem.fired) in
    match List.find_opt (fun e -> names e = List.sort compare fired_names) first with
    | Some e -> e.Sem.prob
    | None -> Alcotest.fail ("selector not found: " ^ String.concat "," fired_names)
  in
  let qq a b = Q.mul (Q.of_ints a 10) (Q.of_ints b 10) in
  Alcotest.(check bool) "p(ok1,ok2) = 0.42" true (Q.equal (prob [ "ok1"; "ok2" ]) (qq 7 6));
  Alcotest.(check bool) "p(lose1,lose2) = 0.12" true (Q.equal (prob [ "lose1"; "lose2" ]) (qq 3 4));
  Alcotest.(check bool) "p(ok1,lose2) = 0.28" true (Q.equal (prob [ "ok1"; "lose2" ]) (qq 7 4));
  Alcotest.(check bool) "probabilities sum to 1" true
    (Q.equal Q.one (List.fold_left (fun acc (e : CG.Graph.edge) -> Q.add acc e.Sem.prob) Q.zero first));
  (* each selector fires exactly one transition from each set *)
  List.iter
    (fun (e : CG.Graph.edge) -> Alcotest.(check int) "two transitions per selector" 2 (List.length e.Sem.fired))
    first

let suite =
  ( "trg_concrete",
    [
      Alcotest.test_case "figure 4: shape" `Quick test_figure4_shape;
      Alcotest.test_case "figure 4: decision nodes" `Quick test_figure4_decision_nodes;
      Alcotest.test_case "figure 4: RET values" `Quick test_figure4_ret_values;
      Alcotest.test_case "figure 4: RFT values" `Quick test_figure4_rft_values;
      Alcotest.test_case "figure 4: edge delays" `Quick test_figure4_edge_delays;
      Alcotest.test_case "branch probabilities" `Quick test_probabilities;
      Alcotest.test_case "timeout priority (zero frequency)" `Quick test_timeout_priority;
      Alcotest.test_case "initial state" `Quick test_initial_state;
      Alcotest.test_case "zero firing time" `Quick test_zero_firing_time;
      Alcotest.test_case "multiple firing rejected" `Quick test_multiple_firing_rejected;
      Alcotest.test_case "concrete builder rejects symbols" `Quick test_symbolic_net_rejected_by_concrete;
      Alcotest.test_case "simultaneous decisions (selector cross product)" `Quick test_simultaneous_decisions;
    ] )
