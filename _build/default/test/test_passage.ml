(* Tests for first-passage (latency) analysis: hand-computed expectations,
   symbolic/concrete agreement, simulation agreement, divergence
   detection. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module P = Tpan_perf.Passage
module Sim = Tpan_sim.Simulator
module SW = Tpan_protocols.Stopwait

let qd = Q.of_decimal_string

let test_delivery_latency_hand_computed () =
  (* Mean time from protocol start to the first delivery (t6 completes).
     By hand: 1 ms to send (t2), then from the packet decision x satisfies
       x = 0.95·(106.7 + 13.5) + 0.05·(1002 + x)
     so x = 164.29/0.95 = 172.9368..., total 173.9368... =
     1 + 164.29/0.95 = (0.95 + 164.29)/0.95 = 165.24/0.95 = 16524/95. *)
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  match P.concrete_latency g ~event:(P.completion_event tpn SW.t_receive) () with
  | None -> Alcotest.fail "latency should be finite"
  | Some h ->
    Alcotest.(check bool)
      (Format.asprintf "h = %a, expected 16524/95" Q.pp h)
      true
      (Q.equal h (Q.div (qd "165.24") (qd "0.95")))

let test_ack_latency_exceeds_delivery () =
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  let deliver = Option.get (P.concrete_latency g ~event:(P.completion_event tpn SW.t_receive) ()) in
  let acked = Option.get (P.concrete_latency g ~event:(P.completion_event tpn SW.t_process_ack) ()) in
  Alcotest.(check bool) "ack comes after delivery" true (Q.compare acked deliver > 0);
  (* the gap is at least the ack transit + processing *)
  Alcotest.(check bool) "gap >= 120.2" true
    (Q.compare (Q.sub acked deliver) (qd "120.2") >= 0)

let test_firing_vs_completion () =
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  let begin_send = Option.get (P.concrete_latency g ~event:(P.firing_event tpn SW.t_send) ()) in
  let end_send = Option.get (P.concrete_latency g ~event:(P.completion_event tpn SW.t_send) ()) in
  Alcotest.(check bool) "send begins immediately" true (Q.is_zero begin_send);
  Alcotest.(check bool) "send completes after F(t2)=1" true (Q.equal end_send Q.one)

let test_symbolic_latency_matches () =
  let stpn = SW.symbolic () in
  let sg = SG.build stpn in
  let expr = Option.get (P.symbolic_latency sg ~event:(P.completion_event stpn SW.t_receive) ()) in
  let v =
    Tpan_perf.Measures.Symbolic.eval_at expr
      [
        ("E(t3)", Q.of_int 1000);
        ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
        ("F(t4)", qd "106.7"); ("F(t5)", qd "106.7");
        ("F(t6)", qd "13.5"); ("F(t7)", qd "13.5");
        ("F(t8)", qd "106.7"); ("F(t9)", qd "106.7");
        ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
        ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
      ]
  in
  Alcotest.(check bool) "symbolic latency = concrete value" true
    (Q.equal v (Q.div (qd "165.24") (qd "0.95")))

let test_unreachable_event () =
  (* an event that can never happen: infinite expectation *)
  let b = Net.builder "loop" in
  let p = Net.add_place b ~init:1 "p" in
  let q_ = Net.add_place b "q" in
  let _ = Net.add_transition b ~name:"spin" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let _ = Net.add_transition b ~name:"never" ~inputs:[ (q_, 1) ] ~outputs:[] in
  let net = Net.build b in
  let tpn =
    Tpn.make net
      [
        ("spin", Tpn.spec ~firing:(Tpn.Fixed Q.one) ());
        ("never", Tpn.spec ~firing:(Tpn.Fixed Q.one) ());
      ]
  in
  let g = CG.build tpn in
  Alcotest.(check bool) "diverges" true
    (P.concrete_latency g ~event:(P.completion_event tpn "never") () = None)

let test_possibly_escaping_event () =
  (* with probability 1/2 the system falls into a sink that never produces
     the event: expectation infinite, must return None *)
  let b = Net.builder "escape" in
  let p = Net.add_place b ~init:1 "p" in
  let good = Net.add_place b "good" in
  let bad = Net.add_place b "bad" in
  let _ = Net.add_transition b ~name:"win" ~inputs:[ (p, 1) ] ~outputs:[ (good, 1) ] in
  let _ = Net.add_transition b ~name:"lose" ~inputs:[ (p, 1) ] ~outputs:[ (bad, 1) ] in
  let _ = Net.add_transition b ~name:"celebrate" ~inputs:[ (good, 1) ] ~outputs:[ (good, 1) ] in
  let _ = Net.add_transition b ~name:"sulk" ~inputs:[ (bad, 1) ] ~outputs:[ (bad, 1) ] in
  let net = Net.build b in
  let half = Q.of_ints 1 2 in
  let tpn =
    Tpn.make net
      [
        ("win", Tpn.spec ~firing:(Tpn.Fixed Q.one) ~frequency:(Tpn.Freq half) ());
        ("lose", Tpn.spec ~firing:(Tpn.Fixed Q.one) ~frequency:(Tpn.Freq half) ());
        ("celebrate", Tpn.spec ~firing:(Tpn.Fixed Q.one) ());
        ("sulk", Tpn.spec ~firing:(Tpn.Fixed Q.one) ());
      ]
  in
  let g = CG.build tpn in
  Alcotest.(check bool) "escape detected" true
    (P.concrete_latency g ~event:(P.completion_event tpn "celebrate") () = None);
  (* but the reachable-with-certainty event is finite *)
  (match P.concrete_latency g ~event:(P.firing_event tpn "win") () with
   | Some _ -> ()
   | None ->
     (* 'win' only fires with probability 1/2: also divergent! *)
     ());
  (* an event on ALL branches is finite: completion of win-or-lose — use
     the decision itself *)
  let ev (e : _ Sem.edge) = e.Sem.fired <> [] && List.length e.Sem.fired = 1 && e.Sem.delay = Q.zero in
  ignore ev;
  Alcotest.(check bool) "first decision latency finite" true
    (P.concrete_latency g
       ~event:(fun e -> e.Sem.fired <> [] && e.Sem.completed = [] && Q.is_zero e.Sem.delay)
       ()
     <> None)

let test_latency_agrees_with_simulation () =
  (* mean time to first delivery: restart simulation repeatedly and average *)
  let tpn = SW.concrete SW.paper_params in
  let g = CG.build tpn in
  let exact = Q.to_float (Option.get (P.concrete_latency g ~event:(P.completion_event tpn SW.t_receive) ())) in
  let net = Tpn.net tpn in
  let t6 = Net.trans_of_name net SW.t_receive in
  (* estimate via renewal: completions of t6 recur; time-to-first from the
     initial state equals the renewal-cycle estimate only approximately, so
     simulate many short runs and take the first completion time. We lack a
     "first event time" probe in the simulator API; instead check the
     steady-state rate of t6 is consistent with the passage time being
     finite and below the mean cycle. *)
  let stats = Sim.run ~seed:21 ~horizon:(Q.of_int 1_000_000) tpn in
  Alcotest.(check bool) "t6 completions occur" true (stats.Sim.completed.(t6) > 0);
  Alcotest.(check bool) "latency below mean inter-delivery time" true
    (exact < Q.to_float stats.Sim.sim_time /. float_of_int stats.Sim.completed.(t6))

let suite =
  ( "passage",
    [
      Alcotest.test_case "delivery latency (hand computed)" `Quick test_delivery_latency_hand_computed;
      Alcotest.test_case "ack latency > delivery latency" `Quick test_ack_latency_exceeds_delivery;
      Alcotest.test_case "firing vs completion events" `Quick test_firing_vs_completion;
      Alcotest.test_case "symbolic latency expression" `Quick test_symbolic_latency_matches;
      Alcotest.test_case "unreachable event diverges" `Quick test_unreachable_event;
      Alcotest.test_case "probabilistic escape diverges" `Quick test_possibly_escaping_event;
      Alcotest.test_case "latency consistent with simulation" `Slow test_latency_agrees_with_simulation;
    ] )
