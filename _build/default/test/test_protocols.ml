(* Tests for the protocol model library beyond the paper's stop-and-wait:
   alternating-bit, handshake, shared channel. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Reach = Tpan_petri.Reachability
module Inv = Tpan_petri.Invariants
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module Abp = Tpan_protocols.Abp
module Hs = Tpan_protocols.Handshake
module Sc = Tpan_protocols.Shared_channel
module SW = Tpan_protocols.Stopwait

(* --- structural sanity via the petri substrate --- *)

(* Safeness of these protocols is a *timed* property: untimed, the timeout
   can fire while a packet is still in the medium, so the medium places are
   structurally unbounded (the paper notes constraints (3)/(4) exist to
   protect "the safeness assumption"). We assert both facts: the untimed
   net is unbounded, and every timed-reachable marking is safe. *)

let timed_markings_safe tpn =
  let g = CG.build tpn in
  Array.for_all
    (fun st -> Array.for_all (fun k -> k <= 1) st.Sem.marking)
    g.Sem.states

let test_stopwait_structure () =
  let net = SW.net () in
  let tree = Tpan_petri.Coverability.build net in
  Alcotest.(check bool) "untimed net is unbounded" false
    (Tpan_petri.Coverability.is_bounded tree);
  Alcotest.(check bool) "medium place p2 unbounded" true
    (List.mem (Net.place_of_name net "p2") (Tpan_petri.Coverability.unbounded_places tree));
  Alcotest.(check bool) "timed reachable markings are safe" true
    (timed_markings_safe (SW.concrete SW.paper_params));
  (* receiver-ready place is conserved *)
  let v = Array.make (Net.num_places net) 0 in
  v.(Net.place_of_name net "p8") <- 1;
  Alcotest.(check bool) "p8 invariant" true (Inv.is_p_invariant net v)

let test_abp_structure () =
  let net = Abp.net () in
  Alcotest.(check int) "places" 14 (Net.num_places net);
  Alcotest.(check int) "transitions" 18 (Net.num_transitions net);
  Alcotest.(check bool) "timed reachable markings are safe" true
    (timed_markings_safe (Abp.concrete Abp.default_params));
  (* expect0 + expect1 = 1 is conserved *)
  let v = Array.make (Net.num_places net) 0 in
  v.(Net.place_of_name net "expect0") <- 1;
  v.(Net.place_of_name net "expect1") <- 1;
  Alcotest.(check bool) "expectation invariant" true (Inv.is_p_invariant net v)

let test_handshake_structure () =
  Alcotest.(check bool) "timed reachable markings are safe" true
    (timed_markings_safe (Hs.concrete Hs.default_params))

(* --- ABP analysis --- *)

let test_abp_concrete_analysis () =
  let tpn = Abp.concrete Abp.default_params in
  let g = CG.build tpn in
  Alcotest.(check int) "52 states" 52 (CG.Graph.num_states g);
  Alcotest.(check int) "six branching nodes" 6 (List.length (Sem.branching_states g));
  let res = M.Concrete.analyze g in
  let thr =
    List.fold_left (fun acc t -> Q.add acc (M.Concrete.throughput res g t)) Q.zero Abp.deliveries
  in
  (* ABP at the paper's timings is slightly faster than stop-and-wait:
     it has no separate prepare step and duplicates are absorbed at the
     receiver. Sanity-band check. *)
  let msgs_per_s = Q.to_float thr *. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.4f in (2.5, 3.5)" msgs_per_s)
    true
    (msgs_per_s > 2.5 && msgs_per_s < 3.5);
  (* bit symmetry: the two phases deliver at the same rate *)
  match Abp.deliveries with
  | [ d0; d1 ] ->
    Alcotest.(check bool) "phase symmetry" true
      (Q.equal (M.Concrete.throughput res g d0) (M.Concrete.throughput res g d1))
  | _ -> Alcotest.fail "expected two delivery transitions"

let test_abp_lossless_matches_cycle () =
  (* without losses ABP is deterministic: cycle = 2 messages per
     2·(send+pkt+proc+ack+proc) ... verify against the simulator instead of
     hand-arithmetic: exact graph cycle time = simulated rate *)
  let p = { Abp.default_params with Abp.packet_loss = Q.zero; ack_loss = Q.zero } in
  let tpn = Abp.concrete p in
  let g = CG.build tpn in
  match Tpan_perf.Decision_graph.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
  | None -> Alcotest.fail "lossless ABP should cycle deterministically"
  | Some (cycle, _) ->
    (* one cycle delivers two messages (bit 0 and bit 1) *)
    let per_msg = Q.div cycle (Q.of_int 2) in
    let net = Tpn.net tpn in
    let stats = Sim.run ~seed:3 ~horizon:(Q.of_int 1_000_000) tpn in
    let sim_thr =
      List.fold_left
        (fun acc t -> acc +. Sim.throughput stats (Net.trans_of_name net t))
        0. Abp.deliveries
    in
    Alcotest.(check (float 1e-6)) "sim matches deterministic cycle"
      (1. /. Q.to_float per_msg) sim_thr

let test_abp_symbolic () =
  let tpn = Abp.symbolic () in
  let g = SG.build tpn in
  Alcotest.(check int) "same state count as concrete" 52 (SG.Graph.num_states g);
  let res = M.Symbolic.analyze g in
  let thr =
    List.fold_left (fun acc t -> Rf.add acc (M.Symbolic.throughput res g t)) Rf.zero Abp.deliveries
  in
  (* evaluate at the default point and compare with concrete analysis *)
  let p = Abp.default_params in
  let v =
    M.Symbolic.eval_at thr
      [
        ("E(to)", p.Abp.timeout);
        ("F(send)", p.Abp.send_time);
        ("F(pkt)", p.Abp.transit_time);
        ("F(ack)", p.Abp.transit_time);
        ("F(proc)", p.Abp.process_time);
        ("f(lp)", p.Abp.packet_loss);
        ("f(dp)", Q.sub Q.one p.Abp.packet_loss);
        ("f(la)", p.Abp.ack_loss);
        ("f(da)", Q.sub Q.one p.Abp.ack_loss);
      ]
  in
  let cg = CG.build (Abp.concrete p) in
  let cres = M.Concrete.analyze cg in
  let cthr =
    List.fold_left (fun acc t -> Q.add acc (M.Concrete.throughput cres cg t)) Q.zero Abp.deliveries
  in
  Alcotest.(check bool) "symbolic = concrete at default point" true (Q.equal v cthr)

let test_abp_sim_agreement () =
  let tpn = Abp.concrete Abp.default_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let exact =
    Q.to_float
      (List.fold_left (fun acc t -> Q.add acc (M.Concrete.throughput res g t)) Q.zero Abp.deliveries)
  in
  let net = Tpn.net tpn in
  let stats = Sim.run ~seed:17 ~horizon:(Q.of_int 2_000_000) tpn in
  let sim =
    List.fold_left (fun acc t -> acc +. Sim.throughput stats (Net.trans_of_name net t)) 0. Abp.deliveries
  in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.5f vs exact %.5f" sim exact)
    true
    (Float.abs (sim -. exact) /. exact < 0.03)

(* --- handshake --- *)

let test_handshake_analysis () =
  let tpn = Hs.concrete Hs.default_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let conn = M.Concrete.throughput res g Hs.t_establish in
  (* lossless bound: one connection per send+med+acc+med+establish+session
     = 2+80+10+80+2+1500 = 1674 ms; losses make it slightly slower *)
  let per_conn = 1. /. (Q.to_float conn) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f ms per connection (>= 1674)" per_conn)
    true (per_conn >= 1674.);
  Alcotest.(check bool) "within 10%% of lossless" true (per_conn < 1674. *. 1.10)

let test_handshake_symbolic_point () =
  let stpn = Hs.symbolic () in
  let sg = SG.build stpn in
  let sres = M.Symbolic.analyze sg in
  let thr = M.Symbolic.throughput sres sg Hs.t_establish in
  let p = Hs.default_params in
  let v =
    M.Symbolic.eval_at thr
      [
        ("E(rt)", p.Hs.retry_timeout);
        ("F(snd)", p.Hs.send_time);
        ("F(med)", p.Hs.transit_time);
        ("F(acc)", p.Hs.accept_time);
        ("F(ses)", p.Hs.session_time);
        ("f(lq)", p.Hs.request_loss);
        ("f(dq)", Q.sub Q.one p.Hs.request_loss);
        ("f(lr)", p.Hs.reply_loss);
        ("f(dr)", Q.sub Q.one p.Hs.reply_loss);
      ]
  in
  let cg = CG.build (Hs.concrete p) in
  let cres = M.Concrete.analyze cg in
  Alcotest.(check bool) "symbolic = concrete" true
    (Q.equal v (M.Concrete.throughput cres cg Hs.t_establish))

(* --- shared channel --- *)

let test_shared_channel_concrete () =
  let tpn = Sc.concrete Sc.default_params in
  let g = CG.build tpn in
  let res = M.Concrete.analyze g in
  let net = Tpn.net tpn in
  (* a station is transmitting while its release transition is firing (the
     tokens sit inside the transition, not on a place) *)
  let rel_a = Net.trans_of_name net "release_a" in
  let rel_b = Net.trans_of_name net "release_b" in
  let busy_a =
    M.Concrete.utilization res ~graph:g (fun st -> Q.sign st.Sem.rft.(rel_a) > 0)
  in
  let busy_b =
    M.Concrete.utilization res ~graph:g (fun st -> Q.sign st.Sem.rft.(rel_b) > 0)
  in
  Alcotest.(check bool) "a busy share positive" true (Q.sign busy_a > 0);
  Alcotest.(check bool) "b busy share positive" true (Q.sign busy_b > 0);
  Alcotest.(check bool) "shares below 1" true (Q.compare (Q.add busy_a busy_b) Q.one <= 0)

let test_weighted_scheduler_closed_form () =
  (* symbolic time share of station A = f(a)F(txa) / (f(a)F(txa)+f(b)F(txb)) *)
  let tpn = Sc.symbolic () in
  let g = SG.build tpn in
  let res = M.Symbolic.analyze g in
  let share_a =
    M.edge_time_share res (fun e ->
        List.exists
          (fun t -> Net.trans_name (Tpn.net tpn) t = Sc.t_grab_a)
          e.Tpan_perf.Decision_graph.fired)
  in
  let fa = Poly.var (Var.frequency "a") and fb = Poly.var (Var.frequency "b") in
  let txa = Poly.var (Var.firing "txa") and txb = Poly.var (Var.firing "txb") in
  let expected =
    Rf.make (Poly.mul fa txa) (Poly.add (Poly.mul fa txa) (Poly.mul fb txb))
  in
  Alcotest.(check bool) "closed form matches" true (Rf.equal share_a expected)

let test_parallel_channels_exact () =
  (* two independent channels: aggregate completion rate must be EXACTLY
     double the single-channel rate, despite the interleaved state space
     (450 states vs 18). Uses coarse integer delays to keep the relative
     phase lattice small. *)
  let small =
    {
      SW.timeout = Q.of_int 7; send_time = Q.one; transit_time = Q.of_int 2;
      process_time = Q.one; packet_loss = Q.of_ints 1 10; ack_loss = Q.of_ints 1 10;
    }
  in
  let tpn = SW.parallel ~channels:2 small in
  let g = CG.build tpn in
  Alcotest.(check int) "interleaved state count" 450 (CG.Graph.num_states g);
  let res = M.Concrete.analyze g in
  let thr = Q.add (M.Concrete.throughput res g "t7_c0") (M.Concrete.throughput res g "t7_c1") in
  let sg = CG.build (SW.concrete small) in
  let sres = M.Concrete.analyze sg in
  let single = M.Concrete.throughput sres sg "t7" in
  Alcotest.(check bool) "aggregate = 2 x single (exact)" true
    (Q.equal thr (Q.mul (Q.of_int 2) single));
  (* and the channels are individually fair *)
  Alcotest.(check bool) "per-channel symmetry" true
    (Q.equal (M.Concrete.throughput res g "t7_c0") (M.Concrete.throughput res g "t7_c1"))

let suite =
  ( "protocols",
    [
      Alcotest.test_case "stopwait structure" `Quick test_stopwait_structure;
      Alcotest.test_case "abp structure" `Quick test_abp_structure;
      Alcotest.test_case "handshake structure" `Quick test_handshake_structure;
      Alcotest.test_case "abp concrete analysis" `Quick test_abp_concrete_analysis;
      Alcotest.test_case "abp lossless cycle" `Slow test_abp_lossless_matches_cycle;
      Alcotest.test_case "abp symbolic" `Quick test_abp_symbolic;
      Alcotest.test_case "abp sim agreement" `Slow test_abp_sim_agreement;
      Alcotest.test_case "handshake analysis" `Quick test_handshake_analysis;
      Alcotest.test_case "handshake symbolic point" `Quick test_handshake_symbolic_point;
      Alcotest.test_case "shared channel concrete" `Quick test_shared_channel_concrete;
      Alcotest.test_case "weighted scheduler closed form" `Quick test_weighted_scheduler_closed_form;
      Alcotest.test_case "parallel channels: exact 2x throughput" `Quick test_parallel_channels_exact;
    ] )
