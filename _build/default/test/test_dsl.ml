(* Tests for the .tpn description language: lexing, parsing, elaboration,
   printing, round-trips, and error reporting. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Lexer = Tpan_dsl.Lexer
module Parser = Tpan_dsl.Parser
module Printer = Tpan_dsl.Printer
module SW = Tpan_protocols.Stopwait

let stopwait_src =
  {|
# The paper's Figure 1 protocol, concrete times.
net stopwait
place p1 init 1
place p2
place p3
place p4
place p5
place p6
place p7
place p8 init 1

trans t1 { in p7; out p1; fire 1 }
trans t2 { in p1; out p2, p4; fire 1 }
trans t3 { in p4; out p1; enable 1000; fire 1; freq 0 }
trans t4 { in p2; fire 106.7; freq 0.05 }
trans t5 { in p2; out p3; fire 106.7; freq 0.95 }
trans t6 { in p3, p8; out p5, p8; fire 13.5 }
trans t7 { in p6, p4; out p7; fire 13.5 }
trans t8 { in p5; out p6; fire 106.7; freq 0.95 }
trans t9 { in p5; fire 106.7; freq 0.05 }
|}

let test_lexer_basics () =
  let toks = Lexer.tokenize "net x # comment\nplace p init 3" in
  let kinds = List.map (fun l -> l.Lexer.tok) toks in
  Alcotest.(check bool) "token stream" true
    (kinds
     = [ Lexer.KW_NET; Lexer.IDENT "x"; Lexer.KW_PLACE; Lexer.IDENT "p"; Lexer.KW_INIT;
         Lexer.NUMBER "3"; Lexer.EOF ])

let test_lexer_positions () =
  match Lexer.tokenize "net x\n  @" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (pos, _) ->
    Alcotest.(check int) "line" 2 pos.Lexer.line;
    Alcotest.(check int) "col" 3 pos.Lexer.col

let test_parse_stopwait_equals_builtin () =
  (* The DSL description must produce a net giving the same 18-state TRG
     and the same throughput as the programmatic model. *)
  let tpn = Parser.parse_string stopwait_src in
  let g = CG.build tpn in
  Alcotest.(check int) "18 states" 18 (CG.Graph.num_states g);
  let res = M.Concrete.analyze g in
  let thr = M.Concrete.throughput res g "t7" in
  let builtin = SW.concrete SW.paper_params in
  let bg = CG.build builtin in
  let bres = M.Concrete.analyze bg in
  Alcotest.(check bool) "same throughput as builtin model" true
    (Q.equal thr (M.Concrete.throughput bres bg "t7"))

let test_parse_symbolic_and_constraints () =
  let src =
    {|
net toy
place a init 1
place b
trans go { in a; out b; fire F(go); freq f(go) }
trans back { in b; out a; fire sym; enable E(back) }
constraint c1: E(back) > F(go) + F(back)
constraint F(go) >= 2*F(back) - 1
|}
  in
  let tpn = Parser.parse_string src in
  Alcotest.(check bool) "not concrete" false (Tpn.is_concrete tpn);
  let net = Tpn.net tpn in
  (match Tpn.firing tpn (Net.trans_of_name net "back") with
   | Tpn.Sym v -> Alcotest.(check string) "sym = own firing symbol" "F(back)" (Var.name v)
   | Tpn.Fixed _ -> Alcotest.fail "expected symbolic firing");
  (match Tpn.frequency tpn (Net.trans_of_name net "go") with
   | Tpn.Freq_sym v -> Alcotest.(check string) "freq symbol" "f(go)" (Var.name v)
   | Tpn.Freq _ -> Alcotest.fail "expected symbolic frequency");
  let cs = C.constraints (Tpn.constraints tpn) in
  Alcotest.(check int) "two constraints" 2 (List.length cs);
  (match cs with
   | (label, rel, _, _) :: _ ->
     Alcotest.(check string) "label" "c1" label;
     Alcotest.(check bool) "relation" true (rel = `Gt)
   | [] -> Alcotest.fail "no constraints")

let test_fractions () =
  let src = {|
net frac
place p init 1
trans t { in p; out p; fire 1067/10; freq 1/20 }
|} in
  let tpn = Parser.parse_string src in
  Alcotest.(check bool) "fraction fire" true
    (Q.equal (Q.of_decimal_string "106.7") (Tpn.firing_q tpn 0));
  Alcotest.(check bool) "fraction freq" true
    (Q.equal (Q.of_ints 1 20) (Tpn.frequency_q tpn 0))

let test_weighted_bags () =
  let src = {|
net weights
place p init 3
place q
trans t { in 3*p; out 2*q, q; fire 1 }
|} in
  let tpn = Parser.parse_string src in
  let net = Tpn.net tpn in
  Alcotest.(check int) "input weight" 3 (Net.input_weight net 0 (Net.place_of_name net "p"));
  Alcotest.(check int) "accumulated output" 3 (Net.output_weight net 0 (Net.place_of_name net "q"))

let test_parse_errors () =
  let err src =
    match Parser.parse_result src with
    | Error m -> m
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ src)
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "missing net" true (contains (err "place p") "'net'");
  Alcotest.(check bool) "unknown place" true
    (contains (err "net x\ntrans t { in nowhere }") "unknown place");
  Alcotest.(check bool) "bad field" true
    (contains (err "net x\nplace p\ntrans t { speed 3 }") "transition field");
  Alcotest.(check bool) "location reported" true (contains (err "net x\n&") "line 2");
  Alcotest.(check bool) "duplicate place" true
    (contains (err "net x\nplace p\nplace p") "duplicate")

let test_print_roundtrip_stopwait () =
  let tpn = SW.concrete SW.paper_params in
  let printed = Printer.to_string tpn in
  let reparsed = Parser.parse_string printed in
  let g1 = CG.build tpn and g2 = CG.build reparsed in
  Alcotest.(check int) "same TRG size" (CG.Graph.num_states g1) (CG.Graph.num_states g2);
  let r1 = M.Concrete.analyze g1 and r2 = M.Concrete.analyze g2 in
  Alcotest.(check bool) "same throughput" true
    (Q.equal (M.Concrete.throughput r1 g1 "t7") (M.Concrete.throughput r2 g2 "t7"))

let test_print_roundtrip_symbolic () =
  let tpn = SW.symbolic () in
  let printed = Printer.to_string tpn in
  let reparsed = Parser.parse_string printed in
  let g1 = SG.build tpn and g2 = SG.build reparsed in
  Alcotest.(check int) "same symbolic TRG size" (SG.Graph.num_states g1) (SG.Graph.num_states g2);
  (* throughput expressions must be identical rational functions *)
  let r1 = M.Symbolic.analyze g1 and r2 = M.Symbolic.analyze g2 in
  let t1 = M.Symbolic.throughput r1 g1 "t7" and t2 = M.Symbolic.throughput r2 g2 "t7" in
  Alcotest.(check bool) "same symbolic throughput" true (Tpan_symbolic.Ratfun.equal t1 t2)

(* Round-trip property on randomly generated small nets. *)
let gen_net_src =
  QCheck2.Gen.(
    let* n_places = int_range 2 5 in
    let* n_trans = int_range 1 4 in
    let* inits = list_size (return n_places) (int_range 0 2) in
    let* conns =
      list_size (return n_trans)
        (pair (int_range 0 (n_places - 1)) (int_range 0 (n_places - 1)))
    in
    let* fires = list_size (return n_trans) (int_range 0 50) in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "net random\n";
    List.iteri
      (fun i init ->
        if init > 0 then Buffer.add_string buf (Printf.sprintf "place p%d init %d\n" i init)
        else Buffer.add_string buf (Printf.sprintf "place p%d\n" i))
      inits;
    List.iteri
      (fun i ((src, dst), f) ->
        Buffer.add_string buf
          (Printf.sprintf "trans t%d { in p%d; out p%d; fire %d }\n" i src dst f))
      (List.combine conns fires);
    return (Buffer.contents buf))

let prop_dsl_roundtrip =
  QCheck2.Test.make ~name:"print . parse = id (structure)" ~count:100 gen_net_src
    (fun src ->
      match Parser.parse_result src with
      | Error _ -> false
      | Ok tpn ->
        let printed = Printer.to_string tpn in
        (match Parser.parse_result printed with
         | Error _ -> false
         | Ok tpn2 ->
           let n1 = Tpn.net tpn and n2 = Tpn.net tpn2 in
           Net.num_places n1 = Net.num_places n2
           && Net.num_transitions n1 = Net.num_transitions n2
           && List.for_all
                (fun t ->
                  Net.inputs n1 t = Net.inputs n2 t
                  && Net.outputs n1 t = Net.outputs n2 t
                  && Tpn.firing tpn t = Tpn.firing tpn2 t)
                (Net.transitions n1)))

let suite =
  ( "dsl",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "stopwait from DSL = builtin" `Quick test_parse_stopwait_equals_builtin;
      Alcotest.test_case "symbolic specs and constraints" `Quick test_parse_symbolic_and_constraints;
      Alcotest.test_case "fraction literals" `Quick test_fractions;
      Alcotest.test_case "weighted bags" `Quick test_weighted_bags;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "round-trip (concrete stopwait)" `Quick test_print_roundtrip_stopwait;
      Alcotest.test_case "round-trip (symbolic stopwait)" `Quick test_print_roundtrip_symbolic;
      QCheck_alcotest.to_alcotest prop_dsl_roundtrip;
    ] )
