(* Alternating-bit protocol analysis: analytic throughput vs Monte-Carlo
   simulation, and a comparison against the paper's simpler stop-and-wait
   protocol across loss rates.

   Run with: dune exec examples/abp_analysis.exe *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module CG = Tpan_core.Concrete
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module Abp = Tpan_protocols.Abp
module SW = Tpan_protocols.Stopwait

(* Analytic completion rate of the named transitions. Lossless parameters
   make the whole system deterministic (no decision nodes), in which case we
   count completions around the unique cycle instead. *)
let completion_rate tpn names =
  let g = CG.build tpn in
  let net = Tpn.net tpn in
  let ts = List.map (Net.trans_of_name net) names in
  match M.Concrete.analyze g with
  | res ->
    List.fold_left
      (fun acc t -> Q.add acc (M.throughput_of_transition res ~by:`Completed t))
      Q.zero ts
  | exception (Tpan_perf.Rates.Unsolvable _ | Tpan_perf.Decision_graph.Deterministic_cycle _) ->
    (match Tpan_perf.Decision_graph.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
     | None -> Q.zero
     | Some (period, cycle_states) ->
       let count =
         List.fold_left
           (fun acc s ->
             match g.Tpan_core.Semantics.out.(s) with
             | [ e ] ->
               acc
               + List.length
                   (List.filter (fun t -> List.mem t ts) e.Tpan_core.Semantics.completed)
             | _ -> acc)
           0 cycle_states
       in
       Q.div (Q.of_int count) period)

let abp_throughput p = completion_rate (Abp.concrete p) Abp.deliveries
let stopwait_throughput p = completion_rate (SW.concrete p) [ SW.t_process_ack ]

let () =
  let p = Abp.default_params in
  Format.printf "=== ABP at the paper's timings (5%% losses both ways) ===@.";
  let analytic = abp_throughput p in
  Format.printf "analytic : %.4f msg/s@." (Q.to_float analytic *. 1000.);

  let tpn = Abp.concrete p in
  let net = Tpn.net tpn in
  let est =
    Sim.replicate ~seed:2024 ~runs:5 ~horizon:(Q.of_int 500_000) tpn (fun s ->
        List.fold_left (fun acc t -> acc +. Sim.throughput s (Net.trans_of_name net t)) 0.
          Abp.deliveries)
  in
  let lo, hi = est.Sim.ci95 in
  Format.printf "simulated: %.4f msg/s (95%%: [%.4f, %.4f], %d runs)@."
    (est.Sim.mean *. 1000.) (lo *. 1000.) (hi *. 1000.) est.Sim.runs;

  Format.printf "@.=== ABP vs stop-and-wait across symmetric loss rates ===@.";
  Format.printf "%8s  %14s  %14s@." "loss" "stop&wait" "ABP";
  List.iter
    (fun pct ->
      let loss = Q.of_ints pct 100 in
      let sw =
        stopwait_throughput { SW.paper_params with SW.packet_loss = loss; ack_loss = loss }
      in
      let ab = abp_throughput { p with Abp.packet_loss = loss; ack_loss = loss } in
      Format.printf "%7d%%  %10.4f/s  %10.4f/s@." pct (Q.to_float sw *. 1000.)
        (Q.to_float ab *. 1000.))
    [ 0; 1; 2; 5; 10; 20; 30 ];
  Format.printf
    "@.(Both protocols degrade the same way: each loss costs one timeout period.@.\
     ABP's edge is correctness under duplication, not raw speed.)@."
