(* The interactive tool the paper's conclusion asks for: when the timing
   constraints are too weak to order two remaining times, the analyzer
   reports exactly which comparison failed and suggests the constraint to
   add. This example starts from NO constraints and lets the diagnosis loop
   drive it to an analyzable model.

   Run with: dune exec examples/constraint_explorer.exe *)

module Q = Tpan_mathkit.Q
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module SG = Tpan_core.Symbolic
module SW = Tpan_protocols.Stopwait

(* rebuild the symbolic stop-and-wait net with a given constraint set *)
let net_with constraints =
  let s = Tpn.spec in
  let fs t = Tpn.sym_firing t in
  Tpn.make ~constraints (SW.net ())
    [
      ("t1", s ~firing:(fs "t1") ());
      ("t2", s ~firing:(fs "t2") ());
      ("t3", s ~enabling:(Tpn.sym_enabling "t3") ~firing:(fs "t3") ~frequency:(Tpn.Freq Q.zero) ());
      ("t4", s ~firing:(fs "t4") ());
      ("t5", s ~firing:(fs "t5") ());
      ("t6", s ~firing:(fs "t6") ());
      ("t7", s ~firing:(fs "t7") ());
      ("t8", s ~firing:(fs "t8") ());
      ("t9", s ~firing:(fs "t9") ());
    ]

(* What a designer would answer: the ground truth ordering at the intended
   operating point (the paper's Figure 1b values). The explorer adds the
   TRUE relation for each comparison the analyzer flags. *)
let designer_answer lhs rhs =
  let point v =
    match Tpan_symbolic.Var.name v with
    | "E(t3)" -> Q.of_int 1000
    | "F(t1)" | "F(t2)" | "F(t3)" -> Q.one
    | "F(t4)" | "F(t5)" | "F(t8)" | "F(t9)" -> Q.of_decimal_string "106.7"
    | "F(t6)" | "F(t7)" -> Q.of_decimal_string "13.5"
    | _ -> Q.zero
  in
  let l = Lin.eval point lhs and r = Lin.eval point rhs in
  if Q.compare l r < 0 then `Lt else if Q.compare l r > 0 then `Gt else `Eq

let () =
  Format.printf "starting from an EMPTY constraint set...@.";
  let rec explore round constraints =
    if round > 20 then failwith "did not converge";
    match SG.build (net_with constraints) with
    | g ->
      Format.printf "@.round %d: constraints are sufficient!@." round;
      Format.printf "final constraint set:@.%a@." C.pp constraints;
      Format.printf "symbolic TRG: %d states@." (SG.Graph.num_states g)
    | exception SG.Insufficient { lhs; rhs; hint } ->
      Format.printf "@.round %d: cannot order  %a  vs  %a@." round Lin.pp lhs Lin.pp rhs;
      Format.printf "  analyzer says: %s@." hint;
      let rel = designer_answer lhs rhs in
      let rel_str = match rel with `Lt -> "<" | `Gt -> ">" | `Eq -> "=" in
      Format.printf "  designer answers: %a %s %a@." Lin.pp lhs rel_str Lin.pp rhs;
      let label = Printf.sprintf "a%d" round in
      explore (round + 1) (C.add ~label (rel :> C.relation) lhs rhs constraints)
  in
  explore 1 C.empty;
  Format.printf
    "@.(compare with the paper's hand-written set: (1) E(t3) > F(t5)+F(t6)+F(t8),@.\
    \ (3) F(t4) = F(t5), (4) F(t9) = F(t8) — the explorer discovers pointwise@.\
    \ orderings, the human writes the general law.)@."
