(* Ranges of firing times — the extension the paper's conclusion proposes —
   used to answer a design question the fixed-delay analysis cannot: is the
   protocol still safe when the medium latency VARIES, and how tight can the
   timeout go before the safeness assumption breaks?

   Run with: dune exec examples/ranged_safety.exe *)

module Q = Tpan_mathkit.Q
module R = Tpan_core.Ranged
module SW = Tpan_protocols.Stopwait

let widen lo hi =
  [ ("t4", (Q.of_int lo, Q.of_int hi)); ("t5", (Q.of_int lo, Q.of_int hi));
    ("t8", (Q.of_int lo, Q.of_int hi)); ("t9", (Q.of_int lo, Q.of_int hi)) ]

let verdict timeout =
  let base = SW.concrete { SW.paper_params with SW.timeout = Q.of_int timeout } in
  let g = R.of_tpn ~widen:(widen 100 115) base in
  if R.safe g then
    Format.asprintf "safe (%d reachable markings)" (List.length (R.reachable_markings g))
  else "UNSAFE (premature retransmission possible)"

let () =
  Format.printf
    "Stop-and-wait with medium transit anywhere in [100, 115] ms per leg.@.\
     Worst-case round trip: 115 + 13.5 + 115 = 243.5 ms.@.@.";
  Format.printf "%10s  %s@." "timeout" "verdict";
  List.iter
    (fun t -> Format.printf "%8d ms  %s@." t (verdict t))
    [ 200; 230; 240; 244; 300; 1000 ];
  Format.printf
    "@.The boundary sits exactly at the worst-case round trip: the paper's@.\
     constraint (1) generalizes to ranges as E(t3) > max RTT, and the@.\
     state-class analysis verifies it mechanically.@."
