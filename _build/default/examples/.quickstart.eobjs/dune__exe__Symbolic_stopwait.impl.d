examples/symbolic_stopwait.ml: Array Format List String Tpan_core Tpan_mathkit Tpan_perf Tpan_protocols Tpan_symbolic
