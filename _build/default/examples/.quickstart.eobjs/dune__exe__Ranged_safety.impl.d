examples/ranged_safety.ml: Format List Tpan_core Tpan_mathkit Tpan_protocols
