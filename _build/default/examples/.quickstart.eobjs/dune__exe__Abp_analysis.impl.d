examples/abp_analysis.ml: Array Format List Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_protocols Tpan_sim
