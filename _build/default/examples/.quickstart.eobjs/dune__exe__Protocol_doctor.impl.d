examples/protocol_doctor.ml: Float Format List Tpan_core Tpan_mathkit Tpan_perf Tpan_protocols Tpan_symbolic
