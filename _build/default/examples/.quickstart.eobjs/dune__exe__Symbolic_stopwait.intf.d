examples/symbolic_stopwait.mli:
