examples/ranged_safety.mli:
