examples/quickstart.mli:
