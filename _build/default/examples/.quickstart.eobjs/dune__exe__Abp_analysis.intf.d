examples/abp_analysis.mli:
