examples/quickstart.ml: Format Tpan_core Tpan_mathkit Tpan_perf Tpan_petri Tpan_sim
