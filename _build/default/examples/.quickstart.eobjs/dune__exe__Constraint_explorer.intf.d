examples/constraint_explorer.mli:
