examples/protocol_doctor.mli:
