(* The paper's section 4, end to end: derive a closed-form throughput
   expression for the stop-and-wait protocol of Figure 1 without knowing any
   concrete delay, then specialize it.

   Run with: dune exec examples/symbolic_stopwait.exe *)

module Q = Tpan_mathkit.Q
module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun
module SG = Tpan_core.Symbolic
module Sem = Tpan_core.Semantics
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module SW = Tpan_protocols.Stopwait

let section title = Format.printf "@.=== %s ===@." title

let () =
  let tpn = SW.symbolic () in

  section "Timing constraints (paper section 4)";
  Format.printf "%a@." Tpan_symbolic.Constraints.pp (Tpan_core.Tpn.constraints tpn);

  section "Symbolic timed reachability graph (Figure 6)";
  let g = SG.build tpn in
  Format.printf "%d states, %d edges@." (SG.Graph.num_states g) (SG.Graph.num_edges g);
  Array.iteri
    (fun i st -> Format.printf "%2d: %a@." (i + 1) (SG.Graph.pp_state tpn) st)
    g.Sem.states;

  section "Constraints used to resolve minima (Figure 7)";
  List.iter
    (fun (s, d, labels) ->
      Format.printf "  transition %d -> %d justified by %s@." (s + 1) (d + 1)
        (String.concat ", " labels))
    (SG.constraint_audit g);

  section "Decision graph and traversal rates (Figure 8)";
  let res = M.Symbolic.analyze g in
  Format.printf "%a@." (DG.pp ~pp_delay:Lin.pp ~pp_prob:Rf.pp) res.Rates.dg;
  List.iteri
    (fun i (re : _ Rates.rated_edge) ->
      Format.printf "r%d = %a@." (i + 1) Rf.pp re.Rates.rate;
      Format.printf "w%d = r%d * d%d@." (i + 1) (i + 1) (i + 1))
    res.Rates.edge_rate;

  section "Throughput expression (successful deliveries per unit time)";
  let thr = M.Symbolic.throughput res g SW.t_process_ack in
  Format.printf "throughput = %a@." Rf.pp thr;

  section "Specialized at 5% packet loss and 5% ack loss";
  let five_pct =
    [
      ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
      ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
    ]
  in
  let spec = M.Symbolic.subst_frequencies thr five_pct in
  Format.printf "throughput|5%% = %a@." Rf.pp spec;
  Format.printf
    "(the paper's form: 18.05 / (1.95(E(t3)+F(t3)) + 20 F(t2) + 18.05(F(t1)+F(t5)+F(t6)+F(t7)+F(t8))))@.";

  section "Evaluated at the Figure 1b delays";
  let point =
    five_pct
    @ [
        ("E(t3)", Q.of_int 1000);
        ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
        ("F(t4)", Q.of_decimal_string "106.7"); ("F(t5)", Q.of_decimal_string "106.7");
        ("F(t6)", Q.of_decimal_string "13.5"); ("F(t7)", Q.of_decimal_string "13.5");
        ("F(t8)", Q.of_decimal_string "106.7"); ("F(t9)", Q.of_decimal_string "106.7");
      ]
  in
  let v = M.Symbolic.eval_at thr point in
  Format.printf "throughput = %a msg/ms = %.4f msg/s@." (Q.pp_decimal ~digits:8) v
    (Q.to_float v *. 1000.);
  Format.printf "mean time per message = %a ms@." (Q.pp_decimal ~digits:4) (Q.inv v);

  (* The expression is valid for EVERY point satisfying the constraints:
     change the timeout, keep the expression. *)
  section "Same expression, different timeout (no re-analysis needed)";
  List.iter
    (fun timeout ->
      let point = ("E(t3)", Q.of_int timeout) :: List.remove_assoc "E(t3)" point in
      let v = M.Symbolic.eval_at thr point in
      Format.printf "  E(t3) = %4d ms  ->  %.4f msg/s@." timeout (Q.to_float v *. 1000.))
    [ 250; 500; 1000; 2000; 4000 ]
