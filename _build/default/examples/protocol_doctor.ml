(* "Protocol doctor": given a protocol model, produce the full diagnosis a
   designer wants — structure, steady state, latency, and (the payoff of
   symbolic analysis) which parameter to improve first.

   Run with: dune exec examples/protocol_doctor.exe *)

module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Report = Tpan_perf.Report
module SW = Tpan_protocols.Stopwait

let paper_point =
  [
    ("E(t3)", Q.of_int 1000);
    ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
    ("F(t4)", Q.of_decimal_string "106.7"); ("F(t5)", Q.of_decimal_string "106.7");
    ("F(t6)", Q.of_decimal_string "13.5"); ("F(t7)", Q.of_decimal_string "13.5");
    ("F(t8)", Q.of_decimal_string "106.7"); ("F(t9)", Q.of_decimal_string "106.7");
    ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
    ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
  ]

let () =
  (* 1. the standard report for the concrete instantiation *)
  let ctpn = SW.concrete SW.paper_params in
  Report.concrete ~events:[ SW.t_receive; SW.t_process_ack ] Format.std_formatter ctpn;

  (* 2. the symbolic diagnosis: where does a design minute buy the most? *)
  Format.printf "@.--- sensitivity diagnosis (symbolic) ---@.";
  let stpn = SW.symbolic () in
  let g = SG.build stpn in
  let res = M.Symbolic.analyze g in
  let thr = M.Symbolic.throughput res g SW.t_process_ack in
  let sens = M.Symbolic.sensitivities thr ~at:paper_point in
  Format.printf "throughput elasticity per parameter (top first):@.";
  List.iter
    (fun (s : M.Symbolic.sensitivity) ->
      Format.printf "  %-8s %+8.4f  %s@."
        (Var.name s.M.Symbolic.var)
        (Q.to_float s.M.Symbolic.elasticity)
        (if Q.sign s.M.Symbolic.gradient < 0 then "(reducing it helps)"
         else "(increasing it helps)"))
    sens;
  (match sens with
   | best :: _ ->
     Format.printf "@.diagnosis: work on %s first — a 10%% improvement there moves throughput by ~%.2f%%.@."
       (Var.name best.M.Symbolic.var)
       (10. *. Float.abs (Q.to_float best.M.Symbolic.elasticity))
   | [] -> ())
