(* Timeout tuning: what the symbolic expression is for.

   The paper derives throughput as a closed form in E(t3). This example
   exploits it: sweep the timeout over a range, plot the throughput curve,
   and find the optimum — all by evaluating ONE expression, with a spot
   simulation check. The constraint E(t3) > F(t5)+F(t6)+F(t8) bounds the
   valid region from below.

   Run with: dune exec examples/timeout_tuning.exe *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn
module SG = Tpan_core.Symbolic
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module SW = Tpan_protocols.Stopwait

let () =
  (* derive the expression once *)
  let stpn = SW.symbolic () in
  let sg = SG.build stpn in
  let sres = M.Symbolic.analyze sg in
  let thr = M.Symbolic.throughput sres sg SW.t_process_ack in

  let base_point timeout =
    [
      ("E(t3)", timeout);
      ("F(t1)", Q.one); ("F(t2)", Q.one); ("F(t3)", Q.one);
      ("F(t4)", Q.of_decimal_string "106.7"); ("F(t5)", Q.of_decimal_string "106.7");
      ("F(t6)", Q.of_decimal_string "13.5"); ("F(t7)", Q.of_decimal_string "13.5");
      ("F(t8)", Q.of_decimal_string "106.7"); ("F(t9)", Q.of_decimal_string "106.7");
      ("f(t4)", Q.of_ints 1 20); ("f(t5)", Q.of_ints 19 20);
      ("f(t8)", Q.of_ints 19 20); ("f(t9)", Q.of_ints 1 20);
    ]
  in
  (* constraint (1): E(t3) > 106.7 + 13.5 + 106.7 = 226.9 ms *)
  let min_timeout = Q.of_decimal_string "226.9" in
  Format.printf "valid timeouts: E(t3) > %a ms (constraint (1))@." (Q.pp_decimal ~digits:1)
    min_timeout;
  Format.printf "@.%10s  %14s@." "E(t3) ms" "throughput/s";
  let best = ref (Q.zero, Q.zero) in
  List.iter
    (fun t ->
      let timeout = Q.of_int t in
      if Q.compare timeout min_timeout > 0 then begin
        let v = M.Symbolic.eval_at thr (base_point timeout) in
        if Q.compare v (snd !best) > 0 then best := (timeout, v);
        Format.printf "%10d  %14.4f@." t (Q.to_float v *. 1000.)
      end
      else Format.printf "%10d  %14s@." t "(violates (1))")
    [ 200; 230; 250; 300; 400; 500; 750; 1000; 1500; 2000; 3000; 4000 ];
  let bt, bv = !best in
  Format.printf "@.best sampled timeout: %a ms -> %.4f msg/s@." (Q.pp_decimal ~digits:1) bt
    (Q.to_float bv *. 1000.);
  Format.printf
    "(monotone: every ms of timeout above the round trip is pure recovery cost,@.\
    \ so the optimum sits just above the constraint boundary)@.";

  (* simulation spot-check at the best point *)
  let p = { SW.paper_params with SW.timeout = bt } in
  let tpn = SW.concrete p in
  let net = Tpn.net tpn in
  let stats = Sim.run ~seed:99 ~horizon:(Q.of_int 2_000_000) tpn in
  Format.printf "@.simulation at E(t3) = %a: %.4f msg/s (analytic %.4f)@."
    (Q.pp_decimal ~digits:1) bt
    (Sim.throughput stats (Net.trans_of_name net SW.t_process_ack) *. 1000.)
    (Q.to_float bv *. 1000.)
