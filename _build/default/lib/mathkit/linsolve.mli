(** Exact dense linear-system solving over an arbitrary field.

    Used twice in the analyzer: over {!Q} for numeric traversal-rate
    equations, and over symbolic rational functions for the paper's symbolic
    rate derivation (Figure 8). *)

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (F : FIELD) : sig
  type outcome =
    | Unique of F.t array
    | Underdetermined
    | Inconsistent

  val solve : F.t array array -> F.t array -> outcome
  (** [solve a b] solves [a · x = b] by Gauss–Jordan elimination with a
      first-nonzero pivot (valid over any exact field). [a] is an array of
      rows; inputs are not mutated.
      @raise Invalid_argument on ragged or mismatched dimensions. *)

  val solve_unique : F.t array array -> F.t array -> F.t array
  (** Like {!solve} but @raise Failure unless the solution is unique. *)
end
