(** Arbitrary-precision signed integers.

    Self-contained replacement for [zarith] (not available in this
    environment). Magnitudes are little-endian arrays of 15-bit limbs, which
    keeps every intermediate of schoolbook multiplication and Knuth
    algorithm-D division comfortably inside a 63-bit native [int].

    Values are immutable; all functions are pure. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val of_string : string -> t
(** Decimal, with optional leading [-]. @raise Invalid_argument on bad
    input. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
(** [-1], [0] or [1]. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: [divmod a b = (q, r)] with [a = q*b + r] and
    [sign r = sign a] (or [r = 0]), [|r| < |b|].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val pow : t -> int -> t
(** [pow b n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

val is_zero : t -> bool
val is_one : t -> bool

val to_float : t -> float

val pp : Format.formatter -> t -> unit
