(* Sign-magnitude bignums over 15-bit limbs (little-endian int arrays).

   Base 2^15 is chosen so that limb products (< 2^30) plus carries stay far
   below the 62-bit overflow boundary, which lets the Knuth algorithm-D
   quotient estimation below work with plain [int] arithmetic. *)

let base_bits = 15
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: [sign] is -1, 0 or 1; [sign = 0] iff [mag = [||]];
   the most significant limb [mag.(len-1)] is non-zero. *)

let zero = { sign = 0; mag = [||] }

(* Strip high zero limbs and normalize the sign of a raw magnitude. *)
let make sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int negation overflows; peel one limb first. *)
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land mask) :: acc) (n lsr base_bits) in
    let m =
      if n <> min_int then limbs [] (Stdlib.abs n)
      else
        (* |min_int| = 2^62: its two's-complement bit pattern is already the
           magnitude, so logical shifts extract the limbs directly. *)
        let low = n land mask in
        low :: limbs [] (n lsr base_bits)
    in
    make sign (Array.of_list m)
  end

let one = of_int 1
let minus_one = of_int (-1)

let is_zero a = a.sign = 0
let sign a = a.sign
let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign = 0 then 0
  else a.sign * cmp_mag a.mag b.mag

let equal a b = compare a b = 0

let hash a =
  Array.fold_left (fun acc limb -> (acc * 31) + limb) (a.sign + 2) a.mag land max_int

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = if la > lb then la else lb in
  let out = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 and db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  out.(lmax) <- !carry;
  out

(* Requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let d = a.(i) - db - !borrow in
    if d < 0 then begin out.(i) <- d + base; borrow := 1 end
    else begin out.(i) <- d; borrow := 0 end
  done;
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land mask;
        carry := v lsr base_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    end
  done;
  out

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mul_mag a.mag b.mag)

(* Divide magnitude by a single limb; returns (quotient, remainder limb). *)
let divmod_small_mag a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D on magnitudes; returns (quotient, remainder).
   Preconditions: [Array.length b >= 2], [cmp_mag a b >= 0]. *)
let divmod_knuth a b =
  let shift =
    let top = b.(Array.length b - 1) in
    let rec go s t = if t >= base / 2 then s else go (s + 1) (t * 2) in
    go 0 top
  in
  let shl m s =
    if s = 0 then Array.copy m
    else begin
      let n = Array.length m in
      let out = Array.make (n + 1) 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let v = (m.(i) lsl s) lor !carry in
        out.(i) <- v land mask;
        carry := v lsr base_bits
      done;
      out.(n) <- !carry;
      out
    end
  in
  let shr m s =
    if s = 0 then Array.copy m
    else begin
      let n = Array.length m in
      let out = Array.make n 0 in
      let carry = ref 0 in
      for i = n - 1 downto 0 do
        let v = (!carry lsl base_bits) lor m.(i) in
        out.(i) <- v lsr s;
        carry := m.(i) land ((1 lsl s) - 1)
      done;
      out
    end
  in
  let u0 = shl a shift and v = shl b shift in
  let v =
    (* drop a possible top zero introduced by shl *)
    let n = Array.length v in
    if v.(n - 1) = 0 then Array.sub v 0 (n - 1) else v
  in
  let n = Array.length v in
  let m = Array.length u0 - n in
  let u = Array.append u0 [| 0 |] in
  let m = if m < 0 then 0 else m in
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) in
  let vsec = if n >= 2 then v.(n - 2) else 0 in
  for j = m downto 0 do
    let num = (((u.(j + n) lsl base_bits) lor u.(j + n - 1)) lsl 0) in
    let qhat = ref (num / vtop) in
    let rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      rhat := !rhat + (vtop * (!qhat - (base - 1)));
      qhat := base - 1
    end;
    while !rhat < base && !qhat * vsec > ((!rhat lsl base_bits) lor (if j + n - 2 >= 0 then u.(j + n - 2) else 0)) do
      decr qhat;
      rhat := !rhat + vtop
    done;
    (* multiply-subtract *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
      else begin u.(i + j) <- d; borrow := 0 end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add back *)
      u.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !carry in
        u.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = shr (Array.sub u 0 n) shift in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else if cmp_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_small_mag a.mag b.mag.(0) in
        (q, [| r |])
      end
      else divmod_knuth a.mag b.mag
    in
    let q = make (a.sign * b.sign) qmag in
    let r = make a.sign rmag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_loop a b = if is_zero b then a else gcd_loop b (rem a b)
let gcd a b = gcd_loop (abs a) (abs b)

let is_one a = a.sign = 1 && Array.length a.mag = 1 && a.mag.(0) = 1

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else begin
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
    end
  in
  go one b n

let to_int_opt a =
  (* Accumulate negatively so that [min_int] (whose magnitude exceeds
     [max_int]) is still representable. *)
  let floor_limit = min_int asr base_bits in
  let rec go acc i =
    if i < 0 then Some acc
    else if acc < floor_limit || (acc = floor_limit && a.mag.(i) > 0) then None
    else go ((acc lsl base_bits) - a.mag.(i)) (i - 1)
  in
  if a.sign = 0 then Some 0
  else
    match go 0 (Array.length a.mag - 1) with
    | None -> None
    | Some m -> if a.sign < 0 then Some m else if m = min_int then None else Some (-m)

let to_float a =
  let v = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) a.mag 0. in
  if a.sign < 0 then -.v else v

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let chunks = ref [] in
    let m = ref a.mag in
    while Array.length !m > 0 && not (Array.for_all (fun x -> x = 0) !m) do
      let q, r = divmod_small_mag !m 10000 in
      chunks := r :: !chunks;
      let q = make 1 q in
      m := q.mag
    done;
    let buf = Buffer.create 16 in
    if a.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let is_neg, start =
    if s.[0] = '-' then (true, 1) else if s.[0] = '+' then (false, 1) else (false, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let stop = min n (!i + 4) in
    let chunk = String.sub s !i (stop - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
    let scale = pow (of_int 10) (stop - !i) in
    acc := add (mul !acc scale) (of_int (int_of_string chunk));
    i := stop
  done;
  if is_neg then neg !acc else !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)
