module B = Bigint

type t = { n : B.t; d : B.t }
(* Invariants: [d] is positive; [gcd n d = 1]; zero is [0/1]. *)

let make n d =
  if B.is_zero d then raise Division_by_zero;
  if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let n, d = if B.sign d < 0 then (B.neg n, B.neg d) else (n, d) in
    let g = B.gcd n d in
    if B.is_one g then { n; d } else { n = B.div n g; d = B.div d g }
  end

let zero = { n = B.zero; d = B.one }
let of_bigint n = { n; d = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints n d = make (B.of_int n) (B.of_int d)
let one = of_int 1
let minus_one = of_int (-1)

let num q = q.n
let den q = q.d

let sign q = B.sign q.n
let is_zero q = B.is_zero q.n

let neg q = { q with n = B.neg q.n }
let abs q = { q with n = B.abs q.n }

let add a b =
  if B.equal a.d b.d then make (B.add a.n b.n) a.d
  else make (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)

let sub a b = add a (neg b)
let mul a b = make (B.mul a.n b.n) (B.mul a.d b.d)

let inv q =
  if is_zero q then raise Division_by_zero;
  if B.sign q.n < 0 then { n = B.neg q.d; d = B.neg q.n } else { n = q.d; d = q.n }

let div a b = mul a (inv b)

let compare a b = B.compare (B.mul a.n b.d) (B.mul b.n a.d)
let equal a b = B.equal a.n b.n && B.equal a.d b.d
let hash q = (B.hash q.n * 65599) + B.hash q.d

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_float q = B.to_float q.n /. B.to_float q.d

let to_string q =
  if B.is_one q.d then B.to_string q.n
  else B.to_string q.n ^ "/" ^ B.to_string q.d

let pp fmt q = Format.pp_print_string fmt (to_string q)

let pp_decimal ?(digits = 6) fmt q =
  let neg = sign q < 0 in
  let q = abs q in
  let ipart, rest = B.divmod q.n q.d in
  if neg then Format.pp_print_char fmt '-';
  Format.pp_print_string fmt (B.to_string ipart);
  if not (B.is_zero rest) then begin
    (* Long division one decimal digit at a time; stop early if exact. *)
    let buf = Buffer.create digits in
    let r = ref rest in
    let i = ref 0 in
    while (not (B.is_zero !r)) && !i < digits do
      let q10, r10 = B.divmod (B.mul !r (B.of_int 10)) q.d in
      Buffer.add_string buf (B.to_string q10);
      r := r10;
      incr i
    done;
    (* trim trailing zeros *)
    let s = Buffer.contents buf in
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = '0' do decr len done;
    if !len > 0 then begin
      Format.pp_print_char fmt '.';
      Format.pp_print_string fmt (String.sub s 0 !len)
    end
  end

let of_decimal_string s =
  let s = String.trim s in
  if s = "" then invalid_arg "Q.of_decimal_string: empty";
  match String.index_opt s '/' with
  | Some i ->
    let n = B.of_string (String.sub s 0 i) in
    let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Q.of_decimal_string: trailing dot";
       let neg = String.length int_part > 0 && int_part.[0] = '-' in
       let ip = if int_part = "" || int_part = "-" || int_part = "+" then B.zero else B.of_string int_part in
       let scale = B.pow (B.of_int 10) (String.length frac) in
       let fp = B.of_string frac in
       let mag = B.add (B.mul (B.abs ip) scale) fp in
       make (if neg then B.neg mag else mag) scale)
