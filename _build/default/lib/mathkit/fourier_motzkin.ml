module IntMap = Map.Make (Int)

module Linform = struct
  type t = { coeffs : Q.t IntMap.t; const : Q.t }
  (* Invariant: no zero coefficient is stored. *)

  let norm coeffs = IntMap.filter (fun _ c -> not (Q.is_zero c)) coeffs

  let const q = { coeffs = IntMap.empty; const = q }
  let zero = const Q.zero
  let var v = { coeffs = IntMap.singleton v Q.one; const = Q.zero }

  let of_list l c =
    let coeffs =
      List.fold_left
        (fun acc (v, q) ->
          let cur = Option.value ~default:Q.zero (IntMap.find_opt v acc) in
          IntMap.add v (Q.add cur q) acc)
        IntMap.empty l
    in
    { coeffs = norm coeffs; const = c }

  let add a b =
    let coeffs =
      IntMap.union (fun _ x y -> let s = Q.add x y in if Q.is_zero s then None else Some s) a.coeffs b.coeffs
    in
    { coeffs; const = Q.add a.const b.const }

  let scale k a =
    if Q.is_zero k then zero
    else { coeffs = IntMap.map (Q.mul k) a.coeffs; const = Q.mul k a.const }

  let neg a = scale Q.minus_one a
  let sub a b = add a (neg b)

  let constant a = a.const
  let coeff v a = Option.value ~default:Q.zero (IntMap.find_opt v a.coeffs)
  let coeffs a = IntMap.bindings a.coeffs
  let is_const a = IntMap.is_empty a.coeffs
  let vars a = List.map fst (IntMap.bindings a.coeffs)

  let equal a b = Q.equal a.const b.const && IntMap.equal Q.equal a.coeffs b.coeffs

  let compare a b =
    let c = Q.compare a.const b.const in
    if c <> 0 then c else IntMap.compare Q.compare a.coeffs b.coeffs

  let hash a =
    IntMap.fold (fun v c acc -> (acc * 31) + (v * 7) + Q.hash c) a.coeffs (Q.hash a.const)

  let eval env a =
    IntMap.fold (fun v c acc -> Q.add acc (Q.mul c (env v))) a.coeffs a.const

  let pp ?(name = fun v -> Printf.sprintf "x%d" v) fmt a =
    let terms = coeffs a in
    if terms = [] then Q.pp fmt a.const
    else begin
      let first = ref true in
      let print_term v c =
        let s = Q.sign c in
        if !first then begin
          if s < 0 then Format.pp_print_string fmt "-";
          first := false
        end
        else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        let m = Q.abs c in
        if not (Q.equal m Q.one) then Format.fprintf fmt "%a*" Q.pp m;
        Format.pp_print_string fmt (name v)
      in
      List.iter (fun (v, c) -> print_term v c) terms;
      if not (Q.is_zero a.const) then begin
        let s = Q.sign a.const in
        Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        Q.pp fmt (Q.abs a.const)
      end
    end
end

type relation = Ge | Gt | Eq

type constr = { form : Linform.t; rel : relation }

let ge a b = { form = Linform.sub a b; rel = Ge }
let gt a b = { form = Linform.sub a b; rel = Gt }
let eq a b = { form = Linform.sub a b; rel = Eq }

let pp_constr ?name fmt c =
  let op = match c.rel with Ge -> ">= 0" | Gt -> "> 0" | Eq -> "= 0" in
  Format.fprintf fmt "%a %s" (Linform.pp ?name) c.form op

let satisfies env c =
  let v = Linform.eval env c.form in
  match c.rel with
  | Ge -> Q.sign v >= 0
  | Gt -> Q.sign v > 0
  | Eq -> Q.sign v = 0

(* Feasibility by Fourier–Motzkin elimination. Equalities are split into a
   pair of opposite inequalities first; this is simple and complete (though a
   substitution pass would be cheaper). *)
let feasible constraints =
  let split c =
    match c.rel with
    | Eq -> [ { form = c.form; rel = Ge }; { form = Linform.neg c.form; rel = Ge } ]
    | Ge | Gt -> [ c ]
  in
  let cs = List.concat_map split constraints in
  let all_vars cs =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) acc (Linform.vars c.form))
      [] cs
  in
  let eliminate v cs =
    let lower, upper, rest =
      List.fold_left
        (fun (lo, up, rest) c ->
          let a = Linform.coeff v c.form in
          if Q.is_zero a then (lo, up, c :: rest)
          else if Q.sign a > 0 then (c :: lo, up, rest)
          else (lo, c :: up, rest))
        ([], [], []) cs
    in
    (* A pair (l: a·v + L' ≥/> 0 with a>0) and (u: b·v + U' ≥/> 0 with b<0)
       combines into (-b)·(l.form) + a·(u.form) ≥/> 0, which cancels v. *)
    let combine l u =
      let a = Linform.coeff v l.form and b = Linform.coeff v u.form in
      let form = Linform.add (Linform.scale (Q.neg b) l.form) (Linform.scale a u.form) in
      let rel = match (l.rel, u.rel) with Gt, _ | _, Gt -> Gt | _ -> Ge in
      { form; rel }
    in
    List.fold_left (fun acc l -> List.fold_left (fun acc u -> combine l u :: acc) acc upper) rest lower
  in
  let rec run cs =
    match all_vars cs with
    | [] ->
      List.for_all
        (fun c ->
          let k = Linform.constant c.form in
          match c.rel with
          | Ge -> Q.sign k >= 0
          | Gt -> Q.sign k > 0
          | Eq -> Q.sign k = 0)
        cs
    | v :: _ -> run (eliminate v cs)
  in
  run cs

let entails cs c =
  match c.rel with
  | Ge -> not (feasible ({ form = Linform.neg c.form; rel = Gt } :: cs))
  | Gt -> not (feasible ({ form = Linform.neg c.form; rel = Ge } :: cs))
  | Eq ->
    (not (feasible ({ form = c.form; rel = Gt } :: cs)))
    && not (feasible ({ form = Linform.neg c.form; rel = Gt } :: cs))

type comparison = Always_lt | Always_eq | Always_gt | Unknown

let compare_forms cs a b =
  let d = Linform.sub b a in
  if entails cs { form = d; rel = Gt } then Always_lt
  else if entails cs { form = Linform.neg d; rel = Gt } then Always_gt
  else if entails cs { form = d; rel = Eq } then Always_eq
  else Unknown
