lib/mathkit/linsolve.ml: Array Format
