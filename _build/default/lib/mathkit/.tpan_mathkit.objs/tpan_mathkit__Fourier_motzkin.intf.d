lib/mathkit/fourier_motzkin.mli: Format Q
