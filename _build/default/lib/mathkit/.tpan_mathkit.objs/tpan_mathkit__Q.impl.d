lib/mathkit/q.ml: Bigint Buffer Format String
