lib/mathkit/q.mli: Bigint Format
