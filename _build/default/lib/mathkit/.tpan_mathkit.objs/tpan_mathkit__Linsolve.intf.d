lib/mathkit/linsolve.mli: Format
