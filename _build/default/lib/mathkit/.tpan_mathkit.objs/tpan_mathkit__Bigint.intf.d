lib/mathkit/bigint.mli: Format
