lib/mathkit/fourier_motzkin.ml: Format Int List Map Option Printf Q
