module type FIELD = sig
  type t

  val zero : t
  val one : t
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (F : FIELD) = struct
  type outcome =
    | Unique of F.t array
    | Underdetermined
    | Inconsistent

  let solve a b =
    let rows = Array.length a in
    if Array.length b <> rows then invalid_arg "Linsolve.solve: dimension mismatch";
    let cols = if rows = 0 then 0 else Array.length a.(0) in
    Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Linsolve.solve: ragged matrix") a;
    (* Work on an augmented copy. *)
    let m = Array.init rows (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
    let pivot_of_col = Array.make cols (-1) in
    let row = ref 0 in
    for col = 0 to cols - 1 do
      if !row < rows then begin
        (* find a row at or below [!row] with a non-zero entry in [col] *)
        let p = ref (-1) in
        for i = !row to rows - 1 do
          if !p < 0 && not (F.is_zero m.(i).(col)) then p := i
        done;
        if !p >= 0 then begin
          let tmp = m.(!row) in
          m.(!row) <- m.(!p);
          m.(!p) <- tmp;
          (* normalize pivot row *)
          let pv = m.(!row).(col) in
          for j = col to cols do
            m.(!row).(j) <- F.div m.(!row).(j) pv
          done;
          (* eliminate everywhere else *)
          for i = 0 to rows - 1 do
            if i <> !row && not (F.is_zero m.(i).(col)) then begin
              let factor = m.(i).(col) in
              for j = col to cols do
                m.(i).(j) <- F.sub m.(i).(j) (F.mul factor m.(!row).(j))
              done
            end
          done;
          pivot_of_col.(col) <- !row;
          incr row
        end
      end
    done;
    (* Inconsistency: a zero row with non-zero rhs. *)
    let inconsistent = ref false in
    for i = !row to rows - 1 do
      if not (F.is_zero m.(i).(cols)) then inconsistent := true
    done;
    if !inconsistent then Inconsistent
    else if Array.exists (fun p -> p < 0) pivot_of_col then Underdetermined
    else Unique (Array.init cols (fun c -> m.(pivot_of_col.(c)).(cols)))

  let solve_unique a b =
    match solve a b with
    | Unique x -> x
    | Underdetermined -> failwith "Linsolve.solve_unique: underdetermined system"
    | Inconsistent -> failwith "Linsolve.solve_unique: inconsistent system"
end
