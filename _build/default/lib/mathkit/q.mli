(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1]. Exactness matters for the
    analysis: timed-reachability states are deduplicated by comparing
    remaining times, and 106.7 ms must compare equal to 1067/10 every time. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t

val of_bigint : Bigint.t -> t

val of_decimal_string : string -> t
(** Parses ["-12.375"], ["1067/10"], ["42"].
    @raise Invalid_argument on malformed input. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero on zero divisor. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float

val to_string : t -> string
(** ["7/2"], or just ["3"] when the denominator is 1. *)

val pp : Format.formatter -> t -> unit

val pp_decimal : ?digits:int -> Format.formatter -> t -> unit
(** Decimal rendering, exact when possible, rounded to [digits] (default 6)
    fractional digits otherwise; trailing zeros trimmed. *)
