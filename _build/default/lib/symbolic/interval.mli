(** Closed rational intervals and conservative interval arithmetic.

    The paper's conclusion lists "nets which allow ranges of firing times"
    as future work. Once a symbolic performance expression exists, ranges
    come almost for free on the {e evaluation} side: evaluating the
    expression over intervals bounds the measure over every delay assignment
    in the box. The arithmetic is conservative (no sub-distributivity
    tricks), so bounds are valid though not always tight. *)

module Q = Tpan_mathkit.Q

type t = { lo : Q.t; hi : Q.t }

val make : Q.t -> Q.t -> t
(** @raise Invalid_argument if [hi < lo]. *)

val point : Q.t -> t
val of_ints : int -> int -> t

val contains : t -> Q.t -> bool
val is_point : t -> bool
val width : t -> Q.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor contains 0. *)

val pow : t -> int -> t
(** Tight for even powers of sign-spanning intervals. *)

val join : t -> t -> t
(** Smallest interval containing both. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val eval_poly : (Var.t -> t) -> Poly.t -> t
val eval_linexpr : (Var.t -> t) -> Linexpr.t -> t

val eval_ratfun : (Var.t -> t) -> Ratfun.t -> t
(** @raise Division_by_zero if the denominator's interval contains 0. *)
