(** Timing-constraint systems: the user-supplied knowledge that makes
    symbolic timed-reachability graphs constructible (paper §3).

    A system is a set of labelled linear constraints over time symbols; time
    variables ([E(·)], [F(·)]) are implicitly non-negative. The central
    query is {!compare_exprs}: under the system, is one affine delay
    expression always smaller than, equal to, or greater than another? When
    the system cannot decide, {!compare_exprs} reports [Unknown] and
    {!suggest} phrases the missing constraint — the paper's "automated tool
    could prompt designers for timing constraints at the necessary
    points". *)

type t

type relation = [ `Ge | `Gt | `Eq | `Le | `Lt ]

val empty : t

val add : ?label:string -> relation -> Linexpr.t -> Linexpr.t -> t -> t
(** [add ~label rel lhs rhs cs] records the constraint [lhs rel rhs]. The
    label (e.g. ["(1)"]) is reported by {!justify}. *)

val of_list : (string * relation * Linexpr.t * Linexpr.t) list -> t

val constraints : t -> (string * relation * Linexpr.t * Linexpr.t) list
(** In insertion order; auto-generated labels ["#n"] where none was given. *)

val is_consistent : t -> bool
(** False when the constraint set (plus implicit non-negativity) admits no
    model at all. *)

type comparison =
  | Lt  (** strictly smaller in every model *)
  | Eq  (** equal in every model *)
  | Gt
  | Unknown

val compare_exprs : t -> Linexpr.t -> Linexpr.t -> comparison

val entails : t -> relation -> Linexpr.t -> Linexpr.t -> bool

val justify : t -> relation -> Linexpr.t -> Linexpr.t -> string list option
(** [justify cs rel a b]: if [cs] entails [a rel b], a minimal (irreducible)
    set of constraint labels sufficient for the entailment — the audit trail
    behind the paper's Figure 7. Implicit non-negativity does not appear in
    the core. [None] if not entailed. *)

val suggest : Linexpr.t -> Linexpr.t -> string
(** Human-readable hint for an [Unknown] comparison: the constraint the
    designer should add. *)

val satisfies : (Var.t -> Tpan_mathkit.Q.t) -> t -> bool
(** Does a concrete time assignment satisfy every constraint (and
    non-negativity)? Used to check that concrete nets are models of their
    declared constraint set. *)

val pp : Format.formatter -> t -> unit
