module Q = Tpan_mathkit.Q

type t = { lo : Q.t; hi : Q.t }

let make lo hi =
  if Q.compare hi lo < 0 then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let point q = { lo = q; hi = q }
let of_ints a b = make (Q.of_int a) (Q.of_int b)

let contains iv q = Q.compare iv.lo q <= 0 && Q.compare q iv.hi <= 0
let is_point iv = Q.equal iv.lo iv.hi
let width iv = Q.sub iv.hi iv.lo

let add a b = { lo = Q.add a.lo b.lo; hi = Q.add a.hi b.hi }
let neg a = { lo = Q.neg a.hi; hi = Q.neg a.lo }
let sub a b = add a (neg b)

let mul a b =
  let cands = [ Q.mul a.lo b.lo; Q.mul a.lo b.hi; Q.mul a.hi b.lo; Q.mul a.hi b.hi ] in
  {
    lo = List.fold_left Q.min (List.hd cands) (List.tl cands);
    hi = List.fold_left Q.max (List.hd cands) (List.tl cands);
  }

let div a b =
  if Q.sign b.lo <= 0 && Q.sign b.hi >= 0 then raise Division_by_zero;
  mul a { lo = Q.inv b.hi; hi = Q.inv b.lo }

let pow a n =
  if n < 0 then invalid_arg "Interval.pow: negative exponent";
  if n = 0 then point Q.one
  else if n mod 2 = 1 || Q.sign a.lo >= 0 then begin
    let rec qp q k = if k = 0 then Q.one else Q.mul q (qp q (k - 1)) in
    { lo = qp a.lo n; hi = qp a.hi n }
  end
  else if Q.sign a.hi <= 0 then begin
    let rec qp q k = if k = 0 then Q.one else Q.mul q (qp q (k - 1)) in
    { lo = qp a.hi n; hi = qp a.lo n }
  end
  else begin
    (* even power of a sign-spanning interval: [0, max(|lo|,|hi|)^n] *)
    let m = Q.max (Q.abs a.lo) (Q.abs a.hi) in
    let rec qp q k = if k = 0 then Q.one else Q.mul q (qp q (k - 1)) in
    { lo = Q.zero; hi = qp m n }
  end

let join a b = { lo = Q.min a.lo b.lo; hi = Q.max a.hi b.hi }

let equal a b = Q.equal a.lo b.lo && Q.equal a.hi b.hi

let pp fmt iv =
  if is_point iv then Format.fprintf fmt "%a" (Q.pp_decimal ~digits:6) iv.lo
  else
    Format.fprintf fmt "[%a, %a]" (Q.pp_decimal ~digits:6) iv.lo (Q.pp_decimal ~digits:6) iv.hi

let eval_linexpr env e =
  List.fold_left
    (fun acc (v, c) -> add acc (mul (point c) (env v)))
    (point (Linexpr.constant e))
    (Linexpr.terms e)

(* Monomial-by-monomial interval evaluation; conservative when a variable
   occurs in several terms (classic interval dependency). *)
let eval_poly env p =
  Poly.fold
    (fun mono c acc ->
      let term =
        List.fold_left (fun acc (v, e) -> mul acc (pow (env v) e)) (point c) mono
      in
      add acc term)
    p (point Q.zero)

let eval_ratfun env r = div (eval_poly env (Ratfun.num r)) (eval_poly env (Ratfun.den r))
