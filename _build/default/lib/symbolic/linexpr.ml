module Q = Tpan_mathkit.Q
module FM = Tpan_mathkit.Fourier_motzkin
module L = FM.Linform

type t = L.t
(* A Linexpr is a Linform whose variable ids are {!Var} ids. *)

let zero = L.zero
let const = L.const
let of_int i = L.const (Q.of_int i)
let var v = L.var (Var.id v)

let add = L.add
let sub = L.sub
let scale = L.scale
let neg = L.neg

let is_const = L.is_const
let to_q_opt e = if L.is_const e then Some (L.constant e) else None
let constant = L.constant
let coeff v e = L.coeff (Var.id v) e
let vars e = List.map Var.of_id (L.vars e)
let terms e = List.map (fun (i, c) -> (Var.of_id i, c)) (L.coeffs e)

let eval env e = L.eval (fun i -> env (Var.of_id i)) e

let subst f e =
  List.fold_left
    (fun acc (v, c) ->
      match f v with
      | None -> add acc (scale c (var v))
      | Some e' -> add acc (scale c e'))
    (const (constant e)) (terms e)

let equal = L.equal
let compare = L.compare
let hash = L.hash

let to_form e = e
let of_form f = f

let pp fmt e = L.pp ~name:(fun i -> Var.name (Var.of_id i)) fmt e
