module Q = Tpan_mathkit.Q
module FM = Tpan_mathkit.Fourier_motzkin

type relation = [ `Ge | `Gt | `Eq | `Le | `Lt ]

type entry = { label : string; rel : relation; lhs : Linexpr.t; rhs : Linexpr.t }

type t = { entries : entry list (* reverse insertion order *); count : int }

let empty = { entries = []; count = 0 }

let add ?label rel lhs rhs cs =
  let label = match label with Some l -> l | None -> Printf.sprintf "#%d" (cs.count + 1) in
  { entries = { label; rel; lhs; rhs } :: cs.entries; count = cs.count + 1 }

let of_list l =
  List.fold_left (fun cs (label, rel, lhs, rhs) -> add ~label rel lhs rhs cs) empty l

let constraints cs =
  List.rev_map (fun e -> (e.label, e.rel, e.lhs, e.rhs)) cs.entries

(* Translate an entry to Fourier-Motzkin constraints (on Linforms). *)
let to_fm e =
  let a = Linexpr.to_form e.lhs and b = Linexpr.to_form e.rhs in
  match e.rel with
  | `Ge -> FM.ge a b
  | `Gt -> FM.gt a b
  | `Eq -> FM.eq a b
  | `Le -> FM.ge b a
  | `Lt -> FM.gt b a

(* Implicit non-negativity of every time symbol mentioned anywhere. *)
let nonneg_of_vars entries extra_exprs =
  let module IS = Set.Make (Int) in
  let add_expr s e =
    List.fold_left (fun s v -> if Var.is_time v then IS.add (Var.id v) s else s) s (Linexpr.vars e)
  in
  let ids =
    List.fold_left (fun s e -> add_expr (add_expr s e.lhs) e.rhs) IS.empty entries
  in
  let ids = List.fold_left add_expr ids extra_exprs in
  IS.fold (fun id acc -> FM.ge (FM.Linform.var id) FM.Linform.zero :: acc) ids []

let fm_system ?(extra = []) entries = nonneg_of_vars entries extra @ List.map to_fm entries

let is_consistent cs = FM.feasible (fm_system cs.entries)

type comparison = Lt | Eq | Gt | Unknown

let compare_with_entries entries a b =
  let sys = fm_system ~extra:[ a; b ] entries in
  match FM.compare_forms sys (Linexpr.to_form a) (Linexpr.to_form b) with
  | FM.Always_lt -> Lt
  | FM.Always_eq -> Eq
  | FM.Always_gt -> Gt
  | FM.Unknown -> Unknown

let compare_exprs cs a b = compare_with_entries cs.entries a b

let entails_with_entries entries rel a b =
  let sys = fm_system ~extra:[ a; b ] entries in
  FM.entails sys (to_fm { label = ""; rel; lhs = a; rhs = b })

let entails cs rel a b = entails_with_entries cs.entries rel a b

let justify cs rel a b =
  if not (entails cs rel a b) then None
  else begin
    (* Greedy core shrinking: drop each entry that is not needed. The result
       is irreducible (removing any member breaks the entailment). *)
    let core =
      List.fold_left
        (fun kept e ->
          let without = List.filter (fun e' -> e' != e) kept in
          if entails_with_entries without rel a b then without else kept)
        cs.entries cs.entries
    in
    Some (List.rev_map (fun e -> e.label) core)
  end

let suggest a b =
  Format.asprintf
    "the order of %a and %a is not determined; add a timing constraint such as `%a <= %a` or `%a <= %a`"
    Linexpr.pp a Linexpr.pp b Linexpr.pp a Linexpr.pp b Linexpr.pp b Linexpr.pp a

let satisfies env cs =
  let ok_nonneg =
    let module VS = Set.Make (Var) in
    let vars =
      List.fold_left
        (fun s e ->
          let add s expr = List.fold_left (fun s v -> VS.add v s) s (Linexpr.vars expr) in
          add (add s e.lhs) e.rhs)
        VS.empty cs.entries
    in
    VS.for_all (fun v -> (not (Var.is_time v)) || Q.sign (env v) >= 0) vars
  in
  ok_nonneg
  && List.for_all
       (fun e ->
         let l = Linexpr.eval env e.lhs and r = Linexpr.eval env e.rhs in
         match e.rel with
         | `Ge -> Q.compare l r >= 0
         | `Gt -> Q.compare l r > 0
         | `Eq -> Q.equal l r
         | `Le -> Q.compare l r <= 0
         | `Lt -> Q.compare l r < 0)
       cs.entries

let pp_rel fmt (rel : relation) =
  Format.pp_print_string fmt
    (match rel with `Ge -> ">=" | `Gt -> ">" | `Eq -> "=" | `Le -> "<=" | `Lt -> "<")

let pp fmt cs =
  let entries = List.rev cs.entries in
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut fmt ();
      Format.fprintf fmt "%s %a %a %a" e.label Linexpr.pp e.lhs pp_rel e.rel Linexpr.pp e.rhs)
    entries;
  Format.pp_close_box fmt ()
