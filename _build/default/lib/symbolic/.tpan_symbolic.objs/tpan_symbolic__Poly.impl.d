lib/symbolic/poly.ml: Array Format Int Linexpr List Map Option Seq Set Stdlib Tpan_mathkit Var
