lib/symbolic/constraints.mli: Format Linexpr Tpan_mathkit Var
