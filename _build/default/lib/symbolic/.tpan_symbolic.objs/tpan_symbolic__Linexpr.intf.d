lib/symbolic/linexpr.mli: Format Tpan_mathkit Var
