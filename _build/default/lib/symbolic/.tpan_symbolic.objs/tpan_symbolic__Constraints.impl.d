lib/symbolic/constraints.ml: Format Int Linexpr List Printf Set Tpan_mathkit Var
