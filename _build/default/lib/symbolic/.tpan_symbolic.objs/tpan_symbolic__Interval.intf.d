lib/symbolic/interval.mli: Format Linexpr Poly Ratfun Tpan_mathkit Var
