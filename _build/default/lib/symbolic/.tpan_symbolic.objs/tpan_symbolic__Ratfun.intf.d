lib/symbolic/ratfun.mli: Format Poly Tpan_mathkit Var
