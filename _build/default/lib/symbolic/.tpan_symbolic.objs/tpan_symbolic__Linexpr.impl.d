lib/symbolic/linexpr.ml: List Tpan_mathkit Var
