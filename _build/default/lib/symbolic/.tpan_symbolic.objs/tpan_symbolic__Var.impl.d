lib/symbolic/var.ml: Format Hashtbl Stdlib
