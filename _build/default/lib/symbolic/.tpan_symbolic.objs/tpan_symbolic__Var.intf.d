lib/symbolic/var.mli: Format
