lib/symbolic/poly.mli: Format Linexpr Tpan_mathkit Var
