lib/symbolic/interval.ml: Format Linexpr List Poly Ratfun Tpan_mathkit
