lib/symbolic/ratfun.ml: Format List Poly Tpan_mathkit
