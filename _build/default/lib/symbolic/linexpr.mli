(** Affine (linear) expressions over {!Var} with rational coefficients.

    Every time quantity in a timed reachability graph — remaining enabling
    times, remaining firing times, edge delays — is an affine combination of
    the net's time symbols: the successor procedure only ever subtracts the
    minimum and sums delays. Restricting to affine forms is therefore lossless
    and keeps comparison decidable by Fourier–Motzkin. *)

type t

val zero : t
val const : Tpan_mathkit.Q.t -> t
val of_int : int -> t
val var : Var.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : Tpan_mathkit.Q.t -> t -> t
val neg : t -> t

val is_const : t -> bool

val to_q_opt : t -> Tpan_mathkit.Q.t option
(** The value if the expression is constant. *)

val constant : t -> Tpan_mathkit.Q.t
val coeff : Var.t -> t -> Tpan_mathkit.Q.t
val vars : t -> Var.t list
val terms : t -> (Var.t * Tpan_mathkit.Q.t) list

val eval : (Var.t -> Tpan_mathkit.Q.t) -> t -> Tpan_mathkit.Q.t

val subst : (Var.t -> t option) -> t -> t
(** Replace variables by affine expressions; [None] keeps the variable. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_form : t -> Tpan_mathkit.Fourier_motzkin.Linform.t
val of_form : Tpan_mathkit.Fourier_motzkin.Linform.t -> t

val pp : Format.formatter -> t -> unit
