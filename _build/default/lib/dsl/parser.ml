module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn
module L = Lexer

exception Parse_error of L.pos * string

(* ----- AST ----- *)

type time_ast = T_num of string | T_sym_e of string | T_sym_f of string | T_self

type freq_ast = F_num of string | F_sym of string | F_self

type atom = A_const of string | A_enabling of string | A_firing of string | A_param of string

type expr_term = { coeff : string option; atom : atom }

type expr = (bool (* negative *) * expr_term) list

type rel = R_lt | R_le | R_eq | R_ge | R_gt

type field =
  | In_bag of (int * string) list
  | Out_bag of (int * string) list
  | Enable of time_ast
  | Fire of time_ast
  | Freq of freq_ast

type decl =
  | D_place of string * int
  | D_trans of string * field list
  | D_constraint of string option * expr * rel * expr

type ast = { net_name : string; decls : decl list }

(* ----- parser state ----- *)

type state = { mutable toks : L.lexeme list }

let peek st = match st.toks with [] -> assert false | l :: _ -> l

let advance st = match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let fail_at (l : L.lexeme) fmt =
  Format.kasprintf (fun s -> raise (Parse_error (l.L.pos, s))) fmt

let expect st tok =
  let l = peek st in
  if l.L.tok = tok then advance st
  else fail_at l "expected %s but found %s" (L.describe tok) (L.describe l.L.tok)

let expect_ident st what =
  let l = peek st in
  match l.L.tok with
  | L.IDENT s -> advance st; s
  | t -> fail_at l "expected %s (an identifier) but found %s" what (L.describe t)

let expect_number st what =
  let l = peek st in
  match l.L.tok with
  | L.NUMBER s -> advance st; s
  | t -> fail_at l "expected %s (a number) but found %s" what (L.describe t)

let accept st tok = if (peek st).L.tok = tok then (advance st; true) else false

(* a rational spelling: NUMBER, optionally followed by '/' NUMBER *)
let extend_fraction st n =
  if (peek st).L.tok = L.SLASH then begin
    advance st;
    let d = expect_number st "denominator" in
    n ^ "/" ^ d
  end
  else n

(* ----- grammar ----- *)

(* bag := (INT '*')? IDENT (',' ...)* *)
let parse_bag st =
  let item () =
    let l = peek st in
    match l.L.tok with
    | L.NUMBER n ->
      advance st;
      expect st L.STAR;
      let w =
        try int_of_string n with Failure _ -> fail_at l "multiplicity must be an integer"
      in
      let p = expect_ident st "place name" in
      (w, p)
    | L.IDENT p -> advance st; (1, p)
    | t -> fail_at l "expected a place name but found %s" (L.describe t)
  in
  let first = item () in
  let rec more acc = if accept st L.COMMA then more (item () :: acc) else List.rev acc in
  more [ first ]

(* symref := IDENT '(' IDENT ')' with IDENT in {E,F,f} *)
let parse_time st =
  let l = peek st in
  match l.L.tok with
  | L.NUMBER n -> advance st; T_num (extend_fraction st n)
  | L.KW_SYM -> advance st; T_self
  | L.IDENT ("E" as k) | L.IDENT ("F" as k) ->
    advance st;
    expect st L.LPAREN;
    let name = expect_ident st "symbol label" in
    expect st L.RPAREN;
    if k = "E" then T_sym_e name else T_sym_f name
  | t -> fail_at l "expected a time value (number, E(..), F(..) or 'sym') but found %s" (L.describe t)

let parse_freq st =
  let l = peek st in
  match l.L.tok with
  | L.NUMBER n -> advance st; F_num (extend_fraction st n)
  | L.KW_SYM -> advance st; F_self
  | L.IDENT "f" ->
    advance st;
    expect st L.LPAREN;
    let name = expect_ident st "symbol label" in
    expect st L.RPAREN;
    F_sym name
  | t -> fail_at l "expected a frequency (number, f(..) or 'sym') but found %s" (L.describe t)

let parse_atom st =
  let l = peek st in
  match l.L.tok with
  | L.NUMBER n -> advance st; A_const (extend_fraction st n)
  | L.IDENT ("E" | "F" | "f") when (match st.toks with _ :: { L.tok = L.LPAREN; _ } :: _ -> true | _ -> false) ->
    let k = match l.L.tok with L.IDENT k -> k | _ -> assert false in
    advance st;
    expect st L.LPAREN;
    let name = expect_ident st "symbol label" in
    expect st L.RPAREN;
    (match k with
     | "E" -> A_enabling name
     | "F" -> A_firing name
     | _ -> fail_at l "frequency symbols cannot appear in timing constraints")
  | L.IDENT p -> advance st; A_param p
  | t -> fail_at l "expected a term but found %s" (L.describe t)

(* term := NUMBER '*' atom | atom  (the bare-NUMBER case is A_const) *)
let parse_term st =
  let l = peek st in
  match l.L.tok with
  | L.NUMBER n ->
    advance st;
    let n = extend_fraction st n in
    if accept st L.STAR then
      let a = parse_atom st in
      { coeff = Some n; atom = a }
    else { coeff = None; atom = A_const n }
  | _ -> { coeff = None; atom = parse_atom st }

let parse_expr st =
  let first_neg = accept st L.MINUS in
  let first = parse_term st in
  let rec more acc =
    let l = peek st in
    match l.L.tok with
    | L.PLUS -> advance st; more ((false, parse_term st) :: acc)
    | L.MINUS -> advance st; more ((true, parse_term st) :: acc)
    | _ -> List.rev acc
  in
  more [ (first_neg, first) ]

let parse_rel st =
  let l = peek st in
  match l.L.tok with
  | L.LT -> advance st; R_lt
  | L.LE -> advance st; R_le
  | L.EQUAL -> advance st; R_eq
  | L.GE -> advance st; R_ge
  | L.GT -> advance st; R_gt
  | t -> fail_at l "expected a relation (<, <=, =, >=, >) but found %s" (L.describe t)

let parse_trans_body st =
  expect st L.LBRACE;
  let rec fields acc =
    ignore (accept st L.SEMI);
    let l = peek st in
    match l.L.tok with
    | L.RBRACE -> advance st; List.rev acc
    | L.KW_IN -> advance st; fields (In_bag (parse_bag st) :: acc)
    | L.KW_OUT -> advance st; fields (Out_bag (parse_bag st) :: acc)
    | L.KW_ENABLE -> advance st; fields (Enable (parse_time st) :: acc)
    | L.KW_FIRE -> advance st; fields (Fire (parse_time st) :: acc)
    | L.KW_FREQ -> advance st; fields (Freq (parse_freq st) :: acc)
    | t -> fail_at l "expected a transition field (in/out/enable/fire/freq) but found %s" (L.describe t)
  in
  fields []

let parse_ast st =
  expect st L.KW_NET;
  let net_name = expect_ident st "net name" in
  let rec decls acc =
    let l = peek st in
    match l.L.tok with
    | L.EOF -> List.rev acc
    | L.KW_PLACE ->
      advance st;
      let name = expect_ident st "place name" in
      let init = if accept st L.KW_INIT then int_of_string (expect_number st "initial marking") else 0 in
      decls (D_place (name, init) :: acc)
    | L.KW_TRANS ->
      advance st;
      let name = expect_ident st "transition name" in
      let fields = parse_trans_body st in
      decls (D_trans (name, fields) :: acc)
    | L.KW_CONSTRAINT ->
      advance st;
      (* optional 'label :' *)
      let label =
        match st.toks with
        | { L.tok = L.IDENT lbl; _ } :: { L.tok = L.COLON; _ } :: _ ->
          advance st; advance st; Some lbl
        | _ -> None
      in
      let lhs = parse_expr st in
      let rel = parse_rel st in
      let rhs = parse_expr st in
      decls (D_constraint (label, lhs, rel, rhs) :: acc)
    | t -> fail_at l "expected 'place', 'trans' or 'constraint' but found %s" (L.describe t)
  in
  let decls = decls [] in
  { net_name; decls }

(* ----- elaboration ----- *)

let q_of_spelling pos s =
  try Q.of_decimal_string s
  with Invalid_argument m -> raise (Parse_error (pos, m))

let elaborate ast =
  let b = Net.builder ast.net_name in
  let place_idx = Hashtbl.create 16 in
  (* pass 1: places *)
  List.iter
    (function
      | D_place (name, init) ->
        let p = Net.add_place b ~init name in
        Hashtbl.add place_idx name p
      | D_trans _ | D_constraint _ -> ())
    ast.decls;
  let lookup_place name =
    match Hashtbl.find_opt place_idx name with
    | Some p -> p
    | None -> raise (Parse_error ({ L.line = 0; col = 0 }, Printf.sprintf "unknown place %S" name))
  in
  (* pass 2: transitions *)
  let specs = ref [] in
  List.iter
    (function
      | D_trans (name, fields) ->
        let inputs = ref [] and outputs = ref [] in
        let enabling = ref (Tpn.Fixed Q.zero) in
        let firing = ref (Tpn.Fixed Q.zero) in
        let freq = ref (Tpn.Freq Q.one) in
        let time_of = function
          | T_num n -> Tpn.Fixed (q_of_spelling { L.line = 0; col = 0 } n)
          | T_sym_e l -> Tpn.Sym (Var.enabling l)
          | T_sym_f l -> Tpn.Sym (Var.firing l)
          | T_self -> Tpn.Sym (Var.firing name)
        in
        List.iter
          (function
            | In_bag bag -> inputs := !inputs @ List.map (fun (w, p) -> (lookup_place p, w)) bag
            | Out_bag bag -> outputs := !outputs @ List.map (fun (w, p) -> (lookup_place p, w)) bag
            | Enable (T_self) -> enabling := Tpn.Sym (Var.enabling name)
            | Enable t -> enabling := time_of t
            | Fire t -> firing := time_of t
            | Freq (F_num n) -> freq := Tpn.Freq (q_of_spelling { L.line = 0; col = 0 } n)
            | Freq (F_sym l) -> freq := Tpn.Freq_sym (Var.frequency l)
            | Freq F_self -> freq := Tpn.Freq_sym (Var.frequency name))
          fields;
        ignore (Net.add_transition b ~name ~inputs:!inputs ~outputs:!outputs);
        specs := (name, Tpn.spec ~enabling:!enabling ~firing:!firing ~frequency:!freq ()) :: !specs
      | D_place _ | D_constraint _ -> ())
    ast.decls;
  let net = Net.build b in
  (* pass 3: constraints *)
  let lin_of_expr expr =
    List.fold_left
      (fun acc (neg, { coeff; atom }) ->
        let k =
          match coeff with
          | Some n -> q_of_spelling { L.line = 0; col = 0 } n
          | None -> Q.one
        in
        let k = if neg then Q.neg k else k in
        let term =
          match atom with
          | A_const n -> Lin.const (Q.mul k (q_of_spelling { L.line = 0; col = 0 } n))
          | A_enabling l -> Lin.scale k (Lin.var (Var.enabling l))
          | A_firing l -> Lin.scale k (Lin.var (Var.firing l))
          | A_param l -> Lin.scale k (Lin.var (Var.param l))
        in
        Lin.add acc term)
      Lin.zero expr
  in
  let constraints =
    List.fold_left
      (fun cs decl ->
        match decl with
        | D_constraint (label, lhs, rel, rhs) ->
          let rel =
            match rel with
            | R_lt -> `Lt
            | R_le -> `Le
            | R_eq -> `Eq
            | R_ge -> `Ge
            | R_gt -> `Gt
          in
          C.add ?label rel (lin_of_expr lhs) (lin_of_expr rhs) cs
        | D_place _ | D_trans _ -> cs)
      C.empty ast.decls
  in
  Tpn.make ~constraints net (List.rev !specs)

let parse_string src =
  try
    let st = { toks = L.tokenize src } in
    let ast = parse_ast st in
    elaborate ast
  with L.Error (pos, msg) -> raise (Parse_error (pos, msg))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string src

let parse_result src =
  match parse_string src with
  | tpn -> Ok tpn
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "line %d, column %d: %s" pos.L.line pos.L.col msg)
  | exception Invalid_argument msg -> Error msg
  | exception Tpn.Unsupported msg -> Error msg
