(** Render a timed net back to [.tpn] concrete syntax. Round-trips through
    {!Parser.parse_string} up to constraint-label spelling. *)

val to_string : Tpan_core.Tpn.t -> string

val pp : Format.formatter -> Tpan_core.Tpn.t -> unit
