type token =
  | IDENT of string
  | NUMBER of string
  | KW_NET
  | KW_PLACE
  | KW_TRANS
  | KW_INIT
  | KW_IN
  | KW_OUT
  | KW_ENABLE
  | KW_FIRE
  | KW_FREQ
  | KW_CONSTRAINT
  | KW_SYM
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | STAR
  | SLASH
  | PLUS
  | MINUS
  | GT
  | GE
  | LT
  | LE
  | EQUAL
  | EOF

type pos = { line : int; col : int }

type lexeme = { tok : token; pos : pos }

exception Error of pos * string

let keyword_of = function
  | "net" -> Some KW_NET
  | "place" -> Some KW_PLACE
  | "trans" -> Some KW_TRANS
  | "init" -> Some KW_INIT
  | "in" -> Some KW_IN
  | "out" -> Some KW_OUT
  | "enable" -> Some KW_ENABLE
  | "fire" -> Some KW_FIRE
  | "freq" -> Some KW_FREQ
  | "constraint" -> Some KW_CONSTRAINT
  | "sym" -> Some KW_SYM
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { line = !line; col = i - !bol + 1 } in
  let out = ref [] in
  let emit tok p = out := { tok; pos = p } :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let p = pos !i in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      match keyword_of word with
      | Some kw -> emit kw p
      | None -> emit (IDENT word) p
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' then begin
        incr i;
        if !i >= n || not (is_digit src.[!i]) then raise (Error (p, "malformed number"));
        while !i < n && is_digit src.[!i] do incr i done
      end;
      emit (NUMBER (String.sub src start (!i - start))) p
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ">=" -> emit GE p; i := !i + 2
      | "<=" -> emit LE p; i := !i + 2
      | _ ->
        (match c with
         | '{' -> emit LBRACE p
         | '}' -> emit RBRACE p
         | '(' -> emit LPAREN p
         | ')' -> emit RPAREN p
         | ',' -> emit COMMA p
         | ';' -> emit SEMI p
         | ':' -> emit COLON p
         | '*' -> emit STAR p
         | '/' -> emit SLASH p
         | '+' -> emit PLUS p
         | '-' -> emit MINUS p
         | '>' -> emit GT p
         | '<' -> emit LT p
         | '=' -> emit EQUAL p
         | _ -> raise (Error (p, Printf.sprintf "illegal character %C" c)));
        incr i
    end
  done;
  emit EOF (pos !i);
  List.rev !out

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER s -> Printf.sprintf "number %s" s
  | KW_NET -> "'net'"
  | KW_PLACE -> "'place'"
  | KW_TRANS -> "'trans'"
  | KW_INIT -> "'init'"
  | KW_IN -> "'in'"
  | KW_OUT -> "'out'"
  | KW_ENABLE -> "'enable'"
  | KW_FIRE -> "'fire'"
  | KW_FREQ -> "'freq'"
  | KW_CONSTRAINT -> "'constraint'"
  | KW_SYM -> "'sym'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | COLON -> "':'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | GT -> "'>'"
  | GE -> "'>='"
  | LT -> "'<'"
  | LE -> "'<='"
  | EQUAL -> "'='"
  | EOF -> "end of input"
