module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

let q_str q = Q.to_string q  (* exact: "a/b" or an integer *)

let is_valid_label s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false) s

let pp fmt tpn =
  let net = Tpn.net tpn in
  Format.fprintf fmt "net %s@." (Net.name net);
  let init = Net.initial_marking net in
  List.iter
    (fun p ->
      if init.(p) > 0 then Format.fprintf fmt "place %s init %d@." (Net.place_name net p) init.(p)
      else Format.fprintf fmt "place %s@." (Net.place_name net p))
    (Net.places net);
  let pp_bag fmt bag =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      (fun fmt (p, w) ->
        if w = 1 then Format.pp_print_string fmt (Net.place_name net p)
        else Format.fprintf fmt "%d*%s" w (Net.place_name net p))
      fmt bag
  in
  let time_str = function
    | Tpn.Fixed q -> q_str q
    | Tpn.Sym v ->
      (match Var.kind v with
       | Var.Enabling -> Printf.sprintf "E(%s)" (Var.label v)
       | Var.Firing -> Printf.sprintf "F(%s)" (Var.label v)
       | Var.Frequency | Var.Param -> Var.name v)
  in
  List.iter
    (fun t ->
      Format.fprintf fmt "trans %s {" (Net.trans_name net t);
      (match Net.inputs net t with
       | [] -> ()
       | bag -> Format.fprintf fmt " in %a;" pp_bag bag);
      (match Net.outputs net t with
       | [] -> ()
       | bag -> Format.fprintf fmt " out %a;" pp_bag bag);
      (match Tpn.enabling tpn t with
       | Tpn.Fixed q when Q.is_zero q -> ()
       | e -> Format.fprintf fmt " enable %s;" (time_str e));
      (match Tpn.firing tpn t with
       | Tpn.Fixed q when Q.is_zero q -> ()
       | f -> Format.fprintf fmt " fire %s;" (time_str f));
      (match Tpn.frequency tpn t with
       | Tpn.Freq q when Q.equal q Q.one -> ()
       | Tpn.Freq q -> Format.fprintf fmt " freq %s;" (q_str q)
       | Tpn.Freq_sym v -> Format.fprintf fmt " freq f(%s);" (Var.label v));
      Format.fprintf fmt " }@.")
    (Net.transitions net);
  let pp_lin fmt e =
    (* Linexpr.pp already prints E(x)/F(x)/names with +- and coefficients,
       matching the constraint grammar. *)
    Lin.pp fmt e
  in
  List.iter
    (fun (label, rel, lhs, rhs) ->
      let rel_str =
        match rel with `Lt -> "<" | `Le -> "<=" | `Eq -> "=" | `Ge -> ">=" | `Gt -> ">"
      in
      if is_valid_label label then
        Format.fprintf fmt "constraint %s: %a %s %a@." label pp_lin lhs rel_str pp_lin rhs
      else Format.fprintf fmt "constraint %a %s %a@." pp_lin lhs rel_str pp_lin rhs)
    (C.constraints (Tpn.constraints tpn))

let to_string tpn = Format.asprintf "%a" pp tpn
