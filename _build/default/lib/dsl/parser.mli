(** Parser and elaborator for the [.tpn] net-description format.

    Example:
    {v
    net stopwait
    place p1 init 1
    place p2
    trans send { in p1; out p2; fire 1; freq 1 }
    trans lose { in p2; fire 106.7; freq 0.05 }
    trans deliver { in p2; fire sym; freq 0.95 }      # F(deliver) symbolic
    trans expire { in p1; enable E(to); fire 1; freq 0 }
    constraint c1: E(to) > F(deliver) + 5
    v}

    Time values are decimal numbers, [E(name)] / [F(name)] symbols, or the
    keyword [sym] (shorthand for this transition's own symbol). Frequencies
    are numbers, [f(name)], or [sym]. Constraints relate linear
    expressions with [<], [<=], [=], [>=], [>]. *)

exception Parse_error of Lexer.pos * string

val parse_string : string -> Tpan_core.Tpn.t
(** @raise Parse_error (also converts {!Lexer.Error}) *)

val parse_file : string -> Tpan_core.Tpn.t
(** @raise Sys_error, @raise Parse_error *)

val parse_result : string -> (Tpan_core.Tpn.t, string) result
(** Like {!parse_string} with the error rendered as
    ["line L, column C: message"]. *)
