(** Hand-written lexer for the [.tpn] net-description format. *)

type token =
  | IDENT of string
  | NUMBER of string  (** raw spelling, e.g. ["106.7"] *)
  | KW_NET
  | KW_PLACE
  | KW_TRANS
  | KW_INIT
  | KW_IN
  | KW_OUT
  | KW_ENABLE
  | KW_FIRE
  | KW_FREQ
  | KW_CONSTRAINT
  | KW_SYM
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | COLON
  | STAR
  | SLASH
  | PLUS
  | MINUS
  | GT
  | GE
  | LT
  | LE
  | EQUAL
  | EOF

type pos = { line : int; col : int }

type lexeme = { tok : token; pos : pos }

exception Error of pos * string

val tokenize : string -> lexeme list
(** Comments run from [#] to end of line. @raise Error on an illegal
    character or malformed number. *)

val describe : token -> string
