lib/dsl/lexer.mli:
