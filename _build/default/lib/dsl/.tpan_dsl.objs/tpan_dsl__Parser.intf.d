lib/dsl/parser.mli: Lexer Tpan_core
