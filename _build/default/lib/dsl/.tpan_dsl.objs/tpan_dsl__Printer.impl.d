lib/dsl/printer.ml: Array Format List Printf String Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
