lib/dsl/printer.mli: Format Tpan_core
