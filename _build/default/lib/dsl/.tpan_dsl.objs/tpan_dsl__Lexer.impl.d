lib/dsl/lexer.ml: List Printf String
