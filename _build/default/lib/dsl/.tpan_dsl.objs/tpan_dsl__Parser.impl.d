lib/dsl/parser.ml: Format Hashtbl Lexer List Printf Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
