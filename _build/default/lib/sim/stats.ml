module Running = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean))

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let std_error t = if t.n = 0 then 0. else stddev t /. sqrt (float_of_int t.n)

  let ci95 t =
    let half = 1.96 *. std_error t in
    (t.mean -. half, t.mean +. half)
end

module Time_weighted = struct
  type t = {
    mutable last_t : float;
    mutable last_v : float;
    mutable acc : float;
    mutable span : float;
    mutable started : bool;
  }

  let create () = { last_t = 0.; last_v = 0.; acc = 0.; span = 0.; started = false }

  let settle t at =
    if t.started then begin
      let dt = at -. t.last_t in
      if dt < 0. then invalid_arg "Time_weighted.observe: time went backwards";
      t.acc <- t.acc +. (t.last_v *. dt);
      t.span <- t.span +. dt
    end

  let observe t ~at v =
    settle t at;
    t.last_t <- at;
    t.last_v <- v;
    t.started <- true

  let close t ~at = settle t at; t.last_t <- at

  let average t = if t.span = 0. then 0. else t.acc /. t.span
end
