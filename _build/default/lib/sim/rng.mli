(** Deterministic seedable PRNG (splitmix64).

    Self-contained so simulation results are reproducible across OCaml
    versions (the stdlib's [Random] algorithm has changed between
    releases). *)

type t

val create : seed:int -> t

val next_int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound]: uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val split : t -> t
(** An independent stream (for replications). *)

val choose_weighted : t -> (('a * float) list) -> 'a
(** Sample proportionally to the (non-negative, not all zero) weights.
    @raise Invalid_argument on an empty or all-zero list. *)
