(** Online statistics for simulation outputs. *)

(** Welford running mean/variance. *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  (** Sample (n-1) variance; 0 for fewer than two observations. *)

  val stddev : t -> float

  val std_error : t -> float
  (** [stddev / sqrt n]. *)

  val ci95 : t -> float * float
  (** Normal-approximation 95% confidence interval for the mean. *)
end

(** Time-weighted average of a piecewise-constant signal. *)
module Time_weighted : sig
  type t

  val create : unit -> t

  val observe : t -> at:float -> float -> unit
  (** Record that the signal takes the given value from time [at] onward.
      Observations must arrive in non-decreasing time order. *)

  val close : t -> at:float -> unit
  val average : t -> float
end
