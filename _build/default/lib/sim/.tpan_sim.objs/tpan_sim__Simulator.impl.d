lib/sim/simulator.ml: Array Float Hashtbl Heap Int64 List Option Printf Rng Stats Stdlib Tpan_core Tpan_mathkit Tpan_petri
