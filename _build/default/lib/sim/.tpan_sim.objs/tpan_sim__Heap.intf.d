lib/sim/heap.mli:
