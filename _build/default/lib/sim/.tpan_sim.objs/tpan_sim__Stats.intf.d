lib/sim/stats.mli:
