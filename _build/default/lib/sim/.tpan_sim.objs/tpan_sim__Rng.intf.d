lib/sim/rng.mli:
