lib/sim/stats.ml:
