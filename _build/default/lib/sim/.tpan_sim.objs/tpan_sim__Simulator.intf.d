lib/sim/simulator.mli: Tpan_core Tpan_mathkit Tpan_petri
