(** Array-backed binary min-heap — the event queue of the simulator. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Not_found on an empty heap. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Unordered snapshot. *)
