(** Independent numeric cross-check of the rate-equation solution.

    Treats the decision graph as an embedded discrete-time Markov chain over
    decision nodes, computes its stationary distribution by power iteration
    in floating point, and derives throughputs as
    [Σ π(src)·p_e·count_e / Σ π(src)·p_e·d_e]. Agreement with the exact
    ℚ-field solution (up to float tolerance) validates both paths. *)

val stationary :
  probs:(('t, 'p) Decision_graph.dedge -> float) ->
  ?iterations:int ->
  ?tolerance:float ->
  ('t, 'p) Decision_graph.t ->
  (int * float) list
(** Stationary distribution over decision nodes (sums to 1).
    @raise Failure if the chain is absorbing or iteration fails to
    converge. *)

val throughput :
  probs:(('t, 'p) Decision_graph.dedge -> float) ->
  delays:(('t, 'p) Decision_graph.dedge -> float) ->
  ('t, 'p) Decision_graph.t ->
  count:(('t, 'p) Decision_graph.dedge -> int) ->
  float
(** Long-run events per unit time, with [count] giving the number of
    interesting events on each edge. *)
