(** Traversal-rate equations over a decision graph (paper §4, Figure 8).

    The rate at which an outgoing edge is traversed is its branching
    probability times the rate at which its source node is entered:
    [r_e = p_e · v(src e)], [v(n) = Σ_{e→n} r_e]. Fixing [v(n₀) = 1] (the
    paper "assumes a particular value for one of the rates") makes the
    linear system uniquely solvable for irreducible graphs; everything is
    then {e relative} to visits of [n₀].

    The solver is generic over the coefficient field, so the same code
    yields the paper's symbolic rates (field = rational functions of the
    frequency symbols) and exact numeric rates (field = ℚ). *)

type 'f field = {
  zero : 'f;
  one : 'f;
  is_zero : 'f -> bool;
  add : 'f -> 'f -> 'f;
  sub : 'f -> 'f -> 'f;
  mul : 'f -> 'f -> 'f;
  div : 'f -> 'f -> 'f;
  pp : Format.formatter -> 'f -> unit;
}

val q_field : Tpan_mathkit.Q.t field
val ratfun_field : Tpan_symbolic.Ratfun.t field
val float_field : float field

type ('t, 'p, 'f) result = {
  dg : ('t, 'p) Decision_graph.t;
  field : 'f field;
  normalized_at : int;  (** decision node with visit rate 1 *)
  visit_rate : int -> 'f;  (** per decision node *)
  edge_rate : ('t, 'p, 'f) rated_edge list;
  total_weight : 'f;
      (** [Σ_e r_e·d_e] — the paper's [Σ wᵢ]; the mean time per visit of the
          normalization node, so absolute rates are [r_e / total_weight] *)
}

and ('t, 'p, 'f) rated_edge = {
  edge : ('t, 'p) Decision_graph.dedge;
  rate : 'f;  (** relative traversal rate [r_e] *)
  weight : 'f;  (** relative time spent on the edge [w_e = r_e·d_e] *)
}

exception Unsolvable of string
(** The decision graph is absorbing, not strongly connected, or otherwise
    yields a singular system. *)

val solve :
  field:'f field ->
  embed_prob:('p -> 'f) ->
  embed_delay:('t -> 'f) ->
  ?normalize_at:int ->
  ('t, 'p) Decision_graph.t ->
  ('t, 'p, 'f) result
(** [normalize_at] defaults to the smallest decision-node index.
    @raise Unsolvable *)
