(** First-passage (latency) analysis on timed reachability graphs.

    Beyond steady-state throughput, protocol designers ask "how long until
    X happens?": mean time from a state until the first occurrence of an
    event (a transition beginning or completing on some edge). The
    expectations satisfy the linear system

    [h(s) = Σ_{e out of s} p_e · (d_e + (0 if e is the event else h(dst e)))]

    solved exactly over ℚ for concrete graphs and over rational functions
    for symbolic graphs — giving closed-form latency expressions in the
    spirit of the paper's throughput derivation. *)

module Sem = Tpan_core.Semantics

val mean_time_to_event :
  field:'f Rates.field ->
  embed_prob:('p -> 'f) ->
  embed_delay:('t -> 'f) ->
  ('t, 'p) Sem.graph ->
  start:int ->
  event:(('t, 'p) Sem.edge -> bool) ->
  'f option
(** [None] when, with positive probability, the event never occurs from
    [start] (the expectation is infinite), or when [start] has no outgoing
    path at all. The event is considered to occur at the {e end} of a
    matching edge, so that edge's full delay is counted. *)

val concrete_latency :
  Tpan_core.Concrete.Graph.graph ->
  ?start:int ->
  event:((Tpan_mathkit.Q.t, Tpan_mathkit.Q.t) Sem.edge -> bool) ->
  unit ->
  Tpan_mathkit.Q.t option
(** Convenience instance over ℚ; [start] defaults to the initial state. *)

val symbolic_latency :
  Tpan_core.Symbolic.Graph.graph ->
  ?start:int ->
  event:((Tpan_symbolic.Linexpr.t, Tpan_symbolic.Ratfun.t) Sem.edge -> bool) ->
  unit ->
  Tpan_symbolic.Ratfun.t option

val completion_event :
  Tpan_core.Tpn.t -> string -> ('t, 'p) Sem.edge -> bool
(** Event: the named transition finishes firing on this edge. *)

val firing_event : Tpan_core.Tpn.t -> string -> ('t, 'p) Sem.edge -> bool
(** Event: the named transition begins firing on this edge. *)
