module Net = Tpan_petri.Net
module Q = Tpan_mathkit.Q
module Sem = Tpan_core.Semantics
module Tpn = Tpan_core.Tpn
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun

let times_int field x n =
  let rec go acc n = if n = 0 then acc else go (field.Rates.add acc x) (n - 1) in
  go field.Rates.zero n

let throughput_of_transition (res : _ Rates.result) ~by t =
  let field = res.Rates.field in
  let count (e : _ Decision_graph.dedge) =
    let l = match by with `Fired -> e.fired | `Completed -> e.completed in
    List.length (List.filter (fun x -> x = t) l)
  in
  let num =
    List.fold_left
      (fun acc (re : _ Rates.rated_edge) -> field.Rates.add acc (times_int field re.rate (count re.edge)))
      field.Rates.zero res.Rates.edge_rate
  in
  field.Rates.div num res.Rates.total_weight

let throughput_of_edges (res : _ Rates.result) pred =
  let field = res.Rates.field in
  let num =
    List.fold_left
      (fun acc (re : _ Rates.rated_edge) -> if pred re.edge then field.Rates.add acc re.rate else acc)
      field.Rates.zero res.Rates.edge_rate
  in
  field.Rates.div num res.Rates.total_weight

let edge_time_share (res : _ Rates.result) pred =
  let field = res.Rates.field in
  let num =
    List.fold_left
      (fun acc (re : _ Rates.rated_edge) -> if pred re.edge then field.Rates.add acc re.weight else acc)
      field.Rates.zero res.Rates.edge_rate
  in
  field.Rates.div num res.Rates.total_weight

let mean_time_between_visits (res : _ Rates.result) n =
  res.Rates.field.Rates.div res.Rates.total_weight (res.Rates.visit_rate n)

let mean_cycle_time (res : _ Rates.result) = res.Rates.total_weight

(* Delay of the (unique) step a -> b inside a collapsed path. Decision steps
   are instantaneous, so ambiguity among parallel decision edges is
   harmless. *)
let step_delay ~zero (g : _ Sem.graph) a b =
  match g.Sem.out.(a) with
  | [ e ] when e.Sem.dst = b -> e.Sem.delay
  | edges ->
    (match List.find_opt (fun (e : _ Sem.edge) -> e.Sem.dst = b) edges with
     | Some _ -> zero (* decision step: zero delay *)
     | None -> invalid_arg "Measures: path step not found in graph")

module Concrete = struct
  type result = (Q.t, Q.t, Q.t) Rates.result

  let analyze ?normalize_at (g : Tpan_core.Concrete.Graph.graph) : result =
    let dg = Decision_graph.of_graph ~add:Q.add ~mul:Q.mul g in
    Rates.solve ~field:Rates.q_field ~embed_prob:Fun.id ~embed_delay:Fun.id ?normalize_at dg

  let throughput (res : result) (g : Tpan_core.Concrete.Graph.graph) name =
    let t = Net.trans_of_name (Tpn.net g.Sem.tpn) name in
    throughput_of_transition res ~by:`Completed t

  let utilization (res : result) ~(graph : Tpan_core.Concrete.Graph.graph) pred =
    (* Time is spent only on advance steps; attribute each step's delay to
       the state it leaves. *)
    let num = ref Q.zero in
    List.iter
      (fun (re : _ Rates.rated_edge) ->
        let rec walk = function
          | a :: (b :: _ as rest) ->
            if pred graph.Sem.states.(a) then
              num := Q.add !num (Q.mul re.rate (step_delay ~zero:Q.zero graph a b));
            walk rest
          | [ _ ] | [] -> ()
        in
        walk re.edge.Decision_graph.path)
      res.Rates.edge_rate;
    Q.div !num res.Rates.total_weight
end

module Symbolic = struct
  type result = (Lin.t, Rf.t, Rf.t) Rates.result

  let embed_delay e = Rf.of_poly (Poly.of_linexpr e)

  let analyze ?normalize_at (g : Tpan_core.Symbolic.Graph.graph) : result =
    let dg = Decision_graph.of_graph ~add:Lin.add ~mul:Rf.mul g in
    Rates.solve ~field:Rates.ratfun_field ~embed_prob:Fun.id ~embed_delay ?normalize_at dg

  let throughput (res : result) (g : Tpan_core.Symbolic.Graph.graph) name =
    let t = Net.trans_of_name (Tpn.net g.Sem.tpn) name in
    Rf.reduce (throughput_of_transition res ~by:`Completed t)

  let env_of_bindings bindings v =
    match List.assoc_opt (Var.name v) bindings with
    | Some q -> q
    | None -> raise Not_found

  let eval_at rf bindings = Rf.eval (env_of_bindings bindings) rf

  let subst_frequencies rf bindings =
    Rf.subst
      (fun v ->
        match List.assoc_opt (Var.name v) bindings with
        | Some q -> Some (Poly.const q)
        | None -> None)
      rf

  type sensitivity = { var : Var.t; gradient : Q.t; elasticity : Q.t }

  let sensitivities rf ~at =
    let env = env_of_bindings at in
    let value = Rf.eval env rf in
    if Q.is_zero value then raise Division_by_zero;
    let vars =
      List.sort_uniq Var.compare (Poly.vars (Rf.num rf) @ Poly.vars (Rf.den rf))
    in
    let entries =
      List.map
        (fun v ->
          let gradient = Rf.eval env (Rf.derivative v rf) in
          let elasticity = Q.div (Q.mul (env v) gradient) value in
          { var = v; gradient; elasticity })
        vars
    in
    List.sort
      (fun a b -> Q.compare (Q.abs b.elasticity) (Q.abs a.elasticity))
      entries
end
