(** Performance measures derived from solved rate equations (paper §4):
    throughput, relative time per edge, utilization, cycle times.

    All relative rates are turned absolute by dividing by
    [total_weight = Σ r_e·d_e], the mean time per normalized cycle. *)

module Net = Tpan_petri.Net

val throughput_of_transition :
  ('t, 'p, 'f) Rates.result -> by:[ `Fired | `Completed ] -> Net.trans -> 'f
(** Long-run firings (or completions) of the transition per unit time:
    [Σ_{e ∋ t} r_e·count / Σ w]. The paper's protocol throughput is the
    completion rate of the successful-delivery transition. *)

val throughput_of_edges :
  ('t, 'p, 'f) Rates.result -> (('t, 'p) Decision_graph.dedge -> bool) -> 'f
(** Traversal rate of the selected decision-graph edges per unit time
    (the paper's [r₂ / Σᵢ wᵢ]). *)

val edge_time_share :
  ('t, 'p, 'f) Rates.result -> (('t, 'p) Decision_graph.dedge -> bool) -> 'f
(** Fraction of time spent on the selected edges ([Σ w_e / Σ w] — the
    paper's relative-time measure, normalized). *)

val mean_time_between_visits : ('t, 'p, 'f) Rates.result -> int -> 'f
(** Expected time between successive entries of a decision node:
    [Σ w / v(n)]. *)

val mean_cycle_time : ('t, 'p, 'f) Rates.result -> 'f
(** [Σ w]: mean time per visit of the normalization node. *)

(** Exact concrete analysis over ℚ. *)
module Concrete : sig
  type result = (Tpan_mathkit.Q.t, Tpan_mathkit.Q.t, Tpan_mathkit.Q.t) Rates.result

  val analyze : ?normalize_at:int -> Tpan_core.Concrete.Graph.graph -> result
  (** Decision graph + solved rates.
      @raise Rates.Unsolvable, @raise Decision_graph.Deterministic_cycle *)

  val throughput : result -> Tpan_core.Concrete.Graph.graph -> string -> Tpan_mathkit.Q.t
  (** Completions of the named transition per unit time. *)

  val utilization :
    result ->
    graph:Tpan_core.Concrete.Graph.graph ->
    (Tpan_mathkit.Q.t Tpan_core.Semantics.state -> bool) ->
    Tpan_mathkit.Q.t
  (** Long-run fraction of time spent in reachability-graph states
      satisfying the predicate (time is attributed to the state an
      advance-edge leaves from). *)
end

(** Symbolic analysis: measures as rational functions of the net's
    symbols. *)
module Symbolic : sig
  type result =
    (Tpan_symbolic.Linexpr.t, Tpan_symbolic.Ratfun.t, Tpan_symbolic.Ratfun.t) Rates.result

  val analyze : ?normalize_at:int -> Tpan_core.Symbolic.Graph.graph -> result

  val throughput : result -> Tpan_core.Symbolic.Graph.graph -> string -> Tpan_symbolic.Ratfun.t
  (** The paper's headline deliverable: a closed-form throughput expression
      in the net's time and frequency symbols. *)

  val eval_at :
    Tpan_symbolic.Ratfun.t -> (string * Tpan_mathkit.Q.t) list -> Tpan_mathkit.Q.t
  (** Evaluate a symbolic measure at a concrete point; keys are variable
      display names (["E(t3)"], ["f(t4)"], …).
      @raise Not_found for a missing variable
      @raise Division_by_zero if the denominator vanishes *)

  val subst_frequencies :
    Tpan_symbolic.Ratfun.t -> (string * Tpan_mathkit.Q.t) list -> Tpan_symbolic.Ratfun.t
  (** Partially substitute (typically the frequency symbols, to reproduce
      the paper's 5%-loss specialization) leaving other symbols free. *)

  type sensitivity = {
    var : Tpan_symbolic.Var.t;
    gradient : Tpan_mathkit.Q.t;  (** [∂m/∂v] at the point *)
    elasticity : Tpan_mathkit.Q.t;
        (** [(v/m)·∂m/∂v]: percent change of the measure per percent change
            of the parameter — unit-free, so parameters are comparable *)
  }

  val sensitivities :
    Tpan_symbolic.Ratfun.t -> at:(string * Tpan_mathkit.Q.t) list -> sensitivity list
  (** Exact symbolic differentiation of a measure with respect to every
      variable it mentions, evaluated at a point; sorted by decreasing
      |elasticity| — "which parameter matters most", the design question
      closed-form expressions exist to answer.
      @raise Not_found if the point misses a variable
      @raise Division_by_zero on a pole or a zero measure value *)
end
