(** One-shot analysis reports: everything the toolchain knows about a net,
    as a human-readable text document. Drives the [tpan report] command and
    doubles as an integration exercise of the whole API. *)

val concrete :
  ?max_states:int -> ?events:string list -> Format.formatter -> Tpan_core.Tpn.t -> unit
(** Structure (places, transitions, conflict sets), structural analysis
    (P/T-invariants, minimal siphons, Commoner check), timed reachability
    statistics, decision-graph analysis with per-transition completion
    rates, place utilizations, and first-passage latencies for the given
    [events] (default: none). Degrades gracefully for deterministic or
    absorbing systems.
    @raise Tpan_core.Tpn.Unsupported on symbolic nets *)

val symbolic :
  ?max_states:int -> ?events:string list -> Format.formatter -> Tpan_core.Tpn.t -> unit
(** Same skeleton for symbolic nets: constraint system, symbolic graph,
    constraint-usage audit, symbolic rates and throughput expressions,
    symbolic latencies. *)
