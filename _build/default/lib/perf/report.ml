module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Inv = Tpan_petri.Invariants
module Siphons = Tpan_petri.Siphons
module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

let header fmt title = Format.fprintf fmt "@.--- %s ---@." title

let structure fmt tpn =
  let net = Tpn.net tpn in
  header fmt "structure";
  Format.fprintf fmt "net %s: %d places, %d transitions (%a)@." (Net.name net)
    (Net.num_places net) (Net.num_transitions net) Tpan_petri.Classify.pp
    (Tpan_petri.Classify.classify net);
  Array.iteri
    (fun i ts ->
      if List.length ts > 1 then
        Format.fprintf fmt "conflict set %d: {%s}@." i
          (String.concat ", " (List.map (Net.trans_name net) ts)))
    (Tpn.conflict_sets tpn);
  header fmt "structural analysis";
  List.iter
    (fun y ->
      Format.fprintf fmt "P-invariant: %a = %d@." (Inv.pp_p_invariant net) y
        (Inv.invariant_value y (Net.initial_marking net)))
    (Inv.p_invariants net);
  List.iter
    (fun x -> Format.fprintf fmt "T-invariant: %a@." (Inv.pp_t_invariant net) x)
    (Inv.t_invariants net);
  let siphons = Siphons.minimal_siphons ~max_results:64 net in
  Format.fprintf fmt "minimal siphons: %d%s@." (List.length siphons)
    (if Siphons.commoner_satisfied net then " (each contains a marked trap)"
     else " (WARNING: some siphon has no marked trap)");
  match Siphons.unmarked_siphons net with
  | [] -> ()
  | l ->
    List.iter
      (fun s ->
        Format.fprintf fmt "initially-empty siphon: {%s}@."
          (String.concat ", " (List.map (Net.place_name net) s)))
      l

let concrete ?max_states ?(events = []) fmt tpn =
  structure fmt tpn;
  let g = CG.build ?max_states tpn in
  let net = Tpn.net tpn in
  header fmt "timed reachability";
  Format.fprintf fmt "%d states, %d edges, %d decision nodes, %d terminal@."
    (CG.Graph.num_states g) (CG.Graph.num_edges g)
    (List.length (Sem.branching_states g))
    (List.length (CG.Graph.terminal_states g));
  (match Measures.Concrete.analyze g with
   | res ->
     header fmt "steady state";
     Format.fprintf fmt "%a@."
       (Decision_graph.pp ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6))
       res.Rates.dg;
     Format.fprintf fmt "mean cycle time: %s@." (qf res.Rates.total_weight);
     List.iter
       (fun t ->
         let thr = Measures.throughput_of_transition res ~by:`Completed t in
         if not (Q.is_zero thr) then
           Format.fprintf fmt "completion rate %-12s %s (period %s)@." (Net.trans_name net t)
             (qf thr) (qf (Q.inv thr)))
       (Net.transitions net);
     List.iter
       (fun p ->
         let u =
           Measures.Concrete.utilization res ~graph:g (fun st ->
               Tpan_petri.Marking.tokens st.Sem.marking p > 0)
         in
         if not (Q.is_zero u) then
           Format.fprintf fmt "marked-time share %-10s %s@." (Net.place_name net p) (qf u))
       (Net.places net)
   | exception (Rates.Unsolvable _ | Decision_graph.Deterministic_cycle _)
     when Sem.branching_states g = [] ->
     (match Decision_graph.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
      | Some (period, states) ->
        Format.fprintf fmt "deterministic cycle: period %s over %d states@." (qf period)
          (List.length states)
      | None -> Format.fprintf fmt "the system terminates@.")
   | exception Rates.Unsolvable msg -> Format.fprintf fmt "steady state: %s@." msg
   | exception Decision_graph.Deterministic_cycle _ ->
     Format.fprintf fmt "steady state: deterministic beyond some decision node@.");
  if events <> [] then begin
    header fmt "first-passage latencies";
    List.iter
      (fun name ->
        match Passage.concrete_latency g ~event:(Passage.completion_event tpn name) () with
        | Some h -> Format.fprintf fmt "time to first %s completion: %s@." name (qf h)
        | None -> Format.fprintf fmt "time to first %s completion: infinite@." name)
      events
  end

let symbolic ?max_states ?(events = []) fmt tpn =
  structure fmt tpn;
  header fmt "timing constraints";
  Format.fprintf fmt "%a@." Tpan_symbolic.Constraints.pp (Tpn.constraints tpn);
  let g = SG.build ?max_states tpn in
  header fmt "symbolic timed reachability";
  Format.fprintf fmt "%d states, %d edges@." (SG.Graph.num_states g) (SG.Graph.num_edges g);
  (match SG.constraint_audit g with
   | [] -> ()
   | audit ->
     List.iter
       (fun (s, d, labels) ->
         Format.fprintf fmt "minimum at %d -> %d justified by %s@." (s + 1) (d + 1)
           (String.concat ", " labels))
       audit);
  (match Measures.Symbolic.analyze g with
   | res ->
     header fmt "symbolic steady state";
     Format.fprintf fmt "%a@." (Decision_graph.pp ~pp_delay:Lin.pp ~pp_prob:Rf.pp) res.Rates.dg;
     let net = Tpn.net tpn in
     List.iter
       (fun t ->
         let thr = Measures.throughput_of_transition res ~by:`Completed t in
         if not (Rf.is_zero thr) then
           Format.fprintf fmt "completion rate %s = %a@." (Net.trans_name net t) Rf.pp thr)
       (Net.transitions net)
   | exception Rates.Unsolvable msg -> Format.fprintf fmt "steady state: %s@." msg
   | exception Decision_graph.Deterministic_cycle _ ->
     Format.fprintf fmt "deterministic beyond some decision node@.");
  if events <> [] then begin
    header fmt "symbolic first-passage latencies";
    List.iter
      (fun name ->
        match Passage.symbolic_latency g ~event:(Passage.completion_event tpn name) () with
        | Some h -> Format.fprintf fmt "time to first %s completion = %a@." name Rf.pp h
        | None -> Format.fprintf fmt "time to first %s completion: infinite@." name)
      events
  end
