lib/perf/report.mli: Format Tpan_core
