lib/perf/measures.mli: Decision_graph Rates Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
