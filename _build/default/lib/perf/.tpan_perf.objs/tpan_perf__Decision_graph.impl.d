lib/perf/decision_graph.ml: Array Buffer Format List Printf String Tpan_core Tpan_petri
