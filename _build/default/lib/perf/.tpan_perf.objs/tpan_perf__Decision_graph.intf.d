lib/perf/decision_graph.mli: Format Tpan_core Tpan_petri
