lib/perf/measures.ml: Array Decision_graph Fun List Rates Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
