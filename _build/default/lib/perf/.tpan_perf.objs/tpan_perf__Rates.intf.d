lib/perf/rates.mli: Decision_graph Format Tpan_mathkit Tpan_symbolic
