lib/perf/passage.mli: Rates Tpan_core Tpan_mathkit Tpan_symbolic
