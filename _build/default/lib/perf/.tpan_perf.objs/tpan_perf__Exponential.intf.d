lib/perf/exponential.mli: Tpan_core Tpan_mathkit Tpan_petri
