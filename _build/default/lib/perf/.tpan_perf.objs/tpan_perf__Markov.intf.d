lib/perf/markov.mli: Decision_graph
