lib/perf/exponential.ml: Array List Printf Rates Tpan_core Tpan_mathkit Tpan_petri
