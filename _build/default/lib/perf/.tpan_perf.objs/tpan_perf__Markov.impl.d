lib/perf/markov.ml: Array Decision_graph Float Hashtbl List
