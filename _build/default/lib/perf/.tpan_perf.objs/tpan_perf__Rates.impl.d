lib/perf/rates.ml: Array Decision_graph Float Format Hashtbl List Printf String Tpan_mathkit Tpan_symbolic
