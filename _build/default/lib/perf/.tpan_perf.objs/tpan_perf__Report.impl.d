lib/perf/report.ml: Array Decision_graph Format List Measures Passage Rates String Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
