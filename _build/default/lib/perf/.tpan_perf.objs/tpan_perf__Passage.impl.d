lib/perf/passage.ml: Array Fun List Option Queue Rates Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
