(** Difference-bound matrices over exact rationals with +∞ — the firing
    domains of Merlin–Farber Time Petri Net state classes
    (Berthomieu–Menasche analysis, referenced by the paper's §1
    comparison).

    A DBM of dimension [n] constrains variables [θ₁ … θₙ] (index 0 is the
    constant zero): entry [(i,j)] bounds [θᵢ − θⱼ ≤ m(i,j)]. *)

module Q = Tpan_mathkit.Q

type bound = Fin of Q.t | Inf

val bound_compare : bound -> bound -> int
val bound_add : bound -> bound -> bound
val bound_min : bound -> bound -> bound
val pp_bound : Format.formatter -> bound -> unit

type t

val create : int -> t
(** Unconstrained DBM on [n] variables (all bounds +∞, zero diagonal). *)

val dim : t -> int
val get : t -> int -> int -> bound

val set : t -> int -> int -> bound -> unit
(** Tighten-or-replace an entry (no implicit min). *)

val constrain : t -> int -> int -> bound -> unit
(** [constrain m i j b] adds [θᵢ − θⱼ ≤ b] (takes the min with the current
    bound). *)

val copy : t -> t

val canonicalize : t -> bool
(** All-pairs shortest paths (Floyd–Warshall). Returns [false] iff the
    system is empty (a negative cycle exists); entries are left tightened
    either way. *)

val equal : t -> t -> bool
(** Entry-wise equality — meaningful on canonicalized DBMs. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
