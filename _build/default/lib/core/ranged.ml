module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking

type spec = { enabling : Q.t; firing_min : Q.t; firing_max : Q.t }

let spec ?(enabling = Q.zero) ?(firing = (Q.zero, Q.zero)) () =
  let fmin, fmax = firing in
  if Q.sign enabling < 0 || Q.sign fmin < 0 then invalid_arg "Ranged.spec: negative time";
  if Q.compare fmax fmin < 0 then invalid_arg "Ranged.spec: firing max < min";
  { enabling; firing_min = fmin; firing_max = fmax }

let exact tpn t =
  let f = Tpn.firing_q tpn t in
  { enabling = Tpn.enabling_q tpn t; firing_min = f; firing_max = f }

type t = { net : Net.t; specs : spec array }

let make net alist =
  let nt = Net.num_transitions net in
  let specs = Array.make nt (spec ()) in
  let seen = Array.make nt false in
  List.iter
    (fun (name, s) ->
      let t =
        try Net.trans_of_name net name
        with Not_found -> invalid_arg (Printf.sprintf "Ranged.make: unknown transition %S" name)
      in
      if seen.(t) then invalid_arg (Printf.sprintf "Ranged.make: duplicate spec for %S" name);
      seen.(t) <- true;
      specs.(t) <- s)
    alist;
  Array.iteri
    (fun t b ->
      if not b then
        invalid_arg (Printf.sprintf "Ranged.make: missing spec for %S" (Net.trans_name net t)))
    seen;
  { net; specs }

let of_tpn ?(widen = []) tpn =
  let net = Tpn.net tpn in
  let specs =
    List.map
      (fun t ->
        let name = Net.trans_name net t in
        let base = exact tpn t in
        let s =
          match List.assoc_opt name widen with
          | Some (lo, hi) ->
            if Q.compare hi lo < 0 || Q.sign lo < 0 then
              invalid_arg "Ranged.of_tpn: bad widening interval";
            { base with firing_min = lo; firing_max = hi }
          | None -> base
        in
        (name, s))
      (Net.transitions net)
  in
  make net specs

(* Figure-2 with ranged emit intervals: absorb [E,E] then emit
   [f_min, f_max]. *)
let to_time_pn g =
  let src = g.net in
  let b = Net.builder (Net.name src ^ "_ranged") in
  let init = Net.initial_marking src in
  List.iter (fun p -> ignore (Net.add_place b ~init:init.(p) (Net.place_name src p))) (Net.places src);
  let specs = ref [] in
  List.iter
    (fun t ->
      let name = Net.trans_name src t in
      let buf = Net.add_place b (name ^ "__busy") in
      ignore
        (Net.add_transition b ~name:(name ^ "__absorb") ~inputs:(Net.inputs src t)
           ~outputs:[ (buf, 1) ]);
      ignore
        (Net.add_transition b ~name:(name ^ "__emit") ~inputs:[ (buf, 1) ]
           ~outputs:(Net.outputs src t));
      let s = g.specs.(t) in
      specs :=
        (name ^ "__emit", Time_pn.interval ~max:s.firing_max s.firing_min)
        :: (name ^ "__absorb", Time_pn.interval ~max:s.enabling s.enabling)
        :: !specs)
    (Net.transitions src);
  Time_pn.make (Net.build b) !specs

let reachable_markings ?max_classes g =
  let timed = to_time_pn g in
  let graph = Time_pn.build ?max_classes timed in
  let np = Net.num_places g.net in
  Time_pn.reachable_markings graph
  |> List.map (fun m -> Array.sub m 0 np)
  |> List.sort_uniq compare

let safe ?max_classes g =
  match reachable_markings ?max_classes g with
  | markings -> List.for_all (fun m -> Array.for_all (fun k -> k <= 1) m) markings
  | exception Tpn.Unsupported _ -> false
