lib/core/symbolic.ml: Array Buffer Format List Printf Semantics String Tpan_mathkit Tpan_petri Tpan_symbolic Tpn
