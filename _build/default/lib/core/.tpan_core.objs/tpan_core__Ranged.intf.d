lib/core/ranged.mli: Time_pn Tpan_mathkit Tpan_petri Tpn
