lib/core/symbolic.mli: Semantics Tpan_symbolic Tpn
