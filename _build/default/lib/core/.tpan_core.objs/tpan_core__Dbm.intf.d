lib/core/dbm.mli: Format Tpan_mathkit
