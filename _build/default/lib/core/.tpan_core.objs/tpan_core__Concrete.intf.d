lib/core/concrete.mli: Semantics Tpan_mathkit Tpn
