lib/core/semantics.ml: Array Format Fun Hashtbl List Option Printf Queue Stdlib String Tpan_petri Tpn
