lib/core/concrete.ml: Array Buffer Format List Printf Semantics String Tpan_mathkit Tpan_petri Tpn
