lib/core/time_pn.mli: Dbm Format Tpan_mathkit Tpan_petri Tpn
