lib/core/semantics.mli: Format Tpan_petri Tpn
