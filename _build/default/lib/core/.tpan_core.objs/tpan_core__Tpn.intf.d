lib/core/tpn.mli: Format Tpan_mathkit Tpan_petri Tpan_symbolic
