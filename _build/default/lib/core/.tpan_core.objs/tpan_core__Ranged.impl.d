lib/core/ranged.ml: Array List Printf Time_pn Tpan_mathkit Tpan_petri Tpn
