lib/core/dbm.ml: Array Format Tpan_mathkit
