lib/core/tpn.ml: Array Format Fun Hashtbl List Printf String Tpan_mathkit Tpan_petri Tpan_symbolic
