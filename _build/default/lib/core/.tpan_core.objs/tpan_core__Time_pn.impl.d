lib/core/time_pn.ml: Array Dbm Format Hashtbl List Option Printf Queue String Tpan_mathkit Tpan_petri Tpn
