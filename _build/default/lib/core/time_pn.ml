module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking

type interval = { min : Q.t; max : Q.t option }

let interval ?max min =
  if Q.sign min < 0 then invalid_arg "Time_pn.interval: negative min";
  (match max with
   | Some m when Q.compare m min < 0 -> invalid_arg "Time_pn.interval: max < min"
   | Some _ | None -> ());
  { min; max }

type t = { net : Net.t; intervals : interval array }

let make net specs =
  let nt = Net.num_transitions net in
  let intervals = Array.make nt { min = Q.zero; max = Some Q.zero } in
  let seen = Array.make nt false in
  List.iter
    (fun (name, iv) ->
      let t =
        try Net.trans_of_name net name
        with Not_found -> invalid_arg (Printf.sprintf "Time_pn.make: unknown transition %S" name)
      in
      if seen.(t) then invalid_arg (Printf.sprintf "Time_pn.make: duplicate interval for %S" name);
      seen.(t) <- true;
      intervals.(t) <- iv)
    specs;
  Array.iteri
    (fun t b ->
      if not b then
        invalid_arg
          (Printf.sprintf "Time_pn.make: missing interval for %S" (Net.trans_name net t)))
    seen;
  { net; intervals }

let net g = g.net
let interval_of g t = g.intervals.(t)

type state_class = { marking : Marking.t; enabled : Net.trans list; domain : Dbm.t }

type graph = {
  tpn : t;
  classes : state_class array;
  edges : (Net.trans * int) list array;
}

(* Initial firing domain: min_i <= theta_i <= max_i over the enabled
   transitions (1-based DBM indices following [enabled]'s order). *)
let initial_class g =
  let marking = Marking.of_net g.net in
  let enabled = List.filter (Marking.enabled g.net marking) (Net.transitions g.net) in
  let d = Dbm.create (List.length enabled) in
  List.iteri
    (fun idx t ->
      let i = idx + 1 in
      let iv = g.intervals.(t) in
      Dbm.constrain d 0 i (Dbm.Fin (Q.neg iv.min));
      (match iv.max with Some m -> Dbm.constrain d i 0 (Dbm.Fin m) | None -> ()))
    enabled;
  ignore (Dbm.canonicalize d : bool);
  { marking; enabled; domain = d }

let index_of cls t =
  let rec go i = function
    | [] -> raise Not_found
    | x :: rest -> if x = t then i else go (i + 1) rest
  in
  go 1 cls.enabled

(* t can fire first iff the domain stays consistent once theta_t is forced
   to be minimal. *)
let can_fire_first cls t =
  let f = index_of cls t in
  let d = Dbm.copy cls.domain in
  List.iteri
    (fun idx _ ->
      let j = idx + 1 in
      if j <> f then Dbm.constrain d f j (Dbm.Fin Q.zero))
    cls.enabled;
  Dbm.canonicalize d

let firable g cls =
  ignore g;
  List.filter (can_fire_first cls) cls.enabled

let can_dwell _g cls =
  (* time can pass iff no enabled transition has a zero upper residual *)
  cls.enabled = []
  || List.for_all
       (fun idx ->
         match Dbm.get cls.domain (idx + 1) 0 with
         | Dbm.Fin q -> Tpan_mathkit.Q.sign q > 0
         | Dbm.Inf -> true)
       (List.mapi (fun i _ -> i) cls.enabled)

let successor g cls t =
  let f = index_of cls t in
  (* 1. restrict to runs where t fires first *)
  let d1 = Dbm.copy cls.domain in
  List.iteri
    (fun idx _ ->
      let j = idx + 1 in
      if j <> f then Dbm.constrain d1 f j (Dbm.Fin Q.zero))
    cls.enabled;
  if not (Dbm.canonicalize d1) then invalid_arg "Time_pn.successor: transition cannot fire first";
  (* 2. markings before/after token movement *)
  let m1 = Marking.consume g.net cls.marking t in
  let m2 = Marking.produce g.net m1 t in
  let persistent =
    List.filter (fun u -> u <> t && Marking.enabled g.net m1 u) cls.enabled
  in
  let newly =
    List.filter
      (fun u -> Marking.enabled g.net m2 u && not (List.mem u persistent))
      (Net.transitions g.net)
  in
  (* the paper's restriction carries over: no multiple simultaneous
     enabledness of one transition — checked over EVERY transition enabled
     in the new marking (a persistent transition whose input gains a second
     token is just as much outside the model as a newly enabled one) *)
  List.iter
    (fun u ->
      let inputs = Net.inputs g.net u in
      if inputs <> [] && List.for_all (fun (p, w) -> Marking.tokens m2 p >= 2 * w) inputs then
        raise
          (Tpn.Unsupported
             (Printf.sprintf "Time_pn: transition %s multiply enabled" (Net.trans_name g.net u))))
    (persistent @ newly);
  let enabled' = List.sort compare (persistent @ newly) in
  let d' = Dbm.create (List.length enabled') in
  let old_index u = index_of cls u in
  List.iteri
    (fun idx_i u ->
      let i' = idx_i + 1 in
      if List.mem u persistent then begin
        let i = old_index u in
        (* theta'_u = theta_u - theta_t *)
        Dbm.constrain d' i' 0 (Dbm.get d1 i f);
        Dbm.constrain d' 0 i' (Dbm.get d1 f i)
      end
      else begin
        let iv = g.intervals.(u) in
        Dbm.constrain d' 0 i' (Dbm.Fin (Q.neg iv.min));
        match iv.max with Some m -> Dbm.constrain d' i' 0 (Dbm.Fin m) | None -> ()
      end)
    enabled';
  (* pairwise bounds among persistent transitions carry over unchanged *)
  List.iteri
    (fun idx_i u ->
      List.iteri
        (fun idx_j v ->
          if idx_i <> idx_j && List.mem u persistent && List.mem v persistent then
            Dbm.constrain d' (idx_i + 1) (idx_j + 1) (Dbm.get d1 (old_index u) (old_index v)))
        enabled')
    enabled';
  if not (Dbm.canonicalize d') then assert false;
  { marking = m2; enabled = enabled'; domain = d' }

module CT = Hashtbl.Make (struct
  type t = state_class

  let equal a b =
    Marking.equal a.marking b.marking && a.enabled = b.enabled && Dbm.equal a.domain b.domain

  let hash c = (Marking.hash c.marking * 31) + Dbm.hash c.domain
end)

let build ?(max_classes = 100_000) g =
  let index = CT.create 256 in
  let classes = ref [] and count = ref 0 in
  let intern c =
    match CT.find_opt index c with
    | Some i -> (i, false)
    | None ->
      if !count >= max_classes then raise (Tpan_petri.Reachability.State_limit max_classes);
      let i = !count in
      incr count;
      CT.add index c i;
      classes := c :: !classes;
      (i, true)
  in
  let c0 = initial_class g in
  let i0, _ = intern c0 in
  let queue = Queue.create () in
  Queue.add (i0, c0) queue;
  let out = Hashtbl.create 256 in
  while not (Queue.is_empty queue) do
    let i, c = Queue.take queue in
    let succs =
      List.map
        (fun t ->
          let c' = successor g c t in
          let j, fresh = intern c' in
          if fresh then Queue.add (j, c') queue;
          (t, j))
        (firable g c)
    in
    Hashtbl.replace out i succs
  done;
  let classes = Array.of_list (List.rev !classes) in
  let edges = Array.init (Array.length classes) (fun i -> Option.value ~default:[] (Hashtbl.find_opt out i)) in
  { tpn = g; classes; edges }

let num_classes g = Array.length g.classes

let reachable_markings g =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun c -> if not (Hashtbl.mem seen c.marking) then Hashtbl.add seen c.marking ())
    g.classes;
  Hashtbl.fold (fun m () acc -> m :: acc) seen []

(* ----- Figure 2 translation ----- *)

let of_tpn tpn =
  if not (Tpn.is_concrete tpn) then
    raise (Tpn.Unsupported "Time_pn.of_tpn: net has symbolic times");
  let src = Tpn.net tpn in
  let b = Net.builder (Net.name src ^ "_timepn") in
  let init = Net.initial_marking src in
  (* original places first, preserving indices *)
  List.iter
    (fun p -> ignore (Net.add_place b ~init:init.(p) (Net.place_name src p)))
    (Net.places src);
  (* one buffer place per transition *)
  let busy =
    List.map
      (fun t -> (t, Net.add_place b (Net.trans_name src t ^ "__busy")))
      (Net.transitions src)
  in
  let specs = ref [] in
  List.iter
    (fun t ->
      let name = Net.trans_name src t in
      let buf = List.assoc t busy in
      ignore
        (Net.add_transition b ~name:(name ^ "__absorb") ~inputs:(Net.inputs src t)
           ~outputs:[ (buf, 1) ]);
      ignore
        (Net.add_transition b ~name:(name ^ "__emit") ~inputs:[ (buf, 1) ]
           ~outputs:(Net.outputs src t));
      let e = Tpn.enabling_q tpn t and f = Tpn.firing_q tpn t in
      specs :=
        (name ^ "__emit", { min = f; max = Some f })
        :: (name ^ "__absorb", { min = e; max = Some e })
        :: !specs)
    (Net.transitions src);
  let tnet = Net.build b in
  let timed = make tnet !specs in
  (timed, fun t -> Net.trans_name src t ^ "__emit")

let project_marking _g m ~original_places = Array.sub m 0 original_places

let pp_class g fmt c =
  Format.fprintf fmt "@[<v>%a" (Marking.pp g.net) c.marking;
  Format.fprintf fmt " enabled={%s}"
    (String.concat ", " (List.map (Net.trans_name g.net) c.enabled));
  Format.fprintf fmt "@,%a@]" Dbm.pp c.domain
