module Q = Tpan_mathkit.Q

type bound = Fin of Q.t | Inf

let bound_compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Fin _ -> 1
  | Fin _, Inf -> -1
  | Fin x, Fin y -> Q.compare x y

let bound_add a b =
  match (a, b) with Inf, _ | _, Inf -> Inf | Fin x, Fin y -> Fin (Q.add x y)

let bound_min a b = if bound_compare a b <= 0 then a else b

let pp_bound fmt = function
  | Inf -> Format.pp_print_string fmt "inf"
  | Fin q -> Q.pp_decimal ~digits:6 fmt q

type t = { n : int; m : bound array array }
(* [m] is (n+1)×(n+1); row/col 0 is the constant zero variable. *)

let create n =
  let size = n + 1 in
  let m = Array.init size (fun i -> Array.init size (fun j -> if i = j then Fin Q.zero else Inf)) in
  { n; m }

let dim d = d.n
let get d i j = d.m.(i).(j)
let set d i j b = d.m.(i).(j) <- b
let constrain d i j b = d.m.(i).(j) <- bound_min d.m.(i).(j) b

let copy d = { n = d.n; m = Array.map Array.copy d.m }

let canonicalize d =
  let size = d.n + 1 in
  for k = 0 to size - 1 do
    for i = 0 to size - 1 do
      for j = 0 to size - 1 do
        let via = bound_add d.m.(i).(k) d.m.(k).(j) in
        if bound_compare via d.m.(i).(j) < 0 then d.m.(i).(j) <- via
      done
    done
  done;
  (* consistent iff no negative diagonal entry *)
  let ok = ref true in
  for i = 0 to size - 1 do
    match d.m.(i).(i) with
    | Fin q when Q.sign q < 0 -> ok := false
    | Fin _ | Inf -> ()
  done;
  !ok

let equal a b =
  a.n = b.n
  && begin
    let ok = ref true in
    for i = 0 to a.n do
      for j = 0 to a.n do
        if bound_compare a.m.(i).(j) b.m.(i).(j) <> 0 then ok := false
      done
    done;
    !ok
  end

let hash d =
  let acc = ref d.n in
  for i = 0 to d.n do
    for j = 0 to d.n do
      acc := (!acc * 31) + (match d.m.(i).(j) with Inf -> 7 | Fin q -> Q.hash q)
    done
  done;
  !acc land max_int

let pp fmt d =
  Format.pp_open_vbox fmt 0;
  for i = 0 to d.n do
    for j = 0 to d.n do
      if i <> j then
        match d.m.(i).(j) with
        | Inf -> ()
        | Fin q -> Format.fprintf fmt "x%d - x%d <= %a@," i j (Q.pp_decimal ~digits:6) q
    done
  done;
  Format.pp_close_box fmt ()
