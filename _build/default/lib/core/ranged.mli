(** Timed Petri Nets with {e ranges} of firing times — the extension the
    paper's conclusion proposes: "our approach would be to extend firing
    times to include time ranges, but to retain enabling times to model
    timeouts".

    A ranged transition absorbs its tokens when it must begin firing (after
    its exact enabling time, like the base model) and completes anywhere in
    [[f_min, f_max]]. Analysis reuses the Merlin–Farber state-class engine
    through the Figure-2 translation: absorb transition [[E, E]], buffer
    place, emit transition [[f_min, f_max]].

    The paper's safety remark becomes checkable: with a timeout exceeding
    the {e worst-case} round trip, the ranged protocol reaches exactly the
    markings of the fixed-delay one; with a timeout inside the round-trip
    range, premature retransmission puts a second packet in flight and
    breaks the safeness assumption (detected as {!Tpn.Unsupported} or as a
    non-safe marking). *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking

type spec = {
  enabling : Q.t;  (** exact, as in the base model *)
  firing_min : Q.t;
  firing_max : Q.t;
}

val spec : ?enabling:Q.t -> ?firing:Q.t * Q.t -> unit -> spec
(** Defaults: [enabling = 0], [firing = (0, 0)].
    @raise Invalid_argument on negative times or [max < min]. *)

val exact : Tpn.t -> (Net.trans -> spec)
(** View a concrete base-model net as ranged with point intervals
    ([firing_min = firing_max = F(t)]). *)

type t

val make : Net.t -> (string * spec) list -> t
(** @raise Invalid_argument on missing/duplicate/unknown transitions. *)

val of_tpn : ?widen:(string * (Q.t * Q.t)) list -> Tpn.t -> t
(** Start from a concrete base-model net; [widen] replaces the firing time
    of the named transitions by a range.
    @raise Tpn.Unsupported if the net is symbolic. *)

val to_time_pn : t -> Time_pn.t
(** The Figure-2 translation with ranged emit intervals. *)

val reachable_markings : ?max_classes:int -> t -> Marking.t list
(** Markings of the original net reachable under {e some} choice of firing
    durations within the ranges (buffer places projected away; a transition
    in flight leaves its tokens absorbed, as in the base model).
    @raise Tpn.Unsupported if a transition becomes multiply enabled — the
    ranged behaviour escapes the paper's modelling assumptions *)

val safe : ?max_classes:int -> t -> bool
(** Every reachable marking is 1-bounded (and no multiple enabledness
    occurs). *)
