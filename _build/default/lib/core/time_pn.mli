(** Merlin–Farber {e Time} Petri Nets — the competing time extension the
    paper compares against in §1.

    Each transition carries a static interval [[min, max]]: once enabled it
    may fire (instantaneously, tokens staying on the input places meanwhile)
    any time after [min] and must fire no later than [max]. Analysis is by
    Berthomieu–Menasche state classes: a class is a marking plus a firing
    domain (a difference-bound system over the enabled transitions' firing
    times).

    {!of_tpn} implements the paper's Figure 2: a Timed Petri Net transition
    with enabling time [E] and firing time [F] becomes an absorb transition
    with interval [[E, E]] feeding a buffer place, followed by an emit
    transition with interval [[F, F]] — making the two models' reachable
    behaviours comparable (see the equivalence checks in the test suite). *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Marking = Tpan_petri.Marking

type interval = { min : Q.t; max : Q.t option  (** [None] = unbounded *) }

val interval : ?max:Q.t -> Q.t -> interval
(** @raise Invalid_argument if [max < min] or [min < 0]. *)

type t

val make : Net.t -> (string * interval) list -> t
(** Every transition must receive exactly one interval.
    @raise Invalid_argument on missing/duplicate/unknown names. *)

val net : t -> Net.t
val interval_of : t -> Net.trans -> interval

(** {1 State-class graph} *)

type state_class = {
  marking : Marking.t;
  enabled : Net.trans list;  (** in increasing index order *)
  domain : Dbm.t;  (** canonical firing domain over [enabled] (1-based) *)
}

type graph = {
  tpn : t;
  classes : state_class array;
  edges : (Net.trans * int) list array;  (** outgoing, labelled by fired transition *)
}

val build : ?max_classes:int -> t -> graph
(** Berthomieu–Menasche construction with class deduplication.
    @raise Tpan_petri.Reachability.State_limit on budget exhaustion
    @raise Tpn.Unsupported if a transition becomes multiply-enabled *)

val num_classes : graph -> int

val reachable_markings : graph -> Marking.t list
(** Distinct markings over all classes. *)

val firable : t -> state_class -> Net.trans list
(** Transitions that can fire first from a class. *)

val can_dwell : t -> state_class -> bool
(** Can time elapse in this class (no enabled transition is forced to fire
    immediately)? Zero-dwell classes are the interleaving micro-states the
    one-transition-at-a-time Merlin–Farber semantics inserts between
    simultaneous events; filtering them recovers the markings observable
    for positive duration, which coincide with the Timed-Petri-Net view. *)

(** {1 Figure 2: translation from Timed Petri Nets} *)

val of_tpn : Tpn.t -> t * (Net.trans -> string)
(** [of_tpn tpn] builds the equivalent Time Petri Net: per original
    transition [t], [t__absorb] with interval [[E(t), E(t)]], a buffer
    place [t__busy], and [t__emit] with interval [[F(t), F(t)]]. The
    returned function maps original transitions to the emit-transition
    name (for comparing event streams).
    @raise Tpn.Unsupported if the net is not concrete. *)

val project_marking : t -> Marking.t -> original_places:int -> Marking.t
(** Restrict a translated-net marking to the original places (buffer
    places are appended after the originals, so this is a prefix). *)

val pp_class : t -> Format.formatter -> state_class -> unit
