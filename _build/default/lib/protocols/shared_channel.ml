module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

type station = { think_time : Q.t; tx_time : Q.t; weight : Q.t }

type params = { a : station; b : station }

let default_params =
  {
    a = { think_time = Q.of_int 50; tx_time = Q.of_int 10; weight = Q.of_int 2 };
    b = { think_time = Q.of_int 120; tx_time = Q.of_int 35; weight = Q.of_int 1 };
  }

let t_grab_a = "grab_a"
let t_grab_b = "grab_b"

let net () =
  let b = Net.builder "shared_channel" in
  let channel = Net.add_place b ~init:1 "channel" in
  let add_station tag =
    let thinking = Net.add_place b ~init:1 ("thinking_" ^ tag) in
    let ready = Net.add_place b ("ready_" ^ tag) in
    let transmitting = Net.add_place b ("transmitting_" ^ tag) in
    let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
    t ("think_" ^ tag) [ (thinking, 1) ] [ (ready, 1) ];
    t ("grab_" ^ tag) [ (ready, 1); (channel, 1) ] [ (transmitting, 1) ];
    t ("release_" ^ tag) [ (transmitting, 1) ] [ (thinking, 1); (channel, 1) ]
  in
  add_station "a";
  add_station "b";
  Net.build b

let concrete p =
  let s = Tpn.spec in
  Tpn.make (net ())
    [
      ("think_a", s ~firing:(Tpn.Fixed p.a.think_time) ());
      ("grab_a", s ~frequency:(Tpn.Freq p.a.weight) ());
      ("release_a", s ~firing:(Tpn.Fixed p.a.tx_time) ());
      ("think_b", s ~firing:(Tpn.Fixed p.b.think_time) ());
      ("grab_b", s ~frequency:(Tpn.Freq p.b.weight) ());
      ("release_b", s ~firing:(Tpn.Fixed p.b.tx_time) ());
    ]

let sym_tx_a = Var.firing "txa"
let sym_tx_b = Var.firing "txb"

(* Under the exact deterministic semantics, a station that is already
   waiting always claims the released channel in the same instant, before
   the other station's (even infinitesimally later) next request: with any
   fixed think/transmit times the stations phase-lock after the first
   arbitration and the contention never recurs. The recurring-decision core
   of the model is therefore the weighted scheduler itself: every channel
   slot is awarded to A or B by the arbitration frequencies. The symbolic
   variant analyses that core; the concrete variant keeps full station
   dynamics. *)
let scheduler_net () =
  let b = Net.builder "weighted_scheduler" in
  let slot = Net.add_place b ~init:1 "slot" in
  let t name = ignore (Net.add_transition b ~name ~inputs:[ (slot, 1) ] ~outputs:[ (slot, 1) ]) in
  t t_grab_a;
  t t_grab_b;
  Net.build b

let symbolic_constraints =
  C.of_list [ ("(pos)", `Gt, Lin.var sym_tx_a, Lin.zero); ("(pos-b)", `Gt, Lin.var sym_tx_b, Lin.zero) ]

let symbolic () =
  let s = Tpn.spec in
  Tpn.make ~constraints:symbolic_constraints (scheduler_net ())
    [
      (t_grab_a, s ~firing:(Tpn.Sym sym_tx_a) ~frequency:(Tpn.Freq_sym (Var.frequency "a")) ());
      (t_grab_b, s ~firing:(Tpn.Sym sym_tx_b) ~frequency:(Tpn.Freq_sym (Var.frequency "b")) ());
    ]
