module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn

type params = { hop_delays : Q.t list; inject_delay : Q.t }

let default_params =
  {
    hop_delays = List.map Q.of_int [ 10; 25; 10; 15 ];
    inject_delay = Q.of_int 5;
  }

let t_deliver = "deliver"

(* Hop i: moves a packet from buffer i to buffer i+1 when the downstream
   slot is free. The last hop delivers (consumes). Slots are modelled with
   complementary free_i places so each buffer holds at most one packet. *)
let net ~hops =
  if hops < 1 then invalid_arg "Pipeline.net: need at least one hop";
  let b = Net.builder (Printf.sprintf "pipeline_%d" hops) in
  let src = Net.add_place b ~init:1 "src_ready" in
  let buf = Array.init hops (fun i -> Net.add_place b (Printf.sprintf "buf%d" i)) in
  let free = Array.init hops (fun i -> Net.add_place b ~init:1 (Printf.sprintf "free%d" i)) in
  ignore
    (Net.add_transition b ~name:"inject" ~inputs:[ (src, 1); (free.(0), 1) ]
       ~outputs:[ (src, 1); (buf.(0), 1) ]);
  for i = 0 to hops - 2 do
    ignore
      (Net.add_transition b ~name:(Printf.sprintf "hop%d" i)
         ~inputs:[ (buf.(i), 1); (free.(i + 1), 1) ]
         ~outputs:[ (buf.(i + 1), 1); (free.(i), 1) ])
  done;
  ignore
    (Net.add_transition b ~name:t_deliver
       ~inputs:[ (buf.(hops - 1), 1) ]
       ~outputs:[ (free.(hops - 1), 1) ]);
  Net.build b

let concrete p =
  let hops = List.length p.hop_delays in
  let specs =
    ("inject", Tpn.spec ~firing:(Tpn.Fixed p.inject_delay) ())
    :: List.mapi
         (fun i d ->
           if i = hops - 1 then (t_deliver, Tpn.spec ~firing:(Tpn.Fixed d) ())
           else (Printf.sprintf "hop%d" i, Tpn.spec ~firing:(Tpn.Fixed d) ()))
         p.hop_delays
  in
  Tpn.make (net ~hops) specs

(* Marked-graph cycle-time bound: every complementary-place circuit holds
   one token and carries the delays of the two transitions sharing it, so
   the line paces at the worst ADJACENT-hop sum (a store-and-forward slot
   cannot be refilled while its downstream move is still in progress). *)
let bottleneck p =
  let seq = p.inject_delay :: p.hop_delays in
  let rec adj = function
    | a :: (b :: _ as rest) -> Q.add a b :: adj rest
    | [ _ ] | [] -> []
  in
  match adj seq with [] -> p.inject_delay | x :: rest -> List.fold_left Q.max x rest
