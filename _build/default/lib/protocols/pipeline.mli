(** A store-and-forward transmission line: K hops, each holding at most one
    packet, packets injected as fast as the line accepts them.

    Purely deterministic, but genuinely {e concurrent}: several hops
    forward packets simultaneously, so the timed reachability graph carries
    multiple active firing times at once — the strongest exercise of the
    Figure-3 minimum computation. In steady state the line paces at the
    worst {e adjacent-hop} sum (a slot cannot be refilled while its
    downstream move is in progress — the marked-graph cycle-time bound):
    throughput = 1 / {!bottleneck}, asserted against both the
    deterministic-cycle analysis and the simulator. *)

module Q = Tpan_mathkit.Q

type params = {
  hop_delays : Q.t list;  (** forwarding delay per hop, head = first hop *)
  inject_delay : Q.t;  (** source packet preparation time *)
}

val default_params : params
(** 4 hops: 10, 25, 10, 15 ms; inject 5 ms — hop 2 is the bottleneck. *)

val net : hops:int -> Tpan_petri.Net.t

val concrete : params -> Tpan_core.Tpn.t

val bottleneck : params -> Q.t
(** Maximum over consecutive pairs of [inject :: hop_delays] of their sum —
    the pacing delay of the line. *)

val t_deliver : string
(** The final hop's transition (completions = packets delivered). *)
