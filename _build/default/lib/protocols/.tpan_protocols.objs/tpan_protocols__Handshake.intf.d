lib/protocols/handshake.mli: Tpan_core Tpan_mathkit Tpan_petri
