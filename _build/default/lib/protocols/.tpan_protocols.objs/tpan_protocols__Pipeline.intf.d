lib/protocols/pipeline.mli: Tpan_core Tpan_mathkit Tpan_petri
