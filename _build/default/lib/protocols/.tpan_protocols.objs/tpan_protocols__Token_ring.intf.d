lib/protocols/token_ring.mli: Tpan_core Tpan_mathkit Tpan_petri
