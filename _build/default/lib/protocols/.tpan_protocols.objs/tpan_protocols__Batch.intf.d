lib/protocols/batch.mli: Tpan_core Tpan_mathkit Tpan_petri
