lib/protocols/abp.ml: Array List Printf Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
