lib/protocols/shared_channel.ml: Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
