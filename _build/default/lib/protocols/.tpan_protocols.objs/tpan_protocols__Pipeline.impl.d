lib/protocols/pipeline.ml: Array List Printf Tpan_core Tpan_mathkit Tpan_petri
