lib/protocols/stopwait.mli: Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
