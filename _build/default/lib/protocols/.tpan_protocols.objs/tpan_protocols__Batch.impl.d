lib/protocols/batch.ml: Array Format List Printf Tpan_core Tpan_mathkit Tpan_petri
