lib/protocols/abp.mli: Tpan_core Tpan_mathkit Tpan_petri
