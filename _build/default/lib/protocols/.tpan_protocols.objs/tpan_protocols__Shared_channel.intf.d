lib/protocols/shared_channel.mli: Tpan_core Tpan_mathkit Tpan_petri
