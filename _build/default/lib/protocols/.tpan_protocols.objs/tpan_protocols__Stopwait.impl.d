lib/protocols/stopwait.ml: List Printf Tpan_core Tpan_mathkit Tpan_petri Tpan_symbolic
