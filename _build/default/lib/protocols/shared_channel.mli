(** Two stations contending for one half-duplex channel.

    Each station cycles think → request → transmit → think. The channel is a
    single token: when both stations request simultaneously, the conflict-set
    frequencies arbitrate (a weighted medium-access policy). Useful for
    studying utilization and fairness expressions: the symbolic analysis
    yields channel utilization as a rational function of the two access
    weights and the think/transmit times. *)

module Q = Tpan_mathkit.Q

type station = {
  think_time : Q.t;  (** time between transmissions *)
  tx_time : Q.t;  (** channel holding time *)
  weight : Q.t;  (** arbitration frequency *)
}

type params = { a : station; b : station }

val default_params : params
(** An asymmetric pair: station A short/frequent frames, station B long/rare
    frames, 2:1 arbitration in favour of A. *)

val net : unit -> Tpan_petri.Net.t
val concrete : params -> Tpan_core.Tpn.t

val symbolic : unit -> Tpan_core.Tpn.t
(** The weighted-scheduler core of the model: each channel slot is awarded
    to A or B by the arbitration frequencies and held for the corresponding
    transmission time. Symbols [F(txa)], [F(txb)]; weights [f(a)], [f(b)].
    The per-station time share comes out as the closed form
    [f(a)·F(txa) / (f(a)·F(txa) + f(b)·F(txb))].

    (Under the exact deterministic semantics the full two-station net
    phase-locks after its first arbitration — a waiting station claims the
    released channel in the same instant — so no recurring decision exists
    there to parameterize.) *)

val t_grab_a : string
val t_grab_b : string
