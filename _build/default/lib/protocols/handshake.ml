module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

type params = {
  retry_timeout : Q.t;
  send_time : Q.t;
  transit_time : Q.t;
  accept_time : Q.t;
  session_time : Q.t;
  request_loss : Q.t;
  reply_loss : Q.t;
}

let default_params =
  {
    retry_timeout = Q.of_int 500;
    send_time = Q.of_int 2;
    transit_time = Q.of_int 80;
    accept_time = Q.of_int 10;
    session_time = Q.of_int 1500;
    request_loss = Q.of_decimal_string "0.02";
    reply_loss = Q.of_decimal_string "0.02";
  }

let t_establish = "establish"

let net () =
  let b = Net.builder "handshake" in
  let idle = Net.add_place b ~init:1 "idle" in
  let req_med = Net.add_place b "req_med" in
  let req_acc = Net.add_place b "req_acc" in
  let waiting = Net.add_place b "waiting" in
  let rep_med = Net.add_place b "rep_med" in
  let rep_ini = Net.add_place b "rep_ini" in
  let session = Net.add_place b "session" in
  let acceptor = Net.add_place b ~init:1 "acceptor" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t "connect" [ (idle, 1) ] [ (req_med, 1); (waiting, 1) ];
  t "retry" [ (waiting, 1) ] [ (idle, 1) ];
  t "lose_req" [ (req_med, 1) ] [];
  t "deliver_req" [ (req_med, 1) ] [ (req_acc, 1) ];
  t "accept" [ (req_acc, 1); (acceptor, 1) ] [ (rep_med, 1); (acceptor, 1) ];
  t "lose_rep" [ (rep_med, 1) ] [];
  t "deliver_rep" [ (rep_med, 1) ] [ (rep_ini, 1) ];
  t t_establish [ (rep_ini, 1); (waiting, 1) ] [ (session, 1) ];
  t "close" [ (session, 1) ] [ (idle, 1) ];
  Net.build b

let concrete p =
  let s = Tpn.spec in
  Tpn.make (net ())
    [
      ("connect", s ~firing:(Tpn.Fixed p.send_time) ());
      ("retry",
       s ~enabling:(Tpn.Fixed p.retry_timeout) ~firing:(Tpn.Fixed p.send_time)
         ~frequency:(Tpn.Freq Q.zero) ());
      ("lose_req", s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.request_loss) ());
      ("deliver_req",
       s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.request_loss)) ());
      ("accept", s ~firing:(Tpn.Fixed p.accept_time) ());
      ("lose_rep", s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.reply_loss) ());
      ("deliver_rep",
       s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.reply_loss)) ());
      (t_establish, s ~firing:(Tpn.Fixed p.send_time) ());
      ("close", s ~firing:(Tpn.Fixed p.session_time) ());
    ]

let sym_rt = Var.enabling "rt"
let sym_snd = Var.firing "snd"
let sym_med = Var.firing "med"
let sym_acc = Var.firing "acc"
let sym_ses = Var.firing "ses"

let symbolic_constraints =
  let e = Lin.var sym_rt in
  let round = Lin.add (Lin.var sym_med) (Lin.add (Lin.var sym_acc) (Lin.var sym_med)) in
  C.of_list [ ("(rtt)", `Gt, e, round) ]

let symbolic () =
  let s = Tpn.spec in
  Tpn.make ~constraints:symbolic_constraints (net ())
    [
      ("connect", s ~firing:(Tpn.Sym sym_snd) ());
      ("retry",
       s ~enabling:(Tpn.Sym sym_rt) ~firing:(Tpn.Sym sym_snd) ~frequency:(Tpn.Freq Q.zero) ());
      ("lose_req", s ~firing:(Tpn.Sym sym_med) ~frequency:(Tpn.Freq_sym (Var.frequency "lq")) ());
      ("deliver_req", s ~firing:(Tpn.Sym sym_med) ~frequency:(Tpn.Freq_sym (Var.frequency "dq")) ());
      ("accept", s ~firing:(Tpn.Sym sym_acc) ());
      ("lose_rep", s ~firing:(Tpn.Sym sym_med) ~frequency:(Tpn.Freq_sym (Var.frequency "lr")) ());
      ("deliver_rep", s ~firing:(Tpn.Sym sym_med) ~frequency:(Tpn.Freq_sym (Var.frequency "dr")) ());
      (t_establish, s ~firing:(Tpn.Sym sym_snd) ());
      ("close", s ~firing:(Tpn.Sym sym_ses) ());
    ]
