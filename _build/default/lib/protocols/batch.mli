(** Blast (batch) transfer with selective reassembly: the sender transmits
    a batch of [w] packets back-to-back, the receiver reassembles them
    (keeping the ones that arrive, dropping duplicates) and returns one
    cumulative acknowledgement; a timeout resends the whole batch.

    Structurally richer than stop-and-wait: a [w]-way join synchronization
    at the receiver, per-slot media, duplicate-absorbing transitions guarded
    by complementary places. The interesting economics: batching amortizes
    the round trip over [w] messages, but every loss costs a full batch
    timeout — so the advantage over small batches shrinks as the loss rate
    grows (the crossover experiment in the bench harness). *)

module Q = Tpan_mathkit.Q

type params = {
  window : int;  (** batch size w ≥ 1 *)
  timeout : Q.t;  (** must exceed the worst-case batch round trip *)
  send_time : Q.t;  (** per-packet emission *)
  transit_time : Q.t;
  process_time : Q.t;  (** per-packet receiver processing, and ack handling *)
  packet_loss : Q.t;
  ack_loss : Q.t;
}

val default_params : params
(** Window 3 at the paper's stop-and-wait timings. *)

val net : window:int -> Tpan_petri.Net.t
val concrete : params -> Tpan_core.Tpn.t

val min_timeout : params -> Q.t
(** Worst-case batch round trip: [w·send + transit + w·process + transit
    + process]; the timeout must exceed this for the analysis assumptions
    to hold (checked by {!concrete}). *)

val t_done : string
(** Completion of a successfully acknowledged batch ([w] messages). *)
