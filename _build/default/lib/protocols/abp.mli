(** Alternating-bit protocol — the "more robust" extension the paper
    sketches ("can be easily extended ... by using alternating bits for
    message and acknowledgement sequencing").

    The stop-and-wait skeleton is duplicated per bit value; the receiver
    tracks the expected bit and re-acknowledges duplicates without
    delivering them. Lost packets and lost acknowledgements are modelled per
    direction, like Figure 1.

    Both bit phases share timing {e symbols} (sending a 0-packet takes as
    long as sending a 1-packet), so the symbolic analysis has the same
    variables as the concrete parameter record. *)

module Q = Tpan_mathkit.Q

type params = {
  timeout : Q.t;
  send_time : Q.t;
  transit_time : Q.t;
  process_time : Q.t;
  packet_loss : Q.t;
  ack_loss : Q.t;
}

val default_params : params
(** Same values as the paper's Figure 1b. *)

val net : unit -> Tpan_petri.Net.t
(** 14 places, 18 transitions (9 per bit value). *)

val concrete : params -> Tpan_core.Tpn.t

val symbolic : unit -> Tpan_core.Tpn.t
(** Times as shared symbols [E(to)], [F(send)], [F(pkt)], [F(proc)],
    [F(ack)]; losses as frequencies [f(lp)], [f(dp)], [f(la)], [f(da)];
    constraint: timeout exceeds the full round trip. *)

val deliveries : string list
(** Names of the transitions whose completion delivers a {e new} message to
    the receiver (one per bit value) — the throughput events. *)
