(** Two-way connection establishment with a retry timer (a SYN / SYN-ACK
    exchange): the initiator sends a connect request and waits for the
    acceptor's reply; either message can be lost, and a timeout retries.
    After data transfer the connection closes and the cycle restarts —
    giving a steady-state "connections per second" measure. *)

module Q = Tpan_mathkit.Q

type params = {
  retry_timeout : Q.t;  (** E of the retry timer *)
  send_time : Q.t;  (** request/reply emission *)
  transit_time : Q.t;  (** one-way medium latency *)
  accept_time : Q.t;  (** acceptor processing *)
  session_time : Q.t;  (** established-connection holding time *)
  request_loss : Q.t;
  reply_loss : Q.t;
}

val default_params : params

val net : unit -> Tpan_petri.Net.t
val concrete : params -> Tpan_core.Tpn.t

val symbolic : unit -> Tpan_core.Tpn.t
(** Symbols [E(rt)], [F(snd)], [F(med)], [F(acc)], [F(ses)]; frequencies
    [f(lq)], [f(dq)], [f(lr)], [f(dr)]; constraint: the retry timeout
    exceeds request + accept + reply. *)

val t_establish : string
(** Transition whose completion marks a successfully established
    connection. *)
