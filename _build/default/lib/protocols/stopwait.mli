(** The paper's running example (Figure 1): a stop-and-wait protocol with
    unnumbered messages and acknowledgements over a lossy medium.

    The sender transmits a packet and waits; a timeout recovers from lost
    packets or acknowledgements. The receiver acknowledges every packet
    immediately. Duplicates are assumed detectable by the receiver, so no
    sequence numbers are modelled (the paper's deliberately simple variant).

    Transitions (paper numbering):
    - [t1] prepare next message, [t2] send packet, [t3] timeout
      (enabling time = timeout period),
    - [t4] lose packet / [t5] deliver packet (conflict set, 5%/95%),
    - [t6] receive packet and emit ack, [t7] sender processes ack
      (conflict set with [t3]: the ack has priority over the timeout),
    - [t8] deliver ack / [t9] lose ack (conflict set, 95%/5%). *)

module Q = Tpan_mathkit.Q

type params = {
  timeout : Q.t;  (** E(t3), ms; paper: 1000 *)
  send_time : Q.t;  (** F(t1)=F(t2)=F(t3), ms; paper: 1 *)
  transit_time : Q.t;  (** F(t4)=F(t5)=F(t8)=F(t9), ms; paper: 106.7 *)
  process_time : Q.t;  (** F(t6)=F(t7), ms; paper: 13.5 *)
  packet_loss : Q.t;  (** relative frequency of t4; paper: 0.05 *)
  ack_loss : Q.t;  (** relative frequency of t9; paper: 0.05 *)
}

val paper_params : params
(** Figure 1b values: timeout 1000 ms, transmission 1 ms, medium transit
    106.7 ms, processing 13.5 ms, 5% packet and ack loss. *)

val net : unit -> Tpan_petri.Net.t
(** The untimed structure (8 places, 9 transitions). *)

val concrete : params -> Tpan_core.Tpn.t
(** Fully concrete timed net. *)

val parallel : channels:int -> params -> Tpan_core.Tpn.t
(** [channels] independent copies of the protocol running concurrently
    (transitions suffixed [_c0], [_c1], …) — a per-flow window of
    outstanding messages. The aggregate throughput is exactly [channels]
    times the single-channel value, which the tests assert against the
    interleaved-graph analysis.

    Caveat: the interleaved graph's size is governed by the lattice of
    relative phase offsets between channels, i.e. by the {e granularity} of
    the delays — the paper's 0.1 ms-grain values make the joint space
    astronomically large, while small integer delays keep it in the
    hundreds. Use coarse-grained parameters for exact analysis and the
    simulator for fine-grained ones. *)

val symbolic : unit -> Tpan_core.Tpn.t
(** All times symbolic ([E(t3)], [F(t1)] … [F(t9)]) except the
    structurally-zero enabling times (the paper's constraint (2)), loss
    frequencies symbolic ([f(t4)], [f(t5)], [f(t8)], [f(t9)]); carries the
    paper's timing constraints (1), (3), (4). *)

val symbolic_constraints : Tpan_symbolic.Constraints.t
(** (1) [E(t3) > F(t5)+F(t6)+F(t8)]; (3) [F(t4) = F(t5)];
    (4) [F(t9) = F(t8)]. *)

(** Transition names, for use with measures: *)

val t_prepare : string  (** t1 *)

val t_send : string  (** t2 *)

val t_timeout : string  (** t3 *)

val t_lose_pkt : string  (** t4 *)

val t_deliver_pkt : string  (** t5 *)

val t_receive : string  (** t6 *)

val t_process_ack : string  (** t7 *)

val t_deliver_ack : string  (** t8 *)

val t_lose_ack : string  (** t9 *)
