module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Tpn = Tpan_core.Tpn

type params = {
  window : int;
  timeout : Q.t;
  send_time : Q.t;
  transit_time : Q.t;
  process_time : Q.t;
  packet_loss : Q.t;
  ack_loss : Q.t;
}

let default_params =
  {
    window = 3;
    timeout = Q.of_int 1000;
    send_time = Q.one;
    transit_time = Q.of_decimal_string "106.7";
    process_time = Q.of_decimal_string "13.5";
    packet_loss = Q.of_decimal_string "0.05";
    ack_loss = Q.of_decimal_string "0.05";
  }

let t_done = "batch_done"

let min_timeout p =
  let w = Q.of_int p.window in
  (* last packet leaves after w sends; then transit, per-packet processing
     of the final claim, ack emission is folded into the join (process),
     ack transit *)
  List.fold_left Q.add Q.zero
    [ Q.mul w p.send_time; p.transit_time; Q.mul w p.process_time; p.process_time; p.transit_time ]

(* Sender: a chain st_0 -> send_1 -> st_1 -> ... -> st_w; at st_w either the
   cumulative ack arrives (batch_done, priority) or the timer expires and
   the whole batch is resent. Receiver: per-slot claim (first copy) or drop
   (duplicate), guarded by got_i / gotfree_i complements; a w-way join emits
   the cumulative ack and resets the slots. *)
let net ~window =
  if window < 1 then invalid_arg "Batch.net: window must be >= 1";
  let b = Net.builder (Printf.sprintf "batch_%d" window) in
  let st = Array.init (window + 1) (fun i -> Net.add_place b ~init:(if i = 0 then 1 else 0) (Printf.sprintf "st%d" i)) in
  let med = Array.init window (fun i -> Net.add_place b (Printf.sprintf "med%d" (i + 1))) in
  let rcv = Array.init window (fun i -> Net.add_place b (Printf.sprintf "rcv%d" (i + 1))) in
  let got = Array.init window (fun i -> Net.add_place b (Printf.sprintf "got%d" (i + 1))) in
  let gotfree = Array.init window (fun i -> Net.add_place b ~init:1 (Printf.sprintf "gotfree%d" (i + 1))) in
  let ack_med = Net.add_place b "ack_med" in
  let ack_snd = Net.add_place b "ack_snd" in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  for i = 1 to window do
    t (Printf.sprintf "send%d" i) [ (st.(i - 1), 1) ] [ (st.(i), 1); (med.(i - 1), 1) ];
    t (Printf.sprintf "lose%d" i) [ (med.(i - 1), 1) ] [];
    t (Printf.sprintf "deliver%d" i) [ (med.(i - 1), 1) ] [ (rcv.(i - 1), 1) ];
    (* first copy: claim the slot *)
    t (Printf.sprintf "claim%d" i) [ (rcv.(i - 1), 1); (gotfree.(i - 1), 1) ] [ (got.(i - 1), 1) ];
    (* duplicate (retransmission of an already-claimed slot): absorb *)
    t (Printf.sprintf "drop%d" i) [ (rcv.(i - 1), 1); (got.(i - 1), 1) ] [ (got.(i - 1), 1) ]
  done;
  (* cumulative ack: all slots claimed *)
  t "join"
    (Array.to_list (Array.map (fun p -> (p, 1)) got))
    ((ack_med, 1) :: Array.to_list (Array.map (fun p -> (p, 1)) gotfree));
  t "lose_ack" [ (ack_med, 1) ] [];
  t "deliver_ack" [ (ack_med, 1) ] [ (ack_snd, 1) ];
  t t_done [ (ack_snd, 1); (st.(window), 1) ] [ (st.(0), 1) ];
  t "resend" [ (st.(window), 1) ] [ (st.(0), 1) ];
  Net.build b

let concrete p =
  if Q.compare p.timeout (min_timeout p) <= 0 then
    raise
      (Tpn.Unsupported
         (Format.asprintf "Batch.concrete: timeout %a must exceed the worst-case round trip %a"
            Q.pp p.timeout Q.pp (min_timeout p)));
  let s = Tpn.spec in
  let specs = ref [] in
  for i = 1 to p.window do
    specs :=
      [
        (Printf.sprintf "send%d" i, s ~firing:(Tpn.Fixed p.send_time) ());
        (Printf.sprintf "lose%d" i,
         s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.packet_loss) ());
        (Printf.sprintf "deliver%d" i,
         s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.packet_loss)) ());
        (Printf.sprintf "claim%d" i, s ~firing:(Tpn.Fixed p.process_time) ());
        (Printf.sprintf "drop%d" i, s ~firing:(Tpn.Fixed p.process_time) ());
      ]
      @ !specs
  done;
  specs :=
    [
      ("join", s ~firing:(Tpn.Fixed p.process_time) ());
      ("lose_ack", s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.ack_loss) ());
      ("deliver_ack",
       s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.ack_loss)) ());
      (t_done, s ~firing:(Tpn.Fixed p.send_time) ());
      ("resend",
       s ~enabling:(Tpn.Fixed p.timeout) ~firing:(Tpn.Fixed p.send_time)
         ~frequency:(Tpn.Freq Q.zero) ());
    ]
    @ !specs;
  Tpn.make (net ~window:p.window) !specs
