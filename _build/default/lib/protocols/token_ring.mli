(** A token-ring MAC: N stations pass a circulating token; a station
    holding the token either transmits a frame (with relative frequency
    [frame_weight], holding the medium for [tx_time]) or passes immediately
    (weight [idle_weight], taking [pass_time]).

    The model is parametric in the station count, so it doubles as the
    scaling workload for the reachability benchmarks; its mean cycle time
    has the closed form
    [N·(pass + p·tx)] with [p = frame_weight/(frame_weight+idle_weight)]
    when all stations are identical — asserted in the tests. *)

module Q = Tpan_mathkit.Q

type params = {
  stations : int;  (** ≥ 1 *)
  frame_weight : Q.t;  (** relative frequency of having a frame to send *)
  idle_weight : Q.t;
  tx_time : Q.t;  (** extra medium holding time when transmitting *)
  pass_time : Q.t;  (** token hand-off time *)
}

val default_params : params
(** 4 stations, p = 1/3 frame probability, tx 40, pass 5. *)

val net : stations:int -> Tpan_petri.Net.t
(** Places [tok0 … tok(N-1)]; transitions [use_i] / [skip_i] per station
    (a conflict-set pair on the token place). *)

val concrete : params -> Tpan_core.Tpn.t

val symbolic : stations:int -> Tpan_core.Tpn.t
(** Shared symbols [F(tx)], [F(pass)] (with positivity constraints) and
    frequencies [f(frame)], [f(idle)]. *)

val use : int -> string
(** Transition name [use_i]. *)

val skip : int -> string
