module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

type params = {
  timeout : Q.t;
  send_time : Q.t;
  transit_time : Q.t;
  process_time : Q.t;
  packet_loss : Q.t;
  ack_loss : Q.t;
}

let paper_params =
  {
    timeout = Q.of_int 1000;
    send_time = Q.one;
    transit_time = Q.of_decimal_string "106.7";
    process_time = Q.of_decimal_string "13.5";
    packet_loss = Q.of_decimal_string "0.05";
    ack_loss = Q.of_decimal_string "0.05";
  }

let t_prepare = "t1"
let t_send = "t2"
let t_timeout = "t3"
let t_lose_pkt = "t4"
let t_deliver_pkt = "t5"
let t_receive = "t6"
let t_process_ack = "t7"
let t_deliver_ack = "t8"
let t_lose_ack = "t9"

(* Structure reconstructed from the paper's prose; reproduces Figure 4
   exactly (18 states, decision nodes 3 and 11 — see DESIGN.md §2). *)
let net () =
  let b = Net.builder "stopwait" in
  let p1 = Net.add_place b ~init:1 "p1" (* message ready to send *) in
  let p2 = Net.add_place b "p2" (* packet in medium *) in
  let p3 = Net.add_place b "p3" (* packet at receiver *) in
  let p4 = Net.add_place b "p4" (* awaiting ack, timer armed *) in
  let p5 = Net.add_place b "p5" (* ack in medium *) in
  let p6 = Net.add_place b "p6" (* ack at sender *) in
  let p7 = Net.add_place b "p7" (* ack processed *) in
  let p8 = Net.add_place b ~init:1 "p8" (* receiver ready *) in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  t t_prepare [ (p7, 1) ] [ (p1, 1) ];
  t t_send [ (p1, 1) ] [ (p2, 1); (p4, 1) ];
  t t_timeout [ (p4, 1) ] [ (p1, 1) ];
  t t_lose_pkt [ (p2, 1) ] [];
  t t_deliver_pkt [ (p2, 1) ] [ (p3, 1) ];
  t t_receive [ (p3, 1); (p8, 1) ] [ (p5, 1); (p8, 1) ];
  t t_process_ack [ (p6, 1); (p4, 1) ] [ (p7, 1) ];
  t t_deliver_ack [ (p5, 1) ] [ (p6, 1) ];
  t t_lose_ack [ (p5, 1) ] [];
  Net.build b

let concrete p =
  let s = Tpn.spec in
  Tpn.make (net ())
    [
      (t_prepare, s ~firing:(Tpn.Fixed p.send_time) ());
      (t_send, s ~firing:(Tpn.Fixed p.send_time) ());
      (* frequency 0: the ack (t7) always wins when both are firable *)
      (t_timeout,
       s ~enabling:(Tpn.Fixed p.timeout) ~firing:(Tpn.Fixed p.send_time)
         ~frequency:(Tpn.Freq Q.zero) ());
      (t_lose_pkt, s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.packet_loss) ());
      (t_deliver_pkt,
       s ~firing:(Tpn.Fixed p.transit_time)
         ~frequency:(Tpn.Freq (Q.sub Q.one p.packet_loss)) ());
      (t_receive, s ~firing:(Tpn.Fixed p.process_time) ());
      (t_process_ack, s ~firing:(Tpn.Fixed p.process_time) ());
      (t_deliver_ack,
       s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.ack_loss)) ());
      (t_lose_ack, s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.ack_loss) ());
    ]

(* N independent copies with suffixed names: a per-flow "window" of
   outstanding messages. Long-run rates are per-channel independent, so the
   aggregate throughput must be exactly N times the single-channel value —
   a sharp correctness check for the analysis of interleaved probabilistic
   concurrency. *)
let parallel ~channels p =
  if channels < 1 then invalid_arg "Stopwait.parallel: need at least one channel";
  let b = Net.builder (Printf.sprintf "stopwait_x%d" channels) in
  let specs = ref [] in
  for c = 0 to channels - 1 do
    let sfx name = Printf.sprintf "%s_c%d" name c in
    let p1 = Net.add_place b ~init:1 (sfx "p1") in
    let p2 = Net.add_place b (sfx "p2") in
    let p3 = Net.add_place b (sfx "p3") in
    let p4 = Net.add_place b (sfx "p4") in
    let p5 = Net.add_place b (sfx "p5") in
    let p6 = Net.add_place b (sfx "p6") in
    let p7 = Net.add_place b (sfx "p7") in
    let p8 = Net.add_place b ~init:1 (sfx "p8") in
    let t name inputs outputs = ignore (Net.add_transition b ~name:(sfx name) ~inputs ~outputs) in
    t t_prepare [ (p7, 1) ] [ (p1, 1) ];
    t t_send [ (p1, 1) ] [ (p2, 1); (p4, 1) ];
    t t_timeout [ (p4, 1) ] [ (p1, 1) ];
    t t_lose_pkt [ (p2, 1) ] [];
    t t_deliver_pkt [ (p2, 1) ] [ (p3, 1) ];
    t t_receive [ (p3, 1); (p8, 1) ] [ (p5, 1); (p8, 1) ];
    t t_process_ack [ (p6, 1); (p4, 1) ] [ (p7, 1) ];
    t t_deliver_ack [ (p5, 1) ] [ (p6, 1) ];
    t t_lose_ack [ (p5, 1) ] [];
    let s = Tpn.spec in
    specs :=
      [
        (sfx t_prepare, s ~firing:(Tpn.Fixed p.send_time) ());
        (sfx t_send, s ~firing:(Tpn.Fixed p.send_time) ());
        (sfx t_timeout,
         s ~enabling:(Tpn.Fixed p.timeout) ~firing:(Tpn.Fixed p.send_time)
           ~frequency:(Tpn.Freq Q.zero) ());
        (sfx t_lose_pkt, s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.packet_loss) ());
        (sfx t_deliver_pkt,
         s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.packet_loss)) ());
        (sfx t_receive, s ~firing:(Tpn.Fixed p.process_time) ());
        (sfx t_process_ack, s ~firing:(Tpn.Fixed p.process_time) ());
        (sfx t_deliver_ack,
         s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq (Q.sub Q.one p.ack_loss)) ());
        (sfx t_lose_ack, s ~firing:(Tpn.Fixed p.transit_time) ~frequency:(Tpn.Freq p.ack_loss) ());
      ]
      @ !specs
  done;
  Tpn.make (Net.build b) !specs

let symbolic_constraints =
  let e3 = Lin.var (Var.enabling t_timeout) in
  let f t = Lin.var (Var.firing t) in
  let sum = List.fold_left Lin.add Lin.zero in
  C.of_list
    [
      ("(1)", `Gt, e3, sum [ f t_deliver_pkt; f t_receive; f t_deliver_ack ]);
      ("(3)", `Eq, f t_lose_pkt, f t_deliver_pkt);
      ("(4)", `Eq, f t_lose_ack, f t_deliver_ack);
    ]

let symbolic () =
  let s = Tpn.spec in
  let fs t = Tpn.sym_firing t in
  Tpn.make ~constraints:symbolic_constraints (net ())
    [
      (t_prepare, s ~firing:(fs t_prepare) ());
      (t_send, s ~firing:(fs t_send) ());
      (t_timeout,
       s ~enabling:(Tpn.sym_enabling t_timeout) ~firing:(fs t_timeout)
         ~frequency:(Tpn.Freq Q.zero) ());
      (t_lose_pkt,
       s ~firing:(fs t_lose_pkt) ~frequency:(Tpn.Freq_sym (Var.frequency t_lose_pkt)) ());
      (t_deliver_pkt,
       s ~firing:(fs t_deliver_pkt) ~frequency:(Tpn.Freq_sym (Var.frequency t_deliver_pkt)) ());
      (t_receive, s ~firing:(fs t_receive) ());
      (t_process_ack, s ~firing:(fs t_process_ack) ());
      (t_deliver_ack,
       s ~firing:(fs t_deliver_ack) ~frequency:(Tpn.Freq_sym (Var.frequency t_deliver_ack)) ());
      (t_lose_ack,
       s ~firing:(fs t_lose_ack) ~frequency:(Tpn.Freq_sym (Var.frequency t_lose_ack)) ());
    ]
