module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

type params = {
  stations : int;
  frame_weight : Q.t;
  idle_weight : Q.t;
  tx_time : Q.t;
  pass_time : Q.t;
}

let default_params =
  {
    stations = 4;
    frame_weight = Q.one;
    idle_weight = Q.of_int 2;
    tx_time = Q.of_int 40;
    pass_time = Q.of_int 5;
  }

let use i = Printf.sprintf "use_%d" i
let skip i = Printf.sprintf "skip_%d" i

let net ~stations =
  if stations < 1 then invalid_arg "Token_ring.net: need at least one station";
  let b = Net.builder (Printf.sprintf "token_ring_%d" stations) in
  let tok =
    Array.init stations (fun i ->
        Net.add_place b ~init:(if i = 0 then 1 else 0) (Printf.sprintf "tok%d" i))
  in
  for i = 0 to stations - 1 do
    let next = tok.((i + 1) mod stations) in
    ignore (Net.add_transition b ~name:(use i) ~inputs:[ (tok.(i), 1) ] ~outputs:[ (next, 1) ]);
    ignore (Net.add_transition b ~name:(skip i) ~inputs:[ (tok.(i), 1) ] ~outputs:[ (next, 1) ])
  done;
  Net.build b

let concrete p =
  let specs =
    List.concat
      (List.init p.stations (fun i ->
           [
             (use i,
              Tpn.spec ~firing:(Tpn.Fixed (Q.add p.tx_time p.pass_time))
                ~frequency:(Tpn.Freq p.frame_weight) ());
             (skip i,
              Tpn.spec ~firing:(Tpn.Fixed p.pass_time) ~frequency:(Tpn.Freq p.idle_weight) ());
           ]))
  in
  Tpn.make (net ~stations:p.stations) specs

let sym_tx = Var.firing "tx"
let sym_pass = Var.firing "pass"

let symbolic_constraints =
  C.of_list
    [
      ("(tx+)", `Gt, Lin.var sym_tx, Lin.zero);
      ("(pass+)", `Gt, Lin.var sym_pass, Lin.zero);
    ]

let symbolic ~stations =
  let specs =
    List.concat
      (List.init stations (fun i ->
           [
             (use i,
              Tpn.spec
                ~firing:(Tpn.Sym sym_tx) (* tx includes the hand-off *)
                ~frequency:(Tpn.Freq_sym (Var.frequency "frame"))
                ());
             (skip i,
              Tpn.spec ~firing:(Tpn.Sym sym_pass)
                ~frequency:(Tpn.Freq_sym (Var.frequency "idle"))
                ());
           ]))
  in
  Tpn.make ~constraints:symbolic_constraints (net ~stations) specs
