module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Var = Tpan_symbolic.Var
module Lin = Tpan_symbolic.Linexpr
module C = Tpan_symbolic.Constraints
module Tpn = Tpan_core.Tpn

type params = {
  timeout : Q.t;
  send_time : Q.t;
  transit_time : Q.t;
  process_time : Q.t;
  packet_loss : Q.t;
  ack_loss : Q.t;
}

let default_params =
  {
    timeout = Q.of_int 1000;
    send_time = Q.one;
    transit_time = Q.of_decimal_string "106.7";
    process_time = Q.of_decimal_string "13.5";
    packet_loss = Q.of_decimal_string "0.05";
    ack_loss = Q.of_decimal_string "0.05";
  }

let bits = [ 0; 1 ]
let b_name prefix b = Printf.sprintf "%s%d" prefix b

let deliveries = List.map (b_name "recv_new") bits

(* Per bit b: the sender sends packet b and waits; the receiver either
   expects b (new message: deliver, flip expectation) or expects 1-b
   (duplicate caused by a lost ack: re-acknowledge only). *)
let net () =
  let b = Net.builder "abp" in
  let ready = Array.of_list (List.map (fun v -> Net.add_place b ~init:(if v = 0 then 1 else 0) (b_name "ready" v)) bits) in
  let med_pkt = Array.of_list (List.map (fun v -> Net.add_place b (b_name "med_pkt" v)) bits) in
  let pkt_rcv = Array.of_list (List.map (fun v -> Net.add_place b (b_name "pkt_rcv" v)) bits) in
  let await = Array.of_list (List.map (fun v -> Net.add_place b (b_name "await" v)) bits) in
  let med_ack = Array.of_list (List.map (fun v -> Net.add_place b (b_name "med_ack" v)) bits) in
  let ack_snd = Array.of_list (List.map (fun v -> Net.add_place b (b_name "ack_snd" v)) bits) in
  let expect = Array.of_list (List.map (fun v -> Net.add_place b ~init:(if v = 0 then 1 else 0) (b_name "expect" v)) bits) in
  let t name inputs outputs = ignore (Net.add_transition b ~name ~inputs ~outputs) in
  List.iter
    (fun v ->
      let w = 1 - v in
      t (b_name "send" v) [ (ready.(v), 1) ] [ (med_pkt.(v), 1); (await.(v), 1) ];
      t (b_name "timeout" v) [ (await.(v), 1) ] [ (ready.(v), 1) ];
      t (b_name "lose_pkt" v) [ (med_pkt.(v), 1) ] [];
      t (b_name "deliver_pkt" v) [ (med_pkt.(v), 1) ] [ (pkt_rcv.(v), 1) ];
      (* expected bit: deliver upward and flip the expectation *)
      t (b_name "recv_new" v) [ (pkt_rcv.(v), 1); (expect.(v), 1) ]
        [ (med_ack.(v), 1); (expect.(w), 1) ];
      (* duplicate (retransmission after a lost ack): just re-ack *)
      t (b_name "recv_dup" v) [ (pkt_rcv.(v), 1); (expect.(w), 1) ]
        [ (med_ack.(v), 1); (expect.(w), 1) ];
      t (b_name "lose_ack" v) [ (med_ack.(v), 1) ] [];
      t (b_name "deliver_ack" v) [ (med_ack.(v), 1) ] [ (ack_snd.(v), 1) ];
      t (b_name "process_ack" v) [ (ack_snd.(v), 1); (await.(v), 1) ] [ (ready.(w), 1) ])
    bits;
  Net.build b

let spec_table ~enabling_of ~firing_of ~freq_of =
  List.concat_map
    (fun v ->
      List.map
        (fun base ->
          let name = b_name base v in
          ( name,
            Tpn.spec ~enabling:(enabling_of base) ~firing:(firing_of base)
              ~frequency:(freq_of base) () ))
        [ "send"; "timeout"; "lose_pkt"; "deliver_pkt"; "recv_new"; "recv_dup";
          "lose_ack"; "deliver_ack"; "process_ack" ])
    bits

let concrete p =
  let enabling_of = function
    | "timeout" -> Tpn.Fixed p.timeout
    | _ -> Tpn.Fixed Q.zero
  in
  let firing_of = function
    | "send" | "timeout" -> Tpn.Fixed p.send_time
    | "lose_pkt" | "deliver_pkt" | "lose_ack" | "deliver_ack" -> Tpn.Fixed p.transit_time
    | "recv_new" | "recv_dup" | "process_ack" -> Tpn.Fixed p.process_time
    | _ -> assert false
  in
  let freq_of = function
    | "timeout" -> Tpn.Freq Q.zero
    | "lose_pkt" -> Tpn.Freq p.packet_loss
    | "deliver_pkt" -> Tpn.Freq (Q.sub Q.one p.packet_loss)
    | "lose_ack" -> Tpn.Freq p.ack_loss
    | "deliver_ack" -> Tpn.Freq (Q.sub Q.one p.ack_loss)
    | _ -> Tpn.Freq Q.one
  in
  Tpn.make (net ()) (spec_table ~enabling_of ~firing_of ~freq_of)

(* Shared symbols across the two bit phases. *)
let sym_timeout = Var.enabling "to"
let sym_send = Var.firing "send"
let sym_pkt = Var.firing "pkt"
let sym_proc = Var.firing "proc"
let sym_ack = Var.firing "ack"

let symbolic_constraints =
  let e = Lin.var sym_timeout in
  let rt = List.fold_left Lin.add Lin.zero (List.map Lin.var [ sym_pkt; sym_proc; sym_ack ]) in
  C.of_list [ ("(rtt)", `Gt, e, rt) ]

let symbolic () =
  let enabling_of = function
    | "timeout" -> Tpn.Sym sym_timeout
    | _ -> Tpn.Fixed Q.zero
  in
  let firing_of = function
    | "send" | "timeout" -> Tpn.Sym sym_send
    | "lose_pkt" | "deliver_pkt" -> Tpn.Sym sym_pkt
    | "lose_ack" | "deliver_ack" -> Tpn.Sym sym_ack
    | "recv_new" | "recv_dup" | "process_ack" -> Tpn.Sym sym_proc
    | _ -> assert false
  in
  let freq_of = function
    | "timeout" -> Tpn.Freq Q.zero
    | "lose_pkt" -> Tpn.Freq_sym (Var.frequency "lp")
    | "deliver_pkt" -> Tpn.Freq_sym (Var.frequency "dp")
    | "lose_ack" -> Tpn.Freq_sym (Var.frequency "la")
    | "deliver_ack" -> Tpn.Freq_sym (Var.frequency "da")
    | _ -> Tpn.Freq Q.one
  in
  Tpn.make ~constraints:symbolic_constraints (net ()) (spec_table ~enabling_of ~firing_of ~freq_of)
