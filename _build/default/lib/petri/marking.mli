(** Markings: token counts per place, as flat immutable-by-convention
    arrays indexed by {!Net.place}. *)

type t = int array

val of_net : Net.t -> t
(** The initial marking. *)

val copy : t -> t
val tokens : t -> Net.place -> int

val enabled : Net.t -> t -> Net.trans -> bool
(** Normal Petri-net enabling rule: [μ(p) ≥ #(p, I(t))] for every input. *)

val enabled_transitions : Net.t -> t -> Net.trans list

val consume : Net.t -> t -> Net.trans -> t
(** Remove the input bag (the "begin firing" half of timed semantics).
    @raise Invalid_argument if not enabled. *)

val produce : Net.t -> t -> Net.trans -> t
(** Add the output bag (the "finish firing" half). *)

val fire : Net.t -> t -> Net.trans -> t
(** Atomic fire: [produce] after [consume] — classic untimed semantics. *)

val is_dead : Net.t -> t -> bool
(** No transition enabled. *)

val total : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Net.t -> Format.formatter -> t -> unit
(** Renders as [{p1, 2*p4}] using place names; [{}] when empty. *)
