(** Structural net classes — they determine which theorems apply (e.g.
    Commoner's condition is a deadlock-freedom {e characterization} only on
    free-choice nets; marked graphs have the cycle-time bound used by the
    pipeline analysis). *)

val is_state_machine : Net.t -> bool
(** Every transition has exactly one input and one output place: all
    conflict, no synchronization. *)

val is_marked_graph : Net.t -> bool
(** Every place has exactly one producer and one consumer: all
    synchronization, no conflict. *)

val is_free_choice : Net.t -> bool
(** For any two transitions sharing an input place, the input bags are
    equal — a conflict is always a "free" choice, never influenced by other
    tokens. (Equal-bag a.k.a. extended free choice.) *)

type t = {
  state_machine : bool;
  marked_graph : bool;
  free_choice : bool;
}

val classify : Net.t -> t
val pp : Format.formatter -> t -> unit
