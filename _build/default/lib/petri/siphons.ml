module IS = Set.Make (Int)

let preset_of_set net s =
  IS.fold (fun p acc -> List.fold_left (fun a t -> IS.add t a) acc (Net.producers net p)) s IS.empty

let postset_of_set net s =
  IS.fold (fun p acc -> List.fold_left (fun a t -> IS.add t a) acc (Net.consumers net p)) s IS.empty

let is_siphon_set net s =
  (not (IS.is_empty s)) && IS.subset (preset_of_set net s) (postset_of_set net s)

let is_trap_set net s =
  (not (IS.is_empty s)) && IS.subset (postset_of_set net s) (preset_of_set net s)

let is_siphon net places = is_siphon_set net (IS.of_list places)
let is_trap net places = is_trap_set net (IS.of_list places)

(* Closure-based enumeration of minimal siphons: grow a candidate set by
   repairing violations. A violation is a transition in preset(S) \
   postset(S); it is repaired by adding one of its input places. Branching
   over the repair choices enumerates all siphons; minimality is filtered
   at the end. *)
let enumerate ~violation_sources ~repair_options ?(max_results = 10_000) net =
  let np = Net.num_places net in
  let results = ref [] in
  let add_result s =
    (* drop supersets of existing results; drop existing supersets of s *)
    if not (List.exists (fun r -> IS.subset r s) !results) then begin
      results := s :: List.filter (fun r -> not (IS.subset s r)) !results
    end
  in
  let budget = ref (200_000 : int) in
  let rec grow s =
    if !budget <= 0 || List.length !results >= max_results then ()
    else begin
      decr budget;
      match violation_sources net s with
      | [] -> add_result s
      | t :: _ ->
        (* repair the first violating transition in every possible way *)
        List.iter
          (fun p -> if not (IS.mem p s) then grow (IS.add p s))
          (repair_options net t)
    end
  in
  for seed = 0 to np - 1 do
    grow (IS.singleton seed)
  done;
  List.sort compare (List.map IS.elements !results)

let siphon_violations net s =
  IS.elements (IS.diff (preset_of_set net s) (postset_of_set net s))

let trap_violations net s =
  IS.elements (IS.diff (postset_of_set net s) (preset_of_set net s))

let minimal_siphons ?max_results net =
  enumerate ?max_results net
    ~violation_sources:(fun net s -> siphon_violations net s)
    ~repair_options:(fun net t -> Net.pre_places net t)

let minimal_traps ?max_results net =
  enumerate ?max_results net
    ~violation_sources:(fun net s -> trap_violations net s)
    ~repair_options:(fun net t -> Net.post_places net t)

(* Greatest trap inside a set: repeatedly remove places whose emptying
   cannot be prevented (a transition consumes from p but does not feed back
   into the candidate set). *)
let max_trap_within net places =
  let rec refine s =
    let bad =
      IS.filter
        (fun p ->
          List.exists
            (fun t -> not (List.exists (fun q -> IS.mem q s) (Net.post_places net t)))
            (Net.consumers net p))
        s
    in
    if IS.is_empty bad then s else refine (IS.diff s bad)
  in
  IS.elements (refine (IS.of_list places))

let unmarked_siphons net =
  let m0 = Net.initial_marking net in
  List.filter (fun s -> List.for_all (fun p -> m0.(p) = 0) s) (minimal_siphons net)

let commoner_satisfied net =
  let m0 = Net.initial_marking net in
  List.for_all
    (fun s ->
      let trap = max_trap_within net s in
      List.exists (fun p -> m0.(p) > 0) trap)
    (minimal_siphons net)
