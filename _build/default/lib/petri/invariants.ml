module Q = Tpan_mathkit.Q
module B = Tpan_mathkit.Bigint
module FM = Tpan_mathkit.Fourier_motzkin

(* Rational nullspace of an integer matrix (rows × cols): returns a basis of
   { x | A·x = 0 } as primitive integer vectors. *)
let nullspace rows cols (a : int array array) =
  let m = Array.init rows (fun i -> Array.map Q.of_int a.(i)) in
  let pivot_col_of_row = Array.make rows (-1) in
  let row = ref 0 in
  for col = 0 to cols - 1 do
    if !row < rows then begin
      let p = ref (-1) in
      for i = !row to rows - 1 do
        if !p < 0 && not (Q.is_zero m.(i).(col)) then p := i
      done;
      if !p >= 0 then begin
        let tmp = m.(!row) in
        m.(!row) <- m.(!p);
        m.(!p) <- tmp;
        let pv = m.(!row).(col) in
        for j = 0 to cols - 1 do
          m.(!row).(j) <- Q.div m.(!row).(j) pv
        done;
        for i = 0 to rows - 1 do
          if i <> !row && not (Q.is_zero m.(i).(col)) then begin
            let f = m.(i).(col) in
            for j = 0 to cols - 1 do
              m.(i).(j) <- Q.sub m.(i).(j) (Q.mul f m.(!row).(j))
            done
          end
        done;
        pivot_col_of_row.(!row) <- col;
        incr row
      end
    end
  done;
  let is_pivot = Array.make cols false in
  Array.iter (fun c -> if c >= 0 then is_pivot.(c) <- true) pivot_col_of_row;
  let basis = ref [] in
  for free = 0 to cols - 1 do
    if not is_pivot.(free) then begin
      let v = Array.make cols Q.zero in
      v.(free) <- Q.one;
      for r = 0 to rows - 1 do
        let pc = pivot_col_of_row.(r) in
        if pc >= 0 then v.(pc) <- Q.neg m.(r).(free)
      done;
      basis := v :: !basis
    end
  done;
  (* Scale each rational vector to a primitive integer vector. *)
  let to_primitive v =
    let lcm = Array.fold_left (fun acc q -> let d = Q.den q in B.div (B.mul acc d) (B.gcd acc d)) B.one v in
    let ints = Array.map (fun q -> B.div (B.mul (Q.num q) lcm) (Q.den q)) v in
    let g = Array.fold_left (fun acc x -> B.gcd acc x) B.zero ints in
    let ints = if B.is_zero g then ints else Array.map (fun x -> B.div x g) ints in
    (* sign: first non-zero entry positive *)
    let s =
      let rec go i = if i >= Array.length ints then 1 else if B.is_zero ints.(i) then go (i + 1) else B.sign ints.(i) in
      go 0
    in
    Array.map (fun x -> match B.to_int_opt (if s < 0 then B.neg x else x) with Some i -> i | None -> failwith "Invariants: entry too large") ints
  in
  List.rev_map to_primitive !basis

let p_invariants net =
  (* y·C = 0  <=>  Cᵀ·y = 0: nullspace of the transpose. *)
  let c = Net.incidence net in
  let np = Net.num_places net and nt = Net.num_transitions net in
  let ct = Array.init nt (fun t -> Array.init np (fun p -> c.(p).(t))) in
  nullspace nt np ct

let t_invariants net =
  let c = Net.incidence net in
  nullspace (Net.num_places net) (Net.num_transitions net) c

let is_p_invariant net y =
  let c = Net.incidence net in
  let np = Net.num_places net and nt = Net.num_transitions net in
  Array.length y = np
  && List.for_all
       (fun t ->
         let acc = ref 0 in
         for p = 0 to np - 1 do
           acc := !acc + (y.(p) * c.(p).(t))
         done;
         !acc = 0)
       (List.init nt Fun.id)

let is_t_invariant net x =
  let c = Net.incidence net in
  let np = Net.num_places net and nt = Net.num_transitions net in
  Array.length x = nt
  && List.for_all
       (fun p ->
         let acc = ref 0 in
         for t = 0 to nt - 1 do
           acc := !acc + (c.(p).(t) * x.(t))
         done;
         !acc = 0)
       (List.init np Fun.id)

let invariant_value y marking =
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + (w * marking.(i))) y;
  !acc

let is_conservative net =
  (* Feasibility of { y·C = 0, y_p >= 1 } over the rationals. *)
  let c = Net.incidence net in
  let np = Net.num_places net and nt = Net.num_transitions net in
  let module L = FM.Linform in
  let col t = L.of_list (List.init np (fun p -> (p, Q.of_int c.(p).(t)))) Q.zero in
  let eqs = List.init nt (fun t -> { FM.form = col t; rel = FM.Eq }) in
  let pos = List.init np (fun p -> FM.ge (L.var p) (L.const Q.one)) in
  FM.feasible (eqs @ pos)

let pp_weighted names fmt v =
  let entries = ref [] in
  Array.iteri (fun i w -> if w <> 0 then entries := (i, w) :: !entries) v;
  let entries = List.rev !entries in
  if entries = [] then Format.pp_print_string fmt "0"
  else
    List.iteri
      (fun k (i, w) ->
        if k > 0 then Format.pp_print_string fmt (if w > 0 then " + " else " - ")
        else if w < 0 then Format.pp_print_string fmt "-";
        let a = Stdlib.abs w in
        if a <> 1 then Format.fprintf fmt "%d*" a;
        Format.pp_print_string fmt names.(i))
      entries

let pp_p_invariant net fmt y =
  pp_weighted (Array.init (Net.num_places net) (Net.place_name net)) fmt y

let pp_t_invariant net fmt x =
  pp_weighted (Array.init (Net.num_transitions net) (Net.trans_name net)) fmt x
