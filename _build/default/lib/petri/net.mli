(** Place/transition nets: the untimed substrate under {!Tpan_core}.

    A net is built once through a {!builder} and immutable afterwards.
    Places and transitions are dense integer indices into the net, which
    keeps markings as flat arrays. Input/output bags carry multiplicities
    (the paper's [#(p, I(t))] notation). *)

type place = int
type trans = int

type t

(** {1 Construction} *)

type builder

val builder : string -> builder
(** [builder name] starts an empty net called [name]. *)

val add_place : builder -> ?init:int -> string -> place
(** Declare a place with an initial token count (default 0).
    @raise Invalid_argument on duplicate names or negative [init]. *)

val add_transition :
  builder -> name:string -> inputs:(place * int) list -> outputs:(place * int) list -> trans
(** Declare a transition with weighted input and output bags. Repeated
    places in a bag accumulate.
    @raise Invalid_argument on duplicate names, unknown places, or
    non-positive multiplicities. *)

val build : builder -> t

(** {1 Structure} *)

val name : t -> string
val num_places : t -> int
val num_transitions : t -> int
val place_name : t -> place -> string
val trans_name : t -> trans -> string

val place_of_name : t -> string -> place
(** @raise Not_found *)

val trans_of_name : t -> string -> trans
(** @raise Not_found *)

val places : t -> place list
val transitions : t -> trans list

val inputs : t -> trans -> (place * int) list
val outputs : t -> trans -> (place * int) list

val input_weight : t -> trans -> place -> int
val output_weight : t -> trans -> place -> int

val pre_places : t -> trans -> place list
val post_places : t -> trans -> place list

val consumers : t -> place -> trans list
(** Transitions having [p] in their input bag. *)

val producers : t -> place -> trans list

val incidence : t -> int array array
(** [|P| × |T|] matrix: [(incidence n).(p).(t) = output_weight - input_weight]. *)

val initial_marking : t -> int array

val structurally_conflicting : t -> trans -> trans -> bool
(** Do the two transitions share an input place (paper's conflict relation
    [I(ti) ∩ I(tj) ≠ ∅])? A transition conflicts with itself. *)

val pp : Format.formatter -> t -> unit
