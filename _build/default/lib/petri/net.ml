type place = int
type trans = int

type tinfo = { tname : string; tin : (place * int) list; tout : (place * int) list }

type t = {
  name : string;
  place_names : string array;
  init : int array;
  trans : tinfo array;
  place_index : (string, place) Hashtbl.t;
  trans_index : (string, trans) Hashtbl.t;
  consumers : trans list array;
  producers : trans list array;
}

type builder = {
  bname : string;
  mutable bplaces : (string * int) list; (* reverse order *)
  mutable btrans : tinfo list; (* reverse order *)
  bplace_index : (string, place) Hashtbl.t;
  btrans_names : (string, unit) Hashtbl.t;
  mutable nplaces : int;
}

let builder bname =
  { bname; bplaces = []; btrans = []; bplace_index = Hashtbl.create 16;
    btrans_names = Hashtbl.create 16; nplaces = 0 }

let add_place b ?(init = 0) pname =
  if init < 0 then invalid_arg "Net.add_place: negative initial marking";
  if Hashtbl.mem b.bplace_index pname then
    invalid_arg (Printf.sprintf "Net.add_place: duplicate place %S" pname);
  let idx = b.nplaces in
  b.nplaces <- idx + 1;
  b.bplaces <- (pname, init) :: b.bplaces;
  Hashtbl.add b.bplace_index pname idx;
  idx

(* Merge duplicate places in a bag, validating indices and multiplicities. *)
let normalize_bag b what bag =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (p, w) ->
      if p < 0 || p >= b.nplaces then invalid_arg (Printf.sprintf "Net.add_transition: unknown place in %s" what);
      if w <= 0 then invalid_arg (Printf.sprintf "Net.add_transition: non-positive multiplicity in %s" what);
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl p) in
      Hashtbl.replace tbl p (cur + w))
    bag;
  Hashtbl.fold (fun p w acc -> (p, w) :: acc) tbl []
  |> List.sort (fun (a, _) (c, _) -> Stdlib.compare a c)

let add_transition b ~name ~inputs ~outputs =
  if Hashtbl.mem b.btrans_names name then
    invalid_arg (Printf.sprintf "Net.add_transition: duplicate transition %S" name);
  Hashtbl.add b.btrans_names name ();
  let tin = normalize_bag b "inputs" inputs in
  let tout = normalize_bag b "outputs" outputs in
  let idx = List.length b.btrans in
  b.btrans <- { tname = name; tin; tout } :: b.btrans;
  idx

let build b =
  let bplaces = Array.of_list (List.rev b.bplaces) in
  let trans = Array.of_list (List.rev b.btrans) in
  let place_names = Array.map fst bplaces in
  let init = Array.map snd bplaces in
  let place_index = Hashtbl.copy b.bplace_index in
  let trans_index = Hashtbl.create 16 in
  Array.iteri (fun i ti -> Hashtbl.add trans_index ti.tname i) trans;
  let np = Array.length place_names in
  let consumers = Array.make np [] and producers = Array.make np [] in
  Array.iteri
    (fun ti info ->
      List.iter (fun (p, _) -> consumers.(p) <- ti :: consumers.(p)) info.tin;
      List.iter (fun (p, _) -> producers.(p) <- ti :: producers.(p)) info.tout)
    trans;
  Array.iteri (fun p l -> consumers.(p) <- List.rev l) consumers;
  Array.iteri (fun p l -> producers.(p) <- List.rev l) producers;
  { name = b.bname; place_names; init; trans; place_index; trans_index; consumers; producers }

let name n = n.name
let num_places n = Array.length n.place_names
let num_transitions n = Array.length n.trans
let place_name n p = n.place_names.(p)
let trans_name n t = n.trans.(t).tname
let place_of_name n s = Hashtbl.find n.place_index s
let trans_of_name n s = Hashtbl.find n.trans_index s
let places n = List.init (num_places n) Fun.id
let transitions n = List.init (num_transitions n) Fun.id

let inputs n t = n.trans.(t).tin
let outputs n t = n.trans.(t).tout

let weight bag p = try List.assoc p bag with Not_found -> 0
let input_weight n t p = weight n.trans.(t).tin p
let output_weight n t p = weight n.trans.(t).tout p

let pre_places n t = List.map fst n.trans.(t).tin
let post_places n t = List.map fst n.trans.(t).tout

let consumers n p = n.consumers.(p)
let producers n p = n.producers.(p)

let incidence n =
  let np = num_places n and nt = num_transitions n in
  let c = Array.make_matrix np nt 0 in
  for t = 0 to nt - 1 do
    List.iter (fun (p, w) -> c.(p).(t) <- c.(p).(t) - w) n.trans.(t).tin;
    List.iter (fun (p, w) -> c.(p).(t) <- c.(p).(t) + w) n.trans.(t).tout
  done;
  c

let initial_marking n = Array.copy n.init

let structurally_conflicting n t1 t2 =
  t1 = t2
  || List.exists (fun (p, _) -> List.mem_assoc p n.trans.(t2).tin) n.trans.(t1).tin

let pp fmt n =
  Format.fprintf fmt "@[<v>net %s@," n.name;
  Array.iteri
    (fun i pname ->
      if n.init.(i) > 0 then Format.fprintf fmt "place %s init %d@," pname n.init.(i)
      else Format.fprintf fmt "place %s@," pname)
    n.place_names;
  Array.iter
    (fun ti ->
      let pp_bag fmt bag =
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
          (fun fmt (p, w) ->
            if w = 1 then Format.pp_print_string fmt n.place_names.(p)
            else Format.fprintf fmt "%d*%s" w n.place_names.(p))
          fmt bag
      in
      Format.fprintf fmt "trans %s { in %a; out %a }@," ti.tname pp_bag ti.tin pp_bag ti.tout)
    n.trans;
  Format.fprintf fmt "@]"
