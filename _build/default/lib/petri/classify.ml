let is_state_machine net =
  List.for_all
    (fun t -> List.length (Net.inputs net t) = 1 && List.length (Net.outputs net t) = 1)
    (Net.transitions net)

let is_marked_graph net =
  List.for_all
    (fun p -> List.length (Net.producers net p) = 1 && List.length (Net.consumers net p) = 1)
    (Net.places net)

let is_free_choice net =
  let bag t = List.sort compare (Net.inputs net t) in
  List.for_all
    (fun p ->
      match Net.consumers net p with
      | [] | [ _ ] -> true
      | t0 :: rest -> List.for_all (fun t -> bag t = bag t0) rest)
    (Net.places net)

type t = { state_machine : bool; marked_graph : bool; free_choice : bool }

let classify net =
  {
    state_machine = is_state_machine net;
    marked_graph = is_marked_graph net;
    free_choice = is_free_choice net;
  }

let pp fmt c =
  let tags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [
        (c.state_machine, "state machine");
        (c.marked_graph, "marked graph");
        (c.free_choice, "free choice");
      ]
  in
  match tags with
  | [] -> Format.pp_print_string fmt "general place/transition net"
  | l -> Format.pp_print_string fmt (String.concat ", " l)
