(** P- and T-invariants via exact rational nullspace computation.

    A P-invariant [y] satisfies [y·C = 0] (token-weighted sums conserved by
    every firing); a T-invariant [x] satisfies [C·x = 0] (firing counts that
    reproduce a marking). Bases are returned as integer vectors scaled to be
    primitive (coprime entries). *)

val p_invariants : Net.t -> int array list
(** Basis of the left nullspace of the incidence matrix, one vector of
    length [num_places] per element. *)

val t_invariants : Net.t -> int array list
(** Basis of the right nullspace, vectors of length [num_transitions]. *)

val is_p_invariant : Net.t -> int array -> bool
val is_t_invariant : Net.t -> int array -> bool

val invariant_value : int array -> int array -> int
(** [invariant_value y marking]: the conserved weighted token sum. *)

val is_conservative : Net.t -> bool
(** Is there a strictly positive P-invariant (every place covered)?
    Conservative nets are structurally bounded. *)

val pp_p_invariant : Net.t -> Format.formatter -> int array -> unit
val pp_t_invariant : Net.t -> Format.formatter -> int array -> unit
