lib/petri/coverability.mli: Format Net
