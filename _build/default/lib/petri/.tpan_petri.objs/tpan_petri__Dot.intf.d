lib/petri/dot.mli: Net Reachability
