lib/petri/net.ml: Array Format Fun Hashtbl List Option Printf Stdlib
