lib/petri/dot.ml: Array Buffer Format List Marking Net Printf Reachability String
