lib/petri/marking.mli: Format Net
