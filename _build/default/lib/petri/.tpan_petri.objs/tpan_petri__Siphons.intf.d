lib/petri/siphons.mli: Net
