lib/petri/reachability.ml: Array Fun Hashtbl List Marking Net Option Queue Stdlib
