lib/petri/invariants.ml: Array Format Fun List Net Stdlib Tpan_mathkit
