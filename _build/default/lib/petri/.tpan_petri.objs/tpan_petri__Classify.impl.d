lib/petri/classify.ml: Format List Net String
