lib/petri/invariants.mli: Format Net
