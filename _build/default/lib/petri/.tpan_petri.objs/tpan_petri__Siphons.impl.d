lib/petri/siphons.ml: Array Int List Net Set
