lib/petri/coverability.ml: Array Format Hashtbl List Net Option Reachability Stdlib
