lib/petri/reachability.mli: Marking Net
