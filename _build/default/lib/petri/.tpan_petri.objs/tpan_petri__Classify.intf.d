lib/petri/classify.mli: Format Net
