lib/petri/marking.ml: Array Format Hashtbl List Net Printf Stdlib
