let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter (fun c -> if c = '"' || c = '\\' then (Buffer.add_char buf '\\'; Buffer.add_char buf c) else Buffer.add_char buf c) s;
  Buffer.contents buf

let net_to_dot net =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s\" {\n  rankdir=LR;\n" (escape (Net.name net));
  let init = Net.initial_marking net in
  List.iter
    (fun p ->
      let tokens = if init.(p) > 0 then Printf.sprintf "\\n%d" init.(p) else "" in
      pr "  p%d [shape=circle, label=\"%s%s\"];\n" p (escape (Net.place_name net p)) tokens)
    (Net.places net);
  List.iter
    (fun t ->
      pr "  t%d [shape=box, style=filled, fillcolor=lightgray, label=\"%s\"];\n" t
        (escape (Net.trans_name net t)))
    (Net.transitions net);
  List.iter
    (fun t ->
      List.iter
        (fun (p, w) ->
          if w = 1 then pr "  p%d -> t%d;\n" p t else pr "  p%d -> t%d [label=\"%d\"];\n" p t w)
        (Net.inputs net t);
      List.iter
        (fun (p, w) ->
          if w = 1 then pr "  t%d -> p%d;\n" t p else pr "  t%d -> p%d [label=\"%d\"];\n" t p w)
        (Net.outputs net t))
    (Net.transitions net);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let reachability_to_dot (g : Reachability.graph) =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph \"%s reachability\" {\n" (escape (Net.name g.net));
  Array.iteri
    (fun i m ->
      let label = Format.asprintf "%d: %a" i (Marking.pp g.net) m in
      let shape = if i = 0 then ", shape=doublecircle" else "" in
      pr "  s%d [label=\"%s\"%s];\n" i (escape label) shape)
    g.states;
  Array.iteri
    (fun i succs ->
      List.iter
        (fun (t, j) -> pr "  s%d -> s%d [label=\"%s\"];\n" i j (escape (Net.trans_name g.net t)))
        succs)
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
