(** Siphons and traps — structural liveness analysis.

    A {e siphon} is a place set [S] with [preset(S) ⊆ postset(S)]: every
    transition feeding [S] also drains it, so once [S] is empty it stays
    empty (and every transition needing [S] is dead forever). Dually, a
    {e trap} has [postset(S) ⊆ preset(S)]: once marked, always marked.
    The classical Commoner condition — every siphon contains an initially
    marked trap — gives deadlock-freedom for free-choice nets.

    Minimal-siphon enumeration is exponential in the worst case; the
    implementation is a pruned search suitable for protocol-sized nets
    (tens of places). *)

val is_siphon : Net.t -> Net.place list -> bool
val is_trap : Net.t -> Net.place list -> bool

val minimal_siphons : ?max_results:int -> Net.t -> Net.place list list
(** All minimal non-empty siphons (each sorted ascending), capped at
    [max_results] (default 10_000). *)

val minimal_traps : ?max_results:int -> Net.t -> Net.place list list

val max_trap_within : Net.t -> Net.place list -> Net.place list
(** Greatest trap contained in the given place set (possibly empty). *)

val unmarked_siphons : Net.t -> Net.place list list
(** Minimal siphons empty under the initial marking — each one certifies a
    set of structurally dead transitions. *)

val commoner_satisfied : Net.t -> bool
(** Does every minimal siphon contain a trap marked initially? (Sufficient
    for deadlock-freedom on free-choice nets; merely informative
    otherwise.) *)
