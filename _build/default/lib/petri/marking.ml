type t = int array

let of_net = Net.initial_marking
let copy = Array.copy
let tokens (m : t) p = m.(p)

let enabled net (m : t) t = List.for_all (fun (p, w) -> m.(p) >= w) (Net.inputs net t)

let enabled_transitions net m =
  List.filter (enabled net m) (Net.transitions net)

let consume net (m : t) t =
  if not (enabled net m t) then
    invalid_arg (Printf.sprintf "Marking.consume: %s not enabled" (Net.trans_name net t));
  let m' = Array.copy m in
  List.iter (fun (p, w) -> m'.(p) <- m'.(p) - w) (Net.inputs net t);
  m'

let produce net (m : t) t =
  let m' = Array.copy m in
  List.iter (fun (p, w) -> m'.(p) <- m'.(p) + w) (Net.outputs net t);
  m'

let fire net m t = produce net (consume net m t) t

let is_dead net m = enabled_transitions net m = []

let total (m : t) = Array.fold_left ( + ) 0 m
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (m : t) = Hashtbl.hash m

let pp net fmt (m : t) =
  let entries =
    List.filter_map
      (fun p -> if m.(p) > 0 then Some (p, m.(p)) else None)
      (Net.places net)
  in
  Format.pp_print_string fmt "{";
  List.iteri
    (fun i (p, k) ->
      if i > 0 then Format.pp_print_string fmt ", ";
      if k = 1 then Format.pp_print_string fmt (Net.place_name net p)
      else Format.fprintf fmt "%d*%s" k (Net.place_name net p))
    entries;
  Format.pp_print_string fmt "}"
