(** Graphviz DOT export for nets and reachability graphs. *)

val net_to_dot : Net.t -> string
(** Places as circles (token count shown), transitions as boxes, arcs
    labelled with multiplicities > 1. *)

val reachability_to_dot : Reachability.graph -> string
(** States labelled with their markings; edges with transition names. *)
