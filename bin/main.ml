(* tpan — timed Petri net performance analyzer (command-line front end).

   Subcommands: show, reach, analyze, symbolic, simulate, dot.
   Nets come from a .tpn file or from the built-in protocol models. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Reach = Tpan_petri.Reachability
module Cover = Tpan_petri.Coverability
module Inv = Tpan_petri.Invariants
module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module Obs = Tpan_obs
module J = Tpan_obs.Jsonv

open Cmdliner

(* ----- exit bookkeeping -----

   Every process exit goes through [quit] so the run ledger's at_exit
   writer can record the real exit code. *)

let run_t0 = Unix.gettimeofday ()
let exit_code = ref 0

let quit code =
  exit_code := code;
  Stdlib.exit code

(* ----- error reporting -----

   Every analysis failure is a [Tpan.Error.t] value; the CLI's only jobs
   are the human rendering (historical wording kept) and the stable exit
   code, both owned by the facade. *)

let render_error (e : Tpan.Error.t) =
  match e with
  | Unsupported _ | Io_error _ | Invalid_input _ -> "error: " ^ Tpan.Error.to_string e
  | _ -> Tpan.Error.to_string e

let fail err =
  Printf.eprintf "%s\n" (render_error err);
  (* A deadline abort reports how far the pipeline got before unwinding:
     by now the hot loops' Fun.protect finalizers have flushed their
     metric deltas, so the counters are the true partial totals. *)
  (match err with
   | Tpan.Error.Deadline_exceeded _ ->
     let f = Obs.Dump.snapshot () in
     (match Obs.Dump.progress_summary f with
      | [] -> ()
      | ps ->
        Printf.eprintf "partial progress: %s\n"
          (String.concat ", "
             (List.map (fun (label, v) -> Printf.sprintf "%d %s" v label) ps)))
   | _ -> ());
  Obs.Log.error "run failed"
    ~fields:
      [
        ("error", Obs.Jsonv.Str (Tpan.Error.to_string err));
        ("exit_code", Obs.Jsonv.Int (Tpan.Error.exit_code err));
      ];
  quit (Tpan.Error.exit_code err)

let fail_input msg = fail (Tpan.Error.Invalid_input msg)

let handle_errors f =
  try f () with
  | e ->
    (match Tpan.Error.of_exn e with
     | Some err -> fail err
     | None -> raise e)

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

(* ----- observability options (shared by every subcommand) ----- *)

let progress_enabled = ref false
let progress_interval_ms = ref 50.

let progress label =
  if !progress_enabled then
    Obs.Progress.stderr_reporter ~interval:(!progress_interval_ms /. 1000.) ~label ()
  else fun (_ : int) -> ()

(* State the flag handlers leave behind for subcommands and the at_exit
   hooks: chosen metrics rendering, the model in use, the last facade
   report (captured through the Analysis hook), the ledger directory. *)

type metrics_format = Fmt_table | Fmt_openmetrics | Fmt_json

let metrics_fmt_opt : metrics_format option ref = ref None
let metrics_all = ref false
let current_model : string option ref = ref None
let current_net_hash : string option ref = ref None
let json_schema = ref 2
let last_report : Obs.Jsonv.t option ref = ref None
let ledger_where : string option ref = ref None

let () =
  Tpan.Analysis.add_report_hook (fun r ->
      last_report := Some (Tpan.Analysis.report_to_json r))

let metrics_string format ~all =
  match format with
  | Fmt_table ->
    Format.asprintf "@[%a@]@." (fun fmt () -> Obs.Metrics.pp_table ~all fmt ()) ()
  | Fmt_openmetrics -> Obs.Metrics.to_openmetrics ~all ()
  | Fmt_json -> Obs.Jsonv.to_string_hum (Obs.Metrics.to_json ~all ()) ^ "\n"

let write_ledger () =
  match !ledger_where with
  | None -> ()
  | Some dir ->
    let stages =
      List.map
        (fun (stage, seconds, count) -> { Obs.Ledger.stage; seconds; count })
        (Obs.Trace.stage_totals ())
    in
    let subcommand =
      if Array.length Sys.argv > 1 && String.length Sys.argv.(1) > 0 && Sys.argv.(1).[0] <> '-'
      then Sys.argv.(1)
      else ""
    in
    let record =
      Obs.Ledger.make ~version:Tpan.Version.string ~timestamp:run_t0 ~subcommand
        ~argv:(Array.to_list Sys.argv)
        ?model:!current_model
        ?trace_id:(Obs.Context.trace_id ())
        ~stages
        ~metrics:(Obs.Metrics.to_json ~all:false ())
        ?report:!last_report ~exit_code:!exit_code
        ~duration:(Unix.gettimeofday () -. run_t0)
        ()
    in
    (match Obs.Ledger.append ~dir record with
     | Ok () -> ()
     | Error msg -> Printf.eprintf "warning: cannot write run ledger: %s\n" msg)

let parse_level s =
  match Obs.Log.level_of_string s with
  | Some l -> l
  | None -> fail_input (Printf.sprintf "unknown log level %S (debug, info, warn, error)" s)

(* Durations: "5s", "250ms", "2m", or a bare float (seconds). *)
let parse_duration s =
  let s = String.trim s in
  let fail_dur () =
    fail_input (Printf.sprintf "bad duration %S (use e.g. 5s, 250ms, 2m, or seconds)" s)
  in
  let num str scale =
    match float_of_string_opt str with
    | Some f when f > 0. -> f *. scale
    | _ -> fail_dur ()
  in
  let n = String.length s in
  if n >= 3 && String.sub s (n - 2) 2 = "ms" then num (String.sub s 0 (n - 2)) 0.001
  else if n >= 2 && s.[n - 1] = 's' then num (String.sub s 0 (n - 1)) 1.
  else if n >= 2 && s.[n - 1] = 'm' then num (String.sub s 0 (n - 1)) 60.
  else num s 1.

let default_flight_file () = Filename.concat (Obs.Ledger.default_dir ()) "flight.ndjson"

let obs_setup trace_file metrics m_fmt m_all progress jobs log_level log_file ledger
    ledger_dir deadline watchdog dump progress_interval schema =
  (match schema with
   | 1 | 2 -> json_schema := schema
   | n -> fail_input (Printf.sprintf "--json-schema %d: only 1 (legacy) and 2 exist" n));
  (match jobs with
   | None -> ()
   | Some 0 -> Tpan_par.Pool.set_default_jobs (Tpan_par.Pool.recommended_jobs ())
   | Some n when n > 0 -> Tpan_par.Pool.set_default_jobs n
   | Some _ -> fail_input "-j expects a non-negative jobs count (0 = auto)");
  progress_enabled := progress;
  progress_interval_ms := (if progress_interval > 0. then progress_interval else 50.);
  metrics_fmt_opt := m_fmt;
  metrics_all := m_all;
  (* Request context: every run gets one, so spans, log records and the
     ledger row share a trace id; --deadline puts a budget on its
     cancellation token, which the Pool re-installs in worker domains. *)
  let deadline_s = Option.map parse_duration deadline in
  let ctx = Obs.Context.make ?deadline:deadline_s () in
  Obs.Context.set (Some ctx);
  (* Flight recorder: with a deadline or watchdog in play, cancellation
     writes a diagnostic dump at the instant of the abort — while every
     domain's span stack is still standing — and SIGUSR1 asks the
     watchdog for a dump of a live run. *)
  let flight_path =
    match dump with
    | Some p -> Some p
    | None ->
      if deadline_s <> None || watchdog <> None then Some (default_flight_file ())
      else None
  in
  (match flight_path with
   | None -> ()
   | Some path ->
     (* Pin the trace id: the hook may fire on the watchdog domain,
        which never had this request's context installed. *)
     let trace_id = ctx.Obs.Context.trace_id in
     Obs.Cancel.set_on_cancel
       (Some
          (fun reason ->
            Obs.Dump.write_dump ~trace_id path (Obs.Cancel.reason_to_string reason))));
  if deadline_s <> None || watchdog <> None then begin
    Obs.Dump.install_sigusr1 ();
    let wd =
      Obs.Dump.start_watchdog ?stall:watchdog ?path:flight_path
        ~token:ctx.Obs.Context.token ()
    in
    at_exit (fun () -> Obs.Dump.stop_watchdog wd)
  end;
  (* --metrics-format implies --metrics *)
  let metrics = metrics || m_fmt <> None in
  if metrics then Obs.Metrics.set_timing true;
  if trace_file <> None then Obs.Trace.set_enabled true;
  (match trace_file with
   | None -> ()
   | Some path ->
     at_exit (fun () ->
         try
           let oc = open_out path in
           Obs.Trace.write_ndjson oc;
           close_out oc
         with Sys_error msg -> Printf.eprintf "warning: cannot write trace: %s\n" msg));
  (* Log sinks: silent unless asked — existing outputs stay byte-stable. *)
  let sinks = ref [] in
  (match log_level with
   | None -> ()
   | Some s -> sinks := (parse_level s, Obs.Log.stderr_sink) :: !sinks);
  (match log_file with
   | None -> ()
   | Some path ->
     (match open_out path with
      | oc ->
        at_exit (fun () -> close_out_noerr oc);
        let lvl = match log_level with Some s -> parse_level s | None -> Obs.Log.Info in
        sinks := (lvl, Obs.Log.ndjson_sink oc) :: !sinks
      | exception Sys_error msg -> Printf.eprintf "warning: cannot open log file: %s\n" msg));
  if !sinks <> [] then Obs.Log.set_sinks !sinks;
  (* Run ledger: --ledger, or TPAN_LEDGER=1 in the environment. *)
  let ledger =
    ledger
    || (match Sys.getenv_opt "TPAN_LEDGER" with
        | None | Some "" | Some "0" -> false
        | Some _ -> true)
    || ledger_dir <> None
  in
  if ledger then begin
    ledger_where :=
      Some (match ledger_dir with Some d -> d | None -> Obs.Ledger.default_dir ());
    Obs.Trace.set_enabled true;
    (* per-stage timings come from the spans *)
    at_exit write_ledger
  end;
  if metrics then
    at_exit (fun () ->
        let fmt = match !metrics_fmt_opt with Some f -> f | None -> Fmt_table in
        prerr_string (metrics_string fmt ~all:!metrics_all))

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the span log as NDJSON (Chrome-trace events, one per line) to $(docv) on exit.")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the metrics table to stderr on exit.")
  in
  let metrics_format_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("table", Fmt_table);
                  ("openmetrics", Fmt_openmetrics);
                  ("json", Fmt_json);
                ]))
          None
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:
            "Metrics rendering: $(b,table), $(b,openmetrics) or $(b,json). Implies \
             $(b,--metrics).")
  in
  let metrics_all_arg =
    Arg.(
      value & flag
      & info [ "metrics-all" ]
          ~doc:"Include never-observed histograms (count 0) in metrics output.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ] ~doc:"Report exploration progress to stderr.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel work (sweeps, replicated simulation, large rate \
             solves). 0 picks the machine's recommended count. Results are identical for \
             any value; default 1.")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Print structured log records at $(docv) (debug, info, warn, error) and above \
             to stderr. Silent when absent.")
  in
  let log_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-file" ] ~docv:"FILE"
          ~doc:
            "Also write log records as NDJSON to $(docv) (at --log-level, or info when \
             only this flag is given).")
  in
  let ledger_arg =
    Arg.(
      value & flag
      & info [ "ledger" ]
          ~doc:
            "Append a run record (subcommand, timings, metrics, exit code) to the run \
             ledger ($(b,.tpan/runs.ndjson), or \\$TPAN_DIR). Also enabled by \
             \\$TPAN_LEDGER=1. Query with $(b,tpan runs).")
  in
  let ledger_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger-dir" ] ~docv:"DIR"
          ~doc:"Ledger directory (implies $(b,--ledger)); default $(b,.tpan) or \\$TPAN_DIR.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "deadline" ] ~docv:"DUR"
          ~doc:
            "Abort the analysis after $(docv) (e.g. $(b,5s), $(b,250ms), $(b,2m)) with \
             exit code 6, a partial-progress report and a diagnostic dump. Checked \
             cooperatively at cheap checkpoints in every hot loop, across all -j worker \
             domains.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt ~vopt:(Some 30.) (some float) None
      & info [ "watchdog" ] ~docv:"SECS"
          ~doc:
            "Run a watchdog domain: dump diagnostics when no checkpoint progress happens \
             for $(docv) seconds (default 30 when the flag is given bare, as \
             $(b,--watchdog) or $(b,--watchdog=SECS)), on SIGUSR1, and when a --deadline \
             passes while a loop is wedged between checkpoints.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:
            "Flight-recorder file for diagnostic dumps and the watchdog's periodic \
             frames (NDJSON; view with $(b,tpan top)). Default \
             $(b,.tpan/flight.ndjson) when --deadline or --watchdog is active.")
  in
  let progress_interval_arg =
    Arg.(
      value
      & opt float 50.
      & info [ "progress-interval" ] ~docv:"MS"
          ~doc:"Minimum milliseconds between --progress reports (default 50).")
  in
  let json_schema_arg =
    Arg.(
      value
      & opt int 2
      & info [ "json-schema" ] ~docv:"N"
          ~doc:
            "Version of the --json document shape: $(b,2) (default; envelope with \
             $(b,schema), $(b,trace_id), $(b,net_hash), $(b,exit_code)) or $(b,1) (the \
             pre-serve documents, byte for byte).")
  in
  Term.(
    const obs_setup $ trace_arg $ metrics_arg $ metrics_format_arg $ metrics_all_arg
    $ progress_arg $ jobs_arg $ log_level_arg $ log_file_arg $ ledger_arg $ ledger_dir_arg
    $ deadline_arg $ watchdog_arg $ dump_arg $ progress_interval_arg $ json_schema_arg)

(* ----- common options ----- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.tpn" ~doc:"Net description file.")

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "model" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Built-in model (%s)." (String.concat ", " Tpan.Models.names)))

let max_states_arg =
  Arg.(value & opt int 100_000 & info [ "max-states" ] ~docv:"N" ~doc:"State budget.")

let source_of file model =
  match (file, model) with
  | Some f, None -> Tpan.Analysis.File f
  | None, Some m ->
    current_model := Some m;
    Tpan.Analysis.Builtin m
  | Some _, Some _ -> fail_input "give either a file or --model, not both"
  | None, None -> fail_input "give a .tpn file or --model NAME"

let with_net file model k =
  handle_errors (fun () ->
      match Tpan.Analysis.load (source_of file model) with
      | Ok tpn -> k tpn
      | Error e -> fail e)

(* The artifact-backed subcommands canonicalize first: the content hash
   keys the artifact cache and lands in every schema-2 envelope. *)
let canonicalize tpn =
  let c = Tpan.Canonical.of_tpn tpn in
  current_net_hash := Some (Tpan.Canonical.hash c);
  c

let with_canonical file model k = with_net file model (fun tpn -> k (canonicalize tpn))

(* ----- machine output -----

   Schema 2 wraps every document in one envelope; --json-schema 1
   reproduces the historical per-command shapes byte for byte. *)

let print_json doc = print_endline (Obs.Jsonv.to_string_hum doc)

let envelope ~kind ?(exit_code = 0) fields =
  Obs.Jsonv.Obj
    (("schema", Obs.Jsonv.Int 2)
    :: ("kind", Obs.Jsonv.Str kind)
    :: ( "trace_id",
         match Obs.Context.trace_id () with
         | Some t -> Obs.Jsonv.Str t
         | None -> Obs.Jsonv.Null )
    :: ( "net_hash",
         match !current_net_hash with
         | Some h -> Obs.Jsonv.Str h
         | None -> Obs.Jsonv.Null )
    :: ("exit_code", Obs.Jsonv.Int exit_code)
    :: fields)

let print_doc ~kind ~legacy fields =
  if !json_schema = 1 then print_json (Lazy.force legacy)
  else print_json (envelope ~kind (Lazy.force fields))

(* Payload fields of a legacy document: everything but the old header. *)
let fields_of_legacy doc =
  match doc with
  | Obs.Jsonv.Obj kvs -> List.filter (fun (k, _) -> k <> "schema" && k <> "kind") kvs
  | other -> [ ("value", other) ]

(* ----- show ----- *)

let show_cmd =
  let run () file model =
    with_net file model (fun tpn ->
        print_string (Tpan_dsl.Printer.to_string tpn);
        let net = Tpn.net tpn in
        Printf.printf "\n# %d places, %d transitions, %d conflict sets\n" (Net.num_places net)
          (Net.num_transitions net)
          (Array.length (Tpn.conflict_sets tpn));
        Array.iteri
          (fun i ts ->
            if List.length ts > 1 then
              Printf.printf "# conflict set %d: {%s}\n" i
                (String.concat ", " (List.map (Net.trans_name net) ts)))
          (Tpn.conflict_sets tpn))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the net, its timing table and conflict sets.")
    Term.(const run $ obs_term $ file_arg $ model_arg)

(* ----- reach (untimed analysis) ----- *)

let reach_cmd =
  let run () file model max_states =
    with_net file model (fun tpn ->
        let net = Tpn.net tpn in
        let tree = Cover.build ~max_nodes:max_states ~on_progress:(progress "coverability") net in
        if Cover.is_bounded tree then begin
          let g = Reach.explore ~max_states ~on_progress:(progress "reachability") net in
          Printf.printf "bounded: yes\nstates: %d\nedges: %d\ndeadlocks: %d\nsafe: %b\n"
            (Reach.num_states g) (Reach.num_edges g)
            (List.length (Reach.deadlocks g))
            (Reach.is_safe g)
        end
        else begin
          Printf.printf "bounded: no\nunbounded places: %s\n"
            (String.concat ", "
               (List.map (Net.place_name net) (Cover.unbounded_places tree)));
          Printf.printf "(timed semantics may still be bounded: see 'analyze')\n"
        end;
        let pinvs = Inv.p_invariants net in
        Printf.printf "p-invariants: %d\n" (List.length pinvs);
        List.iter
          (fun y -> Format.printf "  %a = %d@." (Inv.pp_p_invariant net) y
              (Inv.invariant_value y (Net.initial_marking net)))
          pinvs;
        let tinvs = Inv.t_invariants net in
        Printf.printf "t-invariants: %d\n" (List.length tinvs);
        List.iter (fun x -> Format.printf "  %a@." (Inv.pp_t_invariant net) x) tinvs)
  in
  Cmd.v
    (Cmd.info "reach" ~doc:"Untimed analysis: boundedness, reachability, invariants.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- analyze (concrete) ----- *)

let throughput_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "t"; "throughput" ] ~docv:"TRANS"
        ~doc:"Report the completion rate of this transition (repeatable).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit a versioned JSON document (\"schema\": 1) instead of the human report.")

let analyze_cmd =
  let run () file model max_states throughputs json =
    if json then
      with_canonical file model (fun c ->
          match Tpan.Artifact.analysis ~max_states ~throughputs c with
          | Ok report ->
            let report = { report with Tpan.Analysis.model } in
            print_doc ~kind:"analysis"
              ~legacy:(lazy (Tpan.Analysis.report_to_json report))
              (lazy (Tpan.Analysis.report_fields report))
          | Error e -> fail e)
    else
    with_net file model (fun tpn ->
        let g = CG.build ~max_states ~on_progress:(progress "TRG") tpn in
        Format.printf "timed reachability graph: %d states, %d edges@." (CG.Graph.num_states g)
          (CG.Graph.num_edges g);
        (match M.Concrete.analyze g with
         | res ->
           Format.printf "%a@."
             (DG.pp ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6))
             res.Rates.dg;
           Format.printf "mean cycle time: %s@." (qf res.Rates.total_weight);
           List.iter
             (fun name ->
               let thr = M.Concrete.throughput res g name in
               Format.printf "throughput(%s): %s per time unit (period %s)@." name (qf thr)
                 (qf (Q.inv thr)))
             throughputs
         | exception Rates.Unsolvable msg -> Format.printf "steady state: %s@." msg
         | exception DG.Deterministic_cycle _ ->
           (match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
            | Some (cycle, states) ->
              Format.printf "deterministic cycle through %d states, period %s@."
                (List.length states) (qf cycle)
            | None -> Format.printf "terminates (no steady state)@."));
        Format.print_flush ())
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Concrete timed analysis: TRG, decision graph, throughput.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ throughput_arg $ json_arg)

(* ----- symbolic ----- *)

let symbolic_cmd =
  let run () file model max_states throughputs point =
    with_net file model (fun tpn ->
        let g = SG.build ~max_states ~on_progress:(progress "symbolic TRG") tpn in
        Format.printf "symbolic timed reachability graph: %d states, %d edges@."
          (SG.Graph.num_states g) (SG.Graph.num_edges g);
        let audit = SG.constraint_audit g in
        if audit <> [] then begin
          Format.printf "constraints used to order minima (cf. paper Figure 7):@.";
          List.iter
            (fun (s, d, labels) ->
              Format.printf "  %d -> %d: %s@." (s + 1) (d + 1) (String.concat ", " labels))
            audit
        end;
        let res = M.Symbolic.analyze g in
        Format.printf "%a@." (DG.pp ~pp_delay:Lin.pp ~pp_prob:Rf.pp) res.Rates.dg;
        List.iter
          (fun (re : _ Rates.rated_edge) ->
            Format.printf "rate: %a@." Rf.pp re.Rates.rate)
          res.Rates.edge_rate;
        let bindings =
          List.map
            (fun (k, v) -> (k, Q.of_decimal_string v))
            point
        in
        List.iter
          (fun name ->
            let thr = M.Symbolic.throughput res g name in
            Format.printf "throughput(%s) = %a@." name Rf.pp thr;
            if bindings <> [] then begin
              match M.Symbolic.eval_at thr bindings with
              | v -> Format.printf "  at the given point: %s@." (qf v)
              | exception Not_found ->
                Format.printf "  (point incomplete: missing variable bindings)@."
            end)
          throughputs;
        Format.print_flush ())
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Bind a symbol, e.g. -p 'E(t3)=1000' (repeatable); used to evaluate expressions.")
  in
  Cmd.v
    (Cmd.info "symbolic" ~doc:"Symbolic analysis: expressions for rates and throughput.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ throughput_arg $ point_arg)

(* ----- simulate ----- *)

let simulate_cmd =
  let run () file model horizon seed runs throughputs point json =
    with_net file model (fun tpn ->
        let horizon = Q.of_decimal_string horizon in
        (* a symbolic net can be simulated once its symbols are bound *)
        let tpn =
          if point = [] then tpn
          else Tpn.bind_times tpn (List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point)
        in
        let c = canonicalize tpn in
        (* Single run: one trajectory. Replications fan the runs out over
           the worker pool ([-j]); the estimate is bit-identical at any
           jobs count — which is what makes the summary cacheable. *)
        match Tpan.Artifact.simulate ~seed ~runs ~horizon ~transitions:throughputs c with
        | Error e -> fail e
        | Ok summary ->
          if json then
            print_doc ~kind:"simulation"
              ~legacy:
                (lazy
                  (Obs.Jsonv.Obj
                     (("schema", Obs.Jsonv.Int 1)
                     :: ("kind", Obs.Jsonv.Str "simulation")
                     :: Tpan.Artifact.sim_summary_fields summary)))
              (lazy (Tpan.Artifact.sim_summary_fields summary))
          else
            List.iter
              (fun (name, stat) ->
                match stat with
                | Tpan.Artifact.Single { mean; deadlocked } ->
                  Printf.printf "throughput(%s): %.6g per time unit%s\n" name mean
                    (if deadlocked then " (deadlocked)" else "")
                | Tpan.Artifact.Estimate { mean; std_error; ci95 = lo, hi; runs } ->
                  Printf.printf
                    "throughput(%s): %.6g +/- %.2g (95%%: [%.6g, %.6g], %d runs)\n" name
                    mean (1.96 *. std_error) lo hi runs)
              summary.Tpan.Artifact.throughputs)
  in
  let horizon_arg =
    Arg.(value & opt string "1000000" & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time span.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let runs_arg = Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Replications.") in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Bind a symbolic time/frequency before simulating (repeatable).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo simulation of a (possibly bound-symbolic) net.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ horizon_arg $ seed_arg $ runs_arg $ throughput_arg $ point_arg $ json_arg)

(* ----- latency ----- *)

let latency_cmd =
  let run () file model max_states events point =
    with_net file model (fun tpn ->
        let module P = Tpan_perf.Passage in
        if Tpn.is_concrete tpn then begin
          let g = CG.build ~max_states tpn in
          List.iter
            (fun name ->
              match P.concrete_latency g ~event:(P.completion_event tpn name) () with
              | Some h ->
                Format.printf "mean time to first completion of %s: %s@." name (qf h)
              | None -> Format.printf "latency(%s): infinite (event not almost-surely reached)@." name)
            events
        end
        else begin
          let g = SG.build ~max_states tpn in
          let bindings = List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point in
          List.iter
            (fun name ->
              match P.symbolic_latency g ~event:(P.completion_event tpn name) () with
              | Some h ->
                Format.printf "latency(%s) = %a@." name Rf.pp h;
                if bindings <> [] then begin
                  match M.Symbolic.eval_at h bindings with
                  | v -> Format.printf "  at the given point: %s@." (qf v)
                  | exception Not_found -> Format.printf "  (point incomplete)@."
                end
              | None -> Format.printf "latency(%s): infinite@." name)
            events
        end;
        Format.print_flush ())
  in
  let event_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "event" ] ~docv:"TRANS" ~doc:"Completion event of interest (repeatable).")
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE" ~doc:"Bind a symbol for evaluation (repeatable).")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Mean first-passage time to a transition's completion.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ event_arg $ point_arg)

(* ----- sweep ----- *)

(* The sweep engine has two evaluation paths:

   - a concrete built-in model: each grid point rebuilds the net with the
     axis parameters overridden and runs the full exact analysis — points
     are independent, so they fan out over the worker pool;
   - a symbolic net: the closed-form throughput is derived once and merely
     evaluated per point (the paper's argument for symbolic derivation).

   Either way the grid is row-major and results land in input order, so
   the table (and its CSV/JSON renderings) is byte-identical for any -j. *)
let sweep_cmd =
  let module Sweep = Tpan_perf.Sweep in
  let run () file model max_states trans vary point csv json =
    handle_errors @@ fun () ->
    let axes =
      List.map
        (fun spec ->
          match Sweep.parse_axis spec with Ok a -> a | Error msg -> fail_input msg)
        vary
    in
    if axes = [] then fail_input "give at least one --vary NAME=LO..HI:STEPS";
    let bindings = List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point in
    let table =
      match model with
      | Some name when (match Tpan.Models.find name with
                        | Some m -> m.Tpan.Models.params <> []
                        | None -> false) ->
        (* concrete built-in: axes are model parameters *)
        let m = Option.get (Tpan.Models.find name) in
        List.iter
          (fun (a : Sweep.axis) ->
            if not (List.mem_assoc a.Sweep.name m.Tpan.Models.params) then
              fail_input
                (Printf.sprintf "model %s has no parameter %S (available: %s)" name
                   a.Sweep.name
                   (String.concat ", " (List.map fst m.Tpan.Models.params))))
          axes;
        if bindings <> [] then
          fail_input "-p binds symbols of a symbolic net; concrete sweeps take axes only";
        let throughputs = if trans = [] then m.Tpan.Models.deliveries else trans in
        Sweep.over_tpn ~max_states
          ~make:(fun pt -> m.Tpan.Models.make pt)
          ~throughputs axes
      | _ ->
        (* symbolic path: the closed forms come from the artifact cache
           (derived once per net hash), then evaluate per point *)
        with_net file model @@ fun tpn ->
        if Tpn.is_concrete tpn then
          fail_input
            "sweeping a concrete net needs a built-in model (--model NAME) so axes can \
             name its parameters; for a .tpn file use its symbolic variant"
        else begin
          if trans = [] then
            fail_input "give at least one -t TRANS to sweep a symbolic throughput";
          let c = canonicalize tpn in
          match
            Tpan.Artifact.sweep_exprs ~max_states c ~transitions:trans ~bindings ~axes
          with
          | Ok table -> table
          | Error e -> fail e
        end
    in
    if json then
      print_doc ~kind:"sweep"
        ~legacy:(lazy (Sweep.to_json table))
        (lazy (fields_of_legacy (Sweep.to_json table)))
    else if csv then print_string (Sweep.to_csv table)
    else Format.printf "%a@?" Sweep.pp table
  in
  let trans_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "t"; "throughput" ] ~docv:"TRANS"
          ~doc:
            "Transition whose completion rate to tabulate (repeatable; defaults to the \
             model's delivery transitions).")
  in
  let vary_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "vary" ] ~docv:"NAME=LO..HI:STEPS"
          ~doc:
            "Sweep axis, e.g. --vary timeout=80..200:8 (repeatable; several axes form \
             their cartesian grid). For a concrete model NAME is a parameter; for a \
             symbolic net it is a symbol such as 'E(t3)'.")
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Fix the non-swept symbols of a symbolic net (repeatable).")
  in
  let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Tabulate throughput over a parameter grid, in parallel (-j); identical output \
          for any jobs count.")
    Term.(
      const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ trans_arg $ vary_arg
      $ point_arg $ csv_arg $ json_arg)

(* ----- check ----- *)

let check_static max_states tpn =
        let net = Tpn.net tpn in
        Format.printf "net class: %a@." Tpan_petri.Classify.pp (Tpan_petri.Classify.classify net);
        let consistent = Tpan_symbolic.Constraints.is_consistent (Tpn.constraints tpn) in
        Format.printf "timing constraints: %s@."
          (if consistent then "consistent" else "INCONSISTENT");
        (match Tpan_petri.Siphons.unmarked_siphons net with
         | [] -> Format.printf "siphons: none initially empty@."
         | l ->
           List.iter
             (fun s ->
               Format.printf "WARNING: initially-empty siphon {%s} (its consumers are dead)@."
                 (String.concat ", " (List.map (Net.place_name net) s)))
             l);
        if Tpan_petri.Siphons.commoner_satisfied net then
          Format.printf "commoner: every minimal siphon holds a marked trap@."
        else
          Format.printf
            "commoner: some siphon lacks a marked trap (possible deadlock; decisive only for free-choice nets)@.";
        if Tpn.is_concrete tpn then begin
          match CG.build ~max_states tpn with
          | g ->
            let safe =
              Array.for_all
                (fun st -> Array.for_all (fun k -> k <= 1) st.Sem.marking)
                g.Sem.states
            in
            Format.printf "timed behaviour: %d states, %s, %d terminal state(s)@."
              (CG.Graph.num_states g)
              (if safe then "safe (1-bounded)" else "NOT safe")
              (List.length (CG.Graph.terminal_states g))
          | exception Tpn.Unsupported msg -> Format.printf "timed behaviour: UNSUPPORTED (%s)@." msg
        end
        else begin
          match SG.build ~max_states tpn with
          | g -> Format.printf "symbolic behaviour: %d states, constraints sufficient@."
                   (SG.Graph.num_states g)
          | exception SG.Insufficient { hint; _ } ->
            Format.printf "symbolic behaviour: INSUFFICIENT CONSTRAINTS — %s@." hint
        end;
        Format.print_flush ()

let check_cmd =
  let module CK = Tpan.Checker.Check in
  let module GN = Tpan.Checker.Gen in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Three-way differential check: the closed-form throughput, the floating-point \
             Markov solution and Monte-Carlo simulation must agree at sampled points of \
             the constraint region.")
  in
  let random_arg =
    Arg.(
      value & opt int 0
      & info [ "random" ] ~docv:"N"
          ~doc:
            "Fuzz the pipeline: generate $(docv) random stop-and-wait-family nets and \
             differentially check each (no file/--model).")
  in
  let samples_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ] ~docv:"N" ~doc:"Constraint-region points per symbolic net.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Master seed for net generation, point sampling and simulation.")
  in
  let runs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "runs" ] ~docv:"N" ~doc:"Simulation replications per point.")
  in
  let delivery_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "delivery" ] ~docv:"TRANS"
          ~doc:
            "Transition whose completion rate is compared (default: the model registry's \
             delivery, or the zero-frequency-conflict heuristic).")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Reduced sample/replication counts (the CI tier-2 gate).")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "reproducer" ] ~docv:"FILE"
          ~doc:"On disagreement, write the minimized reproducer snippet(s) to $(docv).")
  in
  let write_reproducers repro outcomes =
    match repro with
    | None -> ()
    | Some path ->
      let snippets =
        List.concat_map
          (fun (o : CK.outcome) -> List.map (fun f -> f.CK.reproducer) o.CK.failures)
          outcomes
      in
      if snippets <> [] then begin
        let oc = open_out path in
        output_string oc (String.concat "\n" snippets);
        close_out oc
      end
  in
  let config_of max_states samples seed runs quick =
    let c = { CK.default with CK.seed; max_states = Some max_states } in
    let c = match samples with Some s -> { c with CK.samples = s } | None -> c in
    let c = match runs with Some r -> { c with CK.runs = r } | None -> c in
    if quick then CK.quick c else c
  in
  let run () file model max_states diff random samples seed runs delivery quick json repro
      =
    let config = config_of max_states samples seed runs quick in
    if random > 0 then begin
      if file <> None || model <> None then
        fail_input "--random generates its own nets; drop the file/--model";
      handle_errors (fun () ->
          (* Under --deadline, the budget applies per generated case, not to
             the whole fuzz run: a pathological net aborts at its next
             checkpoint and is recorded, and the remaining cases proceed.
             Re-scope the ambient context to one without a deadline (same
             trace id) so the global token can't kill the driver loop. *)
          let case_budget = Option.bind (Obs.Context.token ()) Obs.Cancel.budget in
          let config = { config with CK.deadline = case_budget } in
          let fuzz_ctx = Obs.Context.make ?trace_id:(Obs.Context.trace_id ()) () in
          let results =
            Obs.Context.with_ctx fuzz_ctx (fun () -> CK.fuzz ~config ~cases:random ())
          in
          let outcomes = List.filter_map (fun (_, r) -> Result.to_option r) results in
          let errored =
            List.filter_map
              (fun (c, r) -> match r with Error e -> Some (c, e) | Ok _ -> None)
              results
          in
          let timeouts, errors =
            List.partition
              (fun (_, e) ->
                match e with Tpan.Error.Deadline_exceeded _ -> true | _ -> false)
              errored
          in
          let failed = List.filter (fun o -> not (CK.ok o)) outcomes in
          let summary_fields =
              [
                ("cases", Obs.Jsonv.Int random);
                ("seed", Obs.Jsonv.Int seed);
                ("disagreeing", Obs.Jsonv.Int (List.length failed));
                ("errored", Obs.Jsonv.Int (List.length errors));
                ("timed_out", Obs.Jsonv.Int (List.length timeouts));
                ( "outcomes",
                  Obs.Jsonv.List (List.map CK.outcome_to_json outcomes) );
                ( "errors",
                  Obs.Jsonv.List
                    (List.map
                       (fun ((c : GN.case), e) ->
                         Obs.Jsonv.Obj
                           [
                             ("case", Obs.Jsonv.Str (Printf.sprintf "gen%d" c.GN.seed));
                             ("error", Obs.Jsonv.Str (Tpan.Error.to_string e));
                           ])
                       errored) );
              ]
          in
          let summary =
            Obs.Jsonv.Obj
              (("schema", Obs.Jsonv.Int 1)
              :: ("kind", Obs.Jsonv.Str "check-fuzz")
              :: summary_fields)
          in
          last_report := Some summary;
          write_reproducers repro outcomes;
          if json then
            print_doc ~kind:"check-fuzz" ~legacy:(lazy summary) (lazy summary_fields)
          else begin
            List.iter
              (fun ((c : GN.case), r) ->
                match r with
                | Ok o -> Format.printf "%a  [%s]@." CK.pp_outcome o c.GN.description
                | Error e ->
                  Format.printf "gen%d: ERROR %s  [%s]@." c.GN.seed
                    (Tpan.Error.to_string e) c.GN.description)
              results;
            Format.printf "fuzz: %d cases, %d disagreeing, %d errored, %d timed out@."
              random (List.length failed) (List.length errors) (List.length timeouts)
          end;
          (* Timed-out cases are skipped, not failures: fuzzing over random
             nets must survive the occasional pathological case. *)
          if failed <> [] || errors <> [] then quit 1)
    end
    else if diff then
      handle_errors (fun () ->
          (* canonicalize up front so the schema-2 envelope names the net *)
          (match Tpan.Analysis.load (source_of file model) with
           | Ok tpn -> ignore (canonicalize tpn)
           | Error _ -> ());
          match Tpan.Checker.check_source ~config ?delivery (source_of file model) with
          | Error e -> fail e
          | Ok o ->
            last_report := Some (CK.outcome_to_json o);
            write_reproducers repro [ o ];
            if json then
              print_doc ~kind:"check"
                ~legacy:(lazy (CK.outcome_to_json o))
                (lazy (fields_of_legacy (CK.outcome_to_json o)))
            else Format.printf "%a@." CK.pp_outcome o;
            if not (CK.ok o) then quit 1)
    else with_net file model (check_static max_states)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a model: net class, constraints, siphons, timed safety. With \
          $(b,--diff) or $(b,--random), run the three-way differential checker \
          (exact = numeric = simulated throughput).")
    Term.(
      const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ diff_arg $ random_arg
      $ samples_arg $ seed_arg $ runs_arg $ delivery_arg $ quick_arg $ json_arg $ repro_arg)

(* ----- report ----- *)

let report_cmd =
  let run () file model max_states events =
    with_net file model (fun tpn ->
        if Tpn.is_concrete tpn then
          Tpan_perf.Report.concrete ~max_states ~events Format.std_formatter tpn
        else Tpan_perf.Report.symbolic ~max_states ~events Format.std_formatter tpn;
        Format.print_flush ())
  in
  let event_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "event" ] ~docv:"TRANS"
          ~doc:"Also report the first-passage latency to this transition's completion.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full analysis report: structure, invariants, siphons, steady state, latencies.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ event_arg)

(* ----- profile ----- *)

let profile_cmd =
  let run () file model max_states =
    with_net file model (fun tpn ->
        Obs.Trace.set_enabled true;
        let concrete = Tpn.is_concrete tpn in
        (* Run the full analyze pipeline; a net without a steady state still
           yields a breakdown of the stages that did run. *)
        let states, edges, note =
          if concrete then begin
            let g = CG.build ~max_states ~on_progress:(progress "TRG build") tpn in
            let note =
              match M.Concrete.analyze g with
              | (_ : M.Concrete.result) -> None
              | exception Rates.Unsolvable msg -> Some msg
              | exception DG.Deterministic_cycle _ ->
                Some "deterministic from some decision node on (no rate solve)"
            in
            (CG.Graph.num_states g, CG.Graph.num_edges g, note)
          end
          else begin
            let g = SG.build ~max_states ~on_progress:(progress "TRG build") tpn in
            let note =
              match M.Symbolic.analyze g with
              | (_ : M.Symbolic.result) -> None
              | exception Rates.Unsolvable msg -> Some msg
              | exception DG.Deterministic_cycle _ ->
                Some "deterministic from some decision node on (no rate solve)"
            in
            (SG.Graph.num_states g, SG.Graph.num_edges g, note)
          end
        in
        let ms name = Obs.Trace.total_duration name *. 1000. in
        let cnt = Obs.Metrics.counter_value in
        let gauge name =
          match Obs.Metrics.find name with Some (Obs.Metrics.Gauge_v v) -> int_of_float v | _ -> 0
        in
        Printf.printf "profile (%s pipeline, %d states, %d edges)\n\n"
          (if concrete then "concrete" else "symbolic")
          states edges;
        Printf.printf "%-26s %12s  %s\n" "stage" "time (ms)" "counters";
        Printf.printf "%-26s %12.3f  states=%d edges=%d frontier_peak=%d\n" "TRG build"
          (ms (if concrete then "concrete.build" else "symbolic.build"))
          (cnt "core.semantics.states_interned")
          (cnt "core.semantics.edges")
          (gauge "core.semantics.frontier_peak");
        Printf.printf "%-26s %12s  queries=%d trivial=%d memo_hits=%d witness_refutations=%d\n"
          "oracle queries" "-"
          (cnt "symbolic.oracle.queries")
          (cnt "symbolic.oracle.trivial")
          (cnt "symbolic.oracle.memo_hits")
          (cnt "symbolic.oracle.witness_refutations");
        Printf.printf "%-26s %12s  eliminations=%d constraints_pruned=%d feasible_checks=%d\n"
          "FM eliminations" "-"
          (cnt "mathkit.fm.eliminations")
          (cnt "mathkit.fm.constraints_pruned")
          (cnt "mathkit.fm.feasible_checks");
        Printf.printf "%-26s %12.3f  nodes=%d edges=%d states_collapsed=%d\n"
          "decision-graph collapse"
          (ms "decision_graph.collapse")
          (cnt "perf.decision_graph.nodes")
          (cnt "perf.decision_graph.edges")
          (cnt "perf.decision_graph.states_collapsed");
        Printf.printf "%-26s %12.3f  solves=%d\n" "rate solve" (ms "rates.solve")
          (cnt "perf.rates.solves");
        Printf.printf "%-26s %12s  poly=%d ratfun=%d\n" "hash-consing (this domain)" "-"
          (Tpan_symbolic.Poly.interned ())
          (Tpan_symbolic.Ratfun.interned ());
        (match Obs.Metrics.find "par.pool.worker_minor_words" with
        | Some (Obs.Metrics.Histogram_v { count; sum; max; _ }) when count > 0 ->
          let major =
            match Obs.Metrics.find "par.pool.worker_major_words" with
            | Some (Obs.Metrics.Histogram_v h) -> h.sum
            | _ -> 0.
          in
          Printf.printf "%-26s %12s  workers=%d minor_words=%.3e (max %.3e) major_words=%.3e\n"
            "worker allocation" "-" count sum max major
        | _ -> ());
        (match note with
         | Some msg -> Printf.printf "\nnote: steady-state analysis stopped early: %s\n" msg
         | None -> ());
        Printf.printf "\nspan tree:\n";
        Format.printf "%a@." Obs.Trace.pp_tree ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the full analyze pipeline and print a per-stage time/count breakdown.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- dot ----- *)

let dot_cmd =
  let run () file model what max_states =
    with_net file model (fun tpn ->
        match what with
        | "net" -> print_string (Tpan_petri.Dot.net_to_dot (Tpn.net tpn))
        | "trg" -> print_string (CG.to_dot (CG.build ~max_states tpn))
        | "strg" -> print_string (SG.to_dot (SG.build ~max_states tpn))
        | "reach" ->
          print_string
            (Tpan_petri.Dot.reachability_to_dot (Reach.explore ~max_states (Tpn.net tpn)))
        | "dg" ->
          let g = CG.build ~max_states tpn in
          let dg = DG.of_graph ~add:Q.add ~mul:Q.mul g in
          print_string
            (DG.to_dot ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6) dg)
        | other ->
          Printf.eprintf "unknown graph %S (net, trg, strg, reach, dg)\n" other;
          quit 2)
  in
  let what_arg =
    Arg.(
      value & opt string "net"
      & info [ "g"; "graph" ] ~docv:"KIND" ~doc:"Which graph: net, trg, strg, reach or dg (decision graph).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for the net or its graphs.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ what_arg $ max_states_arg)

(* ----- metrics ----- *)

let metrics_cmd =
  let run () file model max_states =
    (* With a net given, run the facade pipeline first so the registry
       holds that run's numbers; bare [tpan metrics] exposes whatever the
       registry holds at startup (registered metrics, zero values). *)
    (match (file, model) with
     | None, None -> ()
     | _ ->
       Obs.Metrics.set_timing true;
       with_canonical file model (fun c ->
           match Tpan.Artifact.analysis ~max_states c with
           | Ok _ -> ()
           | Error e -> fail e));
    let format = match !metrics_fmt_opt with Some f -> f | None -> Fmt_openmetrics in
    print_string (metrics_string format ~all:!metrics_all)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Print the metrics registry to stdout — OpenMetrics text by default \
          (--metrics-format picks table or json). With a net, analyze it first so the \
          metrics describe that run.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- runs (ledger query) ----- *)

let runs_cmd =
  let run () last json stats dir =
    let dir = match dir with Some d -> d | None -> Obs.Ledger.default_dir () in
    match Obs.Ledger.load ~dir () with
    | Error msg -> fail (Tpan.Error.Io_error msg)
    | Ok records when stats ->
      let s = Obs.Ledger.stats records in
      if json then print_json (Obs.Ledger.stats_to_json s)
      else Format.printf "%a@?" Obs.Ledger.pp_stats s
    | Ok records ->
      let shown =
        match last with
        | Some n when n >= 0 ->
          let total = List.length records in
          if total <= n then records else List.filteri (fun i _ -> i >= total - n) records
        | _ -> records
      in
      if json then print_json (Obs.Jsonv.List (List.map Obs.Ledger.to_json shown))
      else begin
        Printf.printf "%-19s  %-8s  %-10s  %4s  %9s  %s\n" "when" "version" "subcommand"
          "exit" "time (s)" "model";
        List.iter
          (fun (r : Obs.Ledger.record) ->
            let tm = Unix.localtime r.Obs.Ledger.timestamp in
            Printf.printf "%04d-%02d-%02d %02d:%02d:%02d  %-8s  %-10s  %4d  %9.3f  %s\n"
              (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour
              tm.Unix.tm_min tm.Unix.tm_sec r.Obs.Ledger.version r.Obs.Ledger.subcommand
              r.Obs.Ledger.exit_code r.Obs.Ledger.duration
              (match r.Obs.Ledger.model with Some m -> m | None -> "-"))
          shown;
        Printf.printf "%d of %d run(s)\n" (List.length shown) (List.length records)
      end
  in
  let last_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "last" ] ~docv:"N" ~doc:"Show only the N most recent runs.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the records as a JSON array.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Aggregate instead of listing: run counts and p50/p95 wall time per \
             subcommand and per pipeline stage, plus the exit-code breakdown \
             (combines with $(b,--json)).")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Ledger directory; default $(b,.tpan) or \\$TPAN_DIR.")
  in
  Cmd.v
    (Cmd.info "runs" ~doc:"Query the run ledger written by --ledger.")
    Term.(const run $ obs_term $ last_arg $ json_arg $ stats_arg $ dir_arg)

(* ----- bench-diff ----- *)

let bench_diff_cmd =
  let module BD = Obs.Bench_diff in
  let run () base cur warn fail_at warn_only json =
    match (BD.load_file base, BD.load_file cur) with
    | Error msg, _ -> fail (Tpan.Error.Io_error (base ^ ": " ^ msg))
    | _, Error msg -> fail (Tpan.Error.Io_error (cur ^ ": " ^ msg))
    | Ok baseline, Ok current ->
      let report = BD.compare_figures ~warn ~fail:fail_at ~baseline ~current () in
      if json then print_json (BD.report_to_json report)
      else Format.printf "%a@?" BD.pp_report report;
      (match report.BD.worst with
       | BD.Fail_v when not warn_only ->
         Printf.eprintf "bench-diff: regression beyond the %gx fail threshold\n" fail_at;
         quit 1
       | _ -> quit 0)
  in
  let base_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE.json" ~doc:"Stored baseline BENCH_tpan.json.")
  in
  let cur_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT.json" ~doc:"Fresh BENCH_tpan.json to compare.")
  in
  let warn_arg =
    Arg.(
      value
      & opt float BD.default_warn
      & info [ "warn" ] ~docv:"RATIO" ~doc:"Warn threshold on current/baseline ratios.")
  in
  let fail_arg =
    Arg.(
      value
      & opt float BD.default_fail
      & info [ "fail" ] ~docv:"RATIO" ~doc:"Fail threshold on current/baseline ratios.")
  in
  let warn_only_arg =
    Arg.(
      value & flag
      & info [ "warn-only" ] ~doc:"Report regressions but always exit 0 (CI smoke mode).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the comparison as JSON.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_tpan.json documents per figure (wall time and GC major \
          words); exit 1 when any ratio crosses the fail threshold.")
    Term.(
      const run $ obs_term $ base_arg $ cur_arg $ warn_arg $ fail_arg $ warn_only_arg
      $ json_arg)

(* ----- top (flight-recorder viewer) ----- *)

(* --attach: render a running server's /statusz and /tracez instead of
   a flight file. The server answers plain JSON; all shaping happens
   here so the endpoints stay machine-first. *)
let attach_fetch base path =
  let base =
    let n = String.length base in
    if n > 0 && base.[n - 1] = '/' then String.sub base 0 (n - 1) else base
  in
  match Tpan_serve.Client.get (base ^ path) with
  | Ok (200, body) -> (
    match J.of_string body with
    | Ok doc -> Ok doc
    | Error e -> Error (path ^ ": bad JSON: " ^ e))
  | Ok (status, _) -> Error (Printf.sprintf "%s: HTTP %d" path status)
  | Error e -> Error (path ^ ": " ^ e)

let attach_render statusz tracez =
  let str path doc =
    match Option.bind (J.member path doc) J.to_string_opt with
    | Some s -> s
    | None -> "-"
  in
  let num path doc = Option.bind (J.member path doc) J.to_float_opt in
  let int_at path doc =
    match Option.bind (J.member path doc) J.to_int_opt with Some n -> n | None -> 0
  in
  let list_at path doc =
    match Option.bind (J.member path doc) J.to_list_opt with Some l -> l | None -> []
  in
  Printf.printf "tpan serve %s  pid %d  uptime %.1fs\n" (str "version" statusz)
    (int_at "pid" statusz)
    (match num "uptime_s" statusz with Some u -> u | None -> 0.);
  let reqs =
    match J.member "requests" statusz with Some r -> r | None -> J.Obj []
  in
  Printf.printf "requests: %d total, %d errors, %d timeouts, %d in flight\n"
    (int_at "total" reqs) (int_at "errors" reqs) (int_at "timeouts" reqs)
    (int_at "inflight" reqs);
  (match list_at "caches" statusz with
  | [] -> ()
  | caches ->
    Printf.printf "\n%-12s %10s %10s %10s %9s\n" "cache" "hits" "misses" "entries"
      "hit-ratio";
    List.iter
      (fun c ->
        Printf.printf "%-12s %10d %10d %10d %9s\n" (str "kind" c) (int_at "hits" c)
          (int_at "misses" c) (int_at "entries" c)
          (match num "hit_ratio" c with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"))
      caches);
  (match list_at "inflight" statusz with
  | [] -> ()
  | infl ->
    Printf.printf "\nin flight:\n";
    List.iter
      (fun r ->
        Printf.printf "  %-22s %-16s %8.3fs\n" (str "trace_id" r) (str "request" r)
          (match num "age_s" r with Some a -> a | None -> 0.))
      infl);
  (match list_at "methods" tracez with
  | [] -> ()
  | methods ->
    Printf.printf "\ntracez:\n";
    List.iter
      (fun m ->
        let counts =
          List.map
            (fun b -> Printf.sprintf "%s:%d" (str "bucket" b) (int_at "seen" b))
            (list_at "buckets" m)
        in
        let errors =
          match J.member "errors" m with Some e -> int_at "seen" e | None -> 0
        in
        Printf.printf "  %-14s %s errors:%d\n" (str "name" m)
          (String.concat " " counts) errors;
        let slow =
          List.concat_map (fun b -> list_at "entries" b) (list_at "buckets" m)
          |> List.filter (fun e -> J.member "slow" e = Some (J.Bool true))
        in
        List.iter
          (fun e ->
            Printf.printf "    slow %-22s status %d  %.1fms\n" (str "trace_id" e)
              (int_at "status" e)
              (match num "duration_s" e with Some d -> d *. 1000. | None -> 0.))
          slow)
      methods);
  flush stdout

let attach_once url =
  match (attach_fetch url "/statusz", attach_fetch url "/tracez") with
  | Ok statusz, Ok tracez ->
    attach_render statusz tracez;
    Ok ()
  | (Error e, _ | _, Error e) -> Error e

let top_cmd =
  let render f = Format.printf "%a@?" Obs.Dump.pp_frame f in
  let latest frames = List.nth frames (List.length frames - 1) in
  let run () file follow replay interval attach =
    match attach with
    | Some url ->
      let tty = Unix.isatty Unix.stdout in
      let once () =
        match attach_once url with
        | Ok () -> ()
        | Error e -> fail (Tpan.Error.Io_error (url ^ ": " ^ e))
      in
      if follow then
        let rec loop () =
          if tty then print_string "\027[2J\027[H";
          once ();
          Unix.sleepf interval;
          loop ()
        in
        loop ()
      else once ()
    | None ->
    let path = match file with Some p -> p | None -> default_flight_file () in
    if follow then begin
      (* Live view: tail the flight file, re-rendering whenever a frame
         lands. Runs until interrupted. *)
      let tty = Unix.isatty Unix.stdout in
      let rec loop seen =
        let n =
          match Obs.Dump.load path with
          | Error _ | Ok [] ->
            if seen < 0 then Printf.printf "tpan top: waiting for frames in %s\n%!" path;
            0
          | Ok frames ->
            let n = List.length frames in
            if n <> max seen 0 then begin
              if tty then print_string "\027[2J\027[H";
              render (latest frames)
            end;
            n
        in
        Unix.sleepf interval;
        loop n
      in
      loop (-1)
    end
    else
      match Obs.Dump.load path with
      | Error msg -> fail (Tpan.Error.Io_error (path ^ ": " ^ msg))
      | Ok [] -> Printf.printf "tpan top: no frames in %s\n" path
      | Ok frames ->
        if replay then
          List.iteri
            (fun i f ->
              if i > 0 then print_newline ();
              render f)
            frames
        else render (latest frames)
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FLIGHT.ndjson"
          ~doc:"Flight file to view; default $(b,.tpan/flight.ndjson).")
  in
  let follow_arg =
    Arg.(
      value & flag
      & info [ "follow"; "f" ] ~doc:"Keep watching the file and re-render new frames.")
  in
  let replay_arg =
    Arg.(
      value & flag
      & info [ "replay" ] ~doc:"Render every recorded frame in order, not just the last.")
  in
  let interval_arg =
    Arg.(
      value
      & opt float 0.5
      & info [ "interval" ] ~docv:"SECS" ~doc:"Polling interval for --follow.")
  in
  let attach_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "attach" ] ~docv:"URL"
          ~doc:
            "Render a running server's $(b,/statusz) and $(b,/tracez) instead of a \
             flight file (e.g. $(b,http://127.0.0.1:8080)); combine with \
             $(b,--follow) for a live view.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Inspect a running (or finished) analysis from its flight-recorder file: active \
          span stacks per domain, progress counters, heartbeats, GC. Pair with --watchdog \
          on the analysis side; --follow tails live. With --attach, show a running \
          tpan serve instead.")
    Term.(
      const run $ obs_term $ file_arg $ follow_arg $ replay_arg $ interval_arg
      $ attach_arg)

(* ----- serve ----- *)

(* The server owns its flag set instead of [obs_term]: the per-process
   --deadline/--watchdog machinery is wrong for a long-running process —
   here --deadline is a per-request budget, minted into each request's
   context by the handler. *)
let serve_cmd =
  let run host port socket deadline jobs log_level cache_mb cache_dir max_states
      no_telemetry slow_ms access_log flight no_ledger ledger_dir workers
      max_requests_per_conn idle_timeout max_inflight max_conns warm =
    handle_errors (fun () ->
        (match jobs with
         | None -> ()
         | Some 0 -> Tpan_par.Pool.set_default_jobs (Tpan_par.Pool.recommended_jobs ())
         | Some n when n > 0 -> Tpan_par.Pool.set_default_jobs n
         | Some _ -> fail_input "-j expects a non-negative jobs count (0 = auto)");
        (match log_level with
         | None -> ()
         | Some s -> Obs.Log.set_sinks [ (parse_level s, Obs.Log.stderr_sink) ]);
        (* Per-request span trees feed /tracez and the per-endpoint
           stage breakdown; the retention cap keeps the shared trace
           buffer from growing without bound between requests. *)
        if no_telemetry then Obs.Metrics.set_timing true
        else begin
          Obs.Trace.set_enabled true;
          Obs.Trace.set_retention 4096
        end;
        Tpan.Artifact.configure
          ?budget_bytes:(Option.map (fun mb -> mb * 1024 * 1024) cache_mb)
          ?persist_dir:cache_dir ();
        let config =
          {
            Tpan_serve.Serve.default_config with
            Tpan_serve.Serve.host;
            port = (if port < 0 then None else Some port);
            socket_path = socket;
            deadline = Option.map parse_duration deadline;
            max_states = Some max_states;
            telemetry = not no_telemetry;
            slow_ms;
            flight_path = Some (match flight with Some p -> p | None -> default_flight_file ());
            access_log;
            ledger_dir =
              (if no_ledger then None
               else
                 Some (match ledger_dir with Some d -> d | None -> Obs.Ledger.default_dir ()));
            workers =
              (match workers with
              | 0 -> Tpan_par.Pool.recommended_jobs ()
              | n when n > 0 -> n
              | _ -> fail_input "--workers expects a non-negative count (0 = auto)");
            max_requests_per_conn;
            idle_timeout;
            max_inflight;
            max_conns =
              (if max_conns >= 1 then max_conns
               else fail_input "--max-conns expects a positive count");
            warm =
              (match warm with
              | None -> []
              | Some s ->
                List.filter (fun m -> m <> "")
                  (List.map String.trim (String.split_on_char ',' s)));
          }
        in
        Tpan_serve.Serve.run
          ~ready:(fun bound ->
            match bound with
            | Some p -> Printf.printf "tpan serve: listening on http://%s:%d\n%!" host p
            | None -> Printf.printf "tpan serve: listening\n%!")
          config)
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"IP" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port ($(b,0) picks an ephemeral one, announced on stdout; $(b,-1) \
                disables TCP, e.g. with --socket).")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Also listen on a Unix-domain socket.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "deadline" ] ~docv:"DUR"
          ~doc:
            "Per-request budget (e.g. $(b,500ms), $(b,5s)): a request that exceeds it is \
             aborted cooperatively and answered with HTTP 504 (exit-code 6 semantics in \
             the envelope).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains for sweeps (0 = auto).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Print structured log records at $(docv) and above to stderr.")
  in
  let cache_budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-budget" ] ~docv:"MIB"
          ~doc:"Artifact-cache byte budget per artifact kind (default 128 MiB).")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist artifacts (closed forms, concrete TRGs, reports, point \
             evaluations) as NDJSON under $(docv) (e.g. $(b,.tpan/cache)); a restarted \
             server replays every kind and skips the rebuilds.")
  in
  let no_telemetry_arg =
    Arg.(
      value & flag
      & info [ "no-telemetry" ]
          ~doc:
            "Disable the request telemetry plane (per-endpoint RED metrics, /tracez \
             recording, in-flight tracking, access log, per-request ledger rows).")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-request threshold: requests at or above $(docv) milliseconds are \
             flagged in /tracez and snapshot a flight-recorder dump scoped to their \
             trace id (see --flight and $(b,tpan top)).")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH"
          ~doc:
            "Append one NDJSON record per request (trace id, endpoint, status, exit \
             code, latency, sizes, net hash, per-artifact cache hits/misses, deadline \
             budget consumed) to $(docv).")
  in
  let flight_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"PATH"
          ~doc:
            "Where slow-request dump frames land; default $(b,.tpan/flight.ndjson) \
             (or \\$TPAN_DIR/flight.ndjson).")
  in
  let no_ledger_arg =
    Arg.(
      value & flag
      & info [ "no-ledger" ]
          ~doc:"Do not append per-request rows to the run ledger.")
  in
  let ledger_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger-dir" ] ~docv:"DIR"
          ~doc:
            "Run-ledger directory for per-request rows (subcommand \
             $(b,serve:<endpoint>), queried by $(b,tpan runs --stats)); default \
             $(b,.tpan) or \\$TPAN_DIR.")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Accept-loop worker domains ($(b,0) = auto). With more than one, TCP \
             listeners use SO_REUSEPORT for kernel-balanced accepts where available; \
             otherwise the workers share the listeners under an accept mutex. Each \
             worker reports $(b,worker)-labelled request counters and a heartbeat in \
             /statusz.")
  in
  let max_requests_per_conn_arg =
    Arg.(
      value & opt int 1000
      & info
          [ "max-requests-per-conn" ]
          ~docv:"N"
          ~doc:
            "Keep-alive budget: close a connection after serving $(docv) requests \
             ($(b,0) = unlimited).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 30.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close a keep-alive connection idle for $(docv) seconds; the same budget \
             bounds each read inside a request (a mid-body stall answers 408).")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission limit: at most $(docv) POST analyses compute concurrently, up \
             to twice as many queue, and anything beyond is answered \
             $(b,503 + Retry-After). Introspection endpoints never queue.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 32
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent-connection budget: each accepted connection is served on its \
             own domain, up to $(docv) at once. Beyond it a connection is still \
             answered — inline by its accept worker, one request, then a forced \
             $(b,Connection: close) — so keep-alive clients can never starve new \
             arrivals.")
  in
  let warm_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm" ] ~docv:"NET[,NET...]"
          ~doc:
            "Pre-build the named builtin models (reports and concrete TRGs, or closed \
             forms for symbolic models) before announcing ready, so first requests hit \
             a hot cache — with --cache-dir, this also seeds the persisted artifacts.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis service: POST /analyze, /eval, /sweep; GET /metrics, \
          /healthz, /statusz, /tracez. Artifacts are content-addressed and cached, so \
          repeated requests for the same net never rebuild the symbolic reachability \
          graph.")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ deadline_arg $ jobs_arg
      $ log_level_arg $ cache_budget_arg $ cache_dir_arg $ max_states_arg
      $ no_telemetry_arg $ slow_ms_arg $ access_log_arg $ flight_arg $ no_ledger_arg
      $ ledger_dir_arg $ workers_arg $ max_requests_per_conn_arg $ idle_timeout_arg
      $ max_inflight_arg $ max_conns_arg $ warm_arg)

(* ----- version ----- *)

let version_cmd =
  let run () = print_endline Tpan.Version.string in
  Cmd.v
    (Cmd.info "version" ~doc:"Print the build version (also stamped into ledger records).")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "tpan" ~version:Tpan.Version.string
      ~doc:"Performance analysis of communication protocols from Timed Petri Net models"
  in
  quit
    (Cmd.eval
       (Cmd.group info
          [
            show_cmd;
            reach_cmd;
            analyze_cmd;
            symbolic_cmd;
            simulate_cmd;
            sweep_cmd;
            latency_cmd;
            check_cmd;
            report_cmd;
            profile_cmd;
            dot_cmd;
            metrics_cmd;
            runs_cmd;
            top_cmd;
            bench_diff_cmd;
            serve_cmd;
            version_cmd;
          ]))
