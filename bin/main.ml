(* tpan — timed Petri net performance analyzer (command-line front end).

   Subcommands: show, reach, analyze, symbolic, simulate, dot.
   Nets come from a .tpn file or from the built-in protocol models. *)

module Q = Tpan_mathkit.Q
module Net = Tpan_petri.Net
module Reach = Tpan_petri.Reachability
module Cover = Tpan_petri.Coverability
module Inv = Tpan_petri.Invariants
module Lin = Tpan_symbolic.Linexpr
module Rf = Tpan_symbolic.Ratfun
module Tpn = Tpan_core.Tpn
module Sem = Tpan_core.Semantics
module CG = Tpan_core.Concrete
module SG = Tpan_core.Symbolic
module DG = Tpan_perf.Decision_graph
module Rates = Tpan_perf.Rates
module M = Tpan_perf.Measures
module Sim = Tpan_sim.Simulator
module Obs = Tpan_obs

open Cmdliner

(* ----- error reporting -----

   Every analysis failure is a [Tpan.Error.t] value; the CLI's only jobs
   are the human rendering (historical wording kept) and the stable exit
   code, both owned by the facade. *)

let render_error (e : Tpan.Error.t) =
  match e with
  | Unsupported _ | Io_error _ | Invalid_input _ -> "error: " ^ Tpan.Error.to_string e
  | _ -> Tpan.Error.to_string e

let fail err =
  Printf.eprintf "%s\n" (render_error err);
  exit (Tpan.Error.exit_code err)

let fail_input msg = fail (Tpan.Error.Invalid_input msg)

let handle_errors f =
  try f () with
  | e ->
    (match Tpan.Error.of_exn e with
     | Some err -> fail err
     | None -> raise e)

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

(* ----- observability options (shared by every subcommand) ----- *)

let progress_enabled = ref false

let progress label =
  if !progress_enabled then Obs.Progress.stderr_reporter ~label ()
  else fun (_ : int) -> ()

let obs_setup trace_file metrics progress jobs =
  (match jobs with
   | None -> ()
   | Some 0 -> Tpan_par.Pool.set_default_jobs (Tpan_par.Pool.recommended_jobs ())
   | Some n when n > 0 -> Tpan_par.Pool.set_default_jobs n
   | Some _ -> fail_input "-j expects a non-negative jobs count (0 = auto)");
  progress_enabled := progress;
  if metrics then Obs.Metrics.set_timing true;
  if trace_file <> None then Obs.Trace.set_enabled true;
  (match trace_file with
   | None -> ()
   | Some path ->
     at_exit (fun () ->
         try
           let oc = open_out path in
           Obs.Trace.write_ndjson oc;
           close_out oc
         with Sys_error msg -> Printf.eprintf "warning: cannot write trace: %s\n" msg));
  if metrics then at_exit (fun () -> Format.eprintf "@[%a@]@." Obs.Metrics.pp_table ())

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the span log as NDJSON (Chrome-trace events, one per line) to $(docv) on exit.")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print the metrics table to stderr on exit.")
  in
  let progress_arg =
    Arg.(value & flag & info [ "progress" ] ~doc:"Report exploration progress to stderr.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel work (sweeps, replicated simulation, large rate \
             solves). 0 picks the machine's recommended count. Results are identical for \
             any value; default 1.")
  in
  Term.(const obs_setup $ trace_arg $ metrics_arg $ progress_arg $ jobs_arg)

(* ----- common options ----- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.tpn" ~doc:"Net description file.")

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "model" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Built-in model (%s)." (String.concat ", " Tpan.Models.names)))

let max_states_arg =
  Arg.(value & opt int 100_000 & info [ "max-states" ] ~docv:"N" ~doc:"State budget.")

let source_of file model =
  match (file, model) with
  | Some f, None -> Tpan.Analysis.File f
  | None, Some m -> Tpan.Analysis.Builtin m
  | Some _, Some _ -> fail_input "give either a file or --model, not both"
  | None, None -> fail_input "give a .tpn file or --model NAME"

let with_net file model k =
  handle_errors (fun () ->
      match Tpan.Analysis.load (source_of file model) with
      | Ok tpn -> k tpn
      | Error e -> fail e)

(* ----- show ----- *)

let show_cmd =
  let run () file model =
    with_net file model (fun tpn ->
        print_string (Tpan_dsl.Printer.to_string tpn);
        let net = Tpn.net tpn in
        Printf.printf "\n# %d places, %d transitions, %d conflict sets\n" (Net.num_places net)
          (Net.num_transitions net)
          (Array.length (Tpn.conflict_sets tpn));
        Array.iteri
          (fun i ts ->
            if List.length ts > 1 then
              Printf.printf "# conflict set %d: {%s}\n" i
                (String.concat ", " (List.map (Net.trans_name net) ts)))
          (Tpn.conflict_sets tpn))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print the net, its timing table and conflict sets.")
    Term.(const run $ obs_term $ file_arg $ model_arg)

(* ----- reach (untimed analysis) ----- *)

let reach_cmd =
  let run () file model max_states =
    with_net file model (fun tpn ->
        let net = Tpn.net tpn in
        let tree = Cover.build ~max_nodes:max_states ~on_progress:(progress "coverability") net in
        if Cover.is_bounded tree then begin
          let g = Reach.explore ~max_states ~on_progress:(progress "reachability") net in
          Printf.printf "bounded: yes\nstates: %d\nedges: %d\ndeadlocks: %d\nsafe: %b\n"
            (Reach.num_states g) (Reach.num_edges g)
            (List.length (Reach.deadlocks g))
            (Reach.is_safe g)
        end
        else begin
          Printf.printf "bounded: no\nunbounded places: %s\n"
            (String.concat ", "
               (List.map (Net.place_name net) (Cover.unbounded_places tree)));
          Printf.printf "(timed semantics may still be bounded: see 'analyze')\n"
        end;
        let pinvs = Inv.p_invariants net in
        Printf.printf "p-invariants: %d\n" (List.length pinvs);
        List.iter
          (fun y -> Format.printf "  %a = %d@." (Inv.pp_p_invariant net) y
              (Inv.invariant_value y (Net.initial_marking net)))
          pinvs;
        let tinvs = Inv.t_invariants net in
        Printf.printf "t-invariants: %d\n" (List.length tinvs);
        List.iter (fun x -> Format.printf "  %a@." (Inv.pp_t_invariant net) x) tinvs)
  in
  Cmd.v
    (Cmd.info "reach" ~doc:"Untimed analysis: boundedness, reachability, invariants.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- analyze (concrete) ----- *)

let throughput_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "t"; "throughput" ] ~docv:"TRANS"
        ~doc:"Report the completion rate of this transition (repeatable).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit a versioned JSON document (\"schema\": 1) instead of the human report.")

let print_json doc = print_endline (Obs.Jsonv.to_string_hum doc)

let analyze_cmd =
  let run () file model max_states throughputs json =
    if json then
      with_net file model (fun tpn ->
          match Tpan.Analysis.analyze ~max_states ~throughputs tpn with
          | Ok report ->
            let report = { report with Tpan.Analysis.model } in
            print_json (Tpan.Analysis.report_to_json report)
          | Error e -> fail e)
    else
    with_net file model (fun tpn ->
        let g = CG.build ~max_states ~on_progress:(progress "TRG") tpn in
        Format.printf "timed reachability graph: %d states, %d edges@." (CG.Graph.num_states g)
          (CG.Graph.num_edges g);
        (match M.Concrete.analyze g with
         | res ->
           Format.printf "%a@."
             (DG.pp ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6))
             res.Rates.dg;
           Format.printf "mean cycle time: %s@." (qf res.Rates.total_weight);
           List.iter
             (fun name ->
               let thr = M.Concrete.throughput res g name in
               Format.printf "throughput(%s): %s per time unit (period %s)@." name (qf thr)
                 (qf (Q.inv thr)))
             throughputs
         | exception Rates.Unsolvable msg -> Format.printf "steady state: %s@." msg
         | exception DG.Deterministic_cycle _ ->
           (match DG.deterministic_cycle_of_graph ~add:Q.add ~zero:Q.zero g with
            | Some (cycle, states) ->
              Format.printf "deterministic cycle through %d states, period %s@."
                (List.length states) (qf cycle)
            | None -> Format.printf "terminates (no steady state)@."));
        Format.print_flush ())
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Concrete timed analysis: TRG, decision graph, throughput.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ throughput_arg $ json_arg)

(* ----- symbolic ----- *)

let symbolic_cmd =
  let run () file model max_states throughputs point =
    with_net file model (fun tpn ->
        let g = SG.build ~max_states ~on_progress:(progress "symbolic TRG") tpn in
        Format.printf "symbolic timed reachability graph: %d states, %d edges@."
          (SG.Graph.num_states g) (SG.Graph.num_edges g);
        let audit = SG.constraint_audit g in
        if audit <> [] then begin
          Format.printf "constraints used to order minima (cf. paper Figure 7):@.";
          List.iter
            (fun (s, d, labels) ->
              Format.printf "  %d -> %d: %s@." (s + 1) (d + 1) (String.concat ", " labels))
            audit
        end;
        let res = M.Symbolic.analyze g in
        Format.printf "%a@." (DG.pp ~pp_delay:Lin.pp ~pp_prob:Rf.pp) res.Rates.dg;
        List.iter
          (fun (re : _ Rates.rated_edge) ->
            Format.printf "rate: %a@." Rf.pp re.Rates.rate)
          res.Rates.edge_rate;
        let bindings =
          List.map
            (fun (k, v) -> (k, Q.of_decimal_string v))
            point
        in
        List.iter
          (fun name ->
            let thr = M.Symbolic.throughput res g name in
            Format.printf "throughput(%s) = %a@." name Rf.pp thr;
            if bindings <> [] then begin
              match M.Symbolic.eval_at thr bindings with
              | v -> Format.printf "  at the given point: %s@." (qf v)
              | exception Not_found ->
                Format.printf "  (point incomplete: missing variable bindings)@."
            end)
          throughputs;
        Format.print_flush ())
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Bind a symbol, e.g. -p 'E(t3)=1000' (repeatable); used to evaluate expressions.")
  in
  Cmd.v
    (Cmd.info "symbolic" ~doc:"Symbolic analysis: expressions for rates and throughput.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ throughput_arg $ point_arg)

(* ----- simulate ----- *)

let simulate_cmd =
  let run () file model horizon seed runs throughputs point json =
    with_net file model (fun tpn ->
        let horizon = Q.of_decimal_string horizon in
        (* a symbolic net can be simulated once its symbols are bound *)
        let tpn =
          if point = [] then tpn
          else Tpn.bind_times tpn (List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point)
        in
        let net = Tpn.net tpn in
        (* Single run: one trajectory. Replications: [run_many] splits the
           seeds and fans the runs out over the worker pool ([-j]); the
           estimate is bit-identical at any jobs count. *)
        let results =
          List.map
            (fun name ->
              let t = Net.trans_of_name net name in
              if runs <= 1 then begin
                let stats = Sim.run ~seed ~horizon tpn in
                (name, `Single (Sim.throughput stats t, stats.Sim.deadlocked))
              end
              else
                let est = Sim.run_many ~seed ~runs ~horizon tpn (fun s -> Sim.throughput s t) in
                (name, `Estimate est))
            throughputs
        in
        if json then
          print_json
            (Obs.Jsonv.Obj
               [
                 ("schema", Obs.Jsonv.Int 1);
                 ("kind", Obs.Jsonv.Str "simulation");
                 ("horizon", Obs.Jsonv.Raw (qf horizon));
                 ("seed", Obs.Jsonv.Int seed);
                 ("runs", Obs.Jsonv.Int (max 1 runs));
                 ( "throughputs",
                   Obs.Jsonv.Obj
                     (List.map
                        (fun (name, r) ->
                          match r with
                          | `Single (v, deadlocked) ->
                            ( name,
                              Obs.Jsonv.Obj
                                [
                                  ("mean", Obs.Jsonv.Float v);
                                  ("deadlocked", Obs.Jsonv.Bool deadlocked);
                                ] )
                          | `Estimate est ->
                            let lo, hi = est.Sim.ci95 in
                            ( name,
                              Obs.Jsonv.Obj
                                [
                                  ("mean", Obs.Jsonv.Float est.Sim.mean);
                                  ("std_error", Obs.Jsonv.Float est.Sim.std_error);
                                  ( "ci95",
                                    Obs.Jsonv.List [ Obs.Jsonv.Float lo; Obs.Jsonv.Float hi ]
                                  );
                                ] ))
                        results) );
               ])
        else
          List.iter
            (fun (name, r) ->
              match r with
              | `Single (v, deadlocked) ->
                Printf.printf "throughput(%s): %.6g per time unit%s\n" name v
                  (if deadlocked then " (deadlocked)" else "")
              | `Estimate est ->
                let lo, hi = est.Sim.ci95 in
                Printf.printf "throughput(%s): %.6g +/- %.2g (95%%: [%.6g, %.6g], %d runs)\n"
                  name est.Sim.mean (1.96 *. est.Sim.std_error) lo hi est.Sim.runs)
            results)
  in
  let horizon_arg =
    Arg.(value & opt string "1000000" & info [ "horizon" ] ~docv:"T" ~doc:"Simulated time span.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let runs_arg = Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Replications.") in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Bind a symbolic time/frequency before simulating (repeatable).")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo simulation of a (possibly bound-symbolic) net.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ horizon_arg $ seed_arg $ runs_arg $ throughput_arg $ point_arg $ json_arg)

(* ----- latency ----- *)

let latency_cmd =
  let run () file model max_states events point =
    with_net file model (fun tpn ->
        let module P = Tpan_perf.Passage in
        if Tpn.is_concrete tpn then begin
          let g = CG.build ~max_states tpn in
          List.iter
            (fun name ->
              match P.concrete_latency g ~event:(P.completion_event tpn name) () with
              | Some h ->
                Format.printf "mean time to first completion of %s: %s@." name (qf h)
              | None -> Format.printf "latency(%s): infinite (event not almost-surely reached)@." name)
            events
        end
        else begin
          let g = SG.build ~max_states tpn in
          let bindings = List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point in
          List.iter
            (fun name ->
              match P.symbolic_latency g ~event:(P.completion_event tpn name) () with
              | Some h ->
                Format.printf "latency(%s) = %a@." name Rf.pp h;
                if bindings <> [] then begin
                  match M.Symbolic.eval_at h bindings with
                  | v -> Format.printf "  at the given point: %s@." (qf v)
                  | exception Not_found -> Format.printf "  (point incomplete)@."
                end
              | None -> Format.printf "latency(%s): infinite@." name)
            events
        end;
        Format.print_flush ())
  in
  let event_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "event" ] ~docv:"TRANS" ~doc:"Completion event of interest (repeatable).")
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE" ~doc:"Bind a symbol for evaluation (repeatable).")
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Mean first-passage time to a transition's completion.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ event_arg $ point_arg)

(* ----- sweep ----- *)

(* The sweep engine has two evaluation paths:

   - a concrete built-in model: each grid point rebuilds the net with the
     axis parameters overridden and runs the full exact analysis — points
     are independent, so they fan out over the worker pool;
   - a symbolic net: the closed-form throughput is derived once and merely
     evaluated per point (the paper's argument for symbolic derivation).

   Either way the grid is row-major and results land in input order, so
   the table (and its CSV/JSON renderings) is byte-identical for any -j. *)
let sweep_cmd =
  let module Sweep = Tpan_perf.Sweep in
  let run () file model max_states trans vary point csv json =
    handle_errors @@ fun () ->
    let axes =
      List.map
        (fun spec ->
          match Sweep.parse_axis spec with Ok a -> a | Error msg -> fail_input msg)
        vary
    in
    if axes = [] then fail_input "give at least one --vary NAME=LO..HI:STEPS";
    let bindings = List.map (fun (k, v) -> (k, Q.of_decimal_string v)) point in
    let table =
      match model with
      | Some name when (match Tpan.Models.find name with
                        | Some m -> m.Tpan.Models.params <> []
                        | None -> false) ->
        (* concrete built-in: axes are model parameters *)
        let m = Option.get (Tpan.Models.find name) in
        List.iter
          (fun (a : Sweep.axis) ->
            if not (List.mem_assoc a.Sweep.name m.Tpan.Models.params) then
              fail_input
                (Printf.sprintf "model %s has no parameter %S (available: %s)" name
                   a.Sweep.name
                   (String.concat ", " (List.map fst m.Tpan.Models.params))))
          axes;
        if bindings <> [] then
          fail_input "-p binds symbols of a symbolic net; concrete sweeps take axes only";
        let throughputs = if trans = [] then m.Tpan.Models.deliveries else trans in
        Sweep.over_tpn ~max_states
          ~make:(fun pt -> m.Tpan.Models.make pt)
          ~throughputs axes
      | _ ->
        (* symbolic path: derive the closed form once, evaluate per point *)
        with_net file model @@ fun tpn ->
        if Tpn.is_concrete tpn then
          fail_input
            "sweeping a concrete net needs a built-in model (--model NAME) so axes can \
             name its parameters; for a .tpn file use its symbolic variant"
        else begin
          let g = SG.build ~max_states tpn in
          let res = M.Symbolic.analyze g in
          if trans = [] then
            fail_input "give at least one -t TRANS to sweep a symbolic throughput";
          let exprs =
            List.map (fun t -> ("thr(" ^ t ^ ")", M.Symbolic.throughput res g t)) trans
          in
          Sweep.over_expr ~bindings ~exprs axes
        end
    in
    if json then print_json (Sweep.to_json table)
    else if csv then print_string (Sweep.to_csv table)
    else Format.printf "%a@?" Sweep.pp table
  in
  let trans_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "t"; "throughput" ] ~docv:"TRANS"
          ~doc:
            "Transition whose completion rate to tabulate (repeatable; defaults to the \
             model's delivery transitions).")
  in
  let vary_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "vary" ] ~docv:"NAME=LO..HI:STEPS"
          ~doc:
            "Sweep axis, e.g. --vary timeout=80..200:8 (repeatable; several axes form \
             their cartesian grid). For a concrete model NAME is a parameter; for a \
             symbolic net it is a symbol such as 'E(t3)'.")
  in
  let point_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "point" ] ~docv:"VAR=VALUE"
          ~doc:"Fix the non-swept symbols of a symbolic net (repeatable).")
  in
  let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.") in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Tabulate throughput over a parameter grid, in parallel (-j); identical output \
          for any jobs count.")
    Term.(
      const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ trans_arg $ vary_arg
      $ point_arg $ csv_arg $ json_arg)

(* ----- check ----- *)

let check_cmd =
  let run () file model max_states =
    with_net file model (fun tpn ->
        let net = Tpn.net tpn in
        Format.printf "net class: %a@." Tpan_petri.Classify.pp (Tpan_petri.Classify.classify net);
        let consistent = Tpan_symbolic.Constraints.is_consistent (Tpn.constraints tpn) in
        Format.printf "timing constraints: %s@."
          (if consistent then "consistent" else "INCONSISTENT");
        (match Tpan_petri.Siphons.unmarked_siphons net with
         | [] -> Format.printf "siphons: none initially empty@."
         | l ->
           List.iter
             (fun s ->
               Format.printf "WARNING: initially-empty siphon {%s} (its consumers are dead)@."
                 (String.concat ", " (List.map (Net.place_name net) s)))
             l);
        if Tpan_petri.Siphons.commoner_satisfied net then
          Format.printf "commoner: every minimal siphon holds a marked trap@."
        else
          Format.printf
            "commoner: some siphon lacks a marked trap (possible deadlock; decisive only for free-choice nets)@.";
        if Tpn.is_concrete tpn then begin
          match CG.build ~max_states tpn with
          | g ->
            let safe =
              Array.for_all
                (fun st -> Array.for_all (fun k -> k <= 1) st.Sem.marking)
                g.Sem.states
            in
            Format.printf "timed behaviour: %d states, %s, %d terminal state(s)@."
              (CG.Graph.num_states g)
              (if safe then "safe (1-bounded)" else "NOT safe")
              (List.length (CG.Graph.terminal_states g))
          | exception Tpn.Unsupported msg -> Format.printf "timed behaviour: UNSUPPORTED (%s)@." msg
        end
        else begin
          match SG.build ~max_states tpn with
          | g -> Format.printf "symbolic behaviour: %d states, constraints sufficient@."
                   (SG.Graph.num_states g)
          | exception SG.Insufficient { hint; _ } ->
            Format.printf "symbolic behaviour: INSUFFICIENT CONSTRAINTS — %s@." hint
        end;
        Format.print_flush ())
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate a model: net class, constraints, siphons, timed safety.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- report ----- *)

let report_cmd =
  let run () file model max_states events =
    with_net file model (fun tpn ->
        if Tpn.is_concrete tpn then
          Tpan_perf.Report.concrete ~max_states ~events Format.std_formatter tpn
        else Tpan_perf.Report.symbolic ~max_states ~events Format.std_formatter tpn;
        Format.print_flush ())
  in
  let event_arg =
    Arg.(
      value & opt_all string []
      & info [ "e"; "event" ] ~docv:"TRANS"
          ~doc:"Also report the first-passage latency to this transition's completion.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full analysis report: structure, invariants, siphons, steady state, latencies.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg $ event_arg)

(* ----- profile ----- *)

let profile_cmd =
  let run () file model max_states =
    with_net file model (fun tpn ->
        Obs.Trace.set_enabled true;
        let concrete = Tpn.is_concrete tpn in
        (* Run the full analyze pipeline; a net without a steady state still
           yields a breakdown of the stages that did run. *)
        let states, edges, note =
          if concrete then begin
            let g = CG.build ~max_states ~on_progress:(progress "TRG build") tpn in
            let note =
              match M.Concrete.analyze g with
              | (_ : M.Concrete.result) -> None
              | exception Rates.Unsolvable msg -> Some msg
              | exception DG.Deterministic_cycle _ ->
                Some "deterministic from some decision node on (no rate solve)"
            in
            (CG.Graph.num_states g, CG.Graph.num_edges g, note)
          end
          else begin
            let g = SG.build ~max_states ~on_progress:(progress "TRG build") tpn in
            let note =
              match M.Symbolic.analyze g with
              | (_ : M.Symbolic.result) -> None
              | exception Rates.Unsolvable msg -> Some msg
              | exception DG.Deterministic_cycle _ ->
                Some "deterministic from some decision node on (no rate solve)"
            in
            (SG.Graph.num_states g, SG.Graph.num_edges g, note)
          end
        in
        let ms name = Obs.Trace.total_duration name *. 1000. in
        let cnt = Obs.Metrics.counter_value in
        let gauge name =
          match Obs.Metrics.find name with Some (Obs.Metrics.Gauge_v v) -> int_of_float v | _ -> 0
        in
        Printf.printf "profile (%s pipeline, %d states, %d edges)\n\n"
          (if concrete then "concrete" else "symbolic")
          states edges;
        Printf.printf "%-26s %12s  %s\n" "stage" "time (ms)" "counters";
        Printf.printf "%-26s %12.3f  states=%d edges=%d frontier_peak=%d\n" "TRG build"
          (ms (if concrete then "concrete.build" else "symbolic.build"))
          (cnt "core.semantics.states_interned")
          (cnt "core.semantics.edges")
          (gauge "core.semantics.frontier_peak");
        Printf.printf "%-26s %12s  queries=%d trivial=%d memo_hits=%d witness_refutations=%d\n"
          "oracle queries" "-"
          (cnt "symbolic.oracle.queries")
          (cnt "symbolic.oracle.trivial")
          (cnt "symbolic.oracle.memo_hits")
          (cnt "symbolic.oracle.witness_refutations");
        Printf.printf "%-26s %12s  eliminations=%d constraints_pruned=%d feasible_checks=%d\n"
          "FM eliminations" "-"
          (cnt "mathkit.fm.eliminations")
          (cnt "mathkit.fm.constraints_pruned")
          (cnt "mathkit.fm.feasible_checks");
        Printf.printf "%-26s %12.3f  nodes=%d edges=%d states_collapsed=%d\n"
          "decision-graph collapse"
          (ms "decision_graph.collapse")
          (cnt "perf.decision_graph.nodes")
          (cnt "perf.decision_graph.edges")
          (cnt "perf.decision_graph.states_collapsed");
        Printf.printf "%-26s %12.3f  solves=%d\n" "rate solve" (ms "rates.solve")
          (cnt "perf.rates.solves");
        (match note with
         | Some msg -> Printf.printf "\nnote: steady-state analysis stopped early: %s\n" msg
         | None -> ());
        Printf.printf "\nspan tree:\n";
        Format.printf "%a@." Obs.Trace.pp_tree ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run the full analyze pipeline and print a per-stage time/count breakdown.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ max_states_arg)

(* ----- dot ----- *)

let dot_cmd =
  let run () file model what max_states =
    with_net file model (fun tpn ->
        match what with
        | "net" -> print_string (Tpan_petri.Dot.net_to_dot (Tpn.net tpn))
        | "trg" -> print_string (CG.to_dot (CG.build ~max_states tpn))
        | "strg" -> print_string (SG.to_dot (SG.build ~max_states tpn))
        | "reach" ->
          print_string
            (Tpan_petri.Dot.reachability_to_dot (Reach.explore ~max_states (Tpn.net tpn)))
        | "dg" ->
          let g = CG.build ~max_states tpn in
          let dg = DG.of_graph ~add:Q.add ~mul:Q.mul g in
          print_string
            (DG.to_dot ~pp_delay:(Q.pp_decimal ~digits:6) ~pp_prob:(Q.pp_decimal ~digits:6) dg)
        | other ->
          Printf.eprintf "unknown graph %S (net, trg, strg, reach, dg)\n" other;
          exit 2)
  in
  let what_arg =
    Arg.(
      value & opt string "net"
      & info [ "g"; "graph" ] ~docv:"KIND" ~doc:"Which graph: net, trg, strg, reach or dg (decision graph).")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for the net or its graphs.")
    Term.(const run $ obs_term $ file_arg $ model_arg $ what_arg $ max_states_arg)

let () =
  let info =
    Cmd.info "tpan" ~version:"1.0.0"
      ~doc:"Performance analysis of communication protocols from Timed Petri Net models"
  in
  exit (Cmd.eval (Cmd.group info [ show_cmd; reach_cmd; analyze_cmd; symbolic_cmd; simulate_cmd; sweep_cmd; latency_cmd; check_cmd; report_cmd; profile_cmd; dot_cmd ]))
