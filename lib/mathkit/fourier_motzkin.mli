(** Fourier–Motzkin elimination over the rationals.

    Decides feasibility and entailment for conjunctions of linear
    constraints with strict and non-strict inequalities — the decision
    procedure behind symbolic timed-reachability construction: given the
    net's timing constraints, we must prove which remaining time is smallest
    (paper §3, "evaluating the smallest value in a set of expressions, given
    a set of timing constraints").

    Complexity is worst-case exponential in the number of variables, which is
    fine here: protocol nets carry a handful of time symbols. *)

(** Affine forms [Σ cᵢ·xᵢ + const] over integer-identified variables. *)
module Linform : sig
  type t

  val const : Q.t -> t
  val var : int -> t
  val of_list : (int * Q.t) list -> Q.t -> t
  val zero : t

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : Q.t -> t -> t
  val neg : t -> t

  val constant : t -> Q.t
  val coeff : int -> t -> Q.t
  val coeffs : t -> (int * Q.t) list
  (** Non-zero coefficients, in increasing variable order. *)

  val is_const : t -> bool
  val vars : t -> int list
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val eval : (int -> Q.t) -> t -> Q.t

  val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
end

type relation =
  | Ge  (** form ≥ 0 *)
  | Gt  (** form > 0 *)
  | Eq  (** form = 0 *)

type constr = { form : Linform.t; rel : relation }

val ge : Linform.t -> Linform.t -> constr
(** [ge a b] is the constraint [a ≥ b]. *)

val gt : Linform.t -> Linform.t -> constr
val eq : Linform.t -> Linform.t -> constr

val pp_constr : ?name:(int -> string) -> Format.formatter -> constr -> unit

val satisfies : (int -> Q.t) -> constr -> bool

val feasible : constr list -> bool
(** Is there a rational assignment satisfying every constraint? *)

val normalize_system : constr list -> constr list option
(** Split equalities into inequality pairs, scale every inequality to a
    canonical direction, collapse proportional constraints to the strongest
    one and drop satisfied constant constraints. [None] when a constant
    constraint is violated (the system is trivially infeasible). The result
    is equivalent to the input. *)

val find_model : constr list -> (int * Q.t) list option
(** A rational model of the system, or [None] if infeasible. Variables
    absent from the returned assignment are implicitly [0]. Where a
    variable's feasible interval is wide the midpoint is chosen, so the
    model tends to lie in the interior of the feasible region. *)

val entails : constr list -> constr -> bool
(** [entails cs c]: does every model of [cs] satisfy [c]? *)

type comparison =
  | Always_lt
  | Always_eq
  | Always_gt
  | Unknown  (** the constraints do not determine the order *)

val compare_forms : constr list -> Linform.t -> Linform.t -> comparison
(** Trichotomy of two forms under a constraint set: [Always_lt] means the
    first is strictly smaller in {e every} model. [Unknown] is the
    "prompt the designer for a constraint" outcome of the paper. *)
