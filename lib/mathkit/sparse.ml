(* Sparse exact Gauss elimination with Markowitz-style pivoting.

   Rows live as sorted (column, nonzero coefficient) assoc lists; a
   per-column index tracks which active rows touch each column, so a
   pivot step only rewrites the rows that actually contain the pivot
   column. Pivots are chosen to limit fill-in: sparsest eligible column
   first, then the shortest row in it (ties broken by smallest index,
   which keeps the elimination deterministic). Exactness of the field
   means any nonzero pivot is numerically valid, so the heuristic is
   free to chase sparsity alone. *)

(* Below this many rows the dense elimination wins outright (no index
   bookkeeping, better locality); above this fill ratio the "sparse"
   rows are dense lists and the assoc-list merges lose to flat arrays. *)
let sparse_min_rows = 64
let max_fill = 0.25

(* Enough affected rows that fanning the row merges across pool domains
   pays for itself; mirrors Linsolve.par_threshold. *)
let par_affected = 48

module Make (F : Linsolve.FIELD) = struct
  module Dense = Linsolve.Make (F)

  type outcome = Dense.outcome =
    | Unique of F.t array
    | Underdetermined
    | Inconsistent

  (* Sort by column, sum duplicates, drop zeros; validates column range. *)
  let norm_row ~ncols entries =
    let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) entries in
    let rec go = function
      | (c, _) :: _ when c < 0 || c >= ncols ->
        invalid_arg "Sparse.solve_rows: column index out of range"
      | (c1, v1) :: (c2, v2) :: rest when c1 = c2 -> go ((c1, F.add v1 v2) :: rest)
      | (c, v) :: rest -> if F.is_zero v then go rest else (c, v) :: go rest
      | [] -> []
    in
    go sorted

  (* r - f·p for sorted rows; drops cancellations. *)
  let rec axpy f p r =
    match (p, r) with
    | [], r -> r
    | (cp, vp) :: tp, [] -> (cp, F.sub F.zero (F.mul f vp)) :: axpy f tp []
    | (cp, vp) :: tp, ((cr, vr) :: tr as r) ->
      if cp < cr then (cp, F.sub F.zero (F.mul f vp)) :: axpy f tp r
      else if cp > cr then (cr, vr) :: axpy f p tr
      else begin
        let v = F.sub vr (F.mul f vp) in
        if F.is_zero v then axpy f tp tr else (cp, v) :: axpy f tp tr
      end

  let solve_rows ~ncols rows b =
    let nrows = Array.length rows in
    if Array.length b <> nrows then invalid_arg "Sparse.solve_rows: dimension mismatch";
    let row = Array.map (norm_row ~ncols) rows in
    let rhs = Array.copy b in
    let active = Array.make nrows true in
    (* col_rows.(c): the set of active rows with an entry in column c. *)
    let col_rows = Array.init ncols (fun _ -> Hashtbl.create 8) in
    Array.iteri
      (fun i r -> List.iter (fun (c, _) -> Hashtbl.replace col_rows.(c) i ()) r)
      row;
    let pivot_done = Array.make ncols false in
    let pivots = ref [] (* (row, col), most recent first *) in
    let npivots = ref 0 in
    let drop_from_index i r = List.iter (fun (c, _) -> Hashtbl.remove col_rows.(c) i) r in
    let add_to_index i r = List.iter (fun (c, _) -> Hashtbl.replace col_rows.(c) i ()) r in
    let continue_ = ref true in
    while !continue_ do
      Tpan_obs.Cancel.checkpoint ();
      (* Pivot column: fewest active rows among columns still in play. *)
      let best_c = ref (-1) and best_n = ref max_int in
      for c = 0 to ncols - 1 do
        if not pivot_done.(c) then begin
          let n = Hashtbl.length col_rows.(c) in
          if n > 0 && n < !best_n then begin
            best_c := c;
            best_n := n
          end
        end
      done;
      if !best_c < 0 then continue_ := false
      else begin
        let c = !best_c in
        (* Pivot row: shortest row touching c, smallest index on ties. *)
        let best_r = ref (-1) and best_len = ref max_int in
        Hashtbl.iter
          (fun r () ->
            let len = List.length row.(r) in
            if len < !best_len || (len = !best_len && (!best_r < 0 || r < !best_r)) then begin
              best_r := r;
              best_len := len
            end)
          col_rows.(c);
        let r = !best_r in
        active.(r) <- false;
        drop_from_index r row.(r);
        let pv = List.assoc c row.(r) in
        row.(r) <- List.map (fun (col, v) -> (col, F.div v pv)) row.(r);
        rhs.(r) <- F.div rhs.(r) pv;
        let prow = row.(r) and prhs = rhs.(r) in
        (* Rows still containing c; sorted for a deterministic schedule. *)
        let affected =
          Hashtbl.fold (fun i () acc -> i :: acc) col_rows.(c) []
          |> List.sort Int.compare |> Array.of_list
        in
        let n_aff = Array.length affected in
        let new_rows = Array.make n_aff [] in
        let new_rhs = Array.make n_aff F.zero in
        let update lo hi =
          for k = lo to hi do
            let i = affected.(k) in
            let f = List.assoc c row.(i) in
            new_rows.(k) <- axpy f prow row.(i);
            new_rhs.(k) <- F.sub rhs.(i) (F.mul f prhs)
          done
        in
        if n_aff >= par_affected then Tpan_par.Pool.parallel_for ~min_chunk:8 n_aff update
        else update 0 (n_aff - 1);
        for k = 0 to n_aff - 1 do
          let i = affected.(k) in
          drop_from_index i row.(i);
          row.(i) <- new_rows.(k);
          rhs.(i) <- new_rhs.(k);
          add_to_index i row.(i)
        done;
        pivot_done.(c) <- true;
        pivots := (r, c) :: !pivots;
        incr npivots
      end
    done;
    (* Every active row is now all-zero on the left (any surviving entry
       would have kept its column in play). Inconsistency is checked
       before rank, matching the dense classification. *)
    let inconsistent = ref false in
    for i = 0 to nrows - 1 do
      if active.(i) && not (F.is_zero rhs.(i)) then inconsistent := true
    done;
    if !inconsistent then Inconsistent
    else if !npivots < ncols then Underdetermined
    else begin
      (* Back-substitution in reverse elimination order: a pivot row can
         only mention columns pivoted later, whose values are already in
         [x] by the time we reach it. *)
      let x = Array.make ncols F.zero in
      List.iter
        (fun (r, c) ->
          let acc = ref rhs.(r) in
          List.iter
            (fun (col, v) -> if col <> c then acc := F.sub !acc (F.mul v x.(col)))
            row.(r);
          x.(c) <- !acc)
        !pivots;
      Unique x
    end

  let solve a b =
    let nrows = Array.length a in
    if Array.length b <> nrows then invalid_arg "Sparse.solve: dimension mismatch";
    let ncols = if nrows = 0 then 0 else Array.length a.(0) in
    Array.iter
      (fun r -> if Array.length r <> ncols then invalid_arg "Sparse.solve: ragged matrix")
      a;
    if nrows < sparse_min_rows || ncols = 0 then Dense.solve a b
    else begin
      let nnz = ref 0 in
      Array.iter (Array.iter (fun v -> if not (F.is_zero v) then incr nnz)) a;
      let fill = float_of_int !nnz /. (float_of_int nrows *. float_of_int ncols) in
      if fill > max_fill then Dense.solve a b
      else begin
        let rows =
          Array.map
            (fun dense_row ->
              let acc = ref [] in
              for c = ncols - 1 downto 0 do
                if not (F.is_zero dense_row.(c)) then acc := (c, dense_row.(c)) :: !acc
              done;
              !acc)
            a
        in
        solve_rows ~ncols rows b
      end
    end

  let solve_unique a b =
    match solve a b with
    | Unique x -> x
    | Underdetermined -> failwith "Sparse.solve_unique: underdetermined system"
    | Inconsistent -> failwith "Sparse.solve_unique: inconsistent system"
end
