module type FIELD = sig
  type t

  val zero : t
  val one : t
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(* Below this many rows a system is too small for domain fan-out to pay
   for itself; exact-ℚ elimination on a 48-row augmented matrix already
   runs in the milliseconds where it does. *)
let par_threshold = 48

module Make (F : FIELD) = struct
  type outcome =
    | Unique of F.t array
    | Underdetermined
    | Inconsistent

  let solve a b =
    let rows = Array.length a in
    if Array.length b <> rows then invalid_arg "Linsolve.solve: dimension mismatch";
    let cols = if rows = 0 then 0 else Array.length a.(0) in
    Array.iter (fun r -> if Array.length r <> cols then invalid_arg "Linsolve.solve: ragged matrix") a;
    (* Work on an augmented copy. *)
    let m = Array.init rows (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
    let pivot_of_col = Array.make cols (-1) in
    let row = ref 0 in
    for col = 0 to cols - 1 do
      if !row < rows then begin
        (* find a row at or below [!row] with a non-zero entry in [col] *)
        let p = ref (-1) in
        for i = !row to rows - 1 do
          if !p < 0 && not (F.is_zero m.(i).(col)) then p := i
        done;
        if !p >= 0 then begin
          let tmp = m.(!row) in
          m.(!row) <- m.(!p);
          m.(!p) <- tmp;
          (* normalize pivot row *)
          let pv = m.(!row).(col) in
          for j = col to cols do
            m.(!row).(j) <- F.div m.(!row).(j) pv
          done;
          (* Eliminate everywhere else. Row updates are independent (each
             reads only the pivot row and writes its own row), so on large
             systems the loop is split across pool domains; the result is
             the same arithmetic either way. *)
          let pr = !row in
          let prow = m.(pr) in
          let eliminate lo hi =
            for i = lo to hi do
              if i <> pr && not (F.is_zero m.(i).(col)) then begin
                let factor = m.(i).(col) in
                let mi = m.(i) in
                for j = col to cols do
                  mi.(j) <- F.sub mi.(j) (F.mul factor prow.(j))
                done
              end
            done
          in
          if rows >= par_threshold then Tpan_par.Pool.parallel_for ~min_chunk:8 rows eliminate
          else eliminate 0 (rows - 1);
          pivot_of_col.(col) <- !row;
          incr row
        end
      end
    done;
    (* Inconsistency: a zero row with non-zero rhs. *)
    let inconsistent = ref false in
    for i = !row to rows - 1 do
      if not (F.is_zero m.(i).(cols)) then inconsistent := true
    done;
    if !inconsistent then Inconsistent
    else if Array.exists (fun p -> p < 0) pivot_of_col then Underdetermined
    else Unique (Array.init cols (fun c -> m.(pivot_of_col.(c)).(cols)))

  let solve_unique a b =
    match solve a b with
    | Unique x -> x
    | Underdetermined -> failwith "Linsolve.solve_unique: underdetermined system"
    | Inconsistent -> failwith "Linsolve.solve_unique: inconsistent system"
end
