module IntMap = Map.Make (Int)

module Linform = struct
  type t = { coeffs : Q.t IntMap.t; const : Q.t }
  (* Invariant: no zero coefficient is stored. *)

  let norm coeffs = IntMap.filter (fun _ c -> not (Q.is_zero c)) coeffs

  let const q = { coeffs = IntMap.empty; const = q }
  let zero = const Q.zero
  let var v = { coeffs = IntMap.singleton v Q.one; const = Q.zero }

  let of_list l c =
    let coeffs =
      List.fold_left
        (fun acc (v, q) ->
          let cur = Option.value ~default:Q.zero (IntMap.find_opt v acc) in
          IntMap.add v (Q.add cur q) acc)
        IntMap.empty l
    in
    { coeffs = norm coeffs; const = c }

  let add a b =
    let coeffs =
      IntMap.union (fun _ x y -> let s = Q.add x y in if Q.is_zero s then None else Some s) a.coeffs b.coeffs
    in
    { coeffs; const = Q.add a.const b.const }

  let scale k a =
    if Q.is_zero k then zero
    else { coeffs = IntMap.map (Q.mul k) a.coeffs; const = Q.mul k a.const }

  let neg a = scale Q.minus_one a
  let sub a b = add a (neg b)

  let constant a = a.const
  let coeff v a = Option.value ~default:Q.zero (IntMap.find_opt v a.coeffs)
  let coeffs a = IntMap.bindings a.coeffs
  let is_const a = IntMap.is_empty a.coeffs
  let vars a = List.map fst (IntMap.bindings a.coeffs)

  let equal a b = Q.equal a.const b.const && IntMap.equal Q.equal a.coeffs b.coeffs

  let compare a b =
    let c = Q.compare a.const b.const in
    if c <> 0 then c else IntMap.compare Q.compare a.coeffs b.coeffs

  let hash a =
    IntMap.fold (fun v c acc -> (acc * 31) + (v * 7) + Q.hash c) a.coeffs (Q.hash a.const)

  let eval env a =
    IntMap.fold (fun v c acc -> Q.add acc (Q.mul c (env v))) a.coeffs a.const

  let pp ?(name = fun v -> Printf.sprintf "x%d" v) fmt a =
    let terms = coeffs a in
    if terms = [] then Q.pp fmt a.const
    else begin
      let first = ref true in
      let print_term v c =
        let s = Q.sign c in
        if !first then begin
          if s < 0 then Format.pp_print_string fmt "-";
          first := false
        end
        else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        let m = Q.abs c in
        if not (Q.equal m Q.one) then Format.fprintf fmt "%a*" Q.pp m;
        Format.pp_print_string fmt (name v)
      in
      List.iter (fun (v, c) -> print_term v c) terms;
      if not (Q.is_zero a.const) then begin
        let s = Q.sign a.const in
        Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        Q.pp fmt (Q.abs a.const)
      end
    end
end

type relation = Ge | Gt | Eq

type constr = { form : Linform.t; rel : relation }

let ge a b = { form = Linform.sub a b; rel = Ge }
let gt a b = { form = Linform.sub a b; rel = Gt }
let eq a b = { form = Linform.sub a b; rel = Eq }

let pp_constr ?name fmt c =
  let op = match c.rel with Ge -> ">= 0" | Gt -> "> 0" | Eq -> "= 0" in
  Format.fprintf fmt "%a %s" (Linform.pp ?name) c.form op

let satisfies env c =
  let v = Linform.eval env c.form in
  match c.rel with
  | Ge -> Q.sign v >= 0
  | Gt -> Q.sign v > 0
  | Eq -> Q.sign v = 0

(* ------------------------------------------------------------------ *)
(* Fourier–Motzkin kernel.                                            *)
(*                                                                    *)
(* Equalities are split into a pair of opposite inequalities first.   *)
(* Between elimination rounds the constraint set is pruned            *)
(* (Imbert-style): every inequality is scaled to a canonical          *)
(* direction, proportional constraints are collapsed to the strongest *)
(* one, and satisfied constant constraints are dropped. The variable  *)
(* to eliminate is the one minimizing |lower|·|upper| so intermediate *)
(* sets grow as slowly as possible.                                   *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)
module FormMap = Map.Make (Linform)

module Metrics = Tpan_obs.Metrics

let m_feasible_checks = Metrics.counter "mathkit.fm.feasible_checks"
let m_eliminations = Metrics.counter "mathkit.fm.eliminations"
let m_constraints_pruned = Metrics.counter "mathkit.fm.constraints_pruned"
let m_find_model_calls = Metrics.counter "mathkit.fm.find_model_calls"

let split c =
  match c.rel with
  | Eq -> [ { form = c.form; rel = Ge }; { form = Linform.neg c.form; rel = Ge } ]
  | Ge | Gt -> [ c ]

(* Is a variable-free constraint satisfied? *)
let const_holds rel k =
  match rel with Ge -> Q.sign k >= 0 | Gt -> Q.sign k > 0 | Eq -> Q.sign k = 0

(* Canonical scale: make the lowest-variable coefficient ±1 (scaling by a
   positive factor preserves the inequality). Two same-direction proportional
   constraints then share the same coefficient vector and are comparable by
   constant alone: [L + c ≥ 0] is stronger the smaller [c] is (at equal [c],
   [Gt] wins). Opposite directions keep distinct keys, as they must. *)
let canonical c =
  match Linform.coeffs c.form with
  | [] -> c
  | (_, k) :: _ ->
    let m = Q.abs k in
    if Q.equal m Q.one then c else { c with form = Linform.scale (Q.inv m) c.form }

(* Prune a set of inequalities ([Ge]/[Gt] only). [None] means a constant
   constraint is violated, i.e. the set is trivially infeasible. *)
let prune cs =
  let exception Infeasible in
  try
    let keyed =
      List.fold_left
        (fun acc c ->
          if Linform.is_const c.form then
            if const_holds c.rel (Linform.constant c.form) then acc else raise Infeasible
          else begin
            let c = canonical c in
            (* key on the coefficient vector only *)
            let key = Linform.add c.form (Linform.const (Q.neg (Linform.constant c.form))) in
            let cst = Linform.constant c.form in
            match FormMap.find_opt key acc with
            | None -> FormMap.add key (cst, c.rel) acc
            | Some (cst', rel') ->
              let cmp = Q.compare cst cst' in
              if cmp < 0 || (cmp = 0 && c.rel = Gt && rel' = Ge) then
                FormMap.add key (cst, c.rel) acc
              else acc
          end)
        FormMap.empty cs
    in
    let kept =
      FormMap.fold
        (fun key (cst, rel) acc -> { form = Linform.add key (Linform.const cst); rel } :: acc)
        keyed []
    in
    Metrics.Counter.add m_constraints_pruned (List.length cs - List.length kept);
    Some kept
  with Infeasible -> None

let all_vars cs =
  List.fold_left
    (fun acc c -> List.fold_left (fun acc v -> IntSet.add v acc) acc (Linform.vars c.form))
    IntSet.empty cs

(* Min-product heuristic: eliminating [v] replaces |lower|+|upper|
   constraints by |lower|·|upper| combinations; pick the cheapest. *)
let pick_var cs vars =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun (v, a) ->
          let lo, up = Option.value ~default:(0, 0) (Hashtbl.find_opt counts v) in
          if Q.sign a > 0 then Hashtbl.replace counts v (lo + 1, up)
          else Hashtbl.replace counts v (lo, up + 1))
        (Linform.coeffs c.form))
    cs;
  let cost v =
    let lo, up = Option.value ~default:(0, 0) (Hashtbl.find_opt counts v) in
    lo * up
  in
  let best =
    IntSet.fold
      (fun v acc ->
        match acc with
        | None -> Some (v, cost v)
        | Some (_, c) -> if cost v < c then Some (v, cost v) else acc)
      vars None
  in
  match best with Some (v, _) -> v | None -> invalid_arg "pick_var: empty"

let partition v cs =
  List.fold_left
    (fun (lo, up, rest) c ->
      let a = Linform.coeff v c.form in
      if Q.is_zero a then (lo, up, c :: rest)
      else if Q.sign a > 0 then (c :: lo, up, rest)
      else (lo, c :: up, rest))
    ([], [], []) cs

(* A pair (l: a·v + L' ≥/> 0 with a>0) and (u: b·v + U' ≥/> 0 with b<0)
   combines into (-b)·(l.form) + a·(u.form) ≥/> 0, which cancels v. *)
let eliminate v cs =
  (* one checkpoint per elimination round: rounds are where FM blows up
     (the constraint set can square each time), so this bounds the
     reaction time to a deadline without touching the inner products *)
  Tpan_obs.Cancel.checkpoint ();
  Metrics.Counter.incr m_eliminations;
  let lower, upper, rest = partition v cs in
  let combine l u =
    let a = Linform.coeff v l.form and b = Linform.coeff v u.form in
    let form = Linform.add (Linform.scale (Q.neg b) l.form) (Linform.scale a u.form) in
    let rel = match (l.rel, u.rel) with Gt, _ | _, Gt -> Gt | _ -> Ge in
    { form; rel }
  in
  List.fold_left (fun acc l -> List.fold_left (fun acc u -> combine l u :: acc) acc upper) rest lower

let normalize_system constraints = prune (List.concat_map split constraints)

let feasible constraints =
  Metrics.Counter.incr m_feasible_checks;
  let rec run = function
    | None -> false
    | Some [] -> true
    | Some cs ->
      let vars = all_vars cs in
      if IntSet.is_empty vars then true (* prune leaves no constant constraints *)
      else run (prune (eliminate (pick_var cs vars) cs))
  in
  run (normalize_system constraints)

(* Model construction: eliminate every variable remembering its bounding
   constraints, then back-substitute choosing a value inside each interval
   (the midpoint where the interval is wide — an interior point serves the
   oracle's witness filter better than a boundary one). Variables dropped
   along the way default to 0; callers must treat absent variables as 0. *)
let find_model constraints =
  Metrics.Counter.incr m_find_model_calls;
  let rec go cs =
    match prune cs with
    | None -> None
    | Some [] -> Some IntMap.empty
    | Some cs ->
      let vars = all_vars cs in
      if IntSet.is_empty vars then Some IntMap.empty
      else begin
        let v = pick_var cs vars in
        let lower, upper, _rest = partition v cs in
        match go (eliminate v cs) with
        | None -> None
        | Some m ->
          let env u = Option.value ~default:Q.zero (IntMap.find_opt u m) in
          (* value of the v-free remainder: v itself is absent from m *)
          let bound c =
            let a = Linform.coeff v c.form in
            (Q.div (Q.neg (Linform.eval env c.form)) a, c.rel = Gt)
          in
          let max_bound acc c =
            let b, strict = bound c in
            match acc with
            | None -> Some (b, strict)
            | Some (b', s') ->
              let cmp = Q.compare b b' in
              if cmp > 0 || (cmp = 0 && strict && not s') then Some (b, strict) else acc
          in
          let min_bound acc c =
            let b, strict = bound c in
            match acc with
            | None -> Some (b, strict)
            | Some (b', s') ->
              let cmp = Q.compare b b' in
              if cmp < 0 || (cmp = 0 && strict && not s') then Some (b, strict) else acc
          in
          let lo = List.fold_left max_bound None lower in
          let up = List.fold_left min_bound None upper in
          let value =
            match (lo, up) with
            | None, None -> Q.zero
            | Some (l, _), None -> Q.add l Q.one
            | None, Some (u, _) -> Q.sub u Q.one
            | Some (l, _), Some (u, _) ->
              if Q.compare l u < 0 then Q.div (Q.add l u) (Q.of_int 2)
              else l (* the projection guarantees l = u is attainable *)
          in
          Some (IntMap.add v value m)
      end
  in
  match go (List.concat_map split constraints) with
  | None -> None
  | Some m ->
    (* Defensive: only ever hand out assignments that actually are models. *)
    let env u = Option.value ~default:Q.zero (IntMap.find_opt u m) in
    if List.for_all (satisfies env) constraints then Some (IntMap.bindings m) else None

let entails cs c =
  match c.rel with
  | Ge -> not (feasible ({ form = Linform.neg c.form; rel = Gt } :: cs))
  | Gt -> not (feasible ({ form = Linform.neg c.form; rel = Ge } :: cs))
  | Eq ->
    (not (feasible ({ form = c.form; rel = Gt } :: cs)))
    && not (feasible ({ form = Linform.neg c.form; rel = Gt } :: cs))

type comparison = Always_lt | Always_eq | Always_gt | Unknown

let compare_forms cs a b =
  let d = Linform.sub b a in
  if entails cs { form = d; rel = Gt } then Always_lt
  else if entails cs { form = Linform.neg d; rel = Gt } then Always_gt
  else if entails cs { form = d; rel = Eq } then Always_eq
  else Unknown
