(** Exact sparse linear-system solving over an arbitrary field.

    Rate-balance and Markov steady-state systems are sparse: a reachability
    state has a handful of successors, so each balance equation touches a
    handful of unknowns out of thousands. The dense Gauss–Jordan in
    {!Linsolve} allocates and scans the full n×n matrix regardless; this
    module keeps rows as sorted (column, coefficient) lists and picks pivots
    Markowitz-style (sparsest column, then shortest row) to limit fill-in.

    Over an exact field a unique solution is unique — the sparse and dense
    paths produce bit-identical [Unique] vectors, and they classify
    [Underdetermined]/[Inconsistent] identically (both are rank facts of the
    system, not of the elimination order). *)

module Make (F : Linsolve.FIELD) : sig
  module Dense : module type of Linsolve.Make (F)

  type outcome = Dense.outcome =
    | Unique of F.t array
    | Underdetermined
    | Inconsistent

  val solve_rows : ncols:int -> (int * F.t) list array -> F.t array -> outcome
  (** [solve_rows ~ncols rows b] solves the system whose [i]-th equation is
      [Σ coeff·x(col) = b.(i)] for the [(col, coeff)] pairs in [rows.(i)].
      Rows need not be sorted; duplicate columns are summed and zero
      coefficients dropped. Inputs are not mutated.
      @raise Invalid_argument on a column index outside [0, ncols) or a
      length mismatch between [rows] and [b]. *)

  val solve : F.t array array -> F.t array -> outcome
  (** [solve a b] solves [a · x = b], choosing the representation by shape:
      systems below {!sparse_min_rows} rows or above {!max_fill} fill ratio
      go to the dense {!Linsolve} elimination (small systems don't repay the
      index bookkeeping; full matrices defeat sparsity), everything else is
      converted and handed to {!solve_rows}.
      @raise Invalid_argument on ragged or mismatched dimensions. *)

  val solve_unique : F.t array array -> F.t array -> F.t array
  (** Like {!solve} but @raise Failure unless the solution is unique. *)
end

val sparse_min_rows : int
(** Systems with fewer rows than this always use the dense path. *)

val max_fill : float
(** Densest fill ratio (nnz / rows·cols) still routed to the sparse path. *)
