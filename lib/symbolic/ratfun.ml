module Q = Tpan_mathkit.Q

type t = { n : Poly.t; d : Poly.t; hkey : int }
(* Invariants: [d] is non-zero with leading coefficient 1; zero is [0/1];
   when the quotient is a polynomial it is stored with [d = 1].

   Nodes are hash-consed per domain (like Poly): [node] is the only
   constructor, so representation-equal quotients built on one domain are
   physically shared and the pointer test in {!equal} is the common case.
   Poly values are themselves interned, so the node hash is two O(1)
   field reads. *)

module Node = struct
  type nonrec t = t

  let equal a b = a == b || (a.hkey = b.hkey && Poly.equal a.n b.n && Poly.equal a.d b.d)
  let hash r = r.hkey
end

module Tbl = Hashcons.Make (Node)

let table = Tbl.domain_table ~size:512 ()
let node n d = Tbl.intern (table ()) { n; d; hkey = (Poly.hash n * 65599) + Poly.hash d }
let interned () = Tbl.count (table ())

(* Light normalization, used by every arithmetic operation: exact-division
   fast path + monic denominator. Full GCD cancellation lives in {!reduce}
   and is applied only to final results — running it inside the hot
   arithmetic (e.g. Gaussian elimination over this field) is prohibitively
   slow. *)
let normalize n d =
  if Poly.is_zero d then raise Division_by_zero;
  if Poly.is_zero n then node Poly.zero Poly.one
  else
    match Poly.divide_exact n d with
    | Some q -> node q Poly.one
    | None ->
      let c, dm = Poly.monic_factor d in
      node (Poly.scale (Q.inv c) n) dm

(* Full cancellation by polynomial GCD. The primitive Euclidean algorithm
   degrades on dense high-variable-count operands, so very large inputs are
   returned unreduced (the value is unchanged either way; {!equal} never
   depends on the representation). *)
let reduce r =
  let budget_terms = 400 and budget_vars = 16 in
  if
    Poly.size r.n + Poly.size r.d > budget_terms
    || List.length (Poly.vars r.n) > budget_vars
    || List.length (Poly.vars r.d) > budget_vars
  then r
  else begin
    let g = Poly.gcd r.n r.d in
    if Poly.equal g Poly.one then r
    else
      match (Poly.divide_exact r.n g, Poly.divide_exact r.d g) with
      | Some n', Some d' ->
        let c, dm = Poly.monic_factor d' in
        node (Poly.scale (Q.inv c) n') dm
      | _ -> r (* unreachable: the gcd divides both *)
  end

let make n d = normalize n d

let zero = node Poly.zero Poly.one
let of_poly p = node p Poly.one
let of_q q = of_poly (Poly.const q)
let of_int i = of_q (Q.of_int i)
let one = of_int 1
let var v = of_poly (Poly.var v)

let num r = r.n
let den r = r.d

let is_zero r = Poly.is_zero r.n
let is_const r = Poly.is_const r.n && Poly.is_const r.d

let to_q_opt r =
  match (Poly.to_q_opt r.n, Poly.to_q_opt r.d) with
  | Some a, Some b -> Some (Q.div a b)
  | _ -> None

let add a b =
  if Poly.equal a.d b.d then normalize (Poly.add a.n b.n) a.d
  else normalize (Poly.add (Poly.mul a.n b.d) (Poly.mul b.n a.d)) (Poly.mul a.d b.d)

let neg a = node (Poly.neg a.n) a.d
let sub a b = add a (neg b)

let mul a b =
  (* cross-cancel before multiplying to curb growth *)
  let n1, d2 =
    match Poly.divide_exact a.n b.d with
    | Some q -> (q, Poly.one)
    | None -> (a.n, b.d)
  in
  let n2, d1 =
    match Poly.divide_exact b.n a.d with
    | Some q -> (q, Poly.one)
    | None -> (b.n, a.d)
  in
  normalize (Poly.mul n1 n2) (Poly.mul d1 d2)

let inv a =
  if is_zero a then raise Division_by_zero;
  normalize a.d a.n

let div a b = mul a (inv b)

let eval env r =
  let d = Poly.eval env r.d in
  if Q.is_zero d then raise Division_by_zero;
  Q.div (Poly.eval env r.n) d

let subst f r = make (Poly.subst f r.n) (Poly.subst f r.d)

let derivative v r =
  let n' = Poly.derivative v r.n and d' = Poly.derivative v r.d in
  normalize
    (Poly.sub (Poly.mul n' r.d) (Poly.mul r.n d'))
    (Poly.mul r.d r.d)

let equal a b =
  a == b
  || (Poly.equal a.n b.n && Poly.equal a.d b.d)
  || Poly.equal (Poly.mul a.n b.d) (Poly.mul b.n a.d)

let pp fmt r =
  if Poly.equal r.d Poly.one then Poly.pp fmt r.n
  else begin
    let needs_parens p = match Poly.to_q_opt p with Some _ -> false | None -> true in
    if needs_parens r.n then Format.fprintf fmt "(%a)" Poly.pp r.n else Poly.pp fmt r.n;
    Format.pp_print_string fmt " / ";
    if needs_parens r.d then Format.fprintf fmt "(%a)" Poly.pp r.d else Poly.pp fmt r.d
  end
