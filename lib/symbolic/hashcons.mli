(** Weak-table hash-consing (value interning).

    [intern] maps structurally equal values to one physically shared
    node, making pointer comparison a sound fast path for equality. The
    table holds its entries weakly: interned values are collectable as
    soon as the rest of the program drops them.

    Weak tables are not thread-safe; {!Make.domain_table} provides a
    per-domain table via [Domain.DLS] so interning needs no lock.
    Physical uniqueness is then a per-domain guarantee — values built on
    different pool workers compare equal structurally but not
    necessarily physically, which is why client [equal] functions keep a
    structural fallback after the pointer test. *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HashedType) : sig
  type table

  val create : int -> table

  val intern : table -> H.t -> H.t
  (** Return the table's representative for the value, adding it first
      if no structurally equal entry is live. *)

  val count : table -> int
  (** Number of live entries (shrinks as interned values are GC'd). *)

  val domain_table : ?size:int -> unit -> unit -> table
  (** [domain_table () ()] is the calling domain's private table,
      created on first use. *)
end
