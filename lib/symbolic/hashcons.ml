(* Generic hash-consing on top of Weak.Make: interning a value returns
   the table's existing physically-unique representative when a
   structurally equal one is already live, so equality on interned values
   can be pointer-first and shared subexpressions occupy one node.

   The tables are weak — interning never keeps a value alive, so a
   polynomial dropped by the analysis is collected like any other value
   and its slot is reused.

   Weak sets are not thread-safe, and guarding every intern with a mutex
   would put a lock on the hottest symbolic path. Instead [domain_table]
   hands each domain its own table through Domain.DLS: interning is
   lock-free, and physical sharing holds within a domain (which is where
   all the repeated-subterm traffic happens — pool workers build their
   expressions locally and only ship final results). Structural equality
   across domains still holds; only pointer identity is per-domain. *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HashedType) = struct
  module W = Weak.Make (H)

  type table = W.t

  let create n = W.create n
  let intern t x = W.merge t x
  let count t = W.count t

  let domain_table ?(size = 256) () =
    let key = Domain.DLS.new_key (fun () -> W.create size) in
    fun () -> Domain.DLS.get key
end
