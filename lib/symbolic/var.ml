type kind = Enabling | Firing | Frequency | Param

type t = { id : int; kind : kind; label : string }

module KeyMap = Map.Make (struct
  type t = kind * string

  let compare = Stdlib.compare
end)

module IdMap = Map.Make (Int)

(* Global intern tables. Interning is keyed on (kind, label); ids are dense,
   which lets downstream structures index by id. The tables are shared
   across domains (pool workers may build symbolic nets) and are
   read-mostly: every [Poly.var] / parser lookup hits them, while new
   symbols appear only while a net is being built. So lookups go through
   an immutable snapshot published in an [Atomic] — no lock, no
   contention — and only a miss takes the mutex, re-checks (another
   domain may have won the race), and publishes a new snapshot. The
   mutex serialises writers, so plain [Atomic.set] inside it is enough;
   readers either see the old snapshot (and fall into the locked path,
   where the re-check finds the symbol) or the new one. *)
type tables = { by_key : t KeyMap.t; by_id : t IdMap.t; next_id : int }

let snapshot : tables Atomic.t =
  Atomic.make { by_key = KeyMap.empty; by_id = IdMap.empty; next_id = 0 }

let intern_lock = Mutex.create ()

let make kind label =
  let key = (kind, label) in
  match KeyMap.find_opt key (Atomic.get snapshot).by_key with
  | Some v -> v
  | None ->
    Mutex.protect intern_lock @@ fun () ->
    let tabs = Atomic.get snapshot in
    (match KeyMap.find_opt key tabs.by_key with
    | Some v -> v
    | None ->
      let v = { id = tabs.next_id; kind; label } in
      Atomic.set snapshot
        {
          by_key = KeyMap.add key v tabs.by_key;
          by_id = IdMap.add v.id v tabs.by_id;
          next_id = tabs.next_id + 1;
        };
      v)

let enabling l = make Enabling l
let firing l = make Firing l
let frequency l = make Frequency l
let param l = make Param l

let id v = v.id
let kind v = v.kind
let label v = v.label

let name v =
  match v.kind with
  | Enabling -> "E(" ^ v.label ^ ")"
  | Firing -> "F(" ^ v.label ^ ")"
  | Frequency -> "f(" ^ v.label ^ ")"
  | Param -> v.label

let of_id i = IdMap.find i (Atomic.get snapshot).by_id

let is_time v = match v.kind with Enabling | Firing -> true | Frequency | Param -> false

let compare a b = Stdlib.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let pp fmt v = Format.pp_print_string fmt (name v)
