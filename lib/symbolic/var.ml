type kind = Enabling | Firing | Frequency | Param

type t = { id : int; kind : kind; label : string }

(* Global intern tables. Interning is keyed on (kind, label); ids are dense,
   which lets downstream structures index by id. The tables are shared
   across domains (pool workers may build symbolic nets), so accesses are
   mutex-protected. *)
let by_key : (kind * string, t) Hashtbl.t = Hashtbl.create 64
let by_id : (int, t) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0
let intern_lock = Mutex.create ()

let make kind label =
  Mutex.protect intern_lock @@ fun () ->
  match Hashtbl.find_opt by_key (kind, label) with
  | Some v -> v
  | None ->
    let v = { id = !next_id; kind; label } in
    incr next_id;
    Hashtbl.add by_key (kind, label) v;
    Hashtbl.add by_id v.id v;
    v

let enabling l = make Enabling l
let firing l = make Firing l
let frequency l = make Frequency l
let param l = make Param l

let id v = v.id
let kind v = v.kind
let label v = v.label

let name v =
  match v.kind with
  | Enabling -> "E(" ^ v.label ^ ")"
  | Firing -> "F(" ^ v.label ^ ")"
  | Frequency -> "f(" ^ v.label ^ ")"
  | Param -> v.label

let of_id i = Mutex.protect intern_lock @@ fun () -> Hashtbl.find by_id i

let is_time v = match v.kind with Enabling | Firing -> true | Frequency | Param -> false

let compare a b = Stdlib.compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id
let pp fmt v = Format.pp_print_string fmt (name v)
