(** Rational functions (quotients of {!Poly}) — the field in which symbolic
    branching probabilities and traversal rates live.

    Normalization is best-effort (monic denominator, exact-division
    cancellation); {!equal} is nevertheless exact because it
    cross-multiplies. Expression growth is bounded in practice by the tiny
    size of protocol decision graphs. *)

type t

val zero : t
val one : t
val of_poly : Poly.t -> t
val of_q : Tpan_mathkit.Q.t -> t
val of_int : int -> t
val var : Var.t -> t

val make : Poly.t -> Poly.t -> t
(** [make num den]. @raise Division_by_zero if [den] is the zero
    polynomial. *)

val num : t -> Poly.t
val den : t -> Poly.t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero on a zero divisor. *)

val inv : t -> t

val is_zero : t -> bool
val is_const : t -> bool
val to_q_opt : t -> Tpan_mathkit.Q.t option

val eval : (Var.t -> Tpan_mathkit.Q.t) -> t -> Tpan_mathkit.Q.t
(** @raise Division_by_zero if the denominator vanishes at the point. *)

val subst : (Var.t -> Poly.t option) -> t -> t

val derivative : Var.t -> t -> t
(** Quotient rule: [(p/q)' = (p'q - pq') / q²]. *)

val reduce : t -> t
(** Cancel the full polynomial GCD of numerator and denominator (value
    unchanged). Arithmetic keeps only a light normal form for speed; apply
    this to final results for canonical, human-readable expressions. Very
    large operands are returned unreduced. *)

val equal : t -> t -> bool
(** Exact value equality (cross-multiplies), with pointer and
    representation fast paths first — hash-consing makes those the common
    case for values built on one domain. *)

val interned : unit -> int
(** Live entries in the calling domain's intern table (weak: shrinks as
    values are collected). *)

val pp : Format.formatter -> t -> unit
