(** Memoizing constraint oracle: the one object through which all symbolic
    ordering queries of a net should go.

    {!Constraints.compare_exprs} and friends rebuild the whole
    Fourier–Motzkin system and re-eliminate from scratch on every call —
    the dominant cost of symbolic TRG construction, where the same handful
    of difference expressions is re-decided at every state. The oracle does
    the system-building work once and the elimination work at most once per
    distinct query:

    - {b Preprocessing}: equalities are substituted away (each equality
      defines one variable in terms of the others), the remaining
      inequalities are scaled, deduplicated and joined with the
      non-negativity closure of every time symbol, once.
    - {b Witness filter}: one rational interior point of the feasible
      region is extracted up front; an entailment query whose goal the
      witness already violates is refuted by a single evaluation, with no
      elimination at all.
    - {b Memo table}: verdicts are cached keyed on the canonicalized
      difference form, so re-decisions — the common case in the
      advance-successor tournament — are hash lookups.

    Verdicts agree exactly with the direct {!Constraints} procedures,
    including on inconsistent systems (where everything is vacuously
    entailed). *)

type t

val make : ?memo:bool -> ?witness:bool -> Constraints.t -> t
(** Preprocess a constraint system. [memo] and [witness] (default [true])
    exist so benchmarks can measure each layer's contribution. *)

val compare_exprs : t -> Linexpr.t -> Linexpr.t -> Constraints.comparison
(** Same verdicts as {!Constraints.compare_exprs}. *)

val entails : t -> Constraints.relation -> Linexpr.t -> Linexpr.t -> bool
(** Same verdicts as {!Constraints.entails}. *)

val is_consistent : t -> bool

val witness : t -> (Var.t * Tpan_mathkit.Q.t) list option
(** The interior point found during preprocessing, for inspection. [None]
    when the system is inconsistent. Variables absent from the list were
    assigned their default (see {!make}). *)

(** {1 Statistics}

    Counters since construction (or the last {!reset_stats}):
    - [queries]: primitive entailment questions asked (a comparison asks
      up to four);
    - [trivial]: answered structurally (constant difference), nothing
      consulted;
    - [hits]/[misses]: memo-table outcomes for the non-trivial rest;
    - [witness_refutations]: misses answered by evaluating the witness
      point, avoiding elimination;
    - [fm_runs]: Fourier–Motzkin feasibility checks actually executed;
    - [baseline_fm_runs]: checks the direct (uncached) procedure would
      have executed for the same queries — the denominator of the
      speedup claim. *)

type stats = {
  queries : int;
  trivial : int;
  hits : int;
  misses : int;
  witness_refutations : int;
  fm_runs : int;
  baseline_fm_runs : int;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
