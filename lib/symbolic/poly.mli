(** Sparse multivariate polynomials over {!Tpan_mathkit.Q} with {!Var}
    indeterminates.

    These are the numerators/denominators of branching-probability
    expressions: at a decision state the probability of firing [t] is
    [f(t) / Σ f(t')] (paper §1), so every probability that decision-graph
    analysis manipulates is a rational function of the frequency symbols. *)

type t

val zero : t
val one : t
val const : Tpan_mathkit.Q.t -> t
val of_int : int -> t
val var : Var.t -> t
val of_linexpr : Linexpr.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val pow : t -> int -> t
val scale : Tpan_mathkit.Q.t -> t -> t

val is_zero : t -> bool
val is_const : t -> bool
val to_q_opt : t -> Tpan_mathkit.Q.t option
val degree : t -> int
(** Total degree; [degree zero = -1]. *)

val size : t -> int
(** Number of monomials. *)

val vars : t -> Var.t list

val eval : (Var.t -> Tpan_mathkit.Q.t) -> t -> Tpan_mathkit.Q.t
val subst : (Var.t -> t option) -> t -> t

val fold : ((Var.t * int) list -> Tpan_mathkit.Q.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the terms: each monomial as a [(variable, exponent)] list
    (exponents ≥ 1) with its coefficient. Generalizes evaluation to any
    semiring (interval arithmetic, floats, …). *)

val derivative : Var.t -> t -> t
(** Formal partial derivative. *)

val gcd : t -> t -> t
(** Greatest common divisor in ℚ[x₁…xₙ], computed by the primitive
    Euclidean algorithm (recursing through the variables, pseudo-division
    in the main variable). Normalized monic (leading deglex coefficient 1);
    [gcd p 0 = monic p]; [gcd 0 0 = 0]. Non-trivial GCDs are what lets
    {!Ratfun} fully cancel symbolic probabilities and rates. *)

val divide_exact : t -> t -> t option
(** [divide_exact p d] is [Some q] iff [p = q·d] exactly.
    @raise Division_by_zero if [d] is zero. *)

val leading_coeff : t -> Tpan_mathkit.Q.t
(** Coefficient of the deglex-leading monomial; [0] for the zero
    polynomial. *)

val monic_factor : t -> Tpan_mathkit.Q.t * t
(** [monic_factor p = (c, m)] with [p = c·m] and [m]'s leading coefficient 1
    (for non-zero [p]). *)

val equal : t -> t -> bool
(** Pointer-first: values are hash-consed per domain, so the common case
    is one physical comparison; a structural check covers values interned
    on different domains. *)

val compare : t -> t -> int

val hash : t -> int
(** O(1): the structural hash is computed once at interning time. *)

val interned : unit -> int
(** Live entries in the calling domain's intern table. The table is weak:
    the count shrinks as unreferenced polynomials are collected. *)

val pp : Format.formatter -> t -> unit
