(** Interned symbolic variables.

    The analysis manipulates three families of symbols, mirroring the paper's
    notation: enabling times [E(t)], firing times [F(t)] and relative firing
    frequencies [f(t)]; [Param] covers ad-hoc symbols. Variables are interned
    globally, so the same [(kind, label)] pair always yields the same id —
    this is what lets linear forms and polynomials key on integer ids.

    The intern table is read-mostly and shared across domains: lookups of
    already-interned symbols are lock-free (they read an immutable
    snapshot published through an [Atomic]); only the first interning of
    a new [(kind, label)] pair takes a mutex. *)

type kind =
  | Enabling
  | Firing
  | Frequency
  | Param

type t

val enabling : string -> t
(** [enabling "t3"] is the symbol [E(t3)]. *)

val firing : string -> t
val frequency : string -> t
val param : string -> t

val make : kind -> string -> t

val id : t -> int
val kind : t -> kind
val label : t -> string

val name : t -> string
(** Display name, e.g. ["E(t3)"], ["F(t5)"], ["f(t4)"], or the bare label for
    parameters. *)

val of_id : int -> t
(** Inverse of {!id}. @raise Not_found for an id never interned. *)

val is_time : t -> bool
(** Enabling and firing times are time-valued (implicitly non-negative). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
