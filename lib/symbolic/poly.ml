module Q = Tpan_mathkit.Q

(* Monomials: sorted (var id, exponent>0) lists, ordered by degree-lex.
   Deglex is multiplicative, which the exact-division loop relies on. *)
module Monomial = struct
  type t = (int * int) list

  let one : t = []

  let degree (m : t) = List.fold_left (fun acc (_, e) -> acc + e) 0 m

  (* Lex with smaller var ids more significant; higher exponent first. *)
  let rec lex (a : t) (b : t) =
    match (a, b) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | (va, ea) :: ra, (vb, eb) :: rb ->
      if va < vb then 1
      else if va > vb then -1
      else if ea <> eb then Stdlib.compare ea eb
      else lex ra rb

  let compare a b =
    let c = Stdlib.compare (degree a) (degree b) in
    if c <> 0 then c else lex a b

  let rec mul (a : t) (b : t) : t =
    match (a, b) with
    | [], m | m, [] -> m
    | (va, ea) :: ra, (vb, eb) :: rb ->
      if va < vb then (va, ea) :: mul ra b
      else if va > vb then (vb, eb) :: mul a rb
      else (va, ea + eb) :: mul ra rb

  (* [div a b] is [Some m] with [a = m·b] when [b] divides [a]. *)
  let rec div (a : t) (b : t) : t option =
    match (a, b) with
    | m, [] -> Some m
    | [], _ :: _ -> None
    | (va, ea) :: ra, (vb, eb) :: rb ->
      if va < vb then Option.map (fun m -> (va, ea) :: m) (div ra b)
      else if va > vb then None
      else if ea < eb then None
      else if ea = eb then div ra rb
      else Option.map (fun m -> (va, ea - eb) :: m) (div ra rb)

  let vars (m : t) = List.map fst m
end

module MMap = Map.Make (Monomial)

type t = { terms : Q.t MMap.t; hkey : int }
(* Hash-consed: every value is built by [intern], so within a domain
   structurally equal polynomials are one shared node, equality is
   pointer-first, and [hash] is a field read. Invariant on [terms]: no
   zero coefficients stored. *)

let raw_hash terms =
  MMap.fold
    (fun m c acc ->
      let mh = List.fold_left (fun h (v, e) -> (h * 31) + (v * 17) + e) 7 m in
      acc + (mh * 131) + Q.hash c)
    terms 0

module Node = struct
  type nonrec t = t

  let equal a b = a == b || (a.hkey = b.hkey && MMap.equal Q.equal a.terms b.terms)
  let hash p = p.hkey
end

module Tbl = Hashcons.Make (Node)

let table = Tbl.domain_table ~size:1024 ()
let intern terms = Tbl.intern (table ()) { terms; hkey = raw_hash terms }
let interned () = Tbl.count (table ())

let zero : t = intern MMap.empty
let const q : t = if Q.is_zero q then zero else intern (MMap.singleton Monomial.one q)
let one = const Q.one
let of_int i = const (Q.of_int i)
let var v : t = intern (MMap.singleton [ (Var.id v, 1) ] Q.one)

let is_zero p = MMap.is_empty p.terms

(* Hot operations work on raw maps and intern exactly once per public
   result: interning an intermediate (as a naive add-chain would) pays a
   structural hash and a weak-table probe per step for values that are
   dead an instant later. *)

let add (a : t) (b : t) : t =
  intern
    (MMap.union
       (fun _ x y -> let s = Q.add x y in if Q.is_zero s then None else Some s)
       a.terms b.terms)

let scale k (p : t) : t = if Q.is_zero k then zero else intern (MMap.map (Q.mul k) p.terms)
let neg p = scale Q.minus_one p

let sub (a : t) (b : t) : t =
  intern
    (MMap.merge
       (fun _ x y ->
         match (x, y) with
         | Some x, None -> Some x
         | None, Some y -> Some (Q.neg y)
         | Some x, Some y -> let d = Q.sub x y in if Q.is_zero d then None else Some d
         | None, None -> None)
       a.terms b.terms)

(* accumulate [acc + c·m·p] as a raw map *)
let raw_add_scaled acc m c (p : Q.t MMap.t) =
  MMap.fold
    (fun m' c' acc ->
      MMap.update (Monomial.mul m m')
        (function
          | None -> Some (Q.mul c c')
          | Some x ->
            let s = Q.add x (Q.mul c c') in
            if Q.is_zero s then None else Some s)
        acc)
    p acc

let mul (a : t) (b : t) : t =
  intern (MMap.fold (fun m c acc -> raw_add_scaled acc m c b.terms) a.terms MMap.empty)

let rec pow p n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else if n = 0 then one
  else begin
    let h = pow p (n / 2) in
    let h2 = mul h h in
    if n land 1 = 1 then mul h2 p else h2
  end

let of_linexpr e =
  List.fold_left
    (fun acc (v, c) -> add acc (scale c (var v)))
    (const (Linexpr.constant e))
    (Linexpr.terms e)

let is_const p = MMap.for_all (fun m _ -> m = Monomial.one) p.terms

let to_q_opt p =
  if is_zero p then Some Q.zero
  else if is_const p then MMap.find_opt Monomial.one p.terms
  else None

let degree p = MMap.fold (fun m _ acc -> Stdlib.max acc (Monomial.degree m)) p.terms (-1)

let size p = MMap.cardinal p.terms

let vars p =
  let module IS = Set.Make (Int) in
  let ids =
    MMap.fold
      (fun m _ acc -> List.fold_left (fun s v -> IS.add v s) acc (Monomial.vars m))
      p.terms IS.empty
  in
  List.map Var.of_id (IS.elements ids)

let eval env (p : t) =
  MMap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun acc (vid, e) ->
            let x = env (Var.of_id vid) in
            let rec qpow b n = if n = 0 then Q.one else Q.mul b (qpow b (n - 1)) in
            Q.mul acc (qpow x e))
          c m
      in
      Q.add acc v)
    p.terms Q.zero

let subst f (p : t) =
  MMap.fold
    (fun m c acc ->
      let term =
        List.fold_left
          (fun acc (vid, e) ->
            let v = Var.of_id vid in
            let base = match f v with None -> var v | Some p' -> p' in
            mul acc (pow base e))
          (const c) m
      in
      add acc term)
    p.terms zero

let fold f (p : t) init =
  MMap.fold (fun m c acc -> f (List.map (fun (vid, e) -> (Var.of_id vid, e)) m) c acc) p.terms init

let derivative v (p : t) =
  let vid = Var.id v in
  intern
    (MMap.fold
       (fun m c acc ->
         match List.assoc_opt vid m with
         | None -> acc
         | Some e ->
           let m' =
             List.filter_map
               (fun (u, k) ->
                 if u = vid then (if k = 1 then None else Some (u, k - 1)) else Some (u, k))
               m
           in
           MMap.update m'
             (function
               | None -> Some (Q.mul c (Q.of_int e))
               | Some x ->
                 let s = Q.add x (Q.mul c (Q.of_int e)) in
                 if Q.is_zero s then None else Some s)
             acc)
       p.terms MMap.empty)

let leading p = MMap.max_binding_opt p.terms

let leading_coeff p = match leading p with None -> Q.zero | Some (_, c) -> c

let monic_factor p =
  match leading p with
  | None -> (Q.one, p)
  | Some (_, c) -> (c, scale (Q.inv c) p)

let divide_exact p d =
  if is_zero d then raise Division_by_zero;
  let dm, dc = match leading d with Some (m, c) -> (m, c) | None -> assert false in
  (* long division on raw maps; the leading term of [r] strictly decreases,
     so each quotient monomial is fresh and one intern at the end suffices *)
  let rec go q r =
    match MMap.max_binding_opt r with
    | None -> Some (intern q)
    | Some (rm, rc) ->
      (match Monomial.div rm dm with
       | None -> None
       | Some m ->
         let c = Q.div rc dc in
         go (MMap.add m c q) (raw_add_scaled r m (Q.neg c) d.terms))
  in
  go MMap.empty p.terms

(* Pointer-first: same-domain interning makes [a == b] the common case;
   the structural fallback covers values interned on different domains. *)
let equal (a : t) (b : t) = a == b || (a.hkey = b.hkey && MMap.equal Q.equal a.terms b.terms)
let compare (a : t) (b : t) = if a == b then 0 else MMap.compare Q.compare a.terms b.terms

(* ----- multivariate GCD (primitive Euclidean algorithm) -----

   Polynomials are viewed recursively: pick a main variable v, regard the
   polynomial as an element of R[v] with R = Q[remaining vars], and run
   Euclid with pseudo-division, keeping coefficients primitive via
   recursive content computation (Gauss's lemma). Coefficients are exact,
   inputs are small (probability expressions), so naive pseudo-remainder
   growth is acceptable. *)

(* decompose p by the exponent of variable [vid]: index i holds the
   Q[rest]-coefficient of v^i *)
let to_univar vid (p : t) : t array =
  let deg =
    MMap.fold
      (fun m _ acc -> Stdlib.max acc (Option.value ~default:0 (List.assoc_opt vid m)))
      p.terms 0
  in
  let out = Array.make (deg + 1) MMap.empty in
  MMap.iter
    (fun m c ->
      let e = Option.value ~default:0 (List.assoc_opt vid m) in
      let m' = List.filter (fun (u, _) -> u <> vid) m in
      out.(e) <- MMap.add m' c out.(e))
    p.terms;
  Array.map intern out

let from_univar vid (coeffs : t array) : t =
  let v_pow e : t = if e = 0 then one else intern (MMap.singleton [ (vid, e) ] Q.one) in
  Array.to_seq coeffs
  |> Seq.fold_lefti (fun acc e c -> add acc (mul c (v_pow e))) zero

let univar_degree coeffs =
  let rec go i = if i < 0 then -1 else if is_zero coeffs.(i) then go (i - 1) else i in
  go (Array.length coeffs - 1)

let rec gcd (a : t) (b : t) : t =
  if is_zero a then snd (monic_factor b)
  else if is_zero b then snd (monic_factor a)
  else begin
    match (to_q_opt a, to_q_opt b) with
    | Some _, _ | _, Some _ -> one (* a non-zero constant divides everything *)
    | None, None ->
      (* main variable: smallest id occurring in either *)
      let vid =
        let min_var p =
          MMap.fold
            (fun m _ acc ->
              List.fold_left (fun acc (u, _) -> Stdlib.min acc u) acc m)
            p.terms max_int
        in
        Stdlib.min (min_var a) (min_var b)
      in
      let ca, pa = content_and_primitive vid a in
      let cb, pb = content_and_primitive vid b in
      let c = gcd ca cb in
      let g = euclid vid pa pb in
      snd (monic_factor (mul c g))
  end

(* content = recursive gcd of the R-coefficients; primitive part = p / content *)
and content_and_primitive vid (p : t) =
  let coeffs = to_univar vid p in
  let content = Array.fold_left (fun acc c -> if is_zero c then acc else gcd acc c) zero coeffs in
  if is_zero content || equal content one then (one, p)
  else begin
    match divide_exact p content with
    | Some q -> (content, q)
    | None -> assert false (* the content divides every coefficient *)
  end

(* Euclid on primitive polynomials in R[v] using pseudo-remainders. *)
and euclid vid (p : t) (q : t) : t =
  let pc = to_univar vid p and qc = to_univar vid q in
  let dp = univar_degree pc and dq = univar_degree qc in
  if dq < 0 then p
  else if dp < dq then euclid vid q p
  else begin
    let r = pseudo_rem vid pc qc in
    if is_zero r then q (* q is primitive by construction *)
    else begin
      let _, pr = content_and_primitive vid r in
      euclid vid q pr
    end
  end

(* pseudo-remainder of p by q in the main variable: eliminate p's leading
   terms after scaling by q's leading coefficient *)
and pseudo_rem vid pc qc : t =
  let dq = univar_degree qc in
  let lq = qc.(dq) in
  let p = ref (Array.copy pc) in
  let continue_ = ref true in
  while !continue_ do
    let dp = univar_degree !p in
    if dp < dq then continue_ := false
    else begin
      let lp = (!p).(dp) in
      (* p <- lq·p - lp·v^(dp-dq)·q; the work array keeps p's physical size
         (its logical degree only ever shrinks) *)
      let next = Array.make (Array.length !p) zero in
      Array.iteri (fun i c -> next.(i) <- mul lq c) !p;
      for i = 0 to dq do
        next.(i + dp - dq) <- sub next.(i + dp - dq) (mul lp qc.(i))
      done;
      p := next
    end
  done;
  from_univar vid !p

let hash p = p.hkey

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    (* print in decreasing monomial order *)
    let terms = List.rev (MMap.bindings p.terms) in
    let first = ref true in
    List.iter
      (fun (m, c) ->
        let s = Q.sign c in
        if !first then begin
          if s < 0 then Format.pp_print_string fmt "-";
          first := false
        end
        else Format.pp_print_string fmt (if s < 0 then " - " else " + ");
        let mag = Q.abs c in
        let pp_mono fmt m =
          let pr_first = ref true in
          List.iter
            (fun (vid, e) ->
              if not !pr_first then Format.pp_print_string fmt "*";
              pr_first := false;
              Format.pp_print_string fmt (Var.name (Var.of_id vid));
              if e > 1 then Format.fprintf fmt "^%d" e)
            m
        in
        if m = Monomial.one then Q.pp fmt mag
        else if Q.equal mag Q.one then pp_mono fmt m
        else Format.fprintf fmt "%a*%a" Q.pp mag pp_mono m)
      terms
  end
