module Q = Tpan_mathkit.Q
module FM = Tpan_mathkit.Fourier_motzkin
module L = FM.Linform
module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

module Metrics = Tpan_obs.Metrics

type stats = {
  queries : int;
  trivial : int;
  hits : int;
  misses : int;
  witness_refutations : int;
  fm_runs : int;
  baseline_fm_runs : int;
}

(* Per-instance counters back the legacy [stats]/[reset_stats] API;
   every bump is mirrored into the process-wide registry aggregates
   below so `tpan profile` / `--metrics` see all oracles combined.
   [reset_stats] only touches the per-instance side. *)
type mutable_stats = {
  c_queries : Metrics.Counter.t;
  c_trivial : Metrics.Counter.t;
  c_hits : Metrics.Counter.t;
  c_misses : Metrics.Counter.t;
  c_witness_refutations : Metrics.Counter.t;
  c_fm_runs : Metrics.Counter.t;
  c_baseline : Metrics.Counter.t;
}

let g_queries = Metrics.counter "symbolic.oracle.queries"
let g_trivial = Metrics.counter "symbolic.oracle.trivial"
let g_hits = Metrics.counter "symbolic.oracle.memo_hits"
let g_misses = Metrics.counter "symbolic.oracle.memo_misses"
let g_witness_refutations = Metrics.counter "symbolic.oracle.witness_refutations"
let g_fm_runs = Metrics.counter "symbolic.oracle.fm_runs"
let g_baseline = Metrics.counter "symbolic.oracle.baseline_fm_runs"
let g_instances = Metrics.counter "symbolic.oracle.instances"

let bump local global =
  Metrics.Counter.incr local;
  Metrics.Counter.incr global

(* Cached knowledge about one canonical difference form [k] (first
   coefficient +1): does the store entail k ≥ 0 / k > 0, and the same for
   -k. A query form scaled by a negative factor lands on the co_ fields. *)
type verdict = {
  mutable nonneg : bool option;
  mutable pos : bool option;
  mutable co_nonneg : bool option;
  mutable co_pos : bool option;
}

module FormTbl = Hashtbl.Make (struct
  type t = L.t

  let equal = L.equal
  let hash = L.hash
end)

(* Canonical memo keys are interned before they touch the memo table, so
   the repeated queries an analysis makes for one difference form share a
   single key node instead of re-allocating the scaled form each time.
   The table is per-instance (oracles are single-domain), weak (dead keys
   are collectable), and shared between lookup and insert. *)
module KeyTbl = Hashcons.Make (struct
  type t = L.t

  let equal = L.equal
  let hash = L.hash
end)

type t = {
  store : FM.constr list;  (* preprocessed inequalities, nonneg closure included *)
  subst : L.t IntMap.t;  (* equality-eliminated variable -> definition *)
  covered : IntSet.t;  (* time vars whose non-negativity the store already carries *)
  known : IntSet.t;  (* vars the witness assignment speaks for (default 0) *)
  witness_env : (int -> Q.t) option;
  consistent : bool;
  memo : verdict FormTbl.t;
  keys : KeyTbl.table;
  memo_on : bool;
  witness_on : bool;
  s : mutable_stats;
}

(* Replace every equality-eliminated variable by its definition. The subst
   map is idempotent (definitions contain no eliminated variables), so one
   pass suffices. *)
let subst_form subst f =
  if IntMap.is_empty subst then f
  else
    List.fold_left
      (fun acc (v, c) ->
        match IntMap.find_opt v subst with
        | None -> L.add acc (L.scale c (L.var v))
        | Some def -> L.add acc (L.scale c def))
      (L.const (L.constant f)) (L.coeffs f)

let to_fm_parts (rel : Constraints.relation) lhs rhs =
  let a = Linexpr.to_form lhs and b = Linexpr.to_form rhs in
  match rel with
  | `Ge -> (FM.ge a b).FM.form, `Ineq FM.Ge
  | `Gt -> (FM.gt a b).FM.form, `Ineq FM.Gt
  | `Le -> (FM.ge b a).FM.form, `Ineq FM.Ge
  | `Lt -> (FM.gt b a).FM.form, `Ineq FM.Gt
  | `Eq -> (FM.eq a b).FM.form, `Equality

let fresh_stats () =
  {
    c_queries = Metrics.Counter.create ();
    c_trivial = Metrics.Counter.create ();
    c_hits = Metrics.Counter.create ();
    c_misses = Metrics.Counter.create ();
    c_witness_refutations = Metrics.Counter.create ();
    c_fm_runs = Metrics.Counter.create ();
    c_baseline = Metrics.Counter.create ();
  }

let make ?(memo = true) ?(witness = true) cs =
  Metrics.Counter.incr g_instances;
  let entries = Constraints.constraints cs in
  let parts = List.map (fun (_, rel, lhs, rhs) -> to_fm_parts rel lhs rhs) entries in
  (* Collect the time symbols mentioned anywhere: their non-negativity is
     part of the system (Constraints.fm_system adds it per query; we bake
     it into the store once). *)
  let time_vars =
    List.fold_left
      (fun acc (f, _) ->
        List.fold_left
          (fun acc v -> if Var.is_time (Var.of_id v) then IntSet.add v acc else acc)
          acc (L.vars f))
      IntSet.empty parts
  in
  (* Equality substitution: each equality [f = 0] defines one of its
     variables; definitions are kept mutually substituted (triangular). *)
  let consistent = ref true in
  let subst, ineqs =
    List.fold_left
      (fun (subst, ineqs) (f, kind) ->
        match kind with
        | `Ineq rel -> (subst, (f, rel) :: ineqs)
        | `Equality ->
          let f = subst_form subst f in
          if L.is_const f then begin
            if not (Q.is_zero (L.constant f)) then consistent := false;
            (subst, ineqs)
          end
          else begin
            (* prefer a unit coefficient; otherwise take the first *)
            let coeffs = L.coeffs f in
            let v, c =
              match List.find_opt (fun (_, c) -> Q.equal (Q.abs c) Q.one) coeffs with
              | Some vc -> vc
              | None -> List.hd coeffs
            in
            (* v = -(f - c·v)/c *)
            let def = L.scale (Q.neg (Q.inv c)) (L.add f (L.scale (Q.neg c) (L.var v))) in
            let subst = IntMap.map (fun d -> subst_form (IntMap.singleton v def) d) subst in
            (IntMap.add v def subst, ineqs)
          end)
      (IntMap.empty, []) parts
  in
  (* The subst map is only final now — apply it to every inequality,
     including ones recorded before the equality that defined a variable. *)
  let ineqs = List.map (fun (f, rel) -> { FM.form = subst_form subst f; rel }) ineqs in
  (* Non-negativity closure: for an eliminated time var the constraint
     lands on its definition. *)
  let nonneg =
    IntSet.fold
      (fun v acc -> FM.ge (subst_form subst (L.var v)) L.zero :: acc)
      time_vars []
  in
  let store, consistent =
    if not !consistent then ([], false)
    else
      match FM.normalize_system (nonneg @ ineqs) with
      | None -> ([], false)
      | Some store -> (store, true)
  in
  let covered = IntSet.filter (fun v -> not (IntMap.mem v subst)) time_vars in
  let known =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc v -> IntSet.add v acc) acc (L.vars c.FM.form))
      covered store
  in
  let witness_env, consistent =
    if not consistent then (None, false)
    else begin
      (* Prefer a point in the strict interior: strengthening every bound
         to strict maximizes the filter's refutation power. *)
      let strict = List.map (fun c -> { c with FM.rel = FM.Gt }) store in
      match FM.find_model strict with
      | Some bindings -> (Some bindings, true)
      | None ->
        (match FM.find_model store with
         | Some bindings -> (Some bindings, true)
         | None -> (None, false))
    end
  in
  let witness_env =
    Option.map
      (fun bindings ->
        let m = List.fold_left (fun acc (v, q) -> IntMap.add v q acc) IntMap.empty bindings in
        fun v ->
          match IntMap.find_opt v m with
          | Some q -> q
          | None -> if IntSet.mem v known then Q.zero else Q.one)
      witness_env
  in
  {
    store;
    subst;
    covered;
    known;
    witness_env;
    consistent;
    memo = FormTbl.create 64;
    keys = KeyTbl.create 64;
    memo_on = memo;
    witness_on = witness;
    s = fresh_stats ();
  }

let is_consistent o = o.consistent

let witness o =
  match o.witness_env with
  | None -> None
  | Some env ->
    let base = IntSet.fold (fun v acc -> (Var.of_id v, env v) :: acc) o.known [] in
    (* equality-eliminated variables get their definition's value, so the
       result is a model of the original system, equalities included *)
    Some (IntMap.fold (fun v def acc -> (Var.of_id v, L.eval env def) :: acc) o.subst base)

(* ---------------- the decision core ---------------- *)

(* Non-negativity constraints for query time vars the store does not
   already cover (Constraints.fm_system's [extra] argument, on demand). *)
let query_extras o d =
  List.filter_map
    (fun v ->
      if IntSet.mem v o.covered then None
      else if Var.is_time (Var.of_id v) then Some (FM.ge (L.var v) L.zero)
      else None)
    (L.vars d)

let run_fm o goal_neg d =
  bump o.s.c_fm_runs g_fm_runs;
  not (FM.feasible (goal_neg :: (query_extras o d @ o.store)))

type field = Nonneg | Pos

let lookup o key flipped field =
  match FormTbl.find_opt o.memo key with
  | None -> None
  | Some v ->
    (match (field, flipped) with
     | Nonneg, false -> v.nonneg
     | Pos, false -> v.pos
     | Nonneg, true -> v.co_nonneg
     | Pos, true -> v.co_pos)

let remember o key flipped field value =
  let v =
    match FormTbl.find_opt o.memo key with
    | Some v -> v
    | None ->
      let v = { nonneg = None; pos = None; co_nonneg = None; co_pos = None } in
      FormTbl.add o.memo key v;
      v
  in
  (match (field, flipped) with
   | Nonneg, false -> v.nonneg <- Some value
   | Pos, false -> v.pos <- Some value
   | Nonneg, true -> v.co_nonneg <- Some value
   | Pos, true -> v.co_pos <- Some value)

(* Does the store entail [d ≥ 0] (Nonneg) or [d > 0] (Pos)? *)
let decide o field d =
  bump o.s.c_queries g_queries;
  if L.is_const d then begin
    bump o.s.c_trivial g_trivial;
    let s = Q.sign (L.constant d) in
    (not o.consistent) || (match field with Nonneg -> s >= 0 | Pos -> s > 0)
  end
  else if not o.consistent then begin
    (* vacuous: every model (there are none) satisfies everything *)
    bump o.s.c_trivial g_trivial;
    true
  end
  else begin
    let k =
      match L.coeffs d with (_, k) :: _ -> k | [] -> assert false
    in
    let key = KeyTbl.intern o.keys (L.scale (Q.inv (Q.abs k)) d) in
    let flipped = Q.sign k < 0 in
    let cached = if o.memo_on then lookup o key flipped field else None in
    match cached with
    | Some v ->
      bump o.s.c_hits g_hits;
      v
    | None ->
      bump o.s.c_misses g_misses;
      let refuted =
        o.witness_on
        && (match o.witness_env with
            | None -> false
            | Some env ->
              let s = Q.sign (L.eval env d) in
              (match field with Nonneg -> s < 0 | Pos -> s <= 0))
      in
      let value =
        if refuted then begin
          bump o.s.c_witness_refutations g_witness_refutations;
          false
        end
        else
          let goal_neg =
            (* ¬(d ≥ 0) is -d > 0; ¬(d > 0) is -d ≥ 0 *)
            match field with
            | Nonneg -> { FM.form = L.neg d; rel = FM.Gt }
            | Pos -> { FM.form = L.neg d; rel = FM.Ge }
          in
          run_fm o goal_neg d
      in
      if o.memo_on then remember o key flipped field value;
      value
  end

let charge o n =
  Metrics.Counter.add o.s.c_baseline n;
  Metrics.Counter.add g_baseline n

(* ---------------- public queries ---------------- *)

let diff o a b = subst_form o.subst (L.sub (Linexpr.to_form a) (Linexpr.to_form b))

let entails o (rel : Constraints.relation) a b =
  match rel with
  | `Ge -> charge o 1; decide o Nonneg (diff o a b)
  | `Gt -> charge o 1; decide o Pos (diff o a b)
  | `Le -> charge o 1; decide o Nonneg (diff o b a)
  | `Lt -> charge o 1; decide o Pos (diff o b a)
  | `Eq ->
    (* direct procedure order: refute [d > 0] first, then [d < 0] *)
    let d = diff o a b in
    if not (decide o Nonneg (L.neg d)) then begin charge o 1; false end
    else begin charge o 2; decide o Nonneg d end

let compare_exprs o a b : Constraints.comparison =
  let d = diff o b a in
  if decide o Pos d then begin charge o 1; Constraints.Lt end
  else if decide o Pos (L.neg d) then begin charge o 2; Constraints.Gt end
  else if not (decide o Nonneg (L.neg d)) then begin charge o 3; Constraints.Unknown end
  else begin
    charge o 4;
    if decide o Nonneg d then Constraints.Eq else Constraints.Unknown
  end

(* ---------------- statistics ---------------- *)

let stats o =
  {
    queries = Metrics.Counter.value o.s.c_queries;
    trivial = Metrics.Counter.value o.s.c_trivial;
    hits = Metrics.Counter.value o.s.c_hits;
    misses = Metrics.Counter.value o.s.c_misses;
    witness_refutations = Metrics.Counter.value o.s.c_witness_refutations;
    fm_runs = Metrics.Counter.value o.s.c_fm_runs;
    baseline_fm_runs = Metrics.Counter.value o.s.c_baseline;
  }

let reset_stats o =
  Metrics.Counter.reset o.s.c_queries;
  Metrics.Counter.reset o.s.c_trivial;
  Metrics.Counter.reset o.s.c_hits;
  Metrics.Counter.reset o.s.c_misses;
  Metrics.Counter.reset o.s.c_witness_refutations;
  Metrics.Counter.reset o.s.c_fm_runs;
  Metrics.Counter.reset o.s.c_baseline

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>queries              %d@,trivial              %d@,memo hits            %d@,\
     memo misses          %d@,witness refutations  %d@,FM runs              %d@,\
     FM runs (uncached)   %d@]"
    s.queries s.trivial s.hits s.misses s.witness_refutations s.fm_runs s.baseline_fm_runs
