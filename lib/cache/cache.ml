module J = Tpan_obs.Jsonv
module Metrics = Tpan_obs.Metrics
module Log = Tpan_obs.Log

type 'a entry = { value : 'a; weight : int; mutable tick : int }

type 'a t = {
  name : string;
  budget : int;
  table : (string, 'a entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable clock : int;
  mutable bytes : int;
  hits : Metrics.Counter.t;
  misses : Metrics.Counter.t;
  evictions : Metrics.Counter.t;
  bytes_g : Metrics.Gauge.t;
  entries_g : Metrics.Gauge.t;
  persist : (string * ('a -> J.t)) option;  (* file path, encoder *)
}

type stats = { hits : int; misses : int; evictions : int; entries : int; bytes : int }

let locked (c : _ t) f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

(* Charge the key and a few words of table/entry overhead alongside the
   value itself, so even immediate values carry a non-zero weight. *)
let weigh key v =
  (Obj.reachable_words (Obj.repr v) + Obj.reachable_words (Obj.repr key) + 8)
  * (Sys.word_size / 8)

let publish_gauges (c : _ t) =
  Metrics.Gauge.set c.bytes_g (float_of_int c.bytes);
  Metrics.Gauge.set c.entries_g (float_of_int (Hashtbl.length c.table))

let touch (c : _ t) e =
  c.clock <- c.clock + 1;
  e.tick <- c.clock

(* Evict least-recently-used entries until the total fits the budget,
   never evicting [keep] (the entry whose insertion triggered this). *)
let enforce_budget (c : _ t) ~keep =
  while
    c.bytes > c.budget
    &&
    let victim = ref None in
    Hashtbl.iter
      (fun k (e : _ entry) ->
        if k <> keep then
          match !victim with
          | Some (_, t) when t <= e.tick -> ()
          | _ -> victim := Some (k, e.tick))
      c.table;
    match !victim with
    | None -> false
    | Some (k, _) ->
      let e = Hashtbl.find c.table k in
      Hashtbl.remove c.table k;
      c.bytes <- c.bytes - e.weight;
      Metrics.Counter.incr c.evictions;
      true
  do
    ()
  done;
  publish_gauges c

let unlocked_put ?(persist = true) (c : _ t) key value =
  (match Hashtbl.find_opt c.table key with
   | Some old ->
     Hashtbl.remove c.table key;
     c.bytes <- c.bytes - old.weight
   | None -> ());
  let e = { value; weight = weigh key value; tick = 0 } in
  touch c e;
  Hashtbl.replace c.table key e;
  c.bytes <- c.bytes + e.weight;
  enforce_budget c ~keep:key;
  match if persist then c.persist else None with
  | None -> ()
  | Some (path, encode) -> (
    let line =
      J.to_string
        (J.Obj
           [
             ("schema", J.Int 1);
             ("kind", J.Str c.name);
             ("key", J.Str key);
             ("value", encode value);
           ])
    in
    try
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let b = Bytes.of_string (line ^ "\n") in
          ignore (Unix.write fd b 0 (Bytes.length b)))
    with Unix.Unix_error (err, _, _) ->
      Log.warn "cache: cannot persist entry"
        ~fields:
          [ ("cache", J.Str c.name); ("error", J.Str (Unix.error_message err)) ])

let load_persisted (c : _ t) decode path =
  match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match J.of_string line with
               | Ok doc -> (
                 match (J.member "key" doc, J.member "value" doc) with
                 | Some (J.Str key), Some v -> (
                   match decode v with
                   | Some value -> unlocked_put ~persist:false c key value
                   | None -> incr skipped)
                 | _ -> incr skipped)
               | Error _ -> incr skipped
           done
         with End_of_file -> ());
        if !skipped > 0 then
          Log.warn "cache: skipped undecodable persisted entries"
            ~fields:[ ("cache", J.Str c.name); ("skipped", J.Int !skipped) ])

let create ~name ?(budget_bytes = 64 * 1024 * 1024) ?persist ?encode ?decode () =
  let persist_cfg =
    match (persist, encode, decode) with
    | None, _, _ -> None
    | Some dir, Some enc, Some _ ->
      (try
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error _ -> ());
      Some (Filename.concat dir (name ^ ".ndjson"), enc)
    | Some _, _, _ ->
      invalid_arg "Cache.create: persist requires both encode and decode"
  in
  let metric m = "cache." ^ name ^ "." ^ m in
  let c =
    {
      name;
      budget = budget_bytes;
      table = Hashtbl.create 64;
      mutex = Mutex.create ();
      clock = 0;
      bytes = 0;
      hits = Metrics.counter (metric "hits");
      misses = Metrics.counter (metric "misses");
      evictions = Metrics.counter (metric "evictions");
      bytes_g = Metrics.gauge (metric "bytes");
      entries_g = Metrics.gauge (metric "entries");
      persist = persist_cfg;
    }
  in
  (match (persist_cfg, decode) with
   | Some (path, _), Some dec -> locked c (fun () -> load_persisted c dec path)
   | _ -> ());
  c

let unlocked_find (c : _ t) key =
  match Hashtbl.find_opt c.table key with
  | Some e ->
    Metrics.Counter.incr c.hits;
    touch c e;
    Some e.value
  | None ->
    Metrics.Counter.incr c.misses;
    None

let find c key = locked c (fun () -> unlocked_find c key)
let put c key value = locked c (fun () -> unlocked_put c key value)

let find_or_build c key build =
  locked c (fun () ->
      match unlocked_find c key with
      | Some v -> v
      | None ->
        let v = build () in
        unlocked_put c key v;
        v)

let mem c key = locked c (fun () -> Hashtbl.mem c.table key)

let remove c key =
  locked c (fun () ->
      match Hashtbl.find_opt c.table key with
      | None -> ()
      | Some e ->
        Hashtbl.remove c.table key;
        c.bytes <- c.bytes - e.weight;
        publish_gauges c)

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.table;
      c.bytes <- 0;
      publish_gauges c)

let stats c =
  locked c (fun () ->
      {
        hits = Metrics.Counter.value c.hits;
        misses = Metrics.Counter.value c.misses;
        evictions = Metrics.Counter.value c.evictions;
        entries = Hashtbl.length c.table;
        bytes = c.bytes;
      })

let name c = c.name
let budget_bytes c = c.budget
