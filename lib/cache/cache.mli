(** Keyed artifact cache: in-memory LRU under a byte budget, with
    optional NDJSON persistence.

    One ['a t] instance holds one {e kind} of artifact (closed-form
    throughput expressions, analysis reports, simulation summaries, …),
    keyed by strings — in practice a {!Tpan.Canonical} content hash plus
    the artifact's own parameters. The cache is the reason identical
    nets hit the symbolic build exactly once: {!find_or_build} computes
    under the instance mutex, so concurrent requests for the same key
    from several domains observe exactly one build and share the result
    {e physically} (OCaml 5 domains share the major heap).

    Sizing is by estimated bytes ({!Obj.reachable_words}); when an
    insertion pushes the total over the budget, least-recently-used
    entries are evicted until it fits (the entry just inserted is never
    evicted by its own insertion).

    Every instance registers three counters and two gauges in
    {!Tpan_obs.Metrics}: [cache.<name>.hits], [cache.<name>.misses],
    [cache.<name>.evictions], [cache.<name>.bytes],
    [cache.<name>.entries] — the serve smoke test asserts "exactly one
    symbolic build" on the miss counter.

    Persistence is opt-in and codec-based: pass [persist] (a directory)
    together with [encode]/[decode] and every store appends one NDJSON
    line [{"schema": 1, "kind": <name>, "key": …, "value": …}] to
    [<dir>/<name>.ndjson]; a fresh instance replays the file at
    creation (last write wins, byte budget enforced). Artifacts are
    re-{e decoded} — never unmarshaled — so values built by an earlier
    process re-intern their symbols in this one. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  bytes : int;  (** estimated resident size of all values *)
}

val create :
  name:string ->
  ?budget_bytes:int ->
  ?persist:string ->
  ?encode:('a -> Tpan_obs.Jsonv.t) ->
  ?decode:(Tpan_obs.Jsonv.t -> 'a option) ->
  unit ->
  'a t
(** [budget_bytes] defaults to 64 MiB. [persist] without both codecs is
    rejected ([Invalid_argument]); an unreadable or torn persistence
    file degrades to an empty cache (a warning is logged, lines that do
    not decode are skipped). *)

val find : 'a t -> string -> 'a option
(** Bumps the hit/miss counters and the entry's recency. *)

val put : 'a t -> string -> 'a -> unit
(** Insert or replace, then evict LRU entries beyond the byte budget
    (and append to the persistence file, when configured). *)

val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_build c key build] returns the cached value or runs
    [build] and stores its result — atomically: two domains racing on
    the same key observe one [build] call and the same physical value.
    A raising [build] caches nothing (the exception passes through and
    the miss is still counted). *)

val mem : 'a t -> string -> bool
(** No counter or recency effect. *)

val remove : 'a t -> string -> unit

val clear : 'a t -> unit
(** Drop every entry (counters keep their totals; the persistence file
    is left untouched — it is an append-only journal, not the truth). *)

val stats : 'a t -> stats
val name : 'a t -> string
val budget_bytes : 'a t -> int
