module J = Tpan_obs.Jsonv
module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun

let q_to_json q = J.Str (Q.to_string q)

let q_of_json = function
  | J.Str s | J.Raw s -> (try Some (Q.of_decimal_string s) with _ -> None)
  | J.Int n -> Some (Q.of_int n)
  | _ -> None

(* Inverse of [Var.name]: "E(x)" / "F(x)" / "f(x)" wrappers, bare labels
   are parameters. *)
let var_of_name s =
  let n = String.length s in
  let wrapped prefix =
    n > String.length prefix + 1
    && String.sub s 0 (String.length prefix) = prefix
    && s.[n - 1] = ')'
  in
  let label () = String.sub s 2 (n - 3) in
  if wrapped "E(" then Var.enabling (label ())
  else if wrapped "F(" then Var.firing (label ())
  else if wrapped "f(" then Var.frequency (label ())
  else Var.param s

let poly_to_json p =
  let terms =
    Poly.fold
      (fun mono c acc ->
        J.Obj
          [
            ("c", q_to_json c);
            ( "m",
              J.List
                (List.map
                   (fun (v, e) -> J.List [ J.Str (Var.name v); J.Int e ])
                   mono) );
          ]
        :: acc)
      p []
  in
  J.List (List.rev terms)

let poly_of_json doc =
  let exception Bad in
  let mono_of = function
    | J.List [ J.Str name; J.Int e ] when e >= 1 ->
      Poly.pow (Poly.var (var_of_name name)) e
    | _ -> raise Bad
  in
  let term_of = function
    | J.Obj _ as t -> (
      match (J.member "c" t, J.member "m" t) with
      | Some c, Some (J.List monos) -> (
        match q_of_json c with
        | Some q ->
          List.fold_left (fun acc m -> Poly.mul acc (mono_of m)) (Poly.const q) monos
        | None -> raise Bad)
      | _ -> raise Bad)
    | _ -> raise Bad
  in
  match doc with
  | J.List terms -> (
    try Some (List.fold_left (fun acc t -> Poly.add acc (term_of t)) Poly.zero terms)
    with Bad -> None)
  | _ -> None

let ratfun_to_json r =
  J.Obj [ ("num", poly_to_json (Rf.num r)); ("den", poly_to_json (Rf.den r)) ]

let ratfun_of_json doc =
  match (J.member "num" doc, J.member "den" doc) with
  | Some n, Some d -> (
    match (poly_of_json n, poly_of_json d) with
    | Some num, Some den when not (Poly.is_zero den) -> Some (Rf.make num den)
    | _ -> None)
  | _ -> None

(* ----- concrete timed reachability graphs -----

   The net itself rides along as its .tpn source (the canonical
   serialization — [Printer.to_string] / [Parser.parse_string] round-trip
   exactly, which the canonical-hash tests prove), so a decoded graph is
   self-contained: its [tpn] field is rebuilt by parsing, and the state
   arrays index the reparsed net's places and transitions. The parser
   assigns indices in declaration order, which the printer preserves; the
   decoder still cross-checks the recorded place/transition name lists
   against the reparsed net and rejects the entry on any mismatch (a
   stale cache line from an older printer falls back to a rebuild, never
   to a silently misindexed graph). *)

module Sem = Tpan_core.Semantics
module Net = Tpan_petri.Net

let kind_chr = function Sem.Decision -> 'D' | Sem.Advance -> 'A' | Sem.Terminal -> 'T'

let kind_of_chr = function
  | 'D' -> Some Sem.Decision
  | 'A' -> Some Sem.Advance
  | 'T' -> Some Sem.Terminal
  | _ -> None

let trg_to_json (g : (Q.t, Q.t) Sem.graph) =
  let net = Tpan_core.Tpn.net g.Sem.tpn in
  let strs xs = J.List (List.map (fun s -> J.Str s) xs) in
  let ints xs = J.List (List.map (fun i -> J.Int i) xs) in
  let qarr a = J.List (Array.to_list (Array.map q_to_json a)) in
  let state (s : Q.t Sem.state) =
    J.Obj
      [
        ("m", ints (Array.to_list s.Sem.marking));
        ("ret", qarr s.Sem.ret);
        ("rft", qarr s.Sem.rft);
      ]
  in
  let edge (e : (Q.t, Q.t) Sem.edge) =
    J.Obj
      [
        ("src", J.Int e.Sem.src);
        ("dst", J.Int e.Sem.dst);
        ("delay", q_to_json e.Sem.delay);
        ("prob", q_to_json e.Sem.prob);
        ("fired", ints e.Sem.fired);
        ("completed", ints e.Sem.completed);
        ("just", strs e.Sem.justification);
      ]
  in
  J.Obj
    [
      ("net", J.Str (Tpan_dsl.Printer.to_string g.Sem.tpn));
      ("places", strs (List.map (Net.place_name net) (Net.places net)));
      ( "transitions",
        strs (List.map (Net.trans_name net) (Net.transitions net)) );
      ("kinds", J.Str (String.init (Array.length g.Sem.kinds)
                         (fun i -> kind_chr g.Sem.kinds.(i))));
      ("states", J.List (List.map state (Array.to_list g.Sem.states)));
      ( "out",
        J.List
          (Array.to_list (Array.map (fun es -> J.List (List.map edge es)) g.Sem.out)) );
    ]

let trg_of_json doc =
  let exception Bad in
  let need = function Some x -> x | None -> raise Bad in
  let str = function J.Str s -> s | _ -> raise Bad in
  let int = function J.Int n -> n | _ -> raise Bad in
  let list = function J.List xs -> xs | _ -> raise Bad in
  let q j = need (q_of_json j) in
  let qarr j = Array.of_list (List.map q (list j)) in
  try
    let tpn = Tpan_dsl.Parser.parse_string (str (need (J.member "net" doc))) in
    let net = Tpan_core.Tpn.net tpn in
    let names field live =
      if List.map str (list (need (J.member field doc))) <> live then raise Bad
    in
    names "places" (List.map (Net.place_name net) (Net.places net));
    names "transitions" (List.map (Net.trans_name net) (Net.transitions net));
    let state j =
      {
        Sem.marking =
          Array.of_list (List.map int (list (need (J.member "m" j))));
        ret = qarr (need (J.member "ret" j));
        rft = qarr (need (J.member "rft" j));
      }
    in
    let edge j =
      {
        Sem.src = int (need (J.member "src" j));
        dst = int (need (J.member "dst" j));
        delay = q (need (J.member "delay" j));
        prob = q (need (J.member "prob" j));
        fired = List.map int (list (need (J.member "fired" j)));
        completed = List.map int (list (need (J.member "completed" j)));
        justification = List.map str (list (need (J.member "just" j)));
      }
    in
    let kinds_s = str (need (J.member "kinds" doc)) in
    let kinds =
      Array.init (String.length kinds_s) (fun i ->
          need (kind_of_chr kinds_s.[i]))
    in
    let states =
      Array.of_list (List.map state (list (need (J.member "states" doc))))
    in
    let out =
      Array.of_list
        (List.map (fun es -> List.map edge (list es))
           (list (need (J.member "out" doc))))
    in
    if
      Array.length states <> Array.length kinds
      || Array.length states <> Array.length out
      || Array.length states = 0
    then raise Bad;
    (* per-state array shapes must match the reparsed net, or a
       corrupted-but-well-formed line would decode to [Some] and blow
       up deep inside analysis code instead of falling back to a
       rebuild *)
    let n_places = List.length (Net.places net) in
    let n_trans = List.length (Net.transitions net) in
    Array.iter
      (fun (s : Q.t Sem.state) ->
        if
          Array.length s.Sem.marking <> n_places
          || Array.length s.Sem.ret <> n_trans
          || Array.length s.Sem.rft <> n_trans
        then raise Bad)
      states;
    Array.iter
      (fun es ->
        List.iter
          (fun e ->
            if e.Sem.src < 0 || e.Sem.src >= Array.length states
               || e.Sem.dst < 0 || e.Sem.dst >= Array.length states
            then raise Bad)
          es)
      out;
    Some { Sem.tpn; states; out; kinds }
  with _ -> None
