module J = Tpan_obs.Jsonv
module Q = Tpan_mathkit.Q
module Var = Tpan_symbolic.Var
module Poly = Tpan_symbolic.Poly
module Rf = Tpan_symbolic.Ratfun

let q_to_json q = J.Str (Q.to_string q)

let q_of_json = function
  | J.Str s | J.Raw s -> (try Some (Q.of_decimal_string s) with _ -> None)
  | J.Int n -> Some (Q.of_int n)
  | _ -> None

(* Inverse of [Var.name]: "E(x)" / "F(x)" / "f(x)" wrappers, bare labels
   are parameters. *)
let var_of_name s =
  let n = String.length s in
  let wrapped prefix =
    n > String.length prefix + 1
    && String.sub s 0 (String.length prefix) = prefix
    && s.[n - 1] = ')'
  in
  let label () = String.sub s 2 (n - 3) in
  if wrapped "E(" then Var.enabling (label ())
  else if wrapped "F(" then Var.firing (label ())
  else if wrapped "f(" then Var.frequency (label ())
  else Var.param s

let poly_to_json p =
  let terms =
    Poly.fold
      (fun mono c acc ->
        J.Obj
          [
            ("c", q_to_json c);
            ( "m",
              J.List
                (List.map
                   (fun (v, e) -> J.List [ J.Str (Var.name v); J.Int e ])
                   mono) );
          ]
        :: acc)
      p []
  in
  J.List (List.rev terms)

let poly_of_json doc =
  let exception Bad in
  let mono_of = function
    | J.List [ J.Str name; J.Int e ] when e >= 1 ->
      Poly.pow (Poly.var (var_of_name name)) e
    | _ -> raise Bad
  in
  let term_of = function
    | J.Obj _ as t -> (
      match (J.member "c" t, J.member "m" t) with
      | Some c, Some (J.List monos) -> (
        match q_of_json c with
        | Some q ->
          List.fold_left (fun acc m -> Poly.mul acc (mono_of m)) (Poly.const q) monos
        | None -> raise Bad)
      | _ -> raise Bad)
    | _ -> raise Bad
  in
  match doc with
  | J.List terms -> (
    try Some (List.fold_left (fun acc t -> Poly.add acc (term_of t)) Poly.zero terms)
    with Bad -> None)
  | _ -> None

let ratfun_to_json r =
  J.Obj [ ("num", poly_to_json (Rf.num r)); ("den", poly_to_json (Rf.den r)) ]

let ratfun_of_json doc =
  match (J.member "num" doc, J.member "den" doc) with
  | Some n, Some d -> (
    match (poly_of_json n, poly_of_json d) with
    | Some num, Some den when not (Poly.is_zero den) -> Some (Rf.make num den)
    | _ -> None)
  | _ -> None
