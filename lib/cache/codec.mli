(** JSON codecs for the cacheable symbolic values.

    Persistence never marshals: a closed-form expression written by one
    process is decoded structurally by the next, which re-interns every
    symbol through {!Tpan_symbolic.Var} — so the integer variable ids
    inside decoded polynomials are always this process's ids and decoded
    expressions compose safely with freshly-built ones.

    Encoding is exact: coefficients render through
    {!Tpan_mathkit.Q.to_string} (["a/b"] or an integer) and parse back
    with no rounding. *)

val q_to_json : Tpan_mathkit.Q.t -> Tpan_obs.Jsonv.t
val q_of_json : Tpan_obs.Jsonv.t -> Tpan_mathkit.Q.t option

val var_of_name : string -> Tpan_symbolic.Var.t
(** Re-intern a variable from its display name: ["E(x)"], ["F(x)"],
    ["f(x)"] map to the enabling/firing/frequency symbol of label [x];
    anything else is a [Param]. Inverse of {!Tpan_symbolic.Var.name}. *)

val poly_to_json : Tpan_symbolic.Poly.t -> Tpan_obs.Jsonv.t
(** A list of monomials [{"c": "3/4", "m": [["E(t3)", 2], …]}]. *)

val poly_of_json : Tpan_obs.Jsonv.t -> Tpan_symbolic.Poly.t option

val ratfun_to_json : Tpan_symbolic.Ratfun.t -> Tpan_obs.Jsonv.t
(** [{"num": <poly>, "den": <poly>}]. *)

val ratfun_of_json : Tpan_obs.Jsonv.t -> Tpan_symbolic.Ratfun.t option

val trg_to_json : (Tpan_mathkit.Q.t, Tpan_mathkit.Q.t) Tpan_core.Semantics.graph -> Tpan_obs.Jsonv.t
(** A concrete timed reachability graph, self-contained: the net rides
    along as its canonical [.tpn] source and the state/edge arrays are
    rendered with exact rational entries. *)

val trg_of_json : Tpan_obs.Jsonv.t -> (Tpan_mathkit.Q.t, Tpan_mathkit.Q.t) Tpan_core.Semantics.graph option
(** Reparse the embedded net and rebuild the graph against it. [None]
    on any structural mismatch — including a place/transition name list
    that disagrees with the reparsed net, so a stale line falls back to
    a rebuild rather than a misindexed graph. *)
