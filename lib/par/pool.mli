(** Fork-join worker pool over OCaml 5 domains.

    The pool's one guarantee is {e determinism}: for any jobs count,
    {!map} returns exactly [List.map f xs] — results land in the slot of
    their input regardless of which domain computed them or in what
    order. Combined with the exact rational arithmetic used throughout
    the analysis pipeline, a parallel sweep is byte-identical to a
    sequential one.

    Design notes:

    - Fork-join, spawn-per-call: each [map] spawns up to [jobs - 1]
      domains and joins them before returning. Domain spawn is tens of
      microseconds — negligible against the multi-millisecond tasks this
      pool exists for — and the absence of a persistent pool means no
      shutdown protocol, no idle domains inside library clients, and no
      interference with other users of the domain budget.
    - Work stealing via a single [Atomic] index over the input array;
      the calling domain participates, so [jobs = 1] equals plain
      [List.map] even in cost.
    - Worker domains install a {!Tpan_obs.Metrics.Local} delta buffer
      and a {!Tpan_obs.Log.Local} record buffer; both are folded into
      the global registry / replayed through the log sinks at join time,
      so metric totals are scheduling-independent and log lines never
      interleave mid-line. Worker [k] traces in lane [k + 1]
      ({!Tpan_obs.Trace.set_lane}), so spans closed inside workers land
      in the merged Chrome trace as parallel tracks, wrapped in a
      per-worker [pool.worker] span. Each worker also records the GC
      words it allocated (OCaml 5 keeps allocation counters per domain)
      into the [par.pool.worker_minor_words] /
      [par.pool.worker_major_words] histograms, so GC pressure inside
      the pool is visible in [tpan profile] and the OpenMetrics export.
    - Nested calls run sequentially: a task that itself calls [map]
      (e.g. a parallel linear solve inside a parallel sweep point) gets
      the sequential fast path instead of a domain explosion.
    - The spawning domain's {!Tpan_obs.Context} (trace id, deadline
      token) is re-installed inside every worker, so spans and log
      records from all lanes carry the owning request's ids and a
      [--deadline] crossing aborts every lane at its next
      {!Tpan_obs.Cancel.checkpoint}. *)

val recommended_jobs : unit -> int
(** Domains worth using on this machine: [TPAN_JOBS] when set to a
    positive integer, else [Domain.recommended_domain_count ()], capped
    at 64. Always at least 1. *)

val set_default_jobs : int -> unit
(** Set the jobs count used when [?jobs] is omitted ([max 1 n]). The CLI
    wires [-j] to this. Defaults to 1 — parallelism is opt-in. *)

val default_jobs : unit -> int

val in_worker : unit -> bool
(** True while executing inside a pool worker (or inside a task run on
    the calling domain during a parallel region). Used by library code
    to pick a sequential algorithm rather than nesting pools. *)

module Scratch : sig
  (** Per-domain reusable scratch state.

      A hot task (e.g. one simulation replication) needs working arrays
      it would otherwise reallocate on every call. A [Scratch.t] hands
      each domain its own lazily-created instance via [Domain.DLS]:
      workers never share or lock it, and repeated calls on one domain
      reuse the same buffers. Only sound for state that is dead again
      when the using function returns (no reentrancy across [get]). *)

  type 'a t

  val create : (unit -> 'a) -> 'a t
  (** Register a scratch slot; [init] runs once per domain, on first
      {!get}. Call at module initialization, not per use. *)

  val get : 'a t -> 'a
  (** This domain's instance. *)
end

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed by up to [jobs]
    domains. An exception raised by any [f x] is re-raised on the
    calling domain after all workers have joined (the first by input
    order wins, deterministically). *)

type error = { index : int; message : string; exn : exn }
(** A task failure: input position, [Printexc.to_string] render, and the
    original exception. *)

val try_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, error) result list
(** Like {!map} but captures each task's failure in its slot instead of
    re-raising, so one bad sweep point doesn't lose the rest of the
    grid. Result order matches input order. *)

val parallel_for : ?jobs:int -> ?min_chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for n body] partitions [0 .. n-1] into contiguous blocks
    of at least [min_chunk] (default 1) indices and runs [body lo hi]
    (inclusive bounds) on up to [jobs] domains, the caller included.
    Blocks are disjoint, so [body] may write disjoint array slots
    without synchronisation. Joins all domains before returning;
    exceptions re-raise after the join. Runs sequentially when [n] is
    small, [jobs <= 1], or already inside a worker. *)

(** {1 Long-running service workers} *)

module Service : sig
  val run : workers:int -> (int -> unit) -> unit
  (** [run ~workers f] runs [f k] for [k = 0 .. workers-1], worker 0 on
      the calling domain and the rest on fresh domains, and joins them
      all before returning. Built for workers that live as long as the
      process (a server's accept loops), so — unlike {!map} workers —
      they install {e no} metrics or log buffering: counter increments
      and log records publish immediately, keeping a live [/metrics]
      endpoint truthful while the workers run. Each worker gets trace
      lane [k] and the caller's request context. The nested-call guard
      is {e not} set: work dispatched from inside a service worker
      (e.g. a request fanning a sweep over {!map}) still parallelizes.
      Keep worker-side logging low-volume — records drive the sinks
      from multiple domains. An exception escaping a spawned worker is
      logged and swallows that worker; one escaping worker 0 re-raises
      after the others join. *)
end
