type error = { index : int; message : string; exn : exn }

(* ---------------- jobs accounting ---------------- *)

let recommended_jobs () =
  let from_env =
    match Sys.getenv_opt "TPAN_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> Some n
      | _ -> None)
    | None -> None
  in
  let n =
    match from_env with Some n -> n | None -> Domain.recommended_domain_count ()
  in
  max 1 (min 64 n)

let default = ref 1
let set_default_jobs n = default := max 1 n
let default_jobs () = !default

(* ---------------- nested-call guard ---------------- *)

let worker_flag : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get worker_flag)

let with_worker_flag f =
  let flag = Domain.DLS.get worker_flag in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let effective_jobs jobs n =
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  min j (max 1 n)

(* ---------------- worker observability harness ----------------

   Every worker domain gets: a deterministic trace lane (worker [k] is
   lane [k + 1]; the calling domain keeps lane 0), a metrics delta
   buffer, and a log record buffer. The joining domain folds the deltas
   into the global registry and replays the buffered log records through
   the sinks, so neither metric updates nor log lines ever race across
   domains. A [pool.worker] span marks each worker's busy region in the
   merged Chrome trace. *)

type obs_deltas = Tpan_obs.Metrics.Local.deltas * Tpan_obs.Log.record list

(* GC words allocated inside each worker domain's busy region. OCaml 5
   keeps allocation counters per domain, so the quick_stat delta around
   the task is exactly this worker's churn: the histogram sum is the
   total allocated across workers, and the per-observation spread shows
   which domains starve the others into collections. *)
let h_minor = Tpan_obs.Metrics.histogram "par.pool.worker_minor_words"
let h_major = Tpan_obs.Metrics.histogram "par.pool.worker_major_words"

let run_worker ?ctx lane task : obs_deltas =
  Tpan_obs.Trace.set_lane lane;
  (* the spawning domain's request context rides into the worker, so
     spans/logs carry the same trace id and a [--deadline] token aborts
     every lane — worker domains are fresh, their DLS starts empty *)
  Tpan_obs.Context.set ctx;
  Tpan_obs.Metrics.Local.install ();
  Tpan_obs.Log.Local.install ();
  (* [Gc.counters], not [quick_stat]: in OCaml 5 the stat record's
     allocation totals advance only at collection boundaries, so a
     worker that never fills its minor heap would report zero words.
     [counters] folds in the live minor-heap fill. *)
  let minor0, _, major0 = Gc.counters () in
  (* tasks never raise out of [task]: both map and parallel_for capture
     per-task exceptions, so the collects below always run *)
  Tpan_obs.Trace.with_span "pool.worker" (fun sp ->
      Tpan_obs.Trace.add_attr_int sp "lane" lane;
      with_worker_flag task);
  let minor1, _, major1 = Gc.counters () in
  Tpan_obs.Metrics.Histogram.observe h_minor (minor1 -. minor0);
  Tpan_obs.Metrics.Histogram.observe h_major (major1 -. major0);
  (Tpan_obs.Metrics.Local.collect (), Tpan_obs.Log.Local.collect ())

let merge_obs ((deltas, records) : obs_deltas) =
  Tpan_obs.Metrics.merge_deltas deltas;
  Tpan_obs.Log.flush_records records

(* ---------------- per-domain scratch arenas ---------------- *)

module Scratch = struct
  type 'a t = 'a Domain.DLS.key

  let create init = Domain.DLS.new_key init
  let get k = Domain.DLS.get k
end

(* ---------------- ordered map ---------------- *)

let try_map_seq f xs =
  List.mapi
    (fun i x ->
      try Ok (f x)
      with e -> Error { index = i; message = Printexc.to_string e; exn = e })
    xs

let try_map ?jobs f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let j = effective_jobs jobs n in
  if n = 0 || j <= 1 || in_worker () then try_map_seq f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          Some
            (try Ok (f arr.(i))
             with e -> Error { index = i; message = Printexc.to_string e; exn = e });
        work ()
      end
    in
    let ctx = Tpan_obs.Context.current () in
    let domains =
      Array.init (j - 1) (fun k ->
          Domain.spawn (fun () -> run_worker ?ctx (k + 1) work))
    in
    with_worker_flag work;
    let deltas = Array.map Domain.join domains in
    Array.iter merge_obs deltas;
    Array.to_list (Array.map Option.get results)
  end

let map ?jobs f xs =
  let n = List.length xs in
  if n = 0 || effective_jobs jobs n <= 1 || in_worker () then List.map f xs
  else
    let reraise_first = function
      | Ok y -> y
      | Error e -> raise e.exn
    in
    List.map reraise_first (try_map ?jobs f xs)

(* ---------------- long-running service workers ----------------

   The fork-join harness above buffers metrics and log records until the
   join — correct for bounded tasks, useless for workers that live as
   long as the process (a server's accept loops would never publish a
   counter). Service workers therefore get a lane and the caller's
   request context but neither [Metrics.Local] nor [Log.Local]: their
   updates land in the global registry immediately. They also do NOT set
   the nested-call worker flag, so work dispatched from inside a service
   worker (a request fanning a sweep out over [map]) still parallelizes. *)

module Service = struct
  let run ~workers f =
    let workers = max 1 workers in
    if workers = 1 then f 0
    else begin
      let ctx = Tpan_obs.Context.current () in
      let guarded k () =
        Tpan_obs.Trace.set_lane k;
        Tpan_obs.Context.set ctx;
        try f k
        with e ->
          Tpan_obs.Log.error "pool.service: worker died"
            ~fields:
              [
                ("worker", Tpan_obs.Jsonv.Int k);
                ("error", Tpan_obs.Jsonv.Str (Printexc.to_string e));
              ]
      in
      let domains =
        Array.init (workers - 1) (fun i -> Domain.spawn (guarded (i + 1)))
      in
      (* the caller is worker 0 and keeps lane 0 *)
      let r = (try Ok (f 0) with e -> Error e) in
      Array.iter Domain.join domains;
      match r with Ok () -> () | Error e -> raise e
    end
end

(* ---------------- block-parallel for ---------------- *)

let parallel_for ?jobs ?(min_chunk = 1) n body =
  if n > 0 then begin
    let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
    let blocks = min j (max 1 (n / max 1 min_chunk)) in
    if blocks <= 1 || in_worker () then body 0 (n - 1)
    else begin
      let size = (n + blocks - 1) / blocks in
      let bounds =
        Array.to_list (Array.init blocks (fun k -> (k * size, min n ((k + 1) * size) - 1)))
        |> List.filter (fun (lo, hi) -> lo <= hi)
        |> Array.of_list
      in
      let nb = Array.length bounds in
      let failures = Array.make nb None in
      let run k =
        let lo, hi = bounds.(k) in
        try body lo hi with e -> failures.(k) <- Some e
      in
      let ctx = Tpan_obs.Context.current () in
      let domains =
        Array.init (nb - 1) (fun i ->
            Domain.spawn (fun () -> run_worker ?ctx (i + 1) (fun () -> run (i + 1))))
      in
      with_worker_flag (fun () -> run 0);
      let deltas = Array.map Domain.join domains in
      Array.iter merge_obs deltas;
      Array.iter (function Some e -> raise e | None -> ()) failures
    end
  end
