(** A minimal blocking HTTP GET client — just enough for
    [tpan top --attach] to pull [/statusz] and [/tracez] off a running
    server without an HTTP library in the toolchain. *)

val get : ?timeout:float -> string -> (int * string, string) result
(** [get url] fetches [http://host:port/path] and returns
    [(status, body)]. [timeout] (default 5 s) bounds both connect-side
    sends and reads. Errors (unresolvable host, refused connection,
    malformed response) come back as [Error message] — callers render
    them, they never raise. *)
