module Obs = Tpan_obs
module J = Obs.Jsonv
module Q = Tpan_mathkit.Q

type config = {
  host : string;
  port : int option;
  socket_path : string option;
  deadline : float option;
  max_states : int option;
  max_body : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = Some 8080;
    socket_path = None;
    deadline = None;
    max_states = None;
    max_body = 8 * 1024 * 1024;
  }

type response = { status : int; content_type : string; body : string }

let m_requests = lazy (Obs.Metrics.counter "serve.requests")
let m_errors = lazy (Obs.Metrics.counter "serve.errors")
let m_timeouts = lazy (Obs.Metrics.counter "serve.timeouts")
let m_latency = lazy (Obs.Metrics.histogram "serve.latency_s")

(* [Http_error] is a protocol-level rejection (bad route, bad JSON);
   application failures travel as [Tpan.Error.t] and keep their exit
   codes in the envelope. *)
exception Http_error of int * string
exception App_error of Tpan.Error.t

let bad msg = raise (Http_error (400, msg))

(* ----- request JSON helpers ----- *)

let pow2 k =
  let rec go acc k = if k = 0 then acc else go (Q.mul acc (Q.of_int 2)) (k - 1) in
  go Q.one k

(* Floats decode to their exact binary rational, so a client sending
   [0.25] and one sending ["1/4"] hit the same cache key downstream. *)
let q_of_float f =
  if Float.is_integer f then Q.of_int (int_of_float f)
  else begin
    let m = ref f and k = ref 0 in
    while not (Float.is_integer !m) && !k < 1100 do
      m := !m *. 2.;
      incr k
    done;
    if not (Float.is_integer !m) then bad "non-finite number";
    Q.div (Q.of_int (int_of_float !m)) (pow2 !k)
  end

let q_of_json field = function
  | J.Int n -> Q.of_int n
  | J.Float f -> q_of_float f
  | J.Str s -> (
    try Q.of_decimal_string s
    with _ -> bad (Printf.sprintf "%s: %S is not a rational (use \"a/b\" or decimal)" field s))
  | _ -> bad (Printf.sprintf "%s: expected a number or rational string" field)

let obj_of_body body =
  if String.trim body = "" then bad "empty body (expected a JSON object)"
  else
    match J.of_string body with
    | Ok (J.Obj _ as o) -> o
    | Ok _ -> bad "request body must be a JSON object"
    | Error e -> bad ("malformed JSON body: " ^ e)

let str_field field obj =
  match J.member field obj with
  | Some (J.Str s) -> Some s
  | Some _ -> bad (Printf.sprintf "%s: expected a string" field)
  | None -> None

let int_field field obj =
  match J.member field obj with
  | None -> None
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Some n
    | None -> bad (Printf.sprintf "%s: expected an integer" field))

let str_list_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str s -> s | _ -> bad (Printf.sprintf "%s: expected strings" field))
      vs
  | Some _ -> bad (Printf.sprintf "%s: expected a list of strings" field)

let bindings_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.Obj kvs) ->
    List.map (fun (k, v) -> (k, q_of_json (field ^ "." ^ k) v)) kvs
  | Some _ -> bad (Printf.sprintf "%s: expected an object of variable bindings" field)

(* ----- net resolution -----

   A request names its net with exactly one of ["model"] (builtin, with
   optional ["params"]) or ["net"] (inline .tpn source). Both land on
   the same canonicalized artifact keys, so a model requested by name
   and the same net posted as source share cache entries. *)

let canonical_of_body obj =
  let model = str_field "model" obj in
  let net = str_field "net" obj in
  let load source params =
    match Tpan.Analysis.load ~params source with
    | Ok tpn -> Tpan.Canonical.of_tpn tpn
    | Error e -> raise (App_error e)
  in
  match (model, net) with
  | Some name, None -> load (Tpan.Analysis.Builtin name) (bindings_field "params" obj)
  | None, Some src -> (
    if J.member "params" obj <> None then
      bad "params: only builtin models take parameters (edit the net source)";
    match Tpan.Error.guard (fun () -> Tpan_dsl.Parser.parse_string src) with
    | Ok tpn -> Tpan.Canonical.of_tpn tpn
    | Error e -> raise (App_error e))
  | _ -> bad "body must carry exactly one of \"model\" or \"net\""

(* ----- response envelopes ----- *)

let envelope ~kind ~net_hash ~exit_code fields =
  J.Obj
    (("schema", J.Int 2)
    :: ("kind", J.Str kind)
    :: ( "trace_id",
         match Obs.Context.trace_id () with Some t -> J.Str t | None -> J.Null )
    :: ("net_hash", (match net_hash with Some h -> J.Str h | None -> J.Null))
    :: ("exit_code", J.Int exit_code)
    :: fields)

let json status doc =
  { status; content_type = "application/json"; body = J.to_string_hum doc ^ "\n" }

let status_of_error e =
  match Tpan.Error.exit_code e with 6 -> 504 | 2 -> 400 | _ -> 422

let error_response ?net_hash status ~exit_code msg =
  json status
    (envelope ~kind:"error" ~net_hash ~exit_code [ ("error", J.Str msg) ])

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

(* ----- endpoint handlers ----- *)

let h_analyze config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let throughputs = str_list_field "throughputs" obj in
  match Tpan.Artifact.analysis ?max_states ~throughputs canonical with
  | Ok report ->
    json 200
      (envelope ~kind:"analysis"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         (Tpan.Analysis.report_fields report))
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let h_eval config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transition =
    match str_field "transition" obj with
    | Some t -> t
    | None -> bad "transition: required"
  in
  let point = bindings_field "point" obj in
  match Tpan.Artifact.eval ?max_states canonical ~transition ~point with
  | Ok v ->
    json 200
      (envelope ~kind:"eval"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         [
           ("transition", J.Str transition);
           ("throughput", J.Str (Q.to_string v));
           ("decimal", J.Raw (qf v));
           ("period", J.Str (if Q.is_zero v then "inf" else Q.to_string (Q.inv v)));
         ])
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let axes_field obj =
  match J.member "axes" obj with
  | None | Some (J.List []) -> bad "axes: at least one axis required"
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str spec -> (
          match Tpan_perf.Sweep.parse_axis spec with
          | Ok a -> a
          | Error e -> bad ("axes: " ^ e))
        | J.Obj _ as a ->
          let name =
            match str_field "name" a with Some n -> n | None -> bad "axes[].name: required"
          in
          let get f =
            match J.member f a with
            | Some v -> q_of_json ("axes[]." ^ f) v
            | None -> bad (Printf.sprintf "axes[].%s: required" f)
          in
          let steps =
            match int_field "steps" a with Some s when s >= 1 -> s | _ -> bad "axes[].steps: positive integer required"
          in
          { Tpan_perf.Sweep.name; lo = get "lo"; hi = get "hi"; steps }
        | _ -> bad "axes: expected axis objects or \"NAME=LO..HI:STEPS\" strings")
      vs
  | Some _ -> bad "axes: expected a list"

let sweep_fields (sw : Tpan_perf.Sweep.t) =
  let row (r : Tpan_perf.Sweep.row) =
    J.Obj
      [
        ("point", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.point));
        ("values", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.values));
        ( "error",
          match r.error with None -> J.Null | Some e -> J.Str (Tpan.Error.to_string e) );
      ]
  in
  [
    ( "axes",
      J.List
        (List.map
           (fun (a : Tpan_perf.Sweep.axis) ->
             J.Obj
               [
                 ("name", J.Str a.name);
                 ("lo", J.Str (Q.to_string a.lo));
                 ("hi", J.Str (Q.to_string a.hi));
                 ("steps", J.Int a.steps);
               ])
           sw.axes) );
    ("columns", J.List (List.map (fun c -> J.Str c) sw.columns));
    ("rows", J.List (List.map row sw.rows));
  ]

let h_sweep config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transitions =
    match str_list_field "transitions" obj with
    | [] -> bad "transitions: at least one transition required"
    | ts -> ts
  in
  let bindings = bindings_field "bindings" obj in
  let axes = axes_field obj in
  let jobs = int_field "jobs" obj in
  match Tpan.Artifact.sweep_exprs ?max_states ?jobs canonical ~transitions ~bindings ~axes with
  | Ok sw ->
    json 200
      (envelope ~kind:"sweep"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0 (sweep_fields sw))
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

(* ----- dispatch ----- *)

let dispatch config ~meth ~path ~body =
  match (meth, path) with
  | "GET", "/healthz" ->
    json 200 (J.Obj [ ("schema", J.Int 2); ("status", J.Str "ok") ])
  | "GET", "/metrics" ->
    {
      status = 200;
      content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
      body = Obs.Metrics.to_openmetrics ();
    }
  | "POST", "/analyze" -> h_analyze config (obj_of_body body)
  | "POST", "/eval" -> h_eval config (obj_of_body body)
  | "POST", "/sweep" -> h_sweep config (obj_of_body body)
  | _, ("/healthz" | "/metrics" | "/analyze" | "/eval" | "/sweep") ->
    raise (Http_error (405, Printf.sprintf "%s not allowed here" meth))
  | _ -> raise (Http_error (404, "no such endpoint"))

let handle config ~meth ~target ~body =
  Obs.Metrics.Counter.incr (Lazy.force m_requests);
  let t0 = Unix.gettimeofday () in
  let path =
    match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target
  in
  let ctx = Obs.Context.make ?deadline:config.deadline () in
  let resp =
    Obs.Context.with_ctx ctx (fun () ->
        try dispatch config ~meth ~path ~body with
        | Http_error (status, msg) -> error_response status ~exit_code:2 msg
        | App_error e ->
          error_response (status_of_error e) ~exit_code:(Tpan.Error.exit_code e)
            (Tpan.Error.to_string e)
        | Obs.Cancel.Cancelled reason ->
          error_response 504 ~exit_code:6 (Obs.Cancel.reason_to_string reason)
        | exn -> error_response 500 ~exit_code:1 (Printexc.to_string exn))
  in
  if resp.status = 504 then Obs.Metrics.Counter.incr (Lazy.force m_timeouts);
  if resp.status >= 400 then Obs.Metrics.Counter.incr (Lazy.force m_errors);
  Obs.Metrics.Histogram.observe (Lazy.force m_latency) (Unix.gettimeofday () -. t0);
  resp

(* ----- the HTTP/1.1 listener -----

   One connection at a time, one request per connection
   ([Connection: close]): the artifacts are cached and the analyses
   parallelize internally, so the accept loop stays trivially correct
   under SIGTERM. *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let max_header_bytes = 64 * 1024

(* Read until the header terminator, returning (header, leftover-body
   bytes already read). *)
let read_head fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec split_at i =
    if i + 3 < Buffer.length buf then
      if
        Buffer.nth buf i = '\r'
        && Buffer.nth buf (i + 1) = '\n'
        && Buffer.nth buf (i + 2) = '\r'
        && Buffer.nth buf (i + 3) = '\n'
      then Some i
      else split_at (i + 1)
    else None
  in
  let rec go scanned =
    match split_at scanned with
    | Some i ->
      let all = Buffer.contents buf in
      Some (String.sub all 0 i, String.sub all (i + 4) (String.length all - i - 4))
    | None ->
      if Buffer.length buf > max_header_bytes then
        raise (Http_error (400, "request head too large"))
      else
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then None
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          go (max 0 (Buffer.length buf - n - 3))
        end
  in
  go 0

let read_body fd ~already ~length =
  let buf = Buffer.create length in
  Buffer.add_string buf already;
  let chunk = Bytes.create 8192 in
  while Buffer.length buf < length do
    let n = Unix.read fd chunk 0 (min (Bytes.length chunk) (length - Buffer.length buf)) in
    if n = 0 then raise (Http_error (400, "request body truncated"));
    Buffer.add_subbytes buf chunk 0 n
  done;
  Buffer.contents buf

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; _version ] -> (meth, target)
  | _ -> raise (Http_error (400, "malformed request line"))

let content_length headers =
  let lower = String.lowercase_ascii in
  List.fold_left
    (fun acc line ->
      match String.index_opt line ':' with
      | Some i when lower (String.trim (String.sub line 0 i)) = "content-length" -> (
        let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        match int_of_string_opt v with
        | Some n when n >= 0 -> Some n
        | _ -> raise (Http_error (400, "bad Content-Length")))
      | _ -> acc)
    None headers

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  go 0

let write_response fd resp =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       resp.status (status_text resp.status) resp.content_type
       (String.length resp.body) resp.body)

let serve_connection config fd =
  match read_head fd with
  | None -> () (* peer connected and went away *)
  | Some (head, leftover) ->
    let resp =
      try
        let lines = String.split_on_char '\n' head in
        let lines = List.map (fun l -> String.trim l) lines in
        let request_line, headers =
          match lines with [] -> raise (Http_error (400, "empty request")) | l :: hs -> (l, hs)
        in
        let meth, target = parse_request_line request_line in
        let length = Option.value (content_length headers) ~default:0 in
        if length > config.max_body then raise (Http_error (413, "request body too large"));
        let body = read_body fd ~already:leftover ~length in
        handle config ~meth ~target ~body
      with Http_error (status, msg) ->
        Obs.Metrics.Counter.incr (Lazy.force m_errors);
        error_response status ~exit_code:2 msg
    in
    write_response fd resp

let stop_requested = ref false

let install_signals () =
  let h = Sys.Signal_handle (fun _ -> stop_requested := true) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h;
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let run ?(ready = fun _ -> ()) config =
  stop_requested := false;
  install_signals ();
  let listeners = ref [] in
  let tcp_port = ref None in
  (match config.port with
  | None -> ()
  | Some p ->
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, p));
    Unix.listen s 64;
    (match Unix.getsockname s with
    | Unix.ADDR_INET (_, bound) -> tcp_port := Some bound
    | _ -> ());
    listeners := s :: !listeners);
  (match config.socket_path with
  | None -> ()
  | Some path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    Unix.listen s 64;
    listeners := s :: !listeners);
  if !listeners = [] then invalid_arg "serve: no listen address (need a port or a socket path)";
  ready !tcp_port;
  Obs.Log.info "serve: listening"
    ~fields:
      [
        ("port", (match !tcp_port with Some p -> J.Int p | None -> J.Null));
        ( "socket",
          match config.socket_path with Some p -> J.Str p | None -> J.Null );
      ];
  let rec loop () =
    if not !stop_requested then begin
      (match Unix.select !listeners [] [] 0.25 with
      | [], _, _ -> ()
      | ready_socks, _, _ ->
        List.iter
          (fun sock ->
            match Unix.accept sock with
            | fd, _ ->
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  try serve_connection config fd
                  with exn ->
                    Obs.Log.warn "serve: connection failed"
                      ~fields:[ ("error", J.Str (Printexc.to_string exn)) ])
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
          ready_socks
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  List.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) !listeners;
  (match config.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Obs.Log.info "serve: shutdown complete"
