module Obs = Tpan_obs
module J = Obs.Jsonv
module Q = Tpan_mathkit.Q

type config = {
  host : string;
  port : int option;
  socket_path : string option;
  deadline : float option;
  max_states : int option;
  max_body : int;
  telemetry : bool;
  slow_ms : float option;
  flight_path : string option;
  access_log : string option;
  ledger_dir : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = Some 8080;
    socket_path = None;
    deadline = None;
    max_states = None;
    max_body = 8 * 1024 * 1024;
    telemetry = true;
    slow_ms = None;
    flight_path = None;
    access_log = None;
    ledger_dir = None;
  }

type response = { status : int; content_type : string; body : string }

(* ----- telemetry plane -----

   Process-wide totals keep their historical unlabelled names (external
   scrapes grep for [tpan_serve_requests_total]); the per-endpoint RED
   families ride alongside under [serve.endpoint.*] and
   [serve.request_duration_s{endpoint=...}], the latter carrying an
   exemplar trace id per latency bucket. *)

let start_time = Unix.gettimeofday ()
let m_requests = lazy (Obs.Metrics.counter "serve.requests")
let m_errors = lazy (Obs.Metrics.counter "serve.errors")
let m_timeouts = lazy (Obs.Metrics.counter "serve.timeouts")
let m_latency = lazy (Obs.Metrics.histogram "serve.latency_s")
let m_inflight = lazy (Obs.Metrics.gauge "serve.inflight")

(* Endpoint labels are drawn from the route table (unknown paths all
   collapse into "other"), so label cardinality is bounded no matter
   what clients probe for. *)
let known_endpoints =
  [ "/healthz"; "/metrics"; "/statusz"; "/tracez"; "/analyze"; "/eval"; "/sweep" ]

let normalize_endpoint path = if List.mem path known_endpoints then path else "other"

let ep_requests ep =
  Obs.Metrics.counter_with "serve.endpoint.requests" [ ("endpoint", ep) ]

let ep_errors ep ty =
  Obs.Metrics.counter_with "serve.endpoint.errors"
    [ ("endpoint", ep); ("type", ty) ]

let ep_latency ep =
  Obs.Metrics.histogram_with "serve.request_duration_s" [ ("endpoint", ep) ]

(* The typed-error label is derived from the response status, so every
   error path — raised or returned as a value — classifies the same
   way: 504 deadline crossings are "timeout", protocol rejections
   "http", application analysis failures "app", the rest "internal". *)
let error_type_of_status = function
  | s when s < 400 -> None
  | 504 -> Some "timeout"
  | 400 | 404 | 405 | 413 -> Some "http"
  | 422 -> Some "app"
  | _ -> Some "internal"

(* In-flight requests, keyed by trace id. The handler publishes each
   request here for /statusz and keeps a domain-local pointer so the
   body-resolution and envelope code can annotate the record (net hash,
   exit code) without threading it through every handler. *)
type inflight = {
  if_trace_id : string;
  if_name : string;  (* "POST /eval" *)
  if_endpoint : string;
  if_start : float;
  mutable if_net_hash : string option;
  mutable if_exit_code : int option;
}

let inflight : (string, inflight) Hashtbl.t = Hashtbl.create 16
let inflight_lock = Mutex.create ()

let current_req : inflight option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_net_hash h =
  match !(Domain.DLS.get current_req) with
  | Some r -> r.if_net_hash <- Some h
  | None -> ()

let note_exit_code c =
  match !(Domain.DLS.get current_req) with
  | Some r -> r.if_exit_code <- Some c
  | None -> ()

let inflight_add r =
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.replace inflight r.if_trace_id r;
      Obs.Metrics.Gauge.set (Lazy.force m_inflight)
        (float_of_int (Hashtbl.length inflight)));
  Domain.DLS.get current_req := Some r

let inflight_remove r =
  Domain.DLS.get current_req := None;
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.remove inflight r.if_trace_id;
      Obs.Metrics.Gauge.set (Lazy.force m_inflight)
        (float_of_int (Hashtbl.length inflight)))

let inflight_list () =
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) inflight [])
  |> List.sort (fun a b -> compare a.if_start b.if_start)

(* ----- access log -----

   One NDJSON record per served request, written through
   {!Obs.Log.ndjson_sink} so the line format matches every other log
   the toolchain produces. The channel is opened on first use and
   reopened if the configured path changes; writes are serialized. *)

let access_lock = Mutex.create ()
let access_chan : (string * out_channel) option ref = ref None

let access_write path record =
  Mutex.protect access_lock (fun () ->
      let oc =
        match !access_chan with
        | Some (p, oc) when p = path -> Some oc
        | prev -> (
          (match prev with
          | Some (_, oc) -> ( try close_out oc with Sys_error _ -> ())
          | None -> ());
          match open_out_gen [ Open_append; Open_creat ] 0o644 path with
          | oc ->
            access_chan := Some (path, oc);
            Some oc
          | exception Sys_error _ ->
            access_chan := None;
            None)
      in
      match oc with
      | Some oc -> ( try Obs.Log.ndjson_sink oc record with Sys_error _ -> ())
      | None -> ())

let cache_counts () =
  List.map
    (fun (k, (s : Tpan_cache.Cache.stats)) -> (k, s.hits, s.misses))
    (Tpan.Artifact.cache_stats ())

(* Per-request cache activity as the difference of the process-wide
   counters around the request. Exact under the sequential listener;
   approximate if handlers are driven concurrently from tests. *)
let cache_delta before after =
  List.filter_map
    (fun (k, h1, m1) ->
      let h0, m0 =
        match List.find_opt (fun (k0, _, _) -> k0 = k) before with
        | Some (_, h, m) -> (h, m)
        | None -> (0, 0)
      in
      if h1 = h0 && m1 = m0 then None
      else
        Some (k, J.Obj [ ("hits", J.Int (h1 - h0)); ("misses", J.Int (m1 - m0)) ]))
    after

(* [Http_error] is a protocol-level rejection (bad route, bad JSON);
   application failures travel as [Tpan.Error.t] and keep their exit
   codes in the envelope. *)
exception Http_error of int * string
exception App_error of Tpan.Error.t

let bad msg = raise (Http_error (400, msg))

(* ----- request JSON helpers ----- *)

let pow2 k =
  let rec go acc k = if k = 0 then acc else go (Q.mul acc (Q.of_int 2)) (k - 1) in
  go Q.one k

(* Floats decode to their exact binary rational, so a client sending
   [0.25] and one sending ["1/4"] hit the same cache key downstream. *)
let q_of_float f =
  if Float.is_integer f then Q.of_int (int_of_float f)
  else begin
    let m = ref f and k = ref 0 in
    while not (Float.is_integer !m) && !k < 1100 do
      m := !m *. 2.;
      incr k
    done;
    if not (Float.is_integer !m) then bad "non-finite number";
    Q.div (Q.of_int (int_of_float !m)) (pow2 !k)
  end

let q_of_json field = function
  | J.Int n -> Q.of_int n
  | J.Float f -> q_of_float f
  | J.Str s -> (
    try Q.of_decimal_string s
    with _ -> bad (Printf.sprintf "%s: %S is not a rational (use \"a/b\" or decimal)" field s))
  | _ -> bad (Printf.sprintf "%s: expected a number or rational string" field)

let obj_of_body body =
  if String.trim body = "" then bad "empty body (expected a JSON object)"
  else
    match J.of_string body with
    | Ok (J.Obj _ as o) -> o
    | Ok _ -> bad "request body must be a JSON object"
    | Error e -> bad ("malformed JSON body: " ^ e)

let str_field field obj =
  match J.member field obj with
  | Some (J.Str s) -> Some s
  | Some _ -> bad (Printf.sprintf "%s: expected a string" field)
  | None -> None

let int_field field obj =
  match J.member field obj with
  | None -> None
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Some n
    | None -> bad (Printf.sprintf "%s: expected an integer" field))

let str_list_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str s -> s | _ -> bad (Printf.sprintf "%s: expected strings" field))
      vs
  | Some _ -> bad (Printf.sprintf "%s: expected a list of strings" field)

let bindings_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.Obj kvs) ->
    List.map (fun (k, v) -> (k, q_of_json (field ^ "." ^ k) v)) kvs
  | Some _ -> bad (Printf.sprintf "%s: expected an object of variable bindings" field)

(* ----- net resolution -----

   A request names its net with exactly one of ["model"] (builtin, with
   optional ["params"]) or ["net"] (inline .tpn source). Both land on
   the same canonicalized artifact keys, so a model requested by name
   and the same net posted as source share cache entries. *)

let canonical_of_body obj =
  let model = str_field "model" obj in
  let net = str_field "net" obj in
  let load source params =
    match Tpan.Analysis.load ~params source with
    | Ok tpn -> Tpan.Canonical.of_tpn tpn
    | Error e -> raise (App_error e)
  in
  let canonical =
    match (model, net) with
    | Some name, None -> load (Tpan.Analysis.Builtin name) (bindings_field "params" obj)
    | None, Some src -> (
      if J.member "params" obj <> None then
        bad "params: only builtin models take parameters (edit the net source)";
      match Tpan.Error.guard (fun () -> Tpan_dsl.Parser.parse_string src) with
      | Ok tpn -> Tpan.Canonical.of_tpn tpn
      | Error e -> raise (App_error e))
    | _ -> bad "body must carry exactly one of \"model\" or \"net\""
  in
  note_net_hash (Tpan.Canonical.hash canonical);
  canonical

(* ----- response envelopes ----- *)

let envelope ~kind ~net_hash ~exit_code fields =
  (match net_hash with Some h -> note_net_hash h | None -> ());
  note_exit_code exit_code;
  J.Obj
    (("schema", J.Int 2)
    :: ("kind", J.Str kind)
    :: ( "trace_id",
         match Obs.Context.trace_id () with Some t -> J.Str t | None -> J.Null )
    :: ("net_hash", (match net_hash with Some h -> J.Str h | None -> J.Null))
    :: ("exit_code", J.Int exit_code)
    :: fields)

let json status doc =
  { status; content_type = "application/json"; body = J.to_string_hum doc ^ "\n" }

let status_of_error e =
  match Tpan.Error.exit_code e with 6 -> 504 | 2 -> 400 | _ -> 422

let error_response ?net_hash status ~exit_code msg =
  json status
    (envelope ~kind:"error" ~net_hash ~exit_code [ ("error", J.Str msg) ])

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

(* ----- endpoint handlers ----- *)

let h_analyze config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let throughputs = str_list_field "throughputs" obj in
  match Tpan.Artifact.analysis ?max_states ~throughputs canonical with
  | Ok report ->
    json 200
      (envelope ~kind:"analysis"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         (Tpan.Analysis.report_fields report))
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let h_eval config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transition =
    match str_field "transition" obj with
    | Some t -> t
    | None -> bad "transition: required"
  in
  let point = bindings_field "point" obj in
  match Tpan.Artifact.eval ?max_states canonical ~transition ~point with
  | Ok v ->
    json 200
      (envelope ~kind:"eval"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         [
           ("transition", J.Str transition);
           ("throughput", J.Str (Q.to_string v));
           ("decimal", J.Raw (qf v));
           ("period", J.Str (if Q.is_zero v then "inf" else Q.to_string (Q.inv v)));
         ])
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let axes_field obj =
  match J.member "axes" obj with
  | None | Some (J.List []) -> bad "axes: at least one axis required"
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str spec -> (
          match Tpan_perf.Sweep.parse_axis spec with
          | Ok a -> a
          | Error e -> bad ("axes: " ^ e))
        | J.Obj _ as a ->
          let name =
            match str_field "name" a with Some n -> n | None -> bad "axes[].name: required"
          in
          let get f =
            match J.member f a with
            | Some v -> q_of_json ("axes[]." ^ f) v
            | None -> bad (Printf.sprintf "axes[].%s: required" f)
          in
          let steps =
            match int_field "steps" a with Some s when s >= 1 -> s | _ -> bad "axes[].steps: positive integer required"
          in
          { Tpan_perf.Sweep.name; lo = get "lo"; hi = get "hi"; steps }
        | _ -> bad "axes: expected axis objects or \"NAME=LO..HI:STEPS\" strings")
      vs
  | Some _ -> bad "axes: expected a list"

let sweep_fields (sw : Tpan_perf.Sweep.t) =
  let row (r : Tpan_perf.Sweep.row) =
    J.Obj
      [
        ("point", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.point));
        ("values", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.values));
        ( "error",
          match r.error with None -> J.Null | Some e -> J.Str (Tpan.Error.to_string e) );
      ]
  in
  [
    ( "axes",
      J.List
        (List.map
           (fun (a : Tpan_perf.Sweep.axis) ->
             J.Obj
               [
                 ("name", J.Str a.name);
                 ("lo", J.Str (Q.to_string a.lo));
                 ("hi", J.Str (Q.to_string a.hi));
                 ("steps", J.Int a.steps);
               ])
           sw.axes) );
    ("columns", J.List (List.map (fun c -> J.Str c) sw.columns));
    ("rows", J.List (List.map row sw.rows));
  ]

let h_sweep config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transitions =
    match str_list_field "transitions" obj with
    | [] -> bad "transitions: at least one transition required"
    | ts -> ts
  in
  let bindings = bindings_field "bindings" obj in
  let axes = axes_field obj in
  let jobs = int_field "jobs" obj in
  match Tpan.Artifact.sweep_exprs ?max_states ?jobs canonical ~transitions ~bindings ~axes with
  | Ok sw ->
    json 200
      (envelope ~kind:"sweep"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0 (sweep_fields sw))
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

(* ----- introspection endpoints ----- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let html_page ~title body =
  Printf.sprintf
    "<!doctype html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title><style>body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;margin:1.5em}table{border-collapse:collapse;margin:.8em 0}td,th{border:1px solid #bbb;padding:2px 10px;text-align:left}th{background:#eee}h1{font-size:1.2em}h2{font-size:1em;margin-top:1.2em}.slow{color:#b00;font-weight:bold}</style></head><body><h1>%s</h1>%s</body></html>\n"
    (html_escape title) (html_escape title) body

let html status body = { status; content_type = "text/html; charset=utf-8"; body }

let table headers rows =
  let cell tag s = Printf.sprintf "<%s>%s</%s>" tag s tag in
  let tr cells tag = cell "tr" (String.concat "" (List.map (cell tag) cells)) in
  cell "table" (String.concat "" (tr headers "th" :: List.map (fun r -> tr r "td") rows))

let cache_stats_json () =
  List.map
    (fun (kind, (s : Tpan_cache.Cache.stats)) ->
      let total = s.hits + s.misses in
      J.Obj
        [
          ("kind", J.Str kind);
          ("hits", J.Int s.hits);
          ("misses", J.Int s.misses);
          ("evictions", J.Int s.evictions);
          ("entries", J.Int s.entries);
          ("bytes", J.Int s.bytes);
          ( "hit_ratio",
            if total = 0 then J.Null
            else J.Float (float_of_int s.hits /. float_of_int total) );
        ])
    (Tpan.Artifact.cache_stats ())

let statusz_json () =
  let now = Unix.gettimeofday () in
  let gc = Gc.quick_stat () in
  let infl = inflight_list () in
  J.Obj
    [
      ("schema", J.Int 1);
      ("service", J.Str "tpan-serve");
      ("version", J.Str Tpan.Version.string);
      ("pid", J.Int (Unix.getpid ()));
      ("now", J.Float now);
      ("uptime_s", J.Float (now -. start_time));
      ( "requests",
        J.Obj
          [
            ("total", J.Int (Obs.Metrics.Counter.value (Lazy.force m_requests)));
            ("errors", J.Int (Obs.Metrics.Counter.value (Lazy.force m_errors)));
            ("timeouts", J.Int (Obs.Metrics.Counter.value (Lazy.force m_timeouts)));
            ("inflight", J.Int (List.length infl));
          ] );
      ("caches", J.List (cache_stats_json ()));
      ( "heartbeats",
        J.List
          (List.map
             (fun (lane, beats) ->
               J.Obj [ ("lane", J.Int lane); ("beats", J.Int beats) ])
             (Obs.Cancel.heartbeats ())) );
      ( "gc",
        J.Obj
          [
            ("heap_words", J.Int gc.Gc.heap_words);
            ("top_heap_words", J.Int gc.Gc.top_heap_words);
            ("minor_collections", J.Int gc.Gc.minor_collections);
            ("major_collections", J.Int gc.Gc.major_collections);
            ("compactions", J.Int gc.Gc.compactions);
          ] );
      ( "inflight",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("trace_id", J.Str r.if_trace_id);
                   ("request", J.Str r.if_name);
                   ("age_s", J.Float (now -. r.if_start));
                 ])
             infl) );
    ]

let statusz_html () =
  let now = Unix.gettimeofday () in
  let infl = inflight_list () in
  let summary =
    Printf.sprintf
      "<p>%s pid %d &middot; uptime %.1fs &middot; %d requests (%d errors, %d \
       timeouts) &middot; %d in flight</p>"
      (html_escape Tpan.Version.string)
      (Unix.getpid ()) (now -. start_time)
      (Obs.Metrics.Counter.value (Lazy.force m_requests))
      (Obs.Metrics.Counter.value (Lazy.force m_errors))
      (Obs.Metrics.Counter.value (Lazy.force m_timeouts))
      (List.length infl)
  in
  let caches =
    table
      [ "cache"; "hits"; "misses"; "hit ratio"; "entries"; "bytes"; "evictions" ]
      (List.map
         (fun (kind, (s : Tpan_cache.Cache.stats)) ->
           let total = s.hits + s.misses in
           [
             html_escape kind;
             string_of_int s.hits;
             string_of_int s.misses;
             (if total = 0 then "-"
              else Printf.sprintf "%.3f" (float_of_int s.hits /. float_of_int total));
             string_of_int s.entries;
             string_of_int s.bytes;
             string_of_int s.evictions;
           ])
         (Tpan.Artifact.cache_stats ()))
  in
  let inflight_tbl =
    table
      [ "trace_id"; "request"; "age (s)" ]
      (List.map
         (fun r ->
           [
             html_escape r.if_trace_id;
             html_escape r.if_name;
             Printf.sprintf "%.3f" (now -. r.if_start);
           ])
         infl)
  in
  html_page ~title:"tpan serve: statusz"
    (summary ^ "<h2>artifact caches</h2>" ^ caches ^ "<h2>in-flight requests</h2>"
   ^ inflight_tbl)

let tracez_html () =
  let sections =
    List.map
      (fun (name, buckets, errors) ->
        let bucket_tbl =
          table
            [ "bucket"; "seen"; "retained" ]
            (List.map
               (fun (b : Obs.Tracez.bucket_view) ->
                 [
                   html_escape b.label;
                   string_of_int b.seen;
                   string_of_int (List.length b.entries);
                 ])
               (buckets @ [ errors ]))
        in
        let recent =
          List.concat_map (fun (b : Obs.Tracez.bucket_view) -> b.entries) buckets
          |> List.sort (fun (a : Obs.Tracez.entry) b -> compare b.start a.start)
        in
        let recent_tbl =
          table
            [ "trace_id"; "status"; "duration (ms)"; "spans" ]
            (List.map
               (fun (e : Obs.Tracez.entry) ->
                 [
                   html_escape e.trace_id;
                   (if e.slow then
                      Printf.sprintf "<span class=\"slow\">%d slow</span>" e.status
                    else string_of_int e.status);
                   Printf.sprintf "%.3f" (e.dur *. 1000.);
                   string_of_int (List.length e.spans);
                 ])
               recent)
        in
        Printf.sprintf "<h2>%s</h2>%s%s" (html_escape name) bucket_tbl recent_tbl)
      (Obs.Tracez.snapshot ())
  in
  html_page ~title:"tpan serve: tracez" (String.concat "" sections)

let wants_html query =
  match List.assoc_opt "format" query with Some "html" -> true | _ -> false

(* ----- dispatch ----- *)

let dispatch config ~meth ~path ~query ~body =
  match (meth, path) with
  | "GET", "/healthz" ->
    json 200 (J.Obj [ ("schema", J.Int 2); ("status", J.Str "ok") ])
  | "GET", "/metrics" ->
    {
      status = 200;
      content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
      body = Obs.Metrics.to_openmetrics ();
    }
  | "GET", "/statusz" ->
    if wants_html query then html 200 (statusz_html ())
    else json 200 (statusz_json ())
  | "GET", "/tracez" ->
    if wants_html query then html 200 (tracez_html ())
    else json 200 (Obs.Tracez.to_json ())
  | "POST", "/analyze" -> h_analyze config (obj_of_body body)
  | "POST", "/eval" -> h_eval config (obj_of_body body)
  | "POST", "/sweep" -> h_sweep config (obj_of_body body)
  | _, ("/healthz" | "/metrics" | "/statusz" | "/tracez" | "/analyze" | "/eval" | "/sweep") ->
    raise (Http_error (405, Printf.sprintf "%s not allowed here" meth))
  | _ -> raise (Http_error (404, "no such endpoint"))

(* ----- the request wrapper: metrics, tracez, access log, ledger ----- *)

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let qs = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      List.filter_map
        (fun kv ->
          if kv = "" then None
          else
            match String.index_opt kv '=' with
            | Some j ->
              Some
                ( String.sub kv 0 j,
                  String.sub kv (j + 1) (String.length kv - j - 1) )
            | None -> Some (kv, ""))
        (String.split_on_char '&' qs)
    in
    (path, params)

let stage_totals_of spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let dur, n =
        match Hashtbl.find_opt tbl e.Obs.Trace.name with
        | Some x -> x
        | None -> (0., 0)
      in
      Hashtbl.replace tbl e.Obs.Trace.name (dur +. e.Obs.Trace.dur, n + 1))
    spans;
  Hashtbl.fold
    (fun stage (seconds, count) acc -> { Obs.Ledger.stage; seconds; count } :: acc)
    tbl []
  |> List.sort (fun (a : Obs.Ledger.stage) b -> compare a.stage b.stage)

let access_record config ~req ~meth ~path ~status ~dur ~body_bytes ~resp_bytes
    ~cache_fields =
  let exit_code =
    match req.if_exit_code with
    | Some c -> c
    | None -> if status >= 400 then 1 else 0
  in
  {
    Obs.Log.ts = req.if_start;
    level = Obs.Log.Info;
    msg = "access";
    lane = Obs.Trace.current_lane ();
    trace_id = Some req.if_trace_id;
    fields =
      [
        ("method", J.Str meth);
        ("path", J.Str path);
        ("endpoint", J.Str req.if_endpoint);
        ("status", J.Int status);
        ("exit_code", J.Int exit_code);
        ("latency_s", J.Float dur);
        ("body_bytes", J.Int body_bytes);
        ("resp_bytes", J.Int resp_bytes);
        ( "net_hash",
          match req.if_net_hash with Some h -> J.Str h | None -> J.Null );
        ("cache", J.Obj cache_fields);
        ( "deadline_budget_s",
          match config.deadline with Some b -> J.Float b | None -> J.Null );
        ( "deadline_consumed",
          match config.deadline with
          | Some b when b > 0. -> J.Float (dur /. b)
          | _ -> J.Null );
      ];
  }

let ledger_row config ~req ~status ~dur ~stages =
  let exit_code =
    match req.if_exit_code with
    | Some c -> c
    | None -> if status >= 400 then 1 else 0
  in
  match config.ledger_dir with
  | None -> ()
  | Some dir ->
    let row =
      Obs.Ledger.make ~version:Tpan.Version.string ~timestamp:req.if_start
        ~subcommand:("serve:" ^ req.if_endpoint)
        ~argv:[ "serve"; req.if_name ]
        ~trace_id:req.if_trace_id ~stages ~exit_code ~duration:dur ()
    in
    (match Obs.Ledger.append ~dir row with
    | Ok () -> ()
    | Error e ->
      Obs.Log.warn "serve: ledger append failed" ~fields:[ ("error", J.Str e) ])

let handle config ~meth ~target ~body =
  let t0 = Unix.gettimeofday () in
  Obs.Metrics.Counter.incr (Lazy.force m_requests);
  let path, query = split_target target in
  let endpoint = normalize_endpoint path in
  let name = meth ^ " " ^ endpoint in
  let ctx = Obs.Context.make ?deadline:config.deadline () in
  let tid = ctx.Obs.Context.trace_id in
  let req =
    {
      if_trace_id = tid;
      if_name = name;
      if_endpoint = endpoint;
      if_start = t0;
      if_net_hash = None;
      if_exit_code = None;
    }
  in
  let caches_before =
    if config.telemetry && config.access_log <> None then Some (cache_counts ())
    else None
  in
  if config.telemetry then begin
    Obs.Metrics.Counter.incr (ep_requests endpoint);
    inflight_add req
  end;
  let resp =
    Obs.Context.with_ctx ctx (fun () ->
        try dispatch config ~meth ~path ~query ~body with
        | Http_error (status, msg) -> error_response status ~exit_code:2 msg
        | App_error e ->
          error_response (status_of_error e) ~exit_code:(Tpan.Error.exit_code e)
            (Tpan.Error.to_string e)
        | Obs.Cancel.Cancelled reason ->
          error_response 504 ~exit_code:6 (Obs.Cancel.reason_to_string reason)
        | exn -> error_response 500 ~exit_code:1 (Printexc.to_string exn))
  in
  let dur = Unix.gettimeofday () -. t0 in
  if resp.status = 504 then Obs.Metrics.Counter.incr (Lazy.force m_timeouts);
  if resp.status >= 400 then Obs.Metrics.Counter.incr (Lazy.force m_errors);
  Obs.Metrics.Histogram.observe (Lazy.force m_latency) dur;
  if config.telemetry then begin
    inflight_remove req;
    Obs.Metrics.Histogram.observe ~trace_id:tid (ep_latency endpoint) dur;
    (match error_type_of_status resp.status with
    | Some ty -> Obs.Metrics.Counter.incr (ep_errors endpoint ty)
    | None -> ());
    let slow =
      match config.slow_ms with Some ms -> dur *. 1000. >= ms | None -> false
    in
    let spans = Obs.Trace.take_events ~trace_id:tid in
    Obs.Tracez.record
      { trace_id = tid; name; status = resp.status; start = t0; dur; slow; spans };
    if slow then (
      match config.flight_path with
      | Some p ->
        Obs.Dump.write_dump ~trace_id:tid p
          (Printf.sprintf "slow-request %s %.1fms" name (dur *. 1000.))
      | None -> ());
    (match (config.access_log, caches_before) with
    | Some log_path, Some before ->
      let cache_fields = cache_delta before (cache_counts ()) in
      access_write log_path
        (access_record config ~req ~meth ~path ~status:resp.status ~dur
           ~body_bytes:(String.length body)
           ~resp_bytes:(String.length resp.body) ~cache_fields)
    | _ -> ());
    ledger_row config ~req ~status:resp.status ~dur ~stages:(stage_totals_of spans)
  end;
  resp

(* ----- the HTTP/1.1 listener -----

   One connection at a time, one request per connection
   ([Connection: close]): the artifacts are cached and the analyses
   parallelize internally, so the accept loop stays trivially correct
   under SIGTERM. *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let max_header_bytes = 64 * 1024

(* Read until the header terminator, returning (header, leftover-body
   bytes already read). *)
let read_head fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec split_at i =
    if i + 3 < Buffer.length buf then
      if
        Buffer.nth buf i = '\r'
        && Buffer.nth buf (i + 1) = '\n'
        && Buffer.nth buf (i + 2) = '\r'
        && Buffer.nth buf (i + 3) = '\n'
      then Some i
      else split_at (i + 1)
    else None
  in
  let rec go scanned =
    match split_at scanned with
    | Some i ->
      let all = Buffer.contents buf in
      Some (String.sub all 0 i, String.sub all (i + 4) (String.length all - i - 4))
    | None ->
      if Buffer.length buf > max_header_bytes then
        raise (Http_error (400, "request head too large"))
      else
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n = 0 then None
        else begin
          Buffer.add_subbytes buf chunk 0 n;
          go (max 0 (Buffer.length buf - n - 3))
        end
  in
  go 0

let read_body fd ~already ~length =
  let buf = Buffer.create length in
  Buffer.add_string buf already;
  let chunk = Bytes.create 8192 in
  while Buffer.length buf < length do
    let n = Unix.read fd chunk 0 (min (Bytes.length chunk) (length - Buffer.length buf)) in
    if n = 0 then raise (Http_error (400, "request body truncated"));
    Buffer.add_subbytes buf chunk 0 n
  done;
  Buffer.contents buf

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; _version ] -> (meth, target)
  | _ -> raise (Http_error (400, "malformed request line"))

let content_length headers =
  let lower = String.lowercase_ascii in
  List.fold_left
    (fun acc line ->
      match String.index_opt line ':' with
      | Some i when lower (String.trim (String.sub line 0 i)) = "content-length" -> (
        let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        match int_of_string_opt v with
        | Some n when n >= 0 -> Some n
        | _ -> raise (Http_error (400, "bad Content-Length")))
      | _ -> acc)
    None headers

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  go 0

let write_response fd resp =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       resp.status (status_text resp.status) resp.content_type
       (String.length resp.body) resp.body)

let serve_connection config fd =
  match read_head fd with
  | None -> () (* peer connected and went away *)
  | Some (head, leftover) ->
    let resp =
      try
        let lines = String.split_on_char '\n' head in
        let lines = List.map (fun l -> String.trim l) lines in
        let request_line, headers =
          match lines with [] -> raise (Http_error (400, "empty request")) | l :: hs -> (l, hs)
        in
        let meth, target = parse_request_line request_line in
        let length = Option.value (content_length headers) ~default:0 in
        if length > config.max_body then raise (Http_error (413, "request body too large"));
        let body = read_body fd ~already:leftover ~length in
        handle config ~meth ~target ~body
      with Http_error (status, msg) ->
        Obs.Metrics.Counter.incr (Lazy.force m_errors);
        error_response status ~exit_code:2 msg
    in
    write_response fd resp

let stop_requested = ref false

let install_signals () =
  let h = Sys.Signal_handle (fun _ -> stop_requested := true) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h;
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let run ?(ready = fun _ -> ()) config =
  stop_requested := false;
  install_signals ();
  let listeners = ref [] in
  let tcp_port = ref None in
  (match config.port with
  | None -> ()
  | Some p ->
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, p));
    Unix.listen s 64;
    (match Unix.getsockname s with
    | Unix.ADDR_INET (_, bound) -> tcp_port := Some bound
    | _ -> ());
    listeners := s :: !listeners);
  (match config.socket_path with
  | None -> ()
  | Some path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    Unix.listen s 64;
    listeners := s :: !listeners);
  if !listeners = [] then invalid_arg "serve: no listen address (need a port or a socket path)";
  ready !tcp_port;
  Obs.Log.info "serve: listening"
    ~fields:
      [
        ("port", (match !tcp_port with Some p -> J.Int p | None -> J.Null));
        ( "socket",
          match config.socket_path with Some p -> J.Str p | None -> J.Null );
        ("telemetry", J.Bool config.telemetry);
        ( "slow_ms",
          match config.slow_ms with Some ms -> J.Float ms | None -> J.Null );
        ( "access_log",
          match config.access_log with Some p -> J.Str p | None -> J.Null );
      ];
  let rec loop () =
    if not !stop_requested then begin
      (match Unix.select !listeners [] [] 0.25 with
      | [], _, _ -> ()
      | ready_socks, _, _ ->
        List.iter
          (fun sock ->
            match Unix.accept sock with
            | fd, _ ->
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  try serve_connection config fd
                  with exn ->
                    Obs.Log.warn "serve: connection failed"
                      ~fields:[ ("error", J.Str (Printexc.to_string exn)) ])
            | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
          ready_socks
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  List.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) !listeners;
  (match config.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Obs.Log.info "serve: shutdown complete"
