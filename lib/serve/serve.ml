module Obs = Tpan_obs
module J = Obs.Jsonv
module Q = Tpan_mathkit.Q

type config = {
  host : string;
  port : int option;
  socket_path : string option;
  deadline : float option;
  max_states : int option;
  max_body : int;
  telemetry : bool;
  slow_ms : float option;
  flight_path : string option;
  access_log : string option;
  ledger_dir : string option;
  workers : int;
  max_requests_per_conn : int;
  idle_timeout : float;
  max_inflight : int option;
  max_conns : int;
  warm : string list;
}

let default_config =
  {
    host = "127.0.0.1";
    port = Some 8080;
    socket_path = None;
    deadline = None;
    max_states = None;
    max_body = 8 * 1024 * 1024;
    telemetry = true;
    slow_ms = None;
    flight_path = None;
    access_log = None;
    ledger_dir = None;
    workers = 1;
    max_requests_per_conn = 1000;
    idle_timeout = 30.;
    max_inflight = None;
    max_conns = 32;
    warm = [];
  }

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;
}

(* ----- telemetry plane -----

   Process-wide totals keep their historical unlabelled names (external
   scrapes grep for [tpan_serve_requests_total]); the per-endpoint RED
   families ride alongside under [serve.endpoint.*] and
   [serve.request_duration_s{endpoint=...}], the latter carrying an
   exemplar trace id per latency bucket. *)

let start_time = Unix.gettimeofday ()
let m_requests = lazy (Obs.Metrics.counter "serve.requests")
let m_errors = lazy (Obs.Metrics.counter "serve.errors")
let m_timeouts = lazy (Obs.Metrics.counter "serve.timeouts")
let m_latency = lazy (Obs.Metrics.histogram "serve.latency_s")
let m_inflight = lazy (Obs.Metrics.gauge "serve.inflight")

(* Endpoint labels are drawn from the route table (unknown paths all
   collapse into "other"), so label cardinality is bounded no matter
   what clients probe for. *)
let known_endpoints =
  [ "/healthz"; "/metrics"; "/statusz"; "/tracez"; "/analyze"; "/eval"; "/sweep" ]

let normalize_endpoint path = if List.mem path known_endpoints then path else "other"

let ep_requests ep =
  Obs.Metrics.counter_with "serve.endpoint.requests" [ ("endpoint", ep) ]

let ep_errors ep ty =
  Obs.Metrics.counter_with "serve.endpoint.errors"
    [ ("endpoint", ep); ("type", ty) ]

let ep_latency ep =
  Obs.Metrics.histogram_with "serve.request_duration_s" [ ("endpoint", ep) ]

(* The typed-error label is derived from the response status, so every
   error path — raised or returned as a value — classifies the same
   way: 504 deadline crossings are "timeout", protocol rejections
   "http", application analysis failures "app", the rest "internal". *)
let error_type_of_status = function
  | s when s < 400 -> None
  | 504 -> Some "timeout"
  | 400 | 404 | 405 | 408 | 413 | 501 -> Some "http"
  | 422 -> Some "app"
  | 503 -> Some "overload"
  | _ -> Some "internal"

(* Process-wide counters are plain mutable ints; with a multi-domain
   accept loop their increments would race and drop. Request accounting
   therefore serializes through one stats mutex — the critical sections
   are a handful of integer bumps, invisible next to even a cached
   request. *)
let stats_lock = Mutex.create ()

(* ----- per-worker accept loop stats -----

   Each accept worker registers itself here at spawn: its RED counters
   are labelled [{worker="k"}] and /statusz lists the workers with a
   last-activity heartbeat, making a wedged accept loop visible at a
   glance. [w_connections] has the accept loop as its only writer;
   [w_requests] and the heartbeat are bumped from every connection
   domain attributed to the worker, so those go through [workers_lock]
   to keep the plain-int counters exact. *)

type worker_stats = {
  w_id : int;
  w_requests : Obs.Metrics.Counter.t;
  w_connections : Obs.Metrics.Counter.t;
  mutable w_last_beat : float;
}

let workers_tbl : (int, worker_stats) Hashtbl.t = Hashtbl.create 8
let workers_lock = Mutex.create ()

let current_worker : worker_stats option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let worker_reset () =
  Mutex.protect workers_lock (fun () -> Hashtbl.reset workers_tbl)

let worker_register k =
  let w =
    {
      w_id = k;
      w_requests =
        Obs.Metrics.counter_with "serve.worker.requests"
          [ ("worker", string_of_int k) ];
      w_connections =
        Obs.Metrics.counter_with "serve.worker.connections"
          [ ("worker", string_of_int k) ];
      w_last_beat = Unix.gettimeofday ();
    }
  in
  Mutex.protect workers_lock (fun () -> Hashtbl.replace workers_tbl k w);
  Domain.DLS.get current_worker := Some w;
  w

let worker_note_request () =
  match !(Domain.DLS.get current_worker) with
  | Some w ->
    Mutex.protect workers_lock (fun () ->
        Obs.Metrics.Counter.incr w.w_requests;
        w.w_last_beat <- Unix.gettimeofday ())
  | None -> ()

let workers_list () =
  Mutex.protect workers_lock (fun () ->
      Hashtbl.fold (fun _ w acc -> w :: acc) workers_tbl [])
  |> List.sort (fun a b -> compare a.w_id b.w_id)

(* In-flight requests, keyed by trace id. The handler publishes each
   request here for /statusz and keeps a domain-local pointer so the
   body-resolution and envelope code can annotate the record (net hash,
   exit code) without threading it through every handler. *)
type inflight = {
  if_trace_id : string;
  if_name : string;  (* "POST /eval" *)
  if_endpoint : string;
  if_start : float;
  mutable if_net_hash : string option;
  mutable if_exit_code : int option;
}

let inflight : (string, inflight) Hashtbl.t = Hashtbl.create 16
let inflight_lock = Mutex.create ()

let current_req : inflight option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let note_net_hash h =
  match !(Domain.DLS.get current_req) with
  | Some r -> r.if_net_hash <- Some h
  | None -> ()

let note_exit_code c =
  match !(Domain.DLS.get current_req) with
  | Some r -> r.if_exit_code <- Some c
  | None -> ()

let inflight_add r =
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.replace inflight r.if_trace_id r;
      Obs.Metrics.Gauge.set (Lazy.force m_inflight)
        (float_of_int (Hashtbl.length inflight)));
  Domain.DLS.get current_req := Some r

let inflight_remove r =
  Domain.DLS.get current_req := None;
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.remove inflight r.if_trace_id;
      Obs.Metrics.Gauge.set (Lazy.force m_inflight)
        (float_of_int (Hashtbl.length inflight)))

let inflight_list () =
  Mutex.protect inflight_lock (fun () ->
      Hashtbl.fold (fun _ r acc -> r :: acc) inflight [])
  |> List.sort (fun a b -> compare a.if_start b.if_start)

(* ----- access log -----

   One NDJSON record per served request, written through
   {!Obs.Log.ndjson_sink} so the line format matches every other log
   the toolchain produces. The channel is opened on first use and
   reopened if the configured path changes; writes are serialized. *)

let access_lock = Mutex.create ()
let access_chan : (string * out_channel) option ref = ref None

let access_write path record =
  Mutex.protect access_lock (fun () ->
      let oc =
        match !access_chan with
        | Some (p, oc) when p = path -> Some oc
        | prev -> (
          (match prev with
          | Some (_, oc) -> ( try close_out oc with Sys_error _ -> ())
          | None -> ());
          match open_out_gen [ Open_append; Open_creat ] 0o644 path with
          | oc ->
            access_chan := Some (path, oc);
            Some oc
          | exception Sys_error _ ->
            access_chan := None;
            None)
      in
      match oc with
      | Some oc -> ( try Obs.Log.ndjson_sink oc record with Sys_error _ -> ())
      | None -> ())

let cache_counts () =
  List.map
    (fun (k, (s : Tpan_cache.Cache.stats)) -> (k, s.hits, s.misses))
    (Tpan.Artifact.cache_stats ())

(* Per-request cache activity as the difference of the process-wide
   counters around the request. Exact under the sequential listener;
   approximate if handlers are driven concurrently from tests. *)
let cache_delta before after =
  List.filter_map
    (fun (k, h1, m1) ->
      let h0, m0 =
        match List.find_opt (fun (k0, _, _) -> k0 = k) before with
        | Some (_, h, m) -> (h, m)
        | None -> (0, 0)
      in
      if h1 = h0 && m1 = m0 then None
      else
        Some (k, J.Obj [ ("hits", J.Int (h1 - h0)); ("misses", J.Int (m1 - m0)) ]))
    after

(* [Http_error] is a protocol-level rejection (bad route, bad JSON);
   application failures travel as [Tpan.Error.t] and keep their exit
   codes in the envelope. *)
exception Http_error of int * string
exception App_error of Tpan.Error.t

let bad msg = raise (Http_error (400, msg))

(* ----- admission control -----

   Analysis requests (the POST endpoints) pass through a small admission
   gate: at most [max_inflight] compute concurrently, up to twice that
   many wait their turn, and anything beyond is turned away immediately
   with [503 + Retry-After] rather than queued into a latency cliff.
   Introspection endpoints never queue — an overloaded server must still
   answer /metrics and /statusz. *)

module Admission = struct
  exception Overloaded of int (* suggested Retry-After, seconds *)

  let lock = Mutex.create ()
  let turnstile = Condition.create ()
  let active = ref 0
  let waiting = ref 0
  let m_queued = lazy (Obs.Metrics.counter "serve.admission.queued")
  let m_rejected = lazy (Obs.Metrics.counter "serve.admission.rejected")

  let with_slot config f =
    match config.max_inflight with
    | None -> f ()
    | Some limit ->
      let limit = max 1 limit in
      Mutex.lock lock;
      if !active >= limit && !waiting >= 2 * limit then begin
        Mutex.unlock lock;
        Mutex.protect stats_lock (fun () ->
            Obs.Metrics.Counter.incr (Lazy.force m_rejected));
        raise (Overloaded 1)
      end;
      if !active >= limit then begin
        incr waiting;
        Mutex.protect stats_lock (fun () ->
            Obs.Metrics.Counter.incr (Lazy.force m_queued));
        while !active >= limit do
          Condition.wait turnstile lock
        done;
        decr waiting
      end;
      incr active;
      Mutex.unlock lock;
      Fun.protect f ~finally:(fun () ->
          Mutex.lock lock;
          decr active;
          Condition.signal turnstile;
          Mutex.unlock lock)
end

(* ----- /sweep single-flight -----

   Grid sweeps are the expensive POSTs, and fan-in traffic (a dashboard
   refreshing, N clients asking the same question) tends to ask for the
   same grid at once. Identical concurrent sweeps — same canonical net,
   same dispatch parameters — coalesce onto one leader computing on the
   worker pool while followers block on its result; they are exact
   duplicates, so the followers' envelopes share the leader's trace id.
   Leader failures propagate the same exception to every follower and
   are never cached beyond the flight. *)

module Singleflight = struct
  type outcome = Done of response | Failed of exn

  type entry = { mutable outcome : outcome option }

  let lock = Mutex.create ()
  let done_ = Condition.create ()
  let flights : (string, entry) Hashtbl.t = Hashtbl.create 8
  let m_coalesced = lazy (Obs.Metrics.counter "serve.sweep.coalesced")

  let run key f =
    Mutex.lock lock;
    match Hashtbl.find_opt flights key with
    | Some e ->
      (* A follower waits for the leader's outcome but keeps honoring
         its own request deadline: with an ambient [Cancel] deadline
         the wait is chopped into short slices that re-check the token
         between parks, so a follower whose budget expires while the
         leader computes unwinds with [Cancelled] (answered as its own
         504) instead of inheriting the leader's possibly much later
         outcome. Followers without a deadline park on the condition
         and wake with the leader's broadcast. *)
      let timed =
        match Obs.Cancel.current () with
        | Some tok -> Obs.Cancel.deadline tok <> None
        | None -> false
      in
      let rec await () =
        match e.outcome with
        | Some o -> o
        | None ->
          if timed then begin
            Mutex.unlock lock;
            Obs.Cancel.checkpoint () (* raises past the deadline *);
            Unix.sleepf 0.01;
            Mutex.lock lock
          end
          else Condition.wait done_ lock;
          await ()
      in
      let o = await () in
      Mutex.unlock lock;
      Mutex.protect stats_lock (fun () ->
          Obs.Metrics.Counter.incr (Lazy.force m_coalesced));
      (match o with Done r -> r | Failed e -> raise e)
    | None ->
      let e = { outcome = None } in
      Hashtbl.replace flights key e;
      Mutex.unlock lock;
      let o = match f () with r -> Done r | exception exn -> Failed exn in
      Mutex.lock lock;
      e.outcome <- Some o;
      Hashtbl.remove flights key;
      Condition.broadcast done_;
      Mutex.unlock lock;
      (match o with Done r -> r | Failed e -> raise e)
end

(* ----- request JSON helpers ----- *)

let pow2 k =
  let rec go acc k = if k = 0 then acc else go (Q.mul acc (Q.of_int 2)) (k - 1) in
  go Q.one k

(* Floats decode to their exact binary rational, so a client sending
   [0.25] and one sending ["1/4"] hit the same cache key downstream. *)
let q_of_float f =
  if Float.is_integer f then Q.of_int (int_of_float f)
  else begin
    let m = ref f and k = ref 0 in
    while not (Float.is_integer !m) && !k < 1100 do
      m := !m *. 2.;
      incr k
    done;
    if not (Float.is_integer !m) then bad "non-finite number";
    Q.div (Q.of_int (int_of_float !m)) (pow2 !k)
  end

let q_of_json field = function
  | J.Int n -> Q.of_int n
  | J.Float f -> q_of_float f
  | J.Str s -> (
    try Q.of_decimal_string s
    with _ -> bad (Printf.sprintf "%s: %S is not a rational (use \"a/b\" or decimal)" field s))
  | _ -> bad (Printf.sprintf "%s: expected a number or rational string" field)

let obj_of_body body =
  if String.trim body = "" then bad "empty body (expected a JSON object)"
  else
    match J.of_string body with
    | Ok (J.Obj _ as o) -> o
    | Ok _ -> bad "request body must be a JSON object"
    | Error e -> bad ("malformed JSON body: " ^ e)

let str_field field obj =
  match J.member field obj with
  | Some (J.Str s) -> Some s
  | Some _ -> bad (Printf.sprintf "%s: expected a string" field)
  | None -> None

let int_field field obj =
  match J.member field obj with
  | None -> None
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Some n
    | None -> bad (Printf.sprintf "%s: expected an integer" field))

let str_list_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str s -> s | _ -> bad (Printf.sprintf "%s: expected strings" field))
      vs
  | Some _ -> bad (Printf.sprintf "%s: expected a list of strings" field)

let bindings_field field obj =
  match J.member field obj with
  | None -> []
  | Some (J.Obj kvs) ->
    List.map (fun (k, v) -> (k, q_of_json (field ^ "." ^ k) v)) kvs
  | Some _ -> bad (Printf.sprintf "%s: expected an object of variable bindings" field)

(* ----- net resolution -----

   A request names its net with exactly one of ["model"] (builtin, with
   optional ["params"]) or ["net"] (inline .tpn source). Both land on
   the same canonicalized artifact keys, so a model requested by name
   and the same net posted as source share cache entries. *)

let canonical_of_body obj =
  let model = str_field "model" obj in
  let net = str_field "net" obj in
  let load source params =
    match Tpan.Analysis.load ~params source with
    | Ok tpn -> Tpan.Canonical.of_tpn tpn
    | Error e -> raise (App_error e)
  in
  let canonical =
    match (model, net) with
    | Some name, None -> load (Tpan.Analysis.Builtin name) (bindings_field "params" obj)
    | None, Some src -> (
      if J.member "params" obj <> None then
        bad "params: only builtin models take parameters (edit the net source)";
      match Tpan.Error.guard (fun () -> Tpan_dsl.Parser.parse_string src) with
      | Ok tpn -> Tpan.Canonical.of_tpn tpn
      | Error e -> raise (App_error e))
    | _ -> bad "body must carry exactly one of \"model\" or \"net\""
  in
  note_net_hash (Tpan.Canonical.hash canonical);
  canonical

(* ----- response envelopes ----- *)

let envelope ~kind ~net_hash ~exit_code fields =
  (match net_hash with Some h -> note_net_hash h | None -> ());
  note_exit_code exit_code;
  J.Obj
    (("schema", J.Int 2)
    :: ("kind", J.Str kind)
    :: ( "trace_id",
         match Obs.Context.trace_id () with Some t -> J.Str t | None -> J.Null )
    :: ("net_hash", (match net_hash with Some h -> J.Str h | None -> J.Null))
    :: ("exit_code", J.Int exit_code)
    :: fields)

let json ?(headers = []) status doc =
  {
    status;
    content_type = "application/json";
    body = J.to_string_hum doc ^ "\n";
    headers;
  }

let status_of_error e =
  match Tpan.Error.exit_code e with 6 -> 504 | 2 -> 400 | _ -> 422

let error_response ?(headers = []) ?net_hash status ~exit_code msg =
  json ~headers status
    (envelope ~kind:"error" ~net_hash ~exit_code [ ("error", J.Str msg) ])

let qf q = Format.asprintf "%a" (Q.pp_decimal ~digits:6) q

(* ----- endpoint handlers ----- *)

let h_analyze config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let throughputs = str_list_field "throughputs" obj in
  match Tpan.Artifact.analysis ?max_states ~throughputs canonical with
  | Ok report ->
    json 200
      (envelope ~kind:"analysis"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         (Tpan.Analysis.report_fields report))
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let h_eval config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transition =
    match str_field "transition" obj with
    | Some t -> t
    | None -> bad "transition: required"
  in
  let point = bindings_field "point" obj in
  match Tpan.Artifact.eval ?max_states canonical ~transition ~point with
  | Ok v ->
    json 200
      (envelope ~kind:"eval"
         ~net_hash:(Some (Tpan.Canonical.hash canonical))
         ~exit_code:0
         [
           ("transition", J.Str transition);
           ("throughput", J.Str (Q.to_string v));
           ("decimal", J.Raw (qf v));
           ("period", J.Str (if Q.is_zero v then "inf" else Q.to_string (Q.inv v)));
         ])
  | Error e ->
    error_response
      ~net_hash:(Tpan.Canonical.hash canonical)
      (status_of_error e) ~exit_code:(Tpan.Error.exit_code e) (Tpan.Error.to_string e)

let axes_field obj =
  match J.member "axes" obj with
  | None | Some (J.List []) -> bad "axes: at least one axis required"
  | Some (J.List vs) ->
    List.map
      (function
        | J.Str spec -> (
          match Tpan_perf.Sweep.parse_axis spec with
          | Ok a -> a
          | Error e -> bad ("axes: " ^ e))
        | J.Obj _ as a ->
          let name =
            match str_field "name" a with Some n -> n | None -> bad "axes[].name: required"
          in
          let get f =
            match J.member f a with
            | Some v -> q_of_json ("axes[]." ^ f) v
            | None -> bad (Printf.sprintf "axes[].%s: required" f)
          in
          let steps =
            match int_field "steps" a with Some s when s >= 1 -> s | _ -> bad "axes[].steps: positive integer required"
          in
          { Tpan_perf.Sweep.name; lo = get "lo"; hi = get "hi"; steps }
        | _ -> bad "axes: expected axis objects or \"NAME=LO..HI:STEPS\" strings")
      vs
  | Some _ -> bad "axes: expected a list"

let sweep_fields (sw : Tpan_perf.Sweep.t) =
  let row (r : Tpan_perf.Sweep.row) =
    J.Obj
      [
        ("point", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.point));
        ("values", J.Obj (List.map (fun (n, q) -> (n, J.Str (Q.to_string q))) r.values));
        ( "error",
          match r.error with None -> J.Null | Some e -> J.Str (Tpan.Error.to_string e) );
      ]
  in
  [
    ( "axes",
      J.List
        (List.map
           (fun (a : Tpan_perf.Sweep.axis) ->
             J.Obj
               [
                 ("name", J.Str a.name);
                 ("lo", J.Str (Q.to_string a.lo));
                 ("hi", J.Str (Q.to_string a.hi));
                 ("steps", J.Int a.steps);
               ])
           sw.axes) );
    ("columns", J.List (List.map (fun c -> J.Str c) sw.columns));
    ("rows", J.List (List.map row sw.rows));
  ]

(* The /sweep coalescing key is exactly the dispatch inputs — two
   requests that agree on it receive byte-identical grids — serialized
   as JSON so every string component (binding names, transition names)
   is escaped by the encoder: a hostile name containing '='/','/'|'
   cannot forge the shape of another request and coalesce two
   semantically different sweeps onto one flight. *)
let sweep_key ~net_hash ~max_states ~jobs ~transitions ~bindings ~axes =
  let opt_int = function Some n -> J.Int n | None -> J.Null in
  J.to_string
    (J.Obj
       [
         ("net", J.Str net_hash);
         ("max_states", opt_int max_states);
         ("jobs", opt_int jobs);
         ("transitions", J.List (List.map (fun t -> J.Str t) transitions));
         ( "bindings",
           J.Obj
             (List.map
                (fun (n, q) -> (n, J.Str (Q.to_string q)))
                (List.sort (fun (a, _) (b, _) -> String.compare a b) bindings)) );
         ( "axes",
           J.List
             (List.map
                (fun (a : Tpan_perf.Sweep.axis) ->
                  J.Obj
                    [
                      ("name", J.Str a.name);
                      ("lo", J.Str (Q.to_string a.lo));
                      ("hi", J.Str (Q.to_string a.hi));
                      ("steps", J.Int a.steps);
                    ])
                axes) );
       ])

let h_sweep config obj =
  let canonical = canonical_of_body obj in
  let max_states =
    match int_field "max_states" obj with Some _ as s -> s | None -> config.max_states
  in
  let transitions =
    match str_list_field "transitions" obj with
    | [] -> bad "transitions: at least one transition required"
    | ts -> ts
  in
  let bindings = bindings_field "bindings" obj in
  let axes = axes_field obj in
  let jobs = int_field "jobs" obj in
  let key =
    sweep_key
      ~net_hash:(Tpan.Canonical.hash canonical)
      ~max_states ~jobs ~transitions ~bindings ~axes
  in
  Singleflight.run key (fun () ->
      match
        Tpan.Artifact.sweep_exprs ?max_states ?jobs canonical ~transitions ~bindings
          ~axes
      with
      | Ok sw ->
        json 200
          (envelope ~kind:"sweep"
             ~net_hash:(Some (Tpan.Canonical.hash canonical))
             ~exit_code:0 (sweep_fields sw))
      | Error e ->
        error_response
          ~net_hash:(Tpan.Canonical.hash canonical)
          (status_of_error e) ~exit_code:(Tpan.Error.exit_code e)
          (Tpan.Error.to_string e))

(* ----- introspection endpoints ----- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let html_page ~title body =
  Printf.sprintf
    "<!doctype html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title><style>body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;margin:1.5em}table{border-collapse:collapse;margin:.8em 0}td,th{border:1px solid #bbb;padding:2px 10px;text-align:left}th{background:#eee}h1{font-size:1.2em}h2{font-size:1em;margin-top:1.2em}.slow{color:#b00;font-weight:bold}</style></head><body><h1>%s</h1>%s</body></html>\n"
    (html_escape title) (html_escape title) body

let html status body =
  { status; content_type = "text/html; charset=utf-8"; body; headers = [] }

let table headers rows =
  let cell tag s = Printf.sprintf "<%s>%s</%s>" tag s tag in
  let tr cells tag = cell "tr" (String.concat "" (List.map (cell tag) cells)) in
  cell "table" (String.concat "" (tr headers "th" :: List.map (fun r -> tr r "td") rows))

let cache_stats_json () =
  List.map
    (fun (kind, (s : Tpan_cache.Cache.stats)) ->
      let total = s.hits + s.misses in
      J.Obj
        [
          ("kind", J.Str kind);
          ("hits", J.Int s.hits);
          ("misses", J.Int s.misses);
          ("evictions", J.Int s.evictions);
          ("entries", J.Int s.entries);
          ("bytes", J.Int s.bytes);
          ( "hit_ratio",
            if total = 0 then J.Null
            else J.Float (float_of_int s.hits /. float_of_int total) );
        ])
    (Tpan.Artifact.cache_stats ())

let statusz_json () =
  let now = Unix.gettimeofday () in
  let gc = Gc.quick_stat () in
  let infl = inflight_list () in
  J.Obj
    [
      ("schema", J.Int 1);
      ("service", J.Str "tpan-serve");
      ("version", J.Str Tpan.Version.string);
      ("pid", J.Int (Unix.getpid ()));
      ("now", J.Float now);
      ("uptime_s", J.Float (now -. start_time));
      ( "requests",
        J.Obj
          [
            ("total", J.Int (Obs.Metrics.Counter.value (Lazy.force m_requests)));
            ("errors", J.Int (Obs.Metrics.Counter.value (Lazy.force m_errors)));
            ("timeouts", J.Int (Obs.Metrics.Counter.value (Lazy.force m_timeouts)));
            ("inflight", J.Int (List.length infl));
          ] );
      ("caches", J.List (cache_stats_json ()));
      ( "workers",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("worker", J.Int w.w_id);
                   ("lane", J.Int w.w_id);
                   ("requests", J.Int (Obs.Metrics.Counter.value w.w_requests));
                   ( "connections",
                     J.Int (Obs.Metrics.Counter.value w.w_connections) );
                   ("idle_s", J.Float (now -. w.w_last_beat));
                 ])
             (workers_list ())) );
      ( "heartbeats",
        J.List
          (List.map
             (fun (lane, beats) ->
               J.Obj [ ("lane", J.Int lane); ("beats", J.Int beats) ])
             (Obs.Cancel.heartbeats ())) );
      ( "gc",
        J.Obj
          [
            ("heap_words", J.Int gc.Gc.heap_words);
            ("top_heap_words", J.Int gc.Gc.top_heap_words);
            ("minor_collections", J.Int gc.Gc.minor_collections);
            ("major_collections", J.Int gc.Gc.major_collections);
            ("compactions", J.Int gc.Gc.compactions);
          ] );
      ( "inflight",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("trace_id", J.Str r.if_trace_id);
                   ("request", J.Str r.if_name);
                   ("age_s", J.Float (now -. r.if_start));
                 ])
             infl) );
    ]

let statusz_html () =
  let now = Unix.gettimeofday () in
  let infl = inflight_list () in
  let summary =
    Printf.sprintf
      "<p>%s pid %d &middot; uptime %.1fs &middot; %d requests (%d errors, %d \
       timeouts) &middot; %d in flight</p>"
      (html_escape Tpan.Version.string)
      (Unix.getpid ()) (now -. start_time)
      (Obs.Metrics.Counter.value (Lazy.force m_requests))
      (Obs.Metrics.Counter.value (Lazy.force m_errors))
      (Obs.Metrics.Counter.value (Lazy.force m_timeouts))
      (List.length infl)
  in
  let caches =
    table
      [ "cache"; "hits"; "misses"; "hit ratio"; "entries"; "bytes"; "evictions" ]
      (List.map
         (fun (kind, (s : Tpan_cache.Cache.stats)) ->
           let total = s.hits + s.misses in
           [
             html_escape kind;
             string_of_int s.hits;
             string_of_int s.misses;
             (if total = 0 then "-"
              else Printf.sprintf "%.3f" (float_of_int s.hits /. float_of_int total));
             string_of_int s.entries;
             string_of_int s.bytes;
             string_of_int s.evictions;
           ])
         (Tpan.Artifact.cache_stats ()))
  in
  let inflight_tbl =
    table
      [ "trace_id"; "request"; "age (s)" ]
      (List.map
         (fun r ->
           [
             html_escape r.if_trace_id;
             html_escape r.if_name;
             Printf.sprintf "%.3f" (now -. r.if_start);
           ])
         infl)
  in
  html_page ~title:"tpan serve: statusz"
    (summary ^ "<h2>artifact caches</h2>" ^ caches ^ "<h2>in-flight requests</h2>"
   ^ inflight_tbl)

let tracez_html () =
  let sections =
    List.map
      (fun (name, buckets, errors) ->
        let bucket_tbl =
          table
            [ "bucket"; "seen"; "retained" ]
            (List.map
               (fun (b : Obs.Tracez.bucket_view) ->
                 [
                   html_escape b.label;
                   string_of_int b.seen;
                   string_of_int (List.length b.entries);
                 ])
               (buckets @ [ errors ]))
        in
        let recent =
          List.concat_map (fun (b : Obs.Tracez.bucket_view) -> b.entries) buckets
          |> List.sort (fun (a : Obs.Tracez.entry) b -> compare b.start a.start)
        in
        let recent_tbl =
          table
            [ "trace_id"; "status"; "duration (ms)"; "spans" ]
            (List.map
               (fun (e : Obs.Tracez.entry) ->
                 [
                   html_escape e.trace_id;
                   (if e.slow then
                      Printf.sprintf "<span class=\"slow\">%d slow</span>" e.status
                    else string_of_int e.status);
                   Printf.sprintf "%.3f" (e.dur *. 1000.);
                   string_of_int (List.length e.spans);
                 ])
               recent)
        in
        Printf.sprintf "<h2>%s</h2>%s%s" (html_escape name) bucket_tbl recent_tbl)
      (Obs.Tracez.snapshot ())
  in
  html_page ~title:"tpan serve: tracez" (String.concat "" sections)

let wants_html query =
  match List.assoc_opt "format" query with Some "html" -> true | _ -> false

(* ----- dispatch ----- *)

let dispatch config ~meth ~path ~query ~body =
  match (meth, path) with
  | "GET", "/healthz" ->
    json 200 (J.Obj [ ("schema", J.Int 2); ("status", J.Str "ok") ])
  | "GET", "/metrics" ->
    {
      status = 200;
      content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
      body = Obs.Metrics.to_openmetrics ();
      headers = [];
    }
  | "GET", "/statusz" ->
    if wants_html query then html 200 (statusz_html ())
    else json 200 (statusz_json ())
  | "GET", "/tracez" ->
    if wants_html query then html 200 (tracez_html ())
    else json 200 (Obs.Tracez.to_json ())
  | "POST", "/analyze" ->
    Admission.with_slot config (fun () -> h_analyze config (obj_of_body body))
  | "POST", "/eval" ->
    Admission.with_slot config (fun () -> h_eval config (obj_of_body body))
  | "POST", "/sweep" ->
    Admission.with_slot config (fun () -> h_sweep config (obj_of_body body))
  | _, ("/healthz" | "/metrics" | "/statusz" | "/tracez" | "/analyze" | "/eval" | "/sweep") ->
    raise (Http_error (405, Printf.sprintf "%s not allowed here" meth))
  | _ -> raise (Http_error (404, "no such endpoint"))

(* ----- the request wrapper: metrics, tracez, access log, ledger ----- *)

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let qs = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      List.filter_map
        (fun kv ->
          if kv = "" then None
          else
            match String.index_opt kv '=' with
            | Some j ->
              Some
                ( String.sub kv 0 j,
                  String.sub kv (j + 1) (String.length kv - j - 1) )
            | None -> Some (kv, ""))
        (String.split_on_char '&' qs)
    in
    (path, params)

let stage_totals_of spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let dur, n =
        match Hashtbl.find_opt tbl e.Obs.Trace.name with
        | Some x -> x
        | None -> (0., 0)
      in
      Hashtbl.replace tbl e.Obs.Trace.name (dur +. e.Obs.Trace.dur, n + 1))
    spans;
  Hashtbl.fold
    (fun stage (seconds, count) acc -> { Obs.Ledger.stage; seconds; count } :: acc)
    tbl []
  |> List.sort (fun (a : Obs.Ledger.stage) b -> compare a.stage b.stage)

let access_record config ~req ~meth ~path ~status ~dur ~body_bytes ~resp_bytes
    ~cache_fields =
  let exit_code =
    match req.if_exit_code with
    | Some c -> c
    | None -> if status >= 400 then 1 else 0
  in
  {
    Obs.Log.ts = req.if_start;
    level = Obs.Log.Info;
    msg = "access";
    lane = Obs.Trace.current_lane ();
    trace_id = Some req.if_trace_id;
    fields =
      [
        ("method", J.Str meth);
        ("path", J.Str path);
        ("endpoint", J.Str req.if_endpoint);
        ("status", J.Int status);
        ("exit_code", J.Int exit_code);
        ("latency_s", J.Float dur);
        ("body_bytes", J.Int body_bytes);
        ("resp_bytes", J.Int resp_bytes);
        ( "net_hash",
          match req.if_net_hash with Some h -> J.Str h | None -> J.Null );
        ("cache", J.Obj cache_fields);
        ( "deadline_budget_s",
          match config.deadline with Some b -> J.Float b | None -> J.Null );
        ( "deadline_consumed",
          match config.deadline with
          | Some b when b > 0. -> J.Float (dur /. b)
          | _ -> J.Null );
      ];
  }

let ledger_row config ~req ~status ~dur ~stages =
  let exit_code =
    match req.if_exit_code with
    | Some c -> c
    | None -> if status >= 400 then 1 else 0
  in
  match config.ledger_dir with
  | None -> ()
  | Some dir ->
    let row =
      Obs.Ledger.make ~version:Tpan.Version.string ~timestamp:req.if_start
        ~subcommand:("serve:" ^ req.if_endpoint)
        ~argv:[ "serve"; req.if_name ]
        ~trace_id:req.if_trace_id ~stages ~exit_code ~duration:dur ()
    in
    (match Obs.Ledger.append ~dir row with
    | Ok () -> ()
    | Error e ->
      Obs.Log.warn "serve: ledger append failed" ~fields:[ ("error", J.Str e) ])

let handle config ~meth ~target ~body =
  let t0 = Unix.gettimeofday () in
  Mutex.protect stats_lock (fun () ->
      Obs.Metrics.Counter.incr (Lazy.force m_requests));
  worker_note_request ();
  let path, query = split_target target in
  let endpoint = normalize_endpoint path in
  let name = meth ^ " " ^ endpoint in
  let ctx = Obs.Context.make ?deadline:config.deadline () in
  let tid = ctx.Obs.Context.trace_id in
  let req =
    {
      if_trace_id = tid;
      if_name = name;
      if_endpoint = endpoint;
      if_start = t0;
      if_net_hash = None;
      if_exit_code = None;
    }
  in
  let caches_before =
    if config.telemetry && config.access_log <> None then Some (cache_counts ())
    else None
  in
  if config.telemetry then begin
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Counter.incr (ep_requests endpoint));
    inflight_add req
  end;
  let resp =
    Obs.Context.with_ctx ctx (fun () ->
        try dispatch config ~meth ~path ~query ~body with
        | Http_error (status, msg) -> error_response status ~exit_code:2 msg
        | App_error e ->
          error_response (status_of_error e) ~exit_code:(Tpan.Error.exit_code e)
            (Tpan.Error.to_string e)
        | Admission.Overloaded retry_after ->
          error_response
            ~headers:[ ("Retry-After", string_of_int retry_after) ]
            503 ~exit_code:1 "server overloaded, try again shortly"
        | Obs.Cancel.Cancelled reason ->
          error_response 504 ~exit_code:6 (Obs.Cancel.reason_to_string reason)
        | exn -> error_response 500 ~exit_code:1 (Printexc.to_string exn))
  in
  let dur = Unix.gettimeofday () -. t0 in
  Mutex.protect stats_lock (fun () ->
      if resp.status = 504 then Obs.Metrics.Counter.incr (Lazy.force m_timeouts);
      if resp.status >= 400 then Obs.Metrics.Counter.incr (Lazy.force m_errors);
      Obs.Metrics.Histogram.observe (Lazy.force m_latency) dur);
  if config.telemetry then begin
    inflight_remove req;
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Histogram.observe ~trace_id:tid (ep_latency endpoint) dur;
        match error_type_of_status resp.status with
        | Some ty -> Obs.Metrics.Counter.incr (ep_errors endpoint ty)
        | None -> ());
    let slow =
      match config.slow_ms with Some ms -> dur *. 1000. >= ms | None -> false
    in
    let spans = Obs.Trace.take_events ~trace_id:tid in
    Obs.Tracez.record
      { trace_id = tid; name; status = resp.status; start = t0; dur; slow; spans };
    if slow then (
      match config.flight_path with
      | Some p ->
        Obs.Dump.write_dump ~trace_id:tid p
          (Printf.sprintf "slow-request %s %.1fms" name (dur *. 1000.))
      | None -> ());
    (match (config.access_log, caches_before) with
    | Some log_path, Some before ->
      let cache_fields = cache_delta before (cache_counts ()) in
      access_write log_path
        (access_record config ~req ~meth ~path ~status:resp.status ~dur
           ~body_bytes:(String.length body)
           ~resp_bytes:(String.length resp.body) ~cache_fields)
    | _ -> ());
    ledger_row config ~req ~status:resp.status ~dur ~stages:(stage_totals_of spans)
  end;
  resp

(* ----- the HTTP/1.1 listener -----

   Connections are persistent: each one parses requests in a loop from
   a buffer that survives across requests (the pipelining window),
   honours [Connection: close]/[keep-alive], and is bounded by
   [max_requests_per_conn] and an idle timeout carried by a
   {!Obs.Cancel} deadline token. Accepting fans out over
   [config.workers] service domains; each accepted connection is then
   served on its own domain (see {!Conns}), so a parked keep-alive
   client never blocks the accept plane. *)

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let max_header_bytes = 64 * 1024

(* The client vanished: EOF or EPIPE/ECONNRESET at the wrong moment.
   Never fatal — the connection is counted, logged and dropped. *)
exception Client_gone of string

(* The current request stalled mid-transfer past the idle budget with
   bytes already committed: answered 408, then the connection closes. *)
exception Conn_stalled of string

exception Shutting_down

let m_client_aborts = lazy (Obs.Metrics.counter "serve.client_aborts")

(* ----- shutdown plumbing: the self-pipe -----

   Signal handlers set the stop flag and write one byte to a pipe that
   every blocking select in every worker watches, so shutdown breaks
   those waits immediately — the seed's accept loop instead polled on a
   fixed 0.25s tick, quantizing shutdown latency (and, with keep-alive,
   it would have quantized idle reaping too). The byte is deliberately
   never drained: once stopping, every selector must keep waking. *)

let stop = Atomic.make false
let wake_write : Unix.file_descr option Atomic.t = Atomic.make None

let request_stop () =
  Atomic.set stop true;
  match Atomic.get wake_write with
  | Some fd -> (
    try ignore (Unix.write fd (Bytes.make 1 '!') 0 1) with Unix.Unix_error _ -> ())
  | None -> ()

let shutdown = request_stop

let install_signals () =
  let h = Sys.Signal_handle (fun _ -> request_stop ()) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h;
  (* a peer closing mid-response must surface as EPIPE on the write,
     not kill the process *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* ----- buffered connection reads ----- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;  (** bytes read but not yet consumed *)
  wake : Unix.file_descr option;
}

let wait_readable conn ~deadline =
  let rec go () =
    if Atomic.get stop then raise Shutting_down;
    let timeout = deadline -. Obs.Mclock.now () in
    if timeout <= 0. then `Timeout
    else begin
      (* heartbeat per wait, so /statusz shows live lanes even when every
         worker is parked in a keep-alive read *)
      Obs.Cancel.checkpoint ();
      match Unix.select (conn.fd :: Option.to_list conn.wake) [] [] timeout with
      | [], _, _ -> `Timeout
      | fds, _, _ ->
        if Atomic.get stop then raise Shutting_down
        else if List.memq conn.fd fds then `Readable
        else raise Shutting_down (* only the wake pipe fired *)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

(* One read into the connection buffer. [`Again] covers EINTR and
   spurious wakeups — callers loop, and the select above keeps the loop
   from spinning on a silent socket. *)
let refill conn ~deadline =
  match wait_readable conn ~deadline with
  | `Timeout -> `Timeout
  | `Readable -> (
    let chunk = Bytes.create 65536 in
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      `Filled
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      -> `Again
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      raise (Client_gone "read: peer reset"))

let consume conn k =
  let all = Buffer.contents conn.inbuf in
  let taken = String.sub all 0 k in
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf all k (String.length all - k);
  taken

let find_terminator buf ~from =
  let n = Buffer.length buf in
  let rec go i =
    if i + 3 >= n then None
    else if
      Buffer.nth buf i = '\r'
      && Buffer.nth buf (i + 1) = '\n'
      && Buffer.nth buf (i + 2) = '\r'
      && Buffer.nth buf (i + 3) = '\n'
    then Some i
    else go (i + 1)
  in
  go (max 0 from)

(* ----- request framing ----- *)

type head = {
  meth : string;
  target : string;
  version : string;
  req_headers : (string * string) list;  (** names lowercased *)
}

let parse_head raw =
  let lines = List.map String.trim (String.split_on_char '\n' raw) in
  let request_line, header_lines =
    match lines with
    | [] -> raise (Http_error (400, "empty request"))
    | l :: hs -> (l, hs)
  in
  let meth, target, version =
    match String.split_on_char ' ' request_line with
    | [ meth; target; version ] -> (meth, target, version)
    | _ -> raise (Http_error (400, "malformed request line"))
  in
  let req_headers =
    List.filter_map
      (fun line ->
        match String.index_opt line ':' with
        | Some i ->
          Some
            ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
              String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
        | None -> None)
      header_lines
  in
  { meth; target; version; req_headers }

let content_length req_headers =
  match List.assoc_opt "content-length" req_headers with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 0 -> Some n
    | _ -> raise (Http_error (400, "bad Content-Length")))

(* Chunked framing is not implemented; misparsing it as an unframed
   body would desynchronize the connection, so refuse loudly. *)
let reject_chunked req_headers =
  match List.assoc_opt "transfer-encoding" req_headers with
  | Some v when String.lowercase_ascii (String.trim v) <> "identity" ->
    raise (Http_error (501, "Transfer-Encoding unsupported (send Content-Length)"))
  | _ -> ()

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* HTTP/1.1 defaults to persistent; 1.0 (and anything unrecognized)
   to close. An explicit [Connection] token wins either way. *)
let wants_keep_alive head =
  match Option.map String.lowercase_ascii (List.assoc_opt "connection" head.req_headers) with
  | Some v when has_substring v "close" -> false
  | Some v when has_substring v "keep-alive" -> true
  | _ -> head.version = "HTTP/1.1"

(* The idle budget rides on a [Cancel] deadline token — the same
   machinery request deadlines use — so the absolute instant the wait
   gives up at is computed once, not re-derived per select round. *)
let idle_deadline config =
  let token = Obs.Cancel.create ~deadline_in:(max 0.01 config.idle_timeout) () in
  match Obs.Cancel.deadline token with
  | Some d -> d
  | None -> Obs.Mclock.now () +. config.idle_timeout

(* One full request head off the connection, or [None] on a clean
   end-of-stream / idle expiry between requests. Timeouts and EOF with
   a request already underway are errors: the client committed bytes
   and stalled. *)
let read_request config conn =
  let deadline = idle_deadline config in
  let rec await from =
    match find_terminator conn.inbuf ~from with
    | Some i ->
      let raw = consume conn (i + 4) in
      Some (String.sub raw 0 i)
    | None ->
      if Buffer.length conn.inbuf > max_header_bytes then
        raise (Http_error (400, "request head too large"));
      let idle = Buffer.length conn.inbuf = 0 in
      let from = max 0 (Buffer.length conn.inbuf - 3) in
      (match refill conn ~deadline with
      | `Filled | `Again -> await from
      | `Timeout -> if idle then None else raise (Conn_stalled "request head")
      | `Eof -> if idle then None else raise (Client_gone "eof inside request head"))
  in
  await 0

(* The size check precedes any allocation: a hostile Content-Length
   costs nothing, and the buffer only ever grows by bytes actually
   received. *)
let read_body config conn ~length =
  if length > config.max_body then
    raise (Http_error (413, "request body too large"));
  let deadline = idle_deadline config in
  let rec go () =
    if Buffer.length conn.inbuf >= length then consume conn length
    else
      match refill conn ~deadline with
      | `Filled | `Again -> go ()
      | `Timeout -> raise (Conn_stalled "request body")
      | `Eof -> raise (Client_gone "eof inside request body")
  in
  go ()

(* ----- response writes ----- *)

(* Retries short writes, EINTR and EAGAIN (a slow client draining a
   large /sweep grid); EPIPE/ECONNRESET abort just this connection. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (match Unix.select [] [ fd ] [] 1.0 with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise (Client_gone "write: peer closed")
  in
  go 0

let write_response config fd resp ~keep_alive =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) resp.headers)
  in
  let conn_header =
    if keep_alive then
      Printf.sprintf "Connection: keep-alive\r\nKeep-Alive: timeout=%d\r\n"
        (max 1 (int_of_float config.idle_timeout))
    else "Connection: close\r\n"
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s%s\r\n%s"
       resp.status (status_text resp.status) resp.content_type
       (String.length resp.body) extra conn_header resp.body)

(* Framing-level failures close the connection: after a malformed head,
   an oversized or stalled body, resynchronizing on the stream would
   risk reading body bytes as a request line. Application errors
   (404/422/504/...) answer and keep the connection. *)
let closing_status = function 400 | 408 | 413 | 501 -> true | _ -> false

let serve_connection config conn =
  let limit =
    if config.max_requests_per_conn <= 0 then max_int
    else config.max_requests_per_conn
  in
  let rec next served =
    if Atomic.get stop || served >= limit then ()
    else
      match read_request config conn with
      | None -> () (* clean close: idle expiry or end-of-stream *)
      | Some raw ->
        let head = parse_head raw in
        reject_chunked head.req_headers;
        let length = Option.value (content_length head.req_headers) ~default:0 in
        let body = read_body config conn ~length in
        let resp = handle config ~meth:head.meth ~target:head.target ~body in
        let keep =
          wants_keep_alive head
          && (not (closing_status resp.status))
          && served + 1 < limit
          && not (Atomic.get stop)
        in
        write_response config conn.fd resp ~keep_alive:keep;
        if keep then next (served + 1)
  in
  try next 0 with
  | Shutting_down -> ()
  | Http_error (status, msg) ->
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Counter.incr (Lazy.force m_errors));
    (try write_response config conn.fd (error_response status ~exit_code:2 msg) ~keep_alive:false
     with Client_gone _ -> ())
  | Conn_stalled what ->
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Counter.incr (Lazy.force m_errors));
    (try
       write_response config conn.fd
         (error_response 408 ~exit_code:2 ("timed out reading " ^ what))
         ~keep_alive:false
     with Client_gone _ -> ())
  | Client_gone reason ->
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Counter.incr (Lazy.force m_client_aborts));
    Obs.Log.debug "serve: client gone" ~fields:[ ("reason", J.Str reason) ]

(* ----- per-connection service domains -----

   With keep-alive as the HTTP/1.1 default, serving a connection inline
   in its accept worker would let one parked client pin that worker for
   up to [max_requests_per_conn] requests and starve every other client
   behind it. Each accepted socket therefore runs on its own domain,
   bounded by [config.max_conns]; finished domains are joined
   opportunistically on later accepts and drained at shutdown. When the
   budget is spent (or the runtime refuses another domain), the worker
   serves the connection inline but capped to a single request with a
   forced [Connection: close] — head-of-line blocking bounded to one
   request instead of an unbounded keep-alive session. *)

module Conns = struct
  type handle = { dom : unit Domain.t; finished : bool Atomic.t }

  let lock = Mutex.create ()
  let live : handle list ref = ref []
  let m_active = lazy (Obs.Metrics.gauge "serve.conns.active")
  let m_inline = lazy (Obs.Metrics.counter "serve.conns.inline_served")

  (* [finished] flips in the domain's last finalizer, so a handle
     carrying it joins without blocking. *)
  let reap () =
    let done_ =
      Mutex.protect lock (fun () ->
          let done_, rest =
            List.partition (fun h -> Atomic.get h.finished) !live
          in
          live := rest;
          Obs.Metrics.Gauge.set (Lazy.force m_active)
            (float_of_int (List.length rest));
          done_)
    in
    List.iter (fun h -> Domain.join h.dom) done_

  let try_spawn ~limit f =
    reap ();
    Mutex.protect lock (fun () ->
        if List.length !live >= limit then false
        else begin
          let finished = Atomic.make false in
          match
            Domain.spawn (fun () ->
                Fun.protect ~finally:(fun () -> Atomic.set finished true) f)
          with
          | dom ->
            live := { dom; finished } :: !live;
            Obs.Metrics.Gauge.set (Lazy.force m_active)
              (float_of_int (List.length !live));
            true
          | exception _ ->
            (* the runtime's domain budget is exhausted (pool workers,
               other servers in-process): fall back to inline service *)
            false
        end)

  let note_inline () =
    Mutex.protect stats_lock (fun () ->
        Obs.Metrics.Counter.incr (Lazy.force m_inline))

  let drain () =
    let hs =
      Mutex.protect lock (fun () ->
          let hs = !live in
          live := [];
          hs)
    in
    List.iter (fun h -> Domain.join h.dom) hs;
    Obs.Metrics.Gauge.set (Lazy.force m_active) 0.
end

(* ----- listeners and the accept plane ----- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let bind_tcp ?(reuseport = false) host port =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    if reuseport then Unix.setsockopt s Unix.SO_REUSEPORT true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.listen s 128;
    Unix.set_nonblock s
  with
  | () -> s
  | exception e ->
    close_quietly s;
    raise e

let bound_port s =
  match Unix.getsockname s with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let run ?(ready = fun _ -> ()) config =
  Atomic.set stop false;
  worker_reset ();
  install_signals ();
  let wake_read, wake_w = Unix.pipe () in
  Atomic.set wake_write (Some wake_w);
  let workers = max 1 config.workers in
  (* [shared] listeners are watched by every worker under an accept
     mutex; [private_listeners.(k)] belong to worker [k] alone. With
     SO_REUSEPORT available and a TCP-only, multi-worker configuration,
     each worker gets its own kernel-balanced TCP listener; unix-domain
     sockets (and platforms rejecting the option) use the shared set. *)
  let shared = ref [] in
  let private_listeners = Array.make workers [] in
  let tcp_port = ref None in
  (match config.port with
  | None -> ()
  | Some p ->
    let bind_shared () =
      let s = bind_tcp config.host p in
      tcp_port := bound_port s;
      shared := s :: !shared
    in
    if workers = 1 || config.socket_path <> None then bind_shared ()
    else begin
      let opened = ref [] in
      match
        let first = bind_tcp ~reuseport:true config.host p in
        opened := [ first ];
        let actual = Option.value (bound_port first) ~default:p in
        for _ = 2 to workers do
          opened := bind_tcp ~reuseport:true config.host actual :: !opened
        done;
        (first, List.rev !opened)
      with
      | first, all ->
        tcp_port := bound_port first;
        List.iteri (fun k s -> private_listeners.(k) <- [ s ]) all
      | exception _ ->
        List.iter close_quietly !opened;
        bind_shared ()
    end);
  (match config.socket_path with
  | None -> ()
  | Some path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind s (Unix.ADDR_UNIX path);
    Unix.listen s 128;
    Unix.set_nonblock s;
    shared := s :: !shared);
  if !shared = [] && Array.for_all (fun l -> l = []) private_listeners then
    invalid_arg "serve: no listen address (need a port or a socket path)";
  (* warm the artifact caches before announcing ready: the listeners
     already hold the port (connections queue in the backlog), but
     [ready] and the log line wait until requests will be answered from
     a hot cache *)
  if config.warm <> [] then begin
    let t0 = Obs.Mclock.now () in
    List.iter
      (fun (name, result) ->
        match result with
        | Ok () -> Obs.Log.info "serve: warmed" ~fields:[ ("model", J.Str name) ]
        | Error e ->
          Obs.Log.warn "serve: warm failed"
            ~fields:
              [ ("model", J.Str name); ("error", J.Str (Tpan.Error.to_string e)) ])
      (Tpan.Artifact.warm ?max_states:config.max_states config.warm);
    Obs.Log.info "serve: warm-up complete"
      ~fields:
        [
          ("models", J.Int (List.length config.warm));
          ("seconds", J.Float (Obs.Mclock.now () -. t0));
        ]
  end;
  ready !tcp_port;
  Obs.Log.info "serve: listening"
    ~fields:
      [
        ("port", (match !tcp_port with Some p -> J.Int p | None -> J.Null));
        ( "socket",
          match config.socket_path with Some p -> J.Str p | None -> J.Null );
        ("workers", J.Int workers);
        ("telemetry", J.Bool config.telemetry);
        ( "slow_ms",
          match config.slow_ms with Some ms -> J.Float ms | None -> J.Null );
        ( "access_log",
          match config.access_log with Some p -> J.Str p | None -> J.Null );
      ];
  let accept_lock = Mutex.create () in
  (* Try to accept one connection from [listeners]; [None] means retry
     (spurious wakeup, EAGAIN race) or shutdown. The select blocks
     without a timeout — the wake pipe is the only way out. *)
  let accept_from listeners =
    if Atomic.get stop then None
    else begin
      Obs.Cancel.checkpoint ();
      match Unix.select (wake_read :: listeners) [] [] (-1.) with
      | fds, _, _ ->
        if Atomic.get stop then None
        else
          List.find_map
            (fun s ->
              if not (List.memq s fds) then None
              else
                match Unix.accept s with
                | fd, _ -> Some fd
                | exception
                    Unix.Unix_error
                      ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                        | Unix.ECONNABORTED ),
                        _,
                        _ ) ->
                  None
                | exception Unix.Unix_error (err, _, _) ->
                  (* EMFILE/ENFILE under fd exhaustion, and anything
                     else unexpected, must never escape and kill the
                     worker: a dead worker's SO_REUSEPORT listener
                     stays bound, and the kernel keeps balancing new
                     connections onto it. Log, back off briefly so a
                     persistent condition can't spin the loop, retry. *)
                  Obs.Log.warn "serve: accept failed"
                    ~fields:[ ("error", J.Str (Unix.error_message err)) ];
                  Unix.sleepf 0.05;
                  None)
            listeners
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
      | exception Unix.Unix_error (err, _, _) ->
        Obs.Log.warn "serve: accept select failed"
          ~fields:[ ("error", J.Str (Unix.error_message err)) ];
        Unix.sleepf 0.05;
        None
    end
  in
  let accept_shared () =
    Mutex.lock accept_lock;
    let r = accept_from !shared in
    Mutex.unlock accept_lock;
    r
  in
  let worker_loop k =
    let w = worker_register k in
    let accept_once () =
      if private_listeners.(k) = [] then accept_shared ()
      else accept_from private_listeners.(k)
    in
    let rec loop () =
      if not (Atomic.get stop) then begin
        (match accept_once () with
        | None -> ()
        | Some fd ->
          (* the accept loop is this counter's only writer *)
          Obs.Metrics.Counter.incr w.w_connections;
          Mutex.protect workers_lock (fun () ->
              w.w_last_beat <- Unix.gettimeofday ());
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ | Invalid_argument _ -> ());
          (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
          let conn = { fd; inbuf = Buffer.create 4096; wake = Some wake_read } in
          let serve config =
            Fun.protect
              ~finally:(fun () -> close_quietly fd)
              (fun () ->
                try serve_connection config conn
                with exn ->
                  Obs.Log.warn "serve: connection failed"
                    ~fields:[ ("error", J.Str (Printexc.to_string exn)) ])
          in
          let spawned =
            Conns.try_spawn ~limit:(max 1 config.max_conns) (fun () ->
                (* requests served here still count against worker [k] *)
                Domain.DLS.get current_worker := Some w;
                serve config)
          in
          if not spawned then begin
            Conns.note_inline ();
            serve { config with max_requests_per_conn = 1 }
          end);
        loop ()
      end
    in
    loop ()
  in
  Tpan_par.Pool.Service.run ~workers worker_loop;
  (* connection domains select on the wake pipe: drain them before any
     fd below closes under them *)
  Conns.drain ();
  Atomic.set wake_write None;
  List.iter close_quietly !shared;
  Array.iter (List.iter close_quietly) private_listeners;
  close_quietly wake_read;
  close_quietly wake_w;
  (match config.socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Obs.Log.info "serve: shutdown complete"
