(** [tpan serve] — a long-running analysis service over {!Tpan.Artifact}.

    A deliberately minimal HTTP/1.1 front end (raw [Unix] sockets, no
    web framework in the toolchain) exposing the artifact functions:

    - [POST /analyze] — full concrete analysis report
    - [POST /eval] — evaluate the cached closed-form throughput at a
      rational point (the million-user fast path: after the first
      request for a net, no symbolic build happens again)
    - [POST /sweep] — closed-form parameter sweep, batched onto the
      worker pool
    - [GET /metrics] — the {!Tpan_obs.Metrics} registry as OpenMetrics
      (includes [cache.*] hit/miss/eviction counters and [serve.*])
    - [GET /healthz] — liveness
    - [GET /statusz] — live introspection: uptime, build version,
      per-artifact-kind cache hit ratios, worker heartbeats, GC stats,
      and the in-flight requests with their age and trace id
    - [GET /tracez] — latency-bucketed ring buffers of recent request
      span trees ({!Tpan_obs.Tracez}), so the slow tail always has
      recent examples on display

    [/statusz] and [/tracez] answer JSON by default and a minimal HTML
    page with [?format=html].

    {b Telemetry.} With [telemetry] on (the default), every request is
    counted into per-endpoint RED families — [serve.endpoint.requests]
    and [serve.endpoint.errors] (typed: [http]/[app]/[timeout]/
    [internal]) counters, and a [serve.request_duration_s] histogram
    whose OpenMetrics buckets each carry an exemplar trace id — plus
    the process-wide [serve.requests]/[serve.errors]/[serve.timeouts]/
    [serve.latency_s] totals that predate the labelled plane. Endpoint
    labels come from the route table (unknown paths collapse into
    ["other"]), so cardinality is bounded.

    Optionally the server also writes an NDJSON {e access log} (one
    {!Tpan_obs.Log} record per request: trace id, method, path, status,
    exit code, latency, body sizes, net hash, per-artifact cache
    hits/misses, deadline budget consumed), appends one run-ledger row
    per request (subcommand ["serve:<endpoint>"], so
    [tpan runs --stats] reports per-endpoint latency percentiles and
    exit codes), and snapshots a flight-recorder dump scoped to the
    request's trace id whenever a request exceeds [slow_ms].

    Every request runs under a fresh {!Tpan_obs.Context} (trace id in
    every response envelope; the configured deadline as the request's
    cancellation budget — a deadline crossing aborts the pipeline
    cooperatively and answers [504] with exit-code 6 semantics).
    Responses are schema-2 envelopes: [schema], [kind], [trace_id],
    [net_hash], [exit_code], then the payload.

    {b Connections.} HTTP/1.1 keep-alive with pipelining: each
    connection parses requests in a loop from a persistent buffer
    (bytes of request N+1 arriving with request N are served without
    another socket read), honours [Connection: close]/[keep-alive]
    (1.0 defaults to close, 1.1 to keep-alive), and is bounded by
    [max_requests_per_conn] and an [idle_timeout] carried on a
    {!Tpan_obs.Cancel} deadline token. A mid-request stall answers
    [408] and closes; framing errors ([400]/[413]/[501 chunked])
    close after answering; a vanished peer (EOF/EPIPE/ECONNRESET) is
    a logged, counted ([serve.client_aborts]), non-fatal abort.

    {b Workers.} Accepting fans out over [workers] long-running
    domains ({!Tpan_par.Pool.Service}): with SO_REUSEPORT available
    and a TCP-only configuration each worker owns a kernel-balanced
    listener, otherwise all workers share the listener set under an
    accept mutex. Each accepted connection is then served on a domain
    of its own (up to [max_conns]; beyond that, inline with a forced
    close after one request), so a parked keep-alive client never
    starves other clients of its accept loop. Each worker carries
    [{worker="k"}]-labelled RED counters and a last-activity heartbeat
    in [/statusz]. Shutdown (SIGTERM/SIGINT or {!shutdown}) wakes
    every blocking select through a self-pipe immediately — no polling
    tick — and drains live connections before closing the sockets.
    Accept-path failures (EMFILE under fd exhaustion and kin) are
    logged and retried after a short back-off, never fatal.

    {b Load shedding.} With [max_inflight] set, POST endpoints admit
    at most that many concurrent analyses, queue up to twice as many,
    and answer [503 + Retry-After] beyond; introspection endpoints
    never queue. Identical concurrent [/sweep] requests (same
    canonical net and grid) coalesce onto one computation. *)

type config = {
  host : string;  (** IP to bind, e.g. ["127.0.0.1"] *)
  port : int option;  (** TCP port ([Some 0] picks an ephemeral one) *)
  socket_path : string option;  (** optional Unix-domain socket *)
  deadline : float option;  (** per-request budget, seconds *)
  max_states : int option;  (** default state budget for analyses *)
  max_body : int;  (** request-body cap, bytes *)
  telemetry : bool;
      (** RED metrics, in-flight tracking, tracez recording; on by
          default — the bench harness turns it off to measure bare
          request handling *)
  slow_ms : float option;
      (** slow-request threshold in milliseconds; requests at or above
          it are flagged in [/tracez] and flight-captured *)
  flight_path : string option;
      (** where slow-request dump frames are appended *)
  access_log : string option;  (** NDJSON access-log path *)
  ledger_dir : string option;
      (** when set, append one run-ledger row per request there *)
  workers : int;  (** accept-loop domains (default 1) *)
  max_requests_per_conn : int;
      (** keep-alive budget per connection; [<= 0] means unlimited *)
  idle_timeout : float;
      (** seconds a connection may sit idle between requests (and the
          per-read stall budget inside a request) *)
  max_inflight : int option;
      (** admission limit for concurrent POST analyses; [None] admits
          everything *)
  max_conns : int;
      (** concurrent-connection budget: each accepted connection is
          served on its own domain up to this many; beyond it a
          connection is served inline by its accept worker, capped to
          one request with a forced [Connection: close] *)
  warm : string list;
      (** builtin models to pre-build before announcing ready *)
}

val default_config : config
(** [127.0.0.1:8080], no Unix socket, no deadline, 8 MiB body cap;
    telemetry on, no slow threshold, no access log, no ledger rows;
    1 worker, 32 concurrent connections, 1000 requests per connection,
    30s idle timeout, no admission limit, no warm-up. *)

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;  (** extra headers, e.g. Retry-After *)
}

val handle : config -> meth:string -> target:string -> body:string -> response
(** The pure request handler the listener dispatches to, exposed so
    tests can drive the full request path (context minting, artifact
    cache, envelopes, status mapping, admission, telemetry) without
    sockets. *)

val run : ?ready:(int option -> unit) -> config -> unit
(** Bind, warm the caches ([config.warm]), announce via [ready] (the
    actually-bound TCP port — useful with [port = Some 0]), then serve
    until SIGTERM/SIGINT/{!shutdown}, finishing in-flight requests
    before closing the sockets. *)

val shutdown : unit -> unit
(** Ask a running server to stop, from any domain: sets the stop flag
    and wakes every worker's blocking wait through the self-pipe. The
    signal handlers call exactly this. *)

(**/**)

(* White-box test hooks — not part of the service interface. *)

val sweep_key :
  net_hash:string ->
  max_states:int option ->
  jobs:int option ->
  transitions:string list ->
  bindings:(string * Tpan_mathkit.Q.t) list ->
  axes:Tpan_perf.Sweep.axis list ->
  string
(** The /sweep single-flight coalescing key: a JSON serialization of
    the dispatch inputs, so no client-controlled string can forge the
    shape of another request's key. *)

module Singleflight : sig
  val run : string -> (unit -> response) -> response
  (** Coalesce concurrent calls sharing a key onto one leader; a
      follower carrying an ambient {!Tpan_obs.Cancel} deadline gives up
      with [Cancelled] when its own budget expires mid-flight. *)
end
